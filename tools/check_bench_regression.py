#!/usr/bin/env python3
"""Compare a freshly written BENCH_pipeline.json against a committed
baseline and flag per-event / wall-clock regressions.

The benchmarks append their timings to BENCH_pipeline.json in the
working directory (bench/bench_common.cc).  This script diffs that
file against the baseline committed at the repo root and reports any
entry that got slower by more than the tolerance.  Wall-clock numbers
are noisy on shared machines, so the default tolerance is generous and
the tier-1 driver treats a nonzero exit as advisory, not fatal.

Usage:
  tools/check_bench_regression.py [--fresh PATH] [--baseline PATH]
                                  [--tolerance FRACTION]

Exit codes: 0 = no regressions (or nothing comparable), 1 = at least
one entry regressed beyond tolerance, 2 = usage / parse error.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as exc:
        print(f"check_bench_regression: {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(data, dict):
        print(f"check_bench_regression: {path}: expected an object",
              file=sys.stderr)
        raise SystemExit(2)
    return data


def comparable_metrics(entry):
    """Yield (metric, value) pairs worth diffing from one bench entry.

    Three shapes exist today: {"wall_seconds": ..., "jobs": ...} from
    recordBenchTiming, flat {"10": ns, "100": ns, ...} maps like
    scale_per_event_ns, and fidelity entries like clone_fidelity with
    pass/fail flags and error percentages.  Anything numeric except
    "jobs" qualifies.
    """
    for key, value in entry.items():
        if key == "jobs":
            continue
        if isinstance(value, (int, float)):
            yield key, float(value)


def check_metric(metric, base, value, tolerance):
    """Return (is_regression, description) for one metric pair.

    Fidelity semantics ride on the metric name:
      - "pass" / "*_ok" are 0/1 flags: any decrease is a regression,
        the timing tolerance does not apply.
      - "*_err_pct" are error percentages near zero: regression means
        more than one percentage point above the baseline (a ratio
        would divide by a near-zero base).
      - "*_knee_qps" / "*_goodput*" are higher-is-better rates (the
        workload engine's knee point and goodput columns, and
        bench_overload's knee_{base,ctrl}_qps / budget_goodput_frac):
        regression means *dropping* below base * (1 - tolerance).
        New keys are tolerated like any other new metric (skipped
        until they have a baseline).
      - "*_recovery_ms" is a post-fault recovery time
        (bench_overload): lower is better, same ratio tolerance as a
        timing.  (bench_overload's nobudget_tail_frac rides the
        default lower-is-better branch too: the metastable collapse
        weakening -- the fraction rising -- is the regression.)
    Everything else is a timing: slower than base * (1 + tolerance).
    """
    if metric == "pass" or metric.endswith("_ok"):
        if value < base:
            return True, f"{base:g} -> {value:g} (fidelity flag dropped)"
        return False, ""
    if metric.endswith("_knee_qps") or "_goodput" in metric:
        if base <= 0:
            return False, ""
        ratio = value / base
        if ratio < 1.0 - tolerance:
            return True, (f"{base:g} -> {value:g} "
                          f"({(ratio - 1) * 100:+.1f}%, knee/goodput "
                          f"may not drop more than "
                          f"{tolerance * 100:.0f}%)")
        return False, ""
    if metric.endswith("_recovery_ms"):
        if base <= 0:
            return False, ""
        ratio = value / base
        if ratio > 1.0 + tolerance:
            return True, (f"{base:g} -> {value:g} "
                          f"({(ratio - 1) * 100:+.1f}%, recovery "
                          f"may not slow more than "
                          f"{tolerance * 100:.0f}%)")
        return False, ""
    if metric.endswith("_err_pct"):
        if value > base + 1.0:
            return True, (f"{base:g} -> {value:g} "
                          f"(+{value - base:.2f} percentage points, "
                          f"allowed +1.00)")
        return False, ""
    if base <= 0:
        return False, ""
    ratio = value / base
    if ratio > 1.0 + tolerance:
        return True, (f"{base:g} -> {value:g} "
                      f"({(ratio - 1) * 100:+.1f}%, tolerance "
                      f"{tolerance * 100:.0f}%)")
    return False, ""


def main():
    parser = argparse.ArgumentParser(
        description="Diff fresh benchmark timings against the "
                    "committed baseline.")
    parser.add_argument("--fresh", default="BENCH_pipeline.json",
                        help="freshly generated timings "
                             "(default: ./BENCH_pipeline.json)")
    parser.add_argument("--baseline", default=None,
                        help="committed baseline (default: "
                             "BENCH_pipeline.json at the repo root)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional slowdown before an "
                             "entry counts as a regression "
                             "(default: 0.25)")
    args = parser.parse_args()

    baseline_path = args.baseline
    if baseline_path is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        baseline_path = os.path.join(root, "BENCH_pipeline.json")

    fresh = load(args.fresh)
    if fresh is None:
        print(f"check_bench_regression: no fresh timings at "
              f"{args.fresh}; nothing to check")
        return 0
    baseline = load(baseline_path)
    if baseline is None:
        print(f"check_bench_regression: no baseline at {baseline_path};"
              f" nothing to check")
        return 0
    if os.path.exists(args.fresh) and os.path.exists(baseline_path) \
            and os.path.samefile(args.fresh, baseline_path):
        print("check_bench_regression: fresh and baseline are the same "
              "file; nothing to check")
        return 0

    regressions = []
    compared = 0
    for bench, entry in sorted(fresh.items()):
        base_entry = baseline.get(bench)
        if not isinstance(entry, dict) or not isinstance(base_entry, dict):
            continue
        # Different worker counts change wall-clock legitimately.
        if entry.get("jobs") != base_entry.get("jobs"):
            continue
        base_metrics = dict(comparable_metrics(base_entry))
        for metric, value in comparable_metrics(entry):
            base = base_metrics.get(metric)
            if base is None:
                continue  # new metric: nothing to compare against
            compared += 1
            bad, why = check_metric(metric, base, value, args.tolerance)
            if bad:
                regressions.append((bench, metric, why))

    if not compared:
        print("check_bench_regression: no comparable entries "
              "(different benches or worker counts)")
        return 0

    for bench, metric, why in regressions:
        print(f"REGRESSION {bench}.{metric}: {why}")
    if regressions:
        print(f"check_bench_regression: {len(regressions)} of "
              f"{compared} metrics regressed beyond "
              f"{args.tolerance * 100:.0f}%")
        return 1
    print(f"check_bench_regression: OK ({compared} metrics within "
          f"{args.tolerance * 100:.0f}% of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
