/**
 * @file
 * ditto-chaos: chaos-fuzz the request lifecycle and shrink failures.
 *
 * Runs a campaign of seeded random fault plans (crashes, partitions,
 * loss bursts, latency spikes, disk slowdowns) against a seeded
 * topo_gen topology with deadlines, cancellation, hedging, retries,
 * breakers, and shedding all armed, checking the global invariants in
 * chaos/chaos.h after every run. The first violating plan is shrunk
 * ddmin-style to a minimal reproducer and printed as ready-to-paste
 * FaultPlan builder code.
 *
 * Plans fan out on a sim::RunExecutor; reports come back in plan
 * order, so stdout is byte-identical at any --jobs count (§8).
 * Exit status is nonzero iff any plan violated an invariant.
 *
 * Usage:
 *   ditto-chaos [--plans N] [--seed S] [--services N] [--machines N]
 *               [--regions N] [--qps Q] [--run-ms D] [--drain-ms D]
 *               [--max-shrink-probes N] [--plant-ledger-bug]
 *               [--plant-wan-ledger-bug] [--prod-shapes]
 *               [--sessions] [--overload] [--jobs N]
 *
 * --sessions swaps the open-loop LoadGen for the sessionized
 * WorkloadEngine (MMPP session arrivals, think times, per-session
 * connection affinity); the same conservation invariants apply.
 *
 * --overload arms adaptive overload control on every service (AIMD
 * concurrency limits, sojourn/deadline shedding, brownout, retry
 * budgets; client retry budgets too under --sessions). The fault
 * sampling space is unchanged, so plan sequences stay seed-for-seed
 * identical with the flag off; the invariants must conserve the new
 * shed/skip causes.
 *
 * --plant-ledger-bug arms the test-fixture accounting bug (the
 * message-ledger checker forgets dropped messages), demonstrating
 * that the fuzzer catches and minimally reproduces a real bug.
 *
 * --regions N spreads the machines over N regions joined by a seeded
 * WAN mesh, arms per-group region failover, and adds region faults
 * (partitions, outages, WAN degradation) to the sampled kinds plus
 * the per-WAN-link ledger and per-region conservation invariants.
 * --plant-wan-ledger-bug is the region-scoped fixture twin of
 * --plant-ledger-bug (the per-link ledger forgets dropped messages).
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/chaos.h"
#include "sim/run_executor.h"

namespace {

using namespace ditto;

bool
parseArg(int argc, char **argv, int &i, const char *name,
         std::string &value)
{
    const std::size_t n = std::strlen(name);
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
        value = argv[++i];
        return true;
    }
    if (std::strncmp(argv[i], name, n) == 0 && argv[i][n] == '=') {
        value = argv[i] + n + 1;
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    chaos::ChaosConfig cfg;
    unsigned plans = 50;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (parseArg(argc, argv, i, "--plans", v))
            plans = static_cast<unsigned>(
                std::strtoul(v.c_str(), nullptr, 10));
        else if (parseArg(argc, argv, i, "--seed", v))
            cfg.seed = std::strtoull(v.c_str(), nullptr, 10);
        else if (parseArg(argc, argv, i, "--services", v))
            cfg.services = static_cast<unsigned>(
                std::strtoul(v.c_str(), nullptr, 10));
        else if (parseArg(argc, argv, i, "--machines", v))
            cfg.machines = static_cast<unsigned>(
                std::strtoul(v.c_str(), nullptr, 10));
        else if (parseArg(argc, argv, i, "--regions", v))
            cfg.regions = static_cast<unsigned>(
                std::strtoul(v.c_str(), nullptr, 10));
        else if (parseArg(argc, argv, i, "--qps", v))
            cfg.qps = std::strtod(v.c_str(), nullptr);
        else if (parseArg(argc, argv, i, "--run-ms", v))
            cfg.runFor = sim::milliseconds(
                std::strtoull(v.c_str(), nullptr, 10));
        else if (parseArg(argc, argv, i, "--drain-ms", v))
            cfg.drain = sim::milliseconds(
                std::strtoull(v.c_str(), nullptr, 10));
        else if (parseArg(argc, argv, i, "--max-shrink-probes", v))
            cfg.maxShrinkProbes = static_cast<unsigned>(
                std::strtoul(v.c_str(), nullptr, 10));
        else if (std::strcmp(argv[i], "--plant-ledger-bug") == 0)
            cfg.plantLedgerBug = true;
        else if (std::strcmp(argv[i], "--plant-wan-ledger-bug") == 0)
            cfg.plantWanLedgerBug = true;
        else if (std::strcmp(argv[i], "--prod-shapes") == 0)
            cfg.prodShapes = true;
        else if (std::strcmp(argv[i], "--sessions") == 0)
            cfg.sessions = true;
        else if (std::strcmp(argv[i], "--overload") == 0)
            cfg.overload = true;
        // --jobs is consumed by jobsFromArgs below.
    }

    sim::RunExecutor pool(sim::RunExecutor::jobsFromArgs(argc, argv));
    const chaos::ChaosReport report =
        chaos::runChaos(cfg, plans, &pool);

    chaos::OutcomeMix total;
    const chaos::PlanReport *firstBad = nullptr;
    for (std::size_t i = 0; i < report.plans.size(); ++i) {
        const chaos::PlanReport &p = report.plans[i];
        total += p.result.mix;
        const chaos::OutcomeMix &m = p.result.mix;
        std::printf("plan %zu seed %llu faults %zu: ", i,
                    static_cast<unsigned long long>(p.planSeed),
                    p.plan.faults.size());
        if (p.result.ok()) {
            std::printf(
                "ok (sent=%llu ok=%llu timeout=%llu cancelled=%llu "
                "hedge-won=%llu)\n",
                static_cast<unsigned long long>(m.clientSent),
                static_cast<unsigned long long>(m.clientOk),
                static_cast<unsigned long long>(m.clientTimedOut),
                static_cast<unsigned long long>(m.requestsCancelled),
                static_cast<unsigned long long>(m.rpcHedgeWins));
        } else {
            std::printf("VIOLATION\n");
            for (const std::string &why : p.result.violations)
                std::printf("  - %s\n", why.c_str());
            if (firstBad == nullptr)
                firstBad = &p;
        }
    }

    std::printf(
        "chaos: %zu plans, %u violating; outcome mix: sent=%llu "
        "ok=%llu error=%llu shed=%llu timeout=%llu "
        "req-cancelled=%llu rpc-cancelled=%llu hedges=%llu "
        "hedge-wins=%llu cancels-sent=%llu\n",
        report.plans.size(), report.violating(),
        static_cast<unsigned long long>(total.clientSent),
        static_cast<unsigned long long>(total.clientOk),
        static_cast<unsigned long long>(total.clientError),
        static_cast<unsigned long long>(total.clientShed),
        static_cast<unsigned long long>(total.clientTimedOut),
        static_cast<unsigned long long>(total.requestsCancelled),
        static_cast<unsigned long long>(total.rpcCancelled),
        static_cast<unsigned long long>(total.rpcHedges),
        static_cast<unsigned long long>(total.rpcHedgeWins),
        static_cast<unsigned long long>(total.cancelsSent));

    if (firstBad != nullptr) {
        std::printf("shrinking first violating plan (%zu faults)...\n",
                    firstBad->plan.faults.size());
        const chaos::ShrinkResult shrunk =
            chaos::shrinkPlan(cfg, firstBad->plan);
        std::printf("minimal reproducer (%zu faults, %u probes):\n",
                    shrunk.plan.faults.size(), shrunk.probes);
        std::printf("%s",
                    chaos::formatFaultPlan(shrunk.plan).c_str());
        for (const std::string &why : shrunk.violations)
            std::printf("  still violates: %s\n", why.c_str());
        return 1;
    }
    return 0;
}
