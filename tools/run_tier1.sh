#!/usr/bin/env sh
# Configure, build, and run the tier-1 test suite (ROADMAP.md).
#
# Usage:
#   tools/run_tier1.sh [LABEL...]
#
# With no arguments the suite runs in labeled passes -- each ctest
# label explicitly (so an accidentally empty label fails the run
# instead of silently passing), then everything unlabeled -- and the
# script exits nonzero if any pass fails. Each LABEL argument instead
# restricts the run to that label (repeatable). Labels in use:
#   sanitize  fault injection + resilience (-DDITTO_SANITIZE=ON subset)
#   obs       trace export/import + metrics registry
#   cluster   replica groups, balancing, autoscaling, topo_gen
#   chaos     chaos fuzzer: invariants, determinism, plan shrinking
#   region    multi-region: WAN links, prefer-local, failover RTO
#   clone     trace-driven cloning: foreign ingest, closure fidelity,
#             malformed-Jaeger defect corpus
#   workload  sessionized workload engine: arrivals, rate curves,
#             SLO reports, outcome conservation, determinism
#   overload  adaptive overload control: AIMD limiter, retry budgets,
#             priority shedding, brownout, armed determinism
#   parallel  RunExecutor determinism (the -DDITTO_TSAN=ON subset;
#             overlaps the labels above, so the default passes skip it)
#
# Runtime stays bounded for single-core CI: every labeled test is
# seeded and short (the chaos campaigns use small configs), so the
# full default run finishes in a few minutes without parallelism.
#
# Environment:
#   BUILD_DIR  build directory (default: build)
#   CMAKE_ARGS extra configure flags, e.g. "-DDITTO_TSAN=ON"

set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${BUILD_DIR:-"$repo/build"}

# shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
cmake -B "$build" -S "$repo" ${CMAKE_ARGS:-}
cmake --build "$build" -j

# A bare `ctest -j` would swallow a following option as its value;
# always pass the level explicitly.
jobs=$(nproc 2>/dev/null || echo 2)

cd "$build"

if [ "$#" -gt 0 ]; then
    labels=""
    for l in "$@"; do
        labels="$labels${labels:+|}$l"
    done
    exec ctest --output-on-failure -j "$jobs" --no-tests=error \
        -L "$labels"
fi

# Labeled passes first: --no-tests=error turns a vanished label into
# a failure rather than a vacuous pass. `parallel` is not its own
# pass because every parallel test already carries one of these
# labels; it exists for the TSan build to select.
status=0
for label in sanitize obs cluster chaos region clone workload \
             overload; do
    echo "== tier-1 label: $label =="
    ctest --output-on-failure -j "$jobs" --no-tests=error \
        -L "$label" || status=$?
done

# Everything not covered by a labeled pass (the core suite).
echo "== tier-1 remainder =="
ctest --output-on-failure -j "$jobs" --no-tests=error \
    -LE "sanitize|obs|cluster|chaos|region|clone|workload|overload|parallel" \
    || status=$?

# Advisory benchmark-regression check: if this build directory has a
# fresh BENCH_pipeline.json (benches write it to their cwd), diff it
# against the committed baseline. Wall-clock on shared CI machines is
# noisy, so a regression warns but never fails tier-1.
if command -v python3 >/dev/null 2>&1 && \
    [ -f "$build/BENCH_pipeline.json" ]; then
    echo "== bench regression check (advisory) =="
    python3 "$repo/tools/check_bench_regression.py" \
        --fresh "$build/BENCH_pipeline.json" \
        --baseline "$repo/BENCH_pipeline.json" || true
fi

exit "$status"
