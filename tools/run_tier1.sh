#!/usr/bin/env sh
# Configure, build, and run the tier-1 test suite (ROADMAP.md).
#
# Usage:
#   tools/run_tier1.sh [LABEL...]
#
# With no arguments the full ctest suite runs. Each LABEL restricts
# the run to that ctest label (repeatable); the labels in use:
#   cluster   replica groups, balancing, autoscaling, topo_gen
#   parallel  RunExecutor determinism (the -DDITTO_TSAN=ON subset)
#   sanitize  fault injection + resilience (-DDITTO_SANITIZE=ON subset)
#   obs       trace export/import + metrics registry
#
# Environment:
#   BUILD_DIR  build directory (default: build)
#   CMAKE_ARGS extra configure flags, e.g. "-DDITTO_TSAN=ON"

set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${BUILD_DIR:-"$repo/build"}

# shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
cmake -B "$build" -S "$repo" ${CMAKE_ARGS:-}
cmake --build "$build" -j

labels=""
for l in "$@"; do
    labels="$labels${labels:+|}$l"
done

# A bare `ctest -j` would swallow a following option as its value;
# always pass the level explicitly.
jobs=$(nproc 2>/dev/null || echo 2)

cd "$build"
if [ -n "$labels" ]; then
    ctest --output-on-failure -j "$jobs" -L "$labels"
else
    ctest --output-on-failure -j "$jobs"
fi
