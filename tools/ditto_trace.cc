/**
 * @file
 * ditto-trace: run a deployment, export its traces and metrics, and
 * prove the export round-trips.
 *
 * For each seed the tool runs a small four-service fanout app
 * (front -> {mid, cache}, mid -> back, two machines), exports the
 * deployment's traces as Jaeger JSON plus metrics snapshots
 * (Prometheus text + JSON), then re-reads the exported *file* and
 * feeds it to core::analyzeTopology. The recovered DAG -- nodes,
 * edges, per-edge call counts and byte stats -- must match the
 * in-memory path bit-for-bit; the tool exits nonzero otherwise.
 *
 * With --cluster the backend is replicated and an autoscaler watches
 * it; the tool additionally asserts that the autoscaler's scaling
 * spans (service "autoscaler:<group>") survive the file round trip
 * span-for-span and that the scale-up/down counters appear in both
 * metric snapshots.
 *
 * Runs fan out on a sim::RunExecutor. Output files and stdout are
 * byte-identical at any --jobs count (DESIGN.md §8).
 *
 * Usage:
 *   ditto_trace [--out DIR] [--seed S] [--runs K] [--qps Q]
 *               [--duration-ms D] [--sample-rate R] [--faults]
 *               [--cluster] [--jobs N]
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <memory>

#include "app/deployment.h"
#include "app/resilience.h"
#include "cluster/autoscaler.h"
#include "cluster/placer.h"
#include "cluster/replica_set.h"
#include "core/topology_analyzer.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "obs/jaeger.h"
#include "obs/metrics.h"
#include "obs/register.h"
#include "sim/run_executor.h"
#include "workload/loadgen.h"

namespace {

using namespace ditto;

struct Options
{
    std::string out = ".";
    std::uint64_t seed = 1;
    unsigned runs = 3;
    double qps = 3000;
    sim::Time duration = sim::milliseconds(150);
    double sampleRate = 1.0;
    bool faults = false;
    bool cluster = false;
};

hw::CodeBlock
toolBlock(const std::string &label, std::uint64_t seed)
{
    hw::BlockSpec bs;
    bs.label = label;
    bs.instCount = 64;
    bs.seed = seed;
    return hw::buildBlock(bs);
}

app::ServiceSpec
leafSpec(const std::string &name, std::uint64_t blockSeed)
{
    app::ServiceSpec spec;
    spec.name = name;
    spec.threads.workers = 2;
    spec.blocks.push_back(toolBlock(name + ".h", blockSeed));
    app::EndpointSpec ep;
    ep.name = "get";
    ep.handler.ops = {app::opCompute(0, 5)};
    spec.endpoints.push_back(ep);
    return spec;
}

app::ServiceSpec
midSpec()
{
    app::ServiceSpec spec;
    spec.name = "mid";
    spec.threads.workers = 2;
    spec.downstreams = {"back"};
    spec.blocks.push_back(toolBlock("mid.h", 5));
    app::EndpointSpec ep;
    ep.name = "assemble";
    ep.handler.ops = {app::opCompute(0, 4),
                      app::opRpc(0, 0, 128, 256),
                      app::opCompute(0, 2)};
    spec.endpoints.push_back(ep);
    return spec;
}

app::ServiceSpec
frontSpec(bool withResilience)
{
    app::ServiceSpec spec;
    spec.name = "front";
    spec.threads.workers = 2;
    spec.downstreams = {"mid", "cache"};
    spec.blocks.push_back(toolBlock("front.h", 7));
    app::EndpointSpec ep;
    ep.name = "page";
    ep.handler.ops = {app::opCompute(0, 3),
                      app::opRpc(0, 0, 256, 512),
                      app::opRpc(1, 0, 64, 1024),
                      app::opCompute(0, 3)};
    spec.endpoints.push_back(ep);
    if (withResilience) {
        spec.resilience.rpcDeadline = sim::microseconds(800);
        spec.resilience.retry.maxAttempts = 2;
        spec.resilience.retry.baseBackoff = sim::microseconds(100);
        spec.resilience.retry.jitter = 0.0;
        // Arm the request lifecycle too, so faulted exports carry
        // deadline and cancellation-cause tags to round-trip.
        spec.resilience.propagateDeadline = true;
        spec.resilience.hopMargin = sim::microseconds(100);
        spec.resilience.cancellation = true;
    }
    return spec;
}

/** One run's exported artifacts + the in-memory topology. */
struct RunArtifacts
{
    std::uint64_t seed = 0;
    std::string traceJson;
    std::string prometheus;
    std::string metricsJson;
    core::Topology topo;
    std::uint64_t spans = 0;
    std::uint64_t edges = 0;
    std::uint64_t completed = 0;
    std::uint64_t autoscalerSpans = 0;
    std::uint64_t scaleUps = 0;
    std::uint64_t scaleDowns = 0;
};

std::uint64_t
countAutoscalerSpans(const trace::Tracer &tracer)
{
    std::uint64_t n = 0;
    for (const trace::Span &span : tracer.spans()) {
        if (span.service.rfind("autoscaler:", 0) == 0)
            n++;
    }
    return n;
}

RunArtifacts
runOnce(const Options &opt, std::uint64_t seed)
{
    app::Deployment dep(seed, opt.sampleRate);
    os::Machine &web = dep.addMachine("web", hw::platformA());
    os::Machine &db = dep.addMachine("db", hw::platformA());
    dep.deploy(leafSpec("back", 3), db);
    if (opt.cluster)
        dep.addReplica("back", web);
    dep.deploy(leafSpec("cache", 4), db);
    dep.deploy(midSpec(), web);
    dep.deploy(frontSpec(opt.faults), web);
    dep.wireAll();

    // --cluster: an autoscaler watches the replicated backend. The
    // low watermark sits far above the load this tiny app generates,
    // so the loop deterministically drains the group back to one
    // replica -- guaranteeing at least one scaling span per run.
    cluster::Placer placer;
    std::unique_ptr<cluster::ReplicaSet> set;
    std::unique_ptr<cluster::Autoscaler> scaler;
    obs::MetricsRegistry registry;
    if (opt.cluster) {
        placer.addMachine(web, 4);
        placer.addMachine(db, 4);
        set = std::make_unique<cluster::ReplicaSet>(dep, "back",
                                                    placer, &registry);
        cluster::AutoscalerSpec as;
        as.period = opt.duration / 10;
        as.cooldown = opt.duration / 5;
        as.queueHigh = 1000.0;
        as.queueLow = 100.0;
        scaler = std::make_unique<cluster::Autoscaler>(dep, *set,
                                                       registry, as);
        scaler->start();
    }

    fault::FaultInjector injector(dep);
    if (opt.faults) {
        fault::FaultPlan plan;
        plan.linkDrop("web", "db", opt.duration / 4,
                      opt.duration / 4, 0.3);
        injector.install(plan);
    }

    obs::registerDeploymentMetrics(registry, dep);
    obs::registerInjectorMetrics(registry, injector);

    workload::LoadSpec load;
    load.qps = opt.qps;
    load.connections = 4;
    load.openLoop = true;
    load.timeout = sim::milliseconds(5);
    if (opt.faults) {
        load.propagateDeadline = true;
        load.cancelOnTimeout = true;
    }
    workload::LoadGen gen(dep, *dep.find("front"), load,
                          seed ^ 0x10adull);
    gen.start();
    dep.runFor(opt.duration);

    RunArtifacts art;
    art.seed = seed;
    art.traceJson = obs::exportJaegerJson(dep.tracer());
    art.prometheus = registry.prometheusText();
    art.metricsJson = registry.jsonText();
    art.topo = core::analyzeTopology(dep.tracer());
    art.spans = dep.tracer().spans().size();
    art.edges = dep.tracer().edges().size();
    art.completed = gen.completed();
    if (opt.cluster) {
        art.autoscalerSpans = countAutoscalerSpans(dep.tracer());
        art.scaleUps = registry.readCounter(
            "ditto_autoscaler_scale_ups_total",
            {{"service", "back"}});
        art.scaleDowns = registry.readCounter(
            "ditto_autoscaler_scale_downs_total",
            {{"service", "back"}});
    }
    return art;
}

bool
sameTopology(const core::Topology &a, const core::Topology &b,
             std::string &why)
{
    if (a.services != b.services) {
        why = "service lists differ";
        return false;
    }
    if (a.root != b.root) {
        why = "roots differ";
        return false;
    }
    if (a.requestCounts != b.requestCounts) {
        why = "per-service request counts differ";
        return false;
    }
    if (a.edges.size() != b.edges.size()) {
        why = "edge counts differ";
        return false;
    }
    for (std::size_t i = 0; i < a.edges.size(); ++i) {
        const auto &ea = a.edges[i];
        const auto &eb = b.edges[i];
        if (ea.caller != eb.caller || ea.callee != eb.callee ||
            ea.endpoint != eb.endpoint ||
            ea.callsPerCallerRequest != eb.callsPerCallerRequest ||
            ea.avgRequestBytes != eb.avgRequestBytes ||
            ea.avgResponseBytes != eb.avgResponseBytes) {
            why = "edge " + ea.caller + "->" + ea.callee +
                " stats differ";
            return false;
        }
    }
    return true;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        std::fprintf(stderr, "ditto-trace: cannot write %s\n",
                     path.c_str());
        std::exit(1);
    }
    os.write(content.data(),
             static_cast<std::streamsize>(content.size()));
}

bool
parseArg(int argc, char **argv, int &i, const char *name,
         std::string &value)
{
    const std::size_t n = std::strlen(name);
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
        value = argv[++i];
        return true;
    }
    if (std::strncmp(argv[i], name, n) == 0 && argv[i][n] == '=') {
        value = argv[i] + n + 1;
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (parseArg(argc, argv, i, "--out", v))
            opt.out = v;
        else if (parseArg(argc, argv, i, "--seed", v))
            opt.seed = std::strtoull(v.c_str(), nullptr, 10);
        else if (parseArg(argc, argv, i, "--runs", v))
            opt.runs = static_cast<unsigned>(
                std::strtoul(v.c_str(), nullptr, 10));
        else if (parseArg(argc, argv, i, "--qps", v))
            opt.qps = std::strtod(v.c_str(), nullptr);
        else if (parseArg(argc, argv, i, "--duration-ms", v))
            opt.duration = sim::milliseconds(
                std::strtoull(v.c_str(), nullptr, 10));
        else if (parseArg(argc, argv, i, "--sample-rate", v))
            opt.sampleRate = std::strtod(v.c_str(), nullptr);
        else if (std::strcmp(argv[i], "--faults") == 0)
            opt.faults = true;
        else if (std::strcmp(argv[i], "--cluster") == 0)
            opt.cluster = true;
        // --jobs is consumed by jobsFromArgs below.
    }

    sim::RunExecutor pool(sim::RunExecutor::jobsFromArgs(argc, argv));
    std::vector<std::function<RunArtifacts()>> tasks;
    for (unsigned k = 0; k < opt.runs; ++k) {
        const std::uint64_t seed = opt.seed + k;
        tasks.push_back([&opt, seed] { return runOnce(opt, seed); });
    }
    const auto results = pool.runOrdered(std::move(tasks));

    bool allOk = true;
    for (const RunArtifacts &art : results) {
        const std::string base =
            opt.out + "/ditto_" + std::to_string(art.seed);
        const std::string tracePath = base + "_trace.json";
        writeFile(tracePath, art.traceJson);
        writeFile(base + "_metrics.prom", art.prometheus);
        writeFile(base + "_metrics.json", art.metricsJson);

        // The round trip goes through the file on disk, not the
        // in-memory spans.
        const trace::Tracer reimported =
            obs::readJaegerJsonFile(tracePath);
        const core::Topology fromFile =
            core::analyzeTopology(reimported);
        std::string why;
        bool ok = sameTopology(art.topo, fromFile, why);

        if (ok) {
            // Export must be byte-symmetric: re-exporting the
            // reimported tracer reproduces the file exactly, so
            // every tag -- including the request-lifecycle deadline
            // and cancellation-cause tags -- survives the trip.
            if (obs::exportJaegerJson(reimported) != art.traceJson) {
                ok = false;
                why = "re-export differs from original export";
            } else if (opt.faults &&
                       (art.traceJson.find("ditto.deadline_ns") ==
                            std::string::npos ||
                        art.traceJson.find("ditto.cause") ==
                            std::string::npos)) {
                ok = false;
                why = "lifecycle tags missing from faulted export";
            }
        }

        if (opt.cluster && ok) {
            // Scaling decisions must ride the same export path as
            // request spans: the file hands back every autoscaler
            // span, and the action counters reached both snapshots.
            const std::uint64_t fromFileSpans =
                countAutoscalerSpans(reimported);
            if (art.autoscalerSpans == 0 ||
                fromFileSpans != art.autoscalerSpans) {
                ok = false;
                why = "autoscaler spans lost in round trip (" +
                    std::to_string(art.autoscalerSpans) + " -> " +
                    std::to_string(fromFileSpans) + ")";
            } else if (art.autoscalerSpans !=
                       art.scaleUps + art.scaleDowns) {
                ok = false;
                why = "autoscaler spans disagree with scale counters";
            } else if (art.prometheus.find(
                           "ditto_autoscaler_scale_ups_total") ==
                           std::string::npos ||
                       art.metricsJson.find(
                           "ditto_autoscaler_scale_downs_total") ==
                           std::string::npos) {
                ok = false;
                why = "scale counters missing from metric snapshots";
            }
        }
        allOk = allOk && ok;

        std::printf("seed %llu: %llu completed requests, "
                    "%llu spans, %llu rpc edges\n",
                    static_cast<unsigned long long>(art.seed),
                    static_cast<unsigned long long>(art.completed),
                    static_cast<unsigned long long>(art.spans),
                    static_cast<unsigned long long>(art.edges));
        std::printf("  topology: root=%s services=%zu edges=%zu\n",
                    art.topo.root.c_str(), art.topo.services.size(),
                    art.topo.edges.size());
        if (opt.cluster) {
            std::printf(
                "  autoscaler: %llu spans (%llu up, %llu down)\n",
                static_cast<unsigned long long>(art.autoscalerSpans),
                static_cast<unsigned long long>(art.scaleUps),
                static_cast<unsigned long long>(art.scaleDowns));
        }
        std::printf("  round-trip via %s: %s%s%s\n",
                    tracePath.c_str(),
                    ok ? "OK (bit-identical)" : "MISMATCH",
                    ok ? "" : " -- ", ok ? "" : why.c_str());
    }
    return allOk ? 0 : 1;
}
