/**
 * @file
 * ditto-clone: clone a foreign Jaeger trace into a runnable
 * deployment and prove the loop closes.
 *
 * Input is a Jaeger JSON document exported by any tracing backend --
 * typically one Ditto did NOT produce (no dittoMeta marker, float
 * microsecond timestamps, client spans between caller and callee).
 * The tool ingests it, recovers the dependency DAG and per-edge RPC
 * statistics, synthesizes ServiceSpecs plus a matching load mix, runs
 * the clone, re-exports the clone's own traces, re-analyzes them, and
 * diffs the recovered graph and per-edge stats against the original
 * under explicit fidelity tolerances. Exit status is nonzero when any
 * run fails closure.
 *
 * Without --in the built-in foreign fixture is used (write it out
 * with --write-demo to inspect it or to try the worked example in
 * README.md). Runs fan out on a sim::RunExecutor; stdout and output
 * files are byte-identical at any --jobs count (DESIGN.md §8).
 *
 * Usage:
 *   ditto_clone [--in FILE] [--out DIR] [--lenient] [--qps Q]
 *               [--duration-ms D] [--seed S] [--runs K] [--jobs N]
 *               [--sessions] [--write-demo FILE]
 *
 * --sessions drives the clone with the sessionized WorkloadEngine
 * (the synthesized endpoint mix becomes the engine's endpoint
 * classes) instead of the plain LoadGen.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "clone/foreign_fixture.h"
#include "clone/trace_clone.h"
#include "sim/run_executor.h"
#include "sim/time.h"

namespace {

using namespace ditto;

struct Options
{
    std::string in;         //!< empty: built-in fixture
    std::string out;        //!< empty: stdout only
    std::string writeDemo;  //!< write the fixture here and exit
    bool lenient = false;
    double qps = 2000;
    sim::Time duration = sim::milliseconds(400);
    std::uint64_t seed = 1;
    unsigned runs = 1;
    bool sessions = false;
};

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        std::fprintf(stderr, "ditto-clone: cannot write %s\n",
                     path.c_str());
        std::exit(1);
    }
    os.write(content.data(),
             static_cast<std::streamsize>(content.size()));
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::fprintf(stderr, "ditto-clone: cannot read %s\n",
                     path.c_str());
        std::exit(1);
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

bool
parseArg(int argc, char **argv, int &i, const char *name,
         std::string &value)
{
    const std::size_t n = std::strlen(name);
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
        value = argv[++i];
        return true;
    }
    if (std::strncmp(argv[i], name, n) == 0 && argv[i][n] == '=') {
        value = argv[i] + n + 1;
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (parseArg(argc, argv, i, "--in", v))
            opt.in = v;
        else if (parseArg(argc, argv, i, "--out", v))
            opt.out = v;
        else if (parseArg(argc, argv, i, "--write-demo", v))
            opt.writeDemo = v;
        else if (parseArg(argc, argv, i, "--qps", v))
            opt.qps = std::strtod(v.c_str(), nullptr);
        else if (parseArg(argc, argv, i, "--duration-ms", v))
            opt.duration = sim::milliseconds(
                std::strtoull(v.c_str(), nullptr, 10));
        else if (parseArg(argc, argv, i, "--seed", v))
            opt.seed = std::strtoull(v.c_str(), nullptr, 10);
        else if (parseArg(argc, argv, i, "--runs", v))
            opt.runs = static_cast<unsigned>(
                std::strtoul(v.c_str(), nullptr, 10));
        else if (std::strcmp(argv[i], "--lenient") == 0)
            opt.lenient = true;
        else if (std::strcmp(argv[i], "--sessions") == 0)
            opt.sessions = true;
        // --jobs is consumed by jobsFromArgs below.
    }

    if (!opt.writeDemo.empty()) {
        writeFile(opt.writeDemo, clone::exampleForeignTraceJson());
        std::printf("wrote built-in foreign fixture to %s\n",
                    opt.writeDemo.c_str());
        return 0;
    }

    const std::string input = opt.in.empty()
        ? clone::exampleForeignTraceJson()
        : readFile(opt.in);

    if (!opt.out.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt.out, ec);
        if (ec) {
            std::fprintf(stderr,
                         "ditto-clone: cannot create --out %s: %s\n",
                         opt.out.c_str(), ec.message().c_str());
            return 1;
        }
    }

    sim::RunExecutor pool(sim::RunExecutor::jobsFromArgs(argc, argv));
    std::vector<std::function<clone::ClosureResult()>> tasks;
    for (unsigned k = 0; k < std::max(1u, opt.runs); ++k) {
        const std::uint64_t seed = opt.seed + k;
        tasks.push_back([&opt, &input, seed] {
            clone::ClosureOptions copts;
            copts.ingest.import.lenient = opt.lenient;
            copts.qps = opt.qps;
            copts.measure = opt.duration;
            copts.seed = seed;
            copts.sessionized = opt.sessions;
            return clone::runClosure(input, copts);
        });
    }
    const auto results = pool.runOrdered(std::move(tasks));

    bool allOk = true;
    for (std::size_t k = 0; k < results.size(); ++k) {
        const clone::ClosureResult &res = results[k];
        const std::uint64_t seed = opt.seed + k;
        std::printf("=== closure, seed %llu ===\n",
                    static_cast<unsigned long long>(seed));
        const std::string report = res.report();
        std::fwrite(report.data(), 1, report.size(), stdout);
        for (const std::string &w : res.model.ingest.warnings)
            std::printf("  warning: %s\n", w.c_str());
        if (!opt.out.empty()) {
            const std::string base =
                opt.out + "/clone_" + std::to_string(seed);
            writeFile(base + "_report.txt", report);
            writeFile(base + "_traces.json", res.cloneTraceJson);
        }
        allOk = allOk && res.fidelity.pass;
    }
    std::printf("%s\n", allOk ? "CLOSURE PASS" : "CLOSURE FAIL");
    return allOk ? 0 : 1;
}
