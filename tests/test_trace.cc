/**
 * @file
 * Tests for the distributed-tracing substrate (the Jaeger stand-in):
 * span recording, deterministic head sampling, and clearing.
 */

#include <gtest/gtest.h>

#include "trace/tracer.h"

namespace {

using namespace ditto::trace;

TEST(Tracer, RecordsSpansAndEdges)
{
    Tracer tracer(1.0);
    const auto spanId = tracer.newSpanId();
    tracer.recordSpan({100, spanId, 0, "svc", 2, 10, 50});
    tracer.recordEdge({100, spanId, "svc", "dep", 0, 128, 256});
    ASSERT_EQ(tracer.spans().size(), 1u);
    ASSERT_EQ(tracer.edges().size(), 1u);
    EXPECT_EQ(tracer.spans()[0].service, "svc");
    EXPECT_EQ(tracer.spans()[0].endpoint, 2u);
    EXPECT_EQ(tracer.spans()[0].end - tracer.spans()[0].start, 40u);
    EXPECT_EQ(tracer.edges()[0].callee, "dep");
}

TEST(Tracer, SpanIdsAreUnique)
{
    Tracer tracer;
    std::set<std::uint64_t> ids;
    for (int i = 0; i < 1000; ++i)
        ids.insert(tracer.newSpanId());
    EXPECT_EQ(ids.size(), 1000u);
}

TEST(Tracer, SamplingIsDeterministicPerTraceId)
{
    Tracer tracer(0.3);
    for (std::uint64_t id = 1; id < 100; ++id)
        EXPECT_EQ(tracer.sampled(id), tracer.sampled(id));
}

TEST(Tracer, SamplingRateApproximatelyHonored)
{
    Tracer tracer(0.25);
    int sampled = 0;
    for (std::uint64_t id = 1; id <= 20000; ++id)
        sampled += tracer.sampled(id);
    EXPECT_NEAR(sampled / 20000.0, 0.25, 0.02);
}

TEST(Tracer, UnsampledTracesAreDropped)
{
    Tracer tracer(0.25);
    for (std::uint64_t id = 1; id <= 1000; ++id) {
        tracer.recordSpan({id, tracer.newSpanId(), 0, "s", 0, 0, 1});
        tracer.recordEdge({id, 1, "s", "d", 0, 10, 10});
    }
    EXPECT_LT(tracer.spans().size(), 400u);
    EXPECT_GT(tracer.spans().size(), 150u);
    EXPECT_EQ(tracer.spans().size(), tracer.edges().size());
    // Only sampled trace ids appear.
    for (const Span &span : tracer.spans())
        EXPECT_TRUE(tracer.sampled(span.traceId));
}

TEST(Tracer, RateExtremes)
{
    Tracer never(0.0);
    Tracer always(1.0);
    for (std::uint64_t id = 1; id <= 50; ++id) {
        EXPECT_FALSE(never.sampled(id));
        EXPECT_TRUE(always.sampled(id));
    }
}

TEST(Tracer, ClearResets)
{
    Tracer tracer;
    tracer.recordSpan({1, 2, 0, "s", 0, 0, 1});
    tracer.clear();
    EXPECT_TRUE(tracer.spans().empty());
    EXPECT_TRUE(tracer.edges().empty());
}

} // namespace
