/**
 * @file
 * Overload-control tests: AIMD limiter math, retry-budget token
 * bucket, admission causes (sojourn / doomed deadline / concurrency
 * limit), graduated priority shedding, brownout edge skipping,
 * server- and client-side retry budgets, conservation of the new
 * shed/skip causes, and determinism of an armed configuration.
 */

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "app/deployment.h"
#include "app/overload.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "obs/metrics.h"
#include "obs/register.h"
#include "trace/tracer.h"
#include "workload/engine.h"
#include "workload/loadgen.h"
#include "workload/slo.h"

namespace {

using namespace ditto;

// ---------------------------------------------------------------------------
// OverloadController unit tests
// ---------------------------------------------------------------------------

app::OverloadSpec
limiterSpec()
{
    app::OverloadSpec ov;
    ov.enabled = true;
    ov.minLimit = 4;
    ov.maxLimit = 128;
    ov.initialLimit = 16;
    ov.window = 4;
    ov.latencyRatio = 2.0;
    ov.decrease = 0.5;
    ov.increase = 2;
    ov.baselineAlpha = 0.5;
    return ov;
}

/** Feed one full window of identical latencies. */
void
feedWindow(app::OverloadController &ov, sim::Time latency,
           unsigned window = 4)
{
    for (unsigned i = 0; i < window; ++i)
        ov.onRequestDone(latency);
}

TEST(OverloadLimiter, FirstWindowSeedsBaseline)
{
    app::OverloadController ov(limiterSpec());
    EXPECT_EQ(ov.baselineNs(), 0.0);
    EXPECT_EQ(ov.currentLimit(), 16u);
    feedWindow(ov, sim::milliseconds(1));
    EXPECT_DOUBLE_EQ(ov.baselineNs(),
                     static_cast<double>(sim::milliseconds(1)));
    // The seeding window neither grows nor shrinks the limit.
    EXPECT_EQ(ov.currentLimit(), 16u);
}

TEST(OverloadLimiter, GrowsAdditivelyWhileUncongested)
{
    app::OverloadController ov(limiterSpec());
    feedWindow(ov, sim::milliseconds(1));  // seed
    feedWindow(ov, sim::milliseconds(1));
    EXPECT_EQ(ov.currentLimit(), 18u);
    feedWindow(ov, sim::milliseconds(1));
    EXPECT_EQ(ov.currentLimit(), 20u);
    EXPECT_EQ(ov.uncongestedWindows(), 2u);
    EXPECT_FALSE(ov.brownoutActive());
}

TEST(OverloadLimiter, ShrinksMultiplicativelyOnCongestion)
{
    app::OverloadController ov(limiterSpec());
    feedWindow(ov, sim::milliseconds(1));  // baseline = 1ms
    feedWindow(ov, sim::milliseconds(3));  // 3x baseline > ratio 2x
    EXPECT_EQ(ov.currentLimit(), 8u);      // 16 * 0.5
    EXPECT_EQ(ov.congestedWindows(), 1u);
    EXPECT_TRUE(ov.brownoutActive());
    // A congested window must NOT creep the baseline upward --
    // otherwise sustained overload would look normal.
    EXPECT_DOUBLE_EQ(ov.baselineNs(),
                     static_cast<double>(sim::milliseconds(1)));
    // Recovery: an uncongested window grows again and folds into the
    // baseline by EWMA.
    feedWindow(ov, sim::milliseconds(1));
    EXPECT_EQ(ov.currentLimit(), 10u);
    EXPECT_FALSE(ov.brownoutActive());
}

TEST(OverloadLimiter, LimitClampsToFloorAndCeiling)
{
    app::OverloadSpec spec = limiterSpec();
    spec.minLimit = 6;
    spec.maxLimit = 20;
    app::OverloadController ov(spec);
    feedWindow(ov, sim::milliseconds(1));
    for (int i = 0; i < 10; ++i)
        feedWindow(ov, sim::milliseconds(10));
    EXPECT_EQ(ov.currentLimit(), 6u);  // floor holds
    for (int i = 0; i < 50; ++i)
        feedWindow(ov, sim::milliseconds(1));
    EXPECT_EQ(ov.currentLimit(), 20u);  // ceiling holds
}

TEST(OverloadLimiter, AdmissionCauses)
{
    app::OverloadSpec spec = limiterSpec();
    spec.maxSojourn = sim::microseconds(100);
    spec.deadlineAware = true;
    app::OverloadController ov(spec);

    // Sojourn: queued longer than maxSojourn -> shed at dequeue.
    EXPECT_STREQ(ov.admit(sim::microseconds(200), /*sendTime=*/0,
                          /*deadline=*/0, 0, 0),
                 "sojourn");
    EXPECT_EQ(ov.sojournSheds(), 1u);
    EXPECT_EQ(ov.admit(sim::microseconds(50), 0, 0, 0, 0), nullptr);

    // Doomed deadline: remaining budget below the latency baseline.
    feedWindow(ov, sim::milliseconds(2));  // baseline = 2ms
    EXPECT_STREQ(ov.admit(sim::milliseconds(10), sim::milliseconds(10),
                          sim::milliseconds(11), 0, 0),
                 "deadline_unreachable");
    EXPECT_EQ(ov.deadlineSheds(), 1u);
    EXPECT_EQ(ov.admit(sim::milliseconds(10), sim::milliseconds(10),
                       sim::milliseconds(13), 0, 0),
              nullptr);
    // No propagated deadline (0) never triggers the check.
    EXPECT_EQ(ov.admit(sim::milliseconds(10), sim::milliseconds(10),
                       0, 0, 0),
              nullptr);

    // Concurrency limit: outstanding at/above the limit sheds.
    EXPECT_STREQ(ov.admit(0, 0, 0, 0, /*outstanding=*/16),
                 "concurrency_limit");
    EXPECT_EQ(ov.limitSheds(), 1u);
    EXPECT_EQ(ov.admit(0, 0, 0, 0, 15), nullptr);
}

TEST(OverloadLimiter, PriorityGraduatesTheLimit)
{
    app::OverloadSpec spec = limiterSpec();
    spec.priorityLevels = 4;
    app::OverloadController ov(spec);  // limit 16
    EXPECT_EQ(ov.limitFor(0), 4u);
    EXPECT_EQ(ov.limitFor(1), 8u);
    EXPECT_EQ(ov.limitFor(2), 12u);
    EXPECT_EQ(ov.limitFor(3), 16u);
    // Priorities past the top level clamp to the full limit.
    EXPECT_EQ(ov.limitFor(9), 16u);
    // Lowest class sheds at 1/4 of the limit; highest still admits.
    EXPECT_STREQ(ov.admit(0, 0, 0, /*priority=*/0, 4),
                 "concurrency_limit");
    EXPECT_EQ(ov.admit(0, 0, 0, /*priority=*/3, 4), nullptr);
}

TEST(OverloadLimiter, PriorityLevelsOneIsUngraded)
{
    app::OverloadController ov(limiterSpec());
    EXPECT_EQ(ov.limitFor(0), 16u);
    EXPECT_EQ(ov.limitFor(255), 16u);
}

// ---------------------------------------------------------------------------
// RetryBudget unit tests
// ---------------------------------------------------------------------------

TEST(RetryBudget, DisabledAlwaysGrantsStateFree)
{
    app::RetryBudget budget;
    EXPECT_FALSE(budget.enabled());
    for (int i = 0; i < 100; ++i) {
        budget.onFresh();
        EXPECT_TRUE(budget.allowWithdraw());
    }
    EXPECT_EQ(budget.tokens(), 0.0);
    EXPECT_EQ(budget.withdrawals(), 0u);
    EXPECT_EQ(budget.suppressed(), 0u);
}

TEST(RetryBudget, InitialAllowanceThenRatioBound)
{
    app::RetryBudget budget;
    budget.configure(/*ratio=*/0.1, /*initial=*/2, /*cap=*/10);
    EXPECT_TRUE(budget.enabled());
    // The initial allowance burns off first.
    EXPECT_TRUE(budget.allowWithdraw());
    EXPECT_TRUE(budget.allowWithdraw());
    EXPECT_FALSE(budget.allowWithdraw());
    EXPECT_EQ(budget.suppressed(), 1u);
    // ~10 fresh calls deposit one retry token (15 here: the sum of
    // fifteen 0.1 deposits is safely past 1.0 in floating point).
    for (int i = 0; i < 15; ++i)
        budget.onFresh();
    EXPECT_TRUE(budget.allowWithdraw());
    EXPECT_FALSE(budget.allowWithdraw());
    EXPECT_EQ(budget.withdrawals(), 3u);
    EXPECT_EQ(budget.suppressed(), 2u);
}

TEST(RetryBudget, TokensCapAtConfiguredCeiling)
{
    app::RetryBudget budget;
    budget.configure(1.0, 0, /*cap=*/3);
    for (int i = 0; i < 100; ++i)
        budget.onFresh();
    EXPECT_DOUBLE_EQ(budget.tokens(), 3.0);
}

// ---------------------------------------------------------------------------
// Integration: single service under an external client
// ---------------------------------------------------------------------------

app::ServiceSpec
slowService(const app::OverloadSpec &ov)
{
    app::ServiceSpec spec;
    spec.name = "api";
    spec.threads.workers = 2;
    hw::BlockSpec bs;
    bs.label = "api.h";
    bs.instCount = 64;
    bs.seed = 5;
    spec.blocks.push_back(hw::buildBlock(bs));
    app::EndpointSpec ep;
    ep.name = "get";
    ep.handler.ops = {app::opSleep(sim::microseconds(500))};
    ep.responseBytesMin = ep.responseBytesMax = 128;
    spec.endpoints.push_back(ep);
    spec.resilience.overload = ov;
    return spec;
}

workload::LoadSpec
openLoop(double qps, sim::Time timeout = sim::milliseconds(20))
{
    workload::LoadSpec load;
    load.qps = qps;
    load.connections = 8;
    load.openLoop = true;
    load.timeout = timeout;
    return load;
}

TEST(OverloadService, ConcurrencyLimitShedsAndConserves)
{
    // Pin the limit (min == max == initial) well under what 4x
    // overload needs, so admission sheds deterministically.
    app::OverloadSpec ov;
    ov.enabled = true;
    ov.minLimit = ov.maxLimit = ov.initialLimit = 4;
    app::Deployment dep(91);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(slowService(ov), m);
    dep.wireAll();
    workload::LoadGen gen(dep, svc, openLoop(16000), 7);
    gen.start();
    dep.runFor(sim::milliseconds(60));
    gen.stop();
    dep.runFor(sim::milliseconds(40));  // drain

    ASSERT_NE(svc.overload(), nullptr);
    EXPECT_GT(svc.overload()->limitSheds(), 0u);
    EXPECT_EQ(svc.stats().requestsShed, svc.overload()->limitSheds());
    // Tracer books agree with the stats books.
    EXPECT_EQ(dep.tracer().outcomeCount(
                  trace::OutcomeKind::RequestShed),
              svc.stats().requestsShed);
    // Client conservation: every sent call settled exactly once.
    EXPECT_EQ(gen.sent(),
              gen.completedOk() + gen.completedError() +
                  gen.completedShed() + gen.timedOut());
    EXPECT_GT(gen.completedShed(), 0u);
    EXPECT_GT(gen.completedOk(), 0u);
}

TEST(OverloadService, SojournCapShedsStaleQueue)
{
    // Limiter off; only the CoDel-style sojourn cap is armed
    // (OverloadSpec::any() via maxSojourn).
    app::OverloadSpec ov;
    ov.maxSojourn = sim::microseconds(400);
    app::Deployment dep(92);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(slowService(ov), m);
    dep.wireAll();
    workload::LoadGen gen(dep, svc, openLoop(16000), 7);
    gen.start();
    dep.runFor(sim::milliseconds(60));
    gen.stop();
    dep.runFor(sim::milliseconds(40));

    ASSERT_NE(svc.overload(), nullptr);
    EXPECT_GT(svc.overload()->sojournSheds(), 0u);
    EXPECT_EQ(svc.overload()->limitSheds(), 0u);
    EXPECT_EQ(svc.stats().requestsShed,
              svc.overload()->sojournSheds());
    EXPECT_EQ(gen.sent(),
              gen.completedOk() + gen.completedError() +
                  gen.completedShed() + gen.timedOut());
}

// ---------------------------------------------------------------------------
// Integration: priority shedding via the workload engine
// ---------------------------------------------------------------------------

TEST(OverloadService, LowPriorityShedsFirst)
{
    app::OverloadSpec ov;
    ov.enabled = true;
    ov.minLimit = ov.maxLimit = ov.initialLimit = 4;
    ov.priorityLevels = 2;  // p0 -> limit 2, p1 -> limit 4
    app::Deployment dep(93);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(slowService(ov), m);
    dep.wireAll();

    workload::WorkloadSpec ws;
    ws.sessionsPerSec = 12000 / 6.5;  // ~3x the 4k qps capacity
    ws.connections = 16;
    ws.session.meanThink = sim::microseconds(200);
    ws.timeout = sim::milliseconds(20);
    workload::EndpointClass batch;
    batch.name = "batch";
    batch.endpoint = 0;
    batch.weight = 0.5;
    batch.priority = 0;
    workload::EndpointClass user;
    user.name = "user";
    user.endpoint = 0;
    user.weight = 0.5;
    user.priority = 1;
    user.slo.deadline = batch.slo.deadline = sim::milliseconds(20);
    ws.classes = {batch, user};
    workload::WorkloadEngine eng(dep, svc, ws, 17);
    eng.start();
    dep.runFor(sim::milliseconds(80));
    eng.stop();
    dep.runFor(sim::milliseconds(40));

    // Both classes offered comparable load; the low-priority class
    // must have shed (failed) at a clearly higher rate.
    ASSERT_GT(eng.classSent(0), 100u);
    ASSERT_GT(eng.classSent(1), 100u);
    const double okFrac0 = static_cast<double>(
                               eng.classOkInDeadline(0)) /
                           static_cast<double>(eng.classSent(0));
    const double okFrac1 = static_cast<double>(
                               eng.classOkInDeadline(1)) /
                           static_cast<double>(eng.classSent(1));
    EXPECT_GT(okFrac1, okFrac0 + 0.1);
    EXPECT_GT(svc.overload()->limitSheds(), 0u);
    EXPECT_EQ(eng.inFlight(), 0u);
    EXPECT_EQ(eng.sent(),
              eng.completedOk() + eng.completedError() +
                  eng.completedShed() + eng.timedOut());
}

// ---------------------------------------------------------------------------
// Integration: brownout and server-side retry budget (two tiers)
// ---------------------------------------------------------------------------

app::ServiceSpec
backendSpec(const char *name)
{
    app::ServiceSpec spec;
    spec.name = name;
    spec.threads.workers = 2;
    hw::BlockSpec bs;
    bs.label = std::string(name) + ".h";
    bs.instCount = 64;
    bs.seed = 3;
    spec.blocks.push_back(hw::buildBlock(bs));
    app::EndpointSpec ep;
    ep.name = "get";
    ep.handler.ops = {app::opCompute(0, 5)};
    spec.endpoints.push_back(ep);
    return spec;
}

TEST(OverloadService, BrownoutSkipsOptionalEdges)
{
    app::Deployment dep(94);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    dep.deploy(backendSpec("core"), m);
    dep.deploy(backendSpec("recs"), m);

    app::ServiceSpec front;
    front.name = "front";
    front.threads.workers = 2;
    front.downstreams = {"core", "recs"};
    hw::BlockSpec bs;
    bs.label = "front.h";
    bs.instCount = 64;
    bs.seed = 4;
    front.blocks.push_back(hw::buildBlock(bs));
    app::EndpointSpec ep;
    ep.name = "page";
    app::Op fanout = app::opRpcFanout(
        {{/*target=*/0, 0, 128, 256, /*optional=*/false},
         {/*target=*/1, 0, 128, 256, /*optional=*/true}});
    ep.handler.ops = {app::opSleep(sim::microseconds(300)), fanout};
    front.endpoints.push_back(ep);
    front.clientModel = app::ClientModel::Async;
    front.resilience.rpcDeadline = sim::milliseconds(5);
    // latencyRatio < 1 makes every window after the first congested
    // by construction: a deterministic brownout forcer.
    front.resilience.overload.enabled = true;
    front.resilience.overload.latencyRatio = 0.5;
    front.resilience.overload.window = 8;
    front.resilience.overload.maxLimit = 4096;
    front.resilience.overload.initialLimit = 4096;
    front.resilience.overload.brownout = true;

    app::ServiceInstance &svc = dep.deploy(front, m);
    dep.wireAll();
    workload::LoadGen gen(dep, svc, openLoop(4000), 7);
    gen.start();
    dep.runFor(sim::milliseconds(60));
    gen.stop();
    dep.runFor(sim::milliseconds(40));

    // Brownout engaged: optional edges skipped, counted as cancelled
    // RPCs for conservation, and the response NOT degraded.
    EXPECT_GT(svc.stats().rpcBrownoutSkipped, 0u);
    EXPECT_EQ(svc.stats().rpcCallsStarted,
              svc.stats().rpcOk + svc.stats().rpcTimeouts +
                  svc.stats().rpcBreakerFastFails +
                  svc.stats().rpcCancelled);
    EXPECT_GE(svc.stats().rpcCancelled,
              svc.stats().rpcBrownoutSkipped);
    EXPECT_GT(gen.completedOk(), 0u);
    EXPECT_EQ(gen.completedError(), 0u);
    // The mandatory edge kept being called even in brownout.
    EXPECT_GT(dep.find("core")->stats().requests,
              dep.find("recs")->stats().requests);
    EXPECT_EQ(gen.sent(),
              gen.completedOk() + gen.completedError() +
                  gen.completedShed() + gen.timedOut());
}

TEST(OverloadService, ServerRetryBudgetStopsRetryAmplification)
{
    app::Deployment dep(95);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    dep.deploy(backendSpec("back"), m);

    app::ServiceSpec front;
    front.name = "front";
    front.threads.workers = 2;
    front.downstreams = {"back"};
    hw::BlockSpec bs;
    bs.label = "front.h";
    bs.instCount = 64;
    bs.seed = 4;
    front.blocks.push_back(hw::buildBlock(bs));
    app::EndpointSpec ep;
    ep.name = "page";
    ep.handler.ops = {app::opRpc(0, 0, 128, 256)};
    front.endpoints.push_back(ep);
    // An impossible RPC deadline: every call times out and wants a
    // retry; the budget must bound the retry wave near 10% of fresh.
    front.resilience.rpcDeadline = sim::microseconds(2);
    front.resilience.retry.maxAttempts = 3;
    front.resilience.retry.baseBackoff = sim::microseconds(50);
    front.resilience.retry.budgetRatio = 0.1;
    front.resilience.retry.budgetInitial = 5;

    app::ServiceInstance &svc = dep.deploy(front, m);
    dep.wireAll();
    workload::LoadGen gen(dep, svc, openLoop(2000), 7);
    gen.start();
    dep.runFor(sim::milliseconds(60));
    gen.stop();
    dep.runFor(sim::milliseconds(40));

    const app::ServiceStats &s = svc.stats();
    EXPECT_GT(s.rpcRetriesSuppressed, 0u);
    EXPECT_GT(s.rpcRetries, 0u);
    // Retries bounded by budget: ~0.1 x fresh + the initial
    // allowance (fresh calls = started - retries).
    const double fresh =
        static_cast<double>(s.rpcCallsStarted - s.rpcRetries);
    EXPECT_LE(static_cast<double>(s.rpcRetries),
              0.1 * fresh + 5 + 1);
    EXPECT_EQ(s.rpcCallsStarted,
              s.rpcOk + s.rpcTimeouts + s.rpcBreakerFastFails +
                  s.rpcCancelled);
}

// ---------------------------------------------------------------------------
// Integration: client-side retry budget (workload engine)
// ---------------------------------------------------------------------------

TEST(OverloadClient, RetryBudgetBoundsClientRetries)
{
    // Service sheds nearly everything (pinned tiny limit), so every
    // call wants a retry; the client budget must keep retries near
    // 10% of fresh traffic instead of doubling the offered load.
    app::OverloadSpec ov;
    ov.enabled = true;
    ov.minLimit = ov.maxLimit = ov.initialLimit = 2;
    app::Deployment dep(96);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(slowService(ov), m);
    dep.wireAll();

    workload::WorkloadSpec ws;
    ws.sessionsPerSec = 10000 / 6.5;
    ws.connections = 16;
    ws.session.meanThink = sim::microseconds(200);
    ws.timeout = sim::milliseconds(10);
    ws.retry.maxAttempts = 2;
    ws.retry.backoff = sim::microseconds(200);
    ws.retry.budgetRatio = 0.1;
    ws.retry.budgetInitial = 5;
    workload::WorkloadEngine eng(dep, svc, ws, 27);
    eng.start();
    dep.runFor(sim::milliseconds(80));
    eng.stop();
    dep.runFor(sim::milliseconds(40));

    EXPECT_GT(eng.retriesSent(), 0u);
    EXPECT_GT(eng.retriesSuppressed(), 0u);
    const double fresh =
        static_cast<double>(eng.sent() - eng.retriesSent());
    EXPECT_LE(static_cast<double>(eng.retriesSent()),
              0.1 * fresh + 5 + 1);
    // Conservation: retries are their own sent/settled calls.
    EXPECT_EQ(eng.inFlight(), 0u);
    EXPECT_EQ(eng.sent(),
              eng.completedOk() + eng.completedError() +
                  eng.completedShed() + eng.timedOut());
}

TEST(OverloadClient, UnbudgetedRetriesAreUnbounded)
{
    // The budgetRatio = 0 configuration the metastability bench
    // exploits: every shed call earns a retry.
    app::OverloadSpec ov;
    ov.enabled = true;
    ov.minLimit = ov.maxLimit = ov.initialLimit = 2;
    app::Deployment dep(96);  // same seed as the budgeted twin
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(slowService(ov), m);
    dep.wireAll();

    workload::WorkloadSpec ws;
    ws.sessionsPerSec = 10000 / 6.5;
    ws.connections = 16;
    ws.session.meanThink = sim::microseconds(200);
    ws.timeout = sim::milliseconds(10);
    ws.retry.maxAttempts = 2;
    ws.retry.backoff = sim::microseconds(200);
    workload::WorkloadEngine eng(dep, svc, ws, 27);
    eng.start();
    dep.runFor(sim::milliseconds(80));
    eng.stop();
    dep.runFor(sim::milliseconds(40));

    EXPECT_GT(eng.retriesSent(), 0u);
    EXPECT_EQ(eng.retriesSuppressed(), 0u);
    // Far beyond any 10% budget: most failed calls retried.
    const double fresh =
        static_cast<double>(eng.sent() - eng.retriesSent());
    EXPECT_GT(static_cast<double>(eng.retriesSent()), 0.3 * fresh);
    EXPECT_EQ(eng.sent(),
              eng.completedOk() + eng.completedError() +
                  eng.completedShed() + eng.timedOut());
}

// ---------------------------------------------------------------------------
// Metrics registration
// ---------------------------------------------------------------------------

TEST(OverloadMetrics, BreakerAndOverloadSeriesRegistered)
{
    app::Deployment dep(97);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    dep.deploy(backendSpec("back"), m);

    app::ServiceSpec front;
    front.name = "front";
    front.threads.workers = 2;
    front.downstreams = {"back"};
    hw::BlockSpec bs;
    bs.label = "front.h";
    bs.instCount = 64;
    bs.seed = 4;
    front.blocks.push_back(hw::buildBlock(bs));
    app::EndpointSpec ep;
    ep.name = "page";
    ep.handler.ops = {app::opRpc(0, 0, 128, 256)};
    front.endpoints.push_back(ep);
    front.resilience.rpcDeadline = sim::milliseconds(2);
    front.resilience.breaker.enabled = true;
    front.resilience.overload.enabled = true;
    front.resilience.retry.maxAttempts = 2;
    front.resilience.retry.budgetRatio = 0.1;
    app::ServiceInstance &svc = dep.deploy(front, m);
    dep.wireAll();

    obs::MetricsRegistry reg;
    obs::registerDeploymentMetrics(reg, dep);
    workload::LoadGen gen(dep, svc, openLoop(500), 7);
    gen.start();
    dep.runFor(sim::milliseconds(20));

    const std::string text = reg.prometheusText();
    EXPECT_NE(text.find("ditto_breaker_state"), std::string::npos);
    EXPECT_NE(text.find("ditto_breaker_opened_total"),
              std::string::npos);
    EXPECT_NE(text.find("ditto_overload_limit"), std::string::npos);
    EXPECT_NE(text.find("ditto_overload_limit_sheds_total"),
              std::string::npos);
    EXPECT_NE(text.find("ditto_retry_budget_tokens"),
              std::string::npos);
    EXPECT_EQ(reg.readGauge("ditto_breaker_state",
                            {{"downstream", "back"},
                             {"service", "front"}}),
              0.0);
    EXPECT_GT(reg.readGauge("ditto_overload_limit",
                            {{"service", "front"}}),
              0.0);

    // The backend armed nothing: none of the new series for it.
    EXPECT_EQ(text.find("ditto_breaker_state{downstream=\"back\","
                        "service=\"back\"}"),
              std::string::npos);
}

TEST(OverloadMetrics, ClientRetrySeriesGatedOnRetries)
{
    app::Deployment dep(98);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceInstance &svc =
        dep.deploy(slowService(app::OverloadSpec{}), m);
    dep.wireAll();
    workload::WorkloadSpec ws;
    workload::WorkloadEngine plain(dep, svc, ws, 5);
    ws.retry.maxAttempts = 2;
    workload::WorkloadEngine retrying(dep, svc, ws, 6);

    obs::MetricsRegistry reg;
    workload::registerEngineMetrics(reg, plain, "plain");
    const std::string before = reg.prometheusText();
    EXPECT_EQ(before.find("ditto_client_retries_sent_total"),
              std::string::npos);
    workload::registerEngineMetrics(reg, retrying, "retrying");
    const std::string after = reg.prometheusText();
    EXPECT_NE(after.find("ditto_client_retries_sent_total"),
              std::string::npos);
    EXPECT_NE(after.find("ditto_client_retry_tokens"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism of an armed configuration
// ---------------------------------------------------------------------------

struct RunDigest
{
    std::uint64_t sent, ok, shed, timedOut, sheds, retries;

    bool
    operator==(const RunDigest &o) const
    {
        return sent == o.sent && ok == o.ok && shed == o.shed &&
               timedOut == o.timedOut && sheds == o.sheds &&
               retries == o.retries;
    }
};

RunDigest
armedRun()
{
    app::OverloadSpec ov;
    ov.enabled = true;
    ov.initialLimit = 8;
    ov.maxSojourn = sim::milliseconds(1);
    app::Deployment dep(99);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(slowService(ov), m);
    dep.wireAll();
    workload::WorkloadSpec ws;
    ws.sessionsPerSec = 8000 / 6.5;
    ws.connections = 8;
    ws.timeout = sim::milliseconds(8);
    ws.retry.maxAttempts = 2;
    ws.retry.budgetRatio = 0.2;
    workload::WorkloadEngine eng(dep, svc, ws, 31);
    eng.start();
    dep.runFor(sim::milliseconds(60));
    eng.stop();
    dep.runFor(sim::milliseconds(30));
    return RunDigest{eng.sent(),
                     eng.completedOk(),
                     eng.completedShed(),
                     eng.timedOut(),
                     svc.stats().requestsShed,
                     eng.retriesSent()};
}

TEST(OverloadDeterminism, ArmedRunsAreReproducible)
{
    const RunDigest a = armedRun();
    const RunDigest b = armedRun();
    EXPECT_TRUE(a == b);
    EXPECT_GT(a.sheds, 0u);
    EXPECT_GT(a.retries, 0u);
}

} // namespace
