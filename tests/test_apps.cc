/**
 * @file
 * Tests for the "original" application models: spec sanity, runtime
 * behaviour, and the Social Network topology.
 */

#include <gtest/gtest.h>

#include "apps/catalog.h"
#include "core/topology_analyzer.h"
#include "hw/platform.h"
#include "profile/perf_report.h"
#include "workload/loadgen.h"

namespace {

using namespace ditto;

struct NamedApp
{
    const char *name;
    app::ServiceSpec (*spec)();
    apps::AppLoad (*load)();
};

const NamedApp kApps[] = {
    {"memcached", apps::memcachedSpec, apps::memcachedLoad},
    {"nginx", apps::nginxSpec, apps::nginxLoad},
    {"mongodb", apps::mongodbSpec, apps::mongodbLoad},
    {"redis", apps::redisSpec, apps::redisLoad},
};

class AppSpecTest : public ::testing::TestWithParam<NamedApp>
{
};

TEST_P(AppSpecTest, SpecIsWellFormed)
{
    const app::ServiceSpec spec = GetParam().spec();
    EXPECT_EQ(spec.name, GetParam().name);
    EXPECT_FALSE(spec.endpoints.empty());
    EXPECT_FALSE(spec.blocks.empty());
    for (const auto &block : spec.blocks) {
        // Labels must carry the service prefix for the profiler.
        EXPECT_EQ(block.label.rfind(spec.name + ".", 0), 0u)
            << block.label;
        EXPECT_FALSE(block.insts.empty());
    }
    for (const auto &ep : spec.endpoints) {
        EXPECT_FALSE(ep.handler.ops.empty());
        EXPECT_GE(ep.responseBytesMax, ep.responseBytesMin);
    }
    const apps::AppLoad load = GetParam().load();
    EXPECT_LT(load.lowQps, load.mediumQps);
    EXPECT_LT(load.mediumQps, load.highQps);
    EXPECT_FALSE(load.endpoints.empty());
    for (const auto &ep : load.endpoints)
        EXPECT_LT(ep.endpoint, spec.endpoints.size());
}

TEST_P(AppSpecTest, ServesAtLowLoad)
{
    app::Deployment dep(31);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(GetParam().spec(), m);
    dep.wireAll();
    const apps::AppLoad load = GetParam().load();
    workload::LoadGen gen(dep, svc, load.at(load.lowQps / 4), 7);
    gen.start();
    dep.runFor(sim::milliseconds(150));
    dep.beginMeasureAll();
    gen.beginMeasure();
    dep.runFor(sim::milliseconds(150));
    EXPECT_GT(gen.completed(), 10u);
    const auto r = profile::snapshotService(svc);
    EXPECT_GT(r.ipc, 0.04);  // very low load: cold-cache penalty
    EXPECT_LT(r.ipc, 4.0);
    EXPECT_GT(r.kernelInstFraction, 0.02);
    EXPECT_LT(r.kernelInstFraction, 0.95);
}

INSTANTIATE_TEST_SUITE_P(
    All, AppSpecTest, ::testing::ValuesIn(kApps),
    [](const ::testing::TestParamInfo<NamedApp> &info) {
        return std::string(info.param.name);
    });

TEST(Apps, MemcachedIsMultiWorkerKvs)
{
    const auto spec = apps::memcachedSpec();
    EXPECT_EQ(spec.serverModel, app::ServerModel::IoMultiplex);
    EXPECT_EQ(spec.threads.workers, 4u);  // paper configuration
    EXPECT_EQ(spec.endpoints.size(), 2u);  // GET + SET
    EXPECT_EQ(spec.background.size(), 1u);
    // GET responses are ~4KB values.
    EXPECT_GE(spec.endpoints[0].responseBytesMin, 4096u);
}

TEST(Apps, NginxSingleWorkerWithPrewarmedContent)
{
    const auto spec = apps::nginxSpec();
    EXPECT_EQ(spec.threads.workers, 1u);  // paper configuration
    ASSERT_EQ(spec.fileBytes.size(), 1u);
    EXPECT_DOUBLE_EQ(spec.filePrewarmFraction, 1.0);
}

TEST(Apps, MongodbThreadPerConnectionWith40GBDataset)
{
    const auto spec = apps::mongodbSpec();
    EXPECT_TRUE(spec.threads.threadPerConnection);
    EXPECT_EQ(spec.serverModel, app::ServerModel::BlockingPerConn);
    ASSERT_EQ(spec.fileBytes.size(), 1u);
    EXPECT_EQ(spec.fileBytes[0], 40ull << 30);
    EXPECT_FALSE(apps::mongodbLoad().openLoop);  // YCSB closed loop
}

TEST(Apps, RedisSingleThreaded)
{
    const auto spec = apps::redisSpec();
    EXPECT_EQ(spec.threads.workers, 1u);
    EXPECT_TRUE(spec.fileBytes.empty());  // persistence disabled
    EXPECT_FALSE(apps::redisLoad().openLoop);
}

TEST(Apps, MongodbDoesDiskIoUnderLoad)
{
    app::Deployment dep(32);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(apps::mongodbSpec(), m);
    dep.wireAll();
    const auto load = apps::mongodbLoad();
    workload::LoadGen gen(dep, svc, load.at(load.lowQps), 7);
    gen.start();
    dep.runFor(sim::milliseconds(300));
    EXPECT_GT(svc.stats().diskReadBytes, 1u << 20);
    EXPECT_GT(m.disk().readBytes(), 1u << 20);
}

TEST(SocialNetwork, TopologyDeploysAndServes)
{
    app::Deployment dep(33);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceInstance &fe = apps::deploySocialNetwork(dep, m);
    dep.wireAll();
    EXPECT_EQ(fe.name(), apps::socialNetworkFrontend());

    const auto load = apps::socialNetworkLoad();
    workload::LoadGen gen(dep, fe, load.at(300), 7);
    gen.start();
    dep.runFor(sim::milliseconds(400));
    EXPECT_GT(gen.completed(), 50u);

    // Key tiers saw traffic.
    for (const char *tier : {"sn.text", "sn.socialgraph",
                             "sn.poststorage", "sn.hometimeline"}) {
        app::ServiceInstance *svc = dep.find(tier);
        ASSERT_NE(svc, nullptr) << tier;
        EXPECT_GT(svc->stats().requests, 0u) << tier;
    }
}

TEST(SocialNetwork, TracesRecoverTheDag)
{
    app::Deployment dep(34);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceInstance &fe = apps::deploySocialNetwork(dep, m);
    dep.wireAll();
    const auto load = apps::socialNetworkLoad();
    workload::LoadGen gen(dep, fe, load.at(400), 7);
    gen.start();
    dep.runFor(sim::milliseconds(500));

    const core::Topology topo =
        core::analyzeTopology(dep.tracer());
    EXPECT_EQ(topo.root, "sn.frontend");
    EXPECT_GE(topo.services.size(), 8u);

    // Compose-path edges exist with sane calls-per-request.
    bool feToCompose = false;
    bool composeToText = false;
    bool homeToGraph = false;
    for (const auto &e : topo.edges) {
        if (e.caller == "sn.frontend" && e.callee == "sn.compose")
            feToCompose = true;
        if (e.caller == "sn.compose" && e.callee == "sn.text")
            composeToText = true;
        if (e.caller == "sn.hometimeline" &&
            e.callee == "sn.socialgraph") {
            homeToGraph = true;
        }
        EXPECT_GT(e.callsPerCallerRequest, 0.0);
        EXPECT_LT(e.callsPerCallerRequest, 3.0);
    }
    EXPECT_TRUE(feToCompose);
    EXPECT_TRUE(composeToText);
    EXPECT_TRUE(homeToGraph);

    // Frontend must come last in dependency order.
    EXPECT_EQ(topo.services.back(), "sn.frontend");
}

TEST(SocialNetwork, EndToEndLatencyRisesWithLoad)
{
    auto p99_at = [](double qps) {
        app::Deployment dep(35);
        os::Machine &m = dep.addMachine("n", hw::platformA());
        app::ServiceInstance &fe = apps::deploySocialNetwork(dep, m);
        dep.wireAll();
        workload::LoadGen gen(dep, fe,
                              apps::socialNetworkLoad().at(qps), 7);
        gen.start();
        dep.runFor(sim::milliseconds(250));
        gen.beginMeasure();
        dep.runFor(sim::milliseconds(250));
        return gen.latency().percentile(0.99);
    };
    const auto low = p99_at(apps::socialNetworkLoad().lowQps);
    const auto high = p99_at(apps::socialNetworkLoad().highQps);
    EXPECT_GT(high, low);
}

} // namespace
