/**
 * @file
 * RunExecutor: the parallel-run determinism contract.
 *
 * The executor may only change *when* independent simulation runs
 * execute, never *what* they compute: results join in submission
 * order and each run owns its EventQueue/Deployment/RNGs, so a
 * Fig. 5-style sweep must be bit-identical at any worker count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "hw/block_builder.h"
#include "obs/jaeger.h"
#include "sim/run_executor.h"
#include "workload/loadgen.h"

namespace {

using namespace ditto;
using bench::RunResult;

void
expectIdenticalReports(const profile::PerfReport &a,
                       const profile::PerfReport &b)
{
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.cpi, b.cpi);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.branchMispredictRate, b.branchMispredictRate);
    EXPECT_EQ(a.l1iMissRate, b.l1iMissRate);
    EXPECT_EQ(a.l1dMissRate, b.l1dMissRate);
    EXPECT_EQ(a.l2MissRate, b.l2MissRate);
    EXPECT_EQ(a.llcMissRate, b.llcMissRate);
    EXPECT_EQ(a.retiringFrac, b.retiringFrac);
    EXPECT_EQ(a.frontendFrac, b.frontendFrac);
    EXPECT_EQ(a.badSpecFrac, b.badSpecFrac);
    EXPECT_EQ(a.backendFrac, b.backendFrac);
    EXPECT_EQ(a.qps, b.qps);
    EXPECT_EQ(a.netBandwidthBytesPerSec, b.netBandwidthBytesPerSec);
    EXPECT_EQ(a.avgLatencyMs, b.avgLatencyMs);
    EXPECT_EQ(a.p50LatencyMs, b.p50LatencyMs);
    EXPECT_EQ(a.p95LatencyMs, b.p95LatencyMs);
    EXPECT_EQ(a.p99LatencyMs, b.p99LatencyMs);
    EXPECT_EQ(a.instructionsPerRequest, b.instructionsPerRequest);
    EXPECT_EQ(a.cyclesPerRequest, b.cyclesPerRequest);
}

void
expectIdenticalHistograms(const stats::LatencyHistogram &a,
                          const stats::LatencyHistogram &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    for (const double q : {0.5, 0.95, 0.99, 0.999})
        EXPECT_EQ(a.percentile(q), b.percentile(q));
}

TEST(RunExecutor, ParallelSweepBitIdenticalToSerial)
{
    // Fig. 5-shaped sweep: one app, three load levels, short
    // windows. Serial reference first, then the same thunks through
    // a 4-worker pool; every metric must match exactly.
    const bench::AppCase nginx{"NGINX", apps::nginxSpec(),
                               apps::nginxLoad()};
    const hw::PlatformSpec platform = hw::platformA();
    const double qpsLevels[] = {nginx.load.lowQps,
                                nginx.load.mediumQps,
                                nginx.load.highQps};

    auto makeTasks = [&] {
        std::vector<std::function<RunResult()>> tasks;
        for (const double qps : qpsLevels) {
            tasks.push_back([&nginx, qps, &platform] {
                return bench::runSingleTier(
                    nginx.spec, nginx.load.at(qps), platform,
                    sim::milliseconds(50), sim::milliseconds(80));
            });
        }
        return tasks;
    };

    std::vector<RunResult> serial;
    for (auto &task : makeTasks())
        serial.push_back(task());

    sim::RunExecutor pool(4);
    const std::vector<RunResult> parallel =
        pool.runOrdered<RunResult>(makeTasks());

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        expectIdenticalReports(serial[i].report, parallel[i].report);
        expectIdenticalHistograms(serial[i].clientLatency,
                                  parallel[i].clientLatency);
        EXPECT_EQ(serial[i].achievedQps, parallel[i].achievedQps);
    }
}

// ---------------------------------------------------------------------------
// Tracer determinism under concurrent runs
// ---------------------------------------------------------------------------

/**
 * One traced run: its own Deployment (and thus its own Tracer, span
 * id counter, and sampling state), a two-service RPC chain, and a
 * Jaeger export of everything recorded.
 */
std::string
tracedRun(std::uint64_t seed)
{
    app::Deployment dep(seed, /*traceSampleRate=*/0.5);
    os::Machine &m = dep.addMachine("n", hw::platformA());

    hw::BlockSpec bs;
    bs.label = "trace.h";
    bs.instCount = 64;
    bs.seed = 3;
    const hw::CodeBlock block = hw::buildBlock(bs);

    app::ServiceSpec back;
    back.name = "back";
    back.threads.workers = 2;
    back.blocks.push_back(block);
    app::EndpointSpec get;
    get.name = "get";
    get.handler.ops = {app::opCompute(0, 5)};
    back.endpoints.push_back(get);
    dep.deploy(back, m);

    app::ServiceSpec front;
    front.name = "front";
    front.threads.workers = 2;
    front.downstreams = {"back"};
    front.blocks.push_back(block);
    app::EndpointSpec page;
    page.name = "page";
    page.handler.ops = {app::opCompute(0, 3),
                        app::opRpc(0, 0, 128, 256),
                        app::opCompute(0, 3)};
    front.endpoints.push_back(page);
    dep.deploy(front, m);
    dep.wireAll();

    workload::LoadSpec load;
    load.qps = 2000;
    load.connections = 4;
    load.openLoop = true;
    workload::LoadGen gen(dep, *dep.find("front"), load,
                          seed ^ 0x7aceull);
    gen.start();
    dep.runFor(sim::milliseconds(40));
    return obs::exportJaegerJson(dep.tracer());
}

TEST(RunExecutor, TracerExportBitIdenticalUnderConcurrentRuns)
{
    // Head sampling and span/trace id assignment must be pure
    // per-deployment state: three traced runs exported serially have
    // to equal the same runs racing on a 4-worker pool, byte for
    // byte. A TSan build of this test additionally proves the runs
    // share no mutable tracer state.
    const std::uint64_t seeds[] = {41, 42, 43};

    std::vector<std::string> serial;
    for (const std::uint64_t seed : seeds)
        serial.push_back(tracedRun(seed));

    sim::RunExecutor pool(4);
    std::vector<std::function<std::string()>> tasks;
    for (const std::uint64_t seed : seeds)
        tasks.push_back([seed] { return tracedRun(seed); });
    const std::vector<std::string> parallel =
        pool.runOrdered(std::move(tasks));

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]);

    // Sampling engaged (rate 0.5 keeps a strict subset)...
    const trace::Tracer back = obs::importJaegerJson(serial[0]);
    EXPECT_GT(back.spans().size(), 0u);
    // ...and distinct seeds produce distinct traffic, so identical
    // bytes above are not a vacuous pass.
    EXPECT_NE(serial[0], serial[1]);
}

TEST(RunExecutor, ResultsInSubmissionOrderUnderAdversarialDurations)
{
    // Task i sleeps longest for the *earliest* submissions, so a
    // completion-order join would return them reversed.
    sim::RunExecutor pool(4);
    constexpr int kTasks = 16;
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < kTasks; ++i) {
        tasks.push_back([i] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(kTasks - i));
            return i;
        });
    }
    const std::vector<int> results =
        pool.runOrdered<int>(std::move(tasks));
    ASSERT_EQ(results.size(), static_cast<std::size_t>(kTasks));
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(results[static_cast<std::size_t>(i)], i);
}

TEST(RunExecutor, PropagatesExceptions)
{
    sim::RunExecutor pool(4);
    std::vector<std::function<int()>> tasks;
    tasks.push_back([] { return 1; });
    tasks.push_back([]() -> int {
        throw std::runtime_error("run failed");
    });
    tasks.push_back([] { return 3; });
    EXPECT_THROW(pool.runOrdered<int>(std::move(tasks)),
                 std::runtime_error);
}

TEST(RunExecutor, PropagatesExceptionsInline)
{
    sim::RunExecutor serial(1);
    std::vector<std::function<int()>> tasks;
    tasks.push_back([]() -> int {
        throw std::runtime_error("run failed");
    });
    EXPECT_THROW(serial.runOrdered<int>(std::move(tasks)),
                 std::runtime_error);
}

TEST(RunExecutor, NestedSubmissionDoesNotDeadlock)
{
    // Cloning pipelines nest: an outer run fans out fine-tune
    // candidates on the same pool. Blocked waiters must help run
    // queued tasks, so this completes even with a tiny pool.
    sim::RunExecutor pool(2);
    std::vector<std::function<int()>> outer;
    for (int i = 0; i < 4; ++i) {
        outer.push_back([&pool, i] {
            std::vector<std::function<int()>> inner;
            for (int j = 0; j < 4; ++j)
                inner.push_back([i, j] { return 10 * i + j; });
            const std::vector<int> got =
                pool.runOrdered<int>(std::move(inner));
            int sum = 0;
            for (const int v : got)
                sum += v;
            return sum;
        });
    }
    const std::vector<int> sums =
        pool.runOrdered<int>(std::move(outer));
    ASSERT_EQ(sums.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(sums[static_cast<std::size_t>(i)],
                  4 * 10 * i + (0 + 1 + 2 + 3));
}

TEST(RunExecutor, JobsFromArgsParsing)
{
    {
        const char *argv[] = {"bench", "--jobs", "7"};
        EXPECT_EQ(sim::RunExecutor::jobsFromArgs(
                      3, const_cast<char **>(argv)), 7u);
    }
    {
        const char *argv[] = {"bench", "--jobs=3"};
        EXPECT_EQ(sim::RunExecutor::jobsFromArgs(
                      2, const_cast<char **>(argv)), 3u);
    }
    {
        // Bad values fall back to the environment/default.
        const char *argv[] = {"bench", "--jobs", "zero"};
        EXPECT_GE(sim::RunExecutor::jobsFromArgs(
                      3, const_cast<char **>(argv)), 1u);
    }
}

TEST(RunExecutor, SerialExecutorRunsInline)
{
    // jobs=1 must execute on the calling thread (no pool, no
    // reordering hazards) -- the thread id proves it.
    sim::RunExecutor serial(1);
    EXPECT_EQ(serial.jobs(), 1u);
    const std::thread::id self = std::this_thread::get_id();
    std::vector<std::function<std::thread::id()>> tasks;
    for (int i = 0; i < 3; ++i)
        tasks.push_back([] { return std::this_thread::get_id(); });
    for (const std::thread::id id :
         serial.runOrdered<std::thread::id>(std::move(tasks)))
        EXPECT_EQ(id, self);
}

} // namespace
