/**
 * @file
 * Tests for the OS model: page cache, disk queueing, sockets, epoll,
 * scheduler behaviour, network delivery, and kernel syscall costs.
 */

#include <gtest/gtest.h>

#include "hw/platform.h"
#include "os/disk.h"
#include "os/kernel.h"
#include "os/machine.h"
#include "os/network.h"
#include "os/page_cache.h"
#include "os/scheduler.h"
#include "sim/event_queue.h"

namespace {

using namespace ditto;
using namespace ditto::os;

TEST(Vfs, CreatesFilesWithIds)
{
    Vfs vfs;
    const auto a = vfs.create("a", 1000);
    const auto b = vfs.create("b", 2000);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(vfs.file(b).bytes, 2000u);
    EXPECT_EQ(vfs.fileCount(), 2u);
}

TEST(PageCache, MissesThenHits)
{
    PageCache pc(1 << 20);  // 256 pages
    EXPECT_EQ(pc.access(0, 0, 8192), 2u);      // two cold pages
    EXPECT_EQ(pc.access(0, 0, 8192), 0u);      // warm
    EXPECT_EQ(pc.access(0, 4096, 4096), 0u);   // inside
    EXPECT_EQ(pc.access(0, 8192, 1), 1u);      // new page
    EXPECT_NEAR(pc.hitRate(), 0.5, 1e-9);  // 3 of 6 page lookups hit
}

TEST(PageCache, LruEvictionUnderPressure)
{
    PageCache pc(4 * kPageBytes);  // 4 pages
    for (std::uint64_t p = 0; p < 4; ++p)
        pc.access(0, p * kPageBytes, 1);
    pc.access(0, 0, 1);                       // touch page 0
    pc.access(0, 4 * kPageBytes, 1);          // evicts page 1 (LRU)
    EXPECT_EQ(pc.access(0, 0, 1), 0u);        // page 0 kept
    EXPECT_EQ(pc.access(0, kPageBytes, 1), 1u);  // page 1 gone
}

TEST(PageCache, DistinctFilesDoNotCollide)
{
    PageCache pc(1 << 20);
    pc.access(1, 0, 4096);
    EXPECT_EQ(pc.access(2, 0, 4096), 1u);  // same offset, other file
}

TEST(Disk, SsdFasterThanHdd)
{
    sim::EventQueue ev;
    Disk ssd(ev, hw::DiskKind::Ssd, 1);
    sim::Time ssdDone = 0;
    ssd.submit(4096, false, [&] { ssdDone = ev.now(); });
    ev.runAll();

    sim::EventQueue ev2;
    Disk hdd(ev2, hw::DiskKind::Hdd, 1);
    sim::Time hddDone = 0;
    hdd.submit(4096, false, [&] { hddDone = ev2.now(); });
    ev2.runAll();

    EXPECT_LT(ssdDone, sim::milliseconds(1));
    EXPECT_GT(hddDone, sim::milliseconds(2));
    EXPECT_GT(hddDone, 5 * ssdDone);
}

TEST(Disk, QueueingDelaysLaterRequests)
{
    sim::EventQueue ev;
    Disk hdd(ev, hw::DiskKind::Hdd, 1);  // single channel
    std::vector<sim::Time> done;
    for (int i = 0; i < 4; ++i)
        hdd.submit(4096, false, [&] { done.push_back(ev.now()); });
    ev.runAll();
    ASSERT_EQ(done.size(), 4u);
    // Strictly increasing completion times: serialized service.
    for (std::size_t i = 1; i < done.size(); ++i)
        EXPECT_GT(done[i], done[i - 1]);
    // The last one waited about 4 service times.
    EXPECT_GT(done[3], 3 * done[0] / 2);
    EXPECT_EQ(hdd.requests(), 4u);
    EXPECT_EQ(hdd.readBytes(), 4 * 4096u);
}

TEST(Socket, PushWakesWaiterFifo)
{
    Socket s(1);
    int woken = 0;
    s.wakeFn = [&](Thread *) { ++woken; };
    // A fake thread pointer is fine: wakeFn only counts.
    Thread *fake = reinterpret_cast<Thread *>(0x1);
    s.addWaiter(fake);
    Message m;
    m.bytes = 100;
    s.push(m);
    EXPECT_EQ(woken, 1);
    EXPECT_TRUE(s.readable());
    EXPECT_EQ(s.pop().bytes, 100u);
    EXPECT_FALSE(s.readable());
    EXPECT_EQ(s.rxBytes, 100u);
}

TEST(Socket, DeliverHookBypassesQueue)
{
    Socket s(2);
    std::uint32_t seen = 0;
    s.onDeliver = [&](const Message &m) { seen = m.bytes; };
    Message m;
    m.bytes = 77;
    s.push(m);
    EXPECT_EQ(seen, 77u);
    EXPECT_FALSE(s.readable());
}

TEST(Epoll, NotifiesOnReadable)
{
    Socket s(3);
    Epoll ep(4);
    ep.watch(&s);
    int woken = 0;
    ep.wakeFn = [&](Thread *) { ++woken; };
    Thread *fake = reinterpret_cast<Thread *>(0x2);
    ep.addWaiter(fake);
    EXPECT_FALSE(ep.anyReady());
    Message m;
    s.push(m);
    EXPECT_EQ(woken, 1);
    EXPECT_TRUE(ep.anyReady());
    EXPECT_EQ(ep.readySockets().size(), 1u);
}

TEST(WaitQueue, WakesUpToN)
{
    WaitQueue q;
    int woken = 0;
    q.wakeFn = [&](Thread *) { ++woken; };
    Thread *a = reinterpret_cast<Thread *>(0x10);
    Thread *b = reinterpret_cast<Thread *>(0x20);
    Thread *c = reinterpret_cast<Thread *>(0x30);
    q.addWaiter(a);
    q.addWaiter(b);
    q.addWaiter(c);
    EXPECT_EQ(q.wake(2), 2u);
    EXPECT_EQ(woken, 2);
    EXPECT_TRUE(q.hasWaiters());
    EXPECT_EQ(q.wake(5), 1u);
}

// ---------------------------------------------------------------------------
// Scheduler + kernel integration via a tiny custom thread.
// ---------------------------------------------------------------------------

class SpinThread : public Thread
{
  public:
    SpinThread(std::string name, double cyclesPerSlice, int slices)
        : Thread(std::move(name), 0, 1), cycles_(cyclesPerSlice),
          remaining_(slices)
    {
    }

    StepResult
    step(StepCtx &ctx) override
    {
        ctx.cyclesUsed += cycles_;
        coresSeen.push_back(ctx.core.id());
        if (--remaining_ <= 0)
            return {StopReason::Exit};
        return {StopReason::Yield};
    }

    std::vector<unsigned> coresSeen;

  private:
    double cycles_;
    int remaining_;
};

TEST(Scheduler, RunsThreadsToCompletion)
{
    sim::EventQueue ev;
    Machine m("node", hw::platformA(), ev, 1);
    auto t = std::make_unique<SpinThread>("spin", 1000, 5);
    SpinThread *raw = t.get();
    m.scheduler().add(std::move(t));
    ev.runUntil(sim::milliseconds(10));
    EXPECT_EQ(raw->state(), Thread::State::Zombie);
    EXPECT_EQ(raw->coresSeen.size(), 5u);
}

TEST(Scheduler, AffinityPinsToCore)
{
    sim::EventQueue ev;
    Machine m("node", hw::platformA(), ev, 1);
    auto t = std::make_unique<SpinThread>("pinned", 1000, 4);
    t->setAffinity(5);
    SpinThread *raw = t.get();
    m.scheduler().add(std::move(t));
    ev.runUntil(sim::milliseconds(10));
    for (unsigned core : raw->coresSeen)
        EXPECT_EQ(core, 5u);
}

TEST(Scheduler, CacheAffinityKeepsThreadOnSameCore)
{
    sim::EventQueue ev;
    Machine m("node", hw::platformA(), ev, 1);
    auto t = std::make_unique<SpinThread>("sticky", 1000, 6);
    SpinThread *raw = t.get();
    m.scheduler().add(std::move(t));
    ev.runUntil(sim::milliseconds(10));
    ASSERT_GE(raw->coresSeen.size(), 2u);
    for (std::size_t i = 1; i < raw->coresSeen.size(); ++i)
        EXPECT_EQ(raw->coresSeen[i], raw->coresSeen[0]);
}

TEST(Scheduler, ParallelThreadsUseDistinctCores)
{
    sim::EventQueue ev;
    Machine m("node", hw::platformA(), ev, 1);
    std::vector<SpinThread *> threads;
    for (int i = 0; i < 4; ++i) {
        auto t = std::make_unique<SpinThread>(
            "t" + std::to_string(i), 1e6, 3);
        threads.push_back(t.get());
        m.scheduler().add(std::move(t));
    }
    ev.runUntil(sim::milliseconds(20));
    std::set<unsigned> cores;
    for (auto *t : threads) {
        ASSERT_FALSE(t->coresSeen.empty());
        cores.insert(t->coresSeen[0]);
    }
    EXPECT_EQ(cores.size(), 4u);
}

TEST(Network, LoopbackFasterThanWire)
{
    sim::EventQueue ev;
    Network net(ev);
    Machine m1("a", hw::platformA(), ev, 1);
    Machine m2("b", hw::platformA(), ev, 2);

    Socket *a1 = m1.createSocket();
    Socket *a2 = m1.createSocket();
    Network::connect(*a1, *a2);
    Socket *b1 = m1.createSocket();
    Socket *b2 = m2.createSocket();
    Network::connect(*b1, *b2);

    sim::Time local = 0;
    sim::Time remote = 0;
    a2->onDeliver = [&](const Message &) { local = ev.now(); };
    b2->onDeliver = [&](const Message &) { remote = ev.now(); };

    Message m;
    m.bytes = 1000;
    net.send(*a1, m);
    net.send(*b1, m);
    ev.runAll();
    EXPECT_GT(local, 0u);
    EXPECT_GT(remote, 2 * local);
    EXPECT_EQ(m1.nic().txBytes, 1000u);  // only the remote send
    EXPECT_EQ(m2.nic().rxBytes, 1000u);
}

TEST(Network, BandwidthHogSlowsDelivery)
{
    auto run = [](double hogGbps) {
        sim::EventQueue ev;
        Network net(ev);
        Machine m1("a", hw::platformA(), ev, 1);
        Machine m2("b", hw::platformA(), ev, 2);
        Socket *tx = m1.createSocket();
        Socket *rx = m2.createSocket();
        Network::connect(*tx, *rx);
        m1.nic().hogBytesPerNs = hogGbps / 8.0;
        sim::Time done = 0;
        rx->onDeliver = [&](const Message &) { done = ev.now(); };
        Message m;
        m.bytes = 1 << 20;  // 1MB: serialization matters
        net.send(*tx, m);
        ev.runAll();
        return done;
    };
    EXPECT_GT(run(9.0), 2 * run(0.0));  // 90% of a 10Gbe NIC hogged
}

TEST(Machine, CoherenceDirectoryInvalidatesSharers)
{
    sim::EventQueue ev;
    Machine m("node", hw::platformA(), ev, 1);
    const std::uint64_t addr = 0x123400;
    // Core 0 and core 2 (different physical hierarchies) read.
    m.core(0).caches().accessData(addr, false);
    m.sharedRead(0, addr);
    m.core(2).caches().accessData(addr, false);
    m.sharedRead(2, addr);
    EXPECT_TRUE(m.core(0).caches().l1d().probe(addr));
    EXPECT_TRUE(m.core(2).caches().l1d().probe(addr));
    // Core 0 writes: core 2's copy must be invalidated.
    m.sharedWrite(0, addr);
    EXPECT_FALSE(m.core(2).caches().l1d().probe(addr));
}

TEST(Machine, SmtSiblingsShareHierarchy)
{
    sim::EventQueue ev;
    Machine m("node", hw::platformA(), ev, 1);
    ASSERT_EQ(m.smtWays(), 2u);
    // Logical cores 0 and 1 share; 0 and 2 do not.
    EXPECT_EQ(&m.core(0).caches(), &m.core(1).caches());
    EXPECT_NE(&m.core(0).caches(), &m.core(2).caches());
}

TEST(Machine, AddressRegionsDisjoint)
{
    sim::EventQueue ev;
    Machine m("node", hw::platformA(), ev, 1);
    const auto r1 = m.allocRegion();
    const auto r2 = m.allocRegion();
    EXPECT_NE(r1.textBase, r2.textBase);
    EXPECT_NE(r1.dataBase, r2.dataBase);
    EXPECT_GT(r2.dataBase - r1.dataBase, 1ull << 30);
}

TEST(Kernel, SyscallsChargeCycles)
{
    sim::EventQueue ev;
    Machine m("node", hw::platformA(), ev, 1);
    Network net(ev);
    m.kernel().setNetwork(&net);

    class Dummy : public Thread
    {
      public:
        Dummy() : Thread("dummy", 0, 1) {}
        StepResult step(StepCtx &) override { return {StopReason::Exit}; }
    };
    Dummy t;
    hw::ExecStats sink;
    t.setStatsSink(&sink);
    StepCtx ctx{m.core(0), m.kernel(), m, 1e9, 0};

    m.kernel().runPath(ctx, t, KernelPath::TcpRx);
    EXPECT_GT(ctx.cyclesUsed, 1000);
    EXPECT_GT(sink.kernelInstructions, 1000);
    const double before = ctx.cyclesUsed;
    m.kernel().chargeCopy(ctx, t, 64 * 1024);
    EXPECT_GT(ctx.cyclesUsed, before + 3000);
}

TEST(Kernel, PreadHitsAndMisses)
{
    sim::EventQueue ev;
    Machine m("node", hw::platformA(), ev, 1);
    const auto file = m.vfs().create("f", 1 << 30);

    class Dummy : public Thread
    {
      public:
        Dummy() : Thread("dummy", 0, 1) {}
        StepResult step(StepCtx &) override { return {StopReason::Exit}; }
    };
    Dummy t;
    StepCtx ctx{m.core(0), m.kernel(), m, 1e9, 0};

    std::uint64_t diskBytes = 0;
    // Cold: must block on the disk.
    EXPECT_EQ(m.kernel().sysPread(ctx, t, file, 0, 8192, diskBytes),
              SysResult::WouldBlock);
    EXPECT_EQ(diskBytes, 8192u);
    ev.runAll();  // disk completion wakes the (fake) thread
    // Warm: page-cache hit completes inline.
    EXPECT_EQ(m.kernel().sysPread(ctx, t, file, 0, 8192, diskBytes),
              SysResult::Ok);
    EXPECT_EQ(diskBytes, 0u);
    EXPECT_EQ(m.kernel().counts().pread, 2u);
}

} // namespace
