/**
 * @file
 * Tests for trace-driven cloning (src/clone): ingesting a foreign
 * Jaeger document, recovering the per-edge statistics, synthesizing a
 * runnable clone, and closing the loop -- run, re-export, re-analyze,
 * diff (Ditto Sec. 4.2 applied to a system we do not control).
 *
 * Also the malformed-Jaeger corpus: every named foreign-import defect
 * (duplicate spanID, missing parent, zero/negative duration, unknown
 * processID, calleeless client span, bad hex ids, timestamp overflow)
 * must either throw its named error in strict mode or be repaired and
 * tallied in lenient mode -- never silently dropped.
 *
 * The CloneDeterminism.* cases re-run closures on a RunExecutor at
 * --jobs 1 and 4 and require byte-identical reports; the ctest alias
 * CloneUnderTsan runs exactly those under ThreadSanitizer.
 */

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "clone/foreign_fixture.h"
#include "clone/trace_clone.h"
#include "obs/jaeger.h"
#include "sim/run_executor.h"

namespace {

using namespace ditto;

const profile::EdgeProfile *
findEdge(const core::Topology &topo, const std::string &caller,
         const std::string &callee)
{
    for (const profile::EdgeProfile &e : topo.edges)
        if (e.caller == caller && e.callee == callee)
            return &e;
    return nullptr;
}

/** Assert one recovered edge's rate and byte averages exactly. */
void
expectEdge(const core::Topology &topo, const std::string &caller,
           const std::string &callee, double rate, double reqBytes,
           double respBytes)
{
    const profile::EdgeProfile *e = findEdge(topo, caller, callee);
    ASSERT_NE(e, nullptr) << caller << "->" << callee << " missing";
    EXPECT_DOUBLE_EQ(e->callsPerCallerRequest, rate)
        << caller << "->" << callee;
    EXPECT_DOUBLE_EQ(e->avgRequestBytes, reqBytes)
        << caller << "->" << callee;
    EXPECT_DOUBLE_EQ(e->avgResponseBytes, respBytes)
        << caller << "->" << callee;
}

// ---- malformed-corpus builders ------------------------------------

/** A one-trace foreign document (no dittoMeta) around `spans`. */
std::string
doc(const std::string &spans, const std::string &processes =
                                  "\"p1\": {\"serviceName\": \"alpha\"}, "
                                  "\"p2\": {\"serviceName\": \"beta\"}")
{
    return "{\"data\": [{\"traceID\": \"0000000000000abc\", "
           "\"spans\": [" +
           spans + "], \"processes\": {" + processes + "}}]}";
}

/** One span object; parent/kind/tags are optional. */
std::string
span(const std::string &sid, const std::string &op,
     const std::string &parent, const std::string &startUs,
     const std::string &durUs, const std::string &pid,
     const std::string &kind = "server",
     const std::string &extraTags = "")
{
    std::string tags = "{\"key\": \"span.kind\", \"type\": "
                       "\"string\", \"value\": \"" +
        kind + "\"}";
    if (!extraTags.empty())
        tags += ", " + extraTags;
    std::string refs;
    if (!parent.empty())
        refs = "\"references\": [{\"refType\": \"CHILD_OF\", "
               "\"traceID\": \"0000000000000abc\", \"spanID\": \"" +
            parent + "\"}], ";
    return "{\"traceID\": \"0000000000000abc\", \"spanID\": \"" + sid +
        "\", \"operationName\": \"" + op + "\", " + refs +
        "\"startTime\": " + startUs + ", \"duration\": " + durUs +
        ", \"tags\": [" + tags + "], \"processID\": \"" + pid + "\"}";
}

/** Expect a strict import to throw a message containing `needle`. */
void
expectStrictError(const std::string &json, const std::string &needle)
{
    try {
        obs::importJaegerJson(json);
        FAIL() << "expected error containing \"" << needle << "\"";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << "got: " << e.what();
    }
}

// ---- fixture ingest -----------------------------------------------

TEST(CloneIngest, FixtureRecoversGraphAndStats)
{
    const clone::TraceModel m =
        clone::ingestTraceJson(clone::exampleForeignTraceJson());

    EXPECT_EQ(m.root, "gateway");
    EXPECT_EQ(m.services.size(), 5u);
    EXPECT_EQ(m.traces, 100u);
    EXPECT_EQ(m.spans, 360u);
    EXPECT_EQ(m.edges, 260u);
    EXPECT_TRUE(m.ingest.foreign());
    EXPECT_EQ(m.ingest.defects(), 0u);

    const clone::ServiceModel *gw = m.find("gateway");
    ASSERT_NE(gw, nullptr);
    EXPECT_DOUBLE_EQ(gw->requests, 100);
    EXPECT_FALSE(gw->async);
    ASSERT_EQ(gw->endpoints.size(), 2u);
    EXPECT_EQ(gw->endpoints[0].name, "GET /home");
    EXPECT_EQ(gw->endpoints[1].name, "GET /user");
    EXPECT_DOUBLE_EQ(gw->endpoints[0].requests, 60);
    EXPECT_DOUBLE_EQ(gw->endpoints[1].requests, 40);

    const clone::ServiceModel *feed = m.find("feed");
    ASSERT_NE(feed, nullptr);
    EXPECT_DOUBLE_EQ(feed->requests, 60);
    // Feed issues cache.Get and storage.Read concurrently in half the
    // home traces: the model must mark it async.
    EXPECT_TRUE(feed->async);

    const clone::ServiceModel *cache = m.find("cache");
    const clone::ServiceModel *storage = m.find("storage");
    const clone::ServiceModel *profile = m.find("profile");
    ASSERT_NE(cache, nullptr);
    ASSERT_NE(storage, nullptr);
    ASSERT_NE(profile, nullptr);
    EXPECT_DOUBLE_EQ(cache->requests, 60);
    EXPECT_DOUBLE_EQ(storage->requests, 85);
    EXPECT_DOUBLE_EQ(profile->requests, 55);

    // The five edges with exact rates and byte averages. The
    // gateway->feed request sizes cycle 240/248/264/272, mean 256.
    ASSERT_EQ(m.topology.edges.size(), 5u);
    expectEdge(m.topology, "gateway", "feed", 0.6, 256, 2048);
    expectEdge(m.topology, "gateway", "profile", 0.55, 160, 512);
    expectEdge(m.topology, "feed", "cache", 1.0, 64, 1024);
    expectEdge(m.topology, "feed", "storage", 0.5, 96, 4096);
    expectEdge(m.topology, "profile", "storage", 1.0, 96, 4096);

    // Exclusive service time: feed spans last 1000.5us with a cache
    // child (120.75us) always and a storage child (300.5us) in half
    // the traces -> mean exclusive (30*879.75 + 30*579.25)/60 us.
    ASSERT_EQ(feed->endpoints.size(), 1u);
    EXPECT_EQ(feed->endpoints[0].exclusiveNs.count(), 60u);
    EXPECT_NEAR(feed->endpoints[0].meanExclusiveNs, 729500,
                729500 * 0.01);
}

TEST(CloneIngest, FixtureScalesByTraceCount)
{
    const clone::TraceModel m =
        clone::ingestTraceJson(clone::exampleForeignTraceJson(20));
    EXPECT_EQ(m.traces, 20u);
    const clone::ServiceModel *gw = m.find("gateway");
    ASSERT_NE(gw, nullptr);
    EXPECT_DOUBLE_EQ(gw->requests, 20);
    // Rates are shares of the fixed 20-trace cycle: unchanged.
    expectEdge(m.topology, "gateway", "feed", 0.6, 256, 2048);
    expectEdge(m.topology, "gateway", "profile", 0.55, 160, 512);
}

// ---- synthesis ----------------------------------------------------

TEST(CloneSynthesis, SpecsFollowModel)
{
    const clone::TraceModel m =
        clone::ingestTraceJson(clone::exampleForeignTraceJson());
    const clone::SynthesizedClone c = clone::synthesizeClone(m);

    EXPECT_EQ(c.root, "gateway");
    ASSERT_EQ(c.specs.size(), 5u);

    // Dependency order: every downstream must already be deployable,
    // i.e. appear earlier in the spec list.
    std::vector<std::string> seen;
    for (const app::ServiceSpec &s : c.specs) {
        for (const std::string &d : s.downstreams)
            EXPECT_NE(std::find(seen.begin(), seen.end(), d),
                      seen.end())
                << s.name << " depends on later spec " << d;
        seen.push_back(s.name);
    }
    EXPECT_EQ(c.specs.back().name, "gateway");

    const app::ServiceSpec *gw = c.find("gateway");
    const app::ServiceSpec *feed = c.find("feed");
    ASSERT_NE(gw, nullptr);
    ASSERT_NE(feed, nullptr);
    EXPECT_EQ(gw->endpoints.size(), 2u);
    EXPECT_EQ(gw->clientModel, app::ClientModel::Sync);
    EXPECT_EQ(feed->clientModel, app::ClientModel::Async);

    // Load mix follows the observed root endpoint shares (60/40).
    ASSERT_EQ(c.load.endpoints.size(), 2u);
    EXPECT_EQ(c.load.endpoints[0].endpoint, 0u);
    EXPECT_EQ(c.load.endpoints[1].endpoint, 1u);
    EXPECT_DOUBLE_EQ(c.load.endpoints[0].weight, 60);
    EXPECT_DOUBLE_EQ(c.load.endpoints[1].weight, 40);
}

// ---- closure ------------------------------------------------------

clone::ClosureOptions
fastClosure(std::uint64_t seed)
{
    clone::ClosureOptions opts;
    opts.seed = seed;
    opts.qps = 2000;
    opts.measure = sim::milliseconds(250);
    return opts;
}

TEST(CloneClosure, RoundTripWithinTolerance)
{
    const clone::ClosureResult res = clone::runClosure(
        clone::exampleForeignTraceJson(), fastClosure(7));

    EXPECT_TRUE(res.fidelity.isomorphic) << res.report();
    EXPECT_TRUE(res.fidelity.pass) << res.report();
    EXPECT_TRUE(res.fidelity.diffs.empty());
    EXPECT_EQ(res.reanalyzed.services.size(), 5u);
    EXPECT_EQ(res.reanalyzed.root, "gateway");
    EXPECT_EQ(res.reanalyzed.edges.size(), 5u);
    EXPECT_GT(res.cloneRequests, 100u);
    EXPECT_GT(res.windowP50Ns, 0u);
    EXPECT_LE(res.fidelity.maxRateErrPct, 10.0);
    // Byte sizes ride on the synthesized RpcCallSpecs: exact.
    EXPECT_DOUBLE_EQ(res.fidelity.maxRequestBytesErrPct, 0);
    EXPECT_DOUBLE_EQ(res.fidelity.maxResponseBytesErrPct, 0);
}

TEST(CloneClosure, ReportIsStableForIdenticalOptions)
{
    const std::string fixture = clone::exampleForeignTraceJson();
    const clone::ClosureResult a =
        clone::runClosure(fixture, fastClosure(3));
    const clone::ClosureResult b =
        clone::runClosure(fixture, fastClosure(3));
    EXPECT_EQ(a.report(), b.report());
    EXPECT_EQ(a.cloneTraceJson, b.cloneTraceJson);
}

/** Closure reports for seeds 1..k fanned out over `jobs` workers. */
std::vector<std::string>
closureReports(const std::string &fixture, unsigned jobs, unsigned k)
{
    sim::RunExecutor pool(jobs);
    std::vector<std::function<std::string()>> tasks;
    for (unsigned i = 0; i < k; ++i)
        tasks.push_back([&fixture, i] {
            return clone::runClosure(fixture, fastClosure(1 + i))
                .report();
        });
    return pool.runOrdered<std::string>(std::move(tasks));
}

TEST(CloneDeterminism, ReportsIdenticalAtJobs1And4)
{
    const std::string fixture = clone::exampleForeignTraceJson();
    const std::vector<std::string> serial =
        closureReports(fixture, 1, 2);
    const std::vector<std::string> parallel =
        closureReports(fixture, 4, 2);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "seed " << (1 + i);
}

// ---- malformed-Jaeger corpus --------------------------------------

TEST(CloneImportErrors, DuplicateSpanId)
{
    const std::string d =
        doc(span("0000000000000001", "op", "", "1000", "50", "p1") +
            ", " +
            span("0000000000000001", "op", "", "2000", "60", "p1"));
    expectStrictError(d, "duplicate spanID 0000000000000001");

    obs::ImportOptions lenient;
    lenient.lenient = true;
    obs::ImportReport rep;
    const trace::Tracer t = obs::importJaegerJson(d, lenient, &rep);
    EXPECT_EQ(rep.duplicateSpans, 1u);
    EXPECT_EQ(rep.defects(), 1u);
    ASSERT_EQ(t.spans().size(), 1u);  // keep-first repair
    EXPECT_EQ(t.spans()[0].end - t.spans()[0].start, 50000u);
    EXPECT_FALSE(rep.warnings.empty());
}

TEST(CloneImportErrors, MissingParentReparentsToRoot)
{
    const std::string d = doc(span("0000000000000002", "op",
                                   "00000000000000ff", "1000", "50",
                                   "p1"));
    expectStrictError(d, "references missing parent 00000000000000ff");

    obs::ImportOptions lenient;
    lenient.lenient = true;
    obs::ImportReport rep;
    const trace::Tracer t = obs::importJaegerJson(d, lenient, &rep);
    EXPECT_EQ(rep.missingParents, 1u);
    ASSERT_EQ(t.spans().size(), 1u);
    EXPECT_EQ(t.spans()[0].parentSpanId, 0u);  // reparented to root
}

TEST(CloneImportErrors, ZeroDurationServerSpan)
{
    const std::string d =
        doc(span("0000000000000003", "op", "", "1000", "0", "p1"));
    expectStrictError(d, "zero-duration span 0000000000000003");

    obs::ImportOptions lenient;
    lenient.lenient = true;
    obs::ImportReport rep;
    const trace::Tracer t = obs::importJaegerJson(d, lenient, &rep);
    EXPECT_EQ(rep.zeroDurationSpans, 1u);
    EXPECT_EQ(t.spans().size(), 1u);  // kept, tallied
}

TEST(CloneImportErrors, NegativeDurationAndStartTime)
{
    const std::string negDur =
        doc(span("0000000000000004", "op", "", "1000", "-5", "p1"));
    expectStrictError(negDur, "has negative duration");

    obs::ImportOptions lenient;
    lenient.lenient = true;
    obs::ImportReport rep;
    const trace::Tracer t =
        obs::importJaegerJson(negDur, lenient, &rep);
    // Clamped to zero length, which also tallies a zero-duration
    // server span: both defects are visible, nothing vanishes.
    EXPECT_EQ(rep.negativeDurationSpans, 1u);
    EXPECT_EQ(rep.zeroDurationSpans, 1u);
    ASSERT_EQ(t.spans().size(), 1u);
    EXPECT_EQ(t.spans()[0].end, t.spans()[0].start);

    const std::string negStart =
        doc(span("0000000000000005", "op", "", "-1.5", "50", "p1"));
    expectStrictError(negStart, "has negative startTime");
    obs::ImportReport rep2;
    const trace::Tracer t2 =
        obs::importJaegerJson(negStart, lenient, &rep2);
    EXPECT_EQ(rep2.negativeDurationSpans, 1u);
    ASSERT_EQ(t2.spans().size(), 1u);
    EXPECT_EQ(t2.spans()[0].start, 0u);  // clamped to epoch
}

TEST(CloneImportErrors, UnknownProcessId)
{
    const std::string d =
        doc(span("0000000000000006", "op", "", "1000", "50", "p9") +
            ", " +
            span("0000000000000007", "op", "", "2000", "60", "p1"));
    expectStrictError(d, "unknown processID \"p9\"");

    obs::ImportOptions lenient;
    lenient.lenient = true;
    obs::ImportReport rep;
    const trace::Tracer t = obs::importJaegerJson(d, lenient, &rep);
    EXPECT_EQ(rep.unknownProcessSpans, 1u);
    ASSERT_EQ(t.spans().size(), 1u);  // defective span skipped
    EXPECT_EQ(t.spans()[0].spanId, 0x7u);
}

TEST(CloneImportErrors, CalleelessClientSpan)
{
    // A client span with neither a child server span nor a
    // peer.service tag: the edge's callee is unrecoverable.
    const std::string d =
        doc(span("0000000000000008", "op", "", "1000", "500", "p1") +
            ", " +
            span("0000000000000009", "call", "0000000000000008",
                 "1100", "50", "p1", "client"));
    expectStrictError(d, "neither a child server span nor");

    obs::ImportOptions lenient;
    lenient.lenient = true;
    obs::ImportReport rep;
    const trace::Tracer t = obs::importJaegerJson(d, lenient, &rep);
    EXPECT_EQ(rep.calleelessClientSpans, 1u);
    EXPECT_TRUE(t.edges().empty());  // edge dropped, counted
    EXPECT_EQ(t.spans().size(), 1u);
}

TEST(CloneImportErrors, BadHexIdAlwaysThrows)
{
    const std::string d =
        doc(span("not-hex-at-all", "op", "", "1000", "50", "p1"));
    expectStrictError(d, "bad hex id");
    obs::ImportOptions lenient;
    lenient.lenient = true;
    // Structural garbage is not repairable, even leniently.
    EXPECT_THROW(obs::importJaegerJson(d, lenient, nullptr),
                 std::runtime_error);
}

TEST(CloneImportErrors, TimestampOverflow)
{
    // 2^64-1 microseconds does not fit u64 nanoseconds.
    const std::string d = doc(span("000000000000000a", "op", "",
                                   "18446744073709551615", "50",
                                   "p1"));
    expectStrictError(d, "startTime overflows");
    obs::ImportOptions lenient;
    lenient.lenient = true;
    EXPECT_THROW(obs::importJaegerJson(d, lenient, nullptr),
                 std::runtime_error);
}

TEST(CloneImportErrors, MalformedNumbersRejectedByParser)
{
    // The hardened JSON number grammar backs the importer: malformed
    // tokens die in the parser with named errors, never as NaNs.
    expectStrictError(doc(span("000000000000000b", "op", "", "1.2.3",
                               "50", "p1")),
                      "json");
    expectStrictError(doc(span("000000000000000c", "op", "", "0123",
                               "50", "p1")),
                      "json");
    expectStrictError(doc(span("000000000000000d", "op", "", "1.",
                               "50", "p1")),
                      "json");
    expectStrictError(doc(span("000000000000000e", "op", "", "1e",
                               "50", "p1")),
                      "json");
}

TEST(CloneImportErrors, FloatMicrosecondsConvertLosslessly)
{
    // 1000.125us -> 1000125ns and 123.456us -> 123456ns, exactly:
    // the conversion works on the source literal, not a double.
    const std::string d = doc(span("000000000000000f", "op", "",
                                   "1000.125", "123.456", "p1"));
    const trace::Tracer t = obs::importJaegerJson(d);
    ASSERT_EQ(t.spans().size(), 1u);
    EXPECT_EQ(t.spans()[0].start, 1000125u);
    EXPECT_EQ(t.spans()[0].end - t.spans()[0].start, 123456u);

    // Near-max durations survive exactly too (the conversion's
    // overflow guard reserves one ns of headroom for rounding, so
    // the last representable value is u64 max minus the reserve).
    const std::string big = doc(span("0000000000000010", "op", "",
                                     "0", "18446744073709550.999",
                                     "p1"));
    const trace::Tracer t2 = obs::importJaegerJson(big);
    ASSERT_EQ(t2.spans().size(), 1u);
    EXPECT_EQ(t2.spans()[0].start, 0u);
    EXPECT_EQ(t2.spans()[0].end, 18446744073709550999ull);
}

TEST(CloneImportErrors, LenientFixtureMatchesStrict)
{
    // A clean document must ingest identically under both modes.
    clone::IngestOptions lenient;
    lenient.import.lenient = true;
    const clone::TraceModel a =
        clone::ingestTraceJson(clone::exampleForeignTraceJson());
    const clone::TraceModel b = clone::ingestTraceJson(
        clone::exampleForeignTraceJson(), lenient);
    EXPECT_EQ(a.ingest.defects(), 0u);
    EXPECT_EQ(b.ingest.defects(), 0u);
    EXPECT_EQ(a.spans, b.spans);
    EXPECT_EQ(a.edges, b.edges);
    ASSERT_EQ(a.topology.edges.size(), b.topology.edges.size());
    for (std::size_t i = 0; i < a.topology.edges.size(); ++i) {
        EXPECT_EQ(a.topology.edges[i].caller,
                  b.topology.edges[i].caller);
        EXPECT_DOUBLE_EQ(a.topology.edges[i].callsPerCallerRequest,
                         b.topology.edges[i].callsPerCallerRequest);
    }
}

// ---- fidelity comparison unit tests -------------------------------

TEST(CloneFidelity, DetectsMissingServiceAndEdge)
{
    const clone::TraceModel m =
        clone::ingestTraceJson(clone::exampleForeignTraceJson());
    core::Topology mutated = m.topology;
    mutated.services.pop_back();
    const clone::FidelityReport svc =
        clone::compareTopologies(m.topology, mutated);
    EXPECT_FALSE(svc.isomorphic);
    EXPECT_FALSE(svc.pass);
    EXPECT_FALSE(svc.diffs.empty());

    core::Topology noEdge = m.topology;
    noEdge.edges.pop_back();
    const clone::FidelityReport edge =
        clone::compareTopologies(m.topology, noEdge);
    EXPECT_FALSE(edge.isomorphic);
}

TEST(CloneFidelity, RateToleranceIsMaxOfAbsAndRel)
{
    const clone::TraceModel m =
        clone::ingestTraceJson(clone::exampleForeignTraceJson());
    core::Topology drift = m.topology;
    // +0.05 on a 0.6 rate: within max(0.08 abs, 10% rel).
    for (profile::EdgeProfile &e : drift.edges)
        if (e.caller == "gateway" && e.callee == "feed")
            e.callsPerCallerRequest += 0.05;
    EXPECT_TRUE(clone::compareTopologies(m.topology, drift).pass);

    // +0.2 busts both bounds.
    for (profile::EdgeProfile &e : drift.edges)
        if (e.caller == "gateway" && e.callee == "feed")
            e.callsPerCallerRequest += 0.15;
    const clone::FidelityReport bad =
        clone::compareTopologies(m.topology, drift);
    EXPECT_TRUE(bad.isomorphic);
    EXPECT_FALSE(bad.pass);
    EXPECT_FALSE(bad.diffs.empty());
}

} // namespace
