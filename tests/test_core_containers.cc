/**
 * @file
 * Unit tests for the hot-path containers in src/core: the slab arena
 * behind the network's in-flight pool, the string interner behind
 * dense service ids, and the flat hash map behind the coherence
 * sharers directory.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/flat_map64.h"
#include "core/slab_arena.h"
#include "core/string_interner.h"

using namespace ditto;

namespace {

struct Tracked
{
    static int liveCount;
    int value;

    explicit Tracked(int v) : value(v) { ++liveCount; }
    Tracked(const Tracked &other) : value(other.value) { ++liveCount; }
    Tracked(Tracked &&other) noexcept : value(other.value)
    {
        ++liveCount;
    }
    ~Tracked() { --liveCount; }
};

int Tracked::liveCount = 0;

TEST(SlabArena, CreateDestroyRecyclesNodes)
{
    core::SlabArena<Tracked> arena;
    Tracked *a = arena.create(Tracked{1});
    Tracked *b = arena.create(Tracked{2});
    EXPECT_EQ(a->value, 1);
    EXPECT_EQ(b->value, 2);
    EXPECT_EQ(arena.liveCount(), 2u);

    arena.destroy(a);
    EXPECT_EQ(arena.liveCount(), 1u);
    // The freed node is recycled before any new chunk is touched.
    Tracked *c = arena.create(Tracked{3});
    EXPECT_EQ(c, a);
    EXPECT_EQ(c->value, 3);
    arena.destroy(b);
    arena.destroy(c);
    EXPECT_EQ(arena.liveCount(), 0u);
    EXPECT_EQ(Tracked::liveCount, 0);
}

TEST(SlabArena, ClearDestroysLiveObjects)
{
    {
        core::SlabArena<Tracked> arena;
        for (int i = 0; i < 100; ++i)
            arena.create(Tracked{i});
        EXPECT_EQ(arena.liveCount(), 100u);
        EXPECT_EQ(Tracked::liveCount, 100);
        arena.clear();
        EXPECT_EQ(arena.liveCount(), 0u);
        EXPECT_EQ(Tracked::liveCount, 0);
        // Arena stays usable after clear().
        Tracked *t = arena.create(Tracked{7});
        EXPECT_EQ(t->value, 7);
    }
    // Destruction also reclaims whatever was still live.
    EXPECT_EQ(Tracked::liveCount, 0);
}

TEST(SlabArena, GrowsAcrossChunks)
{
    core::SlabArena<std::uint64_t> arena;
    std::vector<std::uint64_t *> ptrs;
    for (std::uint64_t i = 0; i < 5000; ++i)
        ptrs.push_back(arena.create(i));
    for (std::uint64_t i = 0; i < 5000; ++i)
        EXPECT_EQ(*ptrs[i], i);
    EXPECT_GE(arena.capacity(), 5000u);
    for (std::uint64_t *p : ptrs)
        arena.destroy(p);
    EXPECT_EQ(arena.liveCount(), 0u);
}

TEST(StringInterner, DenseIdsAndRoundTrip)
{
    core::StringInterner interner;
    const std::uint32_t a = interner.intern("frontend");
    const std::uint32_t b = interner.intern("backend");
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(interner.intern("frontend"), a);
    EXPECT_EQ(interner.lookup("frontend"), a);
    EXPECT_EQ(interner.lookup("missing"), core::StringInterner::kInvalidId);
    EXPECT_EQ(interner.name(a), "frontend");
    EXPECT_EQ(interner.name(b), "backend");
    EXPECT_EQ(interner.size(), 2u);
}

TEST(StringInterner, SurvivesGrowth)
{
    core::StringInterner interner;
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(interner.intern("svc-" + std::to_string(i)),
                  static_cast<std::uint32_t>(i));
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(interner.lookup("svc-" + std::to_string(i)),
                  static_cast<std::uint32_t>(i));
        EXPECT_EQ(interner.name(static_cast<std::uint32_t>(i)),
                  "svc-" + std::to_string(i));
    }
}

TEST(FlatMap64, MatchesUnorderedMapReference)
{
    // Differential check against std::unordered_map over an access
    // pattern shaped like the sharers directory: arithmetic line
    // progressions plus random lines, read-modify-write of bitmasks.
    core::FlatMap64 flat;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    std::uint64_t x = 12345;
    for (int i = 0; i < 20000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t line = (i % 3 == 0)
            ? (x >> 40)                       // scattered
            : static_cast<std::uint64_t>(i) * 64;  // progression
        const std::uint64_t bit = std::uint64_t{1} << (x % 64);
        flat.ref(line) |= bit;
        ref[line] |= bit;
    }
    EXPECT_EQ(flat.size(), ref.size());
    for (const auto &[k, v] : ref)
        EXPECT_EQ(flat.ref(k), v);
}

TEST(FlatMap64, ZeroKeyAndClear)
{
    core::FlatMap64 map;
    map.ref(0) = 42;
    EXPECT_EQ(map.ref(0), 42u);
    EXPECT_EQ(map.size(), 1u);
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.ref(0), 0u);
}

} // namespace
