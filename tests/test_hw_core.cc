/**
 * @file
 * Tests for the CPU core cost model: ILP, port pressure, memory
 * stalls, pointer chasing, top-down accounting, sampling and replay.
 */

#include <gtest/gtest.h>

#include "hw/block_builder.h"
#include "hw/cpu_core.h"
#include "hw/platform.h"

namespace {

using namespace ditto::hw;

struct CoreFixture
{
    PlatformSpec spec = platformA();
    Cache llc{spec.llcBytes, spec.llcWays};
    CacheHierarchy caches{spec.l1iBytes, spec.l1iWays,
                          spec.l1dBytes, spec.l1dWays,
                          spec.l2Bytes, spec.l2Ways, &llc,
                          spec.prefetchEnabled};
    CpuCore core{0, spec, caches, nullptr};
    ExecContext ctx{0, 1};

    CoreFixture() { core.setExactMode(true); }

    CodeImage
    makeImage() const
    {
        return CodeImage(0x400000, 0x10000000, 4);
    }
};

/** A block of `n` dependent adds: dst == src == r1. */
CodeBlock
serialAdds(unsigned n)
{
    const Isa &isa = Isa::instance();
    CodeBlock block;
    block.label = "serial";
    for (unsigned i = 0; i < n; ++i) {
        Inst inst;
        inst.opcode = isa.opcode("ADD_GPR64_GPR64");
        inst.dst = 1;
        inst.src0 = 1;
        block.insts.push_back(inst);
    }
    return block;
}

/** A block of `n` independent adds rotating over 8 registers. */
CodeBlock
parallelAdds(unsigned n)
{
    const Isa &isa = Isa::instance();
    CodeBlock block;
    block.label = "parallel";
    for (unsigned i = 0; i < n; ++i) {
        Inst inst;
        inst.opcode = isa.opcode("ADD_GPR64_GPR64");
        inst.dst = static_cast<std::uint8_t>(i % 8);
        inst.src0 = static_cast<std::uint8_t>((i + 1) % 8);
        block.insts.push_back(inst);
    }
    return block;
}

TEST(CpuCore, IlpSerialChainSlowerThanParallel)
{
    CoreFixture f;
    CodeImage image = f.makeImage();
    const auto serial = image.addBlock(serialAdds(64));
    const auto parallel = image.addBlock(parallelAdds(64));

    ExecStats s1;
    ExecStats s2;
    const double cSerial = f.core.run(image, serial, 50, f.ctx, s1);
    const double cParallel =
        f.core.run(image, parallel, 50, f.ctx, s2);
    // Serial chain: ~1 inst/cycle bound by latency; parallel: bound
    // by issue width 4.
    EXPECT_GT(cSerial, 2.0 * cParallel);
    EXPECT_GT(s2.ipc(), 2.0);
    EXPECT_LT(s1.ipc(), 1.3);
}

TEST(CpuCore, PortPressureDivisionBound)
{
    CoreFixture f;
    CodeImage image = f.makeImage();
    const Isa &isa = Isa::instance();

    CodeBlock divs;
    divs.label = "divs";
    for (int i = 0; i < 32; ++i) {
        Inst inst;
        inst.opcode = isa.opcode("DIV_GPR64");
        inst.dst = static_cast<std::uint8_t>(i % 8);
        divs.insts.push_back(inst);
    }
    const auto divBlock = image.addBlock(divs);
    const auto addBlock = image.addBlock(parallelAdds(32));
    ExecStats sd;
    ExecStats sa;
    const double cd = f.core.run(image, divBlock, 20, f.ctx, sd);
    const double ca = f.core.run(image, addBlock, 20, f.ctx, sa);
    // All divides contend for port 0 and carry many uops.
    EXPECT_GT(cd, 5 * ca);
}

TEST(CpuCore, PointerChaseSerializesMisses)
{
    CoreFixture f;
    CodeImage image = f.makeImage();
    const Isa &isa = Isa::instance();

    auto make_loads = [&](StreamKind kind, const char *label) {
        CodeBlock block;
        block.label = label;
        block.streams.push_back(
            MemStreamDesc{64 << 20, kind, false, 1});
        for (int i = 0; i < 32; ++i) {
            Inst inst;
            inst.opcode = isa.opcode("MOV_GPR64_MEM64");
            inst.dst = static_cast<std::uint8_t>(i % 8);
            inst.memStream = 0;
            block.insts.push_back(inst);
        }
        return block;
    };
    const auto chase =
        image.addBlock(make_loads(StreamKind::PointerChase, "chase"));
    const auto rand =
        image.addBlock(make_loads(StreamKind::Random, "rand"));
    ExecStats sc;
    ExecStats sr;
    const double cc = f.core.run(image, chase, 40, f.ctx, sc);
    const double cr = f.core.run(image, rand, 40, f.ctx, sr);
    // Both miss everywhere (64MB working set), but chasing cannot
    // overlap misses: far slower, and the serialized-miss counter
    // fills up.
    EXPECT_GT(cc, 3 * cr);
    EXPECT_GT(sc.serializedMissCycles, 10 * sc.parallelMissCycles);
    EXPECT_GT(sr.parallelMissCycles, 10 * sr.serializedMissCycles);
}

TEST(CpuCore, WorkingSetSizeDrivesMissRatesAndIpc)
{
    CoreFixture f;
    CodeImage image = f.makeImage();

    BlockSpec small;
    small.label = "small";
    small.instCount = 64;
    small.memFraction = 0.5;
    small.streams = {{16 << 10, StreamKind::Sequential, false, 1.0}};
    small.seed = 1;
    BlockSpec huge = small;
    huge.label = "huge";
    huge.streams = {{128u << 20, StreamKind::Random, false, 1.0}};
    huge.seed = 1;

    const auto smallB = image.addBlock(buildBlock(small));
    const auto hugeB = image.addBlock(buildBlock(huge));
    ExecStats ss;
    ExecStats sh;
    f.core.run(image, smallB, 200, f.ctx, ss);
    f.core.run(image, hugeB, 200, f.ctx, sh);
    EXPECT_LT(ss.missRateL1d(), 0.1);
    EXPECT_GT(sh.missRateL1d(), 0.5);
    EXPECT_GT(ss.ipc(), 1.5 * sh.ipc());
    // The huge working set spills past the LLC.
    EXPECT_GT(sh.llcMisses, 0);
}

TEST(CpuCore, TopDownBucketsSumToCycles)
{
    CoreFixture f;
    CodeImage image = f.makeImage();
    BlockSpec spec;
    spec.label = "mixed";
    spec.instCount = 256;
    spec.memFraction = 0.3;
    spec.branchFraction = 0.15;
    spec.streams = {{1 << 20, StreamKind::Random, false, 1.0}};
    spec.seed = 3;
    const auto b = image.addBlock(buildBlock(spec));
    ExecStats s;
    const double cycles = f.core.run(image, b, 100, f.ctx, s);
    const double sum = s.retiringCycles + s.frontendCycles +
        s.badSpecCycles + s.backendCycles;
    EXPECT_NEAR(sum, cycles, cycles * 1e-6);
    EXPECT_GT(s.retiringCycles, 0);
    EXPECT_GT(s.backendCycles, 0);
    EXPECT_GT(s.badSpecCycles, 0);
}

TEST(CpuCore, BigFootprintCausesFrontendStalls)
{
    CoreFixture f;
    CodeImage image = f.makeImage();
    // 128KB of straight-line code: busts the 32KB L1i every pass.
    BlockSpec spec;
    spec.label = "hugecode";
    spec.instCount = 32768;
    spec.memFraction = 0.05;
    spec.branchFraction = 0.0;
    spec.seed = 4;
    const auto big = image.addBlock(buildBlock(spec));
    const auto tiny = image.addBlock(parallelAdds(128));
    ExecStats warm;
    f.core.run(image, tiny, 50, f.ctx, warm);  // warm the tiny block
    ExecStats sb;
    ExecStats st;
    f.core.run(image, big, 6, f.ctx, sb);
    f.core.run(image, tiny, 50, f.ctx, st);
    EXPECT_GT(sb.missRateL1i(), 0.5);
    EXPECT_GT(sb.frontendCycles / sb.cycles,
              st.frontendCycles / std::max(1.0, st.cycles) + 0.05);
}

TEST(CpuCore, SamplingApproximatesExact)
{
    // Same block, many iterations: sampled execution must track the
    // exact interpreter within a few percent.
    auto run = [&](bool exact) {
        CoreFixture f;
        f.core.setExactMode(exact);
        CodeImage image = f.makeImage();
        BlockSpec spec;
        spec.label = "sampled";
        spec.instCount = 128;
        spec.memFraction = 0.3;
        spec.branchFraction = 0.1;
        spec.streams = {{256 << 10, StreamKind::Sequential, false, 1.0}};
        spec.seed = 5;
        const auto b = image.addBlock(buildBlock(spec));
        ExecStats s;
        f.core.run(image, b, 5000, f.ctx, s);
        return s;
    };
    const ExecStats exact = run(true);
    const ExecStats sampled = run(false);
    EXPECT_NEAR(sampled.instructions, exact.instructions,
                exact.instructions * 0.001);
    EXPECT_NEAR(sampled.cycles, exact.cycles, exact.cycles * 0.10);
    EXPECT_NEAR(sampled.ipc(), exact.ipc(), exact.ipc() * 0.10);
}

TEST(CpuCore, ReplayApproximatesSteadyState)
{
    // Repeated short calls: the replay cache must give nearly the
    // same aggregate cycles as exact interpretation.
    auto run = [&](bool exact) {
        CoreFixture f;
        f.core.setExactMode(exact);
        CodeImage image = f.makeImage();
        BlockSpec spec;
        spec.label = "replayed";
        spec.instCount = 200;
        spec.memFraction = 0.3;
        spec.branchFraction = 0.1;
        spec.streams = {{64 << 10, StreamKind::Sequential, false, 1.0}};
        spec.seed = 6;
        const auto b = image.addBlock(buildBlock(spec));
        ExecStats s;
        for (int call = 0; call < 400; ++call)
            f.core.run(image, b, 2, f.ctx, s);
        return s;
    };
    const ExecStats exact = run(true);
    const ExecStats replayed = run(false);
    EXPECT_NEAR(replayed.instructions, exact.instructions,
                exact.instructions * 0.001);
    EXPECT_NEAR(replayed.cycles, exact.cycles, exact.cycles * 0.12);
}

TEST(CpuCore, ContentionFactorScalesCycles)
{
    CoreFixture f;
    CodeImage image = f.makeImage();
    const auto b = image.addBlock(parallelAdds(64));
    ExecStats warm;
    f.core.run(image, b, 100, f.ctx, warm);  // warm caches first
    ExecStats s1;
    const double base = f.core.run(image, b, 100, f.ctx, s1);
    f.core.setContentionFactor(1.5);
    ExecStats s2;
    const double contended = f.core.run(image, b, 100, f.ctx, s2);
    EXPECT_NEAR(contended, base * 1.5, base * 0.05);
}

TEST(CpuCore, KernelModeAttribution)
{
    CoreFixture f;
    CodeImage image = f.makeImage();
    const auto b = image.addBlock(parallelAdds(64));
    ExecStats s;
    f.core.run(image, b, 10, f.ctx, s, /*kernelMode=*/true);
    EXPECT_DOUBLE_EQ(s.kernelInstructions, s.instructions);
    f.core.run(image, b, 10, f.ctx, s, /*kernelMode=*/false);
    EXPECT_LT(s.kernelInstructions, s.instructions);
}

TEST(CpuCore, RepStringCostScalesWithBytes)
{
    CoreFixture f;
    CodeImage image = f.makeImage();
    const Isa &isa = Isa::instance();
    auto make_rep = [&](std::uint32_t bytes) {
        CodeBlock block;
        block.label = "rep";
        block.streams.push_back(
            MemStreamDesc{1 << 20, StreamKind::Sequential, false, 1});
        Inst inst;
        inst.opcode = isa.opcode("REP_MOVSB");
        inst.memStream = 0;
        inst.repBytes = bytes;
        block.insts.push_back(inst);
        return image.addBlock(block);
    };
    const auto small = make_rep(64);
    const auto large = make_rep(8192);
    ExecStats ss;
    ExecStats sl;
    const double cs = f.core.run(image, small, 20, f.ctx, ss);
    const double cl = f.core.run(image, large, 20, f.ctx, sl);
    EXPECT_GT(cl, 5 * cs);
    // The large copy touches ~128 lines per instruction.
    EXPECT_GT(sl.l1dAccesses, 100 * ss.instructions);
}

} // namespace
