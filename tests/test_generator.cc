/**
 * @file
 * Tests for the body generator (stage semantics, Eq. 1/2 synthesis)
 * and the skeleton generator / fine tuner.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/body_generator.h"
#include "core/fine_tuner.h"
#include "core/skeleton_generator.h"
#include "hw/isa.h"

namespace {

using namespace ditto;
using namespace ditto::core;

/** A hand-written profile with known, analyzable structure. */
profile::ServiceProfile
syntheticProfile()
{
    profile::ServiceProfile prof;
    prof.serviceName = "orig";
    prof.requestsObserved = 1000;

    const hw::Isa &isa = hw::Isa::instance();
    prof.mix.counts.assign(isa.size(), 0.0);
    prof.mix.counts[isa.opcode("ADD_GPR64_GPR64")] = 4e6;
    prof.mix.counts[isa.opcode("MOV_GPR64_MEM64")] = 1.6e6;
    prof.mix.counts[isa.opcode("MOV_MEM64_GPR64")] = 0.4e6;
    prof.mix.counts[isa.opcode("IMUL_GPR64_GPR64")] = 0.5e6;
    prof.mix.counts[isa.opcode("JNZ_RELBR")] = 1e6;
    prof.mix.instsPerRequest = 8000;

    prof.branch.branchFraction = 0.12;
    prof.branch.bins[2][3] = 1000;
    prof.branch.bins[4][5] = 500;
    prof.branch.totalExecutions = 1500;
    prof.branch.staticSites = 40;

    // Data: 60% of accesses in 4KB (idx 6), 40% in 1MB (idx 14).
    prof.dmem.accessesPerInst = 0.25;
    prof.dmem.totalAccesses = 2e6;
    double cumulative = 0;
    for (std::size_t i = 0; i < profile::kWsSizes; ++i) {
        if (i == 6)
            cumulative += 0.6 * 2e6;
        if (i == 14)
            cumulative += 0.4 * 2e6;
        prof.dmem.hitsBySize[i] = cumulative;
    }
    prof.dmem.storeFraction = 0.25;
    prof.dmem.sharedFraction = 0.3;
    prof.dmem.regularFraction = 0.5;

    // Instructions: 70% in 4KB blocks, 30% in 64KB (idx 10) blocks.
    const double fetches = 8e6 / 16;
    cumulative = 0;
    for (std::size_t j = 0; j < profile::kWsSizes; ++j) {
        if (j == 6)
            cumulative += 0.7 * fetches;
        if (j == 10)
            cumulative += 0.3 * fetches;
        prof.imem.hitsBySize[j] = cumulative;
    }
    prof.imem.totalFetches = fetches;

    prof.dep.raw[1] = 100;
    prof.dep.raw[4] = 300;
    prof.dep.waw[3] = 200;
    prof.dep.war[2] = 100;
    prof.dep.chaseFraction = 0.2;

    profile::SyscallStat pread;
    pread.countPerRequest = 1.5;
    pread.avgBytes = 8192;
    prof.syscalls.perKind[static_cast<int>(app::SysKind::Pread)] =
        pread;
    profile::SyscallStat futex;
    futex.countPerRequest = 0.2;
    prof.syscalls.perKind[static_cast<int>(app::SysKind::FutexWait)] =
        futex;
    prof.syscalls.fileSpanBytes = 4ull << 30;

    prof.avgRequestBytes = 200;
    prof.avgResponseBytes = 1024;
    prof.reference.ipc = 0.8;
    prof.reference.instructionsPerRequest = 12000;
    prof.reference.l1iMissRate = 0.05;
    prof.reference.l1dMissRate = 0.3;
    prof.reference.branchMispredictRate = 0.03;
    return prof;
}

double
totalGeneratedInstsPerRequest(const GeneratedBody &body)
{
    // Walk the handler and accumulate expected executions.
    double total = 0;
    std::function<void(const app::Program &, double)> walk =
        [&](const app::Program &prog, double scale) {
            for (const app::Op &op : prog.ops) {
                switch (op.kind) {
                  case app::OpKind::Compute: {
                    const double iters =
                        (static_cast<double>(op.itersMin) +
                         static_cast<double>(op.itersMax)) / 2;
                    total += scale * iters *
                        static_cast<double>(
                            body.blocks[op.block].insts.size());
                    break;
                  }
                  case app::OpKind::Choice: {
                    double sum = 0;
                    for (double p : op.probs)
                        sum += p;
                    for (std::size_t arm = 0; arm < op.subs.size();
                         ++arm) {
                        const double p = arm < op.probs.size()
                            ? op.probs[arm] / sum : 0;
                        walk(op.subs[arm], scale * p);
                    }
                    break;
                  }
                  case app::OpKind::Call:
                    walk(op.subs[0], scale);
                    break;
                  default:
                    break;
                }
            }
        };
    walk(body.handler, 1.0);
    return total;
}

TEST(BodyGenerator, StageAIsEmpty)
{
    const auto body = generateBody(syntheticProfile(),
                                   GenerationConfig::stage('A'), "c");
    EXPECT_TRUE(body.blocks.empty());
    EXPECT_TRUE(body.handler.ops.empty());
}

TEST(BodyGenerator, StageBHasSyscallsOnly)
{
    const auto body = generateBody(syntheticProfile(),
                                   GenerationConfig::stage('B'), "c");
    EXPECT_TRUE(body.blocks.empty());
    ASSERT_FALSE(body.handler.ops.empty());
    // One whole pread + a Choice for the 0.5 fraction, plus a
    // probabilistic lock section (Choice wrapping Lock..Unlock).
    int fileReads = 0;
    int lockChoices = 0;
    for (const auto &op : body.handler.ops) {
        fileReads += op.kind == app::OpKind::FileRead;
        if (op.kind == app::OpKind::Choice && !op.subs.empty() &&
            !op.subs[0].empty() &&
            op.subs[0].ops[0].kind == app::OpKind::Lock) {
            ++lockChoices;
            // Critical section ends with the unlock.
            EXPECT_EQ(op.subs[0].ops.back().kind,
                      app::OpKind::Unlock);
        }
    }
    EXPECT_GE(fileReads, 1);
    EXPECT_EQ(lockChoices, 1);
    EXPECT_TRUE(body.usesLock);
    EXPECT_EQ(body.fileBytes, 4ull << 30);
}

TEST(BodyGenerator, StageCHomogeneousAddChain)
{
    const auto body = generateBody(syntheticProfile(),
                                   GenerationConfig::stage('C'), "c");
    ASSERT_FALSE(body.blocks.empty());
    const hw::Isa &isa = hw::Isa::instance();
    const auto add = isa.opcode("ADD_GPR64_GPR64");
    for (const auto &block : body.blocks) {
        for (const auto &inst : block.insts) {
            EXPECT_EQ(inst.opcode, add);
            EXPECT_EQ(inst.dst, 1);
            EXPECT_EQ(inst.src0, 1);
        }
    }
    EXPECT_NEAR(totalGeneratedInstsPerRequest(body), 8000,
                8000 * 0.15);
}

TEST(BodyGenerator, StageDSamplesMixWorstCaseElsewhere)
{
    const auto body = generateBody(syntheticProfile(),
                                   GenerationConfig::stage('D'), "c");
    // The mix includes loads/stores/branches now.
    int loads = 0;
    int branches = 0;
    int total = 0;
    for (const auto &block : body.blocks) {
        for (const auto &inst : block.insts) {
            const auto &info =
                hw::Isa::instance().info(inst.opcode);
            loads += info.isLoad;
            branches += inst.branch != hw::kNoBranch;
            ++total;
        }
        // Stage D: every stream is the smallest working set.
        for (const auto &s : block.streams)
            EXPECT_EQ(s.wsBytes, 64u);
        // Worst-case branch behaviour: M = N = 1.
        for (const auto &b : block.branches) {
            EXPECT_EQ(b.takenExp, 1);
            EXPECT_EQ(b.transExp, 1);
        }
    }
    EXPECT_GT(loads, 0);
    EXPECT_GT(branches, 0);
    // Stage D generates one small block; the fraction is noisy.
    EXPECT_GT(static_cast<double>(branches) / total, 0.03);
    EXPECT_LT(static_cast<double>(branches) / total, 0.30);
}

TEST(BodyGenerator, StageEBranchBinsFollowProfile)
{
    // Use the full stage so blocks are large enough for the bin
    // statistics to be meaningful (hundreds of static sites).
    const auto body = generateBody(syntheticProfile(),
                                   GenerationConfig::stage('H'), "c");
    int bin23 = 0;
    int bin45 = 0;
    int other = 0;
    for (const auto &block : body.blocks) {
        for (const auto &b : block.branches) {
            if (b.takenExp == 2 && b.transExp == 3)
                ++bin23;
            else if (b.takenExp == 4 && b.transExp == 5)
                ++bin45;
            else
                ++other;
        }
    }
    EXPECT_GT(bin23, bin45);  // 2:1 profiled ratio
    EXPECT_GT(bin45, 0);
    EXPECT_EQ(other, 0);
}

TEST(BodyGenerator, StageFInstructionFootprintsMatchEq2)
{
    const auto body = generateBody(syntheticProfile(),
                                   GenerationConfig::stage('F'), "c");
    // Expect blocks with 4KB (1024 insts) and 64KB (16384 insts)
    // footprints.
    bool saw4k = false;
    bool saw64k = false;
    for (const auto &block : body.blocks) {
        if (block.insts.size() == 1024)
            saw4k = true;
        if (block.insts.size() == 16384)
            saw64k = true;
    }
    EXPECT_TRUE(saw4k);
    EXPECT_TRUE(saw64k);
    EXPECT_NEAR(totalGeneratedInstsPerRequest(body), 8000,
                8000 * 0.30);
}

TEST(BodyGenerator, StageGDataWorkingSetsMatchEq1)
{
    const auto body = generateBody(syntheticProfile(),
                                   GenerationConfig::stage('G'), "c");
    double bytes4k = 0;
    double bytes1m = 0;
    for (const auto &block : body.blocks) {
        for (const auto &s : block.streams) {
            if (s.wsBytes == 4096)
                bytes4k += 1;
            if (s.wsBytes == (1u << 20)) {
                bytes1m += 1;
                EXPECT_TRUE(s.shared);  // big sets are shared
            }
        }
    }
    EXPECT_GT(bytes4k, 0);
    EXPECT_GT(bytes1m, 0);
}

TEST(BodyGenerator, StageHUsesPointerChasing)
{
    const auto noDeps = generateBody(syntheticProfile(),
                                     GenerationConfig::stage('G'), "c");
    const auto withDeps = generateBody(
        syntheticProfile(), GenerationConfig::stage('H'), "c");
    auto chase_streams = [](const GeneratedBody &body) {
        int count = 0;
        for (const auto &block : body.blocks) {
            for (const auto &s : block.streams) {
                count +=
                    s.kind == hw::StreamKind::PointerChase;
            }
        }
        return count;
    };
    EXPECT_EQ(chase_streams(noDeps), 0);
    EXPECT_GT(chase_streams(withDeps), 0);
}

TEST(BodyGenerator, InstScaleKnobScalesVolume)
{
    GenerationConfig cfg = GenerationConfig::stage('H');
    cfg.instScale = 2.0;
    const auto doubled = generateBody(syntheticProfile(), cfg, "c");
    EXPECT_NEAR(totalGeneratedInstsPerRequest(doubled), 16000,
                16000 * 0.30);
}

TEST(BodyGenerator, DeterministicForSameSeed)
{
    const auto a = generateBody(syntheticProfile(),
                                GenerationConfig::stage('H'), "c");
    const auto b = generateBody(syntheticProfile(),
                                GenerationConfig::stage('H'), "c");
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
        ASSERT_EQ(a.blocks[i].insts.size(), b.blocks[i].insts.size());
        for (std::size_t k = 0; k < a.blocks[i].insts.size(); ++k)
            EXPECT_EQ(a.blocks[i].insts[k].opcode,
                      b.blocks[i].insts[k].opcode);
    }
}

TEST(BodyGenerator, BlockLabelsCarryClonePrefix)
{
    const auto body = generateBody(syntheticProfile(),
                                   GenerationConfig::stage('H'),
                                   "orig_clone");
    for (const auto &block : body.blocks)
        EXPECT_EQ(block.label.rfind("orig_clone.", 0), 0u);
}

// ---------------------------------------------------------------------------
// Skeleton generator.
// ---------------------------------------------------------------------------

TEST(SkeletonGenerator, AssemblesDeployableSpec)
{
    SkeletonInference skel;
    skel.serverModel = app::ServerModel::IoMultiplex;
    skel.workers = 4;
    BackgroundInference bg;
    bg.count = 1;
    bg.period = sim::milliseconds(50);
    skel.background.push_back(bg);

    std::vector<profile::EdgeProfile> edges;
    profile::EdgeProfile e;
    e.caller = "orig";
    e.callee = "dep";
    e.callsPerCallerRequest = 1.4;
    e.avgRequestBytes = 256;
    e.avgResponseBytes = 512;
    edges.push_back(e);

    const std::map<std::string, std::string> nameMap = {
        {"orig", "orig_clone"}, {"dep", "dep_clone"}};
    const app::ServiceSpec spec = generateClone(
        syntheticProfile(), skel, edges, nameMap,
        GenerationConfig::stage('H'));

    EXPECT_EQ(spec.name, "orig_clone");
    EXPECT_EQ(spec.serverModel, app::ServerModel::IoMultiplex);
    EXPECT_EQ(spec.threads.workers, 4u);
    ASSERT_EQ(spec.downstreams.size(), 1u);
    EXPECT_EQ(spec.downstreams[0], "dep_clone");
    ASSERT_EQ(spec.endpoints.size(), 1u);
    EXPECT_FALSE(spec.endpoints[0].handler.ops.empty());
    EXPECT_EQ(spec.background.size(), 1u);
    EXPECT_EQ(spec.locks, 1u);
    ASSERT_EQ(spec.fileBytes.size(), 1u);

    // RPC ops: one whole call + one fractional (0.4) Choice.
    int rpcs = 0;
    int choices = 0;
    for (const auto &op : spec.endpoints[0].handler.ops) {
        rpcs += op.kind == app::OpKind::Rpc;
        if (op.kind == app::OpKind::Choice && !op.subs.empty() &&
            !op.subs[0].empty() &&
            op.subs[0].ops[0].kind == app::OpKind::Rpc) {
            ++choices;
        }
    }
    EXPECT_EQ(rpcs, 1);
    EXPECT_EQ(choices, 1);
}

// ---------------------------------------------------------------------------
// Fine tuner on an analytic pseudo-clone.
// ---------------------------------------------------------------------------

TEST(FineTuner, ConvergesOnLinearModel)
{
    profile::ReferenceCounters target;
    target.ipc = 1.0;
    target.instructionsPerRequest = 10000;
    target.l1iMissRate = 0.05;
    target.l1dMissRate = 0.2;
    target.l2MissRate = 0.5;
    target.branchMispredictRate = 0.04;

    // Analytic "clone": counters respond linearly-ish to the knobs.
    CloneRunner runner = [&](const GenerationConfig &cfg) {
        profile::PerfReport r;
        r.instructionsPerRequest = 13000 * cfg.instScale;
        r.l1iMissRate = 0.08 * std::pow(cfg.imemTailScale, 0.9);
        r.l1dMissRate = 0.3 * std::pow(cfg.dmemTailScale, 0.9);
        r.l2MissRate = 0.5;
        r.branchMispredictRate = 0.04;
        // IPC degrades with miss rates and chasing.
        r.ipc = 1.6 - 2.0 * r.l1dMissRate - 4.0 * r.l1iMissRate -
            0.1 * cfg.chaseScale;
        return r;
    };

    const TuneResult result =
        fineTune(target, GenerationConfig{}, runner, 10, 0.05);
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.iterations, 10u);
    EXPECT_LT(result.finalIpcError, 0.05);
    EXPECT_NEAR(result.config.instScale, 10.0 / 13.0, 0.08);
}

TEST(FineTuner, StopsAtMaxIterations)
{
    profile::ReferenceCounters target;
    target.ipc = 5.0;  // unreachable
    target.instructionsPerRequest = 1;
    CloneRunner runner = [&](const GenerationConfig &) {
        profile::PerfReport r;
        r.ipc = 1.0;
        r.instructionsPerRequest = 100;
        return r;
    };
    const TuneResult result =
        fineTune(target, GenerationConfig{}, runner, 6, 0.05);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.iterations, 6u);
    EXPECT_EQ(result.trace.size(), 6u);
}

TEST(GenerationConfig, StagePresetsAreCumulative)
{
    const auto a = GenerationConfig::stage('A');
    EXPECT_FALSE(a.syscalls);
    EXPECT_FALSE(a.instCount);
    const auto d = GenerationConfig::stage('D');
    EXPECT_TRUE(d.syscalls);
    EXPECT_TRUE(d.instMix);
    EXPECT_FALSE(d.branchBehavior);
    const auto h = GenerationConfig::stage('H');
    EXPECT_TRUE(h.dataDeps);
    EXPECT_TRUE(h.dataMem);
}

} // namespace
