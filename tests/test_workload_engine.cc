/**
 * @file
 * Workload engine tests: arrival processes and rate curves, session
 * lifecycle, outcome conservation under MMPP and flash-crowd load,
 * per-class SLO reporting, knee detection, metrics registration, and
 * byte-identical determinism at any RunExecutor worker count.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "app/deployment.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "obs/metrics.h"
#include "sim/run_executor.h"
#include "workload/arrivals.h"
#include "workload/engine.h"
#include "workload/loadgen.h"
#include "workload/pending_map.h"
#include "workload/slo.h"

namespace {

using namespace ditto;

app::ServiceSpec
echoService()
{
    app::ServiceSpec spec;
    spec.name = "echo";
    spec.threads.workers = 2;
    hw::BlockSpec bs;
    bs.label = "echo.h";
    bs.instCount = 64;
    bs.seed = 3;
    spec.blocks.push_back(hw::buildBlock(bs));
    app::EndpointSpec a;
    a.name = "a";
    a.handler.ops = {app::opCompute(0, 5)};
    a.responseBytesMin = a.responseBytesMax = 128;
    spec.endpoints.push_back(a);
    app::EndpointSpec b = a;
    b.name = "b";
    spec.endpoints.push_back(b);
    return spec;
}

struct World
{
    app::Deployment dep;
    os::Machine &machine;
    app::ServiceInstance &svc;

    explicit World(std::uint64_t seed = 41, double sampleRate = 1.0)
        : dep(seed, sampleRate),
          machine(dep.addMachine("n", hw::platformA())),
          svc(dep.deploy(echoService(), machine))
    {
        dep.wireAll();
    }
};

workload::WorkloadSpec
baseSpec()
{
    workload::WorkloadSpec ws;
    ws.sessionsPerSec = 400; // ~2.6k calls/s at 6.5 calls/session
    ws.connections = 8;
    ws.session.meanThink = sim::microseconds(500);
    ws.timeout = sim::milliseconds(3);
    ws.classes[0].slo.deadline = sim::milliseconds(2);
    return ws;
}

// ---- arrival processes / rate curves --------------------------------

TEST(RateCurve, ConstantIsFlat)
{
    workload::RateCurve c;
    EXPECT_DOUBLE_EQ(c.factorAt(0), 1.0);
    EXPECT_DOUBLE_EQ(c.factorAt(sim::seconds(5)), 1.0);
    EXPECT_EQ(c.refreshHorizon(0), sim::kTimeNever);
}

TEST(RateCurve, DiurnalOscillatesAroundOne)
{
    workload::RateCurve c;
    c.kind = workload::ShapeKind::Diurnal;
    c.amplitude = 0.5;
    c.period = sim::seconds(1);
    // Peak a quarter period in, trough at three quarters.
    EXPECT_NEAR(c.factorAt(sim::milliseconds(250)), 1.5, 1e-9);
    EXPECT_NEAR(c.factorAt(sim::milliseconds(750)), 0.5, 1e-9);
    EXPECT_NEAR(c.factorAt(0), 1.0, 1e-9);
    EXPECT_LT(c.refreshHorizon(0), sim::seconds(1));
}

TEST(RateCurve, RampInterpolatesThenHolds)
{
    workload::RateCurve c;
    c.kind = workload::ShapeKind::Ramp;
    c.startFactor = 1.0;
    c.endFactor = 3.0;
    c.rampDuration = sim::seconds(1);
    EXPECT_NEAR(c.factorAt(0), 1.0, 1e-9);
    EXPECT_NEAR(c.factorAt(sim::milliseconds(500)), 2.0, 1e-9);
    EXPECT_NEAR(c.factorAt(sim::seconds(2)), 3.0, 1e-9);
    EXPECT_EQ(c.refreshHorizon(sim::seconds(2)), sim::kTimeNever);
}

TEST(RateCurve, FlashCrowdStepsAndDecays)
{
    workload::RateCurve c;
    c.kind = workload::ShapeKind::FlashCrowd;
    c.stepAt = sim::milliseconds(100);
    c.stepMagnitude = 5.0;
    c.decayHalfLife = sim::milliseconds(50);
    EXPECT_NEAR(c.factorAt(sim::milliseconds(99)), 1.0, 1e-9);
    EXPECT_NEAR(c.factorAt(sim::milliseconds(100)), 5.0, 1e-9);
    // One half-life later the excess halved: 1 + 4/2.
    EXPECT_NEAR(c.factorAt(sim::milliseconds(150)), 3.0, 1e-9);
    // The pre-step horizon lands exactly on the step.
    EXPECT_EQ(c.refreshHorizon(sim::milliseconds(40)),
              sim::milliseconds(60));
    // Long after the step the curve is flat.
    EXPECT_EQ(c.refreshHorizon(sim::seconds(10)), sim::kTimeNever);
}

TEST(ArrivalProcess, PoissonGapsMatchRate)
{
    workload::ArrivalSpec spec;
    workload::ArrivalProcess ap(spec, sim::Rng(7));
    double sum = 0;
    unsigned arrivals = 0;
    for (int i = 0; i < 20000; ++i) {
        const auto d = ap.next(1000.0, 0);
        sum += static_cast<double>(d.gap);
        if (d.arrival)
            ++arrivals;
    }
    EXPECT_EQ(arrivals, 20000u); // no horizon: every draw arrives
    const double meanGapMs = sum / 20000 / 1e6;
    EXPECT_NEAR(meanGapMs, 1.0, 0.05); // 1000/s -> 1ms mean gap
}

TEST(ArrivalProcess, DeterministicPacingIsExact)
{
    workload::ArrivalSpec spec;
    spec.kind = workload::ArrivalKind::Deterministic;
    workload::ArrivalProcess ap(spec, sim::Rng(7));
    const auto d = ap.next(2000.0, 0);
    EXPECT_TRUE(d.arrival);
    EXPECT_EQ(d.gap, sim::microseconds(500));
}

TEST(ArrivalProcess, GapsOvershootingHorizonAreNotArrivals)
{
    workload::ArrivalSpec spec;
    spec.kind = workload::ArrivalKind::Deterministic;
    workload::ArrivalProcess ap(spec, sim::Rng(7));
    const auto d =
        ap.next(2000.0, 0, /*horizon=*/sim::microseconds(100));
    EXPECT_FALSE(d.arrival);
    EXPECT_EQ(d.gap, sim::microseconds(100));
}

TEST(ArrivalProcess, MmppStatesSwitchOverTime)
{
    workload::ArrivalSpec spec;
    spec.kind = workload::ArrivalKind::Mmpp;
    workload::ArrivalProcess ap(spec, sim::Rng(7));
    bool sawLow = false;
    bool sawHigh = false;
    for (int i = 0; i < 200; ++i) {
        const double f =
            ap.stateFactor(static_cast<sim::Time>(i) *
                           sim::milliseconds(2));
        if (f < 1.0)
            sawLow = true;
        if (f > 1.0)
            sawHigh = true;
    }
    EXPECT_TRUE(sawLow);
    EXPECT_TRUE(sawHigh);
}

// ---- TagMap ---------------------------------------------------------

TEST(TagMap, InsertFindErase)
{
    workload::TagMap<int> m;
    EXPECT_TRUE(m.empty());
    m.emplace(5, 50);
    m.emplace(9, 90);
    m.emplace(7, 70); // out-of-order insert still lands sorted
    EXPECT_EQ(m.size(), 3u);
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 70);
    EXPECT_EQ(m.find(6), nullptr);
    EXPECT_TRUE(m.erase(7));
    EXPECT_FALSE(m.erase(7));
    EXPECT_EQ(m.find(7), nullptr);
    EXPECT_EQ(m.entries().front().tag, 5u);
    EXPECT_EQ(m.entries().back().tag, 9u);
}

// ---- outcome conservation -------------------------------------------

void
expectConservation(const workload::WorkloadEngine &eng)
{
    EXPECT_EQ(eng.sent(),
              eng.completedOk() + eng.completedError() +
                  eng.completedShed() + eng.timedOut() +
                  eng.inFlight());
}

TEST(EngineConservation, HoldsUnderMmppArrivals)
{
    World w;
    workload::WorkloadSpec ws = baseSpec();
    ws.arrivals.kind = workload::ArrivalKind::Mmpp;
    workload::WorkloadEngine eng(w.dep, w.svc, ws, 17);
    eng.start();
    w.dep.runFor(sim::milliseconds(150));
    expectConservation(eng); // holds mid-run (in-flight term > 0 ok)
    eng.stop();
    w.dep.runFor(sim::milliseconds(20));
    expectConservation(eng);
    EXPECT_EQ(eng.inFlight(), 0u); // drain settles everything
    EXPECT_EQ(eng.activeSessions(), 0u);
    EXPECT_GT(eng.sent(), 100u);
}

TEST(EngineConservation, HoldsUnderFlashCrowd)
{
    World w;
    workload::WorkloadSpec ws = baseSpec();
    ws.shape.kind = workload::ShapeKind::FlashCrowd;
    ws.shape.stepAt = sim::milliseconds(50);
    ws.shape.stepMagnitude = 4.0;
    ws.shape.decayHalfLife = sim::milliseconds(30);
    workload::WorkloadEngine eng(w.dep, w.svc, ws, 17);
    eng.start();
    w.dep.runFor(sim::milliseconds(150));
    expectConservation(eng);
    eng.stop();
    w.dep.runFor(sim::milliseconds(20));
    expectConservation(eng);
    EXPECT_EQ(eng.inFlight(), 0u);
    EXPECT_GT(eng.sent(), 100u);
}

TEST(Engine, FlashCrowdSendsBurst)
{
    // The same engine with the flash shape must send measurably more
    // than the steady one over a window containing the step.
    const auto sentWith = [](workload::ShapeKind kind) {
        World w;
        workload::WorkloadSpec ws = baseSpec();
        ws.shape.kind = kind;
        ws.shape.stepAt = sim::milliseconds(20);
        ws.shape.stepMagnitude = 4.0;
        ws.shape.decayHalfLife = sim::milliseconds(100);
        workload::WorkloadEngine eng(w.dep, w.svc, ws, 17);
        eng.start();
        w.dep.runFor(sim::milliseconds(150));
        return eng.sent();
    };
    EXPECT_GT(sentWith(workload::ShapeKind::FlashCrowd),
              sentWith(workload::ShapeKind::Constant) * 3 / 2);
}

// ---- sessions -------------------------------------------------------

TEST(Engine, SessionsStartAndFinish)
{
    World w;
    workload::WorkloadEngine eng(w.dep, w.svc, baseSpec(), 17);
    eng.start();
    w.dep.runFor(sim::milliseconds(100));
    EXPECT_GT(eng.sessionsStarted(), 10u);
    EXPECT_GT(eng.sessionsFinished(), 0u);
    EXPECT_LE(eng.sessionsFinished(), eng.sessionsStarted());
    eng.stop();
    w.dep.runFor(sim::milliseconds(20));
    EXPECT_EQ(eng.activeSessions(), 0u);
    const auto sentAtStop = eng.sent();
    w.dep.runFor(sim::milliseconds(50));
    EXPECT_EQ(eng.sent(), sentAtStop); // stop ceases arrivals
}

TEST(Engine, SessionSpansOnJaegerPath)
{
    World w(41, /*sampleRate=*/1.0);
    workload::WorkloadEngine eng(w.dep, w.svc, baseSpec(), 17);
    eng.start();
    w.dep.runFor(sim::milliseconds(60));
    eng.stop();
    w.dep.runFor(sim::milliseconds(20));
    unsigned workloadSpans = 0;
    for (const trace::Span &s : w.dep.tracer().spans())
        if (s.service == "workload")
            ++workloadSpans;
    EXPECT_EQ(workloadSpans, eng.sessionsFinished());
}

TEST(Engine, TraceSessionsOffKeepsServiceGraphClean)
{
    World w(41, 1.0);
    workload::WorkloadSpec ws = baseSpec();
    ws.traceSessions = false;
    workload::WorkloadEngine eng(w.dep, w.svc, ws, 17);
    eng.start();
    w.dep.runFor(sim::milliseconds(60));
    eng.stop();
    w.dep.runFor(sim::milliseconds(20));
    for (const trace::Span &s : w.dep.tracer().spans())
        EXPECT_NE(s.service, "workload");
}

// ---- SLO reporting --------------------------------------------------

TEST(Slo, LightLoadMeetsSlo)
{
    World w;
    workload::WorkloadSpec ws = baseSpec();
    ws.sessionsPerSec = 50; // far below capacity
    workload::WorkloadEngine eng(w.dep, w.svc, ws, 17);
    eng.start();
    w.dep.runFor(sim::milliseconds(50));
    eng.beginMeasure();
    w.dep.runFor(sim::milliseconds(200));
    const workload::SloReport rep = eng.sloReport();
    ASSERT_EQ(rep.classes.size(), 1u);
    EXPECT_TRUE(rep.classes[0].met);
    EXPECT_EQ(rep.classes[0].violations, 0u);
    EXPECT_GT(rep.goodputQps, 0.0);
    EXPECT_NEAR(rep.goodputQps, rep.offeredQps,
                rep.offeredQps * 0.1);
    // The table prints one header, one class line, one total line.
    const std::string table = rep.table();
    EXPECT_NE(table.find("default"), std::string::npos);
    EXPECT_NE(table.find("total"), std::string::npos);
}

TEST(Slo, KneePointRate)
{
    const std::vector<std::pair<double, double>> sweep = {
        {1000, 990}, {2000, 1985}, {3000, 2600}, {4000, 2800}};
    // 3000 is the first offered rate with goodput < 90% of offered
    // (the comparison is strict: goodput == offered * 0.9 is not yet
    // a knee).
    EXPECT_DOUBLE_EQ(workload::kneePointRate(sweep, 0.1), 3000);
    // No knee and empty sweep are distinguishable sentinels, not a
    // shared (and knee-shaped-looking) 0.
    EXPECT_DOUBLE_EQ(workload::kneePointRate({{1000, 995}}, 0.1),
                     workload::kKneeNone);
    EXPECT_DOUBLE_EQ(workload::kneePointRate({}, 0.1),
                     workload::kKneeEmptySweep);
    // Zero-offered entries do not count as an analyzable sweep.
    EXPECT_DOUBLE_EQ(workload::kneePointRate({{0, 0}}, 0.1),
                     workload::kKneeEmptySweep);
}

// ---- metrics registration -------------------------------------------

TEST(Metrics, EngineCountersExported)
{
    World w;
    workload::WorkloadSpec ws = baseSpec();
    workload::WorkloadEngine eng(w.dep, w.svc, ws, 17);
    obs::MetricsRegistry reg;
    workload::registerEngineMetrics(reg, eng, "engine0");
    eng.start();
    w.dep.runFor(sim::milliseconds(80));
    eng.stop();
    w.dep.runFor(sim::milliseconds(20));
    const obs::MetricsRegistry::Labels labels = {
        {"client", "engine0"}};
    EXPECT_EQ(reg.readCounter("ditto_client_sent_total", labels),
              eng.sent());
    EXPECT_EQ(reg.readCounter("ditto_client_ok_total", labels),
              eng.completedOk());
    EXPECT_EQ(
        reg.readCounter("ditto_workload_sessions_started_total",
                        labels),
        eng.sessionsStarted());
    const obs::MetricsRegistry::Labels classLabels = {
        {"class", "default"}, {"client", "engine0"}};
    EXPECT_EQ(reg.readCounter("ditto_slo_sent_total", classLabels),
              eng.classSent(0));
    // The snapshot renders without throwing and contains the series.
    EXPECT_NE(reg.prometheusText().find("ditto_slo_sent_total"),
              std::string::npos);
}

TEST(Metrics, LoadGenCountersExported)
{
    World w;
    workload::LoadSpec load;
    load.qps = 2000;
    load.connections = 4;
    workload::LoadGen gen(w.dep, w.svc, load, 9);
    obs::MetricsRegistry reg;
    workload::registerLoadGenMetrics(reg, gen, "lg0");
    gen.start();
    w.dep.runFor(sim::milliseconds(80));
    const obs::MetricsRegistry::Labels labels = {{"client", "lg0"}};
    EXPECT_EQ(reg.readCounter("ditto_client_sent_total", labels),
              gen.sent());
    EXPECT_EQ(reg.readCounter("ditto_client_completed_total", labels),
              gen.completed());
}

// ---- determinism ----------------------------------------------------

std::string
sessionizedRunSummary(std::uint64_t seed)
{
    World w(seed);
    workload::WorkloadSpec ws = baseSpec();
    ws.arrivals.kind = workload::ArrivalKind::Mmpp;
    ws.shape.kind = workload::ShapeKind::Diurnal;
    ws.shape.period = sim::milliseconds(50);
    workload::WorkloadEngine eng(w.dep, w.svc, ws, seed ^ 0xabcd);
    eng.start();
    w.dep.runFor(sim::milliseconds(60));
    eng.beginMeasure();
    w.dep.runFor(sim::milliseconds(120));
    eng.stop();
    w.dep.runFor(sim::milliseconds(20));
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "seed=%llu sent=%llu ok=%llu err=%llu shed=%llu to=%llu "
        "late=%llu sessions=%llu/%llu events=%llu\n",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(eng.sent()),
        static_cast<unsigned long long>(eng.completedOk()),
        static_cast<unsigned long long>(eng.completedError()),
        static_cast<unsigned long long>(eng.completedShed()),
        static_cast<unsigned long long>(eng.timedOut()),
        static_cast<unsigned long long>(eng.lateResponses()),
        static_cast<unsigned long long>(eng.sessionsStarted()),
        static_cast<unsigned long long>(eng.sessionsFinished()),
        static_cast<unsigned long long>(
            w.dep.events().executedCount()));
    return std::string(buf) + eng.sloReport().table();
}

TEST(WorkloadDeterminism, SessionizedRunByteIdenticalAcrossJobs)
{
    const auto runAll = [](unsigned jobs) {
        sim::RunExecutor pool(jobs);
        std::vector<std::function<std::string()>> tasks;
        for (std::uint64_t seed = 1; seed <= 6; ++seed)
            tasks.push_back(
                [seed] { return sessionizedRunSummary(seed); });
        std::string all;
        for (const std::string &s :
             pool.runOrdered<std::string>(std::move(tasks)))
            all += s;
        return all;
    };
    const std::string one = runAll(1);
    const std::string four = runAll(4);
    EXPECT_EQ(one, four);
    EXPECT_NE(one.find("sent="), std::string::npos);
}

} // namespace
