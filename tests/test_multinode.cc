/**
 * @file
 * Multi-node deployment tests: the Social Network spread across a
 * cluster (the paper deploys it "both locally and on a cluster"),
 * cross-machine RPC latency, and NIC accounting.
 */

#include <gtest/gtest.h>

#include "apps/catalog.h"
#include "hw/platform.h"
#include "workload/loadgen.h"

namespace {

using namespace ditto;

TEST(MultiNode, SocialNetworkAcrossThreeMachines)
{
    app::Deployment dep(61);
    os::Machine &m0 = dep.addMachine("node0", hw::platformA());
    os::Machine &m1 = dep.addMachine("node1", hw::platformA());
    os::Machine &m2 = dep.addMachine("node2", hw::platformA());

    // Frontend + orchestration on node0, leaf logic on node1,
    // storage-ish tiers on node2.
    std::size_t i = 0;
    for (const app::ServiceSpec &tier : apps::socialNetworkSpecs()) {
        os::Machine *target = &m0;
        if (tier.name == "sn.poststorage" ||
            tier.name == "sn.usertimeline" ||
            tier.name == "sn.hometimeline") {
            target = &m2;
        } else if (tier.name != "sn.frontend" &&
                   tier.name != "sn.compose") {
            target = &m1;
        }
        dep.deploy(tier, *target);
        ++i;
    }
    dep.wireAll();

    app::ServiceInstance *fe = dep.find("sn.frontend");
    ASSERT_NE(fe, nullptr);
    workload::LoadGen gen(dep, *fe,
                          apps::socialNetworkLoad().at(300), 7);
    gen.start();
    dep.runFor(sim::milliseconds(400));

    EXPECT_GT(gen.completed(), 50u);
    // Cross-node RPC traffic flowed through the NICs.
    EXPECT_GT(m0.nic().txBytes, 10000u);
    EXPECT_GT(m1.nic().rxBytes, 1000u);
    EXPECT_GT(m2.nic().rxBytes, 10000u);
    // Every machine did CPU work.
    EXPECT_GT(m1.scheduler().stats().slices, 50u);
    EXPECT_GT(m2.scheduler().stats().slices, 100u);
}

TEST(MultiNode, ClusterDeploymentSlowerThanLocal)
{
    auto p99_for = [](bool split) {
        app::Deployment dep(62);
        os::Machine &m0 = dep.addMachine("node0", hw::platformA());
        os::Machine *other = split
            ? &dep.addMachine("node1", hw::platformA())
            : &m0;
        bool toggle = false;
        for (const app::ServiceSpec &tier :
             apps::socialNetworkSpecs()) {
            // Alternate tiers across nodes when split.
            dep.deploy(tier, toggle ? *other : m0);
            toggle = !toggle;
        }
        dep.wireAll();
        app::ServiceInstance *fe = dep.find("sn.frontend");
        workload::LoadGen gen(dep, *fe,
                              apps::socialNetworkLoad().at(300), 7);
        gen.start();
        dep.runFor(sim::milliseconds(200));
        gen.beginMeasure();
        dep.runFor(sim::milliseconds(300));
        return gen.latency().percentile(0.5);
    };
    // Cross-node hops add wire latency on every RPC edge.
    EXPECT_GT(p99_for(true), p99_for(false));
}

TEST(MultiNode, HeterogeneousClusterPlatformsApply)
{
    app::Deployment dep(63);
    os::Machine &fast = dep.addMachine("fast", hw::platformA());
    os::Machine &slow = dep.addMachine("slow", hw::platformB());
    EXPECT_EQ(fast.spec().name, "A");
    EXPECT_EQ(slow.spec().name, "B");
    EXPECT_NE(fast.spec().baseFrequencyGhz,
              slow.spec().baseFrequencyGhz);
    // Disk kinds differ per Table 1 (SSD vs HDD).
    EXPECT_EQ(fast.disk().kind(), hw::DiskKind::Ssd);
    EXPECT_EQ(slow.disk().kind(), hw::DiskKind::Hdd);
}

} // namespace
