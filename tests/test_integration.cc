/**
 * @file
 * End-to-end integration tests of the Ditto pipeline: profile ->
 * analyze -> generate -> (tune) -> validate, for a single tier and
 * for a small multi-tier topology; plus cross-cutting properties
 * (determinism, portability, interference sensitivity).
 */

#include <gtest/gtest.h>

#include "core/ditto.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "profile/perf_report.h"
#include "workload/stressor.h"

namespace {

using namespace ditto;

/** A compact but structured original service to clone. */
app::ServiceSpec
originalService(const std::string &name = "orig")
{
    app::ServiceSpec spec;
    spec.name = name;
    spec.serverModel = app::ServerModel::IoMultiplex;
    spec.threads.workers = 2;
    spec.locks = 1;
    spec.fileBytes = {2ull << 30};

    hw::BlockSpec parse;
    parse.label = name + ".parse";
    parse.instCount = 600;
    parse.mix = hw::MixWeights::parserCode();
    parse.branchFraction = 0.18;
    parse.branchKinds = {{2, 2}, {3, 3}};
    parse.memFraction = 0.25;
    parse.streams = {{16 << 10, hw::StreamKind::Sequential, false, 1}};
    parse.seed = 41;
    spec.blocks.push_back(hw::buildBlock(parse));

    hw::BlockSpec lookup;
    lookup.label = name + ".lookup";
    lookup.instCount = 120;
    lookup.mix = hw::MixWeights::hashCode();
    lookup.memFraction = 0.35;
    lookup.streams = {
        {4u << 20, hw::StreamKind::PointerChase, true, 0.6},
        {128u << 10, hw::StreamKind::Random, true, 0.4}};
    lookup.seed = 42;
    spec.blocks.push_back(hw::buildBlock(lookup));

    app::EndpointSpec ep;
    ep.name = "query";
    ep.responseBytesMin = 512;
    ep.responseBytesMax = 2048;
    ep.handler.ops = {
        app::opCall("parse", {{app::opCompute(0, 6, 10)}}),
        app::opCall("lookup", {{app::opCompute(1, 10, 18)}}),
        app::opChoice({0.3, 0.7}, {{{app::opFileRead(0, 4096, 8192)}},
                                   {}}),
        app::opCall("respond", {{app::opCompute(0, 2, 3)}}),
    };
    spec.endpoints.push_back(ep);
    return spec;
}

workload::LoadSpec
mediumLoad()
{
    workload::LoadSpec load;
    load.qps = 3000;
    load.connections = 8;
    load.openLoop = true;
    return load;
}

profile::PerfReport
measure(const app::ServiceSpec &spec, const workload::LoadSpec &load,
        const hw::PlatformSpec &plat, std::uint64_t seed = 50)
{
    app::Deployment dep(seed);
    os::Machine &m = dep.addMachine("n", plat);
    app::ServiceInstance &svc = dep.deploy(spec, m);
    dep.wireAll();
    workload::LoadGen gen(dep, svc, load, 3);
    gen.start();
    dep.runFor(sim::milliseconds(200));
    dep.beginMeasureAll();
    gen.beginMeasure();
    dep.runFor(sim::milliseconds(250));
    auto r = profile::snapshotService(svc);
    profile::overrideLatency(r, gen.latency());
    return r;
}

core::CloneResult
makeClone(bool fineTune, unsigned maxIters = 6)
{
    app::Deployment dep(51);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(originalService(), m);
    dep.wireAll();
    workload::LoadGen gen(dep, svc, mediumLoad(), 3);
    gen.start();
    core::CloneOptions opts;
    opts.fineTune = fineTune;
    opts.maxTuneIterations = maxIters;
    opts.profiling.warmup = sim::milliseconds(100);
    opts.profiling.window = sim::milliseconds(120);
    return core::cloneService(dep, svc, mediumLoad(), hw::platformA(),
                              opts);
}

TEST(ClonePipeline, SkeletonMatchesOriginal)
{
    const core::CloneResult clone = makeClone(false);
    EXPECT_EQ(clone.skeleton.serverModel,
              app::ServerModel::IoMultiplex);
    EXPECT_EQ(clone.skeleton.workers, 2u);
    EXPECT_FALSE(clone.skeleton.threadPerConnection);
    EXPECT_EQ(clone.spec.name, "orig_clone");
    EXPECT_FALSE(clone.spec.blocks.empty());
    // File activity was observed -> the clone reads a file too.
    ASSERT_EQ(clone.spec.fileBytes.size(), 1u);
    EXPECT_GT(clone.spec.fileBytes[0], 1u << 20);
}

TEST(ClonePipeline, CloneDoesNotLeakOriginalOpcodesVerbatim)
{
    // Obfuscation: the clone is generated from statistics; its blocks
    // must not be byte-identical to any original block.
    const core::CloneResult clone = makeClone(false);
    const app::ServiceSpec orig = originalService();
    for (const auto &cb : clone.spec.blocks) {
        for (const auto &ob : orig.blocks) {
            if (cb.insts.size() != ob.insts.size())
                continue;
            bool identical = true;
            for (std::size_t i = 0; i < cb.insts.size(); ++i) {
                if (cb.insts[i].opcode != ob.insts[i].opcode) {
                    identical = false;
                    break;
                }
            }
            EXPECT_FALSE(identical);
        }
    }
    // And block labels reveal nothing about the original's phases.
    for (const auto &cb : clone.spec.blocks)
        EXPECT_EQ(cb.label.find("parse"), std::string::npos);
}

TEST(ClonePipeline, UntunedCloneTracksCoreCounters)
{
    const core::CloneResult clone = makeClone(false);
    const auto orig = measure(originalService(), mediumLoad(),
                              hw::platformA());
    const auto synth = measure(clone.spec,
                               core::cloneLoadSpec(mediumLoad()),
                               hw::platformA());
    // Instructions per request within 15% before any tuning.
    EXPECT_LT(profile::relativeError(synth.instructionsPerRequest,
                                     orig.instructionsPerRequest),
              0.15);
    // Network bandwidth matches (same message sizes + rates).
    EXPECT_LT(profile::relativeError(synth.netBandwidthBytesPerSec,
                                     orig.netBandwidthBytesPerSec),
              0.15);
    // IPC in the right ballpark even before tuning.
    EXPECT_LT(profile::relativeError(synth.ipc, orig.ipc), 0.5);
}

TEST(ClonePipeline, FineTuningConvergesWithinTenIterations)
{
    const core::CloneResult clone = makeClone(true, 10);
    EXPECT_LE(clone.tuning.iterations, 10u);
    EXPECT_TRUE(clone.tuning.converged);
    EXPECT_LT(clone.tuning.finalIpcError, 0.06);

    // Tuned clone vs original on fresh deployments.
    const auto orig = measure(originalService(), mediumLoad(),
                              hw::platformA());
    const auto synth = measure(clone.spec,
                               core::cloneLoadSpec(mediumLoad()),
                               hw::platformA());
    // Fresh deployments differ from the tuning sandbox in cache and
    // page-cache warmth, so allow a wider band here; convergence
    // against the tuning reference is asserted above.
    EXPECT_LT(profile::relativeError(synth.ipc, orig.ipc), 0.40);
    EXPECT_LT(profile::relativeError(synth.avgLatencyMs,
                                     orig.avgLatencyMs),
              0.5);
}

TEST(ClonePipeline, CloneIsPortableAcrossPlatforms)
{
    // Profile on A only; deploy the same spec on B and C. The clone
    // must react to the platform change in the same direction as the
    // original (the Fig. 7 property).
    const core::CloneResult clone = makeClone(false);
    const auto origA = measure(originalService(), mediumLoad(),
                               hw::platformA());
    const auto origB = measure(originalService(), mediumLoad(),
                               hw::platformB());
    const auto synthA = measure(clone.spec,
                                core::cloneLoadSpec(mediumLoad()),
                                hw::platformA());
    const auto synthB = measure(clone.spec,
                                core::cloneLoadSpec(mediumLoad()),
                                hw::platformB());
    // Platform B (smaller L2, older core) raises L2 misses and drops
    // IPC for both original and clone.
    EXPECT_GT(origB.l2MissRate, origA.l2MissRate * 0.9);
    EXPECT_GT(synthB.l2MissRate, synthA.l2MissRate * 0.9);
    EXPECT_LT(origB.ipc, origA.ipc);
    EXPECT_LT(synthB.ipc, synthA.ipc);
}

TEST(ClonePipeline, DeterministicSpecGeneration)
{
    const core::CloneResult a = makeClone(false);
    const core::CloneResult b = makeClone(false);
    ASSERT_EQ(a.spec.blocks.size(), b.spec.blocks.size());
    for (std::size_t i = 0; i < a.spec.blocks.size(); ++i) {
        ASSERT_EQ(a.spec.blocks[i].insts.size(),
                  b.spec.blocks[i].insts.size());
        for (std::size_t k = 0; k < a.spec.blocks[i].insts.size();
             ++k) {
            EXPECT_EQ(a.spec.blocks[i].insts[k].opcode,
                      b.spec.blocks[i].insts[k].opcode);
        }
    }
}

TEST(ClonePipeline, InterferenceSensitivityIsCloned)
{
    // Original and clone must both lose IPC under an LLC stressor
    // (the Fig. 10 property), even though profiling ran in isolation.
    const core::CloneResult clone = makeClone(false);

    auto measure_with_llc_stress = [&](const app::ServiceSpec &spec,
                                       const workload::LoadSpec &load) {
        app::Deployment dep(52);
        os::Machine &m = dep.addMachine("n", hw::platformA());
        app::ServiceInstance &svc = dep.deploy(spec, m);
        dep.wireAll();
        workload::CacheStressor stressor(m, workload::StressKind::Llc,
                                         40);
        workload::LoadGen gen(dep, svc, load, 3);
        gen.start();
        dep.runFor(sim::milliseconds(200));
        dep.beginMeasureAll();
        dep.runFor(sim::milliseconds(200));
        return profile::snapshotService(svc);
    };

    const auto origQuiet = measure(originalService(), mediumLoad(),
                                   hw::platformA());
    const auto origStress = measure_with_llc_stress(
        originalService(), mediumLoad());
    const auto synthQuiet = measure(
        clone.spec, core::cloneLoadSpec(mediumLoad()),
        hw::platformA());
    const auto synthStress = measure_with_llc_stress(
        clone.spec, core::cloneLoadSpec(mediumLoad()));

    EXPECT_LT(origStress.ipc, origQuiet.ipc);
    EXPECT_LT(synthStress.ipc, synthQuiet.ipc);
    EXPECT_GT(origStress.llcMissRate, origQuiet.llcMissRate);
    EXPECT_GT(synthStress.llcMissRate, synthQuiet.llcMissRate);
}

// ---------------------------------------------------------------------------
// Multi-tier cloning.
// ---------------------------------------------------------------------------

TEST(CloneTopology, ClonesATwoTierChain)
{
    app::Deployment dep(53);
    os::Machine &m = dep.addMachine("n", hw::platformA());

    app::ServiceSpec backend = originalService("backend");
    backend.fileBytes.clear();
    backend.endpoints[0].handler.ops = {
        app::opCall("lookup", {{app::opCompute(1, 8, 12)}}),
    };
    app::ServiceSpec frontend = originalService("frontend");
    frontend.fileBytes.clear();
    frontend.downstreams = {"backend"};
    frontend.endpoints[0].handler.ops = {
        app::opCall("parse", {{app::opCompute(0, 4, 8)}}),
        app::opRpc(0, 0, 256, 1024),
        app::opCall("respond", {{app::opCompute(0, 1, 2)}}),
    };
    dep.deploy(backend, m);
    app::ServiceInstance &fe = dep.deploy(frontend, m);
    dep.wireAll();

    workload::LoadGen gen(dep, fe, mediumLoad(), 3);
    gen.start();
    dep.runFor(sim::milliseconds(100));

    core::CloneOptions opts;
    opts.fineTune = false;
    opts.profiling.warmup = sim::milliseconds(40);
    opts.profiling.window = sim::milliseconds(100);
    const core::TopologyCloneResult result = core::cloneTopology(
        dep, {"frontend", "backend"}, mediumLoad().connections, opts);

    ASSERT_EQ(result.specs.size(), 2u);
    EXPECT_EQ(result.rootClone, "frontend_clone");
    EXPECT_EQ(result.topology.root, "frontend");
    // Dependency order: backend clone first.
    EXPECT_EQ(result.specs[0].name, "backend_clone");
    EXPECT_EQ(result.specs[1].name, "frontend_clone");
    ASSERT_EQ(result.specs[1].downstreams.size(), 1u);
    EXPECT_EQ(result.specs[1].downstreams[0], "backend_clone");

    // Deploy the cloned pair and verify end-to-end service.
    app::Deployment cloneDep(54);
    os::Machine &cm = cloneDep.addMachine("n", hw::platformA());
    for (const auto &spec : result.specs)
        cloneDep.deploy(spec, cm);
    cloneDep.wireAll();
    app::ServiceInstance *cfe = cloneDep.find("frontend_clone");
    ASSERT_NE(cfe, nullptr);
    workload::LoadGen cloneGen(
        cloneDep, *cfe, core::cloneLoadSpec(mediumLoad()), 3);
    cloneGen.start();
    cloneDep.runFor(sim::milliseconds(250));
    EXPECT_GT(cloneGen.completed(), 300u);
    // The backend clone serves ~one request per frontend request.
    app::ServiceInstance *cbe = cloneDep.find("backend_clone");
    ASSERT_NE(cbe, nullptr);
    EXPECT_NEAR(
        static_cast<double>(cbe->stats().requests),
        static_cast<double>(cfe->stats().requests),
        static_cast<double>(cfe->stats().requests) * 0.1 + 20);
}

} // namespace
