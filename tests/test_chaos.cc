/**
 * @file
 * Tests for the chaos fuzzer: clean campaigns hold every global
 * invariant, campaigns are byte-deterministic at any job count, and a
 * planted accounting bug is caught and shrunk to the same minimal
 * reproducer on every run.
 *
 * These tests carry the `chaos` ctest label; the determinism slice
 * also joins `parallel` so a -DDITTO_TSAN=ON build races concurrent
 * campaigns under TSan.
 */

#include <gtest/gtest.h>

#include "chaos/chaos.h"
#include "fault/fault_plan.h"
#include "sim/run_executor.h"

namespace {

using namespace ditto;

/** Small, CI-friendly campaign config (single-core runners). */
chaos::ChaosConfig
smallConfig()
{
    chaos::ChaosConfig cfg;
    cfg.seed = 5;
    cfg.services = 8;
    cfg.depth = 3;
    cfg.machines = 3;
    cfg.qps = 4000;
    cfg.runFor = sim::milliseconds(10);
    cfg.drain = sim::milliseconds(15);
    cfg.maxShrinkProbes = 40;
    return cfg;
}

bool
sameMix(const chaos::OutcomeMix &a, const chaos::OutcomeMix &b)
{
    return a.clientSent == b.clientSent && a.clientOk == b.clientOk &&
        a.clientError == b.clientError &&
        a.clientShed == b.clientShed &&
        a.clientTimedOut == b.clientTimedOut &&
        a.clientLate == b.clientLate &&
        a.cancelsSent == b.cancelsSent && a.rpcOk == b.rpcOk &&
        a.rpcTimeouts == b.rpcTimeouts &&
        a.rpcBreakerFastFails == b.rpcBreakerFastFails &&
        a.rpcCancelled == b.rpcCancelled &&
        a.rpcHedges == b.rpcHedges &&
        a.rpcHedgeWins == b.rpcHedgeWins &&
        a.requestsShed == b.requestsShed &&
        a.requestsCancelled == b.requestsCancelled;
}

// ---------------------------------------------------------------------------
// Clean campaigns
// ---------------------------------------------------------------------------

TEST(ChaosSmoke, CleanPlansHoldEveryInvariant)
{
    const chaos::ChaosConfig cfg = smallConfig();
    const chaos::ChaosReport report = chaos::runChaos(cfg, 4);
    ASSERT_EQ(report.plans.size(), 4u);
    for (const chaos::PlanReport &p : report.plans) {
        EXPECT_TRUE(p.result.ok())
            << "plan seed " << p.planSeed << " violated: "
            << (p.result.violations.empty()
                    ? ""
                    : p.result.violations.front());
        EXPECT_GT(p.result.mix.clientSent, 0u);
        EXPECT_FALSE(p.plan.empty());
    }
    EXPECT_EQ(report.violating(), 0u);
}

TEST(ChaosSmoke, LifecycleMechanismsExercised)
{
    // A slightly longer campaign must actually drive the new
    // machinery: hedges launch and cancellations propagate (otherwise
    // the invariants above are vacuously true).
    chaos::ChaosConfig cfg = smallConfig();
    cfg.runFor = sim::milliseconds(20);
    cfg.drain = sim::milliseconds(20);
    const chaos::ChaosReport report = chaos::runChaos(cfg, 4);
    chaos::OutcomeMix total;
    for (const chaos::PlanReport &p : report.plans)
        total += p.result.mix;
    EXPECT_EQ(report.violating(), 0u);
    EXPECT_GT(total.rpcHedges, 0u);
    EXPECT_GT(total.rpcCancelled + total.requestsCancelled, 0u);
}

TEST(ChaosSmoke, OverloadCampaignHoldsEveryInvariant)
{
    // Adaptive limits, sojourn/deadline shedding, brownout, and
    // retry budgets armed on every service (plus budgeted client
    // retries via sessions): the same conservation invariants must
    // hold with the new shed/skip causes in the mix.
    chaos::ChaosConfig cfg = smallConfig();
    cfg.overload = true;
    cfg.sessions = true;
    cfg.runFor = sim::milliseconds(20);
    cfg.drain = sim::milliseconds(20);
    const chaos::ChaosReport report = chaos::runChaos(cfg, 4);
    chaos::OutcomeMix total;
    for (const chaos::PlanReport &p : report.plans) {
        EXPECT_TRUE(p.result.ok())
            << "plan seed " << p.planSeed << " violated: "
            << (p.result.violations.empty()
                    ? ""
                    : p.result.violations.front());
        total += p.result.mix;
    }
    EXPECT_EQ(report.violating(), 0u);
    EXPECT_GT(total.clientSent, 0u);
}

TEST(ChaosSmoke, OverloadOffKeepsPlanSequence)
{
    // The overload switch must not perturb plan sampling: the same
    // seed yields byte-identical fault plans with and without it.
    const chaos::ChaosConfig off = smallConfig();
    chaos::ChaosConfig on = smallConfig();
    on.overload = true;
    for (std::uint64_t s : {1ull, 7ull, 42ull}) {
        EXPECT_EQ(
            chaos::formatFaultPlan(chaos::generateRandomPlan(off, s)),
            chaos::formatFaultPlan(chaos::generateRandomPlan(on, s)));
    }
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(ChaosDeterminism, RunPlanIsAPureFunction)
{
    const chaos::ChaosConfig cfg = smallConfig();
    const fault::FaultPlan plan =
        chaos::generateRandomPlan(cfg, 0xabcdefull);
    const chaos::PlanRunResult a = chaos::runPlan(cfg, plan);
    const chaos::PlanRunResult b = chaos::runPlan(cfg, plan);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_TRUE(sameMix(a.mix, b.mix));
}

TEST(ChaosDeterminism, CampaignIdenticalAcrossJobCounts)
{
    const chaos::ChaosConfig cfg = smallConfig();
    sim::RunExecutor serial(1);
    sim::RunExecutor pool(3);
    const chaos::ChaosReport a = chaos::runChaos(cfg, 4, &serial);
    const chaos::ChaosReport b = chaos::runChaos(cfg, 4, &pool);
    ASSERT_EQ(a.plans.size(), b.plans.size());
    for (std::size_t i = 0; i < a.plans.size(); ++i) {
        EXPECT_EQ(a.plans[i].planSeed, b.plans[i].planSeed);
        EXPECT_EQ(chaos::formatFaultPlan(a.plans[i].plan),
                  chaos::formatFaultPlan(b.plans[i].plan));
        EXPECT_EQ(a.plans[i].result.violations,
                  b.plans[i].result.violations);
        EXPECT_TRUE(sameMix(a.plans[i].result.mix,
                            b.plans[i].result.mix));
    }
}

// ---------------------------------------------------------------------------
// Planted-bug catch + shrink
// ---------------------------------------------------------------------------

/**
 * Three faults, one culprit: only the machine crash drops messages,
 * so only it can trip the planted ledger bug. The shrinker must peel
 * the two benign faults away and narrow the crash window.
 */
fault::FaultPlan
plantedBugPlan()
{
    fault::FaultPlan plan;
    plan.diskSlowdown("m0", sim::milliseconds(1), sim::milliseconds(2),
                      4.0);
    plan.machineCrash("m1", sim::milliseconds(2),
                      sim::milliseconds(3));
    plan.linkLatency("m0", "m2", sim::milliseconds(1),
                     sim::milliseconds(2), sim::microseconds(200));
    return plan;
}

TEST(ChaosShrink, PlantedLedgerBugIsCaught)
{
    chaos::ChaosConfig cfg = smallConfig();
    cfg.plantLedgerBug = true;
    const fault::FaultPlan plan = plantedBugPlan();
    const chaos::PlanRunResult r = chaos::runPlan(cfg, plan);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.violations.front().find("net-msg-ledger"),
              std::string::npos);

    // The identical plan is clean when the checker accounts drops:
    // the violation is the fixture bug, not the runtime.
    chaos::ChaosConfig honest = cfg;
    honest.plantLedgerBug = false;
    EXPECT_TRUE(chaos::runPlan(honest, plan).ok());
}

TEST(ChaosShrink, ShrinksToMinimalReproducerDeterministically)
{
    chaos::ChaosConfig cfg = smallConfig();
    cfg.plantLedgerBug = true;
    const fault::FaultPlan plan = plantedBugPlan();

    const chaos::ShrinkResult first = chaos::shrinkPlan(cfg, plan);
    const chaos::ShrinkResult second = chaos::shrinkPlan(cfg, plan);

    // Minimal: the benign disk and latency faults are gone.
    ASSERT_EQ(first.plan.faults.size(), 1u);
    EXPECT_EQ(first.plan.faults.front().kind,
              fault::FaultKind::MachineCrash);
    EXPECT_LT(first.plan.faults.front().duration,
              sim::milliseconds(3));
    EXPECT_FALSE(first.violations.empty());
    EXPECT_GT(first.probes, 0u);
    EXPECT_LE(first.probes, cfg.maxShrinkProbes);

    // Deterministic: same seed, same reproducer, byte for byte.
    EXPECT_EQ(chaos::formatFaultPlan(first.plan),
              chaos::formatFaultPlan(second.plan));
    EXPECT_EQ(first.violations, second.violations);
    EXPECT_EQ(first.probes, second.probes);

    // The reproducer still violates when replayed on its own.
    EXPECT_FALSE(chaos::runPlan(cfg, first.plan).ok());
}

// ---------------------------------------------------------------------------
// Multi-region campaigns
// ---------------------------------------------------------------------------

/** smallConfig spread over three regions joined by a WAN mesh. */
chaos::ChaosConfig
regionConfig()
{
    chaos::ChaosConfig cfg = smallConfig();
    cfg.regions = 3;
    return cfg;
}

bool
isRegionKind(fault::FaultKind kind)
{
    return kind == fault::FaultKind::RegionPartition ||
        kind == fault::FaultKind::RegionOutage ||
        kind == fault::FaultKind::WanDegrade;
}

TEST(ChaosRegion, RegionCampaignHoldsEveryInvariant)
{
    const chaos::ChaosConfig cfg = regionConfig();
    const chaos::ChaosReport report = chaos::runChaos(cfg, 6);
    ASSERT_EQ(report.plans.size(), 6u);
    unsigned regionFaults = 0;
    for (const chaos::PlanReport &p : report.plans) {
        EXPECT_TRUE(p.result.ok())
            << "plan seed " << p.planSeed << " violated: "
            << (p.result.violations.empty()
                    ? ""
                    : p.result.violations.front());
        EXPECT_GT(p.result.mix.clientSent, 0u);
        for (const fault::FaultSpec &f : p.plan.faults)
            regionFaults += isRegionKind(f.kind) ? 1 : 0;
    }
    EXPECT_EQ(report.violating(), 0u);
    // The widened kind space must actually sample region faults --
    // otherwise the WAN ledger and region-conservation invariants
    // above are vacuously true.
    EXPECT_GT(regionFaults, 0u);
}

TEST(ChaosRegion, RegionsOffSamplesThePreRegionKindSpace)
{
    // regions == 0 must draw the exact pre-region plan sequence: the
    // region kinds never appear and the campaign stays bit-identical
    // to a build without the region layer.
    const chaos::ChaosConfig cfg = smallConfig();
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
        const fault::FaultPlan plan =
            chaos::generateRandomPlan(cfg, seed);
        for (const fault::FaultSpec &f : plan.faults)
            EXPECT_FALSE(isRegionKind(f.kind))
                << faultKindName(f.kind) << " sampled at regions=0";
    }
}

TEST(ChaosDeterminism, RegionCampaignIdenticalAcrossJobCounts)
{
    const chaos::ChaosConfig cfg = regionConfig();
    sim::RunExecutor serial(1);
    sim::RunExecutor pool(3);
    const chaos::ChaosReport a = chaos::runChaos(cfg, 4, &serial);
    const chaos::ChaosReport b = chaos::runChaos(cfg, 4, &pool);
    ASSERT_EQ(a.plans.size(), b.plans.size());
    for (std::size_t i = 0; i < a.plans.size(); ++i) {
        EXPECT_EQ(a.plans[i].planSeed, b.plans[i].planSeed);
        EXPECT_EQ(chaos::formatFaultPlan(a.plans[i].plan),
                  chaos::formatFaultPlan(b.plans[i].plan));
        EXPECT_EQ(a.plans[i].result.violations,
                  b.plans[i].result.violations);
        EXPECT_TRUE(sameMix(a.plans[i].result.mix,
                            b.plans[i].result.mix));
    }
}

/**
 * Three faults, one culprit: only the WAN degradation drops messages
 * on a WAN link, so only it can trip the planted per-link ledger bug.
 */
fault::FaultPlan
plantedWanBugPlan()
{
    fault::FaultPlan plan;
    plan.diskSlowdown("m0", sim::milliseconds(1), sim::milliseconds(2),
                      4.0);
    plan.wanDegrade("r0", "r1", sim::milliseconds(1),
                    sim::milliseconds(6), 0.9,
                    sim::microseconds(100));
    plan.linkLatency("m0", "m2", sim::milliseconds(1),
                     sim::milliseconds(2), sim::microseconds(200));
    return plan;
}

TEST(ChaosRegionShrink, PlantedWanLedgerBugIsCaughtAndShrunk)
{
    chaos::ChaosConfig cfg = regionConfig();
    cfg.plantWanLedgerBug = true;
    const fault::FaultPlan plan = plantedWanBugPlan();

    const chaos::PlanRunResult r = chaos::runPlan(cfg, plan);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.violations.front().find("wan-msg-ledger"),
              std::string::npos)
        << r.violations.front();

    // Honest checker, same plan: the runtime's per-link accounting is
    // exact -- the violation is the fixture bug.
    chaos::ChaosConfig honest = cfg;
    honest.plantWanLedgerBug = false;
    EXPECT_TRUE(chaos::runPlan(honest, plan).ok());

    // ddmin peels the benign disk and latency faults away.
    const chaos::ShrinkResult shrunk = chaos::shrinkPlan(cfg, plan);
    ASSERT_EQ(shrunk.plan.faults.size(), 1u);
    EXPECT_EQ(shrunk.plan.faults.front().kind,
              fault::FaultKind::WanDegrade);
    EXPECT_FALSE(shrunk.violations.empty());
    EXPECT_FALSE(chaos::runPlan(cfg, shrunk.plan).ok());

    // Deterministic reproducer, formatted as builder code.
    const chaos::ShrinkResult again = chaos::shrinkPlan(cfg, plan);
    EXPECT_EQ(chaos::formatFaultPlan(shrunk.plan),
              chaos::formatFaultPlan(again.plan));
    EXPECT_NE(chaos::formatFaultPlan(shrunk.plan).find(
                  "plan.wanDegrade(\"r0\", \"r1\", "),
              std::string::npos);
}

TEST(ChaosShrink, ReproducerFormatsAsBuilderCode)
{
    fault::FaultPlan plan;
    plan.machineCrash("m1", 2000000, 3000000);
    plan.linkDrop("m0", "", 1000, 2000, 0.5);
    const std::string code = chaos::formatFaultPlan(plan);
    EXPECT_NE(code.find("fault::FaultPlan plan;"), std::string::npos);
    EXPECT_NE(code.find(
                  "plan.machineCrash(\"m1\", 2000000, 3000000);"),
              std::string::npos);
    EXPECT_NE(code.find("plan.linkDrop(\"m0\", \"\", 1000, 2000, "),
              std::string::npos);
}

} // namespace
