/**
 * @file
 * Tests for the fault-injection subsystem and resilience policies:
 * backoff schedules, the circuit-breaker state machine, network drop
 * accounting, crash/restart end-to-end behaviour, load shedding, and
 * bit-exact determinism of faulted runs.
 *
 * These tests carry the `sanitize` ctest label: configure with
 * -DDITTO_SANITIZE=ON and run `ctest -L sanitize` to execute them
 * under ASan+UBSan.
 */

#include <gtest/gtest.h>

#include "app/deployment.h"
#include "app/resilience.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "profile/probe_collector.h"
#include "trace/tracer.h"
#include "workload/loadgen.h"

namespace {

using namespace ditto;

// ---------------------------------------------------------------------------
// Retry backoff
// ---------------------------------------------------------------------------

TEST(Backoff, ExponentialScheduleWithCap)
{
    app::RetryPolicy policy;
    policy.baseBackoff = sim::microseconds(100);
    policy.multiplier = 2.0;
    policy.maxBackoff = sim::microseconds(350);
    policy.jitter = 0.0;
    sim::Rng rng(7);

    EXPECT_EQ(app::computeBackoff(policy, 1, rng),
              sim::microseconds(100));
    EXPECT_EQ(app::computeBackoff(policy, 2, rng),
              sim::microseconds(200));
    // 400us would exceed the cap.
    EXPECT_EQ(app::computeBackoff(policy, 3, rng),
              sim::microseconds(350));
    EXPECT_EQ(app::computeBackoff(policy, 4, rng),
              sim::microseconds(350));
}

TEST(Backoff, NoJitterDrawsNoRandomness)
{
    app::RetryPolicy policy;
    policy.jitter = 0.0;
    sim::Rng used(55);
    sim::Rng untouched(55);
    app::computeBackoff(policy, 1, used);
    app::computeBackoff(policy, 2, used);
    // The rng sequence must be unperturbed -- the guarantee that a
    // resilience-disabled run is bit-identical to the seed runtime.
    EXPECT_EQ(used(), untouched());
}

TEST(Backoff, JitterBoundedAndDeterministic)
{
    app::RetryPolicy policy;
    policy.baseBackoff = sim::microseconds(100);
    policy.multiplier = 1.0;
    policy.jitter = 0.5;
    sim::Rng a(11);
    sim::Rng b(11);
    for (unsigned attempt = 1; attempt <= 16; ++attempt) {
        const sim::Time fromA = app::computeBackoff(policy, attempt, a);
        const sim::Time fromB = app::computeBackoff(policy, attempt, b);
        EXPECT_EQ(fromA, fromB);  // same seed, same schedule
        EXPECT_GE(fromA, sim::microseconds(50));
        EXPECT_LE(fromA, sim::microseconds(150));
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker FSM
// ---------------------------------------------------------------------------

app::CircuitBreakerPolicy
testBreakerPolicy()
{
    app::CircuitBreakerPolicy policy;
    policy.enabled = true;
    policy.failureThreshold = 3;
    policy.openDuration = sim::milliseconds(10);
    policy.halfOpenProbes = 1;
    return policy;
}

TEST(CircuitBreaker, OpensAfterConsecutiveFailures)
{
    app::CircuitBreaker cb(testBreakerPolicy());
    sim::Time now = 0;
    EXPECT_EQ(cb.state(), app::CircuitBreaker::State::Closed);
    for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(cb.allowRequest(now));
        cb.onFailure(now);
        EXPECT_EQ(cb.state(), app::CircuitBreaker::State::Closed);
    }
    ASSERT_TRUE(cb.allowRequest(now));
    cb.onFailure(now);  // third consecutive failure trips it
    EXPECT_EQ(cb.state(), app::CircuitBreaker::State::Open);
    EXPECT_EQ(cb.timesOpened(), 1u);
    EXPECT_FALSE(cb.allowRequest(now + sim::milliseconds(9)));
}

TEST(CircuitBreaker, SuccessResetsFailureStreak)
{
    app::CircuitBreaker cb(testBreakerPolicy());
    cb.onFailure(0);
    cb.onFailure(0);
    cb.onSuccess();  // streak broken
    cb.onFailure(0);
    cb.onFailure(0);
    EXPECT_EQ(cb.state(), app::CircuitBreaker::State::Closed);
    cb.onFailure(0);
    EXPECT_EQ(cb.state(), app::CircuitBreaker::State::Open);
}

TEST(CircuitBreaker, HalfOpenProbeClosesOnSuccess)
{
    app::CircuitBreaker cb(testBreakerPolicy());
    for (int i = 0; i < 3; ++i)
        cb.onFailure(0);
    ASSERT_EQ(cb.state(), app::CircuitBreaker::State::Open);
    // Open window elapsed: one probe is admitted.
    ASSERT_TRUE(cb.allowRequest(sim::milliseconds(10)));
    EXPECT_EQ(cb.state(), app::CircuitBreaker::State::HalfOpen);
    // Only one probe in flight with halfOpenProbes == 1.
    EXPECT_FALSE(cb.allowRequest(sim::milliseconds(10)));
    cb.onSuccess();
    EXPECT_EQ(cb.state(), app::CircuitBreaker::State::Closed);
    EXPECT_TRUE(cb.allowRequest(sim::milliseconds(11)));
}

TEST(CircuitBreaker, HalfOpenProbeFailureReopens)
{
    app::CircuitBreaker cb(testBreakerPolicy());
    for (int i = 0; i < 3; ++i)
        cb.onFailure(0);
    ASSERT_TRUE(cb.allowRequest(sim::milliseconds(10)));
    cb.onFailure(sim::milliseconds(10));
    EXPECT_EQ(cb.state(), app::CircuitBreaker::State::Open);
    EXPECT_EQ(cb.timesOpened(), 2u);
    EXPECT_FALSE(cb.allowRequest(sim::milliseconds(19)));
    EXPECT_TRUE(cb.allowRequest(sim::milliseconds(20)));
}

// With halfOpenProbes == 2, exactly two concurrent probes are
// admitted; the first success closes the breaker and the second
// probe's result is harmless (no double-close side effects).
TEST(CircuitBreaker, HalfOpenConcurrentProbesCloseOnce)
{
    app::CircuitBreakerPolicy policy = testBreakerPolicy();
    policy.halfOpenProbes = 2;
    app::CircuitBreaker cb(policy);
    for (int i = 0; i < 3; ++i)
        cb.onFailure(0);
    ASSERT_EQ(cb.state(), app::CircuitBreaker::State::Open);

    const sim::Time probeAt = sim::milliseconds(10);
    ASSERT_TRUE(cb.allowRequest(probeAt));   // probe A
    EXPECT_EQ(cb.state(), app::CircuitBreaker::State::HalfOpen);
    ASSERT_TRUE(cb.allowRequest(probeAt));   // probe B
    EXPECT_FALSE(cb.allowRequest(probeAt));  // accounting caps at 2

    cb.onSuccess();  // probe A settles first: closed
    EXPECT_EQ(cb.state(), app::CircuitBreaker::State::Closed);
    cb.onSuccess();  // probe B lands on a closed breaker: no-op+
    EXPECT_EQ(cb.state(), app::CircuitBreaker::State::Closed);
    EXPECT_EQ(cb.timesOpened(), 1u);
    // The late success must not have corrupted the failure streak:
    // the full threshold is still required to re-trip.
    cb.onFailure(probeAt);
    cb.onFailure(probeAt);
    EXPECT_EQ(cb.state(), app::CircuitBreaker::State::Closed);
    cb.onFailure(probeAt);
    EXPECT_EQ(cb.state(), app::CircuitBreaker::State::Open);
    EXPECT_EQ(cb.timesOpened(), 2u);
}

// The first failed probe re-trips the breaker; the second concurrent
// probe's failure lands in Open state and must be a no-op -- no
// double-trip (timesOpened once) and no open-window extension.
TEST(CircuitBreaker, HalfOpenConcurrentProbesTripOnce)
{
    app::CircuitBreakerPolicy policy = testBreakerPolicy();
    policy.halfOpenProbes = 2;
    app::CircuitBreaker cb(policy);
    for (int i = 0; i < 3; ++i)
        cb.onFailure(0);
    ASSERT_EQ(cb.timesOpened(), 1u);

    const sim::Time probeAt = sim::milliseconds(10);
    ASSERT_TRUE(cb.allowRequest(probeAt));
    ASSERT_TRUE(cb.allowRequest(probeAt));
    cb.onFailure(probeAt);  // probe A fails: back to Open
    EXPECT_EQ(cb.state(), app::CircuitBreaker::State::Open);
    EXPECT_EQ(cb.timesOpened(), 2u);
    cb.onFailure(probeAt + sim::milliseconds(5));  // probe B, late
    EXPECT_EQ(cb.timesOpened(), 2u);  // no double-trip
    // The open window still expires at probeAt + openDuration -- the
    // late failure did not extend it.
    EXPECT_FALSE(cb.allowRequest(probeAt + sim::milliseconds(9)));
    EXPECT_TRUE(cb.allowRequest(probeAt + sim::milliseconds(10)));
}

// A probe failure followed by the other probe's *success* must not
// shortcut the fresh open window: the stale success is ignored.
TEST(CircuitBreaker, HalfOpenStaleSuccessDoesNotReclose)
{
    app::CircuitBreakerPolicy policy = testBreakerPolicy();
    policy.halfOpenProbes = 2;
    app::CircuitBreaker cb(policy);
    for (int i = 0; i < 3; ++i)
        cb.onFailure(0);

    const sim::Time probeAt = sim::milliseconds(10);
    ASSERT_TRUE(cb.allowRequest(probeAt));
    ASSERT_TRUE(cb.allowRequest(probeAt));
    cb.onFailure(probeAt);  // probe A: re-trip
    ASSERT_EQ(cb.state(), app::CircuitBreaker::State::Open);
    cb.onSuccess();         // probe B settles Ok after the re-trip
    EXPECT_EQ(cb.state(), app::CircuitBreaker::State::Open);
    EXPECT_FALSE(cb.allowRequest(probeAt + sim::milliseconds(9)));
    EXPECT_TRUE(cb.allowRequest(probeAt + sim::milliseconds(10)));
}

// ---------------------------------------------------------------------------
// Shared two-tier world
// ---------------------------------------------------------------------------

hw::CodeBlock
tinyBlock(const std::string &label, std::uint64_t seed)
{
    hw::BlockSpec bs;
    bs.label = label;
    bs.instCount = 64;
    bs.seed = seed;
    return hw::buildBlock(bs);
}

app::ServiceSpec
backendSpec()
{
    app::ServiceSpec spec;
    spec.name = "back";
    spec.threads.workers = 2;
    spec.blocks.push_back(tinyBlock("back.h", 3));
    app::EndpointSpec ep;
    ep.name = "get";
    ep.handler.ops = {app::opCompute(0, 5)};
    spec.endpoints.push_back(ep);
    return spec;
}

app::ServiceSpec
frontendSpec(const app::ResilienceSpec &resilience)
{
    app::ServiceSpec spec;
    spec.name = "front";
    spec.threads.workers = 2;
    spec.downstreams = {"back"};
    spec.blocks.push_back(tinyBlock("front.h", 4));
    app::EndpointSpec ep;
    ep.name = "page";
    ep.handler.ops = {app::opCompute(0, 3),
                      app::opRpc(0, 0, 128, 256),
                      app::opCompute(0, 3)};
    spec.endpoints.push_back(ep);
    spec.resilience = resilience;
    return spec;
}

/** Two services on one machine plus an external open-loop client. */
struct TwoTier
{
    app::Deployment dep;
    os::Machine &machine;
    app::ServiceInstance &back;
    app::ServiceInstance &front;
    workload::LoadGen gen;

    explicit TwoTier(const app::ResilienceSpec &resilience,
                     double qps = 2000, sim::Time clientTimeout =
                         sim::milliseconds(5))
        : dep(17),
          machine(dep.addMachine("n", hw::platformA())),
          back(dep.deploy(backendSpec(), machine)),
          front(dep.deploy(frontendSpec(resilience), machine)),
          gen(wired(dep), front, clientLoad(qps, clientTimeout), 23)
    {
    }

    /** wireAll() must run before LoadGen opens its connections. */
    static app::Deployment &
    wired(app::Deployment &dep)
    {
        dep.wireAll();
        return dep;
    }

    static workload::LoadSpec
    clientLoad(double qps, sim::Time timeout)
    {
        workload::LoadSpec load;
        load.qps = qps;
        load.connections = 4;
        load.openLoop = true;
        load.timeout = timeout;
        return load;
    }
};

app::ResilienceSpec
frontResilience()
{
    app::ResilienceSpec res;
    res.rpcDeadline = sim::microseconds(600);
    res.retry.maxAttempts = 2;
    res.retry.baseBackoff = sim::microseconds(100);
    res.breaker.enabled = true;
    res.breaker.failureThreshold = 4;
    res.breaker.openDuration = sim::milliseconds(3);
    return res;
}

// ---------------------------------------------------------------------------
// Network fault accounting
// ---------------------------------------------------------------------------

TEST(NetworkFaults, EveryMessageAccountedUnderDrops)
{
    TwoTier w(app::ResilienceSpec{});
    fault::FaultPlan plan;
    // External-client link: 50% loss for most of the run.
    plan.linkDrop("", "n", sim::milliseconds(10),
                  sim::milliseconds(60), 0.5);
    fault::FaultInjector injector(w.dep);
    injector.install(plan);
    w.gen.start();
    w.dep.runFor(sim::milliseconds(100));

    os::Network &net = w.dep.network();
    EXPECT_GT(net.messagesDropped(), 0u);
    EXPECT_EQ(net.messagesSent(),
              net.messagesDelivered() + net.messagesDropped() +
                  net.messagesInFlight());
    EXPECT_GT(w.gen.timedOut(), 0u);
    // sent == every outcome + still-pending.
    EXPECT_GE(w.gen.sent(),
              w.gen.completedOk() + w.gen.completedError() +
                  w.gen.completedShed() + w.gen.timedOut());
}

TEST(NetworkFaults, PartitionDropsEverythingThenHeals)
{
    TwoTier w(app::ResilienceSpec{});
    fault::FaultPlan plan;
    plan.partition("", "n", sim::milliseconds(20),
                   sim::milliseconds(30));
    fault::FaultInjector injector(w.dep);
    injector.install(plan);
    w.gen.start();
    w.dep.runFor(sim::milliseconds(20));
    const std::uint64_t completedBefore = w.gen.completed();
    EXPECT_GT(completedBefore, 0u);
    w.dep.runFor(sim::milliseconds(30));
    // Nothing came back during the partition.
    EXPECT_GT(w.gen.timedOut(), 0u);
    w.dep.runFor(sim::milliseconds(50));
    // Healed: completions resumed.
    EXPECT_GT(w.gen.completed(), completedBefore);
    EXPECT_EQ(injector.stats().windowsStarted, 1u);
    EXPECT_EQ(injector.stats().windowsEnded, 1u);
}

// ---------------------------------------------------------------------------
// Crash / restart end to end
// ---------------------------------------------------------------------------

TEST(FaultInjection, ServiceCrashCausesTimeoutsAndRecovers)
{
    TwoTier w(frontResilience());
    fault::FaultPlan plan;
    plan.serviceCrash("back", sim::milliseconds(20),
                      sim::milliseconds(30));
    fault::FaultInjector injector(w.dep);
    injector.install(plan);
    w.gen.start();
    w.dep.runFor(sim::milliseconds(50));

    // During the crash the frontend's calls hit their deadline,
    // retried, then gave up and answered degraded.
    const app::ServiceStats &fs = w.front.stats();
    EXPECT_GT(fs.rpcTimeouts, 0u);
    EXPECT_GT(fs.rpcRetries, 0u);
    EXPECT_GT(fs.requestsDegraded, 0u);
    EXPECT_GT(w.gen.completedError(), 0u);
    // Outcome counters surfaced through the tracer agree exactly.
    EXPECT_EQ(w.dep.tracer().outcomeCount(trace::OutcomeKind::RpcTimeout),
              fs.rpcTimeouts);

    const std::uint64_t okDuringCrash = w.gen.completedOk();
    w.dep.runFor(sim::milliseconds(60));
    // Restarted: Ok responses flow again.
    EXPECT_GT(w.gen.completedOk(), okDuringCrash);
    EXPECT_GT(fs.rpcOk, 0u);
}

TEST(FaultInjection, BreakerOpensDuringCrash)
{
    TwoTier w(frontResilience());
    fault::FaultPlan plan;
    plan.serviceCrash("back", sim::milliseconds(15),
                      sim::milliseconds(40));
    fault::FaultInjector injector(w.dep);
    injector.install(plan);
    w.gen.start();
    w.dep.runFor(sim::milliseconds(70));

    app::CircuitBreaker *cb = w.front.breaker(0);
    ASSERT_NE(cb, nullptr);
    EXPECT_GE(cb->timesOpened(), 1u);
    // Fast-fails happened while open (no message sent downstream).
    EXPECT_GT(w.front.stats().rpcBreakerFastFails, 0u);
    EXPECT_EQ(w.dep.tracer().outcomeCount(
                  trace::OutcomeKind::RpcBreakerOpen),
              w.front.stats().rpcBreakerFastFails);
}

TEST(FaultInjection, MachineCrashFreezesAndRestarts)
{
    TwoTier w(app::ResilienceSpec{});
    fault::FaultPlan plan;
    plan.machineCrash("n", sim::milliseconds(20),
                      sim::milliseconds(25));
    fault::FaultInjector injector(w.dep);
    injector.install(plan);
    w.gen.start();
    w.dep.runFor(sim::milliseconds(20));
    const std::uint64_t sentBefore = w.gen.sent();
    const std::uint64_t completedBefore = w.gen.completed();
    EXPECT_GT(completedBefore, 0u);
    w.dep.runFor(sim::milliseconds(12));  // mid crash window
    EXPECT_TRUE(w.machine.down());
    w.dep.runFor(sim::milliseconds(13));
    // Clients kept sending into the dead machine; nothing came back.
    EXPECT_GT(w.gen.sent(), sentBefore);
    EXPECT_GT(w.gen.timedOut(), 0u);
    w.dep.runFor(sim::milliseconds(55));
    EXPECT_FALSE(w.machine.down());
    EXPECT_GT(w.gen.completed(), completedBefore);
}

// ---------------------------------------------------------------------------
// Load shedding
// ---------------------------------------------------------------------------

TEST(FaultInjection, OverloadedServiceShedsRequests)
{
    app::ResilienceSpec res;
    res.shedQueueThreshold = 2;
    // One slow worker + a burst far above capacity.
    app::Deployment dep(19);
    os::Machine &machine = dep.addMachine("n", hw::platformA());
    app::ServiceSpec spec = backendSpec();
    spec.name = "slow";
    spec.threads.workers = 1;
    spec.endpoints[0].handler.ops = {app::opCompute(0, 4000)};
    spec.resilience = res;
    app::ServiceInstance &svc = dep.deploy(spec, machine);
    dep.wireAll();

    workload::LoadSpec load;
    load.qps = 20000;
    load.connections = 2;
    load.openLoop = true;
    workload::LoadGen gen(dep, svc, load, 29);
    gen.start();
    dep.runFor(sim::milliseconds(60));

    EXPECT_GT(svc.stats().requestsShed, 0u);
    EXPECT_GT(gen.completedShed(), 0u);
    EXPECT_EQ(dep.tracer().outcomeCount(
                  trace::OutcomeKind::RequestShed),
              svc.stats().requestsShed);
    // Shed responses come back fast and are not Ok.
    EXPECT_EQ(gen.completed(),
              gen.completedOk() + gen.completedError() +
                  gen.completedShed());
}

// ---------------------------------------------------------------------------
// Disk slowdown
// ---------------------------------------------------------------------------

TEST(FaultInjection, DiskSlowdownStretchesServiceTime)
{
    auto timeOneIo = [](double slowdown) {
        app::Deployment dep(23);
        os::Machine &machine = dep.addMachine("n", hw::platformA());
        machine.disk().setSlowdown(slowdown);
        sim::Time doneAt = 0;
        machine.disk().submit(1u << 20, false,
                              [&] { doneAt = dep.events().now(); });
        dep.runFor(sim::milliseconds(200));
        return doneAt;
    };
    const sim::Time healthy = timeOneIo(1.0);
    const sim::Time degraded = timeOneIo(6.0);
    ASSERT_GT(healthy, 0u);
    // Same seed, same draw: exactly 6x the service time.
    EXPECT_GT(degraded, healthy * 5);
    EXPECT_LE(degraded, healthy * 7);
}

// ---------------------------------------------------------------------------
// Determinism + zero-cost
// ---------------------------------------------------------------------------

struct ScenarioResult
{
    std::uint64_t sent = 0;
    std::uint64_t completed = 0;
    std::uint64_t ok = 0;
    std::uint64_t err = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t late = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t maxLatency = 0;
    std::uint64_t netSent = 0;
    std::uint64_t netDelivered = 0;
    std::uint64_t netDropped = 0;
    std::uint64_t rpcTimeouts = 0;
    std::uint64_t rpcRetries = 0;
    std::uint64_t breakerFastFails = 0;

    bool operator==(const ScenarioResult &) const = default;
};

ScenarioResult
runFaultedScenario(bool withInjector)
{
    TwoTier w(frontResilience());
    fault::FaultPlan plan;
    plan.serviceCrash("back", sim::milliseconds(20),
                      sim::milliseconds(20));
    plan.linkDrop("", "n", sim::milliseconds(50),
                  sim::milliseconds(20), 0.3);
    plan.linkLatency("", "n", sim::milliseconds(55),
                     sim::milliseconds(10), sim::microseconds(200));
    fault::FaultInjector injector(w.dep);
    if (withInjector)
        injector.install(plan);
    w.gen.start();
    w.dep.runFor(sim::milliseconds(120));

    ScenarioResult r;
    r.sent = w.gen.sent();
    r.completed = w.gen.completed();
    r.ok = w.gen.completedOk();
    r.err = w.gen.completedError();
    r.timedOut = w.gen.timedOut();
    r.late = w.gen.lateResponses();
    r.p50 = w.gen.latency().percentile(0.5);
    r.p99 = w.gen.latency().percentile(0.99);
    r.maxLatency = w.gen.latency().maxValue();
    r.netSent = w.dep.network().messagesSent();
    r.netDelivered = w.dep.network().messagesDelivered();
    r.netDropped = w.dep.network().messagesDropped();
    r.rpcTimeouts = w.front.stats().rpcTimeouts;
    r.rpcRetries = w.front.stats().rpcRetries;
    r.breakerFastFails = w.front.stats().rpcBreakerFastFails;
    return r;
}

TEST(FaultInjection, SameSeedSamePlanIsBitIdentical)
{
    const ScenarioResult a = runFaultedScenario(true);
    const ScenarioResult b = runFaultedScenario(true);
    EXPECT_EQ(a, b);
    // And the scenario actually exercised the fault machinery.
    EXPECT_GT(a.netDropped, 0u);
    EXPECT_GT(a.rpcTimeouts, 0u);
}

ScenarioResult
runVanilla(bool withIdleInjector)
{
    TwoTier w(app::ResilienceSpec{}, 2000, /*clientTimeout=*/0);
    fault::FaultInjector injector(w.dep);
    if (withIdleInjector)
        injector.install(fault::FaultPlan{});  // empty plan
    w.gen.start();
    w.dep.runFor(sim::milliseconds(80));

    ScenarioResult r;
    r.sent = w.gen.sent();
    r.completed = w.gen.completed();
    r.ok = w.gen.completedOk();
    r.p50 = w.gen.latency().percentile(0.5);
    r.p99 = w.gen.latency().percentile(0.99);
    r.maxLatency = w.gen.latency().maxValue();
    r.netSent = w.dep.network().messagesSent();
    r.netDelivered = w.dep.network().messagesDelivered();
    r.netDropped = w.dep.network().messagesDropped();
    return r;
}

TEST(FaultInjection, EmptyPlanIsZeroCost)
{
    // Installing an injector with an empty plan must not perturb the
    // simulation at all: identical message counts and latencies.
    const ScenarioResult bare = runVanilla(false);
    const ScenarioResult idle = runVanilla(true);
    EXPECT_EQ(bare, idle);
    EXPECT_EQ(bare.netDropped, 0u);
    EXPECT_EQ(bare.completed, bare.ok);  // all Ok without faults
}

// ---------------------------------------------------------------------------
// Outcome reconciliation: ServiceStats / ServiceProbe / Tracer
// ---------------------------------------------------------------------------

TEST(OutcomeAccounting, StatsProbeAndTracerReconcileUnderFaults)
{
    // Every resilience outcome is recorded through three independent
    // readouts: the per-service counters (ServiceStats), the
    // per-service probe stream (ServiceProbe::onOutcome), and the
    // deployment-wide exact tally (Tracer::recordOutcome, which
    // ignores sampling). The tiers sit on separate machines so the
    // lossy link hits the RPC path itself (loopback traffic bypasses
    // link faults), yielding plain successes, retried successes, and
    // hard timeouts; the three books must balance exactly.
    app::Deployment dep(17);
    os::Machine &web = dep.addMachine("web", hw::platformA());
    os::Machine &db = dep.addMachine("db", hw::platformA());
    app::ServiceInstance &back = dep.deploy(backendSpec(), db);
    app::ServiceInstance &front =
        dep.deploy(frontendSpec(frontResilience()), web);
    dep.wireAll();
    workload::LoadGen gen(dep, front,
                          TwoTier::clientLoad(2000,
                                              sim::milliseconds(5)),
                          23);

    profile::ProbeCollector frontProbe;
    profile::ProbeCollector backProbe;
    front.setProbe(&frontProbe);
    back.setProbe(&backProbe);

    fault::FaultPlan plan;
    plan.serviceCrash("back", sim::milliseconds(20),
                      sim::milliseconds(20));
    plan.linkDrop("web", "db", sim::milliseconds(50),
                  sim::milliseconds(40), 0.3);
    fault::FaultInjector injector(dep);
    injector.install(plan);

    gen.start();
    dep.runFor(sim::milliseconds(120));

    using trace::OutcomeKind;
    const std::vector<const profile::ProbeCollector *> probes = {
        &frontProbe, &backProbe};
    const std::vector<app::ServiceInstance *> services = {
        &front, &back};

    // Book 1 vs book 2: stats counters vs probe tallies, per service.
    for (std::size_t i = 0; i < services.size(); ++i) {
        const app::ServiceStats &s = services[i]->stats();
        const profile::ProbeCollector &p = *probes[i];
        EXPECT_EQ(s.rpcOk, p.outcomeCount(OutcomeKind::RpcOk) +
                               p.outcomeCount(OutcomeKind::RpcRetriedOk));
        EXPECT_EQ(s.rpcTimeouts,
                  p.outcomeCount(OutcomeKind::RpcTimeout));
        EXPECT_EQ(s.rpcBreakerFastFails,
                  p.outcomeCount(OutcomeKind::RpcBreakerOpen));
        EXPECT_EQ(s.requestsShed,
                  p.outcomeCount(OutcomeKind::RequestShed));
        EXPECT_EQ(s.requestsDegraded,
                  p.outcomeCount(OutcomeKind::RequestError));
        // Retry attempts are counted at issue time; outcomes report
        // them at completion, so in-flight retries at shutdown may
        // leave the issue-side count ahead -- never behind.
        EXPECT_GE(s.rpcRetries, p.extraAttempts());
    }

    // Book 2 vs book 3: per-kind probe sums across all services must
    // equal the tracer's exact deployment-wide counts.
    for (std::size_t k = 0; k < trace::kOutcomeKinds; ++k) {
        const auto kind = static_cast<OutcomeKind>(k);
        std::uint64_t probeSum = 0;
        for (const profile::ProbeCollector *p : probes)
            probeSum += p->outcomeCount(kind);
        EXPECT_EQ(probeSum, dep.tracer().outcomeCount(kind))
            << "kind=" << trace::outcomeKindName(kind);
    }

    // The plan actually produced a mixed outcome population: plain
    // successes, retried successes, and hard failures.
    EXPECT_GT(frontProbe.outcomeCount(OutcomeKind::RpcOk), 0u);
    EXPECT_GT(frontProbe.outcomeCount(OutcomeKind::RpcRetriedOk), 0u);
    EXPECT_GT(frontProbe.outcomeCount(OutcomeKind::RpcTimeout), 0u);
    EXPECT_GT(frontProbe.extraAttempts(), 0u);
}

// ---------------------------------------------------------------------------
// Request lifecycle: deadlines, cancellation, hedging
// ---------------------------------------------------------------------------

/** Every started downstream call settles in exactly one bucket. */
void
expectRpcConservation(const app::ServiceStats &s)
{
    EXPECT_EQ(s.rpcCallsStarted, s.rpcOk + s.rpcTimeouts +
                                     s.rpcBreakerFastFails +
                                     s.rpcCancelled);
}

TEST(RequestLifecycle, ExpiredRequestsDropOnArrival)
{
    // The client-to-frontend link is slower than the end-to-end
    // deadline, so every request arrives already dead. The frontend
    // must drop it without running the handler or calling downstream.
    app::ResilienceSpec res;
    res.propagateDeadline = true;
    TwoTier w(res);
    fault::FaultPlan plan;
    plan.linkLatency("", "n", 0, sim::milliseconds(60),
                     sim::milliseconds(2));
    fault::FaultInjector injector(w.dep);
    injector.install(plan);

    workload::LoadSpec load = TwoTier::clientLoad(2000, sim::milliseconds(1));
    load.propagateDeadline = true;
    workload::LoadGen gen(w.dep, w.front, load, 31);
    gen.start();
    w.dep.runFor(sim::milliseconds(40));
    gen.stop();
    w.dep.runFor(sim::milliseconds(20));

    EXPECT_GT(gen.sent(), 0u);
    EXPECT_EQ(gen.completedOk(), 0u);
    EXPECT_GT(gen.timedOut(), 0u);
    EXPECT_GT(w.front.stats().requestsCancelled, 0u);
    // No work reached the backend: the drop happens before the
    // handler issues its RPC.
    EXPECT_EQ(w.back.stats().rxBytes, 0u);
    EXPECT_EQ(w.front.stats().rpcCallsStarted, 0u);
    EXPECT_EQ(w.dep.tracer().outcomeCount(
                  trace::OutcomeKind::RequestCancelled),
              w.front.stats().requestsCancelled);
}

TEST(RequestLifecycle, ExhaustedBudgetFailsFastWithoutTransmitting)
{
    // hopMargin exceeds the whole client deadline, so the forwarded
    // budget is always exhausted by the time the handler reaches its
    // RPC: the call fails fast and nothing is ever sent downstream.
    app::ResilienceSpec res;
    res.propagateDeadline = true;
    res.hopMargin = sim::microseconds(300);
    TwoTier w(res);
    workload::LoadSpec load =
        TwoTier::clientLoad(2000, sim::microseconds(250));
    load.propagateDeadline = true;
    workload::LoadGen gen(w.dep, w.front, load, 31);
    gen.start();
    w.dep.runFor(sim::milliseconds(30));
    gen.stop();
    w.dep.runFor(sim::milliseconds(10));

    const app::ServiceStats &fs = w.front.stats();
    EXPECT_GT(fs.rpcCancelled, 0u);
    EXPECT_EQ(fs.rpcOk, 0u);
    EXPECT_EQ(w.back.stats().rxBytes, 0u);
    // The frontend still answers (degraded), so the client sees
    // errors, not timeouts.
    EXPECT_GT(gen.completedError(), 0u);
    EXPECT_EQ(w.dep.tracer().outcomeCount(
                  trace::OutcomeKind::RpcCancelled),
              fs.rpcCancelled);
    expectRpcConservation(fs);
}

TEST(RequestLifecycle, ClientTimeoutCancelChasesSubtree)
{
    // A slow single-worker backend saturates; requests queue up at
    // both tiers until the client's timeout fires. cancelOnTimeout
    // sends a cancel that must chase the whole subtree: the frontend
    // abandons its open call and forwards the cancel, and the backend
    // releases the queued (or in-flight) work.
    app::Deployment dep(17);
    os::Machine &machine = dep.addMachine("n", hw::platformA());
    app::ServiceSpec slow = backendSpec();
    slow.threads.workers = 1;
    slow.endpoints[0].handler.ops = {app::opCompute(0, 30000)};
    app::ServiceInstance &back = dep.deploy(slow, machine);
    app::ResilienceSpec res;
    res.cancellation = true;
    app::ServiceInstance &front =
        dep.deploy(frontendSpec(res), machine);
    dep.wireAll();

    workload::LoadSpec load =
        TwoTier::clientLoad(8000, sim::milliseconds(2));
    load.cancelOnTimeout = true;
    workload::LoadGen gen(dep, front, load, 23);
    gen.start();
    dep.runFor(sim::milliseconds(30));
    gen.stop();
    dep.runFor(sim::milliseconds(60));

    EXPECT_GT(gen.cancelsSent(), 0u);
    EXPECT_GT(front.stats().requestsCancelled, 0u);
    EXPECT_GT(front.stats().rpcCancelled, 0u);
    EXPECT_GT(back.stats().requestsCancelled, 0u);
    expectRpcConservation(front.stats());
    // Cancelled work really was released: the drain left nothing in
    // flight anywhere.
    EXPECT_EQ(dep.network().messagesInFlight(), 0u);
    EXPECT_EQ(dep.tracer().outcomeCount(
                  trace::OutcomeKind::RequestCancelled),
              front.stats().requestsCancelled +
                  back.stats().requestsCancelled);
}

TEST(RequestLifecycle, HedgeWinsAgainstSlowReplica)
{
    // Two replicas of the backend; the cross-machine one sits behind
    // a 3ms link. Round-robin sends half the calls there; after the
    // hedge delay the frontend launches a second attempt on the fast
    // replica, which wins. The slow loser is abandoned without ever
    // feeding the breaker.
    app::Deployment dep(17);
    os::Machine &web = dep.addMachine("web", hw::platformA());
    os::Machine &db = dep.addMachine("db", hw::platformA());
    app::ServiceInstance &back = dep.deploy(backendSpec(), web);
    app::ResilienceSpec res;
    res.rpcDeadline = sim::milliseconds(20);
    res.hedge.enabled = true;
    res.hedge.delay = sim::microseconds(300);
    res.breaker.enabled = true;
    res.breaker.failureThreshold = 4;
    app::ServiceInstance &front =
        dep.deploy(frontendSpec(res), web);
    dep.wireAll();
    dep.addReplica("back", db);

    fault::FaultPlan plan;
    plan.linkLatency("web", "db", 0, sim::milliseconds(90),
                     sim::milliseconds(3));
    fault::FaultInjector injector(dep);
    injector.install(plan);

    workload::LoadGen gen(dep, front,
                          TwoTier::clientLoad(2000,
                                              sim::milliseconds(50)),
                          23);
    gen.start();
    dep.runFor(sim::milliseconds(30));
    gen.stop();
    dep.runFor(sim::milliseconds(30));

    const app::ServiceStats &fs = front.stats();
    EXPECT_GT(fs.rpcHedges, 0u);
    EXPECT_GT(fs.rpcHedgeWins, 0u);
    EXPECT_LE(fs.rpcHedgeWins, fs.rpcHedges);
    EXPECT_EQ(fs.rpcTimeouts, 0u);
    EXPECT_EQ(dep.tracer().outcomeCount(
                  trace::OutcomeKind::RpcHedgeWon),
              fs.rpcHedgeWins);
    expectRpcConservation(fs);
    // Hedged losers never feed the breaker: one verdict per call,
    // and every call here ultimately succeeded.
    app::CircuitBreaker *cb = front.breaker(0);
    ASSERT_NE(cb, nullptr);
    EXPECT_EQ(cb->timesOpened(), 0u);
    EXPECT_GT(back.stats().rxBytes, 0u);
}

// ---------------------------------------------------------------------------
// Retry timers vs machine crash/restart windows
// ---------------------------------------------------------------------------

TEST(RetryUnderCrash, TimersFireInsideCrashAndRestartWindow)
{
    // Overlapping crashes: the backend's machine freezes first, so
    // the frontend piles up rpc-deadline and backoff timers; then the
    // frontend process itself crashes while those timers are pending.
    // Timers firing for a crashed (or since restarted) worker must
    // neither resurrect work nor leak a call: the books still balance
    // after everything returns.
    app::ResilienceSpec res;
    res.rpcDeadline = sim::microseconds(600);
    res.retry.maxAttempts = 2;
    res.retry.baseBackoff = sim::microseconds(100);
    app::Deployment dep(17);
    os::Machine &web = dep.addMachine("web", hw::platformA());
    os::Machine &db = dep.addMachine("db", hw::platformA());
    dep.deploy(backendSpec(), db);
    app::ServiceInstance &front =
        dep.deploy(frontendSpec(res), web);
    dep.wireAll();

    fault::FaultPlan plan;
    plan.machineCrash("db", sim::milliseconds(15),
                      sim::milliseconds(10));
    plan.serviceCrash("front", sim::milliseconds(18),
                      sim::milliseconds(8));
    fault::FaultInjector injector(dep);
    injector.install(plan);

    workload::LoadGen gen(dep, front,
                          TwoTier::clientLoad(2000,
                                              sim::milliseconds(5)),
                          23);
    gen.start();
    dep.runFor(sim::milliseconds(30));
    const std::uint64_t okDuringChaos = gen.completedOk();
    dep.runFor(sim::milliseconds(30));
    gen.stop();
    dep.runFor(sim::milliseconds(40));

    const app::ServiceStats &fs = front.stats();
    // Deadline timers fired while the backend was down...
    EXPECT_GT(fs.rpcTimeouts, 0u);
    EXPECT_GT(fs.rpcRetries, 0u);
    // ...and the frontend's own crash settled its open calls.
    EXPECT_GT(fs.rpcCancelled, 0u);
    expectRpcConservation(fs);
    EXPECT_EQ(dep.tracer().outcomeCount(
                  trace::OutcomeKind::RpcTimeout),
              fs.rpcTimeouts);
    // Both machines restarted and traffic recovered.
    EXPECT_FALSE(web.down());
    EXPECT_FALSE(db.down());
    EXPECT_GT(gen.completedOk(), okDuringChaos);
    EXPECT_EQ(dep.network().messagesInFlight(), 0u);
}

TEST(RetryUnderCrash, BudgetExhaustionReportsFinalOutcome)
{
    // The backend is down for most of the run, so calls burn their
    // full retry budget. Exactly one extra attempt is issued per
    // retried call (maxAttempts = 2), every exhausted call reports a
    // single RpcTimeout, and each such request answers degraded.
    app::ResilienceSpec res;
    res.rpcDeadline = sim::microseconds(600);
    res.retry.maxAttempts = 2;
    res.retry.baseBackoff = sim::microseconds(100);
    TwoTier w(res);
    profile::ProbeCollector probe;
    w.front.setProbe(&probe);

    fault::FaultPlan plan;
    plan.serviceCrash("back", sim::milliseconds(5),
                      sim::milliseconds(35));
    fault::FaultInjector injector(w.dep);
    injector.install(plan);
    w.gen.start();
    w.dep.runFor(sim::milliseconds(45));
    w.gen.stop();
    w.dep.runFor(sim::milliseconds(30));

    using trace::OutcomeKind;
    const app::ServiceStats &fs = w.front.stats();
    EXPECT_GT(fs.rpcTimeouts, 0u);
    // Budget accounting: every RpcTimeout and every RpcRetriedOk
    // consumed exactly one extra attempt; plain RpcOk consumed none.
    EXPECT_EQ(fs.rpcRetries,
              fs.rpcTimeouts +
                  probe.outcomeCount(OutcomeKind::RpcRetriedOk));
    EXPECT_EQ(fs.rpcRetries, probe.extraAttempts());
    expectRpcConservation(fs);
    // Final outcome: exhausted calls answer degraded, and every
    // degraded response reached the client (a few may land after the
    // client's own timeout and count as late instead of error).
    EXPECT_GT(fs.requestsDegraded, 0u);
    EXPECT_EQ(fs.requestsDegraded,
              probe.outcomeCount(OutcomeKind::RequestError));
    EXPECT_GE(fs.requestsDegraded, w.gen.completedError());
    EXPECT_LE(fs.requestsDegraded,
              w.gen.completedError() + w.gen.lateResponses());
}

} // namespace
