/**
 * @file
 * Tests for branch direction patterns (Sec. 4.4.3 bitmask semantics)
 * and the gshare predictor.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hw/branch_predictor.h"
#include "sim/rng.h"

namespace {

using namespace ditto::hw;

/** Measured long-run rates must match the (M, N) construction. */
class BranchPatternRates
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(BranchPatternRates, TakenAndTransitionRatesMatch)
{
    const auto [m, n] = GetParam();
    BranchDesc desc{static_cast<std::uint8_t>(m),
                    static_cast<std::uint8_t>(n)};
    const std::uint64_t samples = 1 << 16;
    std::uint64_t taken = 0;
    std::uint64_t transitions = 0;
    bool last = false;
    for (std::uint64_t i = 0; i < samples; ++i) {
        const bool dir = BranchPattern::direction(desc, i);
        taken += dir;
        if (i > 0 && dir != last)
            ++transitions;
        last = dir;
    }
    const double takenRate =
        static_cast<double>(taken) / static_cast<double>(samples);
    const double transRate = static_cast<double>(transitions) /
        static_cast<double>(samples);
    EXPECT_NEAR(takenRate, BranchPattern::takenRate(desc),
                0.02 * BranchPattern::takenRate(desc) + 1e-4);
    EXPECT_NEAR(transRate, BranchPattern::transitionRate(desc),
                0.05 * BranchPattern::transitionRate(desc) + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    QuantizedRates, BranchPatternRates,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 10),
                       ::testing::Values(1, 2, 4, 6, 10)));

TEST(BranchPattern, SaturatedCaseSingleTakenPerPeriod)
{
    // M > N+1: one taken execution per 2^M period.
    BranchDesc desc{6, 1};
    int taken = 0;
    for (std::uint64_t i = 0; i < 64; ++i)
        taken += BranchPattern::direction(desc, i);
    EXPECT_EQ(taken, 1);
    EXPECT_TRUE(BranchPattern::direction(desc, 0));
    EXPECT_TRUE(BranchPattern::direction(desc, 64));
}

TEST(BranchPattern, AlwaysTakenWhenExponentZero)
{
    BranchDesc desc{0, 1};
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_TRUE(BranchPattern::direction(desc, i));
    EXPECT_DOUBLE_EQ(BranchPattern::takenRate(desc), 1.0);
    EXPECT_DOUBLE_EQ(BranchPattern::transitionRate(desc), 0.0);
}

TEST(BranchPredictor, LearnsStronglyBiasedBranch)
{
    BranchPredictor bp(12, 8);
    // 1/64 taken rate, rare transitions: highly predictable.
    BranchDesc desc{6, 6};
    for (std::uint64_t i = 0; i < 20000; ++i)
        bp.predictAndUpdate(0x1000, BranchPattern::direction(desc, i));
    EXPECT_LT(bp.mispredictRate(), 0.06);
}

TEST(BranchPredictor, RandomDirectionsHarderThanBiased)
{
    // With truly random directions, a 50/50 branch is unpredictable
    // (~50% mispredicts) while a 95/5 branch is easy -- the taken
    // rate's effect on accuracy (Sec. 4.4.3).
    ditto::sim::Rng rng(77);
    BranchPredictor coin(12, 8);
    BranchPredictor biased(12, 8);
    for (int i = 0; i < 20000; ++i) {
        coin.predictAndUpdate(0x1000, rng.bernoulli(0.5));
        biased.predictAndUpdate(0x2000, rng.bernoulli(0.05));
    }
    EXPECT_GT(coin.mispredictRate(), 0.35);
    EXPECT_LT(biased.mispredictRate(), 0.12);
    EXPECT_GT(coin.mispredictRate(), 2 * biased.mispredictRate());
}

TEST(BranchPredictor, PeriodicAlternationIsLearnable)
{
    // An always-transitioning pattern (M=1, N=1) is periodic, and a
    // history-based predictor learns it -- unlike random 50/50.
    BranchPredictor bp(12, 8);
    BranchDesc hard{1, 1};
    for (std::uint64_t i = 0; i < 20000; ++i)
        bp.predictAndUpdate(0x1000, BranchPattern::direction(hard, i));
    EXPECT_LT(bp.mispredictRate(), 0.1);
}

TEST(BranchPredictor, AliasingDegradesWithManySites)
{
    // Few sites: history-based prediction works well. Many sites on a
    // tiny PHT: destructive aliasing raises mispredictions -- the
    // paper's "static branch count matters" observation.
    auto run = [](unsigned sites, unsigned log2Entries) {
        BranchPredictor bp(log2Entries, 8);
        BranchDesc desc{2, 3};
        std::uint64_t count = 0;
        for (std::uint64_t round = 0; round < 4000; ++round) {
            for (unsigned s = 0; s < sites; ++s) {
                bp.predictAndUpdate(0x4000 + s * 4,
                                    BranchPattern::direction(
                                        desc, count + s * 7));
            }
            ++count;
        }
        return bp.mispredictRate();
    };
    const double fewSites = run(4, 6);
    const double manySites = run(512, 6);
    EXPECT_GT(manySites, fewSites);
}

TEST(BranchPredictor, ResetRestoresColdState)
{
    BranchPredictor bp(10, 6);
    for (int i = 0; i < 1000; ++i)
        bp.predictAndUpdate(0x2000, true);
    bp.reset();
    EXPECT_EQ(bp.predictions(), 0u);
    EXPECT_EQ(bp.mispredictions(), 0u);
}

TEST(BranchPredictor, StatsCount)
{
    BranchPredictor bp(10, 6);
    for (int i = 0; i < 50; ++i)
        bp.predictAndUpdate(0x3000, i % 2 == 0);
    EXPECT_EQ(bp.predictions(), 50u);
    EXPECT_GT(bp.mispredictions(), 0u);
    bp.resetStats();
    EXPECT_EQ(bp.predictions(), 0u);
}

} // namespace
