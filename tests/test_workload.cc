/**
 * @file
 * Tests for load generation and stressors: arrival processes, closed
 * vs open loop semantics, endpoint mixes, and interference knobs.
 */

#include <gtest/gtest.h>

#include "app/deployment.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "profile/perf_report.h"
#include "workload/loadgen.h"
#include "workload/stressor.h"

namespace {

using namespace ditto;

app::ServiceSpec
echoService(unsigned iters = 5)
{
    app::ServiceSpec spec;
    spec.name = "echo";
    spec.threads.workers = 2;
    hw::BlockSpec bs;
    bs.label = "echo.h";
    bs.instCount = 64;
    bs.seed = 3;
    spec.blocks.push_back(hw::buildBlock(bs));
    app::EndpointSpec a;
    a.name = "a";
    a.handler.ops = {app::opCompute(0, iters)};
    a.responseBytesMin = a.responseBytesMax = 128;
    spec.endpoints.push_back(a);
    app::EndpointSpec b = a;
    b.name = "b";
    b.responseBytesMin = b.responseBytesMax = 4096;
    spec.endpoints.push_back(b);
    return spec;
}

struct World
{
    app::Deployment dep{41};
    os::Machine &machine;
    app::ServiceInstance &svc;

    World()
        : machine(dep.addMachine("n", hw::platformA())),
          svc(dep.deploy(echoService(), machine))
    {
        dep.wireAll();
    }
};

TEST(LoadGen, OpenLoopAchievesOfferedRate)
{
    World w;
    workload::LoadSpec load;
    load.qps = 3000;
    load.connections = 6;
    load.openLoop = true;
    workload::LoadGen gen(w.dep, w.svc, load, 9);
    gen.start();
    w.dep.runFor(sim::milliseconds(200));
    gen.beginMeasure();
    w.dep.runFor(sim::milliseconds(400));
    EXPECT_NEAR(gen.achievedQps(), 3000, 300);
}

TEST(LoadGen, PoissonArrivalsAreBursty)
{
    // Open-loop Poisson arrivals produce queueing even below
    // capacity: p99 must clearly exceed p50.
    World w;
    workload::LoadSpec load;
    load.qps = 4000;
    load.connections = 8;
    workload::LoadGen gen(w.dep, w.svc, load, 9);
    gen.start();
    w.dep.runFor(sim::milliseconds(400));
    EXPECT_GT(gen.latency().percentile(0.99),
              gen.latency().percentile(0.50));
}

TEST(LoadGen, ClosedLoopNeverExceedsOneOutstandingPerConn)
{
    // With 2 connections and closed loop, at most 2 requests can be
    // in flight: sent - completed <= 2 at the end of any quiescent
    // window.
    World w;
    workload::LoadSpec load;
    load.qps = 100000;  // absurd offered rate
    load.connections = 2;
    load.openLoop = false;
    workload::LoadGen gen(w.dep, w.svc, load, 9);
    gen.start();
    w.dep.runFor(sim::milliseconds(300));
    EXPECT_LE(gen.sent() - gen.completed(), 2u);
    // Latency bounded despite the absurd offered rate.
    EXPECT_LT(gen.latency().percentile(0.99), sim::milliseconds(5));
}

TEST(LoadGen, EndpointMixFollowsWeights)
{
    World w;
    workload::LoadSpec load;
    load.qps = 4000;
    load.connections = 6;
    load.endpoints = {{0, 0.75, 64, 64}, {1, 0.25, 64, 64}};
    workload::LoadGen gen(w.dep, w.svc, load, 9);
    gen.start();
    w.dep.runFor(sim::milliseconds(400));
    // Endpoint b responds with 4KB, a with 128B: tx bytes tell us
    // the realized mix.
    const double perReq =
        static_cast<double>(w.svc.stats().txBytes) /
        static_cast<double>(w.svc.stats().requests);
    const double expected = 0.75 * 128 + 0.25 * 4096;
    EXPECT_NEAR(perReq, expected, expected * 0.15);
}

TEST(LoadGen, StopCeasesArrivals)
{
    World w;
    workload::LoadSpec load;
    load.qps = 2000;
    load.connections = 4;
    workload::LoadGen gen(w.dep, w.svc, load, 9);
    gen.start();
    w.dep.runFor(sim::milliseconds(100));
    gen.stop();
    const auto sentAtStop = gen.sent();
    w.dep.runFor(sim::milliseconds(200));
    EXPECT_EQ(gen.sent(), sentAtStop);
}

TEST(LoadGen, SetQpsTakesEffectImmediately)
{
    // A pending open-loop arrival scheduled under the old (tiny)
    // rate must be rescheduled, not waited out: at 5 qps the next
    // arrival is ~200 ms away, so any burst within 40 ms of the
    // setQps call proves the reschedule happened.
    World w;
    workload::LoadSpec load;
    load.qps = 5;
    load.connections = 4;
    load.openLoop = true;
    workload::LoadGen gen(w.dep, w.svc, load, 9);
    gen.start();
    w.dep.runFor(sim::milliseconds(10));
    const auto sentBefore = gen.sent();
    gen.setQps(20000);
    w.dep.runFor(sim::milliseconds(40));
    EXPECT_GT(gen.sent(), sentBefore + 100);
}

TEST(LoadGen, RequestBytesWithinConfiguredRange)
{
    World w;
    workload::LoadSpec load;
    load.qps = 1000;
    load.connections = 2;
    load.endpoints = {{0, 1.0, 200, 400}};
    workload::LoadGen gen(w.dep, w.svc, load, 9);
    gen.start();
    w.dep.runFor(sim::milliseconds(300));
    const double perReq =
        static_cast<double>(w.svc.stats().rxBytes) /
        static_cast<double>(w.svc.stats().requests);
    EXPECT_GE(perReq, 200.0);
    EXPECT_LE(perReq, 400.0);
}

TEST(Stressor, KindsHaveNames)
{
    EXPECT_EQ(workload::stressKindName(workload::StressKind::Cpu),
              "HT");
    EXPECT_EQ(workload::stressKindName(workload::StressKind::Llc),
              "LLC");
}

TEST(Stressor, LlcStressorRaisesVictimMisses)
{
    auto llcMissRate = [](bool stressed) {
        app::Deployment dep(42);
        os::Machine &m = dep.addMachine("n", hw::platformA());
        // Victim with an LLC-resident working set.
        app::ServiceSpec spec = echoService(40);
        spec.blocks[0] = [] {
            hw::BlockSpec bs;
            bs.label = "echo.h";
            bs.instCount = 64;
            bs.memFraction = 0.5;
            bs.streams = {{12u << 20, hw::StreamKind::Random, false,
                           1.0}};
            bs.seed = 3;
            return hw::buildBlock(bs);
        }();
        app::ServiceInstance &svc = dep.deploy(spec, m);
        dep.wireAll();
        std::unique_ptr<workload::CacheStressor> stressor;
        if (stressed) {
            stressor = std::make_unique<workload::CacheStressor>(
                m, workload::StressKind::Llc, 10);
        }
        workload::LoadSpec load;
        load.qps = 2000;
        load.connections = 4;
        workload::LoadGen gen(dep, svc, load, 9);
        gen.start();
        dep.runFor(sim::milliseconds(150));
        dep.beginMeasureAll();
        dep.runFor(sim::milliseconds(200));
        return profile::snapshotService(svc).llcMissRate;
    };
    EXPECT_GT(llcMissRate(true), llcMissRate(false) + 0.05);
}

TEST(Stressor, NetHogReleasesBandwidthOnDestruction)
{
    app::Deployment dep(43);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    const double base = m.nic().effectiveBytesPerNs();
    {
        workload::NetStressor hog(m, 8.0);
        EXPECT_LT(m.nic().effectiveBytesPerNs(), base * 0.3);
    }
    EXPECT_DOUBLE_EQ(m.nic().effectiveBytesPerNs(), base);
}

} // namespace
