/**
 * @file
 * Tests for the multi-region layer: region registry + deployment
 * errors, WAN links (latency, bandwidth-independent ledgers, seeded
 * correlated loss bursts), prefer-local balancing and hedge locality,
 * region-scoped fault kinds, region-aware placement, and the region
 * failover monitor's RTO accounting -- plus bit-exact determinism of
 * a full failover scenario at any RunExecutor worker count.
 *
 * These tests carry the `region` ctest label; the determinism slice
 * also joins `parallel` so a -DDITTO_TSAN=ON build races multi-region
 * failover runs under TSan.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "app/deployment.h"
#include "app/service.h"
#include "cluster/balancer.h"
#include "cluster/failover.h"
#include "cluster/placer.h"
#include "cluster/region.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "obs/metrics.h"
#include "sim/run_executor.h"
#include "workload/loadgen.h"

namespace {

using namespace ditto;

hw::CodeBlock
tinyBlock(const std::string &label, std::uint64_t seed)
{
    hw::BlockSpec bs;
    bs.label = label;
    bs.instCount = 64;
    bs.seed = seed;
    return hw::buildBlock(bs);
}

app::ServiceSpec
apiSpec(const std::string &name = "api")
{
    app::ServiceSpec spec;
    spec.name = name;
    spec.threads.workers = 2;
    spec.blocks.push_back(tinyBlock(name + ".h", 3));
    app::EndpointSpec ep;
    ep.name = "get";
    ep.handler.ops = {app::opCompute(0, 5)};
    spec.endpoints.push_back(ep);
    return spec;
}

app::ServiceSpec
frontSpec(cluster::BalancerPolicy policy,
          sim::Time rpcDeadline = sim::milliseconds(8))
{
    app::ServiceSpec spec;
    spec.name = "front";
    spec.threads.workers = 4;
    spec.downstreams = {"api"};
    spec.blocks.push_back(tinyBlock("front.h", 4));
    app::EndpointSpec ep;
    ep.name = "page";
    ep.handler.ops = {app::opCompute(0, 3),
                      app::opRpc(0, 0, 128, 256),
                      app::opCompute(0, 3)};
    spec.endpoints.push_back(ep);
    spec.resilience.rpcDeadline = rpcDeadline;
    spec.balancing.defaultPolicy = policy;
    return spec;
}

workload::LoadSpec
clientLoad(double qps, sim::Time timeout)
{
    workload::LoadSpec load;
    load.qps = qps;
    load.connections = 4;
    load.openLoop = true;
    load.timeout = timeout;
    return load;
}

// ---------------------------------------------------------------------------
// Region registry + deployment error reporting
// ---------------------------------------------------------------------------

TEST(RegionDefaults, OffByDefault)
{
    app::Deployment dep(7);
    os::Machine &m = dep.addMachine("m0", hw::platformA());
    EXPECT_EQ(m.regionId(), 0u);
    EXPECT_EQ(dep.regionCount(), 1u);
    EXPECT_EQ(dep.regionName(0), "");
    EXPECT_TRUE(dep.network().wanLinks().empty());
    EXPECT_FALSE(dep.network().regionPartitioned(0, 1));
}

TEST(RegionErrors, UnknownRegionNamesOffenderAndRegion)
{
    app::Deployment dep(7);
    try {
        dep.addMachine("mx", hw::platformA(), "nowhere");
        FAIL() << "unknown region must throw";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("machine 'mx'"), std::string::npos)
            << what;
        EXPECT_NE(what.find("unknown region 'nowhere'"),
                  std::string::npos)
            << what;
    }

    dep.defineRegion("r0");
    dep.addMachine("m0", hw::platformA(), "r0");
    try {
        dep.deployInRegion(apiSpec(), "atlantis");
        FAIL() << "unknown region must throw";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("service 'api'"), std::string::npos)
            << what;
        EXPECT_NE(what.find("'atlantis'"), std::string::npos) << what;
    }

    dep.deployInRegion(apiSpec(), "r0");
    try {
        dep.addReplicaInRegion("api", "mars");
        FAIL() << "unknown region must throw";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("replica of service 'api'"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("'mars'"), std::string::npos) << what;
    }
}

TEST(RegionErrors, UnknownPinRegionNamesCallerEdgeAndRegion)
{
    app::Deployment dep(7);
    dep.defineRegion("r0");
    dep.addMachine("m0", hw::platformA(), "r0");
    dep.deployInRegion(apiSpec(), "r0");
    app::ServiceSpec front =
        frontSpec(cluster::BalancerPolicy::RoundRobin);
    front.balancing.pinRegion["api"] = "void";
    dep.deployInRegion(front, "r0");
    try {
        dep.wireAll();
        FAIL() << "unknown pin region must throw";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("service 'front'"), std::string::npos)
            << what;
        EXPECT_NE(what.find("downstream 'api'"), std::string::npos)
            << what;
        EXPECT_NE(what.find("unknown region 'void'"),
                  std::string::npos)
            << what;
    }
}

// ---------------------------------------------------------------------------
// WAN links: latency, ledgers, correlated bursts
// ---------------------------------------------------------------------------

TEST(RegionWan, CrossRegionLatencyAppliesAndLedgersBalance)
{
    app::Deployment dep(11);
    cluster::WanProfile wan;
    wan.baseLatency = sim::milliseconds(1);
    wan.latencySpread = 0;
    wan.seed = 3;
    const std::vector<std::uint32_t> ids = cluster::buildRegions(
        dep, {{"r0", 1}, {"r1", 1}}, wan);

    dep.deployInRegion(apiSpec(), "r1");
    dep.deployInRegion(frontSpec(cluster::BalancerPolicy::RoundRobin),
                       "r0");
    dep.wireAll();

    workload::LoadGen lg(dep, *dep.find("front"),
                         clientLoad(2000, sim::milliseconds(15)), 5);
    lg.start();
    dep.runFor(sim::milliseconds(20));
    lg.stop();
    dep.runFor(sim::milliseconds(20));

    ASSERT_GT(lg.completedOk(), 0u);
    // Request and response each cross the WAN once: >= 2ms round trip.
    EXPECT_GE(lg.latency().percentile(0.5), sim::milliseconds(2));

    // Exact per-directed-link ledgers, quiescent after the drain.
    for (const auto &key :
         {std::make_pair(ids[0], ids[1]),
          std::make_pair(ids[1], ids[0])}) {
        const os::WanLinkStats *ls =
            dep.network().wanLinkStats(key.first, key.second);
        ASSERT_NE(ls, nullptr);
        EXPECT_GT(ls->msgsSent, 0u);
        EXPECT_EQ(ls->msgsSent, ls->msgsDelivered + ls->msgsDropped);
        EXPECT_EQ(ls->msgsInFlight(), 0u);
        EXPECT_EQ(ls->bytesSent,
                  ls->bytesDelivered + ls->bytesDropped);
        EXPECT_EQ(ls->msgsDropped, 0u);  // no faults, no bursts
    }
}

/** Run one bursty two-region world and return the r0->r1 stats. */
os::WanLinkStats
burstyRun(std::uint64_t seed)
{
    app::Deployment dep(seed);
    cluster::WanProfile wan;
    wan.baseLatency = sim::microseconds(200);
    wan.latencySpread = 0;
    wan.burstMeanInterval = sim::milliseconds(1);
    wan.burstLength = sim::microseconds(300);
    wan.burstDropProb = 1.0;
    wan.seed = 9;
    const std::vector<std::uint32_t> ids = cluster::buildRegions(
        dep, {{"r0", 1}, {"r1", 1}}, wan);

    dep.deployInRegion(apiSpec(), "r1");
    dep.deployInRegion(frontSpec(cluster::BalancerPolicy::RoundRobin,
                                 sim::milliseconds(2)),
                       "r0");
    dep.wireAll();

    workload::LoadGen lg(dep, *dep.find("front"),
                         clientLoad(4000, sim::milliseconds(5)), 5);
    lg.start();
    dep.runFor(sim::milliseconds(20));
    lg.stop();
    dep.runFor(sim::milliseconds(20));
    return *dep.network().wanLinkStats(ids[0], ids[1]);
}

TEST(RegionWan, CorrelatedBurstsDropAndReplayBitIdentically)
{
    const os::WanLinkStats a = burstyRun(21);
    EXPECT_GT(a.msgsSent, 0u);
    EXPECT_GT(a.msgsDropped, 0u);  // bursts actually fire
    EXPECT_LT(a.msgsDropped, a.msgsSent);  // ... in windows, not always
    EXPECT_EQ(a.msgsSent, a.msgsDelivered + a.msgsDropped);

    // Burst schedules draw from a private seeded rng: same world,
    // same drops, bit for bit.
    const os::WanLinkStats b = burstyRun(21);
    EXPECT_EQ(a.msgsSent, b.msgsSent);
    EXPECT_EQ(a.msgsDelivered, b.msgsDelivered);
    EXPECT_EQ(a.msgsDropped, b.msgsDropped);
    EXPECT_EQ(a.bytesDropped, b.bytesDropped);
}

// ---------------------------------------------------------------------------
// Region-scoped fault kinds
// ---------------------------------------------------------------------------

TEST(RegionFaults, PartitionIsolationOutageAndUnresolvedTargets)
{
    app::Deployment dep(13);
    cluster::WanProfile wan;
    wan.latencySpread = 0;
    const std::vector<std::uint32_t> ids = cluster::buildRegions(
        dep, {{"r0", 1}, {"r1", 1}, {"r2", 1}}, wan);

    fault::FaultPlan plan;
    // b empty: isolate r1 from every other region.
    plan.regionPartition("r1", "", sim::microseconds(100),
                         sim::milliseconds(1));
    plan.regionOutage("r2", sim::microseconds(100),
                      sim::milliseconds(1));
    plan.regionOutage("asgard", 0, sim::milliseconds(1));

    fault::FaultInjector inj(dep);
    inj.install(plan);

    dep.runFor(sim::microseconds(500));
    EXPECT_TRUE(dep.network().regionPartitioned(ids[0], ids[1]));
    EXPECT_TRUE(dep.network().regionPartitioned(ids[1], ids[2]));
    EXPECT_FALSE(dep.network().regionPartitioned(ids[0], ids[2]));
    for (os::Machine *m : dep.machinesInRegion(ids[2]))
        EXPECT_TRUE(m->down());
    for (os::Machine *m : dep.machinesInRegion(ids[0]))
        EXPECT_FALSE(m->down());
    EXPECT_EQ(inj.stats().unresolvedTargets, 1u);  // "asgard"

    dep.runFor(sim::milliseconds(2));
    EXPECT_FALSE(dep.network().regionPartitioned(ids[0], ids[1]));
    for (os::Machine *m : dep.machinesInRegion(ids[2]))
        EXPECT_FALSE(m->down());
    EXPECT_EQ(inj.stats().windowsActive(), 0u);
}

// ---------------------------------------------------------------------------
// Prefer-local balancing + region-aware placement
// ---------------------------------------------------------------------------

TEST(Balancer, PreferLocalRoundRobinsLocallyAndSpills)
{
    cluster::EdgeBalancer bal;
    bal.init(cluster::BalancerPolicy::PreferLocal, 4, 1);
    auto all = [](std::size_t) { return true; };
    auto local = [](std::size_t i) { return i < 2; };

    // Round-robin over the local pair while it is usable.
    EXPECT_EQ(bal.pick(0, all, local), 0u);
    EXPECT_EQ(bal.pick(0, all, local), 1u);
    EXPECT_EQ(bal.pick(0, all, local), 0u);

    // No usable local replica: spill over to the remote set.
    auto remoteOnly = [](std::size_t i) { return i >= 2; };
    EXPECT_EQ(bal.pick(0, remoteOnly, local), 2u);
    EXPECT_EQ(bal.pick(0, remoteOnly, local), 3u);

    // Without locality information the policy degenerates to plain
    // round-robin (the region-free runtime stays untouched).
    cluster::EdgeBalancer flat;
    flat.init(cluster::BalancerPolicy::PreferLocal, 3, 1);
    EXPECT_EQ(flat.pick(0, all), 0u);
    EXPECT_EQ(flat.pick(0, all), 1u);
    EXPECT_EQ(flat.pick(0, all), 2u);
}

TEST(Placer, SpreadAlternatesRegionsAndInRegionThrows)
{
    app::Deployment dep(17);
    dep.defineRegion("r0");
    dep.defineRegion("r1");
    os::Machine &a = dep.addMachine("m0", hw::platformA(), "r0");
    os::Machine &b = dep.addMachine("m1", hw::platformA(), "r1");

    cluster::Placer placer;
    placer.addMachine(a, 2);
    placer.addMachine(b, 2);

    EXPECT_EQ(&placer.placeSpread(), &a);  // tie -> lowest region id
    EXPECT_EQ(&placer.placeSpread(), &b);  // r1 now has more free
    EXPECT_EQ(&placer.placeSpread(), &a);
    EXPECT_EQ(&placer.placeSpread(), &b);

    try {
        placer.placeInRegion(99);
        FAIL() << "empty region must throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("region 99"),
                  std::string::npos)
            << e.what();
    }
}

TEST(PreferLocal, TrafficStaysLocalUntilLocalReplicaDies)
{
    app::Deployment dep(19);
    cluster::WanProfile wan;
    wan.baseLatency = sim::microseconds(300);
    wan.latencySpread = 0;
    cluster::buildRegions(dep, {{"r0", 2}, {"r1", 1}}, wan);

    dep.deployInRegion(apiSpec(), "r0");
    dep.addReplicaInRegion("api", "r1");
    dep.deployInRegion(frontSpec(cluster::BalancerPolicy::PreferLocal),
                       "r0");
    dep.wireAll();

    const auto &replicas = dep.replicas("api");
    ASSERT_EQ(replicas.size(), 2u);
    app::ServiceInstance *localApi = replicas[0];
    app::ServiceInstance *remoteApi = replicas[1];

    workload::LoadGen lg(dep, *dep.find("front"),
                         clientLoad(2000, sim::milliseconds(15)), 5);
    lg.start();
    dep.runFor(sim::milliseconds(10));

    // Healthy local replica: every request stays in-region.
    EXPECT_GT(localApi->stats().requests, 0u);
    EXPECT_EQ(remoteApi->stats().requests, 0u);

    // Kill the local replica's machine: traffic spills to r1.
    localApi->machine().setDown(true);
    const std::uint64_t localBefore = localApi->stats().requests;
    dep.runFor(sim::milliseconds(10));
    lg.stop();
    dep.runFor(sim::milliseconds(10));
    EXPECT_GT(remoteApi->stats().requests, 0u);
    EXPECT_EQ(localApi->stats().requests, localBefore);
}

// ---------------------------------------------------------------------------
// Hedge locality
// ---------------------------------------------------------------------------

struct HedgeCounts
{
    std::uint64_t hedges = 0;
    std::vector<std::uint64_t> perReplica;
};

/**
 * Front (r0, prefer-local, aggressive hedging) calling api with
 * `localReplicas` instances in r0 and one in r1. When `killLocal`,
 * every r0 api machine is downed mid-run.
 */
HedgeCounts
hedgeRun(unsigned localReplicas, bool killLocal, std::uint64_t seed)
{
    app::Deployment dep(seed);
    cluster::WanProfile wan;
    wan.baseLatency = sim::microseconds(300);
    wan.latencySpread = 0;
    cluster::buildRegions(
        dep, {{"r0", localReplicas + 1}, {"r1", 1}}, wan);

    dep.deployInRegion(apiSpec(), "r0");
    for (unsigned i = 1; i < localReplicas; ++i)
        dep.addReplicaInRegion("api", "r0");
    dep.addReplicaInRegion("api", "r1");
    app::ServiceSpec front =
        frontSpec(cluster::BalancerPolicy::PreferLocal);
    front.resilience.hedge.enabled = true;
    front.resilience.hedge.delay = sim::microseconds(10);
    dep.deployInRegion(front, "r0");
    dep.wireAll();

    workload::LoadGen lg(dep, *dep.find("front"),
                         clientLoad(2000, sim::milliseconds(15)), 5);
    lg.start();
    if (killLocal) {
        // Down every r0-hosted api machine at t=5ms.
        dep.events().scheduleAt(sim::milliseconds(5), [&dep] {
            const std::uint32_t home =
                dep.find("front")->machine().regionId();
            for (app::ServiceInstance *r : dep.replicas("api")) {
                if (r->machine().regionId() == home)
                    r->machine().setDown(true);
            }
        });
    }
    dep.runFor(sim::milliseconds(10));
    lg.stop();
    dep.runFor(sim::milliseconds(10));

    HedgeCounts out;
    out.hedges = dep.find("front")->stats().rpcHedges;
    for (app::ServiceInstance *r : dep.replicas("api"))
        out.perReplica.push_back(r->stats().requests);
    return out;
}

TEST(HedgeLocality, HedgesStayInRegionWhileALocalReplicaLives)
{
    // Two local replicas: hedges fire and both stay local -- the r1
    // replica (last in the group) never sees a request.
    const HedgeCounts two = hedgeRun(2, false, 23);
    EXPECT_GT(two.hedges, 0u);
    ASSERT_EQ(two.perReplica.size(), 3u);
    EXPECT_GT(two.perReplica[0], 0u);
    EXPECT_GT(two.perReplica[1], 0u);  // hedge target
    EXPECT_EQ(two.perReplica[2], 0u);  // remote: never crossed

    // One local replica: the hedge is suppressed rather than crossing
    // the WAN -- no hedges, still no cross-region traffic.
    const HedgeCounts one = hedgeRun(1, false, 23);
    EXPECT_EQ(one.hedges, 0u);
    ASSERT_EQ(one.perReplica.size(), 2u);
    EXPECT_EQ(one.perReplica[1], 0u);

    // No local replica alive: calls (and hedges) may cross regions.
    const HedgeCounts dead = hedgeRun(1, true, 23);
    ASSERT_EQ(dead.perReplica.size(), 2u);
    EXPECT_GT(dead.perReplica[1], 0u);
}

TEST(HedgeLocality, ChosenReplicasPinnedPerSeed)
{
    const HedgeCounts a = hedgeRun(2, false, 29);
    const HedgeCounts b = hedgeRun(2, false, 29);
    EXPECT_EQ(a.hedges, b.hedges);
    EXPECT_EQ(a.perReplica, b.perReplica);
}

// ---------------------------------------------------------------------------
// Region failover: RTO metric, span, determinism
// ---------------------------------------------------------------------------

struct FailoverOutcome
{
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t failovers = 0;
    std::uint64_t recoveries = 0;
    sim::Time rtoNs = 0;
    std::uint64_t failoverCounterR1 = 0;
    std::uint64_t failoverSpans = 0;
    std::uint32_t spanRegion = 0;
    sim::Time spanRtoNs = 0;
};

/**
 * The acceptance scenario: api replicated over three serving regions
 * r1..r3, front homed in r0, region-outage window on r1. The monitor
 * must detect, retire r1 (failover), and reactivate it on recovery.
 */
FailoverOutcome
failoverScenario(std::uint64_t seed)
{
    app::Deployment dep(seed);
    cluster::WanProfile wan;
    wan.baseLatency = sim::microseconds(300);
    wan.latencySpread = sim::microseconds(100);
    wan.seed = 7;
    const std::vector<std::uint32_t> ids = cluster::buildRegions(
        dep, {{"r0", 1}, {"r1", 1}, {"r2", 1}, {"r3", 1}}, wan);

    dep.deployInRegion(apiSpec(), "r1");
    dep.addReplicaInRegion("api", "r2");
    dep.addReplicaInRegion("api", "r3");
    dep.deployInRegion(frontSpec(cluster::BalancerPolicy::PreferLocal),
                       "r0");
    dep.wireAll();

    obs::MetricsRegistry metrics;
    cluster::RegionFailoverSpec fs;
    fs.period = sim::microseconds(500);
    fs.failureThreshold = 2;
    fs.viewRegion = ids[0];
    cluster::RegionFailoverMonitor monitor(dep, "api", metrics, fs);
    monitor.start();

    fault::FaultPlan plan;
    plan.regionOutage("r1", sim::milliseconds(5),
                      sim::milliseconds(10));
    fault::FaultInjector inj(dep);
    inj.install(plan);

    workload::LoadGen lg(dep, *dep.find("front"),
                         clientLoad(2000, sim::milliseconds(15)), 5);
    lg.start();
    dep.runFor(sim::milliseconds(25));
    lg.stop();
    dep.runFor(sim::milliseconds(15));

    FailoverOutcome out;
    out.sent = lg.sent();
    out.ok = lg.completedOk();
    out.timedOut = lg.timedOut();
    out.failovers = monitor.stats().failovers;
    out.recoveries = monitor.stats().recoveries;
    out.rtoNs = monitor.stats().lastRtoNs;
    out.failoverCounterR1 =
        metrics
            .counter("ditto_region_failover_total",
                     {{"service", "api"}, {"region", "r1"}})
            .value();
    for (const trace::Span &span : dep.tracer().spans()) {
        if (span.service != "failover:api")
            continue;
        out.failoverSpans++;
        out.spanRegion = span.endpoint;
        out.spanRtoNs = span.end - span.start;
    }
    return out;
}

TEST(Failover, RegionOutageRetiresRegionAndMeasuresRto)
{
    const FailoverOutcome out = failoverScenario(31);

    // Detection -> reroute happened, and the region came back.
    EXPECT_EQ(out.failovers, 1u);
    EXPECT_EQ(out.recoveries, 1u);
    EXPECT_GT(out.rtoNs, 0u);
    EXPECT_LE(out.rtoNs, sim::milliseconds(5));

    // Traffic kept flowing: the outage did not take the client down.
    EXPECT_GT(out.sent, 0u);
    EXPECT_GT(out.ok, out.sent * 9 / 10);

    // The counter and the span carry the same story: the span's
    // interval IS the RTO, its endpoint field the failed region.
    EXPECT_EQ(out.failoverCounterR1, 1u);
    EXPECT_EQ(out.failoverSpans, 1u);
    EXPECT_EQ(out.spanRtoNs, out.rtoNs);
    // Region ids are definition-ordered: default=0, r0=1, r1=2.
    EXPECT_EQ(out.spanRegion, 2u);
}

TEST(RegionDeterminism, FailoverScenarioIdenticalAcrossJobs)
{
    const std::vector<std::uint64_t> seeds = {41, 42, 43};
    const auto run = [&](sim::RunExecutor &ex) {
        std::vector<std::function<FailoverOutcome()>> tasks;
        for (std::uint64_t s : seeds)
            tasks.push_back([s] { return failoverScenario(s); });
        return ex.runOrdered<FailoverOutcome>(std::move(tasks));
    };
    sim::RunExecutor serial(1);
    sim::RunExecutor pool(3);
    const std::vector<FailoverOutcome> a = run(serial);
    const std::vector<FailoverOutcome> b = run(pool);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].sent, b[i].sent);
        EXPECT_EQ(a[i].ok, b[i].ok);
        EXPECT_EQ(a[i].timedOut, b[i].timedOut);
        EXPECT_EQ(a[i].failovers, b[i].failovers);
        EXPECT_EQ(a[i].recoveries, b[i].recoveries);
        EXPECT_EQ(a[i].rtoNs, b[i].rtoNs);
        EXPECT_EQ(a[i].spanRtoNs, b[i].spanRtoNs);
    }
}

} // namespace
