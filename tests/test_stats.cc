/**
 * @file
 * Unit tests for histograms, running stats, and table formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/histogram.h"
#include "stats/table.h"

namespace {

using namespace ditto::stats;

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombined)
{
    RunningStat a;
    RunningStat b;
    RunningStat all;
    for (int i = 0; i < 100; ++i) {
        const double x = i * 0.37;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeIntoEmpty)
{
    RunningStat a;
    RunningStat b;
    b.add(3.0);
    b.add(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(LatencyHistogram, EmptyReturnsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, ExactForSmallValues)
{
    LatencyHistogram h;
    for (std::uint64_t v = 0; v < 32; ++v)
        h.record(v);
    // Sub-bucket region is exact.
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 31u);
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.percentile(1.0), 31u);
}

TEST(LatencyHistogram, PercentileRelativeError)
{
    LatencyHistogram h;
    // 1000 values uniform in [1000, 100000].
    for (int i = 0; i < 1000; ++i)
        h.record(1000 + static_cast<std::uint64_t>(i) * 99);
    const auto p50 = h.percentile(0.50);
    const auto p99 = h.percentile(0.99);
    EXPECT_NEAR(static_cast<double>(p50), 50500.0, 50500.0 * 0.05);
    EXPECT_NEAR(static_cast<double>(p99), 99010.0, 99010.0 * 0.05);
    EXPECT_NEAR(h.mean(), 50500.0, 50500.0 * 0.05);
}

TEST(LatencyHistogram, ExtremeQuantilesAreExactOutsideSubBucketRegion)
{
    // 4095 sits mid-bucket once values leave the exact (< 32) region;
    // p0/p100 must still report the tracked extrema, not a midpoint.
    LatencyHistogram h;
    h.record(64);
    h.record(100);
    h.record(4095);
    EXPECT_EQ(h.percentile(0.0), 64u);
    EXPECT_EQ(h.percentile(1.0), 4095u);
    // Out-of-range q clamps to the extremes.
    EXPECT_EQ(h.percentile(-0.5), 64u);
    EXPECT_EQ(h.percentile(1.5), 4095u);
}

TEST(LatencyHistogram, SingleSampleEveryQuantile)
{
    LatencyHistogram h;
    h.record(777777);
    for (double q : {0.0, 0.001, 0.5, 0.99, 1.0}) {
        const auto v = h.percentile(q);
        // One sample: every quantile is that sample, within bucket
        // resolution; extremes are exact.
        EXPECT_NEAR(static_cast<double>(v), 777777.0, 777777.0 * 0.03);
    }
    EXPECT_EQ(h.percentile(0.0), 777777u);
    EXPECT_EQ(h.percentile(1.0), 777777u);
}

TEST(LatencyHistogram, AllMassInOneBucket)
{
    LatencyHistogram h;
    h.record(5000, 1000000);
    EXPECT_EQ(h.percentile(0.0), 5000u);
    EXPECT_EQ(h.percentile(1.0), 5000u);
    for (double q : {0.01, 0.5, 0.99})
        EXPECT_NEAR(static_cast<double>(h.percentile(q)), 5000.0,
                    5000.0 * 0.03);
}

TEST(LatencyHistogram, TopOfRangeDoesNotOverflow)
{
    LatencyHistogram h;
    h.record(UINT64_MAX);
    h.record(UINT64_MAX - 1);
    h.record(1);
    EXPECT_EQ(h.percentile(1.0), UINT64_MAX);
    EXPECT_EQ(h.percentile(0.0), 1u);
    EXPECT_GE(h.percentile(0.9), UINT64_MAX / 2);
}

TEST(LatencyHistogram, RankIsCeilOfQTimesN)
{
    // 64 exact values 0..63 (width-1 buckets, no rounding): the
    // percentile is the ceil(q*n)-th order statistic. p50 of an even
    // count must be the lower middle (rank 32 -> value 31), and the
    // floating-point product 0.3*64=19.2 must round *up* to rank 20,
    // not truncate to 19.
    LatencyHistogram h;
    for (std::uint64_t v = 0; v < 64; ++v)
        h.record(v);
    EXPECT_EQ(h.percentile(0.5), 31u);
    EXPECT_EQ(h.percentile(0.3), 19u);
    EXPECT_EQ(h.percentile(0.01), 0u);
    EXPECT_EQ(h.percentile(0.99), 63u);
}

TEST(LatencyHistogram, WeightedRecord)
{
    LatencyHistogram h;
    h.record(100, 99);
    h.record(10000, 1);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 100.0, 5.0);
    EXPECT_GT(h.percentile(0.999), 9000u);
}

TEST(LatencyHistogram, MergeAddsCounts)
{
    LatencyHistogram a;
    LatencyHistogram b;
    a.record(500);
    b.record(1500);
    b.record(2500);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.minValue(), 500u);
    EXPECT_GE(a.maxValue(), 2400u);
}

TEST(LatencyHistogram, ResetClears)
{
    LatencyHistogram h;
    h.record(123);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.99), 0u);
}

TEST(LatencyHistogram, MonotonePercentiles)
{
    LatencyHistogram h;
    for (int i = 1; i <= 10000; ++i)
        h.record(static_cast<std::uint64_t>(i) * i);
    std::uint64_t prev = 0;
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
        const auto v = h.percentile(q);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(LatencyHistogramSince, EmptyWindowIsAllZero)
{
    LatencyHistogram h;
    h.record(1000);
    h.record(2000);
    const LatencyHistogram w = h.since(h);  // baseline == current
    EXPECT_EQ(w.count(), 0u);
    EXPECT_EQ(w.percentile(0.5), 0u);
    EXPECT_EQ(w.percentile(1.0), 0u);
    EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

TEST(LatencyHistogramSince, SingleBucketBeyondBaselineClaimsExactMax)
{
    // All window mass lands above everything in the baseline: the
    // refinement claims the cumulative histogram's exact maximum.
    // The other extreme stays at bucket resolution (min/max re-order
    // when the exact value sits below its bucket's midpoint).
    LatencyHistogram h;
    h.record(100);
    const LatencyHistogram baseline = h;
    h.record(777777);
    const LatencyHistogram w = h.since(baseline);
    EXPECT_EQ(w.count(), 1u);
    const auto lo = w.percentile(0.0);
    const auto hi = w.percentile(1.0);
    EXPECT_TRUE(lo == 777777u || hi == 777777u);
    EXPECT_LE(lo, hi);
    for (double q : {0.0, 0.01, 0.5, 0.99, 1.0})
        EXPECT_NEAR(static_cast<double>(w.percentile(q)), 777777.0,
                    777777.0 * 0.03);
}

TEST(LatencyHistogramSince, WindowBelowBaselineRangeClaimsExactMin)
{
    // Mirror case: window mass entirely below the baseline's values,
    // so the exact minimum is derivable (it arrived in the window).
    LatencyHistogram h;
    h.record(900000);
    const LatencyHistogram baseline = h;
    h.record(4321);
    const LatencyHistogram w = h.since(baseline);
    EXPECT_EQ(w.count(), 1u);
    const auto lo = w.percentile(0.0);
    const auto hi = w.percentile(1.0);
    EXPECT_TRUE(lo == 4321u || hi == 4321u);
    EXPECT_LE(lo, hi);
    for (double q : {0.0, 0.5, 1.0})
        EXPECT_NEAR(static_cast<double>(w.percentile(q)), 4321.0,
                    4321.0 * 0.03);
}

TEST(LatencyHistogramSince, WindowStraddlingBaselineIsExactAtBothEnds)
{
    // Window mass strictly below AND strictly above every baseline
    // value: both refinements fire and the window's extrema are the
    // cumulative histogram's exact min and max.
    LatencyHistogram h;
    h.record(5000);
    const LatencyHistogram baseline = h;
    h.record(100);
    h.record(777777);
    const LatencyHistogram w = h.since(baseline);
    EXPECT_EQ(w.count(), 2u);
    EXPECT_EQ(w.percentile(0.0), 100u);
    EXPECT_EQ(w.percentile(1.0), 777777u);
}

TEST(LatencyHistogramSince, SharedBucketFallsBackToMidpoint)
{
    // Baseline already holds mass in the window's bucket: exact
    // extrema are not derivable, so the window reports values within
    // the bucket's bounds (midpoint resolution).
    LatencyHistogram h;
    h.record(5000);
    const LatencyHistogram baseline = h;
    h.record(5100);  // same bucket as 5000
    const LatencyHistogram w = h.since(baseline);
    EXPECT_EQ(w.count(), 1u);
    EXPECT_NEAR(static_cast<double>(w.percentile(0.5)), 5100.0,
                5100.0 * 0.04);
    EXPECT_NEAR(static_cast<double>(w.percentile(1.0)), 5100.0,
                5100.0 * 0.04);
}

TEST(LatencyHistogramSince, ResetBetweenSnapshotsYieldsEmptyWindow)
{
    // A shrunken counter means a reset happened: the delta is
    // meaningless, so the window reports nothing rather than garbage.
    LatencyHistogram h;
    h.record(1000);
    h.record(1000);
    const LatencyHistogram baseline = h;
    h.reset();
    h.record(1000);
    const LatencyHistogram w = h.since(baseline);
    EXPECT_EQ(w.count(), 0u);
    EXPECT_EQ(w.percentile(0.99), 0u);
}

TEST(LatencyHistogramSince, WindowCountAndMeanTrackDeltas)
{
    LatencyHistogram h;
    for (int i = 0; i < 100; ++i)
        h.record(1000);
    const LatencyHistogram baseline = h;
    for (int i = 0; i < 50; ++i)
        h.record(9000);
    const LatencyHistogram w = h.since(baseline);
    EXPECT_EQ(w.count(), 50u);
    EXPECT_NEAR(w.mean(), 9000.0, 9000.0 * 0.04);
    EXPECT_EQ(h.count(), 150u);  // cumulative histogram untouched
}

TEST(TablePrinter, RendersAlignedCells)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addSeparator();
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("| alpha"), std::string::npos);
    EXPECT_NE(out.find("| 22"), std::string::npos);
    // Separator renders as a rule, not a row.
    EXPECT_EQ(out.find("\x01"), std::string::npos);
}

TEST(TablePrinter, HandlesShortRows)
{
    TablePrinter t({"a", "b", "c"});
    t.addRow({"x"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("| x"), std::string::npos);
}

TEST(Format, Helpers)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatPercent(0.1234, 1), "12.3%");
    EXPECT_EQ(formatBytes(2048), "2.0KB");
    EXPECT_EQ(formatBytes(3.5 * 1024 * 1024), "3.5MB");
    EXPECT_EQ(formatRate(2500000, "B"), "2.50MB/s");
}

} // namespace
