/**
 * @file
 * Unit tests for the simulation core: RNG, distributions, events.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "sim/distributions.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace {

using namespace ditto::sim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a() == b();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(Rng, UniformIntUnbiasedSmallRange)
{
    Rng rng(9);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 30000; ++i)
        counts[rng.uniformInt(std::uint64_t{3})]++;
    EXPECT_EQ(counts.size(), 3u);
    for (const auto &[v, c] : counts) {
        EXPECT_LT(v, 3u);
        EXPECT_NEAR(c, 10000, 500);
    }
}

TEST(Rng, UniformIntInclusiveRange)
{
    Rng rng(10);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(std::int64_t{5}, std::int64_t{8});
        ASSERT_GE(v, 5);
        ASSERT_LE(v, 8);
    }
    // Degenerate range returns the bound.
    EXPECT_EQ(rng.uniformInt(std::int64_t{4}, std::int64_t{4}), 4);
    EXPECT_EQ(rng.uniformInt(std::int64_t{9}, std::int64_t{3}), 9);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(11);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(250.0);
    EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, NormalMoments)
{
    Rng rng(12);
    double sum = 0;
    double sq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(10.0, 3.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, PoissonMeanSmallAndLarge)
{
    Rng rng(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(3.5));
    EXPECT_NEAR(sum / n, 3.5, 0.1);
    sum = 0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(80.0));
    EXPECT_NEAR(sum / n, 80.0, 0.5);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(14);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(20);
    Rng b = a.split();
    // Streams diverge.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a() == b();
    EXPECT_LT(same, 3);
}

TEST(ZipfDist, UniformWhenThetaZero)
{
    Rng rng(31);
    ZipfDist zipf(10, 0.0);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 50000; ++i)
        counts[zipf.sample(rng)]++;
    for (const auto &[v, c] : counts) {
        EXPECT_LT(v, 10u);
        EXPECT_NEAR(c, 5000, 400);
    }
}

TEST(ZipfDist, SkewedFavorsLowRanks)
{
    Rng rng(32);
    ZipfDist zipf(1000, 0.99);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 50000; ++i)
        counts[zipf.sample(rng)]++;
    // Rank 0 should dominate any high rank by a wide margin.
    EXPECT_GT(counts[0], 2000);
    int tail = 0;
    for (const auto &[v, c] : counts) {
        if (v > 900)
            tail += c;
    }
    EXPECT_LT(tail, counts[0]);
}

TEST(EmpiricalDist, SamplesProportionally)
{
    Rng rng(33);
    EmpiricalDist dist;
    dist.add(1, 1.0);
    dist.add(2, 3.0);
    EXPECT_FALSE(dist.empty());
    EXPECT_DOUBLE_EQ(dist.totalWeight(), 4.0);
    int twos = 0;
    for (int i = 0; i < 40000; ++i)
        twos += dist.sample(rng) == 2;
    EXPECT_NEAR(twos / 40000.0, 0.75, 0.02);
    EXPECT_NEAR(dist.mean(), 1.75, 1e-9);
    EXPECT_NEAR(dist.probabilityOf(2), 0.75, 1e-9);
}

TEST(EmpiricalDist, IgnoresNonPositiveWeights)
{
    EmpiricalDist dist;
    dist.add(5, 0.0);
    dist.add(6, -1.0);
    EXPECT_TRUE(dist.empty());
    EXPECT_EQ(dist.size(), 0u);
}

TEST(RangeDist, SamplesWithinBuckets)
{
    Rng rng(34);
    RangeDist dist;
    dist.add(10.0, 20.0, 1.0);
    dist.add(100.0, 200.0, 1.0);
    for (int i = 0; i < 1000; ++i) {
        const double x = dist.sample(rng);
        EXPECT_TRUE((x >= 10 && x < 20) || (x >= 100 && x < 200));
    }
    EXPECT_NEAR(dist.mean(), (15.0 + 150.0) / 2, 1e-9);
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleAt(30, [&] { order.push_back(3); });
    q.scheduleAt(10, [&] { order.push_back(1); });
    q.scheduleAt(20, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, FifoForEqualTimestamps)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.scheduleAt(100, [&order, i] { order.push_back(i); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    const EventId id = q.scheduleAt(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));  // double-cancel is a no-op
    q.runAll();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    q.scheduleAt(10, [&] { ++count; });
    q.scheduleAt(20, [&] { ++count; });
    q.scheduleAt(30, [&] { ++count; });
    EXPECT_EQ(q.runUntil(20), 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 20u);
    q.runAll();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, EventsScheduledDuringRun)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            q.scheduleAfter(10, chain);
    };
    q.scheduleAt(0, chain);
    q.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, CancelAfterFireReturnsFalse)
{
    EventQueue q;
    bool ran = false;
    const EventId id = q.scheduleAt(10, [&] { ran = true; });
    q.runAll();
    EXPECT_TRUE(ran);
    EXPECT_FALSE(q.cancel(id));  // already fired; not cancellable
}

TEST(EventQueue, CancelStaleIdAfterSlotReuse)
{
    // Cancelling an id whose slot has been recycled must not touch
    // the new occupant (the sequence tag disambiguates).
    EventQueue q;
    const EventId dead = q.scheduleAt(10, [] {});
    EXPECT_TRUE(q.cancel(dead));  // slot returns to the free list
    bool ran = false;
    q.scheduleAt(20, [&] { ran = true; });  // likely reuses the slot
    EXPECT_FALSE(q.cancel(dead));  // stale id: must be rejected
    q.runAll();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, CancelUpdatesSizeAndKeepsFifoOfSurvivors)
{
    EventQueue q;
    std::vector<int> order;
    std::vector<EventId> ids;
    for (int i = 0; i < 6; ++i)
        ids.push_back(
            q.scheduleAt(100, [&order, i] { order.push_back(i); }));
    EXPECT_EQ(q.size(), 6u);
    EXPECT_TRUE(q.cancel(ids[1]));
    EXPECT_TRUE(q.cancel(ids[4]));
    EXPECT_EQ(q.size(), 4u);  // size reflects cancellation eagerly
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelHeavyChurnReusesSlots)
{
    // Schedule/cancel churn far beyond the live population: the slot
    // pool must recycle instead of growing without bound, and stale
    // heap entries must not break ordering of survivors.
    EventQueue q;
    int fired = 0;
    for (int round = 0; round < 1000; ++round) {
        const EventId timeout = q.scheduleAt(
            static_cast<Time>(1000 + round), [] { FAIL(); });
        q.scheduleAt(static_cast<Time>(round), [&] { ++fired; });
        EXPECT_TRUE(q.cancel(timeout));
    }
    q.runAll();
    EXPECT_EQ(fired, 1000);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ScheduleInPastClampsToNow)
{
    EventQueue q;
    q.scheduleAt(100, [] {});
    q.runAll();
    EXPECT_EQ(q.now(), 100u);
    bool ran = false;
    q.scheduleAt(50, [&] { ran = true; });  // in the past
    q.runAll();
    EXPECT_TRUE(ran);
    EXPECT_EQ(q.now(), 100u);  // did not go backwards
}

TEST(Time, UnitConversions)
{
    EXPECT_EQ(microseconds(1), 1000u);
    EXPECT_EQ(milliseconds(1), 1000000u);
    EXPECT_EQ(seconds(1), 1000000000u);
    EXPECT_DOUBLE_EQ(toMilliseconds(milliseconds(5)), 5.0);
    EXPECT_DOUBLE_EQ(toSeconds(seconds(2)), 2.0);
    EXPECT_DOUBLE_EQ(toMicroseconds(microseconds(7)), 7.0);
}

// ---- wheel-vs-heap differential tests -------------------------------
//
// Both timer backends must execute the same workload in exactly the
// same (when, sequence) order -- the bit-identical-output contract of
// DESIGN.md §8. Each workload below is generated once from a seed and
// replayed verbatim against a Wheel and a Heap queue; the per-event
// execution logs (label, now) and executedCount() must match.

/** One generated timer workload action. */
struct DiffOp
{
    enum Kind
    {
        Schedule,    //!< scheduleAt(when, <log label>)
        Cancel,      //!< cancel the `target`-th scheduled event
        RunUntil,    //!< runUntil(when)
        RunSome,     //!< runOne() x target
    };
    Kind kind;
    Time when = 0;
    std::size_t target = 0;
};

/** Replay `ops` on one queue; returns the execution log. */
std::vector<std::pair<std::size_t, Time>>
replayOps(EventQueue &q, const std::vector<DiffOp> &ops)
{
    std::vector<std::pair<std::size_t, Time>> log;
    std::vector<EventId> ids;
    std::size_t nextLabel = 0;
    // Self-scheduling callbacks: every 5th event re-arms a follow-up
    // (two at the *same* timestamp for the FIFO tie-break), so the
    // backends also agree on events scheduled mid-drain.
    std::function<void(std::size_t)> fire = [&](std::size_t label) {
        log.emplace_back(label, q.now());
        if (label % 5 == 0 && label < 1u << 20) {
            const std::size_t child = label + (1u << 20);
            q.scheduleAfter(17, [&fire, child] { fire(child); });
            q.scheduleAfter(17, [&fire, child] { fire(child + 1); });
        }
    };
    for (const DiffOp &op : ops) {
        switch (op.kind) {
        case DiffOp::Schedule: {
            const std::size_t label = nextLabel++;
            ids.push_back(
                q.scheduleAt(op.when, [&fire, label] { fire(label); }));
            break;
        }
        case DiffOp::Cancel:
            if (!ids.empty())
                q.cancel(ids[op.target % ids.size()]);
            break;
        case DiffOp::RunUntil:
            q.runUntil(op.when);
            break;
        case DiffOp::RunSome:
            for (std::size_t i = 0; i < op.target; ++i)
                q.runOne();
            break;
        }
    }
    q.runAll();
    return log;
}

void
expectBackendsAgree(const std::vector<DiffOp> &ops)
{
    EventQueue wheel(EventQueue::Backend::Wheel);
    EventQueue heap(EventQueue::Backend::Heap);
    const auto wheelLog = replayOps(wheel, ops);
    const auto heapLog = replayOps(heap, ops);
    ASSERT_EQ(wheelLog.size(), heapLog.size());
    for (std::size_t i = 0; i < wheelLog.size(); ++i) {
        ASSERT_EQ(wheelLog[i], heapLog[i]) << "divergence at event "
                                           << i;
    }
    EXPECT_EQ(wheel.executedCount(), heap.executedCount());
    EXPECT_EQ(wheel.now(), heap.now());
    EXPECT_EQ(wheel.size(), heap.size());
}

TEST(EventQueueDifferential, DenseTimers)
{
    Rng rng(101);
    std::vector<DiffOp> ops;
    for (int i = 0; i < 4000; ++i)
        ops.push_back({DiffOp::Schedule, rng() % 50000, 0});
    expectBackendsAgree(ops);
}

TEST(EventQueueDifferential, EqualTimestampBursts)
{
    Rng rng(202);
    std::vector<DiffOp> ops;
    for (int burst = 0; burst < 64; ++burst) {
        const Time when = rng() % 4096;
        for (int i = 0; i < 16; ++i)
            ops.push_back({DiffOp::Schedule, when, 0});
    }
    expectBackendsAgree(ops);
}

TEST(EventQueueDifferential, CancelHeavyChurn)
{
    Rng rng(303);
    std::vector<DiffOp> ops;
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t draw = rng();
        if (draw % 3 == 0)
            ops.push_back({DiffOp::Cancel, 0, rng()});
        else
            ops.push_back({DiffOp::Schedule, draw % 100000, 0});
        if (draw % 17 == 0)
            ops.push_back({DiffOp::RunSome, 0, 3});
    }
    expectBackendsAgree(ops);
}

TEST(EventQueueDifferential, FarFutureEpochCrossings)
{
    // Timestamps beyond 2^32 ns ahead overflow the wheel into the far
    // heap; epoch pulls must preserve order across the boundary.
    Rng rng(404);
    std::vector<DiffOp> ops;
    const Time epoch = Time{1} << 32;
    for (int i = 0; i < 500; ++i) {
        const Time base = (rng() % 5) * epoch;
        ops.push_back({DiffOp::Schedule, base + rng() % 100000, 0});
    }
    for (int i = 0; i < 100; ++i)
        ops.push_back({DiffOp::Cancel, 0, rng()});
    expectBackendsAgree(ops);
}

TEST(EventQueueDifferential, CascadeBoundaries)
{
    // Exercise timestamps straddling wheel level boundaries (256,
    // 65536, 2^24 ns) where cascade re-insertion happens.
    std::vector<DiffOp> ops;
    for (const Time boundary :
         {Time{256}, Time{65536}, Time{1} << 24, Time{1} << 32}) {
        for (const Time delta : {Time{0}, Time{1}, Time{255}}) {
            for (int k = 1; k <= 3; ++k) {
                ops.push_back(
                    {DiffOp::Schedule, k * boundary - delta, 0});
                ops.push_back(
                    {DiffOp::Schedule, k * boundary + delta, 0});
            }
        }
    }
    expectBackendsAgree(ops);
}

TEST(EventQueueDifferential, RunUntilPartitions)
{
    // Drain the same workload in uneven runUntil() slices, including
    // limits that land between events and inside cascade windows.
    Rng rng(505);
    std::vector<DiffOp> ops;
    Time limit = 0;
    for (int i = 0; i < 1500; ++i) {
        ops.push_back({DiffOp::Schedule, rng() % 2000000, 0});
        if (i % 50 == 49) {
            limit += 1 + rng() % 70000;
            ops.push_back({DiffOp::RunUntil, limit, 0});
        }
    }
    expectBackendsAgree(ops);
}

TEST(EventQueueDifferential, MixedStress)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed * 0x9e3779b9ull);
        std::vector<DiffOp> ops;
        Time limit = 0;
        for (int i = 0; i < 2500; ++i) {
            switch (rng() % 8) {
            case 0:
                ops.push_back({DiffOp::Cancel, 0, rng()});
                break;
            case 1:
                limit += rng() % 300000;
                ops.push_back({DiffOp::RunUntil, limit, 0});
                break;
            case 2:
                ops.push_back({DiffOp::RunSome, 0, rng() % 4});
                break;
            default:
                // Mix near, mid, and far (epoch-crossing) horizons.
                ops.push_back(
                    {DiffOp::Schedule,
                     limit + (rng() % (Time{1} << (8 + 4 * (i % 7)))),
                     0});
                break;
            }
        }
        expectBackendsAgree(ops);
    }
}

TEST(EventQueueBackends, EnvVarSelectsDefault)
{
    // The cached default is process-wide; just check the accessor
    // reports whichever backend a default-constructed queue got and
    // that an explicit choice overrides it.
    EventQueue dflt;
    EXPECT_EQ(dflt.backend(), EventQueue::defaultBackend());
    EventQueue heap(EventQueue::Backend::Heap);
    EXPECT_EQ(heap.backend(), EventQueue::Backend::Heap);
    EventQueue wheel(EventQueue::Backend::Wheel);
    EXPECT_EQ(wheel.backend(), EventQueue::Backend::Wheel);
}

} // namespace
