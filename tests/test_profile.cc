/**
 * @file
 * Tests for the profiling toolchain: stack-distance curves, the CPU
 * profiler, the probe collector, Eq. 1/Eq. 2 post-processing, and
 * perf reports.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "app/deployment.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "profile/cpu_profiler.h"
#include "profile/perf_report.h"
#include "profile/probe_collector.h"
#include "profile/session.h"
#include "profile/stack_distance.h"
#include "workload/loadgen.h"

namespace {

using namespace ditto;
using namespace ditto::profile;

TEST(StackDistance, CyclicWalkHitsIffCapacityCoversSet)
{
    StackDistanceCurve curve;
    const std::uint64_t lines = 256;  // 16KB working set (index 8)
    for (int pass = 0; pass < 10; ++pass) {
        for (std::uint64_t l = 0; l < lines; ++l)
            curve.access(l);
    }
    const auto hits = curve.hitsBySize();
    const double warmAccesses = 9.0 * lines;  // all but the cold pass
    // 16KB (index 8) and above: everything but cold misses hits.
    EXPECT_DOUBLE_EQ(hits[8], warmAccesses);
    EXPECT_DOUBLE_EQ(hits[25], warmAccesses);
    // Any smaller capacity: zero hits (LRU worst case for cyclic).
    EXPECT_DOUBLE_EQ(hits[7], 0.0);
    EXPECT_DOUBLE_EQ(hits[0], 0.0);
    EXPECT_DOUBLE_EQ(curve.coldMisses(), static_cast<double>(lines));
}

TEST(StackDistance, RepeatedLineAlwaysHitsSmallest)
{
    StackDistanceCurve curve;
    for (int i = 0; i < 100; ++i)
        curve.access(42);
    const auto hits = curve.hitsBySize();
    EXPECT_DOUBLE_EQ(hits[0], 99.0);
}

TEST(StackDistance, TwoAlternatingLinesNeedTwoLines)
{
    StackDistanceCurve curve;
    for (int i = 0; i < 50; ++i) {
        curve.access(1);
        curve.access(2);
    }
    const auto hits = curve.hitsBySize();
    // Distance 2: misses in a 1-line cache, hits with >= 2 lines
    // (index 1 = 128B).
    EXPECT_DOUBLE_EQ(hits[0], 0.0);
    EXPECT_DOUBLE_EQ(hits[1], 98.0);
}

TEST(StackDistance, MonotoneNonDecreasingCurve)
{
    StackDistanceCurve curve;
    sim::Rng rng(5);
    for (int i = 0; i < 20000; ++i)
        curve.access(rng.uniformInt(std::uint64_t{4096}));
    const auto hits = curve.hitsBySize();
    for (std::size_t i = 1; i < hits.size(); ++i)
        EXPECT_GE(hits[i], hits[i - 1]);
    EXPECT_LE(hits.back(), curve.totalAccesses());
}

TEST(StackDistance, CompressionPreservesDistances)
{
    // Force at least one compression by exceeding kMaxTime accesses
    // would be slow; instead verify the logic on a small schedule by
    // calling access enough times to stay correct across rebuilds is
    // covered by determinism tests elsewhere. Here: interleaved
    // pattern distances stay exact after many repetitions.
    StackDistanceCurve curve;
    for (int rep = 0; rep < 1000; ++rep) {
        for (std::uint64_t l = 0; l < 8; ++l)
            curve.access(l);
    }
    const auto hits = curve.hitsBySize();
    EXPECT_DOUBLE_EQ(hits[3], 1000.0 * 8 - 8);  // 8 lines = 512B
    EXPECT_DOUBLE_EQ(hits[2], 0.0);
}

TEST(Eq1, DataAccessDecomposition)
{
    DataMemProfile dmem;
    dmem.hitsBySize[0] = 100;
    dmem.hitsBySize[1] = 150;
    dmem.hitsBySize[2] = 150;  // no new hits at 256B
    dmem.hitsBySize[3] = 400;
    for (std::size_t i = 4; i < kWsSizes; ++i)
        dmem.hitsBySize[i] = 400;
    const auto a = dmem.accessesBySize();
    EXPECT_DOUBLE_EQ(a[0], 100);
    EXPECT_DOUBLE_EQ(a[1], 50);
    EXPECT_DOUBLE_EQ(a[2], 0);
    EXPECT_DOUBLE_EQ(a[3], 250);
    EXPECT_DOUBLE_EQ(a[4], 0);
}

TEST(Eq2, InstExecutionDecomposition)
{
    InstMemProfile imem;
    imem.hitsBySize[0] = 50;
    imem.hitsBySize[1] = 80;
    for (std::size_t i = 2; i < kWsSizes; ++i)
        imem.hitsBySize[i] = 100;
    const auto e = imem.executionsBySize();
    // 16 instructions per line (Eq. 2).
    EXPECT_DOUBLE_EQ(e[1], 16.0 * 30);
    EXPECT_DOUBLE_EQ(e[2], 16.0 * 20);
    EXPECT_DOUBLE_EQ(e[3], 0);
    // Total executions = 16 * H(max); the 64B bin gets the rest.
    EXPECT_DOUBLE_EQ(e[0], 16.0 * 100 - (16.0 * 30 + 16.0 * 20));
}

TEST(DepBins, BinningIsExponential)
{
    EXPECT_EQ(depBinOf(1), 0u);
    EXPECT_EQ(depBinOf(2), 1u);
    EXPECT_EQ(depBinOf(3), 1u);
    EXPECT_EQ(depBinOf(4), 2u);
    EXPECT_EQ(depBinOf(1024), 10u);
    EXPECT_EQ(depBinOf(100000), kDepBins - 1);
}

// ---------------------------------------------------------------------------
// CpuProfiler against crafted blocks executed on a real core.
// ---------------------------------------------------------------------------

struct ProfilerFixture
{
    hw::PlatformSpec spec = hw::platformA();
    hw::Cache llc{spec.llcBytes, spec.llcWays};
    hw::CacheHierarchy caches{spec.l1iBytes, spec.l1iWays,
                              spec.l1dBytes, spec.l1dWays,
                              spec.l2Bytes, spec.l2Ways, &llc, true};
    hw::CpuCore core{0, spec, caches, nullptr};
    hw::ExecContext ctx{0, 1};
    hw::CodeImage image{0x400000, 0x10000000, 4};
};

TEST(CpuProfiler, CapturesInstructionMixAndBranches)
{
    ProfilerFixture f;
    hw::BlockSpec spec;
    spec.label = "svc.block";
    spec.instCount = 200;
    spec.memFraction = 0.3;
    spec.branchFraction = 0.1;
    spec.branchKinds = {{3, 4}};
    spec.seed = 9;
    const auto b = f.image.addBlock(hw::buildBlock(spec));

    CpuProfiler prof("svc.");
    f.core.setObserver(&prof);
    hw::ExecStats stats;
    f.core.run(f.image, b, 500, f.ctx, stats);
    f.core.setObserver(nullptr);

    const auto mix = prof.mixProfile(100);
    EXPECT_NEAR(mix.total(), 200.0 * 500, 1.0);
    EXPECT_NEAR(mix.instsPerRequest, 200.0 * 500 / 100, 1.0);
    EXPECT_NEAR(mix.memOperandFraction(), 0.3, 0.08);

    const auto branches = prof.branchProfile();
    EXPECT_NEAR(branches.branchFraction, 0.1, 0.04);
    EXPECT_GT(branches.staticSites, 5u);
    // All sites were authored with (3,4): the dominant bin must be
    // at or near those exponents.
    double best = 0;
    unsigned bestM = 0;
    unsigned bestN = 0;
    for (unsigned m = 1; m <= 10; ++m) {
        for (unsigned n = 1; n <= 10; ++n) {
            if (branches.bins[m][n] > best) {
                best = branches.bins[m][n];
                bestM = m;
                bestN = n;
            }
        }
    }
    EXPECT_NEAR(bestM, 3, 1);
    EXPECT_NEAR(bestN, 4, 1);
}

TEST(CpuProfiler, CapturesWorkingSetCurve)
{
    ProfilerFixture f;
    hw::BlockSpec spec;
    spec.label = "svc.ws";
    spec.instCount = 64;
    spec.memFraction = 0.5;
    spec.streams = {{1 << 20, hw::StreamKind::Sequential, false, 1.0}};
    spec.seed = 10;
    const auto b = f.image.addBlock(hw::buildBlock(spec));

    CpuProfiler prof("svc.");
    f.core.setObserver(&prof);
    hw::ExecStats stats;
    f.core.run(f.image, b, 3000, f.ctx, stats);
    f.core.setObserver(nullptr);

    const auto dmem = prof.dataMemProfile();
    const auto a = dmem.accessesBySize();
    // A cyclic 1MB stream: the mass lands in the 1MB bucket (idx 14).
    double inBucket = a[14];
    double total = 0;
    for (double x : a)
        total += x;
    EXPECT_GT(inBucket, 0.85 * total);
    EXPECT_GT(dmem.regularFraction, 0.8);  // sequential stream
}

TEST(CpuProfiler, KernelBlocksExcluded)
{
    ProfilerFixture f;
    hw::BlockSpec user;
    user.label = "svc.u";
    user.instCount = 100;
    user.seed = 11;
    hw::BlockSpec kern;
    kern.label = "k.fake";
    kern.instCount = 100;
    kern.seed = 12;
    const auto ub = f.image.addBlock(hw::buildBlock(user));
    const auto kb = f.image.addBlock(hw::buildBlock(kern));

    CpuProfiler prof("svc.");
    f.core.setObserver(&prof);
    hw::ExecStats stats;
    f.core.run(f.image, ub, 10, f.ctx, stats);
    f.core.run(f.image, kb, 10, f.ctx, stats, /*kernelMode=*/true);
    f.core.setObserver(nullptr);
    EXPECT_NEAR(prof.totalInstructions(), 1000.0, 1.0);
}

TEST(CpuProfiler, PrefixFiltersOtherServices)
{
    ProfilerFixture f;
    hw::BlockSpec mine;
    mine.label = "svc.mine";
    mine.instCount = 100;
    mine.seed = 13;
    hw::BlockSpec other;
    other.label = "other.block";
    other.instCount = 100;
    other.seed = 14;
    const auto mb = f.image.addBlock(hw::buildBlock(mine));
    const auto ob = f.image.addBlock(hw::buildBlock(other));
    CpuProfiler prof("svc.");
    f.core.setObserver(&prof);
    hw::ExecStats stats;
    f.core.run(f.image, mb, 5, f.ctx, stats);
    f.core.run(f.image, ob, 5, f.ctx, stats);
    f.core.setObserver(nullptr);
    EXPECT_NEAR(prof.totalInstructions(), 500.0, 1.0);
}

TEST(CpuProfiler, DependencyDistancesReflectTightness)
{
    ProfilerFixture f;
    hw::BlockSpec tight;
    tight.label = "svc.tight";
    tight.instCount = 200;
    tight.depTightness = 0.9;
    tight.seed = 15;
    hw::BlockSpec loose = tight;
    loose.label = "svc.loose";
    loose.depTightness = 0.05;
    loose.seed = 15;

    auto profiled_raw_short_mass = [&](const hw::BlockSpec &spec) {
        ProfilerFixture local;
        const auto b = local.image.addBlock(hw::buildBlock(spec));
        CpuProfiler prof("svc.");
        local.core.setObserver(&prof);
        hw::ExecStats stats;
        local.core.run(local.image, b, 50, local.ctx, stats);
        local.core.setObserver(nullptr);
        const auto dep = prof.depProfile(0);
        double shortMass = 0;
        double total = 0;
        for (std::size_t bin = 0; bin < kDepBins; ++bin) {
            total += dep.raw[bin];
            if (bin <= 2)
                shortMass += dep.raw[bin];
        }
        return total > 0 ? shortMass / total : 0.0;
    };
    EXPECT_GT(profiled_raw_short_mass(tight),
              profiled_raw_short_mass(loose) + 0.1);
}

TEST(ProbeCollector, AggregatesSyscallsPerRequest)
{
    ProbeCollector probe;
    probe.begin(0);

    class Dummy : public os::Thread
    {
      public:
        explicit Dummy(std::string n) : os::Thread(std::move(n), 0, 1) {}
        os::StepResult step(os::StepCtx &) override
        {
            return {os::StopReason::Exit};
        }
    };
    Dummy t1("w1");
    Dummy t2("w2");
    for (int i = 0; i < 10; ++i) {
        probe.onSyscall(t1, app::SysKind::SocketRead, 128);
        probe.onSyscall(t2, app::SysKind::Pread, 4096);
        probe.onRequestDone(0, 1000);
    }
    probe.onFileAccess(t2, 1 << 20, 4096, false);

    const auto prof = probe.syscallProfile();
    EXPECT_EQ(probe.requests(), 10u);
    const auto &reads =
        prof.perKind.at(static_cast<int>(app::SysKind::SocketRead));
    EXPECT_DOUBLE_EQ(reads.countPerRequest, 1.0);
    EXPECT_DOUBLE_EQ(reads.avgBytes, 128.0);
    const auto &preads =
        prof.perKind.at(static_cast<int>(app::SysKind::Pread));
    EXPECT_DOUBLE_EQ(preads.avgBytes, 4096.0);
    EXPECT_EQ(prof.fileSpanBytes, (1u << 20) + 4096u);

    const auto threads = probe.threadObservations();
    ASSERT_EQ(threads.size(), 2u);
    EXPECT_EQ(threads[0].name, "w1");
}

TEST(ProbeCollector, CallGraphPathsPerThread)
{
    ProbeCollector probe;
    probe.begin(0);
    class Dummy : public os::Thread
    {
      public:
        Dummy() : os::Thread("t", 0, 1) {}
        os::StepResult step(os::StepCtx &) override
        {
            return {os::StopReason::Exit};
        }
    };
    Dummy t;
    probe.onCallEnter(t, "outer");
    probe.onCallEnter(t, "inner");
    probe.onCallExit(t, "inner");
    probe.onCallExit(t, "outer");
    const auto threads = probe.threadObservations();
    ASSERT_EQ(threads.size(), 1u);
    ASSERT_EQ(threads[0].callPaths.size(), 2u);
    EXPECT_EQ(threads[0].callPaths[0], "/outer");
    EXPECT_EQ(threads[0].callPaths[1], "/outer/inner");
}

TEST(ProbeCollector, AsyncEvidenceFromOverlappedRpcs)
{
    ProbeCollector sync;
    ProbeCollector async;
    class Dummy : public os::Thread
    {
      public:
        Dummy() : os::Thread("t", 0, 1) {}
        os::StepResult step(os::StepCtx &) override
        {
            return {os::StopReason::Exit};
        }
    };
    Dummy t;
    for (int i = 0; i < 10; ++i) {
        // Sync: issue, read, issue, read.
        sync.onRpcIssued(t, 0, 0, 10, 10);
        sync.onSyscall(t, app::SysKind::SocketRead, 10);
        // Async: issue three back-to-back, then read.
        async.onRpcIssued(t, 0, 0, 10, 10);
        async.onRpcIssued(t, 1, 0, 10, 10);
        async.onRpcIssued(t, 2, 0, 10, 10);
        async.onSyscall(t, app::SysKind::SocketRead, 10);
    }
    EXPECT_LT(sync.asyncEvidence(), 0.05);
    EXPECT_GT(async.asyncEvidence(), 0.5);
}

TEST(PerfReport, RelativeErrorAndSnapshot)
{
    EXPECT_NEAR(relativeError(1.1, 1.0), 0.1, 1e-9);
    EXPECT_NEAR(relativeError(0.9, 1.0), 0.1, 1e-9);
    EXPECT_GT(relativeError(1.0, 0.0), 1e6);
}

TEST(ProfileSession, EndToEndProfileIsSane)
{
    app::Deployment dep(21);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceSpec spec;
    spec.name = "tiny";
    spec.threads.workers = 2;
    hw::BlockSpec bs;
    bs.label = "tiny.h";
    bs.instCount = 150;
    bs.memFraction = 0.3;
    bs.branchFraction = 0.1;
    bs.streams = {{64 << 10, hw::StreamKind::Sequential, false, 1.0}};
    bs.seed = 22;
    spec.blocks.push_back(hw::buildBlock(bs));
    app::EndpointSpec ep;
    ep.name = "get";
    ep.handler.ops = {app::opCall("handle", {{app::opCompute(0, 20)}})};
    spec.endpoints.push_back(ep);
    app::ServiceInstance &svc = dep.deploy(spec, m);
    dep.wireAll();

    workload::LoadSpec load;
    load.qps = 2000;
    load.connections = 4;
    workload::LoadGen gen(dep, svc, load, 5);
    gen.start();

    ProfileOptions opts;
    opts.warmup = sim::milliseconds(50);
    opts.window = sim::milliseconds(100);
    const ServiceProfile prof = profileService(dep, svc, opts);

    EXPECT_EQ(prof.serviceName, "tiny");
    EXPECT_GT(prof.requestsObserved, 50);
    EXPECT_NEAR(prof.mix.instsPerRequest, 20 * 150, 20 * 150 * 0.2);
    EXPECT_GT(prof.reference.ipc, 0.1);
    EXPECT_GT(prof.threads.size(), 1u);
    EXPECT_GT(prof.syscalls.perKind.size(), 1u);
    // Observers detached: exact mode off again.
    EXPECT_GT(prof.avgResponseBytes, 0);
}

// ---------------------------------------------------------------------------
// PerfReport percentile golden test
// ---------------------------------------------------------------------------

/** Records every request latency exactly, bypassing the histogram. */
struct LatencyTap : app::ServiceProbe
{
    std::vector<sim::Time> latencies;

    void
    onRequestDone(std::uint32_t, sim::Time latency) override
    {
        latencies.push_back(latency);
    }
};

TEST(PerfReport, PercentilesMatchBruteForceWithinHistogramBound)
{
    // snapshotService() reads p50/p95/p99 from the log-linear
    // latency histogram (32 sub-buckets per power of two, so at most
    // ~3.2% relative bucket error). A probe taps the exact latency
    // stream in parallel; brute-force order statistics over that
    // stream (rank ceil(q*n), the histogram's documented rank rule)
    // are the golden reference the report must track.
    app::Deployment dep(29);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceSpec spec;
    spec.name = "tap";
    spec.threads.workers = 2;
    hw::BlockSpec bs;
    bs.label = "tap.h";
    bs.instCount = 120;
    bs.seed = 31;
    spec.blocks.push_back(hw::buildBlock(bs));
    app::EndpointSpec ep;
    ep.name = "get";
    ep.handler.ops = {app::opCompute(0, 12)};
    spec.endpoints.push_back(ep);
    app::ServiceInstance &svc = dep.deploy(spec, m);
    dep.wireAll();

    LatencyTap tap;
    svc.setProbe(&tap);

    workload::LoadSpec load;
    load.qps = 4000;
    load.connections = 8;
    load.openLoop = true;
    workload::LoadGen gen(dep, svc, load, 37);
    gen.start();
    dep.runFor(sim::milliseconds(80));

    const PerfReport report = snapshotService(svc);
    ASSERT_GE(tap.latencies.size(), 100u);
    ASSERT_EQ(tap.latencies.size(), svc.stats().latency.count());

    std::vector<sim::Time> sorted = tap.latencies;
    std::sort(sorted.begin(), sorted.end());
    const auto n = static_cast<double>(sorted.size());
    auto golden = [&](double q) {
        auto rank = static_cast<std::size_t>(
            std::ceil(q * n - 1e-9));
        rank = std::clamp<std::size_t>(rank, 1, sorted.size());
        return sim::toMilliseconds(sorted[rank - 1]);
    };

    EXPECT_LE(relativeError(report.p50LatencyMs, golden(0.50)), 0.032);
    EXPECT_LE(relativeError(report.p95LatencyMs, golden(0.95)), 0.032);
    EXPECT_LE(relativeError(report.p99LatencyMs, golden(0.99)), 0.032);

    // The mean is tracked exactly (sum/count), not bucketed: only
    // the report's ns truncation separates it from the golden mean.
    double sumMs = 0;
    for (const sim::Time v : sorted)
        sumMs += sim::toMilliseconds(v);
    EXPECT_LE(relativeError(report.avgLatencyMs, sumMs / n), 1e-3);
}

} // namespace
