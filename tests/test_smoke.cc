/**
 * @file
 * End-to-end smoke test: a minimal echo-like service under load.
 */

#include <gtest/gtest.h>

#include "app/deployment.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "workload/loadgen.h"

namespace {

using namespace ditto;

app::ServiceSpec
miniService()
{
    app::ServiceSpec spec;
    spec.name = "mini";
    spec.serverModel = app::ServerModel::IoMultiplex;
    spec.threads.workers = 2;

    hw::BlockSpec bs;
    bs.label = "mini.handler";
    bs.instCount = 128;
    bs.streams = {{1 << 14, hw::StreamKind::Sequential, false, 1.0}};
    bs.seed = 5;
    spec.blocks.push_back(hw::buildBlock(bs));

    app::EndpointSpec ep;
    ep.name = "get";
    ep.handler.ops.push_back(app::opCompute(0, 20));
    ep.responseBytesMin = ep.responseBytesMax = 512;
    spec.endpoints.push_back(ep);
    return spec;
}

TEST(Smoke, SingleServiceServesRequests)
{
    app::Deployment dep(/*seed=*/1);
    os::Machine &m = dep.addMachine("node0", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(miniService(), m);
    dep.wireAll();

    workload::LoadSpec load;
    load.qps = 5000;
    load.connections = 4;
    load.openLoop = true;
    workload::LoadGen gen(dep, svc, load, 3);
    gen.start();

    dep.runFor(sim::milliseconds(200));
    dep.beginMeasureAll();
    gen.beginMeasure();
    dep.runFor(sim::milliseconds(500));

    EXPECT_GT(gen.completed(), 1000u);
    // Achieved ~ offered load.
    EXPECT_NEAR(gen.achievedQps(), 5000, 1000);
    // Latency is positive and sub-millisecond-ish at this light load.
    const auto p50 = gen.latency().percentile(0.50);
    EXPECT_GT(p50, sim::microseconds(30));
    EXPECT_LT(p50, sim::milliseconds(5));
    // Service-side counters move.
    EXPECT_GT(svc.stats().requests, 1000u);
    EXPECT_GT(svc.stats().exec.instructions, 1e6);
    EXPECT_GT(svc.stats().exec.ipc(), 0.05);
    EXPECT_LT(svc.stats().exec.ipc(), 6.0);
}

TEST(Smoke, ClosedLoopCapsOutstanding)
{
    app::Deployment dep(2);
    os::Machine &m = dep.addMachine("node0", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(miniService(), m);
    dep.wireAll();

    workload::LoadSpec load;
    load.qps = 200000;  // far beyond capacity of 4 conns
    load.connections = 4;
    load.openLoop = false;
    workload::LoadGen gen(dep, svc, load, 3);
    gen.start();
    dep.runFor(sim::milliseconds(300));

    // Closed loop: completions bounded by 4 conns x RTT, latency sane.
    EXPECT_GT(gen.completed(), 100u);
    EXPECT_LT(gen.latency().percentile(0.99), sim::milliseconds(10));
}

TEST(Smoke, DeterministicAcrossRuns)
{
    auto run_once = [] {
        app::Deployment dep(7);
        os::Machine &m = dep.addMachine("node0", hw::platformA());
        app::ServiceInstance &svc = dep.deploy(miniService(), m);
        dep.wireAll();
        workload::LoadSpec load;
        load.qps = 3000;
        load.connections = 2;
        workload::LoadGen gen(dep, svc, load, 3);
        gen.start();
        dep.runFor(sim::milliseconds(300));
        return std::tuple(gen.completed(),
                          gen.latency().percentile(0.99),
                          svc.stats().exec.instructions);
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
