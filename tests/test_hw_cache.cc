/**
 * @file
 * Tests for the cache model: LRU semantics, the paper's working-set
 * property, hierarchy behaviour, prefetching, and coherence hooks.
 */

#include <gtest/gtest.h>

#include "hw/cache.h"

namespace {

using namespace ditto::hw;

TEST(Cache, HitsAfterFill)
{
    Cache c(1024, 2);
    EXPECT_FALSE(c.access(0x1000, false));  // cold miss
    EXPECT_TRUE(c.access(0x1000, false));   // now resident
    EXPECT_TRUE(c.access(0x1020, false));   // same 64B line
    EXPECT_EQ(c.stats().accesses, 3u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 2 ways x 1 set: 128B direct conflict domain.
    Cache c(128, 2);
    ASSERT_EQ(c.sets(), 1u);
    c.access(0 * 64, false);   // A
    c.access(1 * 64, false);   // B
    c.access(0 * 64, false);   // touch A -> B is LRU
    c.access(2 * 64, false);   // C evicts B
    EXPECT_TRUE(c.probe(0 * 64));
    EXPECT_FALSE(c.probe(1 * 64));
    EXPECT_TRUE(c.probe(2 * 64));
}

/**
 * The paper's working-set guarantee (Sec. 4.4.4): a sequential cyclic
 * walk over a 2^i-byte set hits (after warmup) iff capacity >= 2^i,
 * and misses every access when capacity < 2^i under LRU.
 */
class WorkingSetProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(WorkingSetProperty, SequentialCyclicWalk)
{
    const std::uint64_t wsBytes = GetParam();
    const std::uint64_t lines = wsBytes / kLineBytes;

    // Capacity == working set: all hits after the first pass.
    {
        Cache fits(wsBytes, 8);
        for (std::uint64_t pass = 0; pass < 3; ++pass) {
            for (std::uint64_t l = 0; l < lines; ++l)
                fits.access(l * kLineBytes, false);
        }
        EXPECT_EQ(fits.stats().misses, lines);  // cold only
    }
    // Capacity == half: every access misses (LRU worst case).
    {
        Cache small(wsBytes / 2, 8);
        for (std::uint64_t pass = 0; pass < 3; ++pass) {
            for (std::uint64_t l = 0; l < lines; ++l)
                small.access(l * kLineBytes, false);
        }
        EXPECT_EQ(small.stats().misses, small.stats().accesses);
    }
}

INSTANTIATE_TEST_SUITE_P(Pow2Sizes, WorkingSetProperty,
                         ::testing::Values(1024, 4096, 32768,
                                           262144, 1048576));

TEST(Cache, NonPow2CapacityRoundsDown)
{
    // 30.25MB LLC (Platform A): must still construct and be usable.
    Cache llc(31719424, 11);
    EXPECT_GT(llc.sets(), 0u);
    EXPECT_FALSE(llc.access(0x123456, false));
    EXPECT_TRUE(llc.access(0x123456, false));
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(4096, 4);
    c.access(0x40, true);
    EXPECT_TRUE(c.probe(0x40));
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_FALSE(c.invalidate(0x40));
    EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST(Cache, InvalidateFractionRemovesRoughlyThatShare)
{
    Cache c(64 * 1024, 8);
    const std::uint64_t lines = 64 * 1024 / 64;
    for (std::uint64_t l = 0; l < lines; ++l)
        c.access(l * 64, false);
    c.invalidateFraction(0.5, 1234);
    std::uint64_t present = 0;
    for (std::uint64_t l = 0; l < lines; ++l)
        present += c.probe(l * 64);
    EXPECT_NEAR(static_cast<double>(present),
                static_cast<double>(lines) / 2,
                static_cast<double>(lines) * 0.1);
}

TEST(CacheHierarchy, MissPathFillsAllLevels)
{
    Cache llc(1 << 20, 16);
    CacheHierarchy h(32768, 8, 32768, 8, 262144, 8, &llc, false);
    EXPECT_EQ(h.accessData(0x5000, false), CacheLevel::Memory);
    // Now resident everywhere.
    EXPECT_TRUE(h.l1d().probe(0x5000));
    EXPECT_TRUE(h.l2().probe(0x5000));
    EXPECT_TRUE(llc.probe(0x5000));
    EXPECT_EQ(h.accessData(0x5000, false), CacheLevel::L1);
}

TEST(CacheHierarchy, L2HitAfterL1Eviction)
{
    Cache llc(1 << 20, 16);
    CacheHierarchy h(4096, 4, 4096, 4, 262144, 8, &llc, false);
    h.accessData(0x0, false);
    // Thrash L1d (4KB) with 16KB of lines; 0x0 falls out of L1 but
    // stays in L2.
    for (std::uint64_t l = 1; l <= 256; ++l)
        h.accessData(l * 64, false);
    EXPECT_EQ(h.accessData(0x0, false), CacheLevel::L2);
}

TEST(CacheHierarchy, InstructionPathUsesL1i)
{
    Cache llc(1 << 20, 16);
    CacheHierarchy h(32768, 8, 32768, 8, 262144, 8, &llc, false);
    EXPECT_EQ(h.accessInst(0x7000), CacheLevel::Memory);
    EXPECT_EQ(h.accessInst(0x7000), CacheLevel::L1);
    // Data access to the same line does not hit in L1d (separate
    // arrays) but does hit in the unified L2.
    EXPECT_EQ(h.accessData(0x7000, false), CacheLevel::L2);
}

TEST(CacheHierarchy, CoherenceInvalidationForcesMiss)
{
    Cache llc(1 << 20, 16);
    CacheHierarchy h(32768, 8, 32768, 8, 262144, 8, &llc, false);
    h.accessData(0x9000, false);
    EXPECT_EQ(h.accessData(0x9000, false), CacheLevel::L1);
    h.invalidateData(0x9000);
    // Line still in LLC: coherence miss is served from L3.
    EXPECT_EQ(h.accessData(0x9000, false), CacheLevel::L3);
}

TEST(StreamPrefetcher, DetectsSequentialStream)
{
    StreamPrefetcher pf(8, 4);
    std::vector<std::uint64_t> out;
    pf.observe(100, out);
    EXPECT_TRUE(out.empty());
    pf.observe(101, out);  // trains stride +1
    pf.observe(102, out);  // confirms -> prefetches
    EXPECT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 103u);
    EXPECT_EQ(out[3], 106u);
}

TEST(StreamPrefetcher, IgnoresRandomAccesses)
{
    StreamPrefetcher pf(8, 4);
    std::vector<std::uint64_t> out;
    std::uint64_t addrs[] = {5, 900, 77, 12345, 42, 60000, 3, 777};
    for (std::uint64_t a : addrs) {
        pf.observe(a, out);
        EXPECT_TRUE(out.empty()) << a;
    }
}

TEST(CacheHierarchy, PrefetchHidesSequentialMisses)
{
    Cache llcA(8 << 20, 16);
    Cache llcB(8 << 20, 16);
    CacheHierarchy withPf(32768, 8, 32768, 8, 262144, 8, &llcA, true);
    CacheHierarchy noPf(32768, 8, 32768, 8, 262144, 8, &llcB, false);

    // Stream 1MB sequentially through both (exceeds L1/L2).
    auto run = [](CacheHierarchy &h) {
        std::uint64_t misses = 0;
        for (std::uint64_t l = 0; l < 16384; ++l) {
            if (h.accessData(l * 64, false) != CacheLevel::L1)
                ++misses;
        }
        return misses;
    };
    const std::uint64_t pfMisses = run(withPf);
    const std::uint64_t plainMisses = run(noPf);
    EXPECT_LT(pfMisses, plainMisses / 4);
}

} // namespace
