/**
 * @file
 * Tests for the observability layer: the mini JSON parser, the
 * Jaeger-JSON trace exporter/importer round trip, the metrics
 * registry and its writers, and byte-identical export at any
 * RunExecutor worker count.
 *
 * These tests carry the `obs` and `parallel` ctest labels, so both
 * `ctest -L obs` and a -DDITTO_TSAN=ON `ctest -L parallel` run them.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "app/deployment.h"
#include "app/resilience.h"
#include "core/topology_analyzer.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "obs/jaeger.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/register.h"
#include "sim/run_executor.h"
#include "workload/loadgen.h"

namespace {

using namespace ditto;

// ---------------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------------

TEST(Json, ParsesScalarsObjectsAndArrays)
{
    const auto v = obs::parseJson(
        R"({"a": 1, "b": -2.5, "c": "x", "d": [true, false, null],)"
        R"( "e": {"nested": 18446744073709551615}})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("a")->asU64(), 1u);
    EXPECT_DOUBLE_EQ(v.find("b")->asDouble(), -2.5);
    EXPECT_EQ(v.find("c")->asString(), "x");
    ASSERT_TRUE(v.find("d")->isArray());
    EXPECT_EQ(v.find("d")->items.size(), 3u);
    EXPECT_TRUE(v.find("d")->items[0].boolean);
    // u64 values parse losslessly (no double round trip).
    EXPECT_EQ(v.find("e")->find("nested")->asU64(), UINT64_MAX);
}

TEST(Json, StringEscapingRoundTrips)
{
    const std::string nasty = "a\"b\\c\nd\te\x01f";
    std::string doc = "{\"k\":";
    obs::appendJsonString(doc, nasty);
    doc += "}";
    const auto v = obs::parseJson(doc);
    EXPECT_EQ(v.find("k")->asString(), nasty);
}

TEST(Json, ThrowsOnMalformedInput)
{
    EXPECT_THROW(obs::parseJson("{"), std::runtime_error);
    EXPECT_THROW(obs::parseJson("[1,]"), std::runtime_error);
    EXPECT_THROW(obs::parseJson("{\"a\":1} trailing"),
                 std::runtime_error);
    EXPECT_THROW(obs::parseJson("nul"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Shared fanout world: front -> {mid, cache}, mid -> back.
// ---------------------------------------------------------------------------

hw::CodeBlock
obsBlock(const std::string &label, std::uint64_t seed)
{
    hw::BlockSpec bs;
    bs.label = label;
    bs.instCount = 64;
    bs.seed = seed;
    return hw::buildBlock(bs);
}

app::ServiceSpec
obsLeaf(const std::string &name, std::uint64_t blockSeed)
{
    app::ServiceSpec spec;
    spec.name = name;
    spec.threads.workers = 2;
    spec.blocks.push_back(obsBlock(name + ".h", blockSeed));
    app::EndpointSpec ep;
    ep.name = "get";
    ep.handler.ops = {app::opCompute(0, 5)};
    spec.endpoints.push_back(ep);
    return spec;
}

app::ServiceSpec
obsMid()
{
    app::ServiceSpec spec;
    spec.name = "mid";
    spec.threads.workers = 2;
    spec.downstreams = {"back"};
    spec.blocks.push_back(obsBlock("mid.h", 5));
    app::EndpointSpec ep;
    ep.name = "assemble";
    ep.handler.ops = {app::opCompute(0, 4),
                      app::opRpc(0, 0, 128, 256),
                      app::opCompute(0, 2)};
    spec.endpoints.push_back(ep);
    return spec;
}

app::ServiceSpec
obsFront(bool withResilience)
{
    app::ServiceSpec spec;
    spec.name = "front";
    spec.threads.workers = 2;
    spec.downstreams = {"mid", "cache"};
    spec.blocks.push_back(obsBlock("front.h", 7));
    app::EndpointSpec ep;
    ep.name = "page";
    ep.handler.ops = {app::opCompute(0, 3),
                      app::opRpc(0, 0, 256, 512),
                      app::opRpc(1, 0, 64, 1024),
                      app::opCompute(0, 3)};
    spec.endpoints.push_back(ep);
    if (withResilience) {
        spec.resilience.rpcDeadline = sim::microseconds(800);
        spec.resilience.retry.maxAttempts = 2;
        spec.resilience.retry.baseBackoff = sim::microseconds(100);
        spec.resilience.retry.jitter = 0.0;
    }
    return spec;
}

/** Artifacts of one finished run, safe to compare across runs. */
struct ObsArtifacts
{
    std::string traceJson;
    std::string prometheus;
    std::string metricsJson;
};

struct ObsWorld
{
    app::Deployment dep;
    fault::FaultInjector injector;
    obs::MetricsRegistry registry;
    workload::LoadGen gen;

    explicit ObsWorld(std::uint64_t seed, bool faulted,
                      double sampleRate = 1.0)
        : dep(seed, sampleRate),
          injector(deployed(dep, faulted)),
          gen(dep, *dep.find("front"), clientLoad(),
              seed ^ 0x10adull)
    {
        obs::registerDeploymentMetrics(registry, dep);
        obs::registerInjectorMetrics(registry, injector);
        if (faulted) {
            fault::FaultPlan plan;
            plan.linkDrop("web", "db", sim::milliseconds(15),
                          sim::milliseconds(15), 0.3);
            injector.install(plan);
        }
    }

    void
    run(sim::Time duration = sim::milliseconds(60))
    {
        gen.start();
        dep.runFor(duration);
    }

    ObsArtifacts
    artifacts()
    {
        return {obs::exportJaegerJson(dep.tracer()),
                registry.prometheusText(), registry.jsonText()};
    }

    static app::Deployment &
    deployed(app::Deployment &dep, bool faulted)
    {
        os::Machine &web = dep.addMachine("web", hw::platformA());
        os::Machine &db = dep.addMachine("db", hw::platformA());
        dep.deploy(obsLeaf("back", 3), db);
        dep.deploy(obsLeaf("cache", 4), db);
        dep.deploy(obsMid(), web);
        dep.deploy(obsFront(faulted), web);
        dep.wireAll();
        return dep;
    }

    static workload::LoadSpec
    clientLoad()
    {
        workload::LoadSpec load;
        load.qps = 2000;
        load.connections = 4;
        load.openLoop = true;
        load.timeout = sim::milliseconds(5);
        return load;
    }
};

void
expectSameRecords(const trace::Tracer &a, const trace::Tracer &b)
{
    ASSERT_EQ(a.spans().size(), b.spans().size());
    for (std::size_t i = 0; i < a.spans().size(); ++i) {
        const trace::Span &x = a.spans()[i];
        const trace::Span &y = b.spans()[i];
        EXPECT_EQ(x.traceId, y.traceId);
        EXPECT_EQ(x.spanId, y.spanId);
        EXPECT_EQ(x.parentSpanId, y.parentSpanId);
        EXPECT_EQ(x.service, y.service);
        EXPECT_EQ(x.endpoint, y.endpoint);
        EXPECT_EQ(x.start, y.start);
        EXPECT_EQ(x.end, y.end);
    }
    ASSERT_EQ(a.edges().size(), b.edges().size());
    for (std::size_t i = 0; i < a.edges().size(); ++i) {
        const trace::RpcEdge &x = a.edges()[i];
        const trace::RpcEdge &y = b.edges()[i];
        EXPECT_EQ(x.traceId, y.traceId);
        EXPECT_EQ(x.parentSpanId, y.parentSpanId);
        EXPECT_EQ(x.caller, y.caller);
        EXPECT_EQ(x.callee, y.callee);
        EXPECT_EQ(x.endpoint, y.endpoint);
        EXPECT_EQ(x.requestBytes, y.requestBytes);
        EXPECT_EQ(x.responseBytes, y.responseBytes);
    }
    ASSERT_EQ(a.outcomes().size(), b.outcomes().size());
    for (std::size_t i = 0; i < a.outcomes().size(); ++i) {
        const trace::OutcomeEvent &x = a.outcomes()[i];
        const trace::OutcomeEvent &y = b.outcomes()[i];
        EXPECT_EQ(x.traceId, y.traceId);
        EXPECT_EQ(x.service, y.service);
        EXPECT_EQ(x.target, y.target);
        EXPECT_EQ(x.endpoint, y.endpoint);
        EXPECT_EQ(x.kind, y.kind);
        EXPECT_EQ(x.attempts, y.attempts);
        EXPECT_EQ(x.time, y.time);
    }
}

void
expectSameTopology(const core::Topology &a, const core::Topology &b)
{
    EXPECT_EQ(a.services, b.services);
    EXPECT_EQ(a.root, b.root);
    EXPECT_EQ(a.requestCounts, b.requestCounts);
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (std::size_t i = 0; i < a.edges.size(); ++i) {
        EXPECT_EQ(a.edges[i].caller, b.edges[i].caller);
        EXPECT_EQ(a.edges[i].callee, b.edges[i].callee);
        EXPECT_EQ(a.edges[i].endpoint, b.edges[i].endpoint);
        // Bit-for-bit: both paths feed identical vectors through
        // identical arithmetic.
        EXPECT_EQ(a.edges[i].callsPerCallerRequest,
                  b.edges[i].callsPerCallerRequest);
        EXPECT_EQ(a.edges[i].avgRequestBytes,
                  b.edges[i].avgRequestBytes);
        EXPECT_EQ(a.edges[i].avgResponseBytes,
                  b.edges[i].avgResponseBytes);
    }
}

// ---------------------------------------------------------------------------
// Jaeger round trip
// ---------------------------------------------------------------------------

TEST(JaegerExport, RoundTripIsBitExact)
{
    // Faulted + resilient run so spans, edges, AND outcome events all
    // appear in the export.
    ObsWorld w(21, /*faulted=*/true);
    w.run();
    ASSERT_GT(w.dep.tracer().spans().size(), 0u);
    ASSERT_GT(w.dep.tracer().edges().size(), 0u);
    ASSERT_GT(w.dep.tracer().outcomes().size(), 0u);

    const std::string doc = obs::exportJaegerJson(w.dep.tracer());
    const trace::Tracer back = obs::importJaegerJson(doc);
    expectSameRecords(w.dep.tracer(), back);
    EXPECT_EQ(back.sampleRate(), w.dep.tracer().sampleRate());
    // At sample rate 1.0 the exact outcome counters survive too.
    for (std::size_t i = 0; i < trace::kOutcomeKinds; ++i) {
        const auto kind = static_cast<trace::OutcomeKind>(i);
        EXPECT_EQ(back.outcomeCount(kind),
                  w.dep.tracer().outcomeCount(kind));
    }
    // Re-exporting the imported tracer reproduces the bytes.
    EXPECT_EQ(obs::exportJaegerJson(back), doc);
}

TEST(JaegerExport, TopologyFromExportedFileMatchesInMemory)
{
    ObsWorld w(22, /*faulted=*/false);
    w.run();

    const std::string path =
        testing::TempDir() + "ditto_obs_roundtrip.json";
    obs::writeJaegerJsonFile(w.dep.tracer(), path);
    const trace::Tracer fromFile = obs::readJaegerJsonFile(path);

    const core::Topology inMemory =
        core::analyzeTopology(w.dep.tracer());
    const core::Topology recovered = core::analyzeTopology(fromFile);
    expectSameTopology(inMemory, recovered);

    // Sanity: the DAG is the one we deployed.
    EXPECT_EQ(inMemory.root, "front");
    EXPECT_EQ(inMemory.services.size(), 4u);
    EXPECT_EQ(inMemory.edges.size(), 3u);
}

TEST(JaegerExport, SampledTraceRoundTrips)
{
    ObsWorld w(23, /*faulted=*/true, /*sampleRate=*/0.3);
    w.run();
    const auto &tracer = w.dep.tracer();
    ASSERT_GT(tracer.spans().size(), 0u);
    ASSERT_LT(tracer.spans().size(), 900u);  // sampling engaged

    const trace::Tracer back =
        obs::importJaegerJson(obs::exportJaegerJson(tracer));
    expectSameRecords(tracer, back);
    expectSameTopology(core::analyzeTopology(tracer),
                       core::analyzeTopology(back));
}

TEST(JaegerExport, EmptyTracerExportsAndImports)
{
    trace::Tracer empty(0.5);
    const trace::Tracer back =
        obs::importJaegerJson(obs::exportJaegerJson(empty));
    EXPECT_TRUE(back.spans().empty());
    EXPECT_TRUE(back.edges().empty());
    EXPECT_TRUE(back.outcomes().empty());
    EXPECT_EQ(back.sampleRate(), 0.5);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, OwnedInstrumentsAndWriters)
{
    obs::MetricsRegistry reg;
    obs::Counter &c =
        reg.counter("ditto_test_ops_total", {{"service", "a"}},
                    "Test operations");
    c.add();
    c.add(41);
    reg.gauge("ditto_test_depth").set(2.5);
    obs::Timer &t = reg.timer("ditto_test_latency_ns");
    t.observe(1000);
    t.observe(3000);

    const std::string prom = reg.prometheusText();
    EXPECT_NE(prom.find("# TYPE ditto_test_ops_total counter"),
              std::string::npos);
    EXPECT_NE(prom.find("ditto_test_ops_total{service=\"a\"} 42"),
              std::string::npos);
    EXPECT_NE(prom.find("# HELP ditto_test_ops_total Test operations"),
              std::string::npos);
    EXPECT_NE(prom.find("ditto_test_depth 2.5"), std::string::npos);
    EXPECT_NE(prom.find("# TYPE ditto_test_latency_ns summary"),
              std::string::npos);
    EXPECT_NE(prom.find("ditto_test_latency_ns_count 2"),
              std::string::npos);

    // The JSON snapshot parses with our own parser and agrees.
    const auto snap = obs::parseJson(reg.jsonText());
    EXPECT_EQ(snap.find("counters")
                  ->find("ditto_test_ops_total{service=\"a\"}")
                  ->asU64(),
              42u);
    EXPECT_DOUBLE_EQ(
        snap.find("gauges")->find("ditto_test_depth")->asDouble(),
        2.5);
    EXPECT_EQ(snap.find("summaries")
                  ->find("ditto_test_latency_ns")
                  ->find("count")
                  ->asU64(),
              2u);
}

TEST(Metrics, SnapshotOrderIndependentOfRegistrationOrder)
{
    obs::MetricsRegistry a;
    obs::MetricsRegistry b;
    a.counter("ditto_x_total").add(1);
    a.counter("ditto_a_total", {{"s", "2"}}).add(2);
    a.counter("ditto_a_total", {{"s", "1"}}).add(3);
    b.counter("ditto_a_total", {{"s", "1"}}).add(3);
    b.counter("ditto_x_total").add(1);
    b.counter("ditto_a_total", {{"s", "2"}}).add(2);
    EXPECT_EQ(a.prometheusText(), b.prometheusText());
    EXPECT_EQ(a.jsonText(), b.jsonText());
}

TEST(Metrics, KindConflictThrows)
{
    obs::MetricsRegistry reg;
    reg.counter("ditto_thing_total");
    EXPECT_THROW(reg.gauge("ditto_thing_total"), std::logic_error);
}

TEST(Metrics, PullCallbacksSampleAtSnapshotTime)
{
    obs::MetricsRegistry reg;
    std::uint64_t source = 7;
    reg.addCounterFn("ditto_pull_total", {}, "",
                     [&source] { return source; });
    EXPECT_NE(reg.prometheusText().find("ditto_pull_total 7"),
              std::string::npos);
    source = 9;  // no re-registration needed
    EXPECT_NE(reg.prometheusText().find("ditto_pull_total 9"),
              std::string::npos);
}

TEST(Metrics, DeploymentRegistrationMatchesGroundTruth)
{
    ObsWorld w(24, /*faulted=*/true);
    w.run();

    const auto snap = obs::parseJson(w.registry.jsonText());
    const auto *counters = snap.find("counters");
    ASSERT_NE(counters, nullptr);

    const auto counter = [&](const std::string &key) {
        const auto *v = counters->find(key);
        return v ? v->asU64() : ~0ull;
    };

    for (const auto &svc : w.dep.services()) {
        const std::string label =
            "{service=\"" + svc->name() + "\"}";
        EXPECT_EQ(counter("ditto_service_requests_total" + label),
                  svc->stats().requests);
        EXPECT_EQ(counter("ditto_service_rx_bytes_total" + label),
                  svc->stats().rxBytes);
        EXPECT_EQ(counter("ditto_service_rpc_timeouts_total" + label),
                  svc->stats().rpcTimeouts);
    }

    os::Network &net = w.dep.network();
    EXPECT_EQ(counter("ditto_network_bytes_sent_total"),
              net.bytesSent());
    // Byte accounting is exact, like message accounting.
    EXPECT_EQ(net.bytesSent(), net.bytesDelivered() +
                  net.bytesDropped() + net.bytesInFlight());
    EXPECT_GT(net.bytesDropped(), 0u);  // the fault window dropped

    EXPECT_EQ(counter("ditto_trace_outcomes_total{kind=\"rpc_ok\"}"),
              w.dep.tracer().outcomeCount(trace::OutcomeKind::RpcOk));
    EXPECT_EQ(counter("ditto_fault_windows_started_total"), 1u);
}

// ---------------------------------------------------------------------------
// Determinism across RunExecutor worker counts
// ---------------------------------------------------------------------------

std::vector<ObsArtifacts>
exportSweep(unsigned jobs)
{
    sim::RunExecutor pool(jobs);
    std::vector<std::function<ObsArtifacts()>> tasks;
    for (std::uint64_t seed : {31ull, 32ull, 33ull}) {
        tasks.push_back([seed] {
            ObsWorld w(seed, /*faulted=*/true);
            w.run(sim::milliseconds(40));
            return w.artifacts();
        });
    }
    return pool.runOrdered(std::move(tasks));
}

TEST(ObsDeterminism, ExportBytesIdenticalAtAnyWorkerCount)
{
    const auto serial = exportSweep(1);
    const auto parallel = exportSweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].traceJson, parallel[i].traceJson);
        EXPECT_EQ(serial[i].prometheus, parallel[i].prometheus);
        EXPECT_EQ(serial[i].metricsJson, parallel[i].metricsJson);
    }
}

} // namespace
