/**
 * @file
 * Tests for the iform table and instruction clustering.
 */

#include <gtest/gtest.h>

#include "core/inst_clusterer.h"
#include "hw/isa.h"
#include "sim/rng.h"

namespace {

using namespace ditto;
using hw::Isa;

TEST(Isa, TableNonTrivial)
{
    const Isa &isa = Isa::instance();
    EXPECT_GE(isa.size(), 100u);
}

TEST(Isa, LookupByNameRoundTrips)
{
    const Isa &isa = Isa::instance();
    for (hw::Opcode op = 0; op < isa.size(); ++op)
        EXPECT_EQ(isa.opcode(isa.info(op).iform), op);
}

/** Parameterized structural checks over the whole table. */
class IsaRowTest : public ::testing::TestWithParam<hw::Opcode>
{
};

TEST_P(IsaRowTest, RowInvariants)
{
    const Isa &isa = Isa::instance();
    const hw::InstInfo &info = isa.info(GetParam());
    EXPECT_FALSE(info.iform.empty());
    EXPECT_GE(info.uops, 1);
    EXPECT_GE(info.latency, 1);
    EXPECT_NE(info.ports, 0) << info.iform;
    // Loads must be issueable on load AGU ports; plain stores on
    // store ports (RMW forms carry both flags and use load ports).
    if (info.isLoad) {
        EXPECT_NE(info.ports & (hw::kPort2 | hw::kPort3), 0)
            << info.iform;
    } else if (info.isStore) {
        EXPECT_NE(info.ports & (hw::kPort4 | hw::kPort7), 0)
            << info.iform;
    }
    // Branches are control-class.
    if (info.isBranch)
        EXPECT_EQ(info.cls, hw::InstClass::Control) << info.iform;
    // REP forms must declare a per-element cost.
    if (info.cls == hw::InstClass::RepString)
        EXPECT_GT(info.repPerElem, 0) << info.iform;
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, IsaRowTest,
    ::testing::Range<hw::Opcode>(0,
        static_cast<hw::Opcode>(Isa::instance().size())));

TEST(Isa, SpecialtyCostsDifferentiated)
{
    const Isa &isa = Isa::instance();
    // The paper's example: CRC32 is 3 cycles, port-1 only; plain adds
    // are 1 cycle on any ALU port.
    const auto &crc = isa.info(isa.opcode("CRC32_GPR64_GPR64"));
    const auto &add = isa.info(isa.opcode("ADD_GPR64_GPR64"));
    EXPECT_EQ(crc.latency, 3);
    EXPECT_EQ(crc.ports, hw::kPort1);
    EXPECT_EQ(add.latency, 1);
    EXPECT_GT(std::popcount(static_cast<unsigned>(add.ports)), 2);
    // Division is long-latency and single-ported.
    const auto &divq = isa.info(isa.opcode("DIV_GPR64"));
    EXPECT_GT(divq.latency, 20);
    // LOCK forms cost tens of cycles.
    const auto &lock = isa.info(isa.opcode("LOCK_ADD_MEM64_GPR64"));
    EXPECT_GE(lock.latency, 15);
}

TEST(Isa, ClassQueries)
{
    const Isa &isa = Isa::instance();
    const auto divs = isa.opcodesOfClass(hw::InstClass::IntDiv);
    EXPECT_GE(divs.size(), 2u);
    for (hw::Opcode op : divs)
        EXPECT_EQ(isa.info(op).cls, hw::InstClass::IntDiv);
    EXPECT_TRUE(isa.touchesMemory(isa.opcode("MOV_GPR64_MEM64")));
    EXPECT_FALSE(isa.touchesMemory(isa.opcode("ADD_GPR64_GPR64")));
}

TEST(Isa, NamesUnique)
{
    const Isa &isa = Isa::instance();
    std::set<std::string_view> names;
    for (hw::Opcode op = 0; op < isa.size(); ++op)
        names.insert(isa.info(op).iform);
    EXPECT_EQ(names.size(), isa.size());
}

// ---------------------------------------------------------------------------
// InstClusterer
// ---------------------------------------------------------------------------

TEST(InstClusterer, RolesNeverMix)
{
    std::vector<double> counts(Isa::instance().size(), 1.0);
    core::InstClusterer clusterer(counts);
    for (const auto &cluster : clusterer.clusters()) {
        for (hw::Opcode op : cluster.members)
            EXPECT_EQ(core::instRoleOf(op), cluster.role);
        // Medoid belongs to the cluster.
        EXPECT_NE(std::find(cluster.members.begin(),
                            cluster.members.end(), cluster.medoid),
                  cluster.members.end());
    }
}

TEST(InstClusterer, ClustersAreNonTrivialPartition)
{
    std::vector<double> counts(Isa::instance().size(), 1.0);
    core::InstClusterer clusterer(counts);
    std::size_t total = 0;
    for (const auto &cluster : clusterer.clusters())
        total += cluster.members.size();
    EXPECT_EQ(total, Isa::instance().size());
    // More than one cluster per role family but far fewer than one
    // per iform (i.e., actual grouping happened).
    EXPECT_GT(clusterer.clusters().size(), 6u);
    EXPECT_LT(clusterer.clusters().size(), Isa::instance().size());
}

TEST(InstClusterer, SamplingFollowsWeights)
{
    const Isa &isa = Isa::instance();
    std::vector<double> counts(isa.size(), 0.0);
    // Weight only integer divide: ALU samples must be long-latency.
    counts[isa.opcode("DIV_GPR64")] = 100.0;
    core::InstClusterer clusterer(counts);
    sim::Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        const hw::Opcode op = clusterer.sample(core::InstRole::Alu, rng);
        EXPECT_EQ(isa.info(op).cls, hw::InstClass::IntDiv);
    }
}

TEST(InstClusterer, FallbackWhenRoleUnprofiled)
{
    std::vector<double> counts(Isa::instance().size(), 0.0);
    core::InstClusterer clusterer(counts);
    sim::Rng rng(4);
    // No weight anywhere: canonical fallbacks returned, never crash.
    EXPECT_EQ(Isa::instance().info(
        clusterer.sample(core::InstRole::Load, rng)).isLoad, true);
    EXPECT_EQ(Isa::instance().info(
        clusterer.sample(core::InstRole::Store, rng)).isStore, true);
    EXPECT_EQ(Isa::instance().info(
        clusterer.sample(core::InstRole::Branch, rng)).isBranch, true);
}

TEST(InstClusterer, ObfuscationMedoidCanDiffer)
{
    const Isa &isa = Isa::instance();
    std::vector<double> counts(isa.size(), 0.0);
    // Profile a niche arithmetic form; the medoid of its cluster is a
    // *representative*, not necessarily the profiled opcode itself --
    // i.e., resource-equivalent substitution is possible.
    counts[isa.opcode("NEG_GPR64")] = 10.0;
    core::InstClusterer clusterer(counts);
    sim::Rng rng(5);
    const hw::Opcode op = clusterer.sample(core::InstRole::Alu, rng);
    const auto &info = isa.info(op);
    EXPECT_EQ(info.cls, hw::InstClass::IntArith);
    EXPECT_EQ(info.latency, 1);
}

} // namespace
