/**
 * @file
 * Tests for the skeleton analyzer: tree edit distance, clustering,
 * and network/thread model inference -- plus the topology analyzer.
 */

#include <gtest/gtest.h>

#include "app/service.h"
#include "core/skeleton_analyzer.h"
#include "core/topology_analyzer.h"
#include "trace/tracer.h"

namespace {

using namespace ditto;
using namespace ditto::core;

CallTree
tree(std::vector<std::string> paths)
{
    return CallTree::fromPaths(paths);
}

TEST(CallTree, BuildsFromPaths)
{
    const CallTree t = tree({"/a", "/a/b", "/a/c", "/d"});
    EXPECT_EQ(t.size(), 5u);  // root + a,b,c,d
}

TEST(TreeEditDistance, IdenticalTreesZero)
{
    const CallTree a = tree({"/x", "/x/y", "/z"});
    const CallTree b = tree({"/x", "/x/y", "/z"});
    EXPECT_DOUBLE_EQ(treeEditDistance(a, b), 0.0);
}

TEST(TreeEditDistance, SingleRelabelCostsOne)
{
    const CallTree a = tree({"/x", "/x/y"});
    const CallTree b = tree({"/x", "/x/q"});
    EXPECT_DOUBLE_EQ(treeEditDistance(a, b), 1.0);
}

TEST(TreeEditDistance, InsertionCostsOne)
{
    const CallTree a = tree({"/x"});
    const CallTree b = tree({"/x", "/x/y"});
    EXPECT_DOUBLE_EQ(treeEditDistance(a, b), 1.0);
}

TEST(TreeEditDistance, DisjointTreesCostBounded)
{
    const CallTree a = tree({"/a", "/a/b"});
    const CallTree b = tree({"/c", "/c/d", "/e"});
    const double d = treeEditDistance(a, b);
    // At most delete all of a's non-root + insert all of b's
    // non-root; at least the size difference.
    EXPECT_GE(d, 1.0);
    EXPECT_LE(d, 5.0);
}

TEST(TreeEditDistance, Symmetric)
{
    const CallTree a = tree({"/p", "/p/q", "/p/q/r", "/s"});
    const CallTree b = tree({"/p", "/p/z", "/s", "/s/t"});
    EXPECT_DOUBLE_EQ(treeEditDistance(a, b), treeEditDistance(b, a));
}

TEST(Agglomerative, TwoObviousGroups)
{
    // 0-1-2 close; 3-4 close; groups far apart.
    std::vector<std::vector<double>> d(5, std::vector<double>(5, 0.9));
    auto close = [&](int i, int j) { d[i][j] = d[j][i] = 0.05; };
    close(0, 1);
    close(1, 2);
    close(0, 2);
    close(3, 4);
    for (int i = 0; i < 5; ++i)
        d[i][i] = 0;
    const auto clusters = agglomerativeCluster(d, 0.3);
    EXPECT_EQ(clusters[0], clusters[1]);
    EXPECT_EQ(clusters[1], clusters[2]);
    EXPECT_EQ(clusters[3], clusters[4]);
    EXPECT_NE(clusters[0], clusters[3]);
}

TEST(Agglomerative, ThresholdZeroKeepsSingletons)
{
    std::vector<std::vector<double>> d(3, std::vector<double>(3, 0.5));
    for (int i = 0; i < 3; ++i)
        d[i][i] = 0;
    const auto clusters = agglomerativeCluster(d, 0.01);
    EXPECT_NE(clusters[0], clusters[1]);
    EXPECT_NE(clusters[1], clusters[2]);
}

// ---------------------------------------------------------------------------
// Skeleton inference from synthetic observations.
// ---------------------------------------------------------------------------

profile::ThreadObservation
worker_obs(const std::string &name, bool epoll, std::uint64_t reads,
           std::uint64_t emptyReads = 0)
{
    profile::ThreadObservation obs;
    obs.name = name;
    obs.callPaths = {"/fetch", "/fetch/handle", "/fetch/respond"};
    obs.syscallCounts[static_cast<int>(app::SysKind::SocketRead)] =
        reads;
    if (emptyReads) {
        obs.emptySyscallCounts[static_cast<int>(
            app::SysKind::SocketRead)] = emptyReads;
    }
    if (epoll) {
        obs.syscallCounts[static_cast<int>(app::SysKind::EpollWait)] =
            reads;
    }
    obs.syscallCounts[static_cast<int>(app::SysKind::SocketWrite)] =
        reads;
    return obs;
}

profile::ThreadObservation
background_obs(const std::string &name, std::uint64_t sleeps,
               std::uint64_t pwrites = 0)
{
    profile::ThreadObservation obs;
    obs.name = name;
    obs.callPaths = {"/housekeeping"};
    obs.syscallCounts[static_cast<int>(app::SysKind::Nanosleep)] =
        sleeps;
    if (pwrites) {
        obs.syscallCounts[static_cast<int>(app::SysKind::Pwrite)] =
            pwrites;
    }
    return obs;
}

TEST(SkeletonAnalyzer, InfersIoMultiplexPool)
{
    std::vector<profile::ThreadObservation> threads;
    for (int i = 0; i < 4; ++i)
        threads.push_back(worker_obs("w" + std::to_string(i), true, 500));
    threads.push_back(background_obs("bg", 20));

    const SkeletonInference inf = analyzeSkeleton(
        threads, sim::milliseconds(200), 16, 0.0);
    EXPECT_EQ(inf.serverModel, app::ServerModel::IoMultiplex);
    EXPECT_EQ(inf.workers, 4u);
    EXPECT_FALSE(inf.threadPerConnection);
    ASSERT_EQ(inf.background.size(), 1u);
    EXPECT_EQ(inf.background[0].count, 1u);
    // 20 sleeps over 200ms -> ~10ms period.
    EXPECT_NEAR(static_cast<double>(inf.background[0].period),
                static_cast<double>(sim::milliseconds(10)),
                static_cast<double>(sim::milliseconds(3)));
    EXPECT_EQ(inf.clientModel, app::ClientModel::Sync);
}

TEST(SkeletonAnalyzer, InfersThreadPerConnection)
{
    std::vector<profile::ThreadObservation> threads;
    for (int i = 0; i < 16; ++i) {
        threads.push_back(
            worker_obs("conn" + std::to_string(i), false, 100));
    }
    const SkeletonInference inf = analyzeSkeleton(
        threads, sim::milliseconds(200), 16, 0.0);
    EXPECT_EQ(inf.serverModel, app::ServerModel::BlockingPerConn);
    EXPECT_TRUE(inf.threadPerConnection);
}

TEST(SkeletonAnalyzer, InfersNonBlockingFromEmptyReads)
{
    std::vector<profile::ThreadObservation> threads;
    // Polling threads: far more empty reads than successful ones.
    threads.push_back(worker_obs("p0", false, 10000, 9500));
    threads.push_back(worker_obs("p1", false, 10000, 9500));
    const SkeletonInference inf = analyzeSkeleton(
        threads, sim::milliseconds(200), 8, 0.0);
    EXPECT_EQ(inf.serverModel, app::ServerModel::NonBlocking);
    EXPECT_FALSE(inf.threadPerConnection);
}

TEST(SkeletonAnalyzer, AsyncClientDetected)
{
    std::vector<profile::ThreadObservation> threads;
    threads.push_back(worker_obs("w0", true, 100));
    const SkeletonInference inf = analyzeSkeleton(
        threads, sim::milliseconds(200), 8, 0.6);
    EXPECT_EQ(inf.clientModel, app::ClientModel::Async);
}

TEST(SkeletonAnalyzer, ClustersWorkersAndBackgroundSeparately)
{
    std::vector<profile::ThreadObservation> threads;
    threads.push_back(worker_obs("w0", true, 400));
    threads.push_back(worker_obs("w1", true, 420));
    threads.push_back(background_obs("bg0", 10, 5));
    const SkeletonInference inf = analyzeSkeleton(
        threads, sim::milliseconds(100), 4, 0.0);
    EXPECT_GE(inf.clusterCount, 2u);
    EXPECT_EQ(inf.clusterOf[0], inf.clusterOf[1]);
    EXPECT_NE(inf.clusterOf[0], inf.clusterOf[2]);
}

// ---------------------------------------------------------------------------
// Topology analyzer.
// ---------------------------------------------------------------------------

TEST(TopologyAnalyzer, RecoversDagAndEdgeStats)
{
    trace::Tracer tracer(1.0);
    // 100 frontend requests; each calls mid once; mid calls leaf on
    // half of its requests.
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t traceId = 1000 + i;
        tracer.recordSpan({traceId, tracer.newSpanId(), 0,
                           "frontend", 0, 0, 10});
        tracer.recordEdge({traceId, 1, "frontend", "mid", 0, 100, 400});
        tracer.recordSpan({traceId, tracer.newSpanId(), 1, "mid", 0,
                           2, 8});
        if (i % 2 == 0) {
            tracer.recordEdge({traceId, 2, "mid", "leaf", 0, 50, 200});
            tracer.recordSpan({traceId, tracer.newSpanId(), 2, "leaf",
                               0, 3, 6});
        }
    }

    const Topology topo = analyzeTopology(tracer);
    EXPECT_EQ(topo.root, "frontend");
    EXPECT_EQ(topo.services.size(), 3u);
    // Dependency order: leaf before mid before frontend.
    EXPECT_EQ(topo.services.front(), "leaf");
    EXPECT_EQ(topo.services.back(), "frontend");

    const auto feEdges = topo.outEdges("frontend");
    ASSERT_EQ(feEdges.size(), 1u);
    EXPECT_EQ(feEdges[0].callee, "mid");
    EXPECT_NEAR(feEdges[0].callsPerCallerRequest, 1.0, 0.01);
    EXPECT_NEAR(feEdges[0].avgRequestBytes, 100, 0.01);

    const auto midEdges = topo.outEdges("mid");
    ASSERT_EQ(midEdges.size(), 1u);
    EXPECT_NEAR(midEdges[0].callsPerCallerRequest, 0.5, 0.01);
    EXPECT_TRUE(topo.contains("leaf"));
    EXPECT_FALSE(topo.contains("nope"));
}

TEST(TopologyAnalyzer, SamplingPreservesRatios)
{
    trace::Tracer tracer(0.25);
    for (int i = 0; i < 4000; ++i) {
        const std::uint64_t traceId = 50 + i * 7;
        if (!tracer.sampled(traceId))
            continue;
        tracer.recordSpan({traceId, tracer.newSpanId(), 0, "a", 0, 0,
                           1});
        tracer.recordEdge({traceId, 1, "a", "b", 0, 10, 10});
        tracer.recordEdge({traceId, 1, "a", "b", 0, 10, 10});
    }
    const Topology topo = analyzeTopology(tracer);
    const auto edges = topo.outEdges("a");
    ASSERT_EQ(edges.size(), 1u);
    // Two calls per request, regardless of the sampling rate.
    EXPECT_NEAR(edges[0].callsPerCallerRequest, 2.0, 0.05);
}

} // namespace
