/**
 * @file
 * Tests for clone-spec serialization: round-trip fidelity, behaviour
 * equivalence of a reloaded clone, and parse-error handling.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/body_generator.h"
#include "core/skeleton_generator.h"
#include "core/spec_io.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "profile/perf_report.h"
#include "workload/loadgen.h"

namespace {

using namespace ditto;
using namespace ditto::core;

app::ServiceSpec
richSpec()
{
    app::ServiceSpec spec;
    spec.name = "svc";
    spec.serverModel = app::ServerModel::BlockingPerConn;
    spec.clientModel = app::ClientModel::Async;
    spec.threads.workers = 3;
    spec.threads.threadPerConnection = true;
    spec.locks = 2;
    spec.fileBytes = {1 << 30};
    spec.filePrewarmFraction = 0.25;
    spec.downstreams = {"other_clone"};

    hw::CodeBlock block;
    block.label = "svc.blk0";
    block.streams.push_back(hw::MemStreamDesc{
        4096, hw::StreamKind::PointerChase, true, 1, 7});
    block.branches.push_back(hw::BranchDesc{3, 5});
    hw::Inst inst;
    inst.opcode = hw::Isa::instance().opcode("ADD_GPR64_GPR64");
    inst.dst = 1;
    inst.src0 = 2;
    inst.src1 = 3;
    block.insts.push_back(inst);
    hw::Inst load;
    load.opcode = hw::Isa::instance().opcode("MOV_GPR64_MEM64");
    load.dst = 4;
    load.memStream = 0;
    block.insts.push_back(load);
    hw::Inst jcc;
    jcc.opcode = hw::Isa::instance().opcode("JNZ_RELBR");
    jcc.src0 = 1;
    jcc.branch = 0;
    block.insts.push_back(jcc);
    hw::Inst rep;
    rep.opcode = hw::Isa::instance().opcode("REP_MOVSB");
    rep.memStream = 0;
    rep.repBytes = 512;
    block.insts.push_back(rep);
    spec.blocks.push_back(block);

    app::EndpointSpec ep;
    ep.name = "cloned";
    ep.responseBytesMin = 100;
    ep.responseBytesMax = 200;
    ep.handler.ops = {
        app::opCall("work", {{app::opCompute(0, 3, 9)}}),
        app::opFileRead(0, 1024, 4096),
        app::opLock(0),
        app::opUnlock(0),
        app::opChoice({0.4, 0.6},
                      {{{app::opRpcFanout({{0, 0, 64, 128}})}}, {}}),
        app::opSleep(12345),
    };
    spec.endpoints.push_back(ep);

    app::BackgroundSpec bg;
    bg.name = "flusher";
    bg.period = sim::milliseconds(42);
    bg.body.ops = {app::opFileWrite(0, 100, 300)};
    spec.background.push_back(bg);
    return spec;
}

void
expectSpecsEqual(const app::ServiceSpec &a, const app::ServiceSpec &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.serverModel, b.serverModel);
    EXPECT_EQ(a.clientModel, b.clientModel);
    EXPECT_EQ(a.threads.workers, b.threads.workers);
    EXPECT_EQ(a.threads.threadPerConnection,
              b.threads.threadPerConnection);
    EXPECT_EQ(a.locks, b.locks);
    EXPECT_EQ(a.fileBytes, b.fileBytes);
    EXPECT_DOUBLE_EQ(a.filePrewarmFraction, b.filePrewarmFraction);
    EXPECT_EQ(a.downstreams, b.downstreams);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
        const auto &ba = a.blocks[i];
        const auto &bb = b.blocks[i];
        EXPECT_EQ(ba.label, bb.label);
        ASSERT_EQ(ba.insts.size(), bb.insts.size());
        for (std::size_t k = 0; k < ba.insts.size(); ++k) {
            EXPECT_EQ(ba.insts[k].opcode, bb.insts[k].opcode);
            EXPECT_EQ(ba.insts[k].dst, bb.insts[k].dst);
            EXPECT_EQ(ba.insts[k].src0, bb.insts[k].src0);
            EXPECT_EQ(ba.insts[k].src1, bb.insts[k].src1);
            EXPECT_EQ(ba.insts[k].memStream, bb.insts[k].memStream);
            EXPECT_EQ(ba.insts[k].branch, bb.insts[k].branch);
            EXPECT_EQ(ba.insts[k].repBytes, bb.insts[k].repBytes);
        }
        ASSERT_EQ(ba.streams.size(), bb.streams.size());
        for (std::size_t k = 0; k < ba.streams.size(); ++k) {
            EXPECT_EQ(ba.streams[k].wsBytes, bb.streams[k].wsBytes);
            EXPECT_EQ(ba.streams[k].kind, bb.streams[k].kind);
            EXPECT_EQ(ba.streams[k].shared, bb.streams[k].shared);
            EXPECT_EQ(ba.streams[k].poolKey, bb.streams[k].poolKey);
        }
        ASSERT_EQ(ba.branches.size(), bb.branches.size());
        for (std::size_t k = 0; k < ba.branches.size(); ++k) {
            EXPECT_EQ(ba.branches[k].takenExp,
                      bb.branches[k].takenExp);
            EXPECT_EQ(ba.branches[k].transExp,
                      bb.branches[k].transExp);
        }
    }
    ASSERT_EQ(a.endpoints.size(), b.endpoints.size());
    ASSERT_EQ(a.background.size(), b.background.size());
    for (std::size_t i = 0; i < a.background.size(); ++i)
        EXPECT_EQ(a.background[i].period, b.background[i].period);
    // Program equality via re-serialization.
    EXPECT_EQ(specToString(a), specToString(b));
}

TEST(SpecIo, RoundTripsRichSpec)
{
    const app::ServiceSpec original = richSpec();
    const std::string text = specToString(original);
    const auto parsed = specsFromString(text);
    ASSERT_EQ(parsed.size(), 1u);
    expectSpecsEqual(original, parsed[0]);
}

TEST(SpecIo, RoundTripsGeneratedClone)
{
    // A real generated clone (hundreds of instructions, nested ops).
    profile::ServiceProfile prof;
    prof.serviceName = "orig";
    prof.requestsObserved = 100;
    prof.mix.counts.assign(hw::Isa::instance().size(), 1.0);
    prof.mix.instsPerRequest = 5000;
    prof.branch.branchFraction = 0.1;
    prof.branch.bins[2][3] = 10;
    prof.dmem.accessesPerInst = 0.3;
    for (std::size_t i = 0; i < profile::kWsSizes; ++i)
        prof.dmem.hitsBySize[i] = i >= 10 ? 1000 : 100.0 * i;
    for (std::size_t i = 0; i < profile::kWsSizes; ++i)
        prof.imem.hitsBySize[i] = i >= 8 ? 500 : 60.0 * i;
    prof.dep.raw[3] = 10;
    prof.avgResponseBytes = 400;

    SkeletonInference skel;
    skel.workers = 2;
    const app::ServiceSpec clone = generateClone(
        prof, skel, {}, {}, GenerationConfig::stage('H'));

    const auto parsed = specsFromString(specToString(clone));
    ASSERT_EQ(parsed.size(), 1u);
    expectSpecsEqual(clone, parsed[0]);
}

TEST(SpecIo, MultiServiceTopology)
{
    std::ostringstream os;
    app::ServiceSpec a = richSpec();
    app::ServiceSpec b = richSpec();
    b.name = "other_clone";
    b.downstreams.clear();
    writeTopology(os, {a, b});
    const auto parsed = specsFromString(os.str());
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].name, "svc");
    EXPECT_EQ(parsed[1].name, "other_clone");
}

TEST(SpecIo, ReloadedSpecBehavesIdentically)
{
    // Deploy original and reloaded specs in identical worlds: they
    // must produce identical simulations (determinism + fidelity).
    const app::ServiceSpec spec = richSpec();
    const auto reloaded = specsFromString(specToString(spec));
    ASSERT_EQ(reloaded.size(), 1u);

    auto run = [](const app::ServiceSpec &s) {
        app::Deployment dep(71);
        os::Machine &m = dep.addMachine("n", hw::platformA());
        app::ServiceSpec stub;
        stub.name = "other_clone";
        stub.threads.workers = 1;
        hw::BlockSpec bs;
        bs.label = "other_clone.h";
        bs.instCount = 32;
        bs.seed = 1;
        stub.blocks.push_back(hw::buildBlock(bs));
        app::EndpointSpec ep;
        ep.name = "op";
        ep.handler.ops = {app::opCompute(0, 1)};
        stub.endpoints.push_back(ep);
        dep.deploy(stub, m);
        app::ServiceInstance &svc = dep.deploy(s, m);
        dep.wireAll();
        workload::LoadSpec load;
        load.qps = 800;
        load.connections = 3;
        workload::LoadGen gen(dep, svc, load, 5);
        gen.start();
        dep.runFor(sim::milliseconds(250));
        return std::tuple(svc.stats().requests,
                          svc.stats().exec.instructions,
                          gen.latency().percentile(0.99));
    };
    EXPECT_EQ(run(spec), run(reloaded[0]));
}

TEST(SpecIo, FileSaveAndLoad)
{
    const std::string path = "/tmp/ditto_spec_io_test.dto";
    ASSERT_TRUE(saveTopology(path, {richSpec()}));
    const auto loaded = loadTopology(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].name, "svc");
    std::remove(path.c_str());
}

TEST(SpecIo, ParseErrorsAreDiagnosed)
{
    EXPECT_THROW(specsFromString("garbage at top level"),
                 std::runtime_error);
    EXPECT_THROW(specsFromString("service \"x\" {\n  bogus 1\n}\n"),
                 std::runtime_error);
    EXPECT_THROW(
        specsFromString("service \"x\" {\n"),  // unterminated
        std::runtime_error);
    EXPECT_THROW(specsFromString(
                     "service \"x\" {\n  block \"b\" {\n"
                     "    inst op=NOT_A_REAL_IFORM\n  }\n}\n"),
                 std::exception);
}

TEST(SpecIo, CommentsAndBlankLinesIgnored)
{
    const std::string text =
        "# a shared ditto clone\n\n" + specToString(richSpec()) +
        "\n# trailing comment\n";
    const auto parsed = specsFromString(text);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].name, "svc");
}

} // namespace
