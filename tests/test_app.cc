/**
 * @file
 * Tests for the service runtime: server models, op interpreter, RPC
 * (sync + async fanout), locks, background threads, stats windows.
 */

#include <gtest/gtest.h>

#include "app/deployment.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "workload/loadgen.h"

namespace {

using namespace ditto;
using app::Op;
using app::Program;
using app::ServiceSpec;

hw::CodeBlock
tinyBlock(const std::string &label, std::uint64_t seed)
{
    hw::BlockSpec spec;
    spec.label = label;
    spec.instCount = 64;
    spec.seed = seed;
    return hw::buildBlock(spec);
}

ServiceSpec
baseService(const std::string &name, app::ServerModel model)
{
    ServiceSpec spec;
    spec.name = name;
    spec.serverModel = model;
    spec.threads.workers = 2;
    spec.threads.threadPerConnection =
        model == app::ServerModel::BlockingPerConn;
    spec.blocks.push_back(tinyBlock(name + ".work", 1));
    app::EndpointSpec ep;
    ep.name = "op";
    ep.handler.ops = {app::opCompute(0, 10)};
    ep.responseBytesMin = ep.responseBytesMax = 256;
    spec.endpoints.push_back(ep);
    return spec;
}

struct Harness
{
    app::Deployment dep{11};
    os::Machine &machine;
    explicit Harness() : machine(dep.addMachine("n", hw::platformA()))
    {
    }

    workload::LoadGen
    drive(app::ServiceInstance &svc, double qps, unsigned conns,
          bool openLoop = true)
    {
        workload::LoadSpec load;
        load.qps = qps;
        load.connections = conns;
        load.openLoop = openLoop;
        return workload::LoadGen(dep, svc, load, 9);
    }
};

/** Every server model must serve requests correctly. */
class ServerModelTest
    : public ::testing::TestWithParam<app::ServerModel>
{
};

TEST_P(ServerModelTest, ServesRequestsUnderLoad)
{
    Harness h;
    app::ServiceInstance &svc =
        h.dep.deploy(baseService("svc", GetParam()), h.machine);
    h.dep.wireAll();
    auto gen = h.drive(svc, 2000, 4);
    gen.start();
    h.dep.runFor(sim::milliseconds(300));
    EXPECT_GT(gen.completed(), 400u);
    EXPECT_GT(svc.stats().requests, 400u);
    EXPECT_LT(gen.latency().percentile(0.99), sim::milliseconds(5));
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ServerModelTest,
    ::testing::Values(app::ServerModel::IoMultiplex,
                      app::ServerModel::BlockingPerConn,
                      app::ServerModel::NonBlocking));

TEST(ServiceRuntime, NonBlockingBurnsCpuAtIdle)
{
    Harness h;
    app::ServiceInstance &poll = h.dep.deploy(
        baseService("poll", app::ServerModel::NonBlocking), h.machine);
    app::ServiceInstance &epoll = h.dep.deploy(
        baseService("epoll", app::ServerModel::IoMultiplex),
        h.machine);
    h.dep.wireAll();
    auto g1 = h.drive(poll, 50, 2);
    auto g2 = h.drive(epoll, 50, 2);
    g1.start();
    g2.start();
    h.dep.runFor(sim::milliseconds(200));
    // At near-idle load the polling server executes far more
    // (kernel) instructions than the epoll server -- the paper's
    // "wastes CPU time at low loads" observation.
    EXPECT_GT(poll.stats().exec.instructions,
              3 * epoll.stats().exec.instructions);
}

TEST(ServiceRuntime, ChoiceFollowsProbabilities)
{
    Harness h;
    ServiceSpec spec = baseService("choice", app::ServerModel::IoMultiplex);
    spec.blocks.push_back(tinyBlock("choice.rare", 2));
    spec.endpoints[0].handler.ops = {
        app::opChoice({0.2, 0.8},
                      {{{app::opCompute(1, 200)}},
                       {{app::opCompute(0, 1)}}}),
    };
    app::ServiceInstance &svc = h.dep.deploy(spec, h.machine);
    h.dep.wireAll();
    auto gen = h.drive(svc, 2000, 4);
    gen.start();
    h.dep.runFor(sim::milliseconds(300));
    // ~20% of requests run the heavy arm (200 iters vs 1):
    // user-level inst/request must sit between the two extremes
    // (kernel instructions excluded -- they are per-request constant).
    const double perReq =
        (svc.stats().exec.instructions -
         svc.stats().exec.kernelInstructions) /
        static_cast<double>(svc.stats().requests);
    const double heavy = 200.0 * 64;
    EXPECT_GT(perReq, 0.10 * heavy);
    EXPECT_LT(perReq, 0.40 * heavy);
}

TEST(ServiceRuntime, SyncRpcPropagatesDownstream)
{
    Harness h;
    ServiceSpec backend = baseService("backend",
                                      app::ServerModel::IoMultiplex);
    ServiceSpec frontend = baseService("frontend",
                                       app::ServerModel::IoMultiplex);
    frontend.downstreams = {"backend"};
    frontend.endpoints[0].handler.ops = {
        app::opCompute(0, 5),
        app::opRpc(0, 0, 128, 512),
        app::opCompute(0, 5),
    };
    app::ServiceInstance &be = h.dep.deploy(backend, h.machine);
    app::ServiceInstance &fe = h.dep.deploy(frontend, h.machine);
    h.dep.wireAll();
    auto gen = h.drive(fe, 1000, 4);
    gen.start();
    h.dep.runFor(sim::milliseconds(300));
    EXPECT_GT(fe.stats().requests, 200u);
    // Backend served one request per frontend request.
    EXPECT_NEAR(static_cast<double>(be.stats().requests),
                static_cast<double>(fe.stats().requests),
                fe.stats().requests * 0.05 + 10);
    // Frontend latency includes the downstream hop.
    EXPECT_GT(fe.stats().latency.mean(),
              be.stats().latency.mean());
}

TEST(ServiceRuntime, AsyncFanoutFasterThanSyncSequence)
{
    auto build = [](app::ClientModel client) {
        Harness h;
        // Three slow leaves.
        for (int i = 0; i < 3; ++i) {
            ServiceSpec leaf = baseService(
                "leaf" + std::to_string(i),
                app::ServerModel::IoMultiplex);
            leaf.endpoints[0].handler.ops = {app::opCompute(0, 400)};
            h.dep.deploy(leaf, h.machine);
        }
        ServiceSpec root = baseService("root",
                                       app::ServerModel::IoMultiplex);
        root.clientModel = client;
        root.downstreams = {"leaf0", "leaf1", "leaf2"};
        root.endpoints[0].handler.ops = {
            app::opRpcFanout({{0, 0, 64, 64},
                              {1, 0, 64, 64},
                              {2, 0, 64, 64}}),
        };
        app::ServiceInstance &fe = h.dep.deploy(root, h.machine);
        h.dep.wireAll();
        auto gen = h.drive(fe, 500, 4);
        gen.start();
        h.dep.runFor(sim::milliseconds(300));
        EXPECT_GT(gen.completed(), 50u);
        return gen.latency().percentile(0.5);
    };
    const auto async = build(app::ClientModel::Async);
    const auto sync = build(app::ClientModel::Sync);
    // Parallel fanout hides two of the three leaf round trips.
    EXPECT_LT(async, sync);
}

TEST(ServiceRuntime, LockSerializesCriticalSection)
{
    Harness h;
    ServiceSpec spec = baseService("locky", app::ServerModel::IoMultiplex);
    spec.threads.workers = 4;
    spec.locks = 1;
    spec.endpoints[0].handler.ops = {
        app::opLock(0),
        app::opCompute(0, 2500),  // ~100us critical section
        app::opUnlock(0),
    };
    app::ServiceInstance &svc = h.dep.deploy(spec, h.machine);
    h.dep.wireAll();
    auto gen = h.drive(svc, 5000, 16);
    gen.start();
    h.dep.runFor(sim::milliseconds(300));
    EXPECT_GT(gen.completed(), 200u);
    // Contention shows up as futex syscalls.
    EXPECT_GT(h.machine.kernel().counts().futex, 10u);
}

TEST(ServiceRuntime, FileReadsHitPageCacheAfterPrewarm)
{
    Harness h;
    ServiceSpec warm = baseService("warm", app::ServerModel::IoMultiplex);
    warm.fileBytes = {8 << 20};
    warm.filePrewarmFraction = 1.0;
    warm.endpoints[0].handler.ops = {app::opFileRead(0, 4096, 8192)};

    ServiceSpec cold = warm;
    cold.name = "cold";
    cold.fileBytes = {4ull << 30};
    cold.filePrewarmFraction = 0.0;
    cold.blocks[0].label = "cold.work";

    app::ServiceInstance &w = h.dep.deploy(warm, h.machine);
    app::ServiceInstance &c = h.dep.deploy(cold, h.machine);
    h.dep.wireAll();
    auto g1 = h.drive(w, 500, 4);
    auto g2 = h.drive(c, 500, 4);
    g1.start();
    g2.start();
    h.dep.runFor(sim::milliseconds(300));
    EXPECT_EQ(w.stats().diskReadBytes, 0u);
    EXPECT_GT(c.stats().diskReadBytes, 1u << 20);
    // Disk I/O shows up in latency.
    EXPECT_GT(c.stats().latency.mean(), 2 * w.stats().latency.mean());
}

TEST(ServiceRuntime, BackgroundThreadRunsPeriodically)
{
    Harness h;
    ServiceSpec spec = baseService("bg", app::ServerModel::IoMultiplex);
    app::BackgroundSpec bg;
    bg.name = "ticker";
    bg.period = sim::milliseconds(10);
    bg.body.ops = {app::opCompute(0, 50)};
    spec.background.push_back(bg);
    app::ServiceInstance &svc = h.dep.deploy(spec, h.machine);
    h.dep.wireAll();
    h.dep.runFor(sim::milliseconds(200));
    // ~20 periods of 50x64 instructions, with no requests at all.
    EXPECT_GT(svc.stats().exec.instructions, 15 * 50 * 64);
    EXPECT_GT(h.machine.kernel().counts().nanosleep, 10u);
}

TEST(ServiceRuntime, MeasureWindowResets)
{
    Harness h;
    app::ServiceInstance &svc = h.dep.deploy(
        baseService("win", app::ServerModel::IoMultiplex), h.machine);
    h.dep.wireAll();
    auto gen = h.drive(svc, 2000, 4);
    gen.start();
    h.dep.runFor(sim::milliseconds(200));
    EXPECT_GT(svc.stats().requests, 0u);
    svc.beginMeasure();
    EXPECT_EQ(svc.stats().requests, 0u);
    EXPECT_EQ(svc.stats().exec.instructions, 0.0);
    h.dep.runFor(sim::milliseconds(100));
    EXPECT_GT(svc.stats().requests, 100u);
    EXPECT_NEAR(svc.stats().qps(h.dep.events().now()), 2000, 500);
}

TEST(ServiceRuntime, ThreadPerConnectionSpawnsPerConn)
{
    Harness h;
    ServiceSpec spec = baseService("tpc",
                                   app::ServerModel::BlockingPerConn);
    spec.threads.threadPerConnection = true;
    app::ServiceInstance &svc = h.dep.deploy(spec, h.machine);
    h.dep.wireAll();
    const std::size_t before = h.machine.scheduler().liveThreads();
    auto gen = h.drive(svc, 500, 6);
    (void)gen;
    const std::size_t after = h.machine.scheduler().liveThreads();
    EXPECT_EQ(after - before, 6u);
}

TEST(ServiceRuntime, RpcTracingRecordsSpansAndEdges)
{
    Harness h;
    ServiceSpec backend = baseService("b", app::ServerModel::IoMultiplex);
    ServiceSpec frontend = baseService("f", app::ServerModel::IoMultiplex);
    frontend.downstreams = {"b"};
    frontend.endpoints[0].handler.ops = {app::opRpc(0, 0, 100, 200)};
    h.dep.deploy(backend, h.machine);
    app::ServiceInstance &fe = h.dep.deploy(frontend, h.machine);
    h.dep.wireAll();
    auto gen = h.drive(fe, 500, 2);
    gen.start();
    h.dep.runFor(sim::milliseconds(200));

    const auto &tracer = h.dep.tracer();
    EXPECT_GT(tracer.spans().size(), 50u);
    EXPECT_GT(tracer.edges().size(), 25u);
    bool sawEdge = false;
    for (const auto &e : tracer.edges()) {
        if (e.caller == "f" && e.callee == "b")
            sawEdge = true;
    }
    EXPECT_TRUE(sawEdge);
}

} // namespace
