/**
 * @file
 * Tests for the cluster subsystem: deployment-time error reporting,
 * replica groups, the four per-edge balancer policies, capacity-aware
 * placement, ReplicaSet scaling, the metrics-driven autoscaler, the
 * synthetic topology generator, crash failover through the balancer,
 * and bit-exact determinism of replicated faulted runs at any
 * RunExecutor worker count.
 *
 * These tests carry the `cluster` ctest label. The determinism test
 * additionally joins the `parallel` label so a -DDITTO_TSAN=ON build
 * races replicated deployments under TSan: ctest -L parallel.
 */

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "app/deployment.h"
#include "app/resilience.h"
#include "app/service.h"
#include "cluster/autoscaler.h"
#include "cluster/balancer.h"
#include "cluster/placer.h"
#include "cluster/replica_set.h"
#include "cluster/topo_gen.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "obs/jaeger.h"
#include "obs/metrics.h"
#include "obs/register.h"
#include "sim/run_executor.h"
#include "workload/loadgen.h"

namespace {

using namespace ditto;

hw::CodeBlock
tinyBlock(const std::string &label, std::uint64_t seed)
{
    hw::BlockSpec bs;
    bs.label = label;
    bs.instCount = 64;
    bs.seed = seed;
    return hw::buildBlock(bs);
}

app::ServiceSpec
backendSpec(const std::string &name = "back")
{
    app::ServiceSpec spec;
    spec.name = name;
    spec.threads.workers = 2;
    spec.blocks.push_back(tinyBlock(name + ".h", 3));
    app::EndpointSpec ep;
    ep.name = "get";
    ep.handler.ops = {app::opCompute(0, 5)};
    spec.endpoints.push_back(ep);
    return spec;
}

app::ServiceSpec
frontendSpec(const app::ResilienceSpec &resilience,
             cluster::BalancerPolicy policy =
                 cluster::BalancerPolicy::RoundRobin)
{
    app::ServiceSpec spec;
    spec.name = "front";
    spec.threads.workers = 2;
    spec.downstreams = {"back"};
    spec.blocks.push_back(tinyBlock("front.h", 4));
    app::EndpointSpec ep;
    ep.name = "page";
    ep.handler.ops = {app::opCompute(0, 3),
                      app::opRpc(0, 0, 128, 256),
                      app::opCompute(0, 3)};
    spec.endpoints.push_back(ep);
    spec.resilience = resilience;
    spec.balancing.defaultPolicy = policy;
    return spec;
}

workload::LoadSpec
clientLoad(double qps, sim::Time timeout)
{
    workload::LoadSpec load;
    load.qps = qps;
    load.connections = 4;
    load.openLoop = true;
    load.timeout = timeout;
    return load;
}

app::ResilienceSpec
retryingResilience()
{
    app::ResilienceSpec res;
    res.rpcDeadline = sim::microseconds(600);
    res.retry.maxAttempts = 3;
    res.retry.baseBackoff = sim::microseconds(100);
    return res;
}

// ---------------------------------------------------------------------------
// Deployment error reporting
// ---------------------------------------------------------------------------

TEST(DeploymentErrors, DuplicateDeployThrowsWithName)
{
    app::Deployment dep(7);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    dep.deploy(backendSpec(), m);
    try {
        dep.deploy(backendSpec(), m);
        FAIL() << "duplicate deploy must throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("back"),
                  std::string::npos)
            << "message must name the duplicated service: "
            << e.what();
    }
    // Replication is the sanctioned path to a second instance.
    EXPECT_NO_THROW(dep.addReplica("back", m));
}

TEST(DeploymentErrors, DanglingDownstreamThrowsWithNames)
{
    app::Deployment dep(7);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceSpec spec = backendSpec("lonely");
    spec.downstreams = {"ghost"};
    dep.deploy(spec, m);
    try {
        dep.wireAll();
        FAIL() << "dangling downstream must throw";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("lonely"), std::string::npos)
            << "message must name the caller: " << what;
        EXPECT_NE(what.find("ghost"), std::string::npos)
            << "message must name the missing downstream: " << what;
    }
}

TEST(DeploymentErrors, AddReplicaOfUnknownServiceThrows)
{
    app::Deployment dep(7);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    EXPECT_THROW(dep.addReplica("ghost", m), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Replica groups: find() canonical handle + replicas() accessor
// ---------------------------------------------------------------------------

TEST(ReplicaGroups, FindReturnsCanonicalHandle)
{
    app::Deployment dep(11);
    os::Machine &a = dep.addMachine("a", hw::platformA());
    os::Machine &b = dep.addMachine("b", hw::platformA());
    app::ServiceInstance &first = dep.deploy(backendSpec(), a);
    dep.addReplica("back", b);
    dep.addReplica("back", b);

    // find() is the canonical (index-0) handle; replicas() is the
    // whole group in index order.
    EXPECT_EQ(dep.find("back"), &first);
    const auto &group = dep.replicas("back");
    ASSERT_EQ(group.size(), 3u);
    EXPECT_EQ(group[0], &first);
    EXPECT_EQ(group[0]->instanceLabel(), "back");
    EXPECT_EQ(group[1]->instanceLabel(), "back@1");
    EXPECT_EQ(group[2]->instanceLabel(), "back@2");

    EXPECT_EQ(dep.find("nope"), nullptr);
    EXPECT_TRUE(dep.replicas("nope").empty());
}

// ---------------------------------------------------------------------------
// Balancer policies
// ---------------------------------------------------------------------------

constexpr auto kAllAlive = [](std::size_t) { return true; };

TEST(Balancer, RoundRobinRotatesAndSkipsUnusable)
{
    cluster::EdgeBalancer b;
    b.init(cluster::BalancerPolicy::RoundRobin, 3, 99);
    EXPECT_EQ(b.pick(0, kAllAlive), 0u);
    EXPECT_EQ(b.pick(0, kAllAlive), 1u);
    EXPECT_EQ(b.pick(0, kAllAlive), 2u);
    EXPECT_EQ(b.pick(0, kAllAlive), 0u);

    // A dead replica is skipped without stalling the rotation.
    auto oneDead = [](std::size_t i) { return i != 1; };
    EXPECT_EQ(b.pick(0, oneDead), 2u);
    EXPECT_EQ(b.pick(0, oneDead), 0u);
    EXPECT_EQ(b.pick(0, oneDead), 2u);

    // A retired replica (autoscaler scale-down) is equally excluded.
    b.setActive(2, false);
    EXPECT_EQ(b.pick(0, oneDead), 0u);
    EXPECT_EQ(b.pick(0, oneDead), 0u);
    b.setActive(2, true);
}

TEST(Balancer, LeastOutstandingPicksLightestReplica)
{
    cluster::EdgeBalancer b;
    b.init(cluster::BalancerPolicy::LeastOutstanding, 3, 99);
    b.onSend(0);
    b.onSend(0);
    b.onSend(1);
    EXPECT_EQ(b.pick(0, kAllAlive), 2u);
    b.onSend(2);
    b.onSend(2);
    b.onSend(2);
    EXPECT_EQ(b.pick(0, kAllAlive), 1u);
    b.onDone(0);
    b.onDone(0);
    EXPECT_EQ(b.pick(0, kAllAlive), 0u);
    EXPECT_EQ(b.outstanding(2), 3u);
}

TEST(Balancer, PowerOfTwoDeterministicAndDegradesToSurvivor)
{
    cluster::EdgeBalancer a;
    cluster::EdgeBalancer b;
    a.init(cluster::BalancerPolicy::PowerOfTwo, 4, 1234);
    b.init(cluster::BalancerPolicy::PowerOfTwo, 4, 1234);
    // Same seed, same candidate draws: identical pick sequences.
    std::set<std::size_t> seen;
    for (int i = 0; i < 64; ++i) {
        const std::size_t pick = a.pick(0, kAllAlive);
        EXPECT_EQ(pick, b.pick(0, kAllAlive));
        seen.insert(pick);
    }
    EXPECT_GT(seen.size(), 1u);  // actually spreads load

    // With one survivor even doubly-dead candidate draws land on it.
    auto survivor = [](std::size_t i) { return i == 2; };
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.pick(0, survivor), 2u);
}

TEST(Balancer, ConsistentHashStableWithMinimalDisruption)
{
    cluster::EdgeBalancer b;
    b.init(cluster::BalancerPolicy::ConsistentHash, 4, 77);

    std::map<std::uint64_t, std::size_t> owner;
    std::set<std::size_t> used;
    for (std::uint64_t key = 0; key < 128; ++key) {
        const std::size_t pick = b.pick(key, kAllAlive);
        EXPECT_EQ(pick, b.pick(key, kAllAlive));  // stable per key
        owner[key] = pick;
        used.insert(pick);
    }
    EXPECT_GT(used.size(), 1u);  // keys actually spread on the ring

    // Killing one replica moves only the keys it owned; everyone
    // else's assignment is untouched (the consistent-hash property).
    const std::size_t dead = owner[5];
    auto alive = [dead](std::size_t i) { return i != dead; };
    for (const auto &[key, before] : owner) {
        const std::size_t now = b.pick(key, alive);
        if (before == dead)
            EXPECT_NE(now, dead);
        else
            EXPECT_EQ(now, before);
    }
}

TEST(Balancer, SingleReplicaShortCircuitsEveryPolicy)
{
    using cluster::BalancerPolicy;
    for (const auto policy :
         {BalancerPolicy::RoundRobin, BalancerPolicy::LeastOutstanding,
          BalancerPolicy::PowerOfTwo, BalancerPolicy::ConsistentHash}) {
        cluster::EdgeBalancer b;
        b.init(policy, 1, 5);
        for (std::uint64_t key = 0; key < 8; ++key)
            EXPECT_EQ(b.pick(key, kAllAlive), 0u)
                << cluster::balancerPolicyName(policy);
    }
}

// ---------------------------------------------------------------------------
// Placer bin-packing
// ---------------------------------------------------------------------------

TEST(Placer, BestFitSpreadThenOvercommitsLeastLoaded)
{
    app::Deployment dep(13);
    os::Machine &m0 = dep.addMachine("m0", hw::platformA());
    os::Machine &m1 = dep.addMachine("m1", hw::platformA());

    cluster::Placer placer;
    EXPECT_THROW(placer.place(), std::runtime_error);
    placer.addMachine(m0, 2);
    placer.addMachine(m1, 1);

    // Most free slots wins; earliest-registered breaks ties.
    EXPECT_EQ(&placer.place(), &m0);  // free 2 vs 1
    EXPECT_EQ(&placer.place(), &m0);  // free 1 vs 1: tie -> m0
    EXPECT_EQ(&placer.place(), &m1);  // free 0 vs 1
    EXPECT_EQ(placer.overcommitted(), 0u);

    // Pool full: the same comparison overcommits rather than failing.
    EXPECT_EQ(&placer.place(), &m0);
    EXPECT_EQ(placer.overcommitted(), 1u);
    EXPECT_EQ(placer.used(m0), 3u);
    EXPECT_EQ(placer.used(m1), 1u);

    // m0 now at -1 free vs m1 at 0: the next overcommit goes to m1.
    EXPECT_EQ(&placer.place(), &m1);
    EXPECT_EQ(placer.overcommitted(), 2u);

    placer.release(m0);
    EXPECT_EQ(placer.used(m0), 2u);
}

// ---------------------------------------------------------------------------
// ReplicaSet scaling
// ---------------------------------------------------------------------------

TEST(ReplicaSetScaling, PrefixInvariantAndWarmReuse)
{
    app::Deployment dep(17);
    os::Machine &m0 = dep.addMachine("m0", hw::platformA());
    os::Machine &m1 = dep.addMachine("m1", hw::platformA());
    dep.deploy(backendSpec("svc"), m0);
    dep.wireAll();

    cluster::Placer placer;
    placer.addMachine(m1, 4);
    cluster::ReplicaSet set(dep, "svc", placer);
    EXPECT_EQ(set.total(), 1u);
    EXPECT_EQ(set.active(), 1u);

    EXPECT_EQ(set.scaleTo(3), 3u);
    EXPECT_EQ(set.total(), 3u);
    EXPECT_EQ(dep.replicas("svc").size(), 3u);
    EXPECT_EQ(placer.used(m1), 2u);  // replicas 1 and 2 placed there

    // Scale-down retires instances but keeps them deployed...
    EXPECT_EQ(set.scaleTo(1), 1u);
    EXPECT_EQ(set.total(), 3u);
    EXPECT_EQ(set.active(), 1u);

    // ...so scaling back up reuses them instead of deploying more.
    EXPECT_EQ(set.scaleTo(2), 2u);
    EXPECT_EQ(set.total(), 3u);
    EXPECT_EQ(placer.used(m1), 2u);

    // Clamped: replica 0 (the canonical handle) is never retired.
    EXPECT_EQ(set.scaleTo(0), 1u);
    EXPECT_EQ(set.active(), 1u);
}

TEST(ReplicaSetScaling, UnknownServiceThrows)
{
    app::Deployment dep(17);
    dep.addMachine("m0", hw::platformA());
    cluster::Placer placer;
    EXPECT_THROW(cluster::ReplicaSet(dep, "ghost", placer),
                 std::runtime_error);
}

// ---------------------------------------------------------------------------
// Autoscaler control loop
// ---------------------------------------------------------------------------

/** One slow single-worker service that queues under any real load. */
app::ServiceSpec
slowSpec()
{
    app::ServiceSpec spec = backendSpec("svc");
    spec.threads.workers = 1;
    spec.endpoints[0].handler.ops = {app::opCompute(0, 2000)};
    return spec;
}

TEST(Autoscaler, QueuePressureScalesUpOncePerCooldown)
{
    app::Deployment dep(43);
    os::Machine &m0 = dep.addMachine("m0", hw::platformA());
    os::Machine &m1 = dep.addMachine("m1", hw::platformA());
    dep.deploy(slowSpec(), m0);
    dep.wireAll();

    obs::MetricsRegistry metrics;
    obs::registerDeploymentMetrics(metrics, dep);

    cluster::Placer placer;
    placer.addMachine(m1, 4);
    cluster::ReplicaSet set(dep, "svc", placer, &metrics);
    cluster::AutoscalerSpec as;
    as.period = sim::milliseconds(5);
    as.cooldown = sim::milliseconds(200);  // >> run length
    as.queueHigh = 0.5;
    as.maxReplicas = 4;
    cluster::Autoscaler scaler(dep, set, metrics, as);
    scaler.start();

    workload::LoadGen gen(dep, *dep.find("svc"),
                          clientLoad(20000, sim::milliseconds(50)),
                          29);
    gen.start();
    dep.runFor(sim::milliseconds(60));

    // Sustained pressure breached the watermark on every evaluation,
    // but the cooldown admits exactly one action in the window.
    EXPECT_GT(scaler.stats().evaluations, 5u);
    EXPECT_EQ(scaler.stats().scaleUps, 1u);
    EXPECT_EQ(scaler.stats().scaleDowns, 0u);
    EXPECT_EQ(set.active(), 2u);

    // Actions surface as owned metric series.
    EXPECT_EQ(metrics.readCounter("ditto_autoscaler_scale_ups_total",
                                  {{"service", "svc"}}),
              1u);
    EXPECT_EQ(metrics.readGauge("ditto_autoscaler_replicas",
                                {{"service", "svc"}}),
              2.0);
}

TEST(Autoscaler, IdleGroupScalesDownToMinimum)
{
    app::Deployment dep(47);
    os::Machine &m0 = dep.addMachine("m0", hw::platformA());
    os::Machine &m1 = dep.addMachine("m1", hw::platformA());
    dep.deploy(backendSpec("svc"), m0);
    dep.wireAll();

    obs::MetricsRegistry metrics;
    obs::registerDeploymentMetrics(metrics, dep);

    cluster::Placer placer;
    placer.addMachine(m1, 4);
    cluster::ReplicaSet set(dep, "svc", placer, &metrics);
    set.scaleTo(3);

    cluster::AutoscalerSpec as;
    as.period = sim::milliseconds(5);
    as.cooldown = sim::milliseconds(10);
    as.queueHigh = 100.0;  // never breached
    as.queueLow = 0.5;
    cluster::Autoscaler scaler(dep, set, metrics, as);
    scaler.start();

    dep.runFor(sim::milliseconds(100));

    // No traffic at all: the loop drains one replica per cooldown and
    // stops at minReplicas.
    EXPECT_EQ(scaler.stats().scaleDowns, 2u);
    EXPECT_EQ(set.active(), 1u);
    EXPECT_EQ(set.total(), 3u);  // retired, not destroyed
    EXPECT_EQ(metrics.readCounter("ditto_autoscaler_scale_downs_total",
                                  {{"service", "svc"}}),
              2u);
    EXPECT_EQ(metrics.readGauge("ditto_autoscaler_replicas",
                                {{"service", "svc"}}),
              1.0);
}

// ---------------------------------------------------------------------------
// Topology generator
// ---------------------------------------------------------------------------

TEST(TopoGen, DeterministicAcyclicRootReachable)
{
    cluster::TopoSpec ts;
    ts.services = 60;
    ts.depth = 4;
    ts.seed = 7;
    const cluster::GeneratedTopology a = cluster::generateTopology(ts);
    const cluster::GeneratedTopology b = cluster::generateTopology(ts);

    ASSERT_EQ(a.specs.size(), 60u);
    ASSERT_EQ(a.level.size(), 60u);
    EXPECT_GE(a.edges, 59u);  // spanning tree at minimum

    // Pure function of the TopoSpec: byte-for-byte repeatable.
    ASSERT_EQ(b.specs.size(), a.specs.size());
    EXPECT_EQ(a.edges, b.edges);
    for (std::size_t i = 0; i < a.specs.size(); ++i) {
        EXPECT_EQ(a.specs[i].name, b.specs[i].name);
        EXPECT_EQ(a.specs[i].downstreams, b.specs[i].downstreams);
    }

    // Name -> index ("s0042" -> 42).
    auto indexOf = [](const std::string &name) {
        return static_cast<std::size_t>(std::stoul(name.substr(1)));
    };

    // Every edge points strictly deeper: acyclic by construction, and
    // level respects the configured depth.
    EXPECT_EQ(a.level[0], 0u);
    for (std::size_t i = 0; i < a.specs.size(); ++i) {
        EXPECT_LT(a.level[i], ts.depth);
        for (const std::string &d : a.specs[i].downstreams)
            EXPECT_GT(a.level[indexOf(d)], a.level[i])
                << a.specs[i].name << " -> " << d;
    }

    // Every service is reachable from the root.
    std::set<std::size_t> visited{0};
    std::vector<std::size_t> frontier{0};
    while (!frontier.empty()) {
        const std::size_t at = frontier.back();
        frontier.pop_back();
        for (const std::string &d : a.specs[at].downstreams) {
            const std::size_t to = indexOf(d);
            if (visited.insert(to).second)
                frontier.push_back(to);
        }
    }
    EXPECT_EQ(visited.size(), a.specs.size());

    // A different seed yields a different topology (non-vacuous).
    ts.seed = 8;
    const cluster::GeneratedTopology c = cluster::generateTopology(ts);
    std::string edgesA;
    std::string edgesC;
    for (std::size_t i = 0; i < a.specs.size(); ++i) {
        for (const std::string &d : a.specs[i].downstreams)
            edgesA += a.specs[i].name + ">" + d + ";";
        for (const std::string &d : c.specs[i].downstreams)
            edgesC += c.specs[i].name + ">" + d + ";";
    }
    EXPECT_NE(edgesA, edgesC);
}

TEST(TopoGen, DeployedTopologyServesTraffic)
{
    cluster::TopoSpec ts;
    ts.services = 20;
    ts.depth = 3;
    ts.seed = 9;
    const cluster::GeneratedTopology topo =
        cluster::generateTopology(ts);

    app::Deployment dep(21);
    app::ServiceInstance &root =
        cluster::deployTopology(dep, topo, 2);
    EXPECT_EQ(&root, dep.find(topo.specs.front().name));
    EXPECT_EQ(dep.machines().size(), 2u);

    workload::LoadGen gen(dep, root,
                          clientLoad(1000, sim::milliseconds(20)), 33);
    gen.start();
    dep.runFor(sim::milliseconds(50));
    EXPECT_GT(gen.completedOk(), 0u);
}

TEST(TopoGenProdShapes, KnobsOffIsByteIdenticalToDefault)
{
    // The production-shape knobs must not consume RNG draws when
    // disabled: explicit zeros generate the same topology as the
    // all-defaults spec, so existing seeds stay reproducible.
    cluster::TopoSpec plain;
    plain.services = 40;
    plain.depth = 4;
    plain.seed = 11;
    cluster::TopoSpec off = plain;
    off.endpointsPerService = 1;
    off.sharedBackends = 0;
    off.fanoutTailAlpha = 0.0;
    off.diamondProbability = 0.0;
    const cluster::GeneratedTopology a =
        cluster::generateTopology(plain);
    const cluster::GeneratedTopology b = cluster::generateTopology(off);
    ASSERT_EQ(a.specs.size(), b.specs.size());
    EXPECT_EQ(a.edges, b.edges);
    EXPECT_EQ(a.backends, 0u);
    for (std::size_t i = 0; i < a.specs.size(); ++i) {
        EXPECT_EQ(a.specs[i].name, b.specs[i].name);
        EXPECT_EQ(a.specs[i].downstreams, b.specs[i].downstreams);
        EXPECT_EQ(a.specs[i].endpoints.size(),
                  b.specs[i].endpoints.size());
    }
}

TEST(TopoGenProdShapes, ExtraEndpointsAndSharedBackends)
{
    cluster::TopoSpec ts;
    ts.services = 30;
    ts.depth = 4;
    ts.seed = 13;
    ts.endpointsPerService = 2;
    ts.sharedBackends = 2;
    const cluster::GeneratedTopology gen =
        cluster::generateTopology(ts);

    // Backend specs ride after the 30 services.
    EXPECT_EQ(gen.backends, 2u);
    ASSERT_EQ(gen.specs.size(), 32u);
    ASSERT_EQ(gen.level.size(), 32u);
    for (unsigned b = 0; b < 2; ++b) {
        const app::ServiceSpec &db = gen.specs[30 + b];
        EXPECT_EQ(db.name, "db" + std::to_string(b));
        // Stateful: serialized sections and file-backed reads.
        EXPECT_GE(db.locks, 1u);
        ASSERT_FALSE(db.fileBytes.empty());
        EXPECT_GT(db.fileBytes[0], 0u);
        EXPECT_EQ(gen.level[30 + b], ts.depth);
    }

    // Every non-backend service carries the second entry query.
    for (std::size_t i = 0; i < 30; ++i) {
        ASSERT_EQ(gen.specs[i].endpoints.size(), 2u) << i;
        EXPECT_EQ(gen.specs[i].endpoints[1].name, "req1");
    }

    // Every former leaf now reaches a shared backend, and backends
    // only ever appear as callees.
    unsigned leafToBackend = 0;
    for (std::size_t i = 0; i < 30; ++i)
        for (const std::string &d : gen.specs[i].downstreams)
            if (d.substr(0, 2) == "db")
                ++leafToBackend;
    EXPECT_GT(leafToBackend, 0u);
    for (unsigned b = 0; b < 2; ++b)
        EXPECT_TRUE(gen.specs[30 + b].downstreams.empty());
}

TEST(TopoGenProdShapes, DiamondsAndHeavyTailAddEdgesDeterministically)
{
    cluster::TopoSpec plain;
    plain.services = 60;
    plain.depth = 5;
    plain.seed = 17;
    const cluster::GeneratedTopology base =
        cluster::generateTopology(plain);

    cluster::TopoSpec prod = plain;
    prod.fanoutTailAlpha = 1.2;
    prod.diamondProbability = 0.5;
    const cluster::GeneratedTopology a = cluster::generateTopology(prod);
    const cluster::GeneratedTopology b = cluster::generateTopology(prod);

    // Diamonds add convergent edges on top of the spanning tree.
    EXPECT_GT(a.edges, base.edges);
    // Still a pure function of the spec.
    EXPECT_EQ(a.edges, b.edges);
    for (std::size_t i = 0; i < a.specs.size(); ++i)
        EXPECT_EQ(a.specs[i].downstreams, b.specs[i].downstreams);

    // Diamond edges still point strictly deeper: acyclic.
    auto indexOf = [](const std::string &name) {
        return static_cast<std::size_t>(std::stoul(name.substr(1)));
    };
    for (std::size_t i = 0; i < a.specs.size(); ++i)
        for (const std::string &d : a.specs[i].downstreams)
            EXPECT_LT(a.level[i], a.level[indexOf(d)]);
}

TEST(TopoGenProdShapes, ProdTopologyServesBothEntryQueries)
{
    cluster::TopoSpec ts;
    ts.services = 20;
    ts.depth = 3;
    ts.seed = 19;
    ts.endpointsPerService = 2;
    ts.sharedBackends = 2;
    ts.fanoutTailAlpha = 1.2;
    ts.diamondProbability = 0.35;
    const cluster::GeneratedTopology topo =
        cluster::generateTopology(ts);

    app::Deployment dep(23);
    app::ServiceInstance &root = cluster::deployTopology(dep, topo, 2);
    workload::LoadSpec load = clientLoad(800, sim::milliseconds(30));
    load.endpoints = {workload::EndpointLoad{0, 0.7, 64, 64},
                      workload::EndpointLoad{1, 0.3, 64, 64}};
    workload::LoadGen gen(dep, root, load, 37);
    gen.start();
    dep.runFor(sim::milliseconds(60));
    EXPECT_GT(gen.completedOk(), 0u);
}

// ---------------------------------------------------------------------------
// Machine-crash failover (the ISSUE acceptance scenario)
// ---------------------------------------------------------------------------

TEST(Failover, MachineCrashRoutesAroundDeadReplica)
{
    app::Deployment dep(53);
    os::Machine &mFront = dep.addMachine("mf", hw::platformA());
    os::Machine &mA = dep.addMachine("ma", hw::platformA());
    os::Machine &mB = dep.addMachine("mb", hw::platformA());
    dep.deploy(backendSpec(), mA);
    dep.addReplica("back", mB);
    app::ServiceInstance &front =
        dep.deploy(frontendSpec(retryingResilience()), mFront);
    dep.wireAll();

    workload::LoadGen gen(dep, front,
                          clientLoad(2000, sim::milliseconds(5)), 23);

    // mb dies at 20ms and stays dead beyond the end of the test.
    fault::FaultPlan plan;
    plan.machineCrash("mb", sim::milliseconds(20),
                      sim::milliseconds(200));
    fault::FaultInjector injector(dep);
    injector.install(plan);

    gen.start();
    dep.runFor(sim::milliseconds(20));

    // Healthy phase: the balancer spread requests over both replicas.
    const auto &group = dep.replicas("back");
    ASSERT_EQ(group.size(), 2u);
    EXPECT_GT(group[0]->stats().requests, 0u);
    EXPECT_GT(group[1]->stats().requests, 0u);

    dep.runFor(sim::milliseconds(5));
    ASSERT_TRUE(mB.down());
    const std::uint64_t deadServed = group[1]->stats().requests;
    const std::uint64_t liveServedAtCrash = group[0]->stats().requests;
    const std::uint64_t okAtCrash = gen.completedOk();

    // The crash is visible to the balancer the moment it happens:
    // no pick lands on the dead replica while its machine is down.
    for (std::uint64_t key = 0; key < 64; ++key)
        EXPECT_NE(front.pickReplica(0, key), 1u);

    dep.runFor(sim::milliseconds(45));
    ASSERT_TRUE(mB.down());

    // The service kept serving through the surviving replica...
    EXPECT_GT(gen.completedOk(), okAtCrash + 20);
    EXPECT_GT(group[0]->stats().requests, liveServedAtCrash);
    // ...and the dead replica processed nothing further.
    EXPECT_EQ(group[1]->stats().requests, deadServed);
}

// ---------------------------------------------------------------------------
// Determinism: replicated + autoscaled deployment under faults must
// be bit-identical at any RunExecutor worker count (DESIGN.md §8).
// ---------------------------------------------------------------------------

std::string
replicatedFaultedRun(std::uint64_t seed)
{
    app::Deployment dep(seed, /*traceSampleRate=*/0.25);
    os::Machine &mFront = dep.addMachine("mf", hw::platformA());
    os::Machine &mA = dep.addMachine("ma", hw::platformA());
    os::Machine &mB = dep.addMachine("mb", hw::platformA());
    dep.deploy(backendSpec(), mA);
    dep.addReplica("back", mB);
    app::ServiceInstance &front = dep.deploy(
        frontendSpec(retryingResilience(),
                     cluster::BalancerPolicy::PowerOfTwo),
        mFront);
    dep.wireAll();

    obs::MetricsRegistry metrics;
    obs::registerDeploymentMetrics(metrics, dep);

    cluster::Placer placer;
    placer.addMachine(mA, 2);
    placer.addMachine(mB, 2);
    cluster::ReplicaSet set(dep, "back", placer, &metrics);
    cluster::AutoscalerSpec as;
    as.period = sim::milliseconds(5);
    as.cooldown = sim::milliseconds(15);
    as.queueHigh = 1.0;
    as.queueLow = 0.1;
    as.maxReplicas = 3;
    cluster::Autoscaler scaler(dep, set, metrics, as);
    scaler.start();

    fault::FaultPlan plan;
    plan.machineCrash("mb", sim::milliseconds(20),
                      sim::milliseconds(15));
    plan.linkDrop("", "mf", sim::milliseconds(45),
                  sim::milliseconds(10), 0.3);
    fault::FaultInjector injector(dep);
    injector.install(plan);

    workload::LoadGen gen(dep, front,
                          clientLoad(2000, sim::milliseconds(5)),
                          seed ^ 0xba1ull);
    gen.start();
    dep.runFor(sim::milliseconds(70));

    // Everything an operator could observe: the full metric snapshot
    // (request counters, balancer-fed latency series, autoscaler
    // actions) plus the exported trace stream.
    return metrics.prometheusText() +
        obs::exportJaegerJson(dep.tracer());
}

TEST(ClusterDeterminism, FaultedReplicatedRunBitIdenticalAcrossJobs)
{
    const std::uint64_t seeds[] = {61, 62, 63};

    std::vector<std::string> serial;
    for (const std::uint64_t seed : seeds)
        serial.push_back(replicatedFaultedRun(seed));

    sim::RunExecutor pool(4);
    std::vector<std::function<std::string()>> tasks;
    for (const std::uint64_t seed : seeds)
        tasks.push_back([seed] { return replicatedFaultedRun(seed); });
    const std::vector<std::string> parallel =
        pool.runOrdered<std::string>(std::move(tasks));

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]);

    // Distinct seeds produce distinct observable behaviour, so the
    // equalities above are not comparing empty snapshots.
    EXPECT_NE(serial[0], serial[1]);
}

} // namespace
