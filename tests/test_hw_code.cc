/**
 * @file
 * Tests for the machine-level IR: code-image linking, stream
 * allocation (private copies, sharing, pooling), and the block
 * builder's fidelity to its spec.
 */

#include <gtest/gtest.h>

#include "hw/block_builder.h"
#include "hw/code.h"
#include "hw/isa.h"

namespace {

using namespace ditto::hw;

TEST(Code, RoundUpPow2)
{
    EXPECT_EQ(roundUpPow2(0), kLineBytes);
    EXPECT_EQ(roundUpPow2(1), kLineBytes);
    EXPECT_EQ(roundUpPow2(64), 64u);
    EXPECT_EQ(roundUpPow2(65), 128u);
    EXPECT_EQ(roundUpPow2(4096), 4096u);
    EXPECT_EQ(roundUpPow2(5000), 8192u);
}

CodeBlock
blockWithStream(const std::string &label, MemStreamDesc desc)
{
    CodeBlock block;
    block.label = label;
    block.streams.push_back(desc);
    Inst load;
    load.opcode = Isa::instance().opcode("MOV_GPR64_MEM64");
    load.dst = 1;
    load.memStream = 0;
    block.insts.push_back(load);
    return block;
}

TEST(CodeImage, TextLayoutIsContiguousAndAligned)
{
    CodeImage image(0x1000, 0x100000, 4);
    CodeBlock a;
    a.label = "a";
    a.insts.resize(10);  // 40 bytes -> rounds to 64
    CodeBlock b;
    b.label = "b";
    b.insts.resize(100);
    const auto ia = image.addBlock(a);
    const auto ib = image.addBlock(b);
    EXPECT_EQ(image.block(ia).iBase, 0x1000u);
    EXPECT_EQ(image.block(ib).iBase, 0x1040u);
    EXPECT_EQ(image.block(ib).iBase % kLineBytes, 0u);
    EXPECT_GT(image.textBytes(), 100 * kInstBytes);
}

TEST(CodeImage, PrivateStreamsGetPerThreadCopies)
{
    CodeImage image(0x1000, 0x100000, 8);
    const auto id = image.addBlock(blockWithStream(
        "p", MemStreamDesc{4096, StreamKind::Sequential, false, 1}));
    const auto &stream =
        image.stream(image.block(id).streamIds[0]);
    EXPECT_EQ(stream.perThreadSpan, 4096u);
    // 8 thread slots worth of space consumed.
    EXPECT_GE(image.dataEnd() - 0x100000, 8 * 4096u);
}

TEST(CodeImage, SharedStreamsSingleAllocation)
{
    CodeImage image(0x1000, 0x100000, 8);
    const auto id = image.addBlock(blockWithStream(
        "s", MemStreamDesc{4096, StreamKind::Sequential, true, 1}));
    const auto &stream =
        image.stream(image.block(id).streamIds[0]);
    EXPECT_EQ(stream.perThreadSpan, 0u);
    EXPECT_EQ(image.dataEnd() - 0x100000, 4096u);
}

TEST(CodeImage, PooledStreamsShareBaseAcrossBlocks)
{
    CodeImage image(0x1000, 0x100000, 4);
    MemStreamDesc pooled{1 << 20, StreamKind::Sequential, true, 1, 7};
    const auto a = image.addBlock(blockWithStream("a", pooled));
    pooled.kind = StreamKind::Random;  // walk pattern may differ
    const auto b = image.addBlock(blockWithStream("b", pooled));
    const auto &sa = image.stream(image.block(a).streamIds[0]);
    const auto &sb = image.stream(image.block(b).streamIds[0]);
    EXPECT_EQ(sa.base, sb.base);               // one allocation
    EXPECT_EQ(sb.desc.kind, StreamKind::Random);  // per-site pattern
    EXPECT_EQ(image.dataEnd() - 0x100000, 1u << 20);
}

TEST(CodeImage, UnpooledSameSizeStreamsStayDistinct)
{
    CodeImage image(0x1000, 0x100000, 1);
    MemStreamDesc plain{1 << 20, StreamKind::Sequential, true, 1, 0};
    const auto a = image.addBlock(blockWithStream("a", plain));
    const auto b = image.addBlock(blockWithStream("b", plain));
    EXPECT_NE(image.stream(image.block(a).streamIds[0]).base,
              image.stream(image.block(b).streamIds[0]).base);
}

TEST(CodeImage, PoolsDistinguishSizeAndSharing)
{
    CodeImage image(0x1000, 0x100000, 2);
    MemStreamDesc big{1 << 20, StreamKind::Sequential, true, 1, 7};
    MemStreamDesc small{1 << 12, StreamKind::Sequential, true, 1, 7};
    MemStreamDesc priv{1 << 20, StreamKind::Sequential, false, 1, 7};
    const auto a = image.addBlock(blockWithStream("a", big));
    const auto b = image.addBlock(blockWithStream("b", small));
    const auto c = image.addBlock(blockWithStream("c", priv));
    const auto baseOf = [&](std::uint32_t id) {
        return image.stream(image.block(id).streamIds[0]).base;
    };
    EXPECT_NE(baseOf(a), baseOf(b));
    EXPECT_NE(baseOf(a), baseOf(c));
}

TEST(BlockBuilder, HonorsInstructionCountAndFootprint)
{
    BlockSpec spec;
    spec.label = "t";
    spec.instCount = 500;
    spec.seed = 1;
    const CodeBlock block = buildBlock(spec);
    EXPECT_EQ(block.insts.size(), 500u);
    EXPECT_EQ(block.iFootprintBytes(), 2000u);
    EXPECT_EQ(block.label, "t");
}

TEST(BlockBuilder, DeterministicPerSeed)
{
    BlockSpec spec;
    spec.label = "t";
    spec.instCount = 200;
    spec.memFraction = 0.3;
    spec.branchFraction = 0.1;
    spec.seed = 5;
    const CodeBlock a = buildBlock(spec);
    const CodeBlock b = buildBlock(spec);
    ASSERT_EQ(a.insts.size(), b.insts.size());
    for (std::size_t i = 0; i < a.insts.size(); ++i) {
        EXPECT_EQ(a.insts[i].opcode, b.insts[i].opcode);
        EXPECT_EQ(a.insts[i].dst, b.insts[i].dst);
    }
    spec.seed = 6;
    const CodeBlock c = buildBlock(spec);
    int different = 0;
    for (std::size_t i = 0; i < a.insts.size(); ++i)
        different += a.insts[i].opcode != c.insts[i].opcode;
    EXPECT_GT(different, 10);
}

TEST(BlockBuilder, FractionsApproximatelyHonored)
{
    BlockSpec spec;
    spec.label = "t";
    spec.instCount = 2000;
    spec.memFraction = 0.30;
    spec.branchFraction = 0.10;
    spec.seed = 7;
    const CodeBlock block = buildBlock(spec);
    const Isa &isa = Isa::instance();
    int mem = 0;
    int branches = 0;
    for (const Inst &inst : block.insts) {
        mem += inst.memStream != kNoStream;
        branches += inst.branch != kNoBranch;
    }
    (void)isa;
    EXPECT_NEAR(mem / 2000.0, 0.30, 0.05);
    EXPECT_NEAR(branches / 2000.0, 0.10, 0.03);
    // Each branch instruction has its own descriptor.
    EXPECT_EQ(block.branches.size(),
              static_cast<std::size_t>(branches));
}

TEST(BlockBuilder, StreamWeightsDistributeMemoryOps)
{
    BlockSpec spec;
    spec.label = "t";
    spec.instCount = 3000;
    spec.memFraction = 0.4;
    spec.streams = {
        {4096, StreamKind::Sequential, false, 0.8},
        {1 << 20, StreamKind::Random, false, 0.2},
    };
    spec.seed = 8;
    const CodeBlock block = buildBlock(spec);
    ASSERT_EQ(block.streams.size(), 2u);
    int counts[2] = {0, 0};
    for (const Inst &inst : block.insts) {
        if (inst.memStream != kNoStream)
            counts[inst.memStream]++;
    }
    EXPECT_GT(counts[0], 2 * counts[1]);
    EXPECT_GT(counts[1], 0);
}

TEST(BlockBuilder, DepTightnessControlsChainLengths)
{
    auto avg_raw_distance = [](double tightness) {
        BlockSpec spec;
        spec.label = "t";
        spec.instCount = 2000;
        spec.depTightness = tightness;
        spec.seed = 9;
        const CodeBlock block = buildBlock(spec);
        std::int64_t lastWrite[kNumRegs];
        std::fill(std::begin(lastWrite), std::end(lastWrite), -1);
        double sum = 0;
        int n = 0;
        for (std::size_t i = 0; i < block.insts.size(); ++i) {
            const Inst &inst = block.insts[i];
            if (inst.src0 != kNoReg && lastWrite[inst.src0] >= 0) {
                sum += static_cast<double>(
                    static_cast<std::int64_t>(i) -
                    lastWrite[inst.src0]);
                ++n;
            }
            if (inst.dst != kNoReg)
                lastWrite[inst.dst] = static_cast<std::int64_t>(i);
        }
        return n ? sum / n : 0.0;
    };
    EXPECT_LT(avg_raw_distance(0.9), avg_raw_distance(0.05));
}

} // namespace
