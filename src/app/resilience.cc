#include "app/resilience.h"

#include <algorithm>
#include <cmath>

namespace ditto::app {

sim::Time
computeBackoff(const RetryPolicy &policy, unsigned attempt,
               sim::Rng &rng)
{
    const unsigned exp = attempt > 0 ? attempt - 1 : 0;
    double backoff = static_cast<double>(policy.baseBackoff) *
        std::pow(policy.multiplier, static_cast<double>(exp));
    backoff = std::min(backoff,
                       static_cast<double>(policy.maxBackoff));
    if (policy.jitter > 0) {
        const double u = rng.uniform(-policy.jitter, policy.jitter);
        backoff *= 1.0 + u;
    }
    return backoff > 0 ? static_cast<sim::Time>(backoff + 0.5) : 0;
}

void
CircuitBreaker::trip(sim::Time now)
{
    state_ = State::Open;
    openUntil_ = now + policy_.openDuration;
    probesInFlight_ = 0;
    failures_ = 0;
    ++timesOpened_;
}

bool
CircuitBreaker::allowRequest(sim::Time now)
{
    if (!policy_.enabled)
        return true;
    switch (state_) {
      case State::Closed:
        return true;
      case State::Open:
        if (now < openUntil_)
            return false;
        state_ = State::HalfOpen;
        probesInFlight_ = 1;
        return true;
      case State::HalfOpen:
        if (probesInFlight_ < std::max(1u, policy_.halfOpenProbes)) {
            ++probesInFlight_;
            return true;
        }
        return false;
    }
    return true;
}

void
CircuitBreaker::onSuccess()
{
    if (!policy_.enabled)
        return;
    // A stale success -- a call admitted before the breaker (re)
    // tripped, e.g. the slower of two concurrent Half-Open probes --
    // must not shortcut the open window.
    if (state_ == State::Open)
        return;
    // A successful probe closes the breaker; in Closed state a
    // success resets the consecutive-failure streak.
    state_ = State::Closed;
    failures_ = 0;
    probesInFlight_ = 0;
}

void
CircuitBreaker::onFailure(sim::Time now)
{
    if (!policy_.enabled)
        return;
    if (state_ == State::HalfOpen) {
        trip(now);  // failed probe: straight back to open
        return;
    }
    if (state_ == State::Closed &&
        ++failures_ >= std::max(1u, policy_.failureThreshold)) {
        trip(now);
    }
}

const char *
breakerStateName(CircuitBreaker::State state)
{
    switch (state) {
      case CircuitBreaker::State::Closed: return "closed";
      case CircuitBreaker::State::Open: return "open";
      case CircuitBreaker::State::HalfOpen: return "half-open";
    }
    return "?";
}

} // namespace ditto::app
