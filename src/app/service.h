/**
 * @file
 * Service runtime: deploys a ServiceSpec on a Machine and runs it.
 *
 * The runtime implements the paper's application-skeleton layer
 * (Sec. 4.3): worker threads under the configured network model
 * (I/O multiplexing with epoll, blocking thread-per-connection, or
 * polling non-blocking), background timer threads, and downstream RPC
 * connections with sync or async client behaviour. Request handlers
 * are interpreted Programs (Sec. "application body").
 *
 * Profiling hooks (ServiceProbe) expose the observable events a real
 * toolchain would see -- per-thread syscalls, call-graph enter/exit,
 * thread spawns, RPCs -- without exposing the ServiceSpec itself.
 */

#ifndef DITTO_APP_SERVICE_H_
#define DITTO_APP_SERVICE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/program.h"
#include "app/resilience.h"
#include "cluster/balancer.h"
#include "hw/code.h"
#include "hw/cpu_core.h"
#include "os/kernel.h"
#include "os/machine.h"
#include "os/network.h"
#include "os/thread.h"
#include "stats/histogram.h"
#include "trace/tracer.h"

namespace ditto::app {

class ServiceInstance;
class Worker;

/**
 * Name -> replica-group resolution used while wiring downstream
 * edges. Implemented by Deployment; keeps ServiceInstance decoupled
 * from the registry's concrete container (interned dense vectors,
 * see deployment.h).
 */
class ServiceResolver
{
  public:
    virtual ~ServiceResolver() = default;

    /** Replica group of `name`; empty when not deployed. */
    virtual const std::vector<ServiceInstance *> &
    resolveService(const std::string &name) const = 0;
};

/** App-level syscall identity for profiling probes. */
enum class SysKind : std::uint8_t
{
    SocketRead,
    SocketWrite,
    EpollWait,
    Pread,
    Pwrite,
    FutexWait,
    FutexWake,
    Nanosleep,
    Clone,
};

/** Human-readable syscall name. */
std::string_view sysKindName(SysKind kind);

/** Thread roles, for the thread-model analyzer. */
enum class ThreadRole : std::uint8_t
{
    Worker,       //!< long-lived request worker
    ConnHandler,  //!< per-connection (possibly short-lived) thread
    Background,   //!< timer-triggered
};

/**
 * Profiling probe surface (the SystemTap stand-in). All callbacks
 * are no-ops by default.
 */
class ServiceProbe
{
  public:
    virtual ~ServiceProbe() = default;

    virtual void
    onSyscall(const os::Thread &t, SysKind kind, std::uint64_t bytes)
    {
        (void)t;
        (void)kind;
        (void)bytes;
    }

    virtual void
    onCallEnter(const os::Thread &t, const std::string &label)
    {
        (void)t;
        (void)label;
    }

    virtual void
    onCallExit(const os::Thread &t, const std::string &label)
    {
        (void)t;
        (void)label;
    }

    virtual void
    onThreadStart(const os::Thread &t, ThreadRole role)
    {
        (void)t;
        (void)role;
    }

    virtual void
    onRpcIssued(const os::Thread &t, std::uint32_t target,
                std::uint32_t endpoint, std::uint32_t reqBytes,
                std::uint32_t respBytes)
    {
        (void)t;
        (void)target;
        (void)endpoint;
        (void)reqBytes;
        (void)respBytes;
    }

    virtual void
    onRequestDone(std::uint32_t endpoint, sim::Time latency)
    {
        (void)endpoint;
        (void)latency;
    }

    /** File I/O with resolved offset (pread/pwrite argument probe). */
    virtual void
    onFileAccess(const os::Thread &t, std::uint64_t offset,
                 std::uint64_t bytes, bool write)
    {
        (void)t;
        (void)offset;
        (void)bytes;
        (void)write;
    }

    /**
     * Resilience outcome of one downstream RPC (ok / retried ok /
     * timeout / breaker fast-fail) or of one inbound request (shed /
     * degraded error response). For request-level outcomes `target`
     * is 0 and `endpoint` is the inbound endpoint.
     */
    virtual void
    onOutcome(const os::Thread &t, trace::OutcomeKind kind,
              std::uint32_t target, std::uint32_t endpoint,
              unsigned attempts)
    {
        (void)t;
        (void)kind;
        (void)target;
        (void)endpoint;
        (void)attempts;
    }
};

/** Aggregated runtime metrics of a service instance. */
struct ServiceStats
{
    hw::ExecStats exec;
    stats::LatencyHistogram latency;  //!< service-side request latency
    std::uint64_t requests = 0;
    std::uint64_t rxBytes = 0;
    std::uint64_t txBytes = 0;
    std::uint64_t diskReadBytes = 0;
    std::uint64_t diskWriteBytes = 0;
    // ---- resilience outcome counters --------------------------------
    std::uint64_t rpcOk = 0;              //!< calls answered in time
    std::uint64_t rpcRetries = 0;         //!< retry attempts issued
    std::uint64_t rpcTimeouts = 0;        //!< calls failed after all attempts
    std::uint64_t rpcBreakerFastFails = 0;//!< calls not sent (breaker open)
    std::uint64_t rpcStaleResponses = 0;  //!< late replies discarded by tag
    std::uint64_t requestsShed = 0;       //!< inbound requests shed
    std::uint64_t requestsDegraded = 0;   //!< responses sent with Error status
    // ---- request lifecycle (deadlines / cancellation / hedging) -----
    std::uint64_t rpcCallsStarted = 0;    //!< logical downstream calls entered
    std::uint64_t rpcCancelled = 0;       //!< calls abandoned before settling
    std::uint64_t rpcHedges = 0;          //!< hedge attempts launched
    std::uint64_t rpcHedgeWins = 0;       //!< calls won by the hedge attempt
    std::uint64_t requestsCancelled = 0;  //!< inbound requests cancelled
    // ---- overload control (adaptive limiter / budgets / brownout) ---
    std::uint64_t rpcRetriesSuppressed = 0; //!< retries denied by budget
    std::uint64_t rpcBrownoutSkipped = 0;   //!< optional calls skipped
    sim::Time measureStart = 0;

    void reset(sim::Time now);

    /** Requests per second over the window ending at `now`. */
    double qps(sim::Time now) const;

    /** Network bytes/sec (rx+tx) over the window ending at `now`. */
    double netBandwidth(sim::Time now) const;

    /** Disk bytes/sec over the window ending at `now`. */
    double diskBandwidth(sim::Time now) const;
};

/**
 * The op-program interpreter. Owns a frame stack; resumable after
 * blocking syscalls and budget exhaustion.
 */
class ProgramRunner
{
  public:
    enum class Status : std::uint8_t
    {
        Done,
        Blocked,
        Budget,
    };

    void start(const Program *prog);
    bool active() const { return !stack_.empty(); }
    void abort() { stack_.clear(); }

    /**
     * The op the innermost frame is parked on, or nullptr when idle.
     * Used by cooperative cancellation to detach a blocked worker
     * from whatever wait list (lock queue, socket) holds it.
     */
    const Op *currentOp() const;

    Status run(os::StepCtx &ctx, Worker &worker);

  private:
    struct Frame
    {
        const Program *prog = nullptr;
        std::size_t pc = 0;
        int phase = 0;
        std::uint64_t aux = 0;
        const std::string *callLabel = nullptr;
    };

    std::vector<Frame> stack_;

    Status execOp(os::StepCtx &ctx, Worker &worker, Frame &frame,
                  const Op &op);
};

/**
 * One running copy of a service on one machine.
 */
class ServiceInstance
{
  public:
    ServiceInstance(const ServiceSpec &spec, os::Machine &machine,
                    os::Network &network, trace::Tracer *tracer,
                    std::uint64_t seed, unsigned replicaIndex = 0);
    ~ServiceInstance();

    ServiceInstance(const ServiceInstance &) = delete;
    ServiceInstance &operator=(const ServiceInstance &) = delete;

    const ServiceSpec &spec() const { return spec_; }
    const std::string &name() const { return spec_.name; }
    os::Machine &machine() { return machine_; }
    os::Network &network() { return network_; }
    trace::Tracer *tracer() { return tracer_; }
    const hw::CodeImage &image() const { return *image_; }

    /** Position of this instance within its replica group. */
    unsigned replicaIndex() const { return replicaIndex_; }

    /**
     * Unique instance label for metrics: the service name for replica
     * 0 (canonical -- unreplicated deployments keep their series
     * names), "name@k" for further replicas.
     */
    std::string instanceLabel() const;

    /**
     * Resolve downstream service replica groups and open per-worker
     * connections to every replica. Must be called once after all
     * services are constructed (Deployment::wireAll).
     * @throws std::runtime_error naming caller and downstream when a
     *         downstream reference does not resolve.
     */
    void wire(const ServiceResolver &resolver);

    /**
     * Dense id of this service's replica group within its Deployment
     * (assigned at deploy time); kNoServiceId for instances
     * constructed outside a Deployment.
     */
    static constexpr std::uint32_t kNoServiceId = 0xffffffffu;
    std::uint32_t serviceId() const { return serviceId_; }
    void setServiceId(std::uint32_t id) { serviceId_ = id; }

    /**
     * Open a new inbound connection; returns the server-side socket
     * (the caller connects it to its own endpoint).
     */
    os::Socket *openConnection();

    ServiceStats &stats() { return stats_; }

    /** Reset measurement counters (start of a measured window). */
    void beginMeasure();

    /**
     * Crash / restore hook (fault injection). While down, inbound
     * messages are dropped by the network and workers idle; crashing
     * aborts in-flight requests (their clients see a timeout).
     * Restart is warm: files, caches, and queued-but-undelivered
     * state survive.
     */
    void setDown(bool down);
    bool down() const { return down_; }

    /**
     * Circuit breaker guarding downstream `target`, or nullptr when
     * the spec's breaker policy is disabled.
     */
    CircuitBreaker *breaker(std::uint32_t target);

    /**
     * Adaptive overload controller, or nullptr when the spec's
     * OverloadSpec enables nothing.
     */
    OverloadController *overload() { return overload_.get(); }
    const OverloadController *overload() const
    {
        return overload_.get();
    }

    /** Server-side retry budget (disabled unless budgetRatio > 0). */
    RetryBudget &retryBudget() { return retryBudget_; }
    const RetryBudget &retryBudget() const { return retryBudget_; }

    /**
     * Brownout gate: skip optional downstream edges while the
     * limiter's last window ran congested.
     */
    bool
    brownoutActive() const
    {
        return overload_ && spec_.resilience.overload.brownout &&
            overload_->brownoutActive();
    }

    /**
     * Record an outcome into stats, probe, and tracer. `cause` (may
     * be empty) says why work was abandoned for the cancellation
     * outcome kinds and rides along on the traced event.
     */
    void noteOutcome(os::Thread &t, trace::OutcomeKind kind,
                     std::uint32_t target, std::uint32_t endpoint,
                     unsigned attempts, std::uint64_t traceId,
                     const char *cause = "");

    void setProbe(ServiceProbe *probe) { probe_ = probe; }
    ServiceProbe *probe() const { return probe_; }

    // ---- runtime internals used by Worker --------------------------------

    struct LockState
    {
        bool held = false;
        os::WaitQueue *queue = nullptr;
    };

    LockState &lock(std::uint32_t ref) { return locks_[ref]; }
    std::uint32_t fileId(std::uint32_t ref) const
    {
        return fileIds_[ref];
    }
    std::uint64_t fileSize(std::uint32_t ref) const;

    /** Canonical (first) replica of downstream edge `idx`. */
    ServiceInstance *downstream(std::uint32_t idx)
    {
        return downstreamGroups_[idx].empty()
            ? nullptr
            : downstreamGroups_[idx].front();
    }

    /** All replicas of downstream edge `idx`. */
    const std::vector<ServiceInstance *> &
    downstreamGroup(std::uint32_t idx) const
    {
        return downstreamGroups_[idx];
    }

    /**
     * Select the replica for one RPC attempt on edge `target` (see
     * cluster::EdgeBalancer::pick). `key` is the request key used by
     * consistent hashing. Crashed replicas and replicas on crashed
     * machines are excluded while any live one remains; a region pin
     * on the edge additionally excludes replicas outside the pinned
     * region, and the PreferLocal policy keeps picks in this
     * machine's own region while one of its replicas is usable.
     */
    std::size_t pickReplica(std::uint32_t target, std::uint64_t key);

    /**
     * Like pickReplica but excluding replica `exclude` (hedged
     * requests must land on a *different* replica). Falls back to
     * `exclude` when it is the only usable choice; the caller skips
     * the hedge in that case. Under PreferLocal a hedge crosses
     * regions only when no local replica is alive at all: while the
     * sole live local replica is the primary, the fallback-to-
     * `exclude` path applies and the hedge is skipped.
     */
    std::size_t pickReplicaExcluding(std::uint32_t target,
                                     std::uint64_t key,
                                     std::size_t exclude);

    /** Sentinel: edge has no region pin. */
    static constexpr std::uint32_t kNoRegionPin = 0xffffffffu;

    /**
     * Pin downstream edge `target` to one region: picks only consider
     * replicas whose machine lives there (Deployment::wireAll
     * installs these from BalancingSpec::pinRegion).
     */
    void
    setEdgeRegionPin(std::uint32_t target, std::uint32_t regionId)
    {
        edgeRegionPins_[target] = regionId;
    }

    /** Balancer of downstream edge `target` (attempt accounting). */
    cluster::EdgeBalancer &balancer(std::uint32_t target)
    {
        return balancers_[target];
    }

    /**
     * A replica was added to downstream group `target` mid-run
     * (autoscaler scale-up): open one connection per worker and grow
     * the edge balancer. Requires wire() to have run.
     */
    void addDownstreamReplica(std::uint32_t target,
                              ServiceInstance &replica);

    /** Retire / reactivate a downstream replica in the balancer. */
    void setDownstreamReplicaActive(std::uint32_t target,
                                    std::size_t replica, bool active);

    /** Pending inbound requests summed over this instance's workers. */
    std::size_t inboundQueueDepth() const;

    /** Requests currently executing on this instance's workers. */
    std::size_t activeRequests() const;

    std::uint64_t nextTag() { return nextTag_++; }

    sim::Rng &rng() { return rng_; }

  private:
    friend class Worker;

    const ServiceSpec spec_;
    os::Machine &machine_;
    os::Network &network_;
    trace::Tracer *tracer_;
    std::unique_ptr<hw::CodeImage> image_;
    ServiceStats stats_;
    ServiceProbe *probe_ = nullptr;
    sim::Rng rng_;
    std::uint64_t seed_;
    unsigned replicaIndex_;
    std::uint32_t serviceId_ = kNoServiceId;

    std::vector<Worker *> workers_;       //!< owned by the scheduler
    std::vector<std::uint32_t> fileIds_;
    std::vector<LockState> locks_;
    std::vector<std::vector<ServiceInstance *>> downstreamGroups_;
    std::vector<cluster::EdgeBalancer> balancers_;
    /** Per-edge region pin (kNoRegionPin when unpinned). */
    std::vector<std::uint32_t> edgeRegionPins_;
    std::vector<CircuitBreaker> breakers_;
    std::unique_ptr<OverloadController> overload_;
    RetryBudget retryBudget_;
    unsigned nextWorkerForConn_ = 0;
    unsigned nextThreadSlot_ = 0;
    std::uint64_t nextTag_ = 1;
    bool wired_ = false;
    bool down_ = false;

    Worker *spawnWorker(ThreadRole role, const std::string &name,
                        const Program *background, sim::Time period);
    void openDownstreamConns(Worker &w);
    os::Socket *connectTo(ServiceInstance &target);
    /** Inbound MsgKind::Cancel delivery (Socket::onCancel hook). */
    void handleCancel(Worker &w, os::Socket &sock,
                      const os::Message &msg);
};

/**
 * A service thread: epoll worker, per-connection handler, or
 * background timer thread; also the execution context handed to the
 * ProgramRunner.
 */
class Worker : public os::Thread
{
  public:
    Worker(ServiceInstance &service, ThreadRole role, std::string name,
           unsigned threadSlot, const Program *background,
           sim::Time period, std::uint64_t seed);

    os::StepResult step(os::StepCtx &ctx) override;

    ThreadRole role() const { return role_; }
    ServiceInstance &service() { return service_; }

    /** Attach an inbound connection socket. */
    void addConnection(os::Socket *sock);

    /** Connection socket to replica `replica` of RPC target `idx`. */
    os::Socket *downConn(std::uint32_t idx, std::size_t replica)
    {
        return downConns_[idx][replica];
    }
    void setDownConns(std::vector<std::vector<os::Socket *>> conns)
    {
        downConns_ = std::move(conns);
    }
    /** Append a connection for a freshly added replica of `idx`. */
    void addDownConn(std::uint32_t idx, os::Socket *sock)
    {
        downConns_[idx].push_back(sock);
    }

    /** Current wall time including cycles consumed this slice. */
    sim::Time now(const os::StepCtx &ctx) const;

    // ---- hooks used by ProgramRunner -------------------------------------
    void probeSyscall(SysKind kind, std::uint64_t bytes);
    void accountDiskRead(std::uint64_t bytes);
    void accountDiskWrite(std::uint64_t bytes);

    struct CurrentRequest
    {
        os::Socket *sock = nullptr;
        os::Message msg;
        sim::Time start = 0;
        std::uint64_t serverSpan = 0;
        bool active = false;
        /** A downstream call failed; respond with Error status. */
        bool degraded = false;
    };

    CurrentRequest &currentRequest() { return req_; }

    /**
     * Per-worker state of the in-flight Rpc op (one Rpc op runs at a
     * time per worker, so a single slot suffices). Holds the attempt
     * counter, the tag the worker is waiting for, and the armed
     * deadline/backoff timer.
     */
    struct RpcState
    {
        unsigned attempt = 0;      //!< attempts made for current call
        std::uint64_t waitTag = 0; //!< tag of the outstanding attempt
        sim::EventId timer = 0;    //!< pending deadline/backoff event
        bool timerFired = false;
        bool inBackoff = false;
        /** Connection the outstanding sync attempt was sent on. */
        os::Socket *conn = nullptr;
        /** Replica index the outstanding sync attempt targets. */
        std::size_t replica = 0;
        // ---- lifecycle bookkeeping (conservation + cancellation) ----
        bool callOpen = false;       //!< logical sync call unsettled
        bool attemptOpen = false;    //!< attempt onSend'd, not onDone'd
        std::uint32_t callTarget = 0;
        std::uint32_t callEndpoint = 0;
        /** Absolute deadline forwarded to the callee; 0 none. */
        sim::Time sendDeadline = 0;
        // ---- hedging -------------------------------------------------
        sim::EventId hedgeTimer = 0;
        bool hedgeFired = false;
        bool hedgeLaunched = false;  //!< sticky per call: one hedge max
        std::uint64_t hedgeTag = 0;
        os::Socket *hedgeConn = nullptr;
        std::size_t hedgeReplica = 0;
        /** Expected response tags of an async fanout, by call idx. */
        std::vector<std::uint64_t> fanoutTags;
        /** Chosen connection / replica of each async fanout call. */
        std::vector<os::Socket *> fanoutConns;
        std::vector<std::size_t> fanoutReplicas;
        /** Mirror of frame.aux pending bitmask (for cancellation). */
        std::uint64_t fanoutPending = 0;
        std::vector<std::uint32_t> fanoutTargets;
        std::vector<std::uint32_t> fanoutEndpoints;

        /**
         * Return to the default-constructed state while keeping the
         * fanout vectors' capacity. One RpcState is recycled per RPC
         * per worker, so reassigning a fresh `RpcState{}` here would
         * free and reallocate five vectors on every call.
         */
        void
        reset()
        {
            attempt = 0;
            waitTag = 0;
            timer = 0;
            timerFired = false;
            inBackoff = false;
            conn = nullptr;
            replica = 0;
            callOpen = false;
            attemptOpen = false;
            callTarget = 0;
            callEndpoint = 0;
            sendDeadline = 0;
            hedgeTimer = 0;
            hedgeFired = false;
            hedgeLaunched = false;
            hedgeTag = 0;
            hedgeConn = nullptr;
            hedgeReplica = 0;
            fanoutTags.clear();
            fanoutConns.clear();
            fanoutReplicas.clear();
            fanoutPending = 0;
            fanoutTargets.clear();
            fanoutEndpoints.clear();
        }
    };

    RpcState &rpcState() { return rpcState_; }

    /** Arm the deadline/backoff timer `delay` from now. */
    void armRpcTimer(const os::StepCtx &ctx, sim::Time delay);
    void cancelRpcTimer();

    /** Arm / cancel the hedge-launch timer. */
    void armHedgeTimer(const os::StepCtx &ctx, sim::Time delay);
    void cancelHedgeTimer();

    /** Abort the in-flight request (service crash). */
    void abortRequest();

    /**
     * Cooperative cancellation of the request identified by (sock,
     * tag) if it is the one this worker is executing. Marks the
     * request cancel-pending, detaches the worker from whatever wait
     * list blocks it, and wakes it; the worker settles on its next
     * slice (chasing in-flight downstream attempts with cancels).
     */
    void requestCancel(os::Socket &sock, std::uint64_t tag);

    /** Send a MsgKind::Cancel chasing `tag` down `conn`. */
    void sendCancelMsg(os::StepCtx &ctx, os::Socket *conn,
                       std::uint64_t tag, std::uint64_t traceId);

    /** Messages queued on this worker's inbound connections. */
    std::size_t inboundQueueDepth() const;

    /** Whether a request is executing on this worker right now. */
    bool requestActive() const { return req_.active; }

    /** Lock-hold tracking so aborted requests can't strand a lock. */
    void noteLockAcquired(std::uint32_t ref)
    {
        heldLocks_.push_back(ref);
    }
    void noteLockReleased(std::uint32_t ref);

  private:
    ServiceInstance &service_;
    ThreadRole role_;
    const Program *background_;
    sim::Time period_;
    ProgramRunner runner_;
    std::deque<os::Socket *> readyList_;
    std::vector<os::Socket *> conns_;       //!< inbound connections
    /** Outbound RPC conns, [target edge][replica]. */
    std::vector<std::vector<os::Socket *>> downConns_;
    os::Epoll *epoll_ = nullptr;
    CurrentRequest req_;
    RpcState rpcState_;
    std::vector<std::uint32_t> heldLocks_;
    bool started_ = false;
    bool cancelPending_ = false;
    int bgPhase_ = 0;
    unsigned pollCursor_ = 0;

    os::StepResult stepServer(os::StepCtx &ctx);
    os::StepResult stepBackground(os::StepCtx &ctx);
    bool fetchNextRequest(os::StepCtx &ctx, bool &blocked);
    void beginRequest(os::StepCtx &ctx, os::Socket *sock,
                      os::Message msg);
    void finishRequest(os::StepCtx &ctx);
    void shedRequest(os::StepCtx &ctx, os::Socket *sock,
                     os::Message msg, const char *cause = "");
    void finishCancelledRequest(os::StepCtx &ctx);
    /**
     * Settle every unsettled downstream call of the current request
     * as RpcCancelled: release balancer slots and waiter entries and,
     * when `ctx` is non-null and the spec opts into cancellation,
     * chase the in-flight attempts with MsgKind::Cancel. `ctx` is
     * null on the crash path (a crashed process sends nothing).
     */
    void settleOpenCalls(os::StepCtx *ctx, const char *cause);
    void detachFromBlockers();
    void releaseHeldLocks();
};

} // namespace ditto::app

#endif // DITTO_APP_SERVICE_H_
