#include "app/deployment.h"

namespace ditto::app {

Deployment::Deployment(std::uint64_t seed, double traceSampleRate)
    : seed_(seed), network_(events_), tracer_(traceSampleRate)
{
}

Deployment::~Deployment() = default;

os::Machine &
Deployment::addMachine(const std::string &name,
                       const hw::PlatformSpec &spec)
{
    machines_.push_back(std::make_unique<os::Machine>(
        name, spec, events_, seed_ ^ machines_.size()));
    os::Machine &m = *machines_.back();
    m.kernel().setNetwork(&network_);
    machinesByName_[name] = &m;
    return m;
}

ServiceInstance &
Deployment::deploy(const ServiceSpec &spec, os::Machine &machine)
{
    services_.push_back(std::make_unique<ServiceInstance>(
        spec, machine, network_, &tracer_,
        seed_ ^ (services_.size() * 0x9e3779b9ull)));
    ServiceInstance &svc = *services_.back();
    registry_[spec.name] = &svc;
    return svc;
}

void
Deployment::wireAll()
{
    for (auto &svc : services_)
        svc->wire(registry_);
}

ServiceInstance *
Deployment::find(const std::string &name)
{
    auto it = registry_.find(name);
    return it != registry_.end() ? it->second : nullptr;
}

os::Machine *
Deployment::machine(const std::string &name)
{
    auto it = machinesByName_.find(name);
    return it != machinesByName_.end() ? it->second : nullptr;
}

void
Deployment::runFor(sim::Time duration)
{
    events_.runUntil(events_.now() + duration);
}

void
Deployment::beginMeasureAll()
{
    for (auto &svc : services_)
        svc->beginMeasure();
}

} // namespace ditto::app
