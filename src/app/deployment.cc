#include "app/deployment.h"

#include <map>
#include <stdexcept>

namespace ditto::app {

Deployment::Deployment(std::uint64_t seed, double traceSampleRate)
    : seed_(seed), network_(events_), tracer_(traceSampleRate)
{
}

Deployment::~Deployment() = default;

os::Machine &
Deployment::addMachine(const std::string &name,
                       const hw::PlatformSpec &spec)
{
    machines_.push_back(std::make_unique<os::Machine>(
        name, spec, events_, seed_ ^ machines_.size()));
    os::Machine &m = *machines_.back();
    m.kernel().setNetwork(&network_);
    machinesByName_[name] = &m;
    return m;
}

std::uint32_t
Deployment::defineRegion(const std::string &region)
{
    std::uint32_t id = 0;
    if (regionId(region, id))
        return id;
    regionNames_.push_back(region);
    return static_cast<std::uint32_t>(regionNames_.size() - 1);
}

bool
Deployment::regionId(const std::string &region,
                     std::uint32_t &out) const
{
    for (std::size_t i = 0; i < regionNames_.size(); ++i) {
        if (regionNames_[i] == region) {
            out = static_cast<std::uint32_t>(i);
            return true;
        }
    }
    return false;
}

const std::string &
Deployment::regionName(std::uint32_t id) const
{
    static const std::string kUnknown = "?";
    return id < regionNames_.size() ? regionNames_[id] : kUnknown;
}

std::vector<os::Machine *>
Deployment::machinesInRegion(std::uint32_t id) const
{
    std::vector<os::Machine *> out;
    for (const auto &m : machines_) {
        if (m->regionId() == id)
            out.push_back(m.get());
    }
    return out;
}

os::Machine &
Deployment::addMachine(const std::string &name,
                       const hw::PlatformSpec &spec,
                       const std::string &region)
{
    std::uint32_t id = 0;
    if (!regionId(region, id)) {
        throw std::runtime_error(
            "addMachine: machine '" + name +
            "' references unknown region '" + region + "'");
    }
    os::Machine &m = addMachine(name, spec);
    m.setRegion(id);
    return m;
}

os::Machine &
Deployment::leastLoadedIn(std::uint32_t regionId,
                          const std::string &context,
                          const std::string &service,
                          const std::string &region)
{
    std::map<const os::Machine *, unsigned> hosted;
    for (const auto &svc : services_)
        hosted[&svc->machine()]++;
    os::Machine *best = nullptr;
    for (const auto &m : machines_) {
        if (m->regionId() != regionId)
            continue;
        if (!best || hosted[m.get()] < hosted[best])
            best = m.get();
    }
    if (!best) {
        throw std::runtime_error(
            context + ": service '" + service +
            "' references region '" + region + "' with no machines");
    }
    return *best;
}

ServiceInstance &
Deployment::deployInRegion(const ServiceSpec &spec,
                           const std::string &region)
{
    std::uint32_t id = 0;
    if (!regionId(region, id)) {
        throw std::runtime_error(
            "deploy: service '" + spec.name +
            "' references unknown region '" + region + "'");
    }
    return deploy(spec,
                  leastLoadedIn(id, "deploy", spec.name, region));
}

ServiceInstance &
Deployment::addReplicaInRegion(const std::string &name,
                               const std::string &region)
{
    std::uint32_t id = 0;
    if (!regionId(region, id)) {
        throw std::runtime_error(
            "addReplica: replica of service '" + name +
            "' references unknown region '" + region + "'");
    }
    return addReplica(name,
                      leastLoadedIn(id, "addReplica", name, region));
}

ServiceInstance &
Deployment::instantiate(const ServiceSpec &spec, os::Machine &machine,
                        unsigned replicaIndex)
{
    services_.push_back(std::make_unique<ServiceInstance>(
        spec, machine, network_, &tracer_,
        seed_ ^ (services_.size() * 0x9e3779b9ull), replicaIndex));
    ServiceInstance &svc = *services_.back();
    const std::uint32_t id = serviceIds_.intern(spec.name);
    if (id >= groups_.size()) {
        groups_.resize(id + 1);
        upstreamEdges_.resize(id + 1);
    }
    groups_[id].push_back(&svc);
    svc.setServiceId(id);
    return svc;
}

ServiceInstance &
Deployment::deploy(const ServiceSpec &spec, os::Machine &machine)
{
    if (serviceIds_.lookup(spec.name) != kNoServiceId) {
        throw std::runtime_error(
            "deploy: duplicate service name '" + spec.name + "'");
    }
    return instantiate(spec, machine, 0);
}

ServiceInstance &
Deployment::addReplica(const std::string &name, os::Machine &machine)
{
    const std::uint32_t id = serviceIds_.lookup(name);
    if (id == kNoServiceId) {
        throw std::runtime_error(
            "addReplica: service '" + name + "' is not deployed");
    }
    const ServiceSpec &spec = groups_[id].front()->spec();
    ServiceInstance &replica = instantiate(
        spec, machine, static_cast<unsigned>(groups_[id].size()));
    if (wired_) {
        // Mid-run scale-up: wire the replica's own downstream edges,
        // then fan it into every caller of the group.
        replica.wire(*this);
        applyRegionPins(replica);
        for (auto &[caller, edge] : upstreamEdges_[id])
            caller->addDownstreamReplica(edge, replica);
    }
    return replica;
}

void
Deployment::applyRegionPins(ServiceInstance &svc)
{
    const auto &pins = svc.spec().balancing.pinRegion;
    if (pins.empty())
        return;
    const auto &downs = svc.spec().downstreams;
    for (std::uint32_t i = 0; i < downs.size(); ++i) {
        const std::string *pin =
            svc.spec().balancing.regionPinFor(downs[i]);
        if (!pin)
            continue;
        std::uint32_t id = 0;
        if (!regionId(*pin, id)) {
            throw std::runtime_error(
                "wire: service '" + svc.spec().name +
                "' pins downstream '" + downs[i] +
                "' to unknown region '" + *pin + "'");
        }
        svc.setEdgeRegionPin(i, id);
    }
}

void
Deployment::wireAll()
{
    for (auto &edges : upstreamEdges_)
        edges.clear();
    for (auto &svc : services_) {
        svc->wire(*this);
        applyRegionPins(*svc);
        const auto &downs = svc->spec().downstreams;
        for (std::uint32_t i = 0; i < downs.size(); ++i) {
            // wire() resolved every downstream, so the id exists.
            const std::uint32_t down = serviceIds_.lookup(downs[i]);
            upstreamEdges_[down].push_back({svc.get(), i});
        }
    }
    wired_ = true;
}

ServiceInstance *
Deployment::find(const std::string &name)
{
    const std::uint32_t id = serviceIds_.lookup(name);
    return id != kNoServiceId ? groups_[id].front() : nullptr;
}

const std::vector<ServiceInstance *> &
Deployment::replicas(const std::string &name) const
{
    static const std::vector<ServiceInstance *> kEmpty;
    const std::uint32_t id = serviceIds_.lookup(name);
    return id != kNoServiceId ? groups_[id] : kEmpty;
}

void
Deployment::setReplicaActive(const std::string &name,
                             std::size_t replica, bool active)
{
    const std::uint32_t id = serviceIds_.lookup(name);
    if (id != kNoServiceId)
        setReplicaActive(id, replica, active);
}

void
Deployment::setReplicaActive(std::uint32_t id, std::size_t replica,
                             bool active)
{
    if (id >= upstreamEdges_.size())
        return;
    for (auto &[caller, edge] : upstreamEdges_[id])
        caller->setDownstreamReplicaActive(edge, replica, active);
}

os::Machine *
Deployment::machine(const std::string &name)
{
    auto it = machinesByName_.find(name);
    return it != machinesByName_.end() ? it->second : nullptr;
}

void
Deployment::runFor(sim::Time duration)
{
    events_.runUntil(events_.now() + duration);
}

void
Deployment::beginMeasureAll()
{
    for (auto &svc : services_)
        svc->beginMeasure();
}

} // namespace ditto::app
