#include "app/program.h"

namespace ditto::app {

Op
opCompute(std::uint32_t block, std::uint64_t itersMin,
          std::uint64_t itersMax)
{
    Op op;
    op.kind = OpKind::Compute;
    op.block = block;
    op.itersMin = itersMin;
    op.itersMax = itersMax;
    return op;
}

Op
opCompute(std::uint32_t block, std::uint64_t iters)
{
    return opCompute(block, iters, iters);
}

Op
opFileRead(std::uint32_t fileRef, std::uint64_t bytesMin,
           std::uint64_t bytesMax)
{
    Op op;
    op.kind = OpKind::FileRead;
    op.fileRef = fileRef;
    op.bytesMin = bytesMin;
    op.bytesMax = bytesMax;
    return op;
}

Op
opFileWrite(std::uint32_t fileRef, std::uint64_t bytesMin,
            std::uint64_t bytesMax)
{
    Op op;
    op.kind = OpKind::FileWrite;
    op.fileRef = fileRef;
    op.bytesMin = bytesMin;
    op.bytesMax = bytesMax;
    return op;
}

Op
opRpc(std::uint32_t target, std::uint32_t endpoint,
      std::uint32_t reqBytes, std::uint32_t respBytes)
{
    Op op;
    op.kind = OpKind::Rpc;
    op.rpcs.push_back(RpcCallSpec{target, endpoint, reqBytes, respBytes});
    return op;
}

Op
opRpcFanout(std::vector<RpcCallSpec> calls)
{
    Op op;
    op.kind = OpKind::Rpc;
    op.rpcs = std::move(calls);
    return op;
}

Op
opLock(std::uint32_t lockRef)
{
    Op op;
    op.kind = OpKind::Lock;
    op.lockRef = lockRef;
    return op;
}

Op
opUnlock(std::uint32_t lockRef)
{
    Op op;
    op.kind = OpKind::Unlock;
    op.lockRef = lockRef;
    return op;
}

Op
opSleep(sim::Time duration)
{
    Op op;
    op.kind = OpKind::Sleep;
    op.duration = duration;
    return op;
}

Op
opChoice(std::vector<double> probs, std::vector<Program> arms)
{
    Op op;
    op.kind = OpKind::Choice;
    op.probs = std::move(probs);
    op.subs = std::move(arms);
    return op;
}

Op
opCall(std::string label, Program body)
{
    Op op;
    op.kind = OpKind::Call;
    op.label = std::move(label);
    op.subs.push_back(std::move(body));
    return op;
}

} // namespace ditto::app
