/**
 * @file
 * RPC resilience policies: deadlines, retry with exponential backoff
 * and jitter, circuit breaking, and load shedding.
 *
 * These are the client-side mechanisms real microservices wrap around
 * downstream calls (gRPC deadlines, Envoy/Hystrix-style breakers,
 * Finagle retry budgets). They are configured per service through
 * ServiceSpec::resilience and executed by the skeleton runtime, so an
 * original application and its Ditto clone can run under the *same*
 * policies and be compared under the same injected faults.
 *
 * Everything is deterministic: backoff jitter draws from the owning
 * service's seeded Rng, and breaker state transitions are driven by
 * simulated time only.
 */

#ifndef DITTO_APP_RESILIENCE_H_
#define DITTO_APP_RESILIENCE_H_

#include <cstdint>

#include "app/overload.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace ditto::app {

/** Retry policy for one downstream RPC attempt sequence. */
struct RetryPolicy
{
    /** Total attempts including the first; 1 disables retries. */
    unsigned maxAttempts = 1;
    /** Backoff before the first retry. */
    sim::Time baseBackoff = sim::microseconds(200);
    /** Multiplier applied per further retry (exponential backoff). */
    double multiplier = 2.0;
    /** Cap on any single backoff. */
    sim::Time maxBackoff = sim::milliseconds(50);
    /** Symmetric jitter fraction in [0, 1): backoff *= 1 +/- jitter. */
    double jitter = 0.0;
    /**
     * Server-side retry budget (token bucket, see app::RetryBudget):
     * each fresh downstream call deposits `budgetRatio` tokens and
     * every retry withdraws one, so retries stay bounded to roughly
     * this fraction of fresh traffic. A call denied a retry settles
     * as the timeout it is, with outcome cause "retry_budget". 0
     * disables the budget (unbounded retries, the prior behaviour).
     */
    double budgetRatio = 0.0;
    /** Tokens pre-filled at startup (allows a small initial burst). */
    double budgetInitial = 10.0;
    /** Token-bucket cap. */
    double budgetCap = 100.0;
};

/**
 * Backoff before retry number `attempt` (1 = first retry). Jitter
 * draws one uniform sample from `rng`; with jitter == 0 no sample is
 * drawn, keeping the rng sequence identical to a no-retry run.
 */
sim::Time computeBackoff(const RetryPolicy &policy, unsigned attempt,
                         sim::Rng &rng);

/** Circuit-breaker policy for one downstream connection. */
struct CircuitBreakerPolicy
{
    bool enabled = false;
    /** Consecutive failures that trip the breaker open. */
    unsigned failureThreshold = 5;
    /** How long the breaker stays open before probing. */
    sim::Time openDuration = sim::milliseconds(10);
    /** Concurrent probe requests allowed while half-open. */
    unsigned halfOpenProbes = 1;
};

/**
 * Per-downstream circuit breaker (closed -> open -> half-open ->
 * closed). Shared by all workers of a service, like a breaker on a
 * shared connection pool.
 */
class CircuitBreaker
{
  public:
    enum class State : std::uint8_t
    {
        Closed,
        Open,
        HalfOpen,
    };

    CircuitBreaker() = default;
    explicit CircuitBreaker(const CircuitBreakerPolicy &policy)
        : policy_(policy)
    {
    }

    /**
     * Admission check before issuing a call. May transition
     * Open -> HalfOpen when the open window has elapsed.
     * @retval false the call must fail fast without being sent.
     */
    bool allowRequest(sim::Time now);

    /** A call admitted by allowRequest() completed successfully. */
    void onSuccess();

    /** A call admitted by allowRequest() failed (e.g. timed out). */
    void onFailure(sim::Time now);

    State state() const { return state_; }
    std::uint64_t timesOpened() const { return timesOpened_; }
    unsigned consecutiveFailures() const { return failures_; }

  private:
    CircuitBreakerPolicy policy_;
    State state_ = State::Closed;
    unsigned failures_ = 0;
    unsigned probesInFlight_ = 0;
    sim::Time openUntil_ = 0;
    std::uint64_t timesOpened_ = 0;

    void trip(sim::Time now);
};

/** Human-readable breaker state name. */
const char *breakerStateName(CircuitBreaker::State state);

/**
 * Hedged-request policy for downstream RPC edges (BigTable/Dynamo
 * style tail-latency hedging): when the first attempt has not
 * answered within `delay`, launch a second attempt on a *different*
 * replica; first response wins, the loser is cancelled. Hedges only
 * fire on the first attempt of a call and only when the edge has more
 * than one usable replica.
 */
struct HedgePolicy
{
    bool enabled = false;
    /** Latency threshold after which the hedge attempt launches. */
    sim::Time delay = sim::milliseconds(1);
};

/**
 * Resilience configuration of one service, applied to every
 * downstream RPC it issues and to its inbound request queue. The
 * default-constructed spec disables every mechanism, leaving the
 * runtime's behaviour bit-identical to a build without this header.
 */
struct ResilienceSpec
{
    /**
     * Per-attempt deadline on downstream RPCs; 0 waits forever (the
     * pre-resilience behaviour).
     */
    sim::Time rpcDeadline = 0;
    RetryPolicy retry;
    CircuitBreakerPolicy breaker;
    /**
     * Shed (fail-fast) inbound requests when the worker's pending
     * inbound queue depth reaches this threshold; 0 disables.
     */
    unsigned shedQueueThreshold = 0;
    /**
     * End-to-end deadline propagation: honor the absolute deadline
     * carried by inbound requests (drop work that is already dead on
     * arrival) and forward the remaining budget, minus `hopMargin`,
     * with every outbound RPC. A hop whose budget is exhausted fails
     * fast without transmitting.
     */
    bool propagateDeadline = false;
    /** Budget slack reserved per hop for the reply leg. */
    sim::Time hopMargin = 0;
    /**
     * Cooperative cancellation: chase abandoned downstream attempts
     * (timeouts, give-ups, hedge losers) with a MsgKind::Cancel so
     * the subtree stops working. Receiving a cancel is always
     * honored; this knob controls whether this service *sends* them.
     */
    bool cancellation = false;
    HedgePolicy hedge;
    /**
     * Adaptive overload control: concurrency limiter, sojourn /
     * deadline-aware queue drops, priority shedding, brownout. See
     * app/overload.h; default-constructed = everything off.
     */
    OverloadSpec overload;

    bool
    any() const
    {
        return rpcDeadline > 0 || retry.maxAttempts > 1 ||
            breaker.enabled || shedQueueThreshold > 0 ||
            propagateDeadline || cancellation || hedge.enabled ||
            overload.any();
    }
};

} // namespace ditto::app

#endif // DITTO_APP_RESILIENCE_H_
