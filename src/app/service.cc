#include "app/service.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ditto::app {

namespace {

/** Private-copy slots reserved per service image. */
constexpr unsigned kServiceThreadSlots = 64;

/** Cycles for an uncontended user-space lock acquire/release. */
constexpr double kUserLockCycles = 40;

} // namespace

std::string_view
sysKindName(SysKind kind)
{
    switch (kind) {
      case SysKind::SocketRead: return "read";
      case SysKind::SocketWrite: return "write";
      case SysKind::EpollWait: return "epoll_wait";
      case SysKind::Pread: return "pread";
      case SysKind::Pwrite: return "pwrite";
      case SysKind::FutexWait: return "futex_wait";
      case SysKind::FutexWake: return "futex_wake";
      case SysKind::Nanosleep: return "nanosleep";
      case SysKind::Clone: return "clone";
    }
    return "?";
}

void
ServiceStats::reset(sim::Time now)
{
    exec = hw::ExecStats{};
    latency.reset();
    requests = 0;
    rxBytes = 0;
    txBytes = 0;
    diskReadBytes = 0;
    diskWriteBytes = 0;
    rpcOk = 0;
    rpcRetries = 0;
    rpcTimeouts = 0;
    rpcBreakerFastFails = 0;
    rpcStaleResponses = 0;
    requestsShed = 0;
    requestsDegraded = 0;
    rpcCallsStarted = 0;
    rpcCancelled = 0;
    rpcHedges = 0;
    rpcHedgeWins = 0;
    requestsCancelled = 0;
    rpcRetriesSuppressed = 0;
    rpcBrownoutSkipped = 0;
    measureStart = now;
}

double
ServiceStats::qps(sim::Time now) const
{
    const double secs = sim::toSeconds(now - measureStart);
    return secs > 0 ? static_cast<double>(requests) / secs : 0.0;
}

double
ServiceStats::netBandwidth(sim::Time now) const
{
    const double secs = sim::toSeconds(now - measureStart);
    return secs > 0 ?
        static_cast<double>(rxBytes + txBytes) / secs : 0.0;
}

double
ServiceStats::diskBandwidth(sim::Time now) const
{
    const double secs = sim::toSeconds(now - measureStart);
    return secs > 0 ?
        static_cast<double>(diskReadBytes + diskWriteBytes) / secs : 0.0;
}

// ---------------------------------------------------------------------------
// ProgramRunner
// ---------------------------------------------------------------------------

void
ProgramRunner::start(const Program *prog)
{
    stack_.clear();
    stack_.push_back(Frame{prog, 0, 0, 0, nullptr});
}

const Op *
ProgramRunner::currentOp() const
{
    if (stack_.empty())
        return nullptr;
    const Frame &f = stack_.back();
    if (f.pc >= f.prog->ops.size())
        return nullptr;
    return &f.prog->ops[f.pc];
}

ProgramRunner::Status
ProgramRunner::run(os::StepCtx &ctx, Worker &worker)
{
    while (!stack_.empty()) {
        if (ctx.overBudget())
            return Status::Budget;

        Frame &frame = stack_.back();
        if (frame.pc >= frame.prog->ops.size()) {
            if (frame.callLabel && worker.service().probe()) {
                worker.service().probe()->onCallExit(worker,
                                                     *frame.callLabel);
            }
            stack_.pop_back();
            continue;
        }

        const Op &op = frame.prog->ops[frame.pc];
        const Status st = execOp(ctx, worker, frame, op);
        if (st != Status::Done)
            return st;
    }
    return Status::Done;
}

ProgramRunner::Status
ProgramRunner::execOp(os::StepCtx &ctx, Worker &worker, Frame &frame,
                      const Op &op)
{
    ServiceInstance &service = worker.service();
    os::Kernel &kernel = ctx.kernel;
    sim::Rng &rng = service.rng();

    switch (op.kind) {
      case OpKind::Compute: {
        const std::uint64_t iters = op.itersMin >= op.itersMax
            ? op.itersMin
            : static_cast<std::uint64_t>(rng.uniformInt(
                  static_cast<std::int64_t>(op.itersMin),
                  static_cast<std::int64_t>(op.itersMax)));
        hw::ExecStats scratch;
        const double cycles = ctx.core.run(
            service.image(), op.block, iters, worker.execContext(),
            scratch);
        ctx.cyclesUsed += cycles;
        if (worker.statsSink())
            worker.statsSink()->add(scratch);
        frame.pc++;
        return Status::Done;
      }

      case OpKind::FileRead: {
        if (frame.phase == 0) {
            const std::uint64_t bytes = op.bytesMin >= op.bytesMax
                ? op.bytesMin
                : static_cast<std::uint64_t>(rng.uniformInt(
                      static_cast<std::int64_t>(op.bytesMin),
                      static_cast<std::int64_t>(op.bytesMax)));
            const std::uint64_t fileSize =
                service.fileSize(op.fileRef);
            const std::uint64_t maxOff =
                fileSize > bytes ? fileSize - bytes : 0;
            std::uint64_t offset = rng.uniformInt(maxOff + 1);
            offset &= ~(os::kPageBytes - 1);
            worker.probeSyscall(SysKind::Pread, bytes);
            if (service.probe()) {
                service.probe()->onFileAccess(worker, offset, bytes,
                                              false);
            }
            std::uint64_t diskBytes = 0;
            const os::SysResult res = kernel.sysPread(
                ctx, worker, service.fileId(op.fileRef), offset,
                bytes, diskBytes);
            worker.accountDiskRead(diskBytes);
            if (res == os::SysResult::Ok) {
                frame.pc++;
                return Status::Done;
            }
            frame.phase = 1;
            frame.aux = bytes;
            return Status::Blocked;
        }
        kernel.sysPreadFinish(ctx, worker, frame.aux);
        frame.phase = 0;
        frame.pc++;
        return Status::Done;
      }

      case OpKind::FileWrite: {
        const std::uint64_t bytes = op.bytesMin >= op.bytesMax
            ? op.bytesMin
            : static_cast<std::uint64_t>(rng.uniformInt(
                  static_cast<std::int64_t>(op.bytesMin),
                  static_cast<std::int64_t>(op.bytesMax)));
        const std::uint64_t fileSize = service.fileSize(op.fileRef);
        const std::uint64_t maxOff =
            fileSize > bytes ? fileSize - bytes : 0;
        const std::uint64_t offset = rng.uniformInt(maxOff + 1);
        worker.probeSyscall(SysKind::Pwrite, bytes);
        if (service.probe())
            service.probe()->onFileAccess(worker, offset, bytes, true);
        kernel.sysPwrite(ctx, worker, service.fileId(op.fileRef),
                         offset, bytes);
        worker.accountDiskWrite(bytes);
        frame.pc++;
        return Status::Done;
      }

      case OpKind::Rpc: {
        const bool async =
            service.spec().clientModel == ClientModel::Async;
        const ResilienceSpec &res = service.spec().resilience;
        const std::size_t n = op.rpcs.size();
        if (n == 0) {
            frame.pc++;
            return Status::Done;
        }

        Worker::RpcState &rs = worker.rpcState();
        const std::uint64_t traceId =
            worker.currentRequest().msg.traceId;

        auto send_call = [&](const RpcCallSpec &call, os::Socket *conn,
                             sim::Time deadline) -> std::uint64_t {
            os::Message req;
            req.kind = os::MsgKind::Request;
            req.bytes = call.requestBytes;
            req.endpoint = call.endpoint;
            req.tag = service.nextTag();
            req.traceId = traceId;
            req.parentSpan = worker.currentRequest().serverSpan;
            req.sendTime = worker.now(ctx);
            req.deadline = deadline;
            // Priority rides downstream with every hop, like the
            // deadline: a child call works at its root's priority.
            req.priority = worker.currentRequest().msg.priority;
            const std::uint64_t tag = req.tag;
            worker.probeSyscall(SysKind::SocketWrite, req.bytes);
            if (service.probe()) {
                service.probe()->onRpcIssued(
                    worker, call.target, call.endpoint,
                    call.requestBytes, call.responseBytes);
            }
            if (service.tracer()) {
                ServiceInstance *target =
                    service.downstream(call.target);
                service.tracer()->recordEdge(trace::RpcEdge{
                    req.traceId, req.parentSpan, service.name(),
                    target ? target->name() : "?", call.endpoint,
                    call.requestBytes, call.responseBytes,
                    deadline > req.sendTime
                        ? static_cast<std::uint64_t>(deadline -
                                                     req.sendTime)
                        : 0});
            }
            service.stats().txBytes += call.requestBytes;
            kernel.sysSocketWrite(ctx, worker, *conn, std::move(req));
            return tag;
        };

        // End-to-end budget: the absolute deadline the inbound request
        // carries, minus the hop margin reserved for the reply leg.
        // 0 means "no budget" (propagation off or no deadline).
        auto hop_budget = [&]() -> sim::Time {
            if (!res.propagateDeadline)
                return 0;
            const sim::Time d = worker.currentRequest().msg.deadline;
            if (d == 0)
                return 0;
            return d > res.hopMargin ? d - res.hopMargin : 1;
        };

        auto finish_response = [&](const os::Message &resp) {
            service.stats().rxBytes += resp.bytes;
            // A degraded downstream answer degrades our own response.
            if (resp.status != os::MsgStatus::Ok)
                worker.currentRequest().degraded = true;
        };

        if (!async) {
            // Sync client: send call k, await its response, repeat.
            // With resilience enabled each call runs an attempt loop:
            // arm a deadline, and on expiry back off and resend (the
            // response is matched by tag, so a late first reply is
            // discarded rather than credited to the retry). Each
            // attempt picks a replica through the edge balancer, so a
            // retry can land on -- and route around a crash via -- a
            // different replica than the attempt it replaces.
            while (true) {
                const std::size_t callIdx =
                    static_cast<std::size_t>(frame.phase) / 2;
                if (callIdx >= n) {
                    frame.phase = 0;
                    frame.pc++;
                    return Status::Done;
                }
                const RpcCallSpec &call = op.rpcs[callIdx];
                CircuitBreaker *cb = service.breaker(call.target);
                if (frame.phase % 2 == 0) {
                    if (rs.attempt == 0) {
                        if (res.any())
                            service.stats().rpcCallsStarted++;
                        rs.callOpen = true;
                        rs.callTarget = call.target;
                        rs.callEndpoint = call.endpoint;
                        service.retryBudget().onFresh();
                        if (call.optional &&
                            service.brownoutActive()) {
                            // Brownout: the limiter is congested, so
                            // shed this optional edge outright. The
                            // response is NOT degraded -- optional
                            // means the caller renders fine without
                            // it.
                            service.stats().rpcBrownoutSkipped++;
                            service.noteOutcome(
                                worker,
                                trace::OutcomeKind::RpcCancelled,
                                call.target, call.endpoint, 0,
                                traceId, "brownout");
                            rs.reset();
                            frame.phase += 2;  // skip the call
                            continue;
                        }
                    }
                    const sim::Time budget = hop_budget();
                    if (budget != 0 && budget <= worker.now(ctx)) {
                        // Budget already exhausted: fail fast without
                        // putting anything on the wire. A first
                        // attempt settles as cancelled; a retry whose
                        // budget ran out settles as the timeout it is.
                        service.noteOutcome(
                            worker,
                            rs.attempt == 0
                                ? trace::OutcomeKind::RpcCancelled
                                : trace::OutcomeKind::RpcTimeout,
                            call.target, call.endpoint, rs.attempt,
                            traceId, "budget_exhausted");
                        worker.currentRequest().degraded = true;
                        worker.cancelRpcTimer();
                        worker.cancelHedgeTimer();
                        rs.reset();
                        frame.phase += 2;  // skip the call
                        continue;
                    }
                    if (cb && !cb->allowRequest(worker.now(ctx))) {
                        service.noteOutcome(
                            worker, trace::OutcomeKind::RpcBreakerOpen,
                            call.target, call.endpoint, rs.attempt,
                            traceId);
                        worker.currentRequest().degraded = true;
                        rs.reset();
                        frame.phase += 2;  // fail fast: skip the call
                        continue;
                    }
                    rs.attempt++;
                    rs.replica =
                        service.pickReplica(call.target, traceId);
                    rs.conn =
                        worker.downConn(call.target, rs.replica);
                    service.balancer(call.target).onSend(rs.replica);
                    rs.attemptOpen = true;
                    rs.sendDeadline = 0;
                    if (res.propagateDeadline) {
                        if (res.rpcDeadline > 0) {
                            rs.sendDeadline =
                                worker.now(ctx) + res.rpcDeadline;
                        }
                        if (budget != 0 &&
                            (rs.sendDeadline == 0 ||
                             budget < rs.sendDeadline)) {
                            rs.sendDeadline = budget;
                        }
                    }
                    rs.waitTag =
                        send_call(call, rs.conn, rs.sendDeadline);
                    sim::Time delay = res.rpcDeadline;
                    if (budget != 0) {
                        const sim::Time at = worker.now(ctx);
                        const sim::Time rem =
                            budget > at ? budget - at : 1;
                        if (delay == 0 || rem < delay)
                            delay = rem;
                    }
                    if (delay > 0)
                        worker.armRpcTimer(ctx, delay);
                    if (res.hedge.enabled && rs.attempt == 1 &&
                        service.downstreamGroup(call.target).size() >
                            1) {
                        worker.armHedgeTimer(ctx, res.hedge.delay);
                    }
                    frame.phase++;
                } else if (rs.inBackoff) {
                    if (!rs.timerFired)
                        return Status::Blocked;  // spurious wake
                    rs.inBackoff = false;
                    rs.timerFired = false;
                    frame.phase--;  // backoff over: resend
                } else {
                    os::Socket *conn = rs.conn;
                    os::Message resp;
                    os::Socket *from = nullptr;
                    if (kernel.sysSocketTryRead(ctx, worker, *conn,
                                                resp) ==
                        os::SysResult::Ok) {
                        from = conn;
                    } else if (rs.hedgeConn &&
                               kernel.sysSocketTryRead(
                                   ctx, worker, *rs.hedgeConn,
                                   resp) == os::SysResult::Ok) {
                        from = rs.hedgeConn;
                    }
                    if (from) {
                        const bool hedgeHit = rs.hedgeTag != 0 &&
                            resp.tag == rs.hedgeTag;
                        if (rs.waitTag != 0 &&
                            resp.tag != rs.waitTag && !hedgeHit) {
                            // Late reply to an abandoned attempt. The
                            // bytes were still delivered and read off
                            // the socket, so they count toward rx
                            // traffic and the syscall profile.
                            service.stats().rpcStaleResponses++;
                            service.stats().rxBytes += resp.bytes;
                            worker.probeSyscall(SysKind::SocketRead,
                                                resp.bytes);
                            continue;
                        }
                        worker.probeSyscall(SysKind::SocketRead,
                                            resp.bytes);
                        worker.cancelRpcTimer();
                        worker.cancelHedgeTimer();
                        service.balancer(call.target)
                            .onDone(rs.replica);
                        if (rs.hedgeConn) {
                            // First response wins; the loser attempt
                            // is released and (optionally) chased
                            // with a cancel. Its late reply, if any,
                            // dies in the stale path above.
                            service.balancer(call.target)
                                .onDone(rs.hedgeReplica);
                            os::Socket *loser =
                                hedgeHit ? rs.conn : rs.hedgeConn;
                            const std::uint64_t loserTag =
                                hedgeHit ? rs.waitTag : rs.hedgeTag;
                            loser->removeWaiter(&worker);
                            from->removeWaiter(&worker);
                            if (res.cancellation) {
                                worker.sendCancelMsg(ctx, loser,
                                                     loserTag,
                                                     traceId);
                            }
                        }
                        if (cb)
                            cb->onSuccess();
                        if (res.any()) {
                            service.noteOutcome(
                                worker,
                                hedgeHit
                                    ? trace::OutcomeKind::RpcHedgeWon
                                    : rs.attempt > 1
                                    ? trace::OutcomeKind::RpcRetriedOk
                                    : trace::OutcomeKind::RpcOk,
                                call.target, call.endpoint,
                                rs.attempt, traceId);
                        }
                        finish_response(resp);
                        rs.reset();
                        frame.phase++;
                    } else if (rs.timerFired) {
                        // Attempt deadline expired with no response.
                        rs.timerFired = false;
                        worker.cancelHedgeTimer();
                        conn->removeWaiter(&worker);
                        service.balancer(call.target)
                            .onDone(rs.replica);
                        if (res.cancellation && rs.waitTag != 0) {
                            worker.sendCancelMsg(ctx, conn, rs.waitTag,
                                                 traceId);
                        }
                        if (rs.hedgeConn) {
                            rs.hedgeConn->removeWaiter(&worker);
                            service.balancer(call.target)
                                .onDone(rs.hedgeReplica);
                            if (res.cancellation && rs.hedgeTag != 0) {
                                worker.sendCancelMsg(ctx, rs.hedgeConn,
                                                     rs.hedgeTag,
                                                     traceId);
                            }
                        }
                        // One failure per call, hedged or not: hedges
                        // must never double-count against the breaker.
                        if (cb)
                            cb->onFailure(worker.now(ctx));
                        rs.attemptOpen = false;
                        rs.hedgeConn = nullptr;
                        rs.hedgeTag = 0;
                        bool retryAllowed =
                            rs.attempt < res.retry.maxAttempts;
                        const char *giveUpCause = "";
                        if (retryAllowed &&
                            !service.retryBudget().allowWithdraw()) {
                            // Retry budget exhausted: the attempt
                            // settles as the timeout it is instead of
                            // feeding a retry storm.
                            retryAllowed = false;
                            giveUpCause = "retry_budget";
                            service.stats().rpcRetriesSuppressed++;
                        }
                        if (retryAllowed) {
                            service.stats().rpcRetries++;
                            rs.inBackoff = true;
                            worker.armRpcTimer(
                                ctx, computeBackoff(res.retry,
                                                    rs.attempt,
                                                    service.rng()));
                            return Status::Blocked;
                        }
                        service.noteOutcome(
                            worker, trace::OutcomeKind::RpcTimeout,
                            call.target, call.endpoint, rs.attempt,
                            traceId, giveUpCause);
                        worker.currentRequest().degraded = true;
                        rs.reset();
                        frame.phase++;  // give up on this call
                    } else if (rs.hedgeFired && !rs.hedgeLaunched) {
                        // Hedge threshold passed: launch the second
                        // attempt on a different replica. When no
                        // other replica is usable, skip the hedge
                        // (hedgeLaunched stays set so it won't refire
                        // for this call).
                        rs.hedgeFired = false;
                        rs.hedgeLaunched = true;
                        const std::size_t other =
                            service.pickReplicaExcluding(
                                call.target, traceId, rs.replica);
                        if (other != rs.replica) {
                            rs.hedgeReplica = other;
                            rs.hedgeConn =
                                worker.downConn(call.target, other);
                            service.balancer(call.target)
                                .onSend(other);
                            rs.hedgeTag = send_call(
                                call, rs.hedgeConn, rs.sendDeadline);
                            service.stats().rpcHedges++;
                        }
                    } else {
                        conn->addWaiter(&worker);
                        if (rs.hedgeConn)
                            rs.hedgeConn->addWaiter(&worker);
                        return Status::Blocked;
                    }
                }
                if (ctx.overBudget() &&
                    static_cast<std::size_t>(frame.phase) / 2 < n) {
                    return Status::Budget;
                }
            }
        }

        // Async client: fire the whole fanout, then collect. Each
        // call picks its replica independently, so one fanout can
        // spread across the replicas of a single downstream group.
        if (frame.phase == 0) {
            rs.reset();
            rs.fanoutTags.assign(n, 0);
            rs.fanoutConns.assign(n, nullptr);
            rs.fanoutReplicas.assign(n, 0);
            rs.fanoutTargets.assign(n, 0);
            rs.fanoutEndpoints.assign(n, 0);
            const sim::Time budget = hop_budget();
            const bool budgetDead =
                budget != 0 && budget <= worker.now(ctx);
            std::uint64_t pending = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const RpcCallSpec &call = op.rpcs[i];
                rs.fanoutTargets[i] = call.target;
                rs.fanoutEndpoints[i] = call.endpoint;
                if (res.any())
                    service.stats().rpcCallsStarted++;
                service.retryBudget().onFresh();
                if (call.optional && service.brownoutActive()) {
                    // Brownout: drop the optional leg of the fanout
                    // without degrading the response (see sync path).
                    service.stats().rpcBrownoutSkipped++;
                    service.noteOutcome(
                        worker, trace::OutcomeKind::RpcCancelled,
                        call.target, call.endpoint, 0, traceId,
                        "brownout");
                    continue;
                }
                if (budgetDead) {
                    // Budget exhausted before the fanout: fail every
                    // call fast, nothing on the wire.
                    service.noteOutcome(
                        worker, trace::OutcomeKind::RpcCancelled,
                        call.target, call.endpoint, 0, traceId,
                        "budget_exhausted");
                    worker.currentRequest().degraded = true;
                    continue;
                }
                CircuitBreaker *cb = service.breaker(call.target);
                if (cb && !cb->allowRequest(worker.now(ctx))) {
                    service.noteOutcome(
                        worker, trace::OutcomeKind::RpcBreakerOpen,
                        call.target, call.endpoint, 1, traceId);
                    worker.currentRequest().degraded = true;
                    continue;
                }
                const std::size_t replica =
                    service.pickReplica(call.target, traceId);
                rs.fanoutReplicas[i] = replica;
                rs.fanoutConns[i] =
                    worker.downConn(call.target, replica);
                service.balancer(call.target).onSend(replica);
                sim::Time sendDeadline = 0;
                if (res.propagateDeadline) {
                    if (res.rpcDeadline > 0) {
                        sendDeadline =
                            worker.now(ctx) + res.rpcDeadline;
                    }
                    if (budget != 0 &&
                        (sendDeadline == 0 || budget < sendDeadline))
                        sendDeadline = budget;
                }
                rs.fanoutTags[i] =
                    send_call(call, rs.fanoutConns[i], sendDeadline);
                pending |= std::uint64_t{1} << std::min<std::size_t>(
                    i, 63);
            }
            frame.aux = pending;
            rs.fanoutPending = pending;
            frame.phase = 1;
            sim::Time delay = res.rpcDeadline;
            if (budget != 0 && !budgetDead) {
                const sim::Time at = worker.now(ctx);
                const sim::Time rem = budget > at ? budget - at : 1;
                if (delay == 0 || rem < delay)
                    delay = rem;
            }
            if (delay > 0 && frame.aux != 0)
                worker.armRpcTimer(ctx, delay);
        }
        // Collect phase: drain whatever is ready. Calls to the same
        // target share one connection, so match each reply against
        // every pending tag; unmatched replies are stale leftovers of
        // an earlier timed-out fanout.
        for (std::size_t i = 0; i < n; ++i) {
            if (!(frame.aux & (std::uint64_t{1} << i)))
                continue;
            os::Socket *conn = rs.fanoutConns[i];
            conn->removeWaiter(&worker);
            os::Message resp;
            while ((frame.aux & (std::uint64_t{1} << i)) &&
                   kernel.sysSocketTryRead(ctx, worker, *conn, resp) ==
                       os::SysResult::Ok) {
                std::size_t match = i;
                if (rs.fanoutTags.size() == n &&
                    rs.fanoutTags[i] != 0) {
                    match = n;
                    for (std::size_t j = 0; j < n; ++j) {
                        if ((frame.aux & (std::uint64_t{1} << j)) &&
                            rs.fanoutTags[j] == resp.tag) {
                            match = j;
                            break;
                        }
                    }
                    if (match == n) {
                        // Stale fanout reply: account the read (see
                        // the sync-path comment above).
                        service.stats().rpcStaleResponses++;
                        service.stats().rxBytes += resp.bytes;
                        worker.probeSyscall(SysKind::SocketRead,
                                            resp.bytes);
                        continue;
                    }
                }
                worker.probeSyscall(SysKind::SocketRead, resp.bytes);
                service.balancer(op.rpcs[match].target)
                    .onDone(rs.fanoutReplicas[match]);
                CircuitBreaker *cb =
                    service.breaker(op.rpcs[match].target);
                if (cb)
                    cb->onSuccess();
                if (res.any()) {
                    service.noteOutcome(
                        worker, trace::OutcomeKind::RpcOk,
                        op.rpcs[match].target, op.rpcs[match].endpoint,
                        1, traceId);
                }
                finish_response(resp);
                frame.aux &= ~(std::uint64_t{1} << match);
                rs.fanoutPending = frame.aux;
            }
        }
        if (frame.aux == 0) {
            worker.cancelRpcTimer();
            rs.reset();
            frame.phase = 0;
            frame.pc++;
            return Status::Done;
        }
        if (rs.timerFired) {
            // Fanout deadline: abandon every still-pending call.
            rs.timerFired = false;
            for (std::size_t i = 0; i < n; ++i) {
                if (!(frame.aux & (std::uint64_t{1} << i)))
                    continue;
                const RpcCallSpec &call = op.rpcs[i];
                rs.fanoutConns[i]->removeWaiter(&worker);
                service.balancer(call.target)
                    .onDone(rs.fanoutReplicas[i]);
                if (res.cancellation && rs.fanoutTags[i] != 0) {
                    worker.sendCancelMsg(ctx, rs.fanoutConns[i],
                                         rs.fanoutTags[i], traceId);
                }
                CircuitBreaker *cb = service.breaker(call.target);
                if (cb)
                    cb->onFailure(worker.now(ctx));
                service.noteOutcome(
                    worker, trace::OutcomeKind::RpcTimeout,
                    call.target, call.endpoint, 1, traceId);
                worker.currentRequest().degraded = true;
            }
            rs.reset();
            frame.aux = 0;
            frame.phase = 0;
            frame.pc++;
            return Status::Done;
        }
        // Park on every still-pending connection.
        for (std::size_t i = 0; i < n; ++i) {
            if (frame.aux & (std::uint64_t{1} << i))
                rs.fanoutConns[i]->addWaiter(&worker);
        }
        return Status::Blocked;
      }

      case OpKind::Lock: {
        ServiceInstance::LockState &lock = service.lock(op.lockRef);
        if (!lock.held) {
            lock.held = true;
            worker.noteLockAcquired(op.lockRef);
            ctx.cyclesUsed += kUserLockCycles;
            frame.pc++;
            return Status::Done;
        }
        worker.probeSyscall(SysKind::FutexWait, 0);
        kernel.sysFutexWait(ctx, worker, *lock.queue);
        return Status::Blocked;  // retry the acquire after wakeup
      }

      case OpKind::Unlock: {
        ServiceInstance::LockState &lock = service.lock(op.lockRef);
        worker.noteLockReleased(op.lockRef);
        ctx.cyclesUsed += kUserLockCycles;
        if (lock.queue->hasWaiters()) {
            worker.probeSyscall(SysKind::FutexWake, 0);
            kernel.sysFutexWake(ctx, worker, *lock.queue, 0);
        }
        // The slice is computed ahead of simulated time: release the
        // lock (and wake a waiter) when the unlock logically executes,
        // so concurrent threads actually contend for the section.
        ServiceInstance::LockState *lockPtr = &lock;
        service.machine().events().scheduleAfter(
            kernel.sliceOffset(ctx), [lockPtr] {
                lockPtr->held = false;
                lockPtr->queue->wake(1);
            });
        frame.pc++;
        return Status::Done;
      }

      case OpKind::Sleep: {
        if (frame.phase == 0) {
            worker.probeSyscall(SysKind::Nanosleep, 0);
            kernel.sysNanosleep(ctx, worker, op.duration);
            frame.phase = 1;
            return Status::Blocked;
        }
        frame.phase = 0;
        frame.pc++;
        return Status::Done;
      }

      case OpKind::Choice: {
        double total = 0;
        for (double p : op.probs)
            total += p;
        double roll = rng.uniform() * (total > 0 ? total : 1.0);
        std::size_t arm = 0;
        for (; arm + 1 < op.probs.size(); ++arm) {
            if (roll < op.probs[arm])
                break;
            roll -= op.probs[arm];
        }
        frame.pc++;
        if (arm < op.subs.size() && !op.subs[arm].empty())
            stack_.push_back(Frame{&op.subs[arm], 0, 0, 0, nullptr});
        return Status::Done;
      }

      case OpKind::Call: {
        if (service.probe())
            service.probe()->onCallEnter(worker, op.label);
        frame.pc++;
        stack_.push_back(Frame{&op.subs[0], 0, 0, 0, &op.label});
        return Status::Done;
      }
    }
    frame.pc++;
    return Status::Done;
}

// ---------------------------------------------------------------------------
// ServiceInstance
// ---------------------------------------------------------------------------

ServiceInstance::ServiceInstance(const ServiceSpec &spec,
                                 os::Machine &machine,
                                 os::Network &network,
                                 trace::Tracer *tracer,
                                 std::uint64_t seed,
                                 unsigned replicaIndex)
    : spec_(spec), machine_(machine), network_(network),
      tracer_(tracer), rng_(seed ^ 0x5e41ceull), seed_(seed),
      replicaIndex_(replicaIndex)
{
    const os::Machine::AddressRegion region = machine_.allocRegion();
    image_ = std::make_unique<hw::CodeImage>(
        region.textBase, region.dataBase, kServiceThreadSlots);
    for (const hw::CodeBlock &block : spec_.blocks)
        image_->addBlock(block);

    // Replicas get distinct backing files even when co-located on one
    // machine; replica 0 keeps the original names.
    const std::string filePrefix = instanceLabel();
    for (std::size_t i = 0; i < spec_.fileBytes.size(); ++i) {
        fileIds_.push_back(machine_.vfs().create(
            filePrefix + ".file" + std::to_string(i),
            spec_.fileBytes[i]));
        if (spec_.filePrewarmFraction > 0) {
            const std::uint64_t pages =
                spec_.fileBytes[i] / os::kPageBytes;
            const auto warm = static_cast<std::uint64_t>(
                static_cast<double>(pages) * spec_.filePrewarmFraction);
            for (std::uint64_t p = 0; p < warm; ++p) {
                machine_.pageCache().access(
                    fileIds_.back(), p * os::kPageBytes, 1);
            }
        }
    }

    locks_.resize(spec_.locks);
    for (LockState &lock : locks_)
        lock.queue = machine_.createWaitQueue();

    if (spec_.resilience.overload.any()) {
        overload_ = std::make_unique<OverloadController>(
            spec_.resilience.overload);
    }
    if (spec_.resilience.retry.budgetRatio > 0) {
        retryBudget_.configure(spec_.resilience.retry.budgetRatio,
                               spec_.resilience.retry.budgetInitial,
                               spec_.resilience.retry.budgetCap);
    }

    // Long-lived worker pool (unless connections spawn threads).
    if (!spec_.threads.threadPerConnection) {
        for (unsigned w = 0; w < std::max(1u, spec_.threads.workers);
             ++w) {
            spawnWorker(ThreadRole::Worker,
                        filePrefix + ".worker" + std::to_string(w),
                        nullptr, 0);
        }
    }
    for (const BackgroundSpec &bg : spec_.background) {
        spawnWorker(ThreadRole::Background,
                    filePrefix + "." + bg.name, &bg.body, bg.period);
    }
}

std::string
ServiceInstance::instanceLabel() const
{
    if (replicaIndex_ == 0)
        return spec_.name;
    return spec_.name + "@" + std::to_string(replicaIndex_);
}

ServiceInstance::~ServiceInstance() = default;

std::uint64_t
ServiceInstance::fileSize(std::uint32_t ref) const
{
    return spec_.fileBytes[ref];
}

Worker *
ServiceInstance::spawnWorker(ThreadRole role, const std::string &name,
                             const Program *background,
                             sim::Time period)
{
    auto worker = std::make_unique<Worker>(
        *this, role, name, nextThreadSlot_++ % kServiceThreadSlots,
        background, period, rng_());
    worker->setStatsSink(&stats_.exec);
    Worker *raw = worker.get();
    machine_.scheduler().add(std::move(worker));
    workers_.push_back(raw);
    if (wired_)
        openDownstreamConns(*raw);
    return raw;
}

void
ServiceInstance::wire(const ServiceResolver &resolver)
{
    downstreamGroups_.clear();
    balancers_.clear();
    balancers_.resize(spec_.downstreams.size());
    edgeRegionPins_.assign(spec_.downstreams.size(), kNoRegionPin);
    std::uint32_t edge = 0;
    for (const std::string &name : spec_.downstreams) {
        const std::vector<ServiceInstance *> &group =
            resolver.resolveService(name);
        if (group.empty()) {
            throw std::runtime_error(
                "wire: service '" + spec_.name +
                "' references unknown downstream '" + name + "'");
        }
        downstreamGroups_.push_back(group);
        balancers_[edge].init(
            spec_.balancing.policyFor(name), group.size(),
            seed_ ^ (0x9e3779b97f4a7c15ull * (edge + 1)));
        edge++;
    }
    breakers_.assign(downstreamGroups_.size(),
                     CircuitBreaker(spec_.resilience.breaker));
    wired_ = true;
    for (Worker *w : workers_) {
        if (w->role() != ThreadRole::Background ||
            !spec_.downstreams.empty()) {
            openDownstreamConns(*w);
        }
    }
}

os::Socket *
ServiceInstance::connectTo(ServiceInstance &target)
{
    os::Socket *mine = machine_.createSocket();
    mine->inboundGate = [this] { return !down_; };
    os::Socket *theirs = target.openConnection();
    os::Network::connect(*mine, *theirs);
    return mine;
}

void
ServiceInstance::openDownstreamConns(Worker &w)
{
    std::vector<std::vector<os::Socket *>> conns;
    for (const std::vector<ServiceInstance *> &group :
         downstreamGroups_) {
        std::vector<os::Socket *> edge;
        for (ServiceInstance *replica : group)
            edge.push_back(connectTo(*replica));
        conns.push_back(std::move(edge));
    }
    w.setDownConns(std::move(conns));
}

std::size_t
ServiceInstance::pickReplica(std::uint32_t target, std::uint64_t key)
{
    const std::vector<ServiceInstance *> &group =
        downstreamGroups_[target];
    const std::uint32_t pin = edgeRegionPins_[target];
    auto alive = [&](std::size_t i) {
        ServiceInstance *r = group[i];
        if (pin != kNoRegionPin && r->machine().regionId() != pin)
            return false;
        return !r->down() && !r->machine().down();
    };
    const std::uint32_t myRegion = machine_.regionId();
    return balancers_[target].pick(key, alive, [&](std::size_t i) {
        return group[i]->machine().regionId() == myRegion;
    });
}

std::size_t
ServiceInstance::pickReplicaExcluding(std::uint32_t target,
                                      std::uint64_t key,
                                      std::size_t exclude)
{
    const std::vector<ServiceInstance *> &group =
        downstreamGroups_[target];
    const std::uint32_t pin = edgeRegionPins_[target];
    auto alive = [&](std::size_t i) {
        ServiceInstance *r = group[i];
        if (pin != kNoRegionPin && r->machine().regionId() != pin)
            return false;
        return !r->down() && !r->machine().down();
    };
    cluster::EdgeBalancer &bal = balancers_[target];
    if (bal.policy() == cluster::BalancerPolicy::PreferLocal) {
        // Hedge locality: while any local replica is alive, the hedge
        // must stay in this machine's region -- if the only live
        // local replica is the primary, return `exclude` so the
        // caller skips the hedge instead of crossing the WAN.
        const std::uint32_t myRegion = machine_.regionId();
        auto local = [&](std::size_t i) {
            return group[i]->machine().regionId() == myRegion;
        };
        bool anyLocal = false;
        bool otherLocal = false;
        for (std::size_t i = 0; i < group.size(); ++i) {
            if (!bal.active(i) || !alive(i) || !local(i))
                continue;
            anyLocal = true;
            if (i != exclude)
                otherLocal = true;
        }
        if (otherLocal)
            return bal.pick(key, [&](std::size_t i) {
                return i != exclude && alive(i) && local(i);
            });
        if (anyLocal)
            return exclude;
        // No local replica alive: cross-region hedge is allowed.
    }
    return bal.pick(key, [&](std::size_t i) {
        return i != exclude && alive(i);
    });
}

void
ServiceInstance::addDownstreamReplica(std::uint32_t target,
                                      ServiceInstance &replica)
{
    downstreamGroups_[target].push_back(&replica);
    balancers_[target].addReplica();
    // Every worker holds a conn vector per edge (wire() and
    // spawnWorker() both run openDownstreamConns): extend each.
    for (Worker *w : workers_)
        w->addDownConn(target, connectTo(replica));
}

void
ServiceInstance::setDownstreamReplicaActive(std::uint32_t target,
                                            std::size_t replica,
                                            bool active)
{
    balancers_[target].setActive(replica, active);
}

std::size_t
ServiceInstance::inboundQueueDepth() const
{
    std::size_t depth = 0;
    for (const Worker *w : workers_)
        depth += w->inboundQueueDepth();
    return depth;
}

std::size_t
ServiceInstance::activeRequests() const
{
    std::size_t active = 0;
    for (const Worker *w : workers_) {
        if (w->requestActive())
            ++active;
    }
    return active;
}

os::Socket *
ServiceInstance::openConnection()
{
    os::Socket *sock = machine_.createSocket();
    sock->inboundGate = [this] { return !down_; };
    Worker *w = nullptr;
    if (spec_.threads.threadPerConnection) {
        w = spawnWorker(
            ThreadRole::ConnHandler,
            spec_.name + ".conn" + std::to_string(nextWorkerForConn_++),
            nullptr, 0);
    } else {
        // Round-robin over the long-lived pool (skip background
        // threads).
        std::vector<Worker *> pool;
        for (Worker *worker : workers_) {
            if (worker->role() == ThreadRole::Worker)
                pool.push_back(worker);
        }
        assert(!pool.empty() && "service has no request workers");
        w = pool[nextWorkerForConn_++ % pool.size()];
    }
    w->addConnection(sock);
    sock->onCancel = [this, w, sock](const os::Message &msg) {
        handleCancel(*w, *sock, msg);
    };
    return sock;
}

void
ServiceInstance::handleCancel(Worker &w, os::Socket &sock,
                              const os::Message &msg)
{
    if (down_)
        return;
    os::Message victim;
    if (sock.removeQueued(msg.tag, victim)) {
        // Still queued: release the inbound slot without running the
        // handler. The request bytes were received, so they count.
        stats_.rxBytes += victim.bytes;
        noteOutcome(w, trace::OutcomeKind::RequestCancelled, 0,
                    victim.endpoint, 0, victim.traceId,
                    "cancelled_in_queue");
        return;
    }
    w.requestCancel(sock, msg.tag);
}

void
ServiceInstance::beginMeasure()
{
    stats_.reset(machine_.events().now());
}

void
ServiceInstance::setDown(bool down)
{
    if (down_ == down)
        return;
    down_ = down;
    if (down) {
        // Crash: in-flight requests vanish (their callers observe a
        // timeout) and user-space locks die with the process.
        for (Worker *w : workers_)
            w->abortRequest();
        for (LockState &lock : locks_) {
            lock.held = false;
            if (lock.queue)
                lock.queue->wake(~0u);
        }
    } else {
        // Warm restart: wake everyone to resume fetching requests.
        for (Worker *w : workers_)
            machine_.scheduler().wake(w);
    }
}

CircuitBreaker *
ServiceInstance::breaker(std::uint32_t target)
{
    if (!spec_.resilience.breaker.enabled ||
        target >= breakers_.size()) {
        return nullptr;
    }
    return &breakers_[target];
}

void
ServiceInstance::noteOutcome(os::Thread &t, trace::OutcomeKind kind,
                             std::uint32_t target,
                             std::uint32_t endpoint, unsigned attempts,
                             std::uint64_t traceId, const char *cause)
{
    switch (kind) {
      case trace::OutcomeKind::RpcOk:
      case trace::OutcomeKind::RpcRetriedOk:
        stats_.rpcOk++;
        break;
      case trace::OutcomeKind::RpcTimeout:
        stats_.rpcTimeouts++;
        break;
      case trace::OutcomeKind::RpcBreakerOpen:
        stats_.rpcBreakerFastFails++;
        break;
      case trace::OutcomeKind::RequestShed:
        stats_.requestsShed++;
        break;
      case trace::OutcomeKind::RequestError:
        stats_.requestsDegraded++;
        break;
      case trace::OutcomeKind::RpcCancelled:
        stats_.rpcCancelled++;
        break;
      case trace::OutcomeKind::RpcHedgeWon:
        // A hedge win is an ok'd call that also tallies as a win.
        stats_.rpcOk++;
        stats_.rpcHedgeWins++;
        break;
      case trace::OutcomeKind::RequestCancelled:
        stats_.requestsCancelled++;
        break;
    }
    if (probe_)
        probe_->onOutcome(t, kind, target, endpoint, attempts);
    if (tracer_) {
        tracer_->recordOutcome(trace::OutcomeEvent{
            traceId, spec_.name, target, endpoint, kind, attempts,
            machine_.events().now(), cause ? cause : ""});
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

Worker::Worker(ServiceInstance &service, ThreadRole role,
               std::string name, unsigned threadSlot,
               const Program *background, sim::Time period,
               std::uint64_t seed)
    : os::Thread(std::move(name), threadSlot, seed), service_(service),
      role_(role), background_(background), period_(period)
{
    if (role_ == ThreadRole::Worker &&
        service_.spec().serverModel == ServerModel::IoMultiplex) {
        epoll_ = service_.machine().createEpoll();
    }
}

void
Worker::addConnection(os::Socket *sock)
{
    conns_.push_back(sock);
    if (epoll_)
        epoll_->watch(sock);
}

sim::Time
Worker::now(const os::StepCtx &ctx) const
{
    return service_.machine().events().now() +
        service_.machine().cyclesToTime(ctx.cyclesUsed);
}

void
Worker::probeSyscall(SysKind kind, std::uint64_t bytes)
{
    if (service_.probe())
        service_.probe()->onSyscall(*this, kind, bytes);
}

void
Worker::accountDiskRead(std::uint64_t bytes)
{
    service_.stats().diskReadBytes += bytes;
}

void
Worker::accountDiskWrite(std::uint64_t bytes)
{
    service_.stats().diskWriteBytes += bytes;
}

void
Worker::armRpcTimer(const os::StepCtx &ctx, sim::Time delay)
{
    cancelRpcTimer();
    // The slice runs ahead of simulated time: anchor the deadline at
    // the syscall's logical position inside the slice, like Unlock.
    rpcState_.timer = service_.machine().events().scheduleAfter(
        ctx.kernel.sliceOffset(ctx) + delay, [this] {
            rpcState_.timer = 0;
            rpcState_.timerFired = true;
            service_.machine().scheduler().wake(this);
        });
}

void
Worker::cancelRpcTimer()
{
    if (rpcState_.timer != 0) {
        service_.machine().events().cancel(rpcState_.timer);
        rpcState_.timer = 0;
    }
    rpcState_.timerFired = false;
}

void
Worker::armHedgeTimer(const os::StepCtx &ctx, sim::Time delay)
{
    cancelHedgeTimer();
    rpcState_.hedgeTimer = service_.machine().events().scheduleAfter(
        ctx.kernel.sliceOffset(ctx) + delay, [this] {
            rpcState_.hedgeTimer = 0;
            rpcState_.hedgeFired = true;
            service_.machine().scheduler().wake(this);
        });
}

void
Worker::cancelHedgeTimer()
{
    if (rpcState_.hedgeTimer != 0) {
        service_.machine().events().cancel(rpcState_.hedgeTimer);
        rpcState_.hedgeTimer = 0;
    }
    rpcState_.hedgeFired = false;
}

void
Worker::sendCancelMsg(os::StepCtx &ctx, os::Socket *conn,
                      std::uint64_t tag, std::uint64_t traceId)
{
    os::Message cancel;
    cancel.kind = os::MsgKind::Cancel;
    cancel.bytes = os::kCancelMsgBytes;
    cancel.tag = tag;
    cancel.traceId = traceId;
    cancel.sendTime = now(ctx);
    probeSyscall(SysKind::SocketWrite, cancel.bytes);
    service_.stats().txBytes += cancel.bytes;
    ctx.kernel.sysSocketWrite(ctx, *this, *conn, std::move(cancel));
}

void
Worker::noteLockReleased(std::uint32_t ref)
{
    for (auto it = heldLocks_.rbegin(); it != heldLocks_.rend();
         ++it) {
        if (*it == ref) {
            heldLocks_.erase(std::next(it).base());
            return;
        }
    }
}

void
Worker::releaseHeldLocks()
{
    for (const std::uint32_t ref : heldLocks_) {
        ServiceInstance::LockState &lock = service_.lock(ref);
        lock.held = false;
        if (lock.queue)
            lock.queue->wake(1);
    }
    heldLocks_.clear();
}

void
Worker::detachFromBlockers()
{
    if (rpcState_.conn)
        rpcState_.conn->removeWaiter(this);
    if (rpcState_.hedgeConn)
        rpcState_.hedgeConn->removeWaiter(this);
    for (os::Socket *sock : rpcState_.fanoutConns) {
        if (sock)
            sock->removeWaiter(this);
    }
    const Op *op = runner_.currentOp();
    if (op && op->kind == OpKind::Lock) {
        ServiceInstance::LockState &lock = service_.lock(op->lockRef);
        if (lock.queue)
            lock.queue->removeWaiter(this);
    }
}

void
Worker::settleOpenCalls(os::StepCtx *ctx, const char *cause)
{
    RpcState &rs = rpcState_;
    const ResilienceSpec &res = service_.spec().resilience;
    const std::uint64_t traceId = req_.msg.traceId;
    const bool chase = ctx != nullptr && res.cancellation;
    if (rs.callOpen) {
        if (rs.attemptOpen && rs.conn) {
            rs.conn->removeWaiter(this);
            service_.balancer(rs.callTarget).onDone(rs.replica);
            if (chase && rs.waitTag != 0)
                sendCancelMsg(*ctx, rs.conn, rs.waitTag, traceId);
            if (rs.hedgeConn) {
                rs.hedgeConn->removeWaiter(this);
                service_.balancer(rs.callTarget)
                    .onDone(rs.hedgeReplica);
                if (chase && rs.hedgeTag != 0) {
                    sendCancelMsg(*ctx, rs.hedgeConn, rs.hedgeTag,
                                  traceId);
                }
            }
        }
        if (res.any()) {
            service_.noteOutcome(*this,
                                 trace::OutcomeKind::RpcCancelled,
                                 rs.callTarget, rs.callEndpoint,
                                 rs.attempt, traceId, cause);
        }
        rs.callOpen = false;
        rs.attemptOpen = false;
    }
    std::uint64_t pending = rs.fanoutPending;
    for (std::size_t i = 0;
         pending != 0 && i < rs.fanoutConns.size(); ++i) {
        if (!(pending & (std::uint64_t{1} << i)))
            continue;
        if (rs.fanoutConns[i]) {
            rs.fanoutConns[i]->removeWaiter(this);
            service_.balancer(rs.fanoutTargets[i])
                .onDone(rs.fanoutReplicas[i]);
            if (chase && rs.fanoutTags[i] != 0) {
                sendCancelMsg(*ctx, rs.fanoutConns[i],
                              rs.fanoutTags[i], traceId);
            }
        }
        if (res.any()) {
            service_.noteOutcome(*this,
                                 trace::OutcomeKind::RpcCancelled,
                                 rs.fanoutTargets[i],
                                 rs.fanoutEndpoints[i], 1, traceId,
                                 cause);
        }
    }
    rs.fanoutPending = 0;
}

void
Worker::abortRequest()
{
    if (req_.active) {
        // The request dies with the process: settle its open
        // downstream calls so outcome conservation holds, and account
        // the consumed request bytes.
        settleOpenCalls(nullptr, "crash");
        service_.stats().rxBytes += req_.msg.bytes;
        if (service_.spec().resilience.any()) {
            service_.noteOutcome(
                *this, trace::OutcomeKind::RequestCancelled, 0,
                req_.msg.endpoint, 0, req_.msg.traceId, "crash");
        }
    }
    cancelRpcTimer();
    cancelHedgeTimer();
    releaseHeldLocks();
    cancelPending_ = false;
    rpcState_.reset();
    runner_.abort();
    req_.active = false;
    req_.sock = nullptr;
    req_.degraded = false;
}

void
Worker::requestCancel(os::Socket &sock, std::uint64_t tag)
{
    if (!req_.active || cancelPending_ || req_.sock != &sock ||
        req_.msg.tag != tag) {
        return;  // already finished, or a duplicate cancel
    }
    cancelPending_ = true;
    detachFromBlockers();
    service_.machine().scheduler().wake(this);
}

void
Worker::finishCancelledRequest(os::StepCtx &ctx)
{
    cancelPending_ = false;
    settleOpenCalls(&ctx, "upstream_cancel");
    cancelRpcTimer();
    cancelHedgeTimer();
    releaseHeldLocks();
    rpcState_.reset();
    runner_.abort();
    // No response: the caller has already given up. The request
    // bytes were consumed, so they count toward rx traffic.
    service_.stats().rxBytes += req_.msg.bytes;
    service_.noteOutcome(*this, trace::OutcomeKind::RequestCancelled,
                         0, req_.msg.endpoint, 0, req_.msg.traceId,
                         "upstream_cancel");
    req_.active = false;
    req_.sock = nullptr;
    req_.degraded = false;
}

std::size_t
Worker::inboundQueueDepth() const
{
    std::size_t depth = 0;
    for (const os::Socket *sock : conns_)
        depth += sock->queueDepth();
    return depth;
}

os::StepResult
Worker::step(os::StepCtx &ctx)
{
    if (!started_) {
        started_ = true;
        if (service_.probe())
            service_.probe()->onThreadStart(*this, role_);
        if (role_ == ThreadRole::ConnHandler) {
            probeSyscall(SysKind::Clone, 0);
            ctx.kernel.sysClone(ctx, *this);
        }
    }
    if (role_ == ThreadRole::Background)
        return stepBackground(ctx);
    return stepServer(ctx);
}

os::StepResult
Worker::stepBackground(os::StepCtx &ctx)
{
    while (!ctx.overBudget()) {
        if (service_.down())
            return {os::StopReason::Block};
        if (runner_.active()) {
            const ProgramRunner::Status st = runner_.run(ctx, *this);
            if (st == ProgramRunner::Status::Blocked)
                return {os::StopReason::Block};
            if (st == ProgramRunner::Status::Budget)
                return {os::StopReason::Yield};
            bgPhase_ = 0;
            continue;
        }
        if (bgPhase_ == 0) {
            probeSyscall(SysKind::Nanosleep, 0);
            ctx.kernel.sysNanosleep(ctx, *this, period_);
            bgPhase_ = 1;
            return {os::StopReason::Block};
        }
        // Woke from the timer: run one period's body.
        bgPhase_ = 0;
        if (background_ && !background_->empty())
            runner_.start(background_);
        else
            bgPhase_ = 0;
    }
    return {os::StopReason::Yield};
}

bool
Worker::fetchNextRequest(os::StepCtx &ctx, bool &blocked)
{
    os::Kernel &kernel = ctx.kernel;
    const ServerModel model = service_.spec().serverModel;
    blocked = false;

    if (role_ == ThreadRole::ConnHandler ||
        model == ServerModel::BlockingPerConn) {
        if (conns_.empty()) {
            blocked = true;  // no connection yet; nothing to do
            return false;
        }
        os::Message msg;
        if (kernel.sysSocketRead(ctx, *this, *conns_[0], msg) ==
            os::SysResult::Ok) {
            probeSyscall(SysKind::SocketRead, msg.bytes);
            beginRequest(ctx, conns_[0], std::move(msg));
            return true;
        }
        blocked = true;
        return false;
    }

    if (model == ServerModel::NonBlocking) {
        // One polling sweep over all connections.
        for (std::size_t i = 0; i < conns_.size(); ++i) {
            os::Socket *sock =
                conns_[(pollCursor_ + i) % conns_.size()];
            os::Message msg;
            if (kernel.sysSocketTryRead(ctx, *this, *sock, msg) ==
                os::SysResult::Ok) {
                probeSyscall(SysKind::SocketRead, msg.bytes);
                pollCursor_ = (pollCursor_ + i + 1) % conns_.size();
                beginRequest(ctx, sock, std::move(msg));
                return true;
            }
            // Empty poll: visible to the profiler as a failed read.
            probeSyscall(SysKind::SocketRead, 0);
        }
        return false;  // not blocked: busy-poll again next slice
    }

    // IoMultiplex.
    while (!readyList_.empty()) {
        os::Socket *sock = readyList_.front();
        readyList_.pop_front();
        if (!sock->readable())
            continue;
        os::Message msg;
        if (kernel.sysSocketTryRead(ctx, *this, *sock, msg) ==
            os::SysResult::Ok) {
            probeSyscall(SysKind::SocketRead, msg.bytes);
            beginRequest(ctx, sock, std::move(msg));
            return true;
        }
    }
    std::vector<os::Socket *> ready;
    probeSyscall(SysKind::EpollWait, 0);
    if (kernel.sysEpollWait(ctx, *this, *epoll_, ready) ==
        os::SysResult::Ok) {
        readyList_.assign(ready.begin(), ready.end());
        // Loop around in the caller to drain the ready list.
        return false;
    }
    blocked = true;
    return false;
}

void
Worker::beginRequest(os::StepCtx &ctx, os::Socket *sock,
                     os::Message msg)
{
    const ResilienceSpec &res = service_.spec().resilience;
    if (res.propagateDeadline && msg.deadline != 0 &&
        now(ctx) > msg.deadline) {
        // Dead on arrival: the caller's budget is spent, so a reply
        // could never be used. Drop without executing or responding.
        service_.stats().rxBytes += msg.bytes;
        service_.noteOutcome(*this,
                             trace::OutcomeKind::RequestCancelled, 0,
                             msg.endpoint, 0, msg.traceId,
                             "expired_on_arrival");
        return;
    }
    if (OverloadController *ov = service_.overload()) {
        // Adaptive admission at dequeue: sojourn / doomed-deadline
        // drops first (CoDel-style -- staleness is judged where it is
        // observable), then the concurrency limit graduated by the
        // request's propagated priority. `outstanding` counts the
        // whole instance, not this worker: the limiter guards shared
        // service capacity the way a listener-level filter would.
        const std::size_t outstanding =
            service_.activeRequests() + service_.inboundQueueDepth();
        const char *cause = ov->admit(
            now(ctx), msg.sendTime,
            res.propagateDeadline ? msg.deadline : 0, msg.priority,
            outstanding);
        if (cause != nullptr) {
            shedRequest(ctx, sock, std::move(msg), cause);
            return;
        }
    }
    const unsigned shedAt = res.shedQueueThreshold;
    if (shedAt > 0 && inboundQueueDepth() >= shedAt) {
        shedRequest(ctx, sock, std::move(msg));
        return;
    }
    req_.sock = sock;
    req_.start = now(ctx);
    req_.active = true;
    req_.degraded = false;
    req_.serverSpan = 0;
    if (service_.tracer() && service_.tracer()->sampled(msg.traceId))
        req_.serverSpan = service_.tracer()->newSpanId();
    req_.msg = std::move(msg);

    const auto endpoint = std::min<std::uint32_t>(
        req_.msg.endpoint,
        static_cast<std::uint32_t>(
            service_.spec().endpoints.size() - 1));
    req_.msg.endpoint = endpoint;
    runner_.start(&service_.spec().endpoints[endpoint].handler);
}

void
Worker::finishRequest(os::StepCtx &ctx)
{
    const EndpointSpec &ep =
        service_.spec().endpoints[req_.msg.endpoint];
    sim::Rng &rng = service_.rng();
    const std::uint32_t respBytes =
        ep.responseBytesMin >= ep.responseBytesMax
        ? ep.responseBytesMin
        : static_cast<std::uint32_t>(
              rng.uniformInt(
                  static_cast<std::int64_t>(ep.responseBytesMin),
                  static_cast<std::int64_t>(ep.responseBytesMax)));

    os::Message resp;
    resp.kind = os::MsgKind::Response;
    resp.status =
        req_.degraded ? os::MsgStatus::Error : os::MsgStatus::Ok;
    resp.bytes = respBytes;
    resp.endpoint = req_.msg.endpoint;
    resp.tag = req_.msg.tag;
    resp.traceId = req_.msg.traceId;
    resp.sendTime = req_.msg.sendTime;
    probeSyscall(SysKind::SocketWrite, respBytes);
    ctx.kernel.sysSocketWrite(ctx, *this, *req_.sock, std::move(resp));

    const sim::Time end = now(ctx);
    ServiceStats &stats = service_.stats();
    stats.requests += 1;
    stats.rxBytes += req_.msg.bytes;
    stats.txBytes += respBytes;
    const sim::Time latency =
        end > req_.start ? end - req_.start : 0;
    stats.latency.record(latency);
    if (OverloadController *ov = service_.overload())
        ov->onRequestDone(latency);
    if (service_.probe())
        service_.probe()->onRequestDone(req_.msg.endpoint, latency);
    if (req_.serverSpan && service_.tracer()) {
        service_.tracer()->recordSpan(trace::Span{
            req_.msg.traceId, req_.serverSpan, req_.msg.parentSpan,
            service_.name(), req_.msg.endpoint, req_.start, end});
    }
    if (req_.degraded) {
        service_.noteOutcome(*this, trace::OutcomeKind::RequestError,
                             0, req_.msg.endpoint, 0,
                             req_.msg.traceId);
    }
    req_.active = false;
    req_.sock = nullptr;
    req_.degraded = false;
}

void
Worker::shedRequest(os::StepCtx &ctx, os::Socket *sock,
                    os::Message msg, const char *cause)
{
    // Fail fast: a tiny rejection response, no handler execution.
    os::Message resp;
    resp.kind = os::MsgKind::Response;
    resp.status = os::MsgStatus::Shed;
    resp.bytes = 64;
    resp.endpoint = msg.endpoint;
    resp.tag = msg.tag;
    resp.traceId = msg.traceId;
    resp.sendTime = msg.sendTime;
    probeSyscall(SysKind::SocketWrite, resp.bytes);
    ServiceStats &stats = service_.stats();
    stats.rxBytes += msg.bytes;
    stats.txBytes += resp.bytes;
    service_.noteOutcome(*this, trace::OutcomeKind::RequestShed, 0,
                         msg.endpoint, 0, msg.traceId, cause);
    ctx.kernel.sysSocketWrite(ctx, *this, *sock, std::move(resp));
}

os::StepResult
Worker::stepServer(os::StepCtx &ctx)
{
    while (!ctx.overBudget()) {
        if (service_.down())
            return {os::StopReason::Block};
        if (req_.active) {
            if (cancelPending_) {
                finishCancelledRequest(ctx);
                continue;
            }
            const ProgramRunner::Status st = runner_.run(ctx, *this);
            if (st == ProgramRunner::Status::Blocked)
                return {os::StopReason::Block};
            if (st == ProgramRunner::Status::Budget)
                return {os::StopReason::Yield};
            finishRequest(ctx);
            continue;
        }
        bool blocked = false;
        if (fetchNextRequest(ctx, blocked))
            continue;
        if (blocked)
            return {os::StopReason::Block};
        if (service_.spec().serverModel == ServerModel::NonBlocking)
            return {os::StopReason::Yield};  // busy-poll
        // IoMultiplex: epoll returned a ready list; loop to drain it.
    }
    return {os::StopReason::Yield};
}

} // namespace ditto::app
