/**
 * @file
 * Application-level program IR: the ops a request handler or
 * background thread executes.
 *
 * A Program is a sequence of Ops over a service's linked code blocks:
 * compute loops, file I/O, downstream RPCs, locks, sleeps,
 * probabilistic control flow, and labeled calls (which give the
 * thread profiler a call graph to cluster on). Both the hand-authored
 * "original" applications and Ditto-generated clones are Programs;
 * the skeleton runtime (src/app/service.h) is shared.
 */

#ifndef DITTO_APP_PROGRAM_H_
#define DITTO_APP_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "app/resilience.h"
#include "cluster/balancer.h"
#include "hw/code.h"
#include "sim/time.h"

namespace ditto::app {

struct Op;

/** A sequence of ops. */
struct Program
{
    std::vector<Op> ops;

    bool empty() const { return ops.empty(); }
};

/** One downstream RPC inside an Rpc op. */
struct RpcCallSpec
{
    /** Index into the service's downstream list. */
    std::uint32_t target = 0;
    /** Downstream endpoint id. */
    std::uint32_t endpoint = 0;
    std::uint32_t requestBytes = 128;
    std::uint32_t responseBytes = 256;
    /**
     * Brownout candidate: the caller's response is useful without
     * this edge (recommendations, decorations). While the caller's
     * overload limiter is congested and OverloadSpec::brownout is
     * set, the call is skipped (RpcCancelled, cause "brownout")
     * without degrading the response.
     */
    bool optional = false;
};

enum class OpKind : std::uint8_t
{
    Compute,   //!< run a code block for a sampled iteration count
    FileRead,  //!< pread() from a service file at a random offset
    FileWrite, //!< pwrite() to a service file
    Rpc,       //!< one or more downstream calls (fanout)
    Lock,      //!< acquire a service lock (futex on contention)
    Unlock,    //!< release a service lock
    Sleep,     //!< nanosleep
    Choice,    //!< probabilistic branch over sub-programs
    Call,      //!< labeled sub-program (call-graph node)
};

/**
 * One op. A tagged union kept as a fat struct for clarity; only the
 * fields relevant to `kind` are meaningful.
 */
struct Op
{
    OpKind kind = OpKind::Compute;

    // Compute
    std::uint32_t block = 0;          //!< block id in the service image
    std::uint64_t itersMin = 1;
    std::uint64_t itersMax = 1;

    // FileRead / FileWrite
    std::uint32_t fileRef = 0;        //!< index into the service's files
    std::uint64_t bytesMin = 0;
    std::uint64_t bytesMax = 0;

    // Rpc
    std::vector<RpcCallSpec> rpcs;

    // Lock / Unlock
    std::uint32_t lockRef = 0;

    // Sleep
    sim::Time duration = 0;

    // Choice / Call
    std::vector<double> probs;        //!< arm weights (Choice)
    std::vector<Program> subs;        //!< arms (Choice) or body (Call)
    std::string label;                //!< call-graph label (Call)
};

// ---- convenience constructors ------------------------------------------

Op opCompute(std::uint32_t block, std::uint64_t itersMin,
             std::uint64_t itersMax);
Op opCompute(std::uint32_t block, std::uint64_t iters);
Op opFileRead(std::uint32_t fileRef, std::uint64_t bytesMin,
              std::uint64_t bytesMax);
Op opFileWrite(std::uint32_t fileRef, std::uint64_t bytesMin,
               std::uint64_t bytesMax);
Op opRpc(std::uint32_t target, std::uint32_t endpoint,
         std::uint32_t reqBytes, std::uint32_t respBytes);
Op opRpcFanout(std::vector<RpcCallSpec> calls);
Op opLock(std::uint32_t lockRef);
Op opUnlock(std::uint32_t lockRef);
Op opSleep(sim::Time duration);
Op opChoice(std::vector<double> probs, std::vector<Program> arms);
Op opCall(std::string label, Program body);

/** Server-side network models (Sec. 4.3.1). */
enum class ServerModel : std::uint8_t
{
    IoMultiplex,       //!< epoll-based workers (Memcached/Redis/NGINX)
    BlockingPerConn,   //!< blocking read, thread per connection
    NonBlocking,       //!< polling non-blocking reads
};

/** Client-side communication model for downstream RPCs. */
enum class ClientModel : std::uint8_t
{
    Sync,   //!< issue one call at a time, block for each response
    Async,  //!< issue fanouts in parallel, collect all responses
};

/** Thread model (Sec. 4.3.2). */
struct ThreadModelSpec
{
    /** Long-lived worker pool size (IoMultiplex / NonBlocking). */
    unsigned workers = 4;
    /** Spawn a (possibly short-lived) thread per connection. */
    bool threadPerConnection = false;
};

/** A request type exposed by a service. */
struct EndpointSpec
{
    std::string name;
    Program handler;
    std::uint32_t responseBytesMin = 64;
    std::uint32_t responseBytesMax = 64;
};

/** A background (timer-triggered) thread. */
struct BackgroundSpec
{
    std::string name;
    Program body;
    sim::Time period = sim::milliseconds(100);
};

/**
 * Complete, platform-independent description of one service. This is
 * the unit Ditto generates: deployable on any Machine without change.
 */
struct ServiceSpec
{
    std::string name;
    ServerModel serverModel = ServerModel::IoMultiplex;
    ClientModel clientModel = ClientModel::Sync;
    ThreadModelSpec threads;
    std::vector<hw::CodeBlock> blocks;
    std::vector<EndpointSpec> endpoints;
    std::vector<BackgroundSpec> background;
    /** Names of downstream services (RPC targets, by index). */
    std::vector<std::string> downstreams;
    /** Sizes of files to create at deploy time (index = fileRef). */
    std::vector<std::uint64_t> fileBytes;
    /** Number of user-space locks (index = lockRef). */
    unsigned locks = 0;
    /**
     * Pages of each file to pre-touch into the page cache at deploy
     * (fraction, 0..1). Databases warm their working set.
     */
    double filePrewarmFraction = 0.0;
    /**
     * RPC deadlines, retries, circuit breaking, and load shedding
     * (see app/resilience.h). Deployment-side configuration: apply
     * the same policies to an original and its clone to compare them
     * under faults. Defaults disable everything.
     */
    ResilienceSpec resilience;
    /**
     * Replica selection for the RPC edges this service originates
     * (see cluster/balancer.h). Deployment-side configuration like
     * `resilience`; with unreplicated downstreams every policy
     * degenerates to the single instance and the runtime is
     * bit-identical to the pre-cluster behaviour.
     */
    cluster::BalancingSpec balancing;
};

} // namespace ditto::app

#endif // DITTO_APP_PROGRAM_H_
