/**
 * @file
 * Adaptive overload control & graceful degradation.
 *
 * Four mechanisms real services layer on top of static queue bounds:
 *
 *  - An **adaptive concurrency limiter** (AIMD on observed request
 *    latency vs a moving baseline, Netflix-concurrency-limits style):
 *    the admission threshold on outstanding work grows additively
 *    while latency tracks the baseline and shrinks multiplicatively
 *    when a window runs hotter than `latencyRatio` x baseline.
 *  - **Deadline-aware queue management** (CoDel-flavoured): requests
 *    whose queue sojourn exceeds `maxSojourn`, or whose propagated
 *    deadline can no longer be met given the latency baseline, are
 *    shed at dequeue instead of wasting service capacity on work the
 *    caller will discard.
 *  - **Priority shedding**: requests carry a priority stamped by the
 *    workload engine's EndpointClass and propagated downstream like
 *    deadlines; under pressure the limiter grants lower-priority
 *    classes proportionally smaller admission thresholds, so the
 *    lowest classes shed first.
 *  - **Retry budgets** (Finagle-style token bucket): fresh traffic
 *    deposits `ratio` tokens, each retry withdraws one, so retries
 *    are bounded to a fraction of fresh load and a transient fault
 *    cannot ignite a metastable retry storm. Used on both the server
 *    (RetryPolicy) and the client (WorkloadSpec) side.
 *
 * Everything here is deterministic (simulated time only, no RNG) and
 * off by default: a default-constructed OverloadSpec leaves the
 * runtime's behaviour bit-identical to a build without this header.
 */

#ifndef DITTO_APP_OVERLOAD_H_
#define DITTO_APP_OVERLOAD_H_

#include <algorithm>
#include <cstdint>

#include "sim/time.h"

namespace ditto::app {

/** Overload-control configuration of one service. */
struct OverloadSpec
{
    /** Master switch for the adaptive concurrency limiter. */
    bool enabled = false;
    /** Floor of the adaptive limit (keeps a trickle admitted). */
    unsigned minLimit = 4;
    /** Ceiling of the adaptive limit. */
    unsigned maxLimit = 4096;
    /** Limit before the first adjustment window completes. */
    unsigned initialLimit = 64;
    /** Latency samples per limit-adjustment window. */
    unsigned window = 32;
    /** Congestion trip: window mean > latencyRatio x baseline. */
    double latencyRatio = 2.0;
    /** Multiplicative decrease applied on a congested window. */
    double decrease = 0.7;
    /** Additive increase applied on an uncongested window. */
    unsigned increase = 2;
    /** EWMA weight folding uncongested windows into the baseline. */
    double baselineAlpha = 0.1;
    /**
     * CoDel-style sojourn cap: shed requests that waited longer than
     * this in the inbound queue (measured send-to-dequeue); 0
     * disables.
     */
    sim::Time maxSojourn = 0;
    /**
     * Shed queued work already destined to miss its propagated
     * deadline: remaining budget < the latency baseline. Needs
     * ResilienceSpec::propagateDeadline and an established baseline.
     */
    bool deadlineAware = false;
    /**
     * Graduated priority admission: priority p (0 = lowest) gets
     * (p+1)/priorityLevels of the adaptive limit, so the lowest
     * classes shed first under pressure. 1 disables (all priorities
     * share the full limit).
     */
    unsigned priorityLevels = 1;
    /**
     * Brownout: while the limiter is congested, skip downstream RPC
     * edges marked RpcCallSpec::optional (settled as RpcCancelled
     * with cause "brownout", response not degraded).
     */
    bool brownout = false;

    bool
    any() const
    {
        return enabled || maxSojourn > 0 || deadlineAware;
    }
};

/**
 * Finagle-style retry budget: a token bucket where fresh attempts
 * deposit `ratio` tokens and every retry withdraws one, capping
 * retries at ~ratio x fresh traffic once `initial` burns off. A zero
 * ratio disables the budget (allowWithdraw always grants), keeping
 * the default-off contract.
 */
class RetryBudget
{
  public:
    RetryBudget() = default;

    void
    configure(double ratio, double initial, double cap)
    {
        ratio_ = ratio;
        cap_ = cap;
        tokens_ = std::min(initial, cap);
    }

    bool enabled() const { return ratio_ > 0.0; }

    /** A fresh (first-attempt) call was issued. */
    void
    onFresh()
    {
        if (enabled())
            tokens_ = std::min(cap_, tokens_ + ratio_);
    }

    /**
     * Try to pay for one retry. Always grants when the budget is
     * disabled; otherwise withdraws a whole token or refuses.
     */
    bool
    allowWithdraw()
    {
        if (!enabled())
            return true;
        if (tokens_ >= 1.0) {
            tokens_ -= 1.0;
            ++withdrawals_;
            return true;
        }
        ++suppressed_;
        return false;
    }

    double tokens() const { return tokens_; }
    std::uint64_t withdrawals() const { return withdrawals_; }
    std::uint64_t suppressed() const { return suppressed_; }

  private:
    double ratio_ = 0.0;
    double cap_ = 0.0;
    double tokens_ = 0.0;
    std::uint64_t withdrawals_ = 0;
    std::uint64_t suppressed_ = 0;
};

/**
 * Per-service-instance overload controller: owns the AIMD limiter
 * state and answers the admission question at dequeue time. Shared
 * by all workers of an instance (like a listener-level admission
 * filter in front of a shared accept queue).
 */
class OverloadController
{
  public:
    explicit OverloadController(const OverloadSpec &spec);

    /**
     * Admission check for one dequeued request.
     *
     * @param now        dequeue instant.
     * @param sendTime   the request's Message::sendTime.
     * @param deadline   propagated absolute deadline (0 = none / not
     *                   honored by the caller's ResilienceSpec).
     * @param priority   request priority (0 = lowest).
     * @param outstanding requests executing + still queued on the
     *                   instance, excluding this one.
     * @return nullptr to admit, else a static cause string
     *         ("sojourn", "deadline_unreachable", "concurrency_limit")
     *         recorded on the shed outcome.
     */
    const char *admit(sim::Time now, sim::Time sendTime,
                      sim::Time deadline, std::uint8_t priority,
                      std::size_t outstanding);

    /** Feed one completed-request latency (the AIMD signal). */
    void onRequestDone(sim::Time latency);

    /** Current adaptive limit (full-priority admission threshold). */
    unsigned currentLimit() const
    {
        return static_cast<unsigned>(limit_);
    }

    /** Admission threshold granted to `priority`. */
    unsigned limitFor(std::uint8_t priority) const;

    /** Moving latency baseline in ns (0 until the first window). */
    double baselineNs() const { return baseline_; }

    /** The last completed window ran congested (brownout signal). */
    bool brownoutActive() const { return congested_; }

    // ---- counters for ditto_overload_* metrics ----------------------
    std::uint64_t limitSheds() const { return limitSheds_; }
    std::uint64_t sojournSheds() const { return sojournSheds_; }
    std::uint64_t deadlineSheds() const { return deadlineSheds_; }
    std::uint64_t congestedWindows() const
    {
        return congestedWindows_;
    }
    std::uint64_t uncongestedWindows() const
    {
        return uncongestedWindows_;
    }

  private:
    OverloadSpec spec_;
    double limit_ = 0;
    double baseline_ = 0;
    double windowSum_ = 0;
    unsigned windowCount_ = 0;
    bool congested_ = false;
    std::uint64_t limitSheds_ = 0;
    std::uint64_t sojournSheds_ = 0;
    std::uint64_t deadlineSheds_ = 0;
    std::uint64_t congestedWindows_ = 0;
    std::uint64_t uncongestedWindows_ = 0;
};

} // namespace ditto::app

#endif // DITTO_APP_OVERLOAD_H_
