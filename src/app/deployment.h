/**
 * @file
 * Deployment: a cluster of machines, a network, a tracer, and a set
 * of deployed services -- the top-level harness every benchmark and
 * example builds on.
 */

#ifndef DITTO_APP_DEPLOYMENT_H_
#define DITTO_APP_DEPLOYMENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/service.h"
#include "hw/platform.h"
#include "os/machine.h"
#include "os/network.h"
#include "sim/event_queue.h"
#include "trace/tracer.h"

namespace ditto::app {

class Deployment
{
  public:
    explicit Deployment(std::uint64_t seed = 1,
                        double traceSampleRate = 1.0);
    ~Deployment();

    Deployment(const Deployment &) = delete;
    Deployment &operator=(const Deployment &) = delete;

    /** Add a server node with the given platform. */
    os::Machine &addMachine(const std::string &name,
                            const hw::PlatformSpec &spec);

    /**
     * Deploy a service instance onto a machine.
     * @throws std::runtime_error naming the service if one with the
     *         same name is already deployed (replicate an existing
     *         service with addReplica instead).
     */
    ServiceInstance &deploy(const ServiceSpec &spec,
                            os::Machine &machine);

    /**
     * Add one replica to the service `name` (which must already be
     * deployed). Replicas share the service name -- callers keep
     * addressing the group by the name in their downstream list --
     * and get replicaIndex = current group size. May be called after
     * wireAll (autoscaler scale-up): the new replica is wired and
     * every upstream caller fans a connection into it immediately.
     * @throws std::runtime_error if `name` is not deployed.
     */
    ServiceInstance &addReplica(const std::string &name,
                                os::Machine &machine);

    /**
     * Resolve downstream references; call after all deploys.
     * @throws std::runtime_error naming caller and downstream on a
     *         dangling reference.
     */
    void wireAll();

    /**
     * Canonical handle of service `name`: its first (index-0)
     * replica, which always exists and is never retired. Use
     * replicas() to reach the full group.
     */
    ServiceInstance *find(const std::string &name);

    /** All replicas of `name` (empty if not deployed). */
    const std::vector<ServiceInstance *> &
    replicas(const std::string &name) const;

    /**
     * Retire (active=false) or reactivate one replica in every
     * upstream caller's balancer: retired replicas finish what they
     * have but receive no new picks. The instance itself stays up.
     */
    void setReplicaActive(const std::string &name, std::size_t replica,
                          bool active);

    os::Machine *machine(const std::string &name);

    sim::EventQueue &events() { return events_; }
    os::Network &network() { return network_; }
    trace::Tracer &tracer() { return tracer_; }
    std::uint64_t seed() const { return seed_; }

    /** Advance the simulation by `duration`. */
    void runFor(sim::Time duration);

    /** Reset all service measurement windows. */
    void beginMeasureAll();

    const std::vector<std::unique_ptr<ServiceInstance>> &
    services() const
    {
        return services_;
    }

    const std::vector<std::unique_ptr<os::Machine>> &
    machines() const
    {
        return machines_;
    }

  private:
    std::uint64_t seed_;
    sim::EventQueue events_;
    os::Network network_;
    trace::Tracer tracer_;
    std::vector<std::unique_ptr<os::Machine>> machines_;
    std::map<std::string, os::Machine *> machinesByName_;
    std::vector<std::unique_ptr<ServiceInstance>> services_;
    /** Replica groups by service name (index = replicaIndex). */
    std::map<std::string, std::vector<ServiceInstance *>> registry_;
    /** Reverse edges: group name -> (caller, edge idx) list. */
    std::map<std::string,
             std::vector<std::pair<ServiceInstance *, std::uint32_t>>>
        upstreamEdges_;
    bool wired_ = false;

    ServiceInstance &instantiate(const ServiceSpec &spec,
                                 os::Machine &machine,
                                 unsigned replicaIndex);
};

} // namespace ditto::app

#endif // DITTO_APP_DEPLOYMENT_H_
