/**
 * @file
 * Deployment: a cluster of machines, a network, a tracer, and a set
 * of deployed services -- the top-level harness every benchmark and
 * example builds on.
 */

#ifndef DITTO_APP_DEPLOYMENT_H_
#define DITTO_APP_DEPLOYMENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/service.h"
#include "hw/platform.h"
#include "os/machine.h"
#include "os/network.h"
#include "sim/event_queue.h"
#include "trace/tracer.h"

namespace ditto::app {

class Deployment
{
  public:
    explicit Deployment(std::uint64_t seed = 1,
                        double traceSampleRate = 1.0);
    ~Deployment();

    Deployment(const Deployment &) = delete;
    Deployment &operator=(const Deployment &) = delete;

    /** Add a server node with the given platform. */
    os::Machine &addMachine(const std::string &name,
                            const hw::PlatformSpec &spec);

    /** Deploy a service instance onto a machine. */
    ServiceInstance &deploy(const ServiceSpec &spec,
                            os::Machine &machine);

    /** Resolve downstream references; call after all deploys. */
    void wireAll();

    ServiceInstance *find(const std::string &name);

    os::Machine *machine(const std::string &name);

    sim::EventQueue &events() { return events_; }
    os::Network &network() { return network_; }
    trace::Tracer &tracer() { return tracer_; }
    std::uint64_t seed() const { return seed_; }

    /** Advance the simulation by `duration`. */
    void runFor(sim::Time duration);

    /** Reset all service measurement windows. */
    void beginMeasureAll();

    const std::vector<std::unique_ptr<ServiceInstance>> &
    services() const
    {
        return services_;
    }

    const std::vector<std::unique_ptr<os::Machine>> &
    machines() const
    {
        return machines_;
    }

  private:
    std::uint64_t seed_;
    sim::EventQueue events_;
    os::Network network_;
    trace::Tracer tracer_;
    std::vector<std::unique_ptr<os::Machine>> machines_;
    std::map<std::string, os::Machine *> machinesByName_;
    std::vector<std::unique_ptr<ServiceInstance>> services_;
    std::map<std::string, ServiceInstance *> registry_;
};

} // namespace ditto::app

#endif // DITTO_APP_DEPLOYMENT_H_
