/**
 * @file
 * Deployment: a cluster of machines, a network, a tracer, and a set
 * of deployed services -- the top-level harness every benchmark and
 * example builds on.
 */

#ifndef DITTO_APP_DEPLOYMENT_H_
#define DITTO_APP_DEPLOYMENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/service.h"
#include "core/string_interner.h"
#include "hw/platform.h"
#include "os/machine.h"
#include "os/network.h"
#include "sim/event_queue.h"
#include "trace/tracer.h"

namespace ditto::app {

class Deployment : public ServiceResolver
{
  public:
    explicit Deployment(std::uint64_t seed = 1,
                        double traceSampleRate = 1.0);
    ~Deployment();

    Deployment(const Deployment &) = delete;
    Deployment &operator=(const Deployment &) = delete;

    /** Add a server node with the given platform. */
    os::Machine &addMachine(const std::string &name,
                            const hw::PlatformSpec &spec);

    // ---- regions ----------------------------------------------------
    // Region 0 is the implicit default every machine starts in; a
    // deployment that never defines regions is bit-identical to the
    // region-free runtime (DESIGN.md §8). Defined regions get ids
    // 1..N in definition order.

    /** Define (or look up) a named region; returns its id. */
    std::uint32_t defineRegion(const std::string &region);

    /**
     * Resolve a region name; returns false when `region` was never
     * defined (the empty name resolves to the default region 0).
     */
    bool regionId(const std::string &region, std::uint32_t &out) const;

    /** Name of a region id ("" for the default region). */
    const std::string &regionName(std::uint32_t id) const;

    /** Defined regions, including the implicit default. */
    std::size_t regionCount() const { return regionNames_.size(); }

    /** Machines of one region, in creation order. */
    std::vector<os::Machine *> machinesInRegion(std::uint32_t id) const;

    /**
     * Add a server node inside a region.
     * @throws std::runtime_error naming the machine and region when
     *         `region` was never defined.
     */
    os::Machine &addMachine(const std::string &name,
                            const hw::PlatformSpec &spec,
                            const std::string &region);

    /**
     * Deploy a service instance onto a machine.
     * @throws std::runtime_error naming the service if one with the
     *         same name is already deployed (replicate an existing
     *         service with addReplica instead).
     */
    ServiceInstance &deploy(const ServiceSpec &spec,
                            os::Machine &machine);

    /**
     * Add one replica to the service `name` (which must already be
     * deployed). Replicas share the service name -- callers keep
     * addressing the group by the name in their downstream list --
     * and get replicaIndex = current group size. May be called after
     * wireAll (autoscaler scale-up): the new replica is wired and
     * every upstream caller fans a connection into it immediately.
     * @throws std::runtime_error if `name` is not deployed.
     */
    ServiceInstance &addReplica(const std::string &name,
                                os::Machine &machine);

    /**
     * Deploy onto the least-loaded machine of a region (fewest
     * services hosted; earliest-added machine wins ties, so placement
     * is deterministic).
     * @throws std::runtime_error naming the service and region when
     *         `region` was never defined or has no machines.
     */
    ServiceInstance &deployInRegion(const ServiceSpec &spec,
                                    const std::string &region);

    /**
     * Add one replica of `name` onto the least-loaded machine of a
     * region (same rules as deployInRegion).
     * @throws std::runtime_error naming the service and region when
     *         `region` was never defined or has no machines.
     */
    ServiceInstance &addReplicaInRegion(const std::string &name,
                                        const std::string &region);

    /**
     * Resolve downstream references; call after all deploys.
     * @throws std::runtime_error naming caller and downstream on a
     *         dangling reference, or caller and region when a
     *         BalancingSpec::pinRegion entry names an unknown region.
     */
    void wireAll();

    /**
     * Canonical handle of service `name`: its first (index-0)
     * replica, which always exists and is never retired. Use
     * replicas() to reach the full group.
     */
    ServiceInstance *find(const std::string &name);

    /** All replicas of `name` (empty if not deployed). */
    const std::vector<ServiceInstance *> &
    replicas(const std::string &name) const;

    // ---- interned service ids ---------------------------------------
    // Service names are interned to dense uint32 ids at deploy time;
    // control loops that poll every tick (autoscalers, replica sets)
    // resolve the id once and use the id-keyed overloads, keeping
    // string hashing off the steady-state path.

    /** Value serviceId() returns for names never deployed. */
    static constexpr std::uint32_t kNoServiceId =
        core::StringInterner::kInvalidId;

    /** Dense id of service `name`; kNoServiceId if not deployed. */
    std::uint32_t
    serviceId(const std::string &name) const
    {
        return serviceIds_.lookup(name);
    }

    /** Name behind a dense service id. */
    const std::string &
    serviceName(std::uint32_t id) const
    {
        return serviceIds_.name(id);
    }

    /** All replicas of a dense service id (empty for kNoServiceId). */
    const std::vector<ServiceInstance *> &
    replicas(std::uint32_t id) const
    {
        static const std::vector<ServiceInstance *> kEmpty;
        return id < groups_.size() ? groups_[id] : kEmpty;
    }

    /**
     * Retire (active=false) or reactivate one replica in every
     * upstream caller's balancer: retired replicas finish what they
     * have but receive no new picks. The instance itself stays up.
     */
    void setReplicaActive(const std::string &name, std::size_t replica,
                          bool active);

    /** Id-keyed overload of setReplicaActive. */
    void setReplicaActive(std::uint32_t id, std::size_t replica,
                          bool active);

    /** ServiceResolver implementation (used by wireAll). */
    const std::vector<ServiceInstance *> &
    resolveService(const std::string &name) const override
    {
        return replicas(name);
    }

    os::Machine *machine(const std::string &name);

    sim::EventQueue &events() { return events_; }
    os::Network &network() { return network_; }
    trace::Tracer &tracer() { return tracer_; }
    std::uint64_t seed() const { return seed_; }

    /** Advance the simulation by `duration`. */
    void runFor(sim::Time duration);

    /** Reset all service measurement windows. */
    void beginMeasureAll();

    const std::vector<std::unique_ptr<ServiceInstance>> &
    services() const
    {
        return services_;
    }

    const std::vector<std::unique_ptr<os::Machine>> &
    machines() const
    {
        return machines_;
    }

  private:
    std::uint64_t seed_;
    sim::EventQueue events_;
    os::Network network_;
    trace::Tracer tracer_;
    std::vector<std::unique_ptr<os::Machine>> machines_;
    std::map<std::string, os::Machine *> machinesByName_;
    /** regionNames_[id] = name; [0] is the implicit default "". */
    std::vector<std::string> regionNames_{std::string{}};
    std::vector<std::unique_ptr<ServiceInstance>> services_;
    /** Service name -> dense id (assigned at deploy time). */
    core::StringInterner serviceIds_;
    /** groups_[id] = replica group (index = replicaIndex). */
    std::vector<std::vector<ServiceInstance *>> groups_;
    /** upstreamEdges_[id] = (caller, edge idx) list of the group. */
    std::vector<
        std::vector<std::pair<ServiceInstance *, std::uint32_t>>>
        upstreamEdges_;
    bool wired_ = false;

    ServiceInstance &instantiate(const ServiceSpec &spec,
                                 os::Machine &machine,
                                 unsigned replicaIndex);

    os::Machine &leastLoadedIn(std::uint32_t regionId,
                               const std::string &context,
                               const std::string &service,
                               const std::string &region);

    void applyRegionPins(ServiceInstance &svc);
};

} // namespace ditto::app

#endif // DITTO_APP_DEPLOYMENT_H_
