#include "app/overload.h"

namespace ditto::app {

OverloadController::OverloadController(const OverloadSpec &spec)
    : spec_(spec)
{
    const unsigned init = std::clamp(spec_.initialLimit,
                                     std::max(1u, spec_.minLimit),
                                     std::max(1u, spec_.maxLimit));
    limit_ = static_cast<double>(init);
}

unsigned
OverloadController::limitFor(std::uint8_t priority) const
{
    const unsigned levels = std::max(1u, spec_.priorityLevels);
    const unsigned p = std::min<unsigned>(priority, levels - 1);
    const unsigned full = static_cast<unsigned>(limit_);
    return std::max(1u, full * (p + 1) / levels);
}

const char *
OverloadController::admit(sim::Time now, sim::Time sendTime,
                          sim::Time deadline, std::uint8_t priority,
                          std::size_t outstanding)
{
    if (spec_.maxSojourn > 0 && now > sendTime &&
        now - sendTime > spec_.maxSojourn) {
        ++sojournSheds_;
        return "sojourn";
    }
    if (spec_.deadlineAware && deadline != 0 && baseline_ > 0 &&
        static_cast<double>(deadline - now) < baseline_) {
        // The caller's remaining budget is smaller than what serving
        // currently costs: the reply would arrive dead. (deadline >
        // now is guaranteed -- expired requests were dropped before
        // admission.)
        ++deadlineSheds_;
        return "deadline_unreachable";
    }
    if (spec_.enabled && outstanding >= limitFor(priority)) {
        ++limitSheds_;
        return "concurrency_limit";
    }
    return nullptr;
}

void
OverloadController::onRequestDone(sim::Time latency)
{
    windowSum_ += static_cast<double>(latency);
    if (++windowCount_ < std::max(1u, spec_.window))
        return;
    const double avg = windowSum_ / windowCount_;
    windowSum_ = 0;
    windowCount_ = 0;
    if (baseline_ <= 0) {
        // First window seeds the baseline; no verdict yet.
        baseline_ = avg;
        return;
    }
    if (avg > spec_.latencyRatio * baseline_) {
        // Congested: shrink multiplicatively. The baseline is NOT
        // updated here -- folding congested windows in would let the
        // baseline creep up and mask sustained overload.
        limit_ = std::max(static_cast<double>(spec_.minLimit),
                          limit_ * spec_.decrease);
        congested_ = true;
        ++congestedWindows_;
        return;
    }
    limit_ = std::min(static_cast<double>(spec_.maxLimit),
                      limit_ + static_cast<double>(spec_.increase));
    congested_ = false;
    ++uncongestedWindows_;
    baseline_ = (1.0 - spec_.baselineAlpha) * baseline_ +
        spec_.baselineAlpha * avg;
}

} // namespace ditto::app
