#include "stats/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ditto::stats {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto total = count_ + other.count_;
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    mean_ = (na * mean_ + nb * other.mean_) / (na + nb);
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ = total;
}

void
RunningStat::reset()
{
    *this = RunningStat{};
}

double
RunningStat::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

LatencyHistogram::LatencyHistogram()
{
    // 64 exponents x 32 sub-buckets covers the full uint64 range.
    buckets_.assign(64 * kSubBuckets, 0);
}

std::size_t
LatencyHistogram::bucketIndex(std::uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<std::size_t>(value);
    const int msb = 63 - std::countl_zero(value);
    const int shift = msb - kSubBucketBits;
    const auto sub = static_cast<std::size_t>(
        (value >> shift) & (kSubBuckets - 1));
    const auto major = static_cast<std::size_t>(msb - kSubBucketBits + 1);
    return major * kSubBuckets + sub;
}

std::uint64_t
LatencyHistogram::bucketMidpoint(std::size_t index)
{
    const std::size_t major = index / kSubBuckets;
    const std::size_t sub = index % kSubBuckets;
    if (major == 0)
        return sub;
    const int shift = static_cast<int>(major) - 1;
    const std::uint64_t base =
        (std::uint64_t{kSubBuckets} + sub) << shift;
    const std::uint64_t width = std::uint64_t{1} << shift;
    return base + width / 2;
}

void
LatencyHistogram::record(std::uint64_t value)
{
    record(value, 1);
}

void
LatencyHistogram::record(std::uint64_t value, std::uint64_t count)
{
    if (count == 0)
        return;
    if (total_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    buckets_[bucketIndex(value)] += count;
    total_ += count;
    sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.total_ == 0)
        return;
    if (total_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    total_ += other.total_;
    sum_ += other.sum_;
}

void
LatencyHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    total_ = 0;
    sum_ = 0.0;
    min_ = max_ = 0;
}

double
LatencyHistogram::mean() const
{
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

LatencyHistogram
LatencyHistogram::since(const LatencyHistogram &baseline) const
{
    LatencyHistogram window;
    std::size_t lowest = buckets_.size();
    std::size_t highest = 0;
    bool shrunk = false;  // a reset happened between the snapshots
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const std::uint64_t before = baseline.buckets_[i];
        const std::uint64_t now = buckets_[i];
        if (now < before)
            shrunk = true;
        if (now <= before)
            continue;  // tolerate a reset between the snapshots
        const std::uint64_t delta = now - before;
        window.buckets_[i] = delta;
        window.total_ += delta;
        window.sum_ += static_cast<double>(bucketMidpoint(i)) *
            static_cast<double>(delta);
        const std::uint64_t mid = bucketMidpoint(i);
        if (window.total_ == delta) {
            window.min_ = window.max_ = mid;
        } else {
            window.min_ = std::min(window.min_, mid);
            window.max_ = std::max(window.max_, mid);
        }
        lowest = std::min(lowest, i);
        highest = std::max(highest, i);
    }
    if (window.total_ == 0 || shrunk)
        return window;
    // Refine the midpoint extrema to exact values where derivable:
    // if the baseline holds nothing at or below the window's lowest
    // occupied bucket, every value under that bucket's ceiling arrived
    // inside the window, so this histogram's exact min_ is a window
    // value (symmetrically for max_). This makes single-bucket windows
    // beyond the baseline's range exact instead of bucket-rounded,
    // which percentile() then propagates via its [min_, max_] clamp.
    bool baselineAtOrBelow = false;
    for (std::size_t i = 0; i <= lowest; ++i) {
        if (baseline.buckets_[i] != 0) {
            baselineAtOrBelow = true;
            break;
        }
    }
    if (!baselineAtOrBelow)
        window.min_ = min_;
    bool baselineAtOrAbove = false;
    for (std::size_t i = highest; i < buckets_.size(); ++i) {
        if (baseline.buckets_[i] != 0) {
            baselineAtOrAbove = true;
            break;
        }
    }
    if (!baselineAtOrAbove)
        window.max_ = max_;
    if (window.min_ > window.max_) {
        // Midpoint on one side, exact value on the other can cross
        // (an exact max below its bucket's midpoint); re-order.
        std::swap(window.min_, window.max_);
    }
    return window;
}

std::uint64_t
LatencyHistogram::percentile(double q) const
{
    if (total_ == 0)
        return 0;
    // The extremes are tracked exactly; never degrade them to a bucket
    // midpoint (q = 1 on a value that is not a bucket boundary would
    // otherwise come back smaller than maxValue()).
    if (q <= 0.0)
        return min_;
    if (q >= 1.0)
        return max_;
    // Rank of the answer is ceil(q * N). Computed in floating point,
    // q * N can land an ulp above an integer (0.99 * 100 ->
    // 99.00000000000001) which would shift the rank up by one; nudge
    // down before rounding up.
    auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total_) - 1e-9));
    target = std::clamp<std::uint64_t>(target, 1, total_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target && buckets_[i] > 0)
            return std::clamp(bucketMidpoint(i), min_, max_);
    }
    return max_;
}

} // namespace ditto::stats
