/**
 * @file
 * Fixed-width text tables for benchmark output.
 *
 * Every bench binary regenerating a paper table/figure prints through
 * TablePrinter so the output is uniform and diffable.
 */

#ifndef DITTO_STATS_TABLE_H_
#define DITTO_STATS_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace ditto::stats {

/** Column-aligned table builder. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a full row; missing cells render empty. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Render the table to the stream. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;

    static constexpr const char *kSeparatorTag = "\x01--";
};

/** Format a double with fixed precision. */
std::string formatDouble(double value, int precision = 3);

/** Format a percentage (0.123 -> "12.3%"). */
std::string formatPercent(double fraction, int precision = 1);

/** Format a byte count with binary units (KB/MB/GB). */
std::string formatBytes(double bytes);

/** Format a rate in SI units (K/M/G suffix). */
std::string formatRate(double perSecond, const std::string &unit);

/** Print a section banner used between figure panels. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace ditto::stats

#endif // DITTO_STATS_TABLE_H_
