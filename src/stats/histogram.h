/**
 * @file
 * Streaming histograms and summary statistics.
 *
 * LatencyHistogram is an HDR-style log-linear histogram over
 * nanosecond values: cheap O(1) recording, bounded relative error,
 * exact counts. It backs every latency percentile reported by the
 * benchmarks (avg/p50/p95/p99 in Figs. 5-7, 10, 11).
 */

#ifndef DITTO_STATS_HISTOGRAM_H_
#define DITTO_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace ditto::stats {

/** Welford-style running mean / variance / extrema tracker. */
class RunningStat
{
  public:
    void add(double x);

    /** Merge another tracker into this one. */
    void merge(const RunningStat &other);

    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Log-linear histogram of nonnegative 64-bit values.
 *
 * Values are bucketed by (exponent, 1/32 sub-bucket) giving ~3%
 * worst-case relative error on percentile queries, independent of the
 * value range -- sufficient for latency reporting.
 */
class LatencyHistogram
{
  public:
    static constexpr int kSubBucketBits = 5;
    static constexpr int kSubBuckets = 1 << kSubBucketBits;

    LatencyHistogram();

    void record(std::uint64_t value);

    /** Record `count` occurrences of the same value. */
    void record(std::uint64_t value, std::uint64_t count);

    void merge(const LatencyHistogram &other);

    void reset();

    std::uint64_t count() const { return total_; }
    double mean() const;
    std::uint64_t minValue() const { return total_ ? min_ : 0; }
    std::uint64_t maxValue() const { return total_ ? max_ : 0; }

    /**
     * Value at quantile q in [0, 1]; e.g. q = 0.99 for p99.
     *
     * The answer is the value of rank ceil(q * count()), reported as
     * the midpoint of its bucket and therefore within ~3% relative
     * error of the recorded value. Exact at the extremes: q <= 0
     * returns minValue() and q >= 1 returns maxValue(). Returns 0 on
     * an empty histogram.
     */
    std::uint64_t percentile(double q) const;

    /**
     * Bucket-wise difference against an earlier snapshot of the same
     * histogram: the distribution of values recorded after `baseline`
     * was copied. Windowed percentiles for cumulative histograms
     * (autoscaler control input, clone service-time fitting). An
     * empty window (baseline equals current) is exactly empty. The
     * extrema are exact whenever the window extends beyond the
     * baseline's occupied bucket range -- in particular a
     * single-bucket window past the baseline reports exact min/max
     * and thus exact percentiles; extrema inside buckets the baseline
     * also occupies remain bucket midpoints.
     */
    LatencyHistogram since(const LatencyHistogram &baseline) const;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;

    static std::size_t bucketIndex(std::uint64_t value);
    static std::uint64_t bucketMidpoint(std::size_t index);
};

} // namespace ditto::stats

#endif // DITTO_STATS_HISTOGRAM_H_
