#include "stats/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace ditto::stats {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TablePrinter::addSeparator()
{
    rows_.push_back({kSeparatorTag});
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == kSeparatorTag)
            continue;
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_rule = [&] {
        os << '+';
        for (std::size_t w : widths) {
            for (std::size_t i = 0; i < w + 2; ++i)
                os << '-';
            os << '+';
        }
        os << '\n';
    };

    auto print_cells = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << ' ' << cell;
            for (std::size_t i = cell.size(); i < widths[c] + 1; ++i)
                os << ' ';
            os << '|';
        }
        os << '\n';
    };

    print_rule();
    print_cells(headers_);
    print_rule();
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == kSeparatorTag) {
            print_rule();
            continue;
        }
        print_cells(row);
    }
    print_rule();
}

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
formatPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

std::string
formatBytes(double bytes)
{
    static const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    int unit = 0;
    while (bytes >= 1024.0 && unit < 4) {
        bytes /= 1024.0;
        ++unit;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f%s", bytes, units[unit]);
    return buf;
}

std::string
formatRate(double perSecond, const std::string &unit)
{
    static const char *prefixes[] = {"", "K", "M", "G", "T"};
    int prefix = 0;
    while (perSecond >= 1000.0 && prefix < 4) {
        perSecond /= 1000.0;
        ++prefix;
    }
    char buf[80];
    std::snprintf(buf, sizeof(buf), "%.2f%s%s/s", perSecond,
                  prefixes[prefix], unit.c_str());
    return buf;
}

void
printBanner(std::ostream &os, const std::string &title)
{
    const std::string rule(title.size() + 8, '=');
    os << '\n' << rule << '\n'
       << "==  " << title << "  ==" << '\n'
       << rule << '\n';
}

} // namespace ditto::stats
