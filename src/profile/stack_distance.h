/**
 * @file
 * LRU stack-distance (reuse-distance) profiling.
 *
 * One pass over the access stream yields the hit count H(2^i) for
 * *every* cache capacity at once (Mattson's inclusion property for
 * fully-associative LRU): an access hits in a cache of L lines iff
 * its stack distance is <= L. Implemented with the Bennett-Kruskal
 * Fenwick-tree algorithm, O(log n) per access.
 *
 * The paper simulates each power-of-two capacity separately with
 * 8/16-way associativity and reports an average 1.9% miss-rate error
 * from associativity variations; the fully-associative curve is
 * within that band and ~25x faster, which is what makes exhaustive
 * profiling runs practical here. (Substitution documented in
 * DESIGN.md.)
 */

#ifndef DITTO_PROFILE_STACK_DISTANCE_H_
#define DITTO_PROFILE_STACK_DISTANCE_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "profile/profile_data.h"

namespace ditto::profile {

class StackDistanceCurve
{
  public:
    StackDistanceCurve();

    /**
     * Record an access to a 64B-line address.
     * @return the smallest size index (wsBytes(i)) whose LRU cache
     *         hits this access, or kWsSizes for cold/far misses.
     */
    std::size_t access(std::uint64_t lineAddr);

    /** H(2^i): hits in a 2^i... byte LRU cache (wsBytes(i)). */
    std::array<double, kWsSizes> hitsBySize() const;

    double totalAccesses() const { return total_; }
    double coldMisses() const { return cold_; }

  private:
    std::unordered_map<std::uint64_t, std::uint32_t> lastTime_;
    std::vector<std::int32_t> bit_;  //!< Fenwick tree over time
    std::uint32_t time_ = 0;
    /** Accesses whose minimum hitting size index is i. */
    std::array<double, kWsSizes + 1> minHitIdx_{};
    double total_ = 0;
    double cold_ = 0;

    void bitAdd(std::uint32_t pos, std::int32_t delta);
    std::int64_t bitPrefix(std::uint32_t pos) const;
    void ensure(std::uint32_t pos);

    /**
     * Renumber live timestamps densely and rebuild the Fenwick tree.
     * Keeps memory proportional to the number of distinct lines, not
     * the total access count.
     */
    void compress();

    /** Compress when the time index reaches this bound. */
    static constexpr std::uint32_t kMaxTime = 1u << 24;
};

} // namespace ditto::profile

#endif // DITTO_PROFILE_STACK_DISTANCE_H_
