#include "profile/session.h"

#include "profile/cpu_profiler.h"
#include "profile/perf_report.h"
#include "profile/probe_collector.h"

namespace ditto::profile {

ServiceProfile
profileService(app::Deployment &dep, app::ServiceInstance &svc,
               const ProfileOptions &opts)
{
    os::Machine &machine = svc.machine();

    // Warm the service (caches, page cache, connections).
    dep.runFor(opts.warmup);

    // Attach the instrumentation.
    CpuProfiler cpu(svc.name() + ".", opts.maxWsBytes);
    for (unsigned c = 0; c < machine.coreCount(); ++c) {
        machine.core(c).setObserver(&cpu);
        machine.core(c).setExactMode(true);
    }
    ProbeCollector probe;
    svc.setProbe(&probe);
    probe.begin(dep.events().now());
    svc.beginMeasure();

    dep.runFor(opts.window);

    // Snapshot reference counters before detaching.
    const PerfReport ref = snapshotService(svc);

    for (unsigned c = 0; c < machine.coreCount(); ++c) {
        machine.core(c).setObserver(nullptr);
        machine.core(c).setExactMode(false);
    }
    svc.setProbe(nullptr);

    const double requests =
        std::max(1.0, static_cast<double>(svc.stats().requests));

    ServiceProfile prof;
    prof.serviceName = svc.name();
    prof.requestsObserved = requests;
    prof.mix = cpu.mixProfile(requests);
    prof.branch = cpu.branchProfile();
    prof.dmem = cpu.dataMemProfile();
    prof.imem = cpu.instMemProfile();
    prof.dep = cpu.depProfile(ref.mlpSerializedFraction);
    prof.syscalls = probe.syscallProfile();
    prof.syscalls.requestsObserved = requests;
    prof.syscalls.diskReadBytesPerRequest =
        static_cast<double>(svc.stats().diskReadBytes) / requests;
    prof.threads = probe.threadObservations();
    prof.asyncEvidence = probe.asyncEvidence();

    prof.reference.ipc = ref.ipc;
    prof.reference.instructionsPerRequest = ref.instructionsPerRequest;
    prof.reference.cyclesPerRequest = ref.cyclesPerRequest;
    prof.reference.branchMispredictRate = ref.branchMispredictRate;
    prof.reference.l1iMissRate = ref.l1iMissRate;
    prof.reference.l1dMissRate = ref.l1dMissRate;
    prof.reference.l2MissRate = ref.l2MissRate;
    prof.reference.llcMissRate = ref.llcMissRate;
    prof.reference.p99LatencyMs = ref.p99LatencyMs;

    const app::ServiceStats &stats = svc.stats();
    prof.avgRequestBytes = stats.requests
        ? static_cast<double>(stats.rxBytes) /
            static_cast<double>(stats.requests)
        : 0;
    prof.avgResponseBytes = stats.requests
        ? static_cast<double>(stats.txBytes) /
            static_cast<double>(stats.requests)
        : 0;
    return prof;
}

} // namespace ditto::profile
