/**
 * @file
 * CPU-level profiler: the Intel SDE + Valgrind stand-in.
 *
 * Attached as an ExecObserver to every core of the profiled machine,
 * it observes the dynamic user-level instruction stream of one
 * service (filtered by block-label prefix; kernel blocks are
 * excluded, since kernel behaviour is cloned via syscalls, Sec. 4.4)
 * and collects:
 *   - dynamic iform counts (instruction mix),
 *   - per-site branch taken/transition statistics,
 *   - data/instruction working-set hit curves H(2^i), by feeding the
 *     access stream through simulated caches of every power-of-two
 *     size (8-way below 1MB, 16-way at/above, per the paper),
 *   - RAW/WAR/WAW register dependency distances,
 *   - shared-vs-private and regular-vs-irregular access ratios.
 */

#ifndef DITTO_PROFILE_CPU_PROFILER_H_
#define DITTO_PROFILE_CPU_PROFILER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/cpu_core.h"
#include "profile/profile_data.h"
#include "profile/stack_distance.h"

namespace ditto::profile {

class CpuProfiler : public hw::ExecObserver
{
  public:
    /**
     * @param labelPrefix only blocks whose label starts with this
     *        prefix are profiled ("" = all user blocks)
     * @param maxWsBytes retained for API compatibility; the stack-
     *        distance profiler covers all sizes in one pass
     */
    explicit CpuProfiler(std::string labelPrefix,
                         std::uint64_t maxWsBytes = 256ull << 20);
    ~CpuProfiler() override;

    // ExecObserver
    void onBlockEnter(const hw::CodeBlock &block,
                      std::uint64_t iterations,
                      bool kernelMode) override;
    void onInst(const hw::Inst &inst, const hw::InstInfo &info) override;
    void onDataAccess(std::uint64_t addr, bool isWrite,
                      bool shared) override;
    void onInstFetch(std::uint64_t addr) override;
    void onBranch(std::uint64_t pc, bool taken) override;

    // ---- finalized outputs -------------------------------------------------

    InstMixProfile mixProfile(double requests) const;
    BranchProfile branchProfile() const;
    DataMemProfile dataMemProfile() const;
    InstMemProfile instMemProfile() const;
    DepProfile depProfile(double chaseFraction) const;

    double totalInstructions() const { return instCount_; }

  private:
    struct BranchSite
    {
        std::uint64_t execs = 0;
        std::uint64_t taken = 0;
        std::uint64_t transitions = 0;
        bool lastDir = false;
        bool seen = false;
    };

    /** Lightweight stride detector for the regular/irregular ratio. */
    struct StrideEntry
    {
        std::uint64_t lastLine = 0;
        std::int64_t stride = 0;
        bool valid = false;
    };

    std::string prefix_;
    bool active_ = false;

    // instruction mix
    std::vector<double> opcodeCounts_;
    double instCount_ = 0;
    double repBytesSum_ = 0;
    double repCount_ = 0;

    // branches
    std::unordered_map<std::uint64_t, BranchSite> sites_;
    double branchExecs_ = 0;

    // dependency distances
    std::uint64_t seq_ = 0;
    std::uint64_t lastWrite_[hw::kNumRegs] = {};
    std::uint64_t lastRead_[hw::kNumRegs] = {};
    std::array<double, kDepBins> raw_{};
    std::array<double, kDepBins> war_{};
    std::array<double, kDepBins> waw_{};

    // memory (single-pass LRU stack-distance curves)
    StackDistanceCurve dCurve_;
    StackDistanceCurve iCurve_;
    double dAccesses_ = 0;
    double iFetches_ = 0;
    double stores_ = 0;
    double sharedAccesses_ = 0;
    double regularAccesses_ = 0;
    std::array<double, kWsSizes> regularBySize_{};
    std::array<double, kWsSizes> samplesBySize_{};
    std::vector<StrideEntry> strideTable_;
};

} // namespace ditto::profile

#endif // DITTO_PROFILE_CPU_PROFILER_H_
