/**
 * @file
 * Kernel/service probe collector: the SystemTap stand-in.
 *
 * Records per-thread syscall streams (type + argument sizes), call
 * graph paths, thread start events, and RPC issue sequences. Ditto's
 * SkeletonAnalyzer clusters threads from these observations; the
 * SyscallSynth replays the per-request syscall distributions.
 */

#ifndef DITTO_PROFILE_PROBE_COLLECTOR_H_
#define DITTO_PROFILE_PROBE_COLLECTOR_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "app/service.h"
#include "profile/profile_data.h"

namespace ditto::profile {

class ProbeCollector : public app::ServiceProbe
{
  public:
    ProbeCollector() = default;

    void onSyscall(const os::Thread &t, app::SysKind kind,
                   std::uint64_t bytes) override;
    void onCallEnter(const os::Thread &t,
                     const std::string &label) override;
    void onCallExit(const os::Thread &t,
                    const std::string &label) override;
    void onThreadStart(const os::Thread &t,
                       app::ThreadRole role) override;
    void onRpcIssued(const os::Thread &t, std::uint32_t target,
                     std::uint32_t endpoint, std::uint32_t reqBytes,
                     std::uint32_t respBytes) override;
    void onRequestDone(std::uint32_t endpoint,
                       sim::Time latency) override;
    void onFileAccess(const os::Thread &t, std::uint64_t offset,
                      std::uint64_t bytes, bool write) override;
    void onOutcome(const os::Thread &t, trace::OutcomeKind kind,
                   std::uint32_t target, std::uint32_t endpoint,
                   unsigned attempts) override;

    /** Mark the beginning of the observation window. */
    void begin(sim::Time now);

    /** Finalized per-thread observations. */
    std::vector<ThreadObservation> threadObservations() const;

    /** Finalized syscall profile, normalized by requests served. */
    SyscallProfile syscallProfile() const;

    /**
     * Consecutive RPCs issued without an interposed response read --
     * evidence of an async client (fanout issued in parallel).
     */
    double asyncEvidence() const;

    std::uint64_t requests() const { return requests_; }

    /**
     * Probe-side resilience outcome tally for this service. Must
     * agree with ServiceStats counters and the deployment tracer's
     * exact counts (the reconciliation invariant in test_fault.cc).
     */
    std::uint64_t
    outcomeCount(trace::OutcomeKind kind) const
    {
        return outcomeCounts_[static_cast<std::size_t>(kind)];
    }

    /** Total retry attempts beyond the first, from RPC outcomes. */
    std::uint64_t extraAttempts() const { return extraAttempts_; }

  private:
    struct PerThread
    {
        std::string name;
        std::vector<std::string> callStack;
        std::map<std::string, std::uint64_t> callPaths;
        std::map<int, std::uint64_t> syscalls;
        std::map<int, std::uint64_t> emptySyscalls;
        std::map<int, double> syscallBytes;
        std::map<int, std::map<unsigned, double>> bytesHist;
        sim::Time firstSeen = 0;
        bool sawStart = false;
        unsigned pendingRpcs = 0;
    };

    std::unordered_map<const os::Thread *, PerThread> threads_;
    sim::Time beginTime_ = 0;
    std::uint64_t requests_ = 0;
    std::array<std::uint64_t, trace::kOutcomeKinds> outcomeCounts_{};
    std::uint64_t extraAttempts_ = 0;
    std::uint64_t rpcIssues_ = 0;
    std::uint64_t overlappedRpcs_ = 0;
    std::uint64_t fileSpan_ = 0;

    PerThread &slot(const os::Thread &t);
};

} // namespace ditto::profile

#endif // DITTO_PROFILE_PROBE_COLLECTOR_H_
