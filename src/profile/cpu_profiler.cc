#include "profile/cpu_profiler.h"

#include <algorithm>
#include <cmath>

namespace ditto::profile {

namespace {

/** Quantize a rate in (0,1] to an exponent in [1,10] (log scale). */
unsigned
quantizeExp(double rate)
{
    if (rate <= 0)
        return kBranchExpMax;
    const double e = -std::log2(rate);
    const long r = std::lround(e);
    return static_cast<unsigned>(
        std::clamp<long>(r, kBranchExpMin, kBranchExpMax));
}

} // namespace

CpuProfiler::CpuProfiler(std::string labelPrefix,
                         std::uint64_t maxWsBytes)
    : prefix_(std::move(labelPrefix)),
      opcodeCounts_(hw::Isa::instance().size(), 0.0),
      strideTable_(16)
{
    (void)maxWsBytes;
}

CpuProfiler::~CpuProfiler() = default;

void
CpuProfiler::onBlockEnter(const hw::CodeBlock &block,
                          std::uint64_t /*iterations*/, bool kernelMode)
{
    active_ = !kernelMode &&
        (prefix_.empty() ||
         block.label.compare(0, prefix_.size(), prefix_) == 0);
}

void
CpuProfiler::onInst(const hw::Inst &inst, const hw::InstInfo &info)
{
    if (!active_)
        return;
    opcodeCounts_[inst.opcode] += 1;
    instCount_ += 1;
    if (info.repPerElem && inst.repBytes) {
        repBytesSum_ += inst.repBytes;
        repCount_ += 1;
    }

    // Dependency distances through registers.
    ++seq_;
    auto record = [](std::array<double, kDepBins> &hist,
                     std::uint64_t dist) {
        hist[depBinOf(dist)] += 1;
    };
    if (inst.src0 != hw::kNoReg && lastWrite_[inst.src0])
        record(raw_, seq_ - lastWrite_[inst.src0]);
    if (inst.src1 != hw::kNoReg && lastWrite_[inst.src1])
        record(raw_, seq_ - lastWrite_[inst.src1]);
    if (inst.dst != hw::kNoReg) {
        if (lastRead_[inst.dst])
            record(war_, seq_ - lastRead_[inst.dst]);
        if (lastWrite_[inst.dst])
            record(waw_, seq_ - lastWrite_[inst.dst]);
    }
    if (inst.src0 != hw::kNoReg)
        lastRead_[inst.src0] = seq_;
    if (inst.src1 != hw::kNoReg)
        lastRead_[inst.src1] = seq_;
    if (inst.dst != hw::kNoReg)
        lastWrite_[inst.dst] = seq_;
}

void
CpuProfiler::onDataAccess(std::uint64_t addr, bool isWrite, bool shared)
{
    if (!active_)
        return;
    dAccesses_ += 1;
    if (isWrite)
        stores_ += 1;
    if (shared)
        sharedAccesses_ += 1;

    const std::size_t sizeIdx = dCurve_.access(addr / hw::kLineBytes);

    // Regular/irregular classification via a stride table.
    const std::uint64_t line = addr / hw::kLineBytes;
    bool regular = false;
    bool matched = false;
    for (StrideEntry &e : strideTable_) {
        if (!e.valid)
            continue;
        const std::int64_t delta = static_cast<std::int64_t>(line) -
            static_cast<std::int64_t>(e.lastLine);
        if (delta != 0 && delta == e.stride) {
            regular = true;
            e.lastLine = line;
            matched = true;
            break;
        }
        if (delta != 0 && delta >= -8 && delta <= 8) {
            e.stride = delta;
            e.lastLine = line;
            matched = true;
            break;
        }
    }
    if (!matched) {
        // Replace a pseudo-random entry (keyed by the line address).
        StrideEntry &e = strideTable_[line % strideTable_.size()];
        e.valid = true;
        e.lastLine = line;
        e.stride = 0;
    }
    if (regular)
        regularAccesses_ += 1;
    if (sizeIdx < kWsSizes) {
        samplesBySize_[sizeIdx] += 1;
        if (regular)
            regularBySize_[sizeIdx] += 1;
    }
}

void
CpuProfiler::onInstFetch(std::uint64_t addr)
{
    if (!active_)
        return;
    iFetches_ += 1;
    iCurve_.access(addr / hw::kLineBytes);
}

void
CpuProfiler::onBranch(std::uint64_t pc, bool taken)
{
    if (!active_)
        return;
    branchExecs_ += 1;
    BranchSite &site = sites_[pc];
    site.execs += 1;
    if (taken)
        site.taken += 1;
    if (site.seen && taken != site.lastDir)
        site.transitions += 1;
    site.lastDir = taken;
    site.seen = true;
}

InstMixProfile
CpuProfiler::mixProfile(double requests) const
{
    InstMixProfile p;
    p.counts = opcodeCounts_;
    p.instsPerRequest = requests > 0 ? instCount_ / requests : 0;
    p.avgRepBytes = repCount_ > 0 ? repBytesSum_ / repCount_ : 0;
    return p;
}

BranchProfile
CpuProfiler::branchProfile() const
{
    BranchProfile p;
    p.totalExecutions = branchExecs_;
    p.branchFraction = instCount_ > 0 ? branchExecs_ / instCount_ : 0;
    p.staticSites = sites_.size();
    for (const auto &[pc, site] : sites_) {
        if (site.execs == 0)
            continue;
        const double takenRate =
            static_cast<double>(site.taken) /
            static_cast<double>(site.execs);
        // Symmetric: jz vs jnz -- use the minority direction rate.
        const double minority = std::min(takenRate, 1.0 - takenRate);
        const double transRate =
            static_cast<double>(site.transitions) /
            static_cast<double>(site.execs);
        const unsigned m = quantizeExp(std::max(minority, 1e-4));
        const unsigned n = quantizeExp(std::max(transRate, 1e-4));
        p.bins[m][n] += static_cast<double>(site.execs);
    }
    return p;
}

DataMemProfile
CpuProfiler::dataMemProfile() const
{
    DataMemProfile p;
    p.hitsBySize = dCurve_.hitsBySize();
    p.totalAccesses = dAccesses_;
    p.accessesPerInst = instCount_ > 0 ? dAccesses_ / instCount_ : 0;
    p.storeFraction = dAccesses_ > 0 ? stores_ / dAccesses_ : 0;
    p.sharedFraction =
        dAccesses_ > 0 ? sharedAccesses_ / dAccesses_ : 0;
    p.regularFraction =
        dAccesses_ > 0 ? regularAccesses_ / dAccesses_ : 0;
    p.regularBySize = regularBySize_;
    p.accessSamplesBySize = samplesBySize_;
    return p;
}

InstMemProfile
CpuProfiler::instMemProfile() const
{
    InstMemProfile p;
    p.hitsBySize = iCurve_.hitsBySize();
    p.totalFetches = iFetches_;
    return p;
}

DepProfile
CpuProfiler::depProfile(double chaseFraction) const
{
    DepProfile p;
    p.raw = raw_;
    p.war = war_;
    p.waw = waw_;
    p.chaseFraction = chaseFraction;
    return p;
}

} // namespace ditto::profile
