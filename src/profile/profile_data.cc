#include "profile/profile_data.h"

#include <algorithm>
#include <bit>

namespace ditto::profile {

std::size_t
depBinOf(std::uint64_t distance)
{
    if (distance <= 1)
        return 0;
    const auto log2 = static_cast<std::size_t>(
        63 - std::countl_zero(distance));
    return std::min<std::size_t>(log2, kDepBins - 1);
}

double
InstMixProfile::total() const
{
    double sum = 0;
    for (double c : counts)
        sum += c;
    return sum;
}

double
InstMixProfile::memOperandFraction() const
{
    const hw::Isa &isa = hw::Isa::instance();
    double mem = 0;
    double all = 0;
    for (hw::Opcode op = 0; op < counts.size(); ++op) {
        all += counts[op];
        if (isa.touchesMemory(op))
            mem += counts[op];
    }
    return all > 0 ? mem / all : 0;
}

double
DataMemProfile::regularFractionOf(std::size_t sizeIdx) const
{
    if (sizeIdx < kWsSizes && accessSamplesBySize[sizeIdx] >= 16)
        return regularBySize[sizeIdx] / accessSamplesBySize[sizeIdx];
    return regularFraction;
}

std::array<double, kWsSizes>
DataMemProfile::accessesBySize() const
{
    // Eq. 1: A_d(64) = H_d(64); A_d(2^i) = H_d(2^i) - H_d(2^{i-1}).
    std::array<double, kWsSizes> a{};
    a[0] = hitsBySize[0];
    for (std::size_t i = 1; i < kWsSizes; ++i)
        a[i] = std::max(0.0, hitsBySize[i] - hitsBySize[i - 1]);
    return a;
}

std::array<double, kWsSizes>
InstMemProfile::executionsBySize() const
{
    // Eq. 2 with a 64B line and 4B instructions: executions in a
    // working set of 2^j bytes are 16x the incremental line hits;
    // the smallest working set absorbs the remainder.
    std::array<double, kWsSizes> e{};
    double assigned = 0;
    for (std::size_t j = 1; j < kWsSizes; ++j) {
        e[j] = std::max(0.0, 16.0 * (hitsBySize[j] - hitsBySize[j - 1]));
        assigned += e[j];
    }
    const double totalExec = 16.0 * hitsBySize[kWsSizes - 1];
    e[0] = std::max(0.0, totalExec - assigned);
    return e;
}

} // namespace ditto::profile
