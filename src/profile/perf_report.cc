#include "profile/perf_report.h"

#include <algorithm>
#include <cmath>

namespace ditto::profile {

PerfReport
snapshotService(app::ServiceInstance &svc)
{
    PerfReport r;
    r.service = svc.name();
    const app::ServiceStats &s = svc.stats();
    const hw::ExecStats &e = s.exec;
    const sim::Time now = svc.machine().events().now();

    r.ipc = e.ipc();
    r.cpi = e.cpi();
    r.instructions = e.instructions;
    r.cycles = e.cycles;
    r.branchMispredictRate = e.mispredictRate();
    r.branchMpki = e.branchMpki();
    r.l1iMissRate = e.missRateL1i();
    r.l1dMissRate = e.missRateL1d();
    r.l2MissRate = e.missRateL2();
    r.llcMissRate = e.missRateLlc();
    r.kernelInstFraction =
        e.instructions > 0 ? e.kernelInstructions / e.instructions : 0;
    const double missCycles =
        e.parallelMissCycles + e.serializedMissCycles;
    r.mlpSerializedFraction =
        missCycles > 0 ? e.serializedMissCycles / missCycles : 0;

    const double totalTopdown = e.retiringCycles + e.frontendCycles +
        e.badSpecCycles + e.backendCycles;
    if (totalTopdown > 0) {
        r.retiringFrac = e.retiringCycles / totalTopdown;
        r.frontendFrac = e.frontendCycles / totalTopdown;
        r.badSpecFrac = e.badSpecCycles / totalTopdown;
        r.backendFrac = e.backendCycles / totalTopdown;
    }

    r.qps = s.qps(now);
    r.netBandwidthBytesPerSec = s.netBandwidth(now);
    r.diskBandwidthBytesPerSec = s.diskBandwidth(now);
    r.avgLatencyMs = sim::toMilliseconds(
        static_cast<sim::Time>(s.latency.mean()));
    r.p50LatencyMs = sim::toMilliseconds(s.latency.percentile(0.50));
    r.p95LatencyMs = sim::toMilliseconds(s.latency.percentile(0.95));
    r.p99LatencyMs = sim::toMilliseconds(s.latency.percentile(0.99));

    const double reqs = std::max<double>(1.0,
        static_cast<double>(s.requests));
    r.instructionsPerRequest = e.instructions / reqs;
    r.cyclesPerRequest = e.cycles / reqs;
    return r;
}

double
relativeError(double actual, double target)
{
    const double denom = std::max(std::abs(target), 1e-9);
    return std::abs(actual - target) / denom;
}

void
overrideLatency(PerfReport &report,
                const stats::LatencyHistogram &clientLatency)
{
    report.avgLatencyMs = sim::toMilliseconds(
        static_cast<sim::Time>(clientLatency.mean()));
    report.p50LatencyMs =
        sim::toMilliseconds(clientLatency.percentile(0.50));
    report.p95LatencyMs =
        sim::toMilliseconds(clientLatency.percentile(0.95));
    report.p99LatencyMs =
        sim::toMilliseconds(clientLatency.percentile(0.99));
}

} // namespace ditto::profile
