/**
 * @file
 * Profiling session: orchestrates one instrumented run of a service
 * and assembles the platform-independent ServiceProfile.
 *
 * Mirrors the paper's workflow: the service runs under a
 * representative input load; SDE/Valgrind-equivalent observers hook
 * the cores (exact interpretation, no sampling) and the
 * SystemTap-equivalent probe hooks the service; after a warmup, one
 * measured window is collected and normalized per request.
 */

#ifndef DITTO_PROFILE_SESSION_H_
#define DITTO_PROFILE_SESSION_H_

#include "app/deployment.h"
#include "app/service.h"
#include "profile/profile_data.h"
#include "sim/time.h"

namespace ditto::profile {

struct ProfileOptions
{
    sim::Time warmup = sim::milliseconds(150);
    sim::Time window = sim::milliseconds(150);
    std::uint64_t maxWsBytes = 256ull << 20;
};

/**
 * Profile a running service. The caller must already have load
 * applied (a LoadGen driving the service or its topology's root).
 */
ServiceProfile profileService(app::Deployment &dep,
                              app::ServiceInstance &svc,
                              const ProfileOptions &opts = {});

} // namespace ditto::profile

#endif // DITTO_PROFILE_SESSION_H_
