/**
 * @file
 * Platform-independent profile data -- the only information Ditto's
 * generators may consume (Sec. 4.1 "Abstraction": the clone is built
 * from post-processed statistics, never from the original's spec).
 *
 * Every field corresponds to something the paper's toolchain
 * measures: Intel SDE (iform counts, dependency distances,
 * shared/private ratio), Valgrind (working-set hit curves for data
 * and instructions), SystemTap (syscall type/argument distributions,
 * thread behaviour), Perf (MLP, reference counters), and distributed
 * tracing (the RPC topology).
 */

#ifndef DITTO_PROFILE_PROFILE_DATA_H_
#define DITTO_PROFILE_PROFILE_DATA_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hw/isa.h"
#include "sim/time.h"

namespace ditto::profile {

/** Number of power-of-two working-set sizes tracked (64B..2GB). */
inline constexpr std::size_t kWsSizes = 26;

/** Working-set size in bytes for index i. */
inline constexpr std::uint64_t
wsBytes(std::size_t i)
{
    return 64ull << i;
}

/** Dependency-distance bins: 1,2,4,...,1024 (11 bins, Sec. 4.4.6). */
inline constexpr std::size_t kDepBins = 11;

/** Bin index for a dependency distance. */
std::size_t depBinOf(std::uint64_t distance);

/** Branch rate quantization: exponents 1..10 (2^-1..2^-10). */
inline constexpr unsigned kBranchExpMin = 1;
inline constexpr unsigned kBranchExpMax = 10;

/** Dynamic instruction mix (per-iform counts). */
struct InstMixProfile
{
    /** Dynamic count per opcode (indexed by hw::Opcode). */
    std::vector<double> counts;
    /** Average user-level dynamic instructions per request. */
    double instsPerRequest = 0;
    /** Average repeat bytes of REP-prefixed executions. */
    double avgRepBytes = 0;

    double total() const;
    /** Fraction of dynamic instructions with a memory operand. */
    double memOperandFraction() const;
};

/** Branch behaviour (Sec. 4.4.3). */
struct BranchProfile
{
    /**
     * Weight of branch executions in quantized (takenExp, transExp)
     * bins; indices are exponents clamped to [1, 10].
     */
    std::array<std::array<double, kBranchExpMax + 1>,
               kBranchExpMax + 1> bins{};
    double totalExecutions = 0;
    /** Conditional branches per dynamic instruction. */
    double branchFraction = 0;
    /** Distinct static branch sites observed. */
    std::uint64_t staticSites = 0;
};

/** Data memory access pattern (Sec. 4.4.4). */
struct DataMemProfile
{
    /** H_d(2^i): hits in a 2^i-byte cache (8-way <1MB, 16-way >=). */
    std::array<double, kWsSizes> hitsBySize{};
    double totalAccesses = 0;
    /** Memory accesses per dynamic instruction. */
    double accessesPerInst = 0;
    /** Fraction of accesses that are stores. */
    double storeFraction = 0;
    /** Fraction of accesses to data shared across threads. */
    double sharedFraction = 0;
    /** Fraction of accesses with regular (strided) patterns. */
    double regularFraction = 0;
    /**
     * Regular fraction per working-set bucket (joint histogram of
     * reuse size x stride regularity): large sequential buffers are
     * prefetchable, random lookups into large tables are not, and
     * the clone must preserve that correlation.
     */
    std::array<double, kWsSizes> regularBySize{};
    /** Accesses observed per bucket (weights for regularBySize). */
    std::array<double, kWsSizes> accessSamplesBySize{};

    /** Regular fraction for a bucket, falling back to the global. */
    double regularFractionOf(std::size_t sizeIdx) const;

    /** A_d(2^i) per Eq. 1: accesses attributed to working set 2^i. */
    std::array<double, kWsSizes> accessesBySize() const;
};

/** Instruction memory access pattern (Sec. 4.4.5). */
struct InstMemProfile
{
    /** H_i(2^j): i-cache hits with a 2^j-byte i-cache. */
    std::array<double, kWsSizes> hitsBySize{};
    double totalFetches = 0;

    /**
     * E_i(2^j) per Eq. 2: dynamic instruction executions attributed
     * to instruction working set 2^j (16 instructions per line).
     */
    std::array<double, kWsSizes> executionsBySize() const;
};

/** Register data-dependency distances (Sec. 4.4.6). */
struct DepProfile
{
    std::array<double, kDepBins> raw{};
    std::array<double, kDepBins> war{};
    std::array<double, kDepBins> waw{};
    /**
     * Fraction of load-miss latency that is serialized (dependent
     * loads), derived from MLP counters; drives the pointer-chase
     * ratio in generated code.
     */
    double chaseFraction = 0;
};

/** One syscall kind's statistics. */
struct SyscallStat
{
    double countPerRequest = 0;
    double avgBytes = 0;
    /** Byte-size histogram (log2 buckets, weight per bucket). */
    std::map<unsigned, double> bytesLog2Hist;
};

/** Syscall profile per service (SystemTap stand-in). */
struct SyscallProfile
{
    /** Keyed by app::SysKind numeric value. */
    std::map<int, SyscallStat> perKind;
    /** Total file bytes addressed (max offset seen), for file sizing. */
    std::uint64_t fileSpanBytes = 0;
    /** Actual disk read bytes per request (page-cache misses). */
    double diskReadBytesPerRequest = 0;
    double requestsObserved = 0;
};

/** A thread's observable behaviour (for skeleton analysis). */
struct ThreadObservation
{
    std::string name;
    /** Distinct call paths ("/outer/inner") observed. */
    std::vector<std::string> callPaths;
    std::map<int, std::uint64_t> syscallCounts;
    /** Zero-byte (would-block / polling) syscalls per kind. */
    std::map<int, std::uint64_t> emptySyscallCounts;
    sim::Time firstSeen = 0;
    bool spawnedAfterStart = false;
};

/** Observed RPC edge aggregate (from distributed traces). */
struct EdgeProfile
{
    std::string caller;
    std::string callee;
    std::uint32_t endpoint = 0;
    double callsPerCallerRequest = 0;
    double avgRequestBytes = 0;
    double avgResponseBytes = 0;
};

/** Reference counters from the original run (for fine tuning). */
struct ReferenceCounters
{
    double ipc = 0;
    double instructionsPerRequest = 0;  //!< incl. kernel
    double cyclesPerRequest = 0;
    double branchMispredictRate = 0;
    double l1iMissRate = 0;
    double l1dMissRate = 0;
    double l2MissRate = 0;
    double llcMissRate = 0;
    double p99LatencyMs = 0;
};

/** Everything profiled about one service. */
struct ServiceProfile
{
    std::string serviceName;
    InstMixProfile mix;
    BranchProfile branch;
    DataMemProfile dmem;
    InstMemProfile imem;
    DepProfile dep;
    SyscallProfile syscalls;
    std::vector<ThreadObservation> threads;
    ReferenceCounters reference;
    double requestsObserved = 0;
    /** Mean response bytes observed (for the skeleton). */
    double avgResponseBytes = 0;
    /** Mean request bytes observed. */
    double avgRequestBytes = 0;
    /** Fraction of RPCs issued while earlier ones were pending. */
    double asyncEvidence = 0;
};

} // namespace ditto::profile

#endif // DITTO_PROFILE_PROFILE_DATA_H_
