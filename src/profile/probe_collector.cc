#include "profile/probe_collector.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ditto::profile {

ProbeCollector::PerThread &
ProbeCollector::slot(const os::Thread &t)
{
    PerThread &pt = threads_[&t];
    if (pt.name.empty())
        pt.name = t.name();
    return pt;
}

void
ProbeCollector::begin(sim::Time now)
{
    beginTime_ = now;
    requests_ = 0;
    rpcIssues_ = 0;
    overlappedRpcs_ = 0;
}

void
ProbeCollector::onSyscall(const os::Thread &t, app::SysKind kind,
                          std::uint64_t bytes)
{
    PerThread &pt = slot(t);
    const int k = static_cast<int>(kind);
    pt.syscalls[k] += 1;
    pt.syscallBytes[k] += static_cast<double>(bytes);
    if (bytes == 0)
        pt.emptySyscalls[k] += 1;
    if (bytes > 0) {
        const unsigned log2 = static_cast<unsigned>(
            63 - std::countl_zero(bytes));
        pt.bytesHist[k][log2] += 1;
    }
    if (kind == app::SysKind::SocketRead && pt.pendingRpcs > 0)
        pt.pendingRpcs = 0;
}

void
ProbeCollector::onCallEnter(const os::Thread &t,
                            const std::string &label)
{
    PerThread &pt = slot(t);
    pt.callStack.push_back(label);
    std::string path;
    for (const std::string &frame : pt.callStack) {
        path += '/';
        path += frame;
    }
    pt.callPaths[path] += 1;
}

void
ProbeCollector::onCallExit(const os::Thread &t,
                           const std::string &label)
{
    PerThread &pt = slot(t);
    if (!pt.callStack.empty() && pt.callStack.back() == label)
        pt.callStack.pop_back();
}

void
ProbeCollector::onThreadStart(const os::Thread &t, app::ThreadRole)
{
    PerThread &pt = slot(t);
    pt.sawStart = true;
    pt.firstSeen = beginTime_;
}

void
ProbeCollector::onRpcIssued(const os::Thread &t, std::uint32_t,
                            std::uint32_t, std::uint32_t,
                            std::uint32_t)
{
    PerThread &pt = slot(t);
    ++rpcIssues_;
    if (pt.pendingRpcs > 0)
        ++overlappedRpcs_;  // issued before the previous one was read
    ++pt.pendingRpcs;
}

void
ProbeCollector::onRequestDone(std::uint32_t, sim::Time)
{
    ++requests_;
}

void
ProbeCollector::onFileAccess(const os::Thread &, std::uint64_t offset,
                             std::uint64_t bytes, bool)
{
    fileSpan_ = std::max(fileSpan_, offset + bytes);
}

void
ProbeCollector::onOutcome(const os::Thread &, trace::OutcomeKind kind,
                          std::uint32_t, std::uint32_t,
                          unsigned attempts)
{
    ++outcomeCounts_[static_cast<std::size_t>(kind)];
    if (attempts > 1)
        extraAttempts_ += attempts - 1;
}

std::vector<ThreadObservation>
ProbeCollector::threadObservations() const
{
    std::vector<ThreadObservation> out;
    for (const auto &[thread, pt] : threads_) {
        (void)thread;
        ThreadObservation obs;
        obs.name = pt.name;
        for (const auto &[path, count] : pt.callPaths) {
            (void)count;
            obs.callPaths.push_back(path);
        }
        obs.syscallCounts = pt.syscalls;
        obs.emptySyscallCounts = pt.emptySyscalls;
        obs.firstSeen = pt.firstSeen;
        obs.spawnedAfterStart = pt.firstSeen > beginTime_;
        out.push_back(std::move(obs));
    }
    // Deterministic order (unordered_map iteration is not).
    std::sort(out.begin(), out.end(),
              [](const ThreadObservation &a, const ThreadObservation &b) {
                  return a.name < b.name;
              });
    return out;
}

SyscallProfile
ProbeCollector::syscallProfile() const
{
    SyscallProfile prof;
    prof.requestsObserved = static_cast<double>(requests_);
    std::map<int, std::uint64_t> counts;
    std::map<int, double> bytes;
    std::map<int, std::map<unsigned, double>> hists;
    for (const auto &[thread, pt] : threads_) {
        (void)thread;
        for (const auto &[k, c] : pt.syscalls)
            counts[k] += c;
        for (const auto &[k, b] : pt.syscallBytes)
            bytes[k] += b;
        for (const auto &[k, h] : pt.bytesHist) {
            for (const auto &[bin, w] : h)
                hists[k][bin] += w;
        }
    }
    const double reqs = std::max(1.0, prof.requestsObserved);
    for (const auto &[k, c] : counts) {
        SyscallStat stat;
        stat.countPerRequest = static_cast<double>(c) / reqs;
        stat.avgBytes = c > 0 ? bytes[k] / static_cast<double>(c) : 0;
        stat.bytesLog2Hist = hists[k];
        prof.perKind[k] = stat;
    }
    prof.fileSpanBytes = fileSpan_;
    return prof;
}

double
ProbeCollector::asyncEvidence() const
{
    return rpcIssues_ > 0
        ? static_cast<double>(overlappedRpcs_) /
            static_cast<double>(rpcIssues_)
        : 0.0;
}

} // namespace ditto::profile
