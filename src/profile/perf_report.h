/**
 * @file
 * Performance-counter reports: the Perf/VTune stand-in.
 *
 * A PerfReport snapshots every metric the paper's figures plot --
 * IPC, branch misprediction, L1i/L1d/L2/LLC miss rates, network and
 * disk bandwidth, latency percentiles, top-down cycle breakdown --
 * for one service over one measured window. Fine tuning (Sec. 4.5)
 * and every bench compare PerfReports between original and clone.
 */

#ifndef DITTO_PROFILE_PERF_REPORT_H_
#define DITTO_PROFILE_PERF_REPORT_H_

#include <string>

#include "app/service.h"
#include "sim/time.h"
#include "stats/histogram.h"

namespace ditto::profile {

struct PerfReport
{
    std::string service;

    // CPU metrics.
    double ipc = 0;
    double cpi = 0;
    double instructions = 0;
    double cycles = 0;
    double branchMispredictRate = 0;
    double branchMpki = 0;
    double l1iMissRate = 0;
    double l1dMissRate = 0;
    double l2MissRate = 0;
    double llcMissRate = 0;
    double kernelInstFraction = 0;
    double mlpSerializedFraction = 0;

    // Top-down breakdown (fractions of total cycles).
    double retiringFrac = 0;
    double frontendFrac = 0;
    double badSpecFrac = 0;
    double backendFrac = 0;

    // High-level metrics.
    double qps = 0;
    double netBandwidthBytesPerSec = 0;
    double diskBandwidthBytesPerSec = 0;
    double avgLatencyMs = 0;
    double p50LatencyMs = 0;
    double p95LatencyMs = 0;
    double p99LatencyMs = 0;

    double instructionsPerRequest = 0;
    double cyclesPerRequest = 0;
};

/** Snapshot a service's measured window ending now. */
PerfReport snapshotService(app::ServiceInstance &svc);

/** Relative error |a-b| / max(|b|, eps), for accuracy tables. */
double relativeError(double actual, double target);

/** Build a report from client-side latency instead of server-side. */
void overrideLatency(PerfReport &report,
                     const stats::LatencyHistogram &clientLatency);

} // namespace ditto::profile

#endif // DITTO_PROFILE_PERF_REPORT_H_
