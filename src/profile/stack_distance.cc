#include "profile/stack_distance.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace ditto::profile {

StackDistanceCurve::StackDistanceCurve()
{
    bit_.assign(1 << 16, 0);
}

void
StackDistanceCurve::ensure(std::uint32_t pos)
{
    if (pos >= bit_.size()) {
        std::size_t size = bit_.size();
        while (pos >= size)
            size *= 2;
        bit_.resize(size, 0);
    }
}

void
StackDistanceCurve::bitAdd(std::uint32_t pos, std::int32_t delta)
{
    ensure(pos);
    for (std::uint32_t i = pos + 1; i <= bit_.size();
         i += i & (~i + 1)) {
        bit_[i - 1] += delta;
    }
}

std::int64_t
StackDistanceCurve::bitPrefix(std::uint32_t pos) const
{
    std::int64_t sum = 0;
    std::uint32_t limit = pos + 1;
    if (limit > bit_.size())
        limit = static_cast<std::uint32_t>(bit_.size());
    for (std::uint32_t i = limit; i > 0; i -= i & (~i + 1))
        sum += bit_[i - 1];
    return sum;
}

void
StackDistanceCurve::compress()
{
    std::vector<std::pair<std::uint32_t, std::uint64_t>> live;
    live.reserve(lastTime_.size());
    for (const auto &[line, t] : lastTime_)
        live.push_back({t, line});
    std::sort(live.begin(), live.end());

    std::fill(bit_.begin(), bit_.end(), 0);
    std::uint32_t next = 0;
    for (const auto &[t, line] : live) {
        (void)t;
        lastTime_[line] = next;
        bitAdd(next, 1);
        ++next;
    }
    time_ = next;
}

std::size_t
StackDistanceCurve::access(std::uint64_t lineAddr)
{
    total_ += 1;
    if (time_ >= kMaxTime)
        compress();
    const std::uint32_t now = time_++;
    ensure(now);

    const auto it = lastTime_.find(lineAddr);
    if (it == lastTime_.end()) {
        cold_ += 1;
        bitAdd(now, 1);
        lastTime_.emplace(lineAddr, now);
        return kWsSizes;
    }

    const std::uint32_t prev = it->second;
    // Distinct lines touched since `prev`: each has its latest access
    // marked in (prev, now); +1 for the line itself.
    const std::int64_t between =
        bitPrefix(now) - bitPrefix(prev);  // excludes prev, includes <now marks
    const std::int64_t distance = between + 1;

    // Smallest capacity index that hits: lines(i) = 2^i >= distance.
    const auto d = static_cast<std::uint64_t>(
        distance < 1 ? 1 : distance);
    const unsigned idx = d <= 1
        ? 0
        : static_cast<unsigned>(64 - std::countl_zero(d - 1));
    if (idx < kWsSizes)
        minHitIdx_[idx] += 1;
    else
        minHitIdx_[kWsSizes] += 1;  // misses everywhere tracked

    bitAdd(prev, -1);
    bitAdd(now, 1);
    it->second = now;
    return std::min<std::size_t>(idx, kWsSizes);
}

std::array<double, kWsSizes>
StackDistanceCurve::hitsBySize() const
{
    std::array<double, kWsSizes> hits{};
    double cumulative = 0;
    for (std::size_t i = 0; i < kWsSizes; ++i) {
        cumulative += minHitIdx_[i];
        hits[i] = cumulative;
    }
    return hits;
}

} // namespace ditto::profile
