/**
 * @file
 * Distributed tracing (the Jaeger/Zipkin/Dapper stand-in).
 *
 * Services record server-side spans for every handled request and
 * client-side RPC edges for every downstream call. Ditto's
 * TopologyAnalyzer consumes the collected traces to recover the
 * microservice dependency DAG and per-edge call statistics
 * (Sec. 4.2), exactly as it would from a production tracing backend.
 */

#ifndef DITTO_TRACE_TRACER_H_
#define DITTO_TRACE_TRACER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ditto::trace {

/** A server-side span: one request handled by one service. */
struct Span
{
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;
    std::uint64_t parentSpanId = 0;
    std::string service;
    std::uint32_t endpoint = 0;
    sim::Time start = 0;
    sim::Time end = 0;
};

/** A client-side RPC edge observation. */
struct RpcEdge
{
    std::uint64_t traceId = 0;
    std::uint64_t parentSpanId = 0;
    std::string caller;
    std::string callee;
    std::uint32_t endpoint = 0;
    std::uint32_t requestBytes = 0;
    std::uint32_t responseBytes = 0;
};

/**
 * Trace collector with head-based sampling.
 *
 * Sampling keeps tracing overhead negligible in production (the
 * paper samples traces); the topology analyzer only needs relative
 * edge frequencies, which sampling preserves.
 */
class Tracer
{
  public:
    explicit Tracer(double sampleRate = 1.0)
        : sampleRate_(sampleRate)
    {
    }

    /** Whether a given trace id is sampled. */
    bool sampled(std::uint64_t traceId) const;

    /** Allocate a fresh span id. */
    std::uint64_t newSpanId() { return nextSpanId_++; }

    void recordSpan(Span span);
    void recordEdge(RpcEdge edge);

    const std::vector<Span> &spans() const { return spans_; }
    const std::vector<RpcEdge> &edges() const { return edges_; }

    void clear();

    double sampleRate() const { return sampleRate_; }

  private:
    double sampleRate_;
    std::uint64_t nextSpanId_ = 1;
    std::vector<Span> spans_;
    std::vector<RpcEdge> edges_;
};

} // namespace ditto::trace

#endif // DITTO_TRACE_TRACER_H_
