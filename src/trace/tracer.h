/**
 * @file
 * Distributed tracing (the Jaeger/Zipkin/Dapper stand-in).
 *
 * Services record server-side spans for every handled request and
 * client-side RPC edges for every downstream call. Ditto's
 * TopologyAnalyzer consumes the collected traces to recover the
 * microservice dependency DAG and per-edge call statistics
 * (Sec. 4.2), exactly as it would from a production tracing backend.
 */

#ifndef DITTO_TRACE_TRACER_H_
#define DITTO_TRACE_TRACER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ditto::trace {

/** A server-side span: one request handled by one service. */
struct Span
{
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;
    std::uint64_t parentSpanId = 0;
    std::string service;
    std::uint32_t endpoint = 0;
    sim::Time start = 0;
    sim::Time end = 0;
};

/** A client-side RPC edge observation. */
struct RpcEdge
{
    std::uint64_t traceId = 0;
    std::uint64_t parentSpanId = 0;
    std::string caller;
    std::string callee;
    std::uint32_t endpoint = 0;
    std::uint32_t requestBytes = 0;
    std::uint32_t responseBytes = 0;
    /**
     * Effective remaining deadline budget (ns) the caller attached to
     * this attempt; 0 when no deadline was propagated.
     */
    std::uint64_t deadlineNs = 0;
};

/**
 * Request/RPC outcome classes surfaced by the resilience layer
 * (deadlines, retries, circuit breaking, load shedding).
 */
enum class OutcomeKind : std::uint8_t
{
    RpcOk,          //!< downstream call answered on the first attempt
    RpcRetriedOk,   //!< answered after one or more retries
    RpcTimeout,     //!< all attempts exhausted their deadline
    RpcBreakerOpen, //!< failed fast: circuit breaker open
    RequestShed,    //!< inbound request rejected by load shedding
    RequestError,   //!< response sent degraded (a downstream failed)
    RpcCancelled,   //!< call abandoned: budget exhausted, cancelled,
                    //!< or aborted by a crash before it settled
    RpcHedgeWon,    //!< answered by the hedge attempt (counts as ok)
    RequestCancelled, //!< inbound request cancelled by its caller or
                      //!< dead on arrival (deadline already passed)
};

inline constexpr std::size_t kOutcomeKinds = 9;

/** Human-readable outcome name. */
const char *outcomeKindName(OutcomeKind kind);

/**
 * Inverse of outcomeKindName. Returns false and leaves `out`
 * untouched when `name` is not a known outcome kind.
 */
bool outcomeKindFromName(const std::string &name, OutcomeKind &out);

/** One resilience outcome observation. */
struct OutcomeEvent
{
    std::uint64_t traceId = 0;
    std::string service;
    std::uint32_t target = 0;    //!< downstream index (RPC outcomes)
    std::uint32_t endpoint = 0;
    OutcomeKind kind = OutcomeKind::RpcOk;
    unsigned attempts = 0;
    sim::Time time = 0;
    /** Why the work was abandoned (cancellation outcomes only). */
    std::string cause;
};

/**
 * Trace collector with head-based sampling.
 *
 * Sampling keeps tracing overhead negligible in production (the
 * paper samples traces); the topology analyzer only needs relative
 * edge frequencies, which sampling preserves.
 *
 * Determinism: a Tracer is owned by exactly one Deployment and holds
 * no global state -- span ids are drawn from a per-instance counter
 * and the sampling decision is a pure function of (traceId,
 * sampleRate). Concurrent runs on a RunExecutor therefore produce
 * identical traces at any worker count (DESIGN.md §8).
 */
class Tracer
{
  public:
    explicit Tracer(double sampleRate = 1.0)
        : sampleRate_(sampleRate)
    {
    }

    /** Whether a given trace id is sampled. */
    bool sampled(std::uint64_t traceId) const;

    /** Allocate a fresh span id. */
    std::uint64_t newSpanId() { return nextSpanId_++; }

    void recordSpan(Span span);
    void recordEdge(RpcEdge edge);

    /**
     * Record a resilience outcome. The aggregate per-kind counters
     * are exact; the event list is subject to trace sampling like
     * spans and edges.
     */
    void recordOutcome(OutcomeEvent event);

    const std::vector<Span> &spans() const { return spans_; }
    const std::vector<RpcEdge> &edges() const { return edges_; }
    const std::vector<OutcomeEvent> &outcomes() const
    {
        return outcomes_;
    }

    /** Exact (unsampled) count of outcomes of one kind. */
    std::uint64_t
    outcomeCount(OutcomeKind kind) const
    {
        return outcomeCounts_[static_cast<std::size_t>(kind)];
    }

    /**
     * Re-ingest a previously exported record verbatim, bypassing the
     * sampling decision (the exporter already applied it). Used by
     * obs::importJaegerJson; importOutcome also bumps the exact
     * per-kind counter, so counters after an import reflect only the
     * sampled events that survived export.
     */
    void importSpan(Span span) { spans_.push_back(std::move(span)); }
    void importEdge(RpcEdge edge) { edges_.push_back(std::move(edge)); }
    void
    importOutcome(OutcomeEvent event)
    {
        ++outcomeCounts_[static_cast<std::size_t>(event.kind)];
        outcomes_.push_back(std::move(event));
    }

    void clear();

    double sampleRate() const { return sampleRate_; }

  private:
    double sampleRate_;
    std::uint64_t nextSpanId_ = 1;
    std::vector<Span> spans_;
    std::vector<RpcEdge> edges_;
    std::vector<OutcomeEvent> outcomes_;
    std::array<std::uint64_t, kOutcomeKinds> outcomeCounts_{};
};

} // namespace ditto::trace

#endif // DITTO_TRACE_TRACER_H_
