#include "trace/tracer.h"

namespace ditto::trace {

bool
Tracer::sampled(std::uint64_t traceId) const
{
    if (sampleRate_ >= 1.0)
        return true;
    if (sampleRate_ <= 0.0)
        return false;
    // Deterministic hash-based head sampling.
    std::uint64_t h = traceId * 0x9e3779b97f4a7c15ull;
    h ^= h >> 32;
    return static_cast<double>(h & 0xffffffull) /
        static_cast<double>(0x1000000) < sampleRate_;
}

void
Tracer::recordSpan(Span span)
{
    if (sampled(span.traceId))
        spans_.push_back(std::move(span));
}

void
Tracer::recordEdge(RpcEdge edge)
{
    if (sampled(edge.traceId))
        edges_.push_back(std::move(edge));
}

void
Tracer::clear()
{
    spans_.clear();
    edges_.clear();
}

} // namespace ditto::trace
