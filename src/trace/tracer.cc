#include "trace/tracer.h"

namespace ditto::trace {

bool
Tracer::sampled(std::uint64_t traceId) const
{
    if (sampleRate_ >= 1.0)
        return true;
    if (sampleRate_ <= 0.0)
        return false;
    // Deterministic hash-based head sampling.
    std::uint64_t h = traceId * 0x9e3779b97f4a7c15ull;
    h ^= h >> 32;
    return static_cast<double>(h & 0xffffffull) /
        static_cast<double>(0x1000000) < sampleRate_;
}

void
Tracer::recordSpan(Span span)
{
    if (sampled(span.traceId))
        spans_.push_back(std::move(span));
}

void
Tracer::recordEdge(RpcEdge edge)
{
    if (sampled(edge.traceId))
        edges_.push_back(std::move(edge));
}

void
Tracer::recordOutcome(OutcomeEvent event)
{
    ++outcomeCounts_[static_cast<std::size_t>(event.kind)];
    if (sampled(event.traceId))
        outcomes_.push_back(std::move(event));
}

void
Tracer::clear()
{
    spans_.clear();
    edges_.clear();
    outcomes_.clear();
    outcomeCounts_.fill(0);
}

const char *
outcomeKindName(OutcomeKind kind)
{
    switch (kind) {
      case OutcomeKind::RpcOk: return "rpc_ok";
      case OutcomeKind::RpcRetriedOk: return "rpc_retried_ok";
      case OutcomeKind::RpcTimeout: return "rpc_timeout";
      case OutcomeKind::RpcBreakerOpen: return "rpc_breaker_open";
      case OutcomeKind::RequestShed: return "request_shed";
      case OutcomeKind::RequestError: return "request_error";
      case OutcomeKind::RpcCancelled: return "rpc_cancelled";
      case OutcomeKind::RpcHedgeWon: return "rpc_hedge_won";
      case OutcomeKind::RequestCancelled: return "request_cancelled";
    }
    return "?";
}

bool
outcomeKindFromName(const std::string &name, OutcomeKind &out)
{
    for (std::size_t i = 0; i < kOutcomeKinds; ++i) {
        const auto kind = static_cast<OutcomeKind>(i);
        if (name == outcomeKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

} // namespace ditto::trace
