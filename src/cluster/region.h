/**
 * @file
 * Multi-region world building: RegionSpec + seeded WAN meshes.
 *
 * buildRegions() turns a list of RegionSpecs into defined regions
 * with their machines and installs a full mesh of directed WAN links
 * between every region pair. Per-direction latencies are drawn
 * deterministically from the profile seed, so routes are asymmetric
 * (a->b != b->a, like real WAN paths) yet a pure function of the
 * specs -- benches and chaos campaigns that build regions this way
 * stay byte-identical at any --jobs (DESIGN.md §8).
 */

#ifndef DITTO_CLUSTER_REGION_H_
#define DITTO_CLUSTER_REGION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ditto::app {
class Deployment;
} // namespace ditto::app

namespace ditto::cluster {

/** One region of a multi-region deployment. */
struct RegionSpec
{
    std::string name;
    /** Machines created in the region (hw::platformA). */
    unsigned machines = 1;
};

/** Shape of the WAN mesh installed between every region pair. */
struct WanProfile
{
    /** Minimum one-way latency of every directed link. */
    sim::Time baseLatency = sim::milliseconds(30);
    /**
     * Upper bound on the seeded per-direction latency spread added to
     * baseLatency; 0 makes every link symmetric at baseLatency.
     */
    sim::Time latencySpread = sim::milliseconds(10);
    /** Bandwidth cap per directed link; 0 = uncapped. */
    double bytesPerNs = 1.25;
    /** Correlated loss bursts (see os::WanLinkSpec); 0 disables. */
    sim::Time burstMeanInterval = 0;
    sim::Time burstLength = 0;
    double burstDropProb = 0;
    std::uint64_t seed = 1;
};

/**
 * Define every region, create its machines (named "m<i>" continuing
 * the deployment's machine count), and install the directed WAN mesh.
 * Returns the region ids in spec order.
 */
std::vector<std::uint32_t>
buildRegions(app::Deployment &dep,
             const std::vector<RegionSpec> &regions,
             const WanProfile &wan);

} // namespace ditto::cluster

#endif // DITTO_CLUSTER_REGION_H_
