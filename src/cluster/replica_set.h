/**
 * @file
 * ReplicaSet: the N running instances of one service.
 *
 * All replicas share the service name, so callers keep addressing the
 * group through their unchanged downstream lists; the per-edge
 * balancer (cluster/balancer.h) spreads their attempts over the
 * group. Scaling keeps a prefix invariant: replicas [0, active) are
 * serving and [active, total) are retired. Scale-down retires the
 * highest active replica (never replica 0, the canonical handle) by
 * deactivating it in every caller's balancer -- the instance stays up
 * and drains what it already has. Scale-up reactivates the lowest
 * retired replica before creating a new one, so repeated oscillation
 * reuses warm instances instead of piling up cold ones.
 */

#ifndef DITTO_CLUSTER_REPLICA_SET_H_
#define DITTO_CLUSTER_REPLICA_SET_H_

#include <cstdint>
#include <string>

#include "cluster/placer.h"

namespace ditto::app {
class Deployment;
class ServiceInstance;
} // namespace ditto::app

namespace ditto::obs {
class MetricsRegistry;
} // namespace ditto::obs

namespace ditto::cluster {

class ReplicaSet
{
  public:
    /**
     * Manage the replicas of `name` (already deployed and wired in
     * `dep`). New replicas are placed through `placer`; when
     * `metrics` is non-null their per-service series are registered
     * the moment they are created.
     */
    ReplicaSet(app::Deployment &dep, std::string name, Placer &placer,
               obs::MetricsRegistry *metrics = nullptr);

    const std::string &name() const { return name_; }

    /** Dense service id of the managed group (cached at creation). */
    std::uint32_t serviceId() const { return serviceId_; }

    /** Instances in existence (active + retired). */
    std::size_t total() const;

    /** Instances currently receiving traffic. */
    std::size_t active() const { return active_; }

    /**
     * Scale to `target` active replicas (clamped to >= 1). Retired
     * instances are reactivated before new ones are deployed; excess
     * ones are retired highest-index first. Returns the new active
     * count.
     */
    std::size_t scaleTo(std::size_t target);

  private:
    app::Deployment &dep_;
    std::string name_;
    /** Interned id: steady-state polls skip the name lookup. */
    std::uint32_t serviceId_;
    Placer &placer_;
    obs::MetricsRegistry *metrics_;
    std::size_t active_;
};

} // namespace ditto::cluster

#endif // DITTO_CLUSTER_REPLICA_SET_H_
