#include "cluster/balancer.h"

#include <algorithm>

namespace ditto::cluster {

namespace {

/** Virtual nodes per replica on the consistent-hash ring. */
constexpr std::uint32_t kVnodesPerReplica = 32;

} // namespace

const char *
balancerPolicyName(BalancerPolicy policy)
{
    switch (policy) {
      case BalancerPolicy::RoundRobin: return "round_robin";
      case BalancerPolicy::LeastOutstanding:
        return "least_outstanding";
      case BalancerPolicy::PowerOfTwo: return "power_of_two";
      case BalancerPolicy::ConsistentHash: return "consistent_hash";
      case BalancerPolicy::PreferLocal: return "prefer_local";
    }
    return "?";
}

std::uint64_t
EdgeBalancer::hashPoint(std::uint64_t x)
{
    // splitmix64 finalizer: cheap, well-mixed, stable across builds.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

void
EdgeBalancer::init(BalancerPolicy policy, std::size_t replicas,
                   std::uint64_t seed)
{
    policy_ = policy;
    seed_ = seed;
    rng_ = sim::Rng(seed ^ 0xba1a0cedull);
    outstanding_.assign(replicas, 0);
    active_.assign(replicas, 1);
    rr_ = 0;
    ring_.clear();
    if (policy_ == BalancerPolicy::ConsistentHash) {
        for (std::uint32_t r = 0; r < replicas; ++r)
            insertRingPoints(r);
    }
}

void
EdgeBalancer::insertRingPoints(std::uint32_t replica)
{
    for (std::uint32_t v = 0; v < kVnodesPerReplica; ++v) {
        const std::uint64_t point = hashPoint(
            seed_ ^ (std::uint64_t{replica} << 32 | v));
        const auto pos = std::lower_bound(
            ring_.begin(), ring_.end(),
            std::make_pair(point, std::uint32_t{0}));
        ring_.insert(pos, {point, replica});
    }
}

void
EdgeBalancer::addReplica()
{
    const auto idx = static_cast<std::uint32_t>(outstanding_.size());
    outstanding_.push_back(0);
    active_.push_back(1);
    if (policy_ == BalancerPolicy::ConsistentHash)
        insertRingPoints(idx);
}

void
EdgeBalancer::setActive(std::size_t replica, bool active)
{
    active_[replica] = active ? 1 : 0;
}

} // namespace ditto::cluster
