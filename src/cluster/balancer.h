/**
 * @file
 * Per-edge replica load balancing.
 *
 * A service that calls a replicated downstream holds one EdgeBalancer
 * per downstream edge. The balancer picks which replica serves each
 * RPC attempt under one of four policies (round-robin,
 * least-outstanding-requests, power-of-two-choices, consistent
 * hashing on the request key), mirroring the client-side balancing of
 * Envoy/Finagle/gRPC. Policies are chosen per edge through
 * ServiceSpec::balancing.
 *
 * Determinism (DESIGN.md §8): every balancer belongs to exactly one
 * calling ServiceInstance and draws randomness (power-of-two only)
 * from its own Rng seeded off the instance seed, so a deployment's
 * routing decisions are a pure function of its seed at any
 * RunExecutor worker count. With a single replica every policy
 * degenerates to "pick replica 0" without drawing randomness, keeping
 * unreplicated deployments bit-identical to the pre-cluster runtime.
 *
 * Liveness is supplied by the caller as a predicate (replica crashed,
 * machine down, replica retired by the autoscaler): the balancer
 * never selects a replica the predicate rejects while at least one
 * replica is acceptable, which is how traffic routes around injected
 * crashes the moment they are visible.
 */

#ifndef DITTO_CLUSTER_BALANCER_H_
#define DITTO_CLUSTER_BALANCER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace ditto::cluster {

/** Replica-selection policy of one caller->callee edge. */
enum class BalancerPolicy : std::uint8_t
{
    RoundRobin,       //!< rotate over live replicas
    LeastOutstanding, //!< fewest requests in flight from this caller
    PowerOfTwo,       //!< two random candidates, pick less loaded
    ConsistentHash,   //!< hash the request key onto a replica ring
    PreferLocal,      //!< round-robin in the caller's region, spill
                      //!< over to remote replicas only when no local
                      //!< replica is usable
};

/** Human-readable policy name. */
const char *balancerPolicyName(BalancerPolicy policy);

/**
 * Balancing configuration of one service, applied to the RPC edges it
 * originates. Like ResilienceSpec this is deployment-side config: it
 * is not part of the serialized clone artifact, and the defaults keep
 * an unreplicated deployment byte-identical to the seed runtime.
 */
struct BalancingSpec
{
    BalancerPolicy defaultPolicy = BalancerPolicy::RoundRobin;
    /** Per-edge overrides, keyed by downstream service name. */
    std::map<std::string, BalancerPolicy> perDownstream;
    /**
     * Per-edge region pins, keyed by downstream service name: the
     * edge only targets replicas in the named region (regardless of
     * policy). Region names are validated against the deployment's
     * region registry at wireAll() time.
     */
    std::map<std::string, std::string> pinRegion;

    BalancerPolicy
    policyFor(const std::string &downstream) const
    {
        auto it = perDownstream.find(downstream);
        return it != perDownstream.end() ? it->second : defaultPolicy;
    }

    /** Region pin of one edge; nullptr when unpinned. */
    const std::string *
    regionPinFor(const std::string &downstream) const
    {
        auto it = pinRegion.find(downstream);
        return it != pinRegion.end() ? &it->second : nullptr;
    }
};

/**
 * Replica selector for one edge. Tracks per-replica outstanding
 * attempts (the caller signals onSend/onDone) and an active flag per
 * replica (cleared when the autoscaler retires one). The caller is
 * one single-threaded simulated deployment, so no locking.
 */
class EdgeBalancer
{
  public:
    static constexpr std::size_t kNoReplica =
        static_cast<std::size_t>(-1);

    EdgeBalancer() = default;

    /** (Re)initialize for `replicas` replicas of one downstream. */
    void init(BalancerPolicy policy, std::size_t replicas,
              std::uint64_t seed);

    /** A replica was added (autoscaler scale-up); starts active. */
    void addReplica();

    /** Retire / reactivate one replica. */
    void setActive(std::size_t replica, bool active);
    bool active(std::size_t replica) const
    {
        return active_[replica] != 0;
    }

    std::size_t replicaCount() const { return outstanding_.size(); }
    BalancerPolicy policy() const { return policy_; }

    /** One attempt was sent to / finished on `replica`. */
    void onSend(std::size_t replica) { outstanding_[replica]++; }
    void
    onDone(std::size_t replica)
    {
        if (outstanding_[replica] > 0)
            outstanding_[replica]--;
    }

    std::uint32_t outstanding(std::size_t replica) const
    {
        return outstanding_[replica];
    }

    /**
     * Pick the replica for one attempt. `alive(i)` must say whether
     * replica i can currently serve (not crashed, machine up); the
     * balancer additionally excludes retired replicas. When no
     * replica is both active and alive the pick falls back to the
     * policy's choice over all replicas -- the attempt will then time
     * out exactly like a call into a crashed singleton service.
     *
     * `key` is the request key (trace id) used by ConsistentHash and
     * ignored by the other policies.
     */
    template <typename AliveFn>
    std::size_t
    pick(std::uint64_t key, AliveFn &&alive)
    {
        // No locality information: PreferLocal degenerates to plain
        // round-robin over usable replicas.
        return pick(key, alive, [](std::size_t) { return false; });
    }

    /**
     * Locality-aware variant: `local(i)` says whether replica i lives
     * in the caller's own region. Only PreferLocal consults it --
     * round-robin over usable local replicas, spilling over to the
     * full usable set when no local replica can serve. Draws no
     * randomness, so region-free runs stay bit-identical.
     */
    template <typename AliveFn, typename LocalFn>
    std::size_t
    pick(std::uint64_t key, AliveFn &&alive, LocalFn &&local)
    {
        const std::size_t n = outstanding_.size();
        if (n <= 1)
            return 0;
        auto usable = [&](std::size_t i) {
            return active_[i] != 0 && alive(i);
        };
        switch (policy_) {
          case BalancerPolicy::RoundRobin:
            return pickRoundRobin(usable);
          case BalancerPolicy::LeastOutstanding:
            return pickLeastOutstanding(usable);
          case BalancerPolicy::PowerOfTwo:
            return pickPowerOfTwo(usable);
          case BalancerPolicy::ConsistentHash:
            return pickConsistentHash(key, usable);
          case BalancerPolicy::PreferLocal: {
            bool anyLocal = false;
            for (std::size_t i = 0; i < n && !anyLocal; ++i)
                anyLocal = usable(i) && local(i);
            if (anyLocal)
                return pickRoundRobin([&](std::size_t i) {
                    return usable(i) && local(i);
                });
            return pickRoundRobin(usable);
          }
        }
        return 0;
    }

  private:
    BalancerPolicy policy_ = BalancerPolicy::RoundRobin;
    std::vector<std::uint32_t> outstanding_;
    std::vector<std::uint8_t> active_;
    std::size_t rr_ = 0;
    std::uint64_t seed_ = 0;
    sim::Rng rng_{0};
    /** Consistent-hash ring: (point, replica), sorted by point. */
    std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;

    void insertRingPoints(std::uint32_t replica);

    template <typename UsableFn>
    std::size_t
    pickRoundRobin(UsableFn &&usable)
    {
        const std::size_t n = outstanding_.size();
        for (std::size_t t = 0; t < n; ++t) {
            const std::size_t i = (rr_ + t) % n;
            if (usable(i)) {
                rr_ = i + 1;
                return i;
            }
        }
        const std::size_t fallback = rr_ % n;
        rr_++;
        return fallback;
    }

    template <typename UsableFn>
    std::size_t
    pickLeastOutstanding(UsableFn &&usable)
    {
        const std::size_t n = outstanding_.size();
        std::size_t best = kNoReplica;
        for (std::size_t i = 0; i < n; ++i) {
            if (!usable(i))
                continue;
            if (best == kNoReplica ||
                outstanding_[i] < outstanding_[best]) {
                best = i;
            }
        }
        return best != kNoReplica ? best : 0;
    }

    template <typename UsableFn>
    std::size_t
    pickPowerOfTwo(UsableFn &&usable)
    {
        const std::size_t n = outstanding_.size();
        const auto a =
            static_cast<std::size_t>(rng_.uniformInt(n));
        const auto b =
            static_cast<std::size_t>(rng_.uniformInt(n));
        const bool aOk = usable(a);
        const bool bOk = usable(b);
        if (aOk && bOk) {
            if (outstanding_[a] != outstanding_[b])
                return outstanding_[a] < outstanding_[b] ? a : b;
            return a < b ? a : b;
        }
        if (aOk)
            return a;
        if (bOk)
            return b;
        // Both candidates dead: degrade to least-outstanding so a
        // single surviving replica still gets the traffic.
        return pickLeastOutstanding(usable);
    }

    template <typename UsableFn>
    std::size_t
    pickConsistentHash(std::uint64_t key, UsableFn &&usable)
    {
        if (ring_.empty())
            return 0;
        const std::uint64_t h = hashPoint(key);
        std::size_t lo = 0;
        std::size_t hi = ring_.size();
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (ring_[mid].first < h)
                lo = mid + 1;
            else
                hi = mid;
        }
        // Walk clockwise to the first usable owner.
        for (std::size_t t = 0; t < ring_.size(); ++t) {
            const auto &node = ring_[(lo + t) % ring_.size()];
            if (usable(node.second))
                return node.second;
        }
        return ring_[lo % ring_.size()].second;
    }

    static std::uint64_t hashPoint(std::uint64_t x);
};

} // namespace ditto::cluster

#endif // DITTO_CLUSTER_BALANCER_H_
