#include "cluster/autoscaler.h"

#include "app/deployment.h"
#include "obs/metrics.h"

namespace ditto::cluster {

Autoscaler::Autoscaler(app::Deployment &dep, ReplicaSet &set,
                       obs::MetricsRegistry &metrics,
                       AutoscalerSpec spec)
    : dep_(dep), set_(set), metrics_(metrics), spec_(spec)
{
    const obs::MetricsRegistry::Labels labels{
        {"service", set_.name()}};
    scaleUps_ = &metrics_.counter(
        "ditto_autoscaler_scale_ups_total", labels,
        "Replicas added by the autoscaler");
    scaleDowns_ = &metrics_.counter(
        "ditto_autoscaler_scale_downs_total", labels,
        "Replicas retired by the autoscaler");
    ReplicaSet *watched = &set_;
    metrics_.addGaugeFn("ditto_autoscaler_replicas", labels,
                        "Active replicas under autoscaling",
                        [watched] {
                            return static_cast<double>(
                                watched->active());
                        });
}

void
Autoscaler::start()
{
    dep_.events().scheduleAfter(spec_.period, [this] { tick(); });
}

void
Autoscaler::tick()
{
    stats_.evaluations++;
    const sim::Time now = dep_.events().now();
    const auto &group = dep_.replicas(set_.serviceId());
    const std::size_t active = set_.active();

    // Window p95 across the group: merge the replicas' cumulative
    // histograms and diff against the previous evaluation's merge.
    stats::LatencyHistogram merged;
    for (std::size_t i = 0; i < group.size(); ++i) {
        const stats::LatencyHistogram *h = metrics_.findHistogram(
            "ditto_service_request_latency_ns",
            {{"service", group[i]->instanceLabel()}});
        if (h)
            merged.merge(*h);
        else
            merged.merge(group[i]->stats().latency);
    }
    const stats::LatencyHistogram window = merged.since(baseline_);
    baseline_ = merged;
    const bool windowValid = window.count() >= spec_.minWindowSamples;
    const std::uint64_t p95 = window.percentile(0.95);

    double queueSum = 0.0;
    for (std::size_t i = 0; i < active && i < group.size(); ++i) {
        queueSum += metrics_.readGauge(
            "ditto_service_inbound_queue_depth",
            {{"service", group[i]->instanceLabel()}});
    }
    const double queueMean =
        active > 0 ? queueSum / static_cast<double>(active) : 0.0;

    const bool cooled =
        !everActed_ || now - lastAction_ >= spec_.cooldown;
    if (cooled) {
        const bool p95High = spec_.p95HighNs > 0 && windowValid &&
            p95 > spec_.p95HighNs;
        const bool queueHigh =
            spec_.queueHigh > 0 && queueMean > spec_.queueHigh;
        const bool p95LowOk = spec_.p95LowNs == 0 ||
            (windowValid && p95 < spec_.p95LowNs);
        const bool queueLowOk =
            spec_.queueLow <= 0 || queueMean < spec_.queueLow;

        if ((p95High || queueHigh) && active < spec_.maxReplicas) {
            set_.scaleTo(active + 1);
            recordAction(true, now);
        } else if (p95LowOk && queueLowOk &&
                   (spec_.p95LowNs > 0 || spec_.queueLow > 0) &&
                   active > spec_.minReplicas) {
            set_.scaleTo(active - 1);
            recordAction(false, now);
        }
    }

    dep_.events().scheduleAfter(spec_.period, [this] { tick(); });
}

void
Autoscaler::recordAction(bool up, sim::Time now)
{
    lastAction_ = now;
    everActed_ = true;
    if (up) {
        stats_.scaleUps++;
        scaleUps_->add();
    } else {
        stats_.scaleDowns++;
        scaleDowns_->add();
    }
    // Scaling decisions travel the trace pipeline like request spans:
    // the endpoint field carries the new active count.
    trace::Tracer &tracer = dep_.tracer();
    tracer.recordSpan(trace::Span{
        stats_.evaluations, tracer.newSpanId(), 0,
        "autoscaler:" + set_.name(),
        static_cast<std::uint32_t>(set_.active()), now, now});
}

} // namespace ditto::cluster
