#include "cluster/placer.h"

#include <map>
#include <stdexcept>
#include <string>

#include "os/machine.h"

namespace ditto::cluster {

void
Placer::addMachine(os::Machine &machine, unsigned capacity)
{
    slots_.push_back(Slot{&machine, capacity > 0 ? capacity : 1, 0});
}

template <typename PredFn>
Placer::Slot *
Placer::bestSlot(PredFn &&eligible)
{
    // Best fit: most free slots. With every machine full, "free" goes
    // negative and the same comparison picks the least-overcommitted
    // machine.
    Slot *best = nullptr;
    for (Slot &s : slots_) {
        if (!eligible(s))
            continue;
        if (!best) {
            best = &s;
            continue;
        }
        const int freeBest = static_cast<int>(best->capacity) -
            static_cast<int>(best->used);
        const int freeHere = static_cast<int>(s.capacity) -
            static_cast<int>(s.used);
        if (freeHere > freeBest)
            best = &s;
    }
    return best;
}

os::Machine &
Placer::commit(Slot &slot)
{
    if (slot.used >= slot.capacity)
        overcommitted_++;
    slot.used++;
    return *slot.machine;
}

os::Machine &
Placer::place()
{
    if (slots_.empty())
        throw std::runtime_error("placer: no machines registered");
    return commit(*bestSlot([](const Slot &) { return true; }));
}

os::Machine &
Placer::placeInRegion(std::uint32_t regionId)
{
    Slot *best = bestSlot([&](const Slot &s) {
        return s.machine->regionId() == regionId;
    });
    if (!best)
        throw std::runtime_error(
            "placer: no machines registered in region " +
            std::to_string(regionId));
    return commit(*best);
}

os::Machine &
Placer::placeSpread()
{
    if (slots_.empty())
        throw std::runtime_error("placer: no machines registered");
    // Pick the region with the most total free slots (lowest region
    // id wins ties; std::map iteration gives that for free), then
    // best-fit within it.
    std::map<std::uint32_t, int> freeByRegion;
    for (const Slot &s : slots_)
        freeByRegion[s.machine->regionId()] +=
            static_cast<int>(s.capacity) - static_cast<int>(s.used);
    std::uint32_t bestRegion = freeByRegion.begin()->first;
    int bestFree = freeByRegion.begin()->second;
    for (const auto &[region, free] : freeByRegion) {
        if (free > bestFree) {
            bestRegion = region;
            bestFree = free;
        }
    }
    return placeInRegion(bestRegion);
}

void
Placer::release(os::Machine &machine)
{
    for (Slot &s : slots_) {
        if (s.machine == &machine && s.used > 0) {
            s.used--;
            return;
        }
    }
}

unsigned
Placer::used(const os::Machine &machine) const
{
    for (const Slot &s : slots_) {
        if (s.machine == &machine)
            return s.used;
    }
    return 0;
}

} // namespace ditto::cluster
