#include "cluster/placer.h"

#include <stdexcept>

namespace ditto::cluster {

void
Placer::addMachine(os::Machine &machine, unsigned capacity)
{
    slots_.push_back(Slot{&machine, capacity > 0 ? capacity : 1, 0});
}

os::Machine &
Placer::place()
{
    if (slots_.empty())
        throw std::runtime_error("placer: no machines registered");
    // Best fit: most free slots. With every machine full, "free" goes
    // negative and the same comparison picks the least-overcommitted
    // machine.
    Slot *best = nullptr;
    for (Slot &s : slots_) {
        if (!best) {
            best = &s;
            continue;
        }
        const int freeBest = static_cast<int>(best->capacity) -
            static_cast<int>(best->used);
        const int freeHere = static_cast<int>(s.capacity) -
            static_cast<int>(s.used);
        if (freeHere > freeBest)
            best = &s;
    }
    if (best->used >= best->capacity)
        overcommitted_++;
    best->used++;
    return *best->machine;
}

void
Placer::release(os::Machine &machine)
{
    for (Slot &s : slots_) {
        if (s.machine == &machine && s.used > 0) {
            s.used--;
            return;
        }
    }
}

unsigned
Placer::used(const os::Machine &machine) const
{
    for (const Slot &s : slots_) {
        if (s.machine == &machine)
            return s.used;
    }
    return 0;
}

} // namespace ditto::cluster
