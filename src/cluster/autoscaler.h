/**
 * @file
 * Metrics-driven autoscaler for one ReplicaSet.
 *
 * A periodic control loop on the deployment's event queue samples the
 * MetricsRegistry -- the same pull series operators would watch -- and
 * adjusts the replica count:
 *
 *   - p95 request latency over the last evaluation window, computed
 *     from the replicas' cumulative latency histograms via
 *     LatencyHistogram::since(baseline) after merging the group;
 *   - mean inbound queue depth per active replica, from the
 *     ditto_service_inbound_queue_depth gauges.
 *
 * Control law: breach of any high watermark scales up by one; only
 * when every enabled signal sits below its low watermark does the
 * loop scale down by one. Scaling actions are separated by a cooldown
 * so the loop reacts to the *consequences* of its last action, not to
 * the window that triggered it. Bounds [minReplicas, maxReplicas]
 * always win.
 *
 * Every action increments an owned counter
 * (ditto_autoscaler_scale_{ups,downs}_total{service=...}) and records
 * a Span with service "autoscaler:<group>" whose endpoint field
 * carries the new active count -- scaling decisions ride the same
 * Jaeger export/import path as request spans.
 *
 * Determinism: the loop runs inside the simulation's event queue and
 * reads only deployment-owned state, so its decisions are a pure
 * function of the deployment seed (DESIGN.md §8).
 */

#ifndef DITTO_CLUSTER_AUTOSCALER_H_
#define DITTO_CLUSTER_AUTOSCALER_H_

#include <cstdint>
#include <string>

#include "cluster/replica_set.h"
#include "sim/time.h"
#include "stats/histogram.h"

namespace ditto::app {
class Deployment;
} // namespace ditto::app

namespace ditto::obs {
class Counter;
class MetricsRegistry;
} // namespace ditto::obs

namespace ditto::cluster {

struct AutoscalerSpec
{
    /** Evaluation period of the control loop. */
    sim::Time period = sim::milliseconds(20);
    /** Minimum spacing between two scaling actions. */
    sim::Time cooldown = sim::milliseconds(60);
    /** Scale up when window p95 exceeds this (ns; 0 disables). */
    std::uint64_t p95HighNs = 0;
    /** Allow scale-down only when window p95 is below (0 disables). */
    std::uint64_t p95LowNs = 0;
    /** Scale up when mean queue depth per replica exceeds this. */
    double queueHigh = 0.0;
    /** Allow scale-down only when mean queue depth is below this. */
    double queueLow = 0.0;
    /** Ignore latency windows with fewer samples than this. */
    std::uint64_t minWindowSamples = 16;
    std::size_t minReplicas = 1;
    std::size_t maxReplicas = 8;
};

class Autoscaler
{
  public:
    struct Stats
    {
        std::uint64_t evaluations = 0;
        std::uint64_t scaleUps = 0;
        std::uint64_t scaleDowns = 0;
    };

    /**
     * Watch `set` through `metrics`. Registers its own counters and a
     * replica-count gauge on construction; call start() after wireAll
     * to begin evaluating.
     */
    Autoscaler(app::Deployment &dep, ReplicaSet &set,
               obs::MetricsRegistry &metrics, AutoscalerSpec spec);

    /** Schedule the first evaluation one period from now. */
    void start();

    const Stats &stats() const { return stats_; }
    const AutoscalerSpec &spec() const { return spec_; }

  private:
    app::Deployment &dep_;
    ReplicaSet &set_;
    obs::MetricsRegistry &metrics_;
    AutoscalerSpec spec_;
    Stats stats_;
    obs::Counter *scaleUps_ = nullptr;
    obs::Counter *scaleDowns_ = nullptr;
    /** Merged-group latency histogram at the last evaluation. */
    stats::LatencyHistogram baseline_;
    sim::Time lastAction_ = 0;
    bool everActed_ = false;

    void tick();
    void recordAction(bool up, sim::Time start);
};

} // namespace ditto::cluster

#endif // DITTO_CLUSTER_AUTOSCALER_H_
