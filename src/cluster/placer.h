/**
 * @file
 * Capacity-aware replica placement.
 *
 * The Placer spreads replicas across a deployment's machines by
 * best-fit bin-packing: each machine advertises a slot capacity and
 * every placement goes to the machine with the most free slots
 * (earliest-registered wins ties, so placement is a pure function of
 * the call sequence -- deterministic at any RunExecutor worker
 * count). When every machine is full the placer overcommits the
 * least-loaded machine rather than failing: the simulation degrades
 * the way a real oversubscribed cluster does, by queueing, and the
 * overcommit count is visible for tests and metrics.
 */

#ifndef DITTO_CLUSTER_PLACER_H_
#define DITTO_CLUSTER_PLACER_H_

#include <cstdint>
#include <vector>

namespace ditto::os {
class Machine;
} // namespace ditto::os

namespace ditto::cluster {

class Placer
{
  public:
    Placer() = default;

    /** Register a machine with `capacity` replica slots (>= 1). */
    void addMachine(os::Machine &machine, unsigned capacity);

    /**
     * Pick the machine for the next replica (see file comment) and
     * charge one slot to it.
     * @throws std::runtime_error when no machine is registered.
     */
    os::Machine &place();

    /**
     * Best-fit placement restricted to machines of one region.
     * @throws std::runtime_error when the region has no machines.
     */
    os::Machine &placeInRegion(std::uint32_t regionId);

    /**
     * Region-aware spread: place in the region with the most free
     * slots (lowest region id wins ties), best-fit within it.
     * Successive placements therefore rotate across regions, which is
     * how replicated services survive a whole-region outage.
     */
    os::Machine &placeSpread();

    /** Release one slot on `machine` (replica torn down). */
    void release(os::Machine &machine);

    /** Slots currently charged to `machine` (0 if unknown). */
    unsigned used(const os::Machine &machine) const;

    /** Placements made while every machine was at capacity. */
    unsigned overcommitted() const { return overcommitted_; }

    std::size_t machineCount() const { return slots_.size(); }

  private:
    struct Slot
    {
        os::Machine *machine = nullptr;
        unsigned capacity = 1;
        unsigned used = 0;
    };

    std::vector<Slot> slots_;
    unsigned overcommitted_ = 0;

    template <typename PredFn>
    Slot *bestSlot(PredFn &&eligible);

    os::Machine &commit(Slot &slot);
};

} // namespace ditto::cluster

#endif // DITTO_CLUSTER_PLACER_H_
