#include "cluster/replica_set.h"

#include <stdexcept>

#include "app/deployment.h"
#include "obs/register.h"

namespace ditto::cluster {

ReplicaSet::ReplicaSet(app::Deployment &dep, std::string name,
                       Placer &placer, obs::MetricsRegistry *metrics)
    : dep_(dep), name_(std::move(name)),
      serviceId_(dep.serviceId(name_)), placer_(placer),
      metrics_(metrics)
{
    if (serviceId_ == app::Deployment::kNoServiceId) {
        throw std::runtime_error(
            "replica set: service '" + name_ + "' is not deployed");
    }
    active_ = dep_.replicas(serviceId_).size();
}

std::size_t
ReplicaSet::total() const
{
    return dep_.replicas(serviceId_).size();
}

std::size_t
ReplicaSet::scaleTo(std::size_t target)
{
    if (target < 1)
        target = 1;
    while (active_ < target) {
        if (active_ < total()) {
            // A retired instance is still warm: route to it again.
            dep_.setReplicaActive(serviceId_, active_, true);
        } else {
            app::ServiceInstance &replica =
                dep_.addReplica(name_, placer_.place());
            if (metrics_)
                obs::registerServiceMetrics(*metrics_, replica);
        }
        active_++;
    }
    while (active_ > target) {
        active_--;
        dep_.setReplicaActive(serviceId_, active_, false);
    }
    return active_;
}

} // namespace ditto::cluster
