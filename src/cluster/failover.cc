#include "cluster/failover.h"

#include <algorithm>

#include "app/deployment.h"
#include "obs/metrics.h"

namespace ditto::cluster {

RegionFailoverMonitor::RegionFailoverMonitor(
    app::Deployment &dep, std::string group,
    obs::MetricsRegistry &metrics, RegionFailoverSpec spec)
    : dep_(dep), group_(std::move(group)),
      groupId_(dep.serviceId(group_)), metrics_(metrics), spec_(spec)
{
    // One state entry (and counter pair) per region hosting a replica
    // of the group, in region-id order so registration is a pure
    // function of the deployment.
    std::vector<std::uint32_t> regions;
    for (app::ServiceInstance *r : dep_.replicas(groupId_)) {
        const std::uint32_t id = r->machine().regionId();
        if (std::find(regions.begin(), regions.end(), id) ==
            regions.end())
            regions.push_back(id);
    }
    std::sort(regions.begin(), regions.end());
    for (std::uint32_t id : regions) {
        RegionState rs;
        rs.region = id;
        const obs::MetricsRegistry::Labels labels{
            {"service", group_}, {"region", dep_.regionName(id)}};
        rs.failovers = &metrics_.counter(
            "ditto_region_failover_total", labels,
            "Regions failed over (replicas retired after the region "
            "went dark)");
        rs.recoveries = &metrics_.counter(
            "ditto_region_failover_recoveries_total", labels,
            "Failed-over regions reactivated after recovery");
        regions_.push_back(rs);
    }
    const obs::MetricsRegistry::Labels labels{{"service", group_}};
    RegionFailoverMonitor *self = this;
    metrics_.addGaugeFn(
        "ditto_region_failover_rto_ns", labels,
        "Detection-to-reroute interval of the last failover",
        [self] { return static_cast<double>(self->stats_.lastRtoNs); });
    metrics_.addGaugeFn(
        "ditto_region_failover_dark_regions", labels,
        "Regions currently failed over",
        [self] { return static_cast<double>(self->darkRegions()); });
}

void
RegionFailoverMonitor::start()
{
    dep_.events().scheduleAfter(spec_.period, [this] { tick(); });
}

std::size_t
RegionFailoverMonitor::darkRegions() const
{
    std::size_t n = 0;
    for (const RegionState &rs : regions_)
        n += rs.failedOver ? 1 : 0;
    return n;
}

bool
RegionFailoverMonitor::replicaDark(app::ServiceInstance *replica) const
{
    if (replica->down() || replica->machine().down())
        return true;
    const std::uint32_t region = replica->machine().regionId();
    return region != spec_.viewRegion &&
        dep_.network().regionPartitioned(spec_.viewRegion, region);
}

void
RegionFailoverMonitor::tick()
{
    stats_.evaluations++;
    const sim::Time now = dep_.events().now();
    const auto &group = dep_.replicas(groupId_);
    for (RegionState &rs : regions_) {
        bool hosts = false;
        bool allDark = true;
        for (app::ServiceInstance *r : group) {
            if (r->machine().regionId() != rs.region)
                continue;
            hosts = true;
            if (!replicaDark(r)) {
                allDark = false;
                break;
            }
        }
        if (!hosts)
            continue;
        if (allDark) {
            if (rs.darkTicks == 0)
                rs.darkSince = now;
            rs.darkTicks++;
            if (!rs.failedOver &&
                rs.darkTicks >= spec_.failureThreshold)
                failOver(rs, now);
        } else {
            if (rs.failedOver)
                recover(rs, now);
            rs.darkTicks = 0;
        }
    }
    dep_.events().scheduleAfter(spec_.period, [this] { tick(); });
}

void
RegionFailoverMonitor::failOver(RegionState &rs, sim::Time now)
{
    const auto &group = dep_.replicas(groupId_);
    for (std::size_t i = 0; i < group.size(); ++i) {
        if (group[i]->machine().regionId() == rs.region)
            dep_.setReplicaActive(groupId_, i, false);
    }
    rs.failedOver = true;
    stats_.failovers++;
    stats_.lastRtoNs = now - rs.darkSince;
    rs.failovers->add();
    // The failover decision travels the trace pipeline like request
    // and autoscaler spans: endpoint carries the region id and the
    // span interval is the detection-to-reroute RTO.
    trace::Tracer &tracer = dep_.tracer();
    tracer.recordSpan(trace::Span{stats_.evaluations,
                                  tracer.newSpanId(), 0,
                                  "failover:" + group_, rs.region,
                                  rs.darkSince, now});
}

void
RegionFailoverMonitor::recover(RegionState &rs, sim::Time now)
{
    (void)now;
    const auto &group = dep_.replicas(groupId_);
    for (std::size_t i = 0; i < group.size(); ++i) {
        if (group[i]->machine().regionId() == rs.region)
            dep_.setReplicaActive(groupId_, i, true);
    }
    rs.failedOver = false;
    stats_.recoveries++;
    rs.recoveries->add();
}

} // namespace ditto::cluster
