#include "cluster/region.h"

#include <algorithm>

#include "app/deployment.h"
#include "hw/platform.h"
#include "os/network.h"
#include "sim/rng.h"

namespace ditto::cluster {

std::vector<std::uint32_t>
buildRegions(app::Deployment &dep,
             const std::vector<RegionSpec> &regions,
             const WanProfile &wan)
{
    std::vector<std::uint32_t> ids;
    ids.reserve(regions.size());
    for (const RegionSpec &r : regions)
        ids.push_back(dep.defineRegion(r.name));

    auto idx = static_cast<unsigned>(dep.machines().size());
    for (const RegionSpec &r : regions) {
        for (unsigned k = 0; k < std::max(1u, r.machines); ++k) {
            dep.addMachine("m" + std::to_string(idx++),
                           hw::platformA(), r.name);
        }
    }

    for (std::uint32_t a : ids) {
        for (std::uint32_t b : ids) {
            if (a == b)
                continue;
            // Per-directed-pair latency and burst seed, derived from
            // the profile seed alone.
            std::uint64_t state = wan.seed ^
                (std::uint64_t{a} << 32) ^ b ^ 0xd1770ull;
            os::WanLinkSpec spec;
            spec.latency = wan.baseLatency;
            if (wan.latencySpread > 0)
                spec.latency += static_cast<sim::Time>(
                    sim::splitmix64(state) %
                    static_cast<std::uint64_t>(wan.latencySpread));
            spec.bytesPerNs = wan.bytesPerNs;
            spec.burstMeanInterval = wan.burstMeanInterval;
            spec.burstLength = wan.burstLength;
            spec.burstDropProb = wan.burstDropProb;
            spec.burstSeed = sim::splitmix64(state);
            dep.network().setWanLink(a, b, spec);
        }
    }
    return ids;
}

} // namespace ditto::cluster
