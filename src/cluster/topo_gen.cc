#include "cluster/topo_gen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "app/deployment.h"
#include "cluster/placer.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "sim/rng.h"

namespace ditto::cluster {

namespace {

std::string
serviceName(unsigned idx)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "s%04u", idx);
    return buf;
}

std::string
backendName(unsigned idx)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "db%u", idx);
    return buf;
}

/**
 * Pareto-tailed fan-out count: floor(u^(-1/alpha) - 1), so most draws
 * are 0-2 while occasional services become large aggregators. Capped
 * by the caller against the available deeper population.
 */
unsigned
heavyTailCount(sim::Rng &rng, double alpha)
{
    const double u = std::max(rng.uniform(), 1e-12);
    const double x = std::pow(u, -1.0 / alpha) - 1.0;
    return x >= 64.0 ? 64u : static_cast<unsigned>(x);
}

} // namespace

GeneratedTopology
generateTopology(const TopoSpec &spec)
{
    GeneratedTopology topo;
    const unsigned n = std::max(1u, spec.services);
    const unsigned depth =
        n == 1 ? 1 : std::max(2u, std::min(spec.depth, n));
    sim::Rng rng(spec.seed ^ 0x70b0617e5ull);

    std::vector<std::vector<unsigned>> downstreamOf(n);
    auto addEdge = [&](unsigned from, unsigned to) {
        auto &list = downstreamOf[from];
        if (std::find(list.begin(), list.end(), to) != list.end())
            return;
        list.push_back(to);
        topo.edges++;
    };

    // Tree construction: every non-root service hangs off one
    // earlier-built parent, capped at maxChildren tree children so no
    // service's fan-in grows with the topology; its level is the
    // parent's plus one. Root-reachable by induction, and every edge
    // points strictly deeper, so the graph stays acyclic even after
    // the extra edges below.
    topo.level.assign(n, 0);
    const unsigned maxKids = std::max(1u, spec.maxChildren);
    std::vector<unsigned> treeKids(n, 0);
    std::vector<unsigned> cands;
    for (unsigned i = 1; i < n; ++i) {
        cands.clear();
        for (unsigned j = 0; j < i; ++j) {
            if (topo.level[j] + 1 < depth && treeKids[j] < maxKids)
                cands.push_back(j);
        }
        if (cands.empty()) {
            // Capped tree full: overflow the cap, not the depth.
            for (unsigned j = 0; j < i; ++j) {
                if (topo.level[j] + 1 < depth)
                    cands.push_back(j);
            }
        }
        const unsigned parent = cands[static_cast<std::size_t>(
            rng.uniformInt(cands.size()))];
        treeKids[parent]++;
        topo.level[i] = topo.level[parent] + 1;
        addEdge(parent, i);
    }

    // Diamond dependencies: a second parent one level up, so two
    // paths from a common ancestor reconverge on the same callee.
    // Gated on the knob so default topologies draw nothing here.
    if (spec.diamondProbability > 0.0) {
        for (unsigned i = 1; i < n; ++i) {
            if (topo.level[i] < 2)
                continue;
            if (rng.uniform() >= spec.diamondProbability)
                continue;
            cands.clear();
            for (unsigned j = 0; j < n; ++j) {
                if (topo.level[j] + 1 == topo.level[i])
                    cands.push_back(j);
            }
            if (cands.empty())
                continue;
            addEdge(cands[static_cast<std::size_t>(
                        rng.uniformInt(cands.size()))],
                    i);
        }
    }

    // Extra fan-out edges, also strictly deeper.
    for (unsigned i = 0; i < n; ++i) {
        std::vector<unsigned> deeper;
        for (unsigned j = 1; j < n; ++j) {
            if (topo.level[j] > topo.level[i])
                deeper.push_back(j);
        }
        if (deeper.empty())
            continue;
        const auto extra = spec.fanoutTailAlpha > 0.0
            ? heavyTailCount(rng, spec.fanoutTailAlpha)
            : static_cast<unsigned>(
                  rng.uniformInt(std::uint64_t{spec.extraFanout} + 1));
        for (unsigned e = 0; e < extra; ++e) {
            addEdge(i, deeper[static_cast<std::size_t>(
                           rng.uniformInt(deeper.size()))]);
        }
    }

    // Shared stateful backends: every leaf calls one sampled backend
    // per request, converging the call paths the way production
    // databases and caches do. Also knob-gated draws.
    const unsigned nBackends =
        n > 1 ? spec.sharedBackends : 0;
    std::vector<int> backendOf(n, -1);
    if (nBackends > 0) {
        for (unsigned i = 0; i < n; ++i) {
            if (!downstreamOf[i].empty())
                continue;
            backendOf[i] = static_cast<int>(
                rng.uniformInt(std::uint64_t{nBackends}));
            topo.edges++;
        }
    }

    // Emit the specs.
    topo.specs.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        app::ServiceSpec s;
        s.name = serviceName(i);
        // The root fronts the whole tree; give it a wider pool so the
        // interesting bottleneck is the topology, not its own intake.
        s.threads.workers = i == 0
            ? std::max(8u, spec.workersPerService * 4)
            : std::max(1u, spec.workersPerService);
        if (spec.rpcDeadline > 0)
            s.resilience.rpcDeadline = spec.rpcDeadline;

        hw::BlockSpec bs;
        bs.label = s.name + ".h";
        bs.instCount = std::max(1u, spec.handlerInsts);
        bs.seed = spec.seed ^ (0x5eedb10cull + i);
        s.blocks.push_back(hw::buildBlock(bs));

        for (unsigned d : downstreamOf[i])
            s.downstreams.push_back(serviceName(d));
        const bool multi = s.downstreams.size() > 1;
        if (multi && rng.uniform() < spec.asyncFraction)
            s.clientModel = app::ClientModel::Async;

        app::EndpointSpec ep;
        ep.name = "req";
        ep.handler.ops.push_back(app::opCompute(0, 2, 6));
        if (s.downstreams.empty()) {
            if (rng.uniform() < spec.leafFileFraction) {
                s.fileBytes.push_back(std::uint64_t{64} << 10);
                ep.handler.ops.push_back(
                    app::opFileRead(0, 256, 4096));
            }
        } else if (s.clientModel == app::ClientModel::Async) {
            std::vector<app::RpcCallSpec> calls;
            const auto cap = static_cast<std::uint32_t>(std::min(
                s.downstreams.size(),
                std::size_t{std::max(1u, spec.maxAsyncFanout)}));
            for (std::uint32_t t = 0; t < cap; ++t)
                calls.push_back(app::RpcCallSpec{t, 0, 128, 256});
            ep.handler.ops.push_back(app::opRpcFanout(calls));
        } else {
            // First downstream on every request; each extra edge only
            // with extraCallProbability, so the call tree stays
            // bounded as the graph grows.
            ep.handler.ops.push_back(app::opRpc(0, 0, 128, 256));
            const double p =
                std::clamp(spec.extraCallProbability, 0.0, 1.0);
            for (std::uint32_t t = 1; t < s.downstreams.size(); ++t) {
                if (p >= 1.0) {
                    ep.handler.ops.push_back(
                        app::opRpc(t, 0, 128, 256));
                    continue;
                }
                if (p <= 0.0)
                    continue;
                app::Program arm;
                arm.ops.push_back(app::opRpc(t, 0, 128, 256));
                ep.handler.ops.push_back(app::opChoice(
                    {p, 1.0 - p}, {arm, app::Program{}}));
            }
        }
        if (backendOf[i] >= 0) {
            s.downstreams.push_back(
                backendName(static_cast<unsigned>(backendOf[i])));
            ep.handler.ops.push_back(app::opRpc(
                static_cast<std::uint32_t>(s.downstreams.size() - 1),
                0, 128, 256));
        }
        ep.handler.ops.push_back(app::opCompute(0, 1, 3));
        s.endpoints.push_back(std::move(ep));
        // Extra entry queries: same call pattern as endpoint 0 with
        // progressively heavier compute and larger responses. No Rng
        // draws, so the knob leaves default topologies untouched.
        for (unsigned q = 1; q < spec.endpointsPerService; ++q) {
            app::EndpointSpec extra = s.endpoints.front();
            extra.name = "req" + std::to_string(q);
            extra.handler.ops.insert(
                extra.handler.ops.begin(),
                app::opCompute(0, 1 + q, 3 + 3 * q));
            const unsigned shift = q < 4 ? q : 4;
            extra.responseBytesMin = extra.responseBytesMax =
                64u << shift;
            s.endpoints.push_back(std::move(extra));
        }
        topo.specs.push_back(std::move(s));
    }

    // The shared backends themselves: lock-serialized file state with
    // a prewarmed working set.
    topo.backends = nBackends;
    for (unsigned b = 0; b < nBackends; ++b) {
        app::ServiceSpec s;
        s.name = backendName(b);
        s.threads.workers = std::max(2u, spec.workersPerService);
        if (spec.rpcDeadline > 0)
            s.resilience.rpcDeadline = spec.rpcDeadline;
        hw::BlockSpec bs;
        bs.label = s.name + ".h";
        bs.instCount = std::max(1u, spec.handlerInsts);
        bs.seed = spec.seed ^ (0xdb5eedull + b);
        s.blocks.push_back(hw::buildBlock(bs));
        s.locks = 1;
        s.fileBytes.push_back(std::uint64_t{256} << 10);
        s.filePrewarmFraction = 0.5;
        app::EndpointSpec ep;
        ep.name = "req";
        ep.handler.ops.push_back(app::opCompute(0, 1, 3));
        ep.handler.ops.push_back(app::opLock(0));
        ep.handler.ops.push_back(app::opFileRead(0, 256, 4096));
        ep.handler.ops.push_back(app::opUnlock(0));
        s.endpoints.push_back(std::move(ep));
        topo.level.push_back(depth);
        topo.specs.push_back(std::move(s));
    }
    return topo;
}

app::ServiceInstance &
deployTopology(app::Deployment &dep, const GeneratedTopology &topo,
               unsigned machineCount)
{
    machineCount = std::max(1u, machineCount);
    const auto slots = static_cast<unsigned>(
        (topo.specs.size() + machineCount - 1) / machineCount);
    Placer placer;
    for (unsigned m = 0; m < machineCount; ++m) {
        placer.addMachine(
            dep.addMachine("m" + std::to_string(m), hw::platformA()),
            slots);
    }
    for (const app::ServiceSpec &s : topo.specs)
        dep.deploy(s, placer.place());
    dep.wireAll();
    return *dep.find(topo.specs.front().name);
}

} // namespace ditto::cluster
