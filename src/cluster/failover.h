/**
 * @file
 * Region failover control loop for one replica group.
 *
 * A periodic loop on the deployment's event queue watches where every
 * replica of one service group lives and declares a region *dark*
 * when all of its replicas are unreachable from the monitor's own
 * region: instance crashed, machine down, or the region pair
 * hard-partitioned by a fault window. After `failureThreshold`
 * consecutive dark evaluations the monitor fails the region over --
 * it retires the region's replicas in every upstream balancer
 * (Deployment::setReplicaActive), so traffic re-routes to the
 * surviving regions -- and records the detection-to-reroute interval
 * (RTO):
 *
 *   - ditto_region_failover_total{service,region} and
 *     ditto_region_failover_recoveries_total{service,region} owned
 *     counters, plus last-RTO and dark-region gauges;
 *   - a Span with service "failover:<group>" whose endpoint field
 *     carries the region id and whose [start, end) interval *is* the
 *     RTO -- failover decisions ride the same Jaeger export/import
 *     path as request and autoscaler spans.
 *
 * When the region becomes reachable again the monitor reactivates its
 * replicas and counts a recovery.
 *
 * Determinism: the loop runs inside the simulation's event queue and
 * reads only deployment-owned state, so failover timing and the
 * measured RTO are a pure function of the deployment seed and the
 * fault plan (DESIGN.md §8).
 */

#ifndef DITTO_CLUSTER_FAILOVER_H_
#define DITTO_CLUSTER_FAILOVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ditto::app {
class Deployment;
class ServiceInstance;
} // namespace ditto::app

namespace ditto::obs {
class Counter;
class MetricsRegistry;
} // namespace ditto::obs

namespace ditto::cluster {

struct RegionFailoverSpec
{
    /** Evaluation period of the control loop. */
    sim::Time period = sim::milliseconds(5);
    /** Consecutive dark evaluations before failing a region over. */
    unsigned failureThreshold = 2;
    /**
     * Region the monitor observes from: a partition between this
     * region and a replica's region makes that replica look dark,
     * exactly like a health-checking control plane homed there.
     */
    std::uint32_t viewRegion = 0;
};

class RegionFailoverMonitor
{
  public:
    struct Stats
    {
        std::uint64_t evaluations = 0;
        std::uint64_t failovers = 0;
        std::uint64_t recoveries = 0;
        /** Detection-to-reroute interval of the last failover. */
        sim::Time lastRtoNs = 0;
    };

    /**
     * Watch replica group `group` through `metrics`. Registers its
     * counters and gauges on construction (one counter pair per
     * region hosting a replica at that point); call start() after
     * wireAll to begin evaluating.
     */
    RegionFailoverMonitor(app::Deployment &dep, std::string group,
                          obs::MetricsRegistry &metrics,
                          RegionFailoverSpec spec);

    /** Schedule the first evaluation one period from now. */
    void start();

    const Stats &stats() const { return stats_; }
    const RegionFailoverSpec &spec() const { return spec_; }

    /** Regions currently failed over. */
    std::size_t darkRegions() const;

  private:
    struct RegionState
    {
        std::uint32_t region = 0;
        unsigned darkTicks = 0;
        sim::Time darkSince = 0;
        bool failedOver = false;
        obs::Counter *failovers = nullptr;
        obs::Counter *recoveries = nullptr;
    };

    app::Deployment &dep_;
    std::string group_;
    /** Interned id of the group: ticks skip the name lookup. */
    std::uint32_t groupId_;
    obs::MetricsRegistry &metrics_;
    RegionFailoverSpec spec_;
    Stats stats_;
    std::vector<RegionState> regions_;

    bool replicaDark(app::ServiceInstance *replica) const;
    void tick();
    void failOver(RegionState &rs, sim::Time now);
    void recover(RegionState &rs, sim::Time now);
};

} // namespace ditto::cluster

#endif // DITTO_CLUSTER_FAILOVER_H_
