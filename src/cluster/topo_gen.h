/**
 * @file
 * Seeded synthetic topology generator (Palette-style).
 *
 * Emits the ServiceSpecs of a layered microservice application of
 * configurable scale: one root service fanning into `depth - 1`
 * further levels, every service reachable from the root, all RPC
 * edges pointing from shallower to deeper levels (so the graph is
 * acyclic by construction). Fan-out, client model (sync/async), and
 * leaf file I/O are sampled from a generator-owned seeded Rng, making
 * the emitted topology a pure function of the TopoSpec -- the
 * thousand-service scale benchmark (bench_scale) relies on that to
 * stay byte-identical at any --jobs.
 *
 * deployTopology() places the generated services across a machine
 * pool with the capacity-aware Placer and wires the deployment,
 * returning the root instance for a LoadGen to aim at.
 */

#ifndef DITTO_CLUSTER_TOPO_GEN_H_
#define DITTO_CLUSTER_TOPO_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "app/program.h"

namespace ditto::app {
class Deployment;
class ServiceInstance;
} // namespace ditto::app

namespace ditto::cluster {

struct TopoSpec
{
    /** Service count, including the root. */
    unsigned services = 100;
    /** Levels in the layered graph (>= 1). */
    unsigned depth = 4;
    /**
     * Target cap on tree children per service. Bounds every
     * service's fan-in-driven downstream list (without it the root
     * parents every level-1 service and its per-request call count
     * grows with the topology). Soft: when the capped tree cannot
     * hold `services` nodes within `depth` levels, parents overflow
     * the cap rather than deepen the tree.
     */
    unsigned maxChildren = 4;
    /** Extra downstream edges sampled per non-leaf service (0..N). */
    unsigned extraFanout = 2;
    /**
     * Probability a request actually calls each extra edge (the first
     * downstream is always called). Keeps the per-request call tree
     * bounded as the topology grows: mean branching stays near
     * 1 + extraFanout/2 * extraCallProbability per level instead of
     * the full edge count.
     */
    double extraCallProbability = 0.35;
    /** Async fanouts are capped at this many calls per request. */
    unsigned maxAsyncFanout = 3;
    /**
     * Per-edge RPC deadline applied to every service (0 disables).
     * Without it a saturated downstream stalls its callers without
     * bound and the latency of the whole tree diverges.
     */
    sim::Time rpcDeadline = sim::milliseconds(10);
    /** Fraction of multi-downstream services using the async client. */
    double asyncFraction = 0.3;
    /** Fraction of leaf services doing a file read per request. */
    double leafFileFraction = 0.5;
    /** Worker threads per service. */
    unsigned workersPerService = 2;
    /** Instructions per handler compute block. */
    unsigned handlerInsts = 64;
    std::uint64_t seed = 1;

    // ---- production shape knobs (all off by default; when off the
    // ---- generator draws exactly the same Rng sequence as before,
    // ---- so existing seeds stay byte-identical) ---------------------

    /**
     * Entry queries per service. Production services expose several
     * operations with distinct cost and response-size profiles; extra
     * endpoints ("req1", "req2", ...) share endpoint 0's call pattern
     * but run progressively heavier compute and return progressively
     * larger responses.
     */
    unsigned endpointsPerService = 1;
    /**
     * Shared stateful backends ("db0", ...). Each leaf service calls
     * one sampled backend per request; backends serialize on a lock
     * and touch a prewarmed file, modeling the databases and caches
     * many production call paths converge on.
     */
    unsigned sharedBackends = 0;
    /**
     * When > 0, the per-service extra fan-out count is drawn from a
     * Pareto tail with this alpha instead of uniform 0..extraFanout:
     * most services keep small fan-out while a few become the
     * hub-like aggregators real traces show. Smaller alpha = heavier
     * tail; counts are still capped by the deeper-level population.
     */
    double fanoutTailAlpha = 0.0;
    /**
     * Probability that a service at level >= 2 gains a second parent
     * one level up, forming diamond dependencies (two paths from a
     * common ancestor reconverging on the same callee).
     */
    double diamondProbability = 0.0;
};

struct GeneratedTopology
{
    /** specs[0] is the root; shared backends (if any) come last. */
    std::vector<app::ServiceSpec> specs;
    /** Level of each service (0 = root; backends = depth). */
    std::vector<unsigned> level;
    /** Total caller->callee edges emitted. */
    std::size_t edges = 0;
    /** Shared stateful backends appended to `specs`. */
    unsigned backends = 0;
};

/** Generate the layered topology described by `spec`. */
GeneratedTopology generateTopology(const TopoSpec &spec);

/**
 * Create `machineCount` machines (hw::platformA, named "m<i>"),
 * deploy every generated service through a capacity-aware Placer
 * (slots sized so the pool fits the topology exactly), and wireAll.
 * Returns the root instance.
 */
app::ServiceInstance &deployTopology(app::Deployment &dep,
                                     const GeneratedTopology &topo,
                                     unsigned machineCount);

} // namespace ditto::cluster

#endif // DITTO_CLUSTER_TOPO_GEN_H_
