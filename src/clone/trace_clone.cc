#include "clone/trace_clone.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "app/deployment.h"
#include "app/service.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "trace/tracer.h"
#include "workload/engine.h"

namespace ditto::clone {

namespace {

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

std::string
fmt(const char *format, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

std::string
fmt(const char *format, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, format);
    std::vsnprintf(buf, sizeof buf, format, ap);
    va_end(ap);
    return buf;
}

std::string
defaultEndpointName(std::uint32_t ep)
{
    return fmt("ep%u", ep);
}

/** (traceId, spanId) -> span index, for parentage lookups. */
using SpanIndex =
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t>;

TraceModel
buildModel(const trace::Tracer &tracer, obs::ImportReport ingest)
{
    TraceModel m;
    m.topology = core::analyzeTopology(tracer);
    m.root = m.topology.root;
    m.spans = tracer.spans().size();
    m.edges = tracer.edges().size();

    const auto &spans = tracer.spans();

    std::unordered_set<std::uint64_t> traceIds;
    SpanIndex byId;
    for (std::size_t i = 0; i < spans.size(); ++i) {
        traceIds.insert(spans[i].traceId);
        byId.emplace(std::make_pair(spans[i].traceId,
                                    spans[i].spanId),
                     i);
    }
    m.traces = ingest.traces != 0 ? ingest.traces : traceIds.size();

    // Per-span total child server time (for exclusive service time)
    // and per-parent child intervals (for concurrency detection).
    std::vector<std::uint64_t> childNs(spans.size(), 0);
    std::map<std::size_t,
             std::vector<std::pair<std::uint64_t, std::uint64_t>>>
        childIvals;
    for (const trace::Span &s : spans) {
        if (s.parentSpanId == 0)
            continue;
        const auto it =
            byId.find(std::make_pair(s.traceId, s.parentSpanId));
        if (it == byId.end())
            continue;
        const auto start = static_cast<std::uint64_t>(s.start);
        const auto end = static_cast<std::uint64_t>(s.end);
        if (end > start)
            childNs[it->second] += end - start;
        childIvals[it->second].emplace_back(start, end);
    }

    std::map<std::string, ServiceModel> byName;
    for (const std::string &name : m.topology.services) {
        ServiceModel &sm = byName[name];
        sm.name = name;
        const auto rit = m.topology.requestCounts.find(name);
        sm.requests = rit != m.topology.requestCounts.end()
            ? rit->second
            : 0.0;
    }

    const auto endpointRef = [](ServiceModel &sm,
                                std::uint32_t ep) -> EndpointModel & {
        if (sm.endpoints.size() <= ep)
            sm.endpoints.resize(ep + 1);
        return sm.endpoints[ep];
    };

    for (std::size_t i = 0; i < spans.size(); ++i) {
        const trace::Span &s = spans[i];
        const auto it = byName.find(s.service);
        if (it == byName.end())
            continue;
        EndpointModel &em = endpointRef(it->second, s.endpoint);
        em.requests += 1;
        const auto start = static_cast<std::uint64_t>(s.start);
        const auto end = static_cast<std::uint64_t>(s.end);
        const std::uint64_t dur = end > start ? end - start : 0;
        const std::uint64_t excl =
            dur > childNs[i] ? dur - childNs[i] : 0;
        em.exclusiveNs.record(excl);
    }

    // A service is async when the majority of its multi-child spans
    // show children running concurrently (overlapping intervals).
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>
        concurrency;  // service -> (multi-child spans, overlapping)
    for (auto &[parent, ivals] : childIvals) {
        if (ivals.size() < 2)
            continue;
        std::sort(ivals.begin(), ivals.end());
        bool overlap = false;
        for (std::size_t k = 1; k < ivals.size(); ++k) {
            if (ivals[k].first < ivals[k - 1].second) {
                overlap = true;
                break;
            }
        }
        auto &[multi, overlapping] = concurrency[spans[parent].service];
        ++multi;
        if (overlap)
            ++overlapping;
    }
    for (const auto &[service, counts] : concurrency) {
        const auto it = byName.find(service);
        if (it != byName.end())
            it->second.async = counts.second * 2 > counts.first;
    }

    // Downstream call statistics per caller *endpoint* (the topology
    // aggregates per caller service; handler synthesis needs to know
    // which endpoint issues the calls).
    struct CallAgg
    {
        double count = 0;
        double reqSum = 0, reqN = 0;
        double respSum = 0, respN = 0;
    };
    std::map<std::tuple<std::string, std::uint32_t, std::string,
                        std::uint32_t>,
             CallAgg>
        callAggs;
    std::map<std::pair<std::string, std::uint32_t>,
             std::pair<double, double>>
        respByCallee;  // (callee, ep) -> (sum, n)
    for (const trace::RpcEdge &e : tracer.edges()) {
        std::uint32_t callerEp = 0;
        if (e.parentSpanId != 0) {
            const auto it =
                byId.find(std::make_pair(e.traceId, e.parentSpanId));
            if (it != byId.end())
                callerEp = spans[it->second].endpoint;
        }
        CallAgg &a = callAggs[std::make_tuple(e.caller, callerEp,
                                              e.callee, e.endpoint)];
        a.count += 1;
        if (e.requestBytes != 0) {
            a.reqSum += e.requestBytes;
            a.reqN += 1;
        }
        if (e.responseBytes != 0) {
            a.respSum += e.responseBytes;
            a.respN += 1;
            auto &[sum, n] =
                respByCallee[std::make_pair(e.callee, e.endpoint)];
            sum += e.responseBytes;
            n += 1;
        }
    }
    for (const auto &[key, agg] : callAggs) {
        const auto &[caller, callerEp, callee, calleeEp] = key;
        const auto it = byName.find(caller);
        if (it == byName.end())
            continue;
        EndpointModel &em = endpointRef(it->second, callerEp);
        CallModel c;
        c.callee = callee;
        c.calleeEndpoint = calleeEp;
        c.callsPerRequest = agg.count / std::max(1.0, em.requests);
        c.avgRequestBytes = agg.reqN > 0 ? agg.reqSum / agg.reqN : 0;
        c.avgResponseBytes =
            agg.respN > 0 ? agg.respSum / agg.respN : 0;
        em.calls.push_back(std::move(c));
    }

    for (auto &[name, sm] : byName) {
        const auto names = ingest.endpointNames.find(name);
        for (std::size_t ep = 0; ep < sm.endpoints.size(); ++ep) {
            EndpointModel &em = sm.endpoints[ep];
            if (names != ingest.endpointNames.end() &&
                ep < names->second.size())
                em.name = names->second[ep];
            if (em.name.empty())
                em.name =
                    defaultEndpointName(static_cast<std::uint32_t>(ep));
            em.meanExclusiveNs = em.exclusiveNs.mean();
            const auto resp = respByCallee.find(std::make_pair(
                name, static_cast<std::uint32_t>(ep)));
            if (resp != respByCallee.end() && resp->second.second > 0)
                em.avgResponseBytes =
                    resp->second.first / resp->second.second;
            std::sort(em.calls.begin(), em.calls.end(),
                      [](const CallModel &a, const CallModel &b) {
                          return std::tie(a.callee, a.calleeEndpoint) <
                              std::tie(b.callee, b.calleeEndpoint);
                      });
        }
    }

    m.services.reserve(m.topology.services.size());
    for (const std::string &name : m.topology.services)
        m.services.push_back(std::move(byName[name]));
    m.ingest = std::move(ingest);
    return m;
}

} // namespace

const ServiceModel *
TraceModel::find(const std::string &name) const
{
    for (const ServiceModel &s : services) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

const app::ServiceSpec *
SynthesizedClone::find(const std::string &name) const
{
    for (const app::ServiceSpec &s : specs) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

TraceModel
ingestTraceJson(const std::string &json, const IngestOptions &opts)
{
    obs::ImportReport rep;
    const trace::Tracer tracer =
        obs::importJaegerJson(json, opts.import, &rep);
    return buildModel(tracer, std::move(rep));
}

TraceModel
ingestTraceFile(const std::string &path, const IngestOptions &opts)
{
    obs::ImportReport rep;
    const trace::Tracer tracer =
        obs::readJaegerJsonFile(path, opts.import, &rep);
    return buildModel(tracer, std::move(rep));
}

SynthesizedClone
synthesizeClone(const TraceModel &model, const SynthesisOptions &opts)
{
    if (model.services.empty())
        throw std::runtime_error(
            "clone: trace model contains no services");
    SynthesizedClone out;
    out.root = model.root;

    for (const ServiceModel &sm : model.services) {
        app::ServiceSpec s;
        s.name = sm.name;
        // The root fronts external load; widen its pool like
        // cluster::generateTopology does so the clone's bottleneck is
        // the recovered topology, not the entry service's intake.
        s.threads.workers = sm.name == model.root
            ? std::max(8u, opts.workersPerService * 4)
            : std::max(1u, opts.workersPerService);
        s.clientModel = sm.async ? app::ClientModel::Async
                                 : app::ClientModel::Sync;

        hw::BlockSpec bs;
        bs.label = sm.name + ".clone";
        bs.instCount = std::max(1u, opts.handlerInsts);
        bs.seed = opts.seed ^ fnv1a(sm.name);
        s.blocks.push_back(hw::buildBlock(bs));

        // Downstream list: union of callees over endpoints in model
        // (deterministic) order. Callees absent from the model (no
        // server spans in the trace) cannot be synthesized; their
        // calls are dropped here and surface as fidelity diffs.
        const auto targetOf = [&s](const std::string &callee) {
            const auto it = std::find(s.downstreams.begin(),
                                      s.downstreams.end(), callee);
            if (it != s.downstreams.end())
                return static_cast<std::uint32_t>(
                    it - s.downstreams.begin());
            s.downstreams.push_back(callee);
            return static_cast<std::uint32_t>(s.downstreams.size() -
                                              1);
        };

        for (std::size_t epIdx = 0; epIdx < sm.endpoints.size();
             ++epIdx) {
            const EndpointModel &em = sm.endpoints[epIdx];
            app::EndpointSpec ep;
            ep.name = em.name.empty()
                ? defaultEndpointName(
                      static_cast<std::uint32_t>(epIdx))
                : em.name;
            const auto resp = em.avgResponseBytes > 0.5
                ? static_cast<std::uint32_t>(
                      std::llround(em.avgResponseBytes))
                : opts.defaultResponseBytes;
            ep.responseBytesMin = ep.responseBytesMax = resp;

            ep.handler.ops.push_back(app::opCompute(0, 1, 3));

            // Exclusive service time: a quantile-weighted sleep mix
            // whose expectation equals the observed mean. Below 1us
            // the compute op above already covers it.
            if (em.exclusiveNs.count() > 0 &&
                em.meanExclusiveNs >= 1000.0) {
                const double lo = static_cast<double>(
                    em.exclusiveNs.percentile(0.25));
                const double hi = static_cast<double>(
                    em.exclusiveNs.percentile(0.75));
                const double mid =
                    (em.meanExclusiveNs - 0.25 * lo - 0.25 * hi) /
                    0.5;
                const auto sleepArm = [](double ns) {
                    app::Program arm;
                    arm.ops.push_back(app::opSleep(
                        static_cast<sim::Time>(std::llround(ns))));
                    return arm;
                };
                if (mid >= 0.0 && lo > 0.0) {
                    ep.handler.ops.push_back(app::opChoice(
                        {0.25, 0.5, 0.25},
                        {sleepArm(lo), sleepArm(mid), sleepArm(hi)}));
                } else {
                    ep.handler.ops.push_back(app::opSleep(
                        static_cast<sim::Time>(
                            std::llround(em.meanExclusiveNs))));
                }
            }

            // Downstream calls: integer part unconditionally,
            // fractional part as a probabilistic choice, so the mean
            // calls/request matches the observation.
            std::vector<app::RpcCallSpec> fanout;
            std::vector<app::Op> fractional;
            for (const CallModel &call : em.calls) {
                if (model.find(call.callee) == nullptr)
                    continue;
                const std::uint32_t t = targetOf(call.callee);
                app::RpcCallSpec rc;
                rc.target = t;
                rc.endpoint = call.calleeEndpoint;
                rc.requestBytes = call.avgRequestBytes > 0.5
                    ? static_cast<std::uint32_t>(
                          std::llround(call.avgRequestBytes))
                    : opts.defaultRequestBytes;
                rc.responseBytes = call.avgResponseBytes > 0.5
                    ? static_cast<std::uint32_t>(
                          std::llround(call.avgResponseBytes))
                    : opts.defaultResponseBytes;
                const double cpr =
                    std::max(0.0, call.callsPerRequest);
                auto whole =
                    static_cast<std::uint64_t>(cpr + 1e-9);
                const double frac =
                    cpr - static_cast<double>(whole);
                for (std::uint64_t k = 0; k < whole; ++k) {
                    if (sm.async)
                        fanout.push_back(rc);
                    else
                        ep.handler.ops.push_back(
                            app::opRpc(rc.target, rc.endpoint,
                                       rc.requestBytes,
                                       rc.responseBytes));
                }
                if (frac > 1e-6) {
                    app::Program arm;
                    if (sm.async)
                        arm.ops.push_back(app::opRpcFanout({rc}));
                    else
                        arm.ops.push_back(
                            app::opRpc(rc.target, rc.endpoint,
                                       rc.requestBytes,
                                       rc.responseBytes));
                    fractional.push_back(app::opChoice(
                        {frac, 1.0 - frac}, {arm, app::Program{}}));
                }
            }
            if (!fanout.empty())
                ep.handler.ops.push_back(
                    app::opRpcFanout(std::move(fanout)));
            for (app::Op &op : fractional)
                ep.handler.ops.push_back(std::move(op));

            ep.handler.ops.push_back(app::opCompute(0, 1, 2));
            s.endpoints.push_back(std::move(ep));
        }
        out.specs.push_back(std::move(s));
    }

    // Offered load mirrors the observed root endpoint mix.
    out.load.endpoints.clear();
    if (const ServiceModel *root = model.find(model.root)) {
        for (std::size_t ep = 0; ep < root->endpoints.size(); ++ep) {
            if (root->endpoints[ep].requests <= 0)
                continue;
            workload::EndpointLoad el;
            el.endpoint = static_cast<std::uint32_t>(ep);
            el.weight = root->endpoints[ep].requests;
            out.load.endpoints.push_back(el);
        }
    }
    if (out.load.endpoints.empty())
        out.load.endpoints.push_back(workload::EndpointLoad{});
    return out;
}

FidelityReport
compareTopologies(const core::Topology &original,
                  const core::Topology &cloned,
                  const FidelityTolerance &tol)
{
    FidelityReport r;
    r.isomorphic = true;

    const std::set<std::string> so(original.services.begin(),
                                   original.services.end());
    const std::set<std::string> sc(cloned.services.begin(),
                                   cloned.services.end());
    for (const std::string &name : so) {
        if (sc.find(name) == sc.end()) {
            r.isomorphic = false;
            r.diffs.push_back("service \"" + name +
                              "\" missing from the clone");
        }
    }
    for (const std::string &name : sc) {
        if (so.find(name) == so.end()) {
            r.isomorphic = false;
            r.diffs.push_back("clone has extra service \"" + name +
                              "\"");
        }
    }
    if (original.root != cloned.root) {
        r.isomorphic = false;
        r.diffs.push_back("root mismatch: \"" + original.root +
                          "\" vs clone \"" + cloned.root + "\"");
    }

    using EdgeKey =
        std::tuple<std::string, std::string, std::uint32_t>;
    const auto keyed = [](const core::Topology &t) {
        std::map<EdgeKey, const profile::EdgeProfile *> m;
        for (const profile::EdgeProfile &e : t.edges)
            m[{e.caller, e.callee, e.endpoint}] = &e;
        return m;
    };
    const auto eo = keyed(original);
    const auto ec = keyed(cloned);
    const auto keyName = [](const EdgeKey &k) {
        return fmt("%s->%s ep%u", std::get<0>(k).c_str(),
                   std::get<1>(k).c_str(), std::get<2>(k));
    };
    for (const auto &[key, e] : eo) {
        (void)e;
        if (ec.find(key) == ec.end()) {
            r.isomorphic = false;
            r.diffs.push_back("edge " + keyName(key) +
                              " missing from the clone");
        }
    }
    for (const auto &[key, e] : ec) {
        (void)e;
        if (eo.find(key) == eo.end()) {
            r.isomorphic = false;
            r.diffs.push_back("clone has extra edge " + keyName(key));
        }
    }

    const auto within = [](double clone, double orig, double abs,
                           double rel) {
        return std::fabs(clone - orig) <=
            std::max(abs, rel * orig);
    };
    const auto pct = [](double clone, double orig) {
        return std::fabs(clone - orig) / std::max(orig, 1e-12) *
            100.0;
    };
    for (const auto &[key, oe] : eo) {
        const auto it = ec.find(key);
        if (it == ec.end())
            continue;
        const profile::EdgeProfile *ce = it->second;
        const double rateErr = std::fabs(ce->callsPerCallerRequest -
                                         oe->callsPerCallerRequest);
        r.maxRateErr = std::max(r.maxRateErr, rateErr);
        r.maxRateErrPct =
            std::max(r.maxRateErrPct,
                     pct(ce->callsPerCallerRequest,
                         oe->callsPerCallerRequest));
        if (!within(ce->callsPerCallerRequest,
                    oe->callsPerCallerRequest, tol.rateAbs,
                    tol.rateRel))
            r.diffs.push_back(fmt(
                "edge %s calls/request %.4f vs original %.4f "
                "exceeds tolerance",
                keyName(key).c_str(), ce->callsPerCallerRequest,
                oe->callsPerCallerRequest));
        // Byte averages of 0 mean the trace never recorded them
        // (derived edges): nothing to compare against.
        if (oe->avgRequestBytes > 0) {
            r.maxRequestBytesErrPct =
                std::max(r.maxRequestBytesErrPct,
                         pct(ce->avgRequestBytes,
                             oe->avgRequestBytes));
            if (!within(ce->avgRequestBytes, oe->avgRequestBytes,
                        tol.bytesAbs, tol.bytesRel))
                r.diffs.push_back(fmt(
                    "edge %s request bytes %.1f vs original %.1f "
                    "exceeds tolerance",
                    keyName(key).c_str(), ce->avgRequestBytes,
                    oe->avgRequestBytes));
        }
        if (oe->avgResponseBytes > 0) {
            r.maxResponseBytesErrPct =
                std::max(r.maxResponseBytesErrPct,
                         pct(ce->avgResponseBytes,
                             oe->avgResponseBytes));
            if (!within(ce->avgResponseBytes, oe->avgResponseBytes,
                        tol.bytesAbs, tol.bytesRel))
                r.diffs.push_back(fmt(
                    "edge %s response bytes %.1f vs original %.1f "
                    "exceeds tolerance",
                    keyName(key).c_str(), ce->avgResponseBytes,
                    oe->avgResponseBytes));
        }
    }
    r.pass = r.isomorphic && r.diffs.empty();
    return r;
}

std::string
ClosureResult::report() const
{
    std::string out;
    out += fmt("ingest: %llu traces, %llu spans, %llu edges, "
               "%llu defects\n",
               static_cast<unsigned long long>(model.traces),
               static_cast<unsigned long long>(model.spans),
               static_cast<unsigned long long>(model.edges),
               static_cast<unsigned long long>(
                   model.ingest.defects()));
    out += "root: " + model.root + "\n";
    for (const ServiceModel &sm : model.services) {
        out += fmt("service %s: %.0f requests, %zu endpoints%s\n",
                   sm.name.c_str(), sm.requests, sm.endpoints.size(),
                   sm.async ? ", async" : "");
    }
    using EdgeKey =
        std::tuple<std::string, std::string, std::uint32_t>;
    std::map<EdgeKey, const profile::EdgeProfile *> re;
    for (const profile::EdgeProfile &e : reanalyzed.edges)
        re[{e.caller, e.callee, e.endpoint}] = &e;
    for (const profile::EdgeProfile &e : model.topology.edges) {
        const auto it = re.find({e.caller, e.callee, e.endpoint});
        std::string epName = defaultEndpointName(e.endpoint);
        if (const ServiceModel *callee = model.find(e.callee)) {
            if (e.endpoint < callee->endpoints.size())
                epName = callee->endpoints[e.endpoint].name;
        }
        if (it == re.end()) {
            out += fmt("edge %s->%s %s: rate %.4f -> MISSING\n",
                       e.caller.c_str(), e.callee.c_str(),
                       epName.c_str(), e.callsPerCallerRequest);
            continue;
        }
        out += fmt("edge %s->%s %s: rate %.4f -> %.4f, req %.1f -> "
                   "%.1f, resp %.1f -> %.1f\n",
                   e.caller.c_str(), e.callee.c_str(), epName.c_str(),
                   e.callsPerCallerRequest,
                   it->second->callsPerCallerRequest,
                   e.avgRequestBytes, it->second->avgRequestBytes,
                   e.avgResponseBytes, it->second->avgResponseBytes);
    }
    out += fmt("clone run: %llu root requests, window p50 %llu ns, "
               "p99 %llu ns\n",
               static_cast<unsigned long long>(cloneRequests),
               static_cast<unsigned long long>(windowP50Ns),
               static_cast<unsigned long long>(windowP99Ns));
    out += fmt("fidelity: %s (max rate err %.4f abs / %.2f%%, "
               "req bytes %.2f%%, resp bytes %.2f%%)\n",
               fidelity.pass ? "PASS" : "FAIL", fidelity.maxRateErr,
               fidelity.maxRateErrPct, fidelity.maxRequestBytesErrPct,
               fidelity.maxResponseBytesErrPct);
    for (const std::string &d : fidelity.diffs)
        out += "  diff: " + d + "\n";
    return out;
}

ClosureResult
runClosure(const std::string &json, const ClosureOptions &opts)
{
    ClosureResult res;
    res.model = ingestTraceJson(json, opts.ingest);
    if (res.model.root.empty())
        throw std::runtime_error(
            "clone: could not identify a root service in the trace");
    res.clone = synthesizeClone(res.model, opts.synthesis);

    app::Deployment dep(opts.seed);
    std::vector<os::Machine *> machines;
    const unsigned machineCount = std::max(1u, opts.machines);
    machines.reserve(machineCount);
    for (unsigned i = 0; i < machineCount; ++i)
        machines.push_back(&dep.addMachine(
            "clone-m" + std::to_string(i), hw::platformA()));
    for (std::size_t i = 0; i < res.clone.specs.size(); ++i)
        dep.deploy(res.clone.specs[i],
                   *machines[i % machines.size()]);
    dep.wireAll();

    app::ServiceInstance *root = dep.find(res.clone.root);
    if (root == nullptr)
        throw std::runtime_error("clone: root service \"" +
                                 res.clone.root + "\" not deployed");

    workload::LoadSpec load = res.clone.load;
    load.qps = opts.qps;
    load.connections = opts.connections;
    std::unique_ptr<workload::LoadGen> gen;
    std::unique_ptr<workload::WorkloadEngine> engine;
    if (opts.sessionized) {
        // Synthesized mix -> endpoint classes; qps stays the offered
        // call rate, so divide by the mean calls per session.
        workload::WorkloadSpec ws;
        ws.sessionsPerSec = opts.qps /
            ((ws.session.minCalls + ws.session.maxCalls) / 2.0);
        ws.connections = opts.connections;
        ws.timeout = load.timeout;
        ws.propagateDeadline = load.propagateDeadline;
        ws.cancelOnTimeout = load.cancelOnTimeout;
        // The fidelity diff is an exact graph isomorphism: a
        // "workload" root span would add a service node the original
        // topology does not have.
        ws.traceSessions = false;
        ws.classes.clear();
        for (const workload::EndpointLoad &ep : load.endpoints) {
            workload::EndpointClass ec;
            ec.name = "ep" + std::to_string(ep.endpoint);
            ec.endpoint = ep.endpoint;
            ec.weight = ep.weight;
            ec.reqBytesMin = ep.reqBytesMin;
            ec.reqBytesMax = ep.reqBytesMax;
            ws.classes.push_back(std::move(ec));
        }
        engine = std::make_unique<workload::WorkloadEngine>(
            dep, *root, ws, opts.seed ^ 0x10adc10eull);
        engine->start();
    } else {
        gen = std::make_unique<workload::LoadGen>(
            dep, *root, load, opts.seed ^ 0x10adc10eull);
        gen->start();
    }
    dep.runFor(opts.warmup);
    const stats::LatencyHistogram baseline = root->stats().latency;
    dep.runFor(opts.measure);
    const stats::LatencyHistogram window =
        root->stats().latency.since(baseline);
    res.windowP50Ns = window.percentile(0.50);
    res.windowP99Ns = window.percentile(0.99);
    if (engine)
        engine->stop();
    else
        gen->stop();
    // Drain in-flight request trees so the re-exported traces hold
    // few half-recorded call paths (which would skew edge rates).
    dep.runFor(sim::milliseconds(50));

    res.cloneTraceJson = obs::exportJaegerJson(dep.tracer());
    const trace::Tracer reimported =
        obs::importJaegerJson(res.cloneTraceJson);
    res.reanalyzed = core::analyzeTopology(reimported);
    const auto rc = res.reanalyzed.requestCounts.find(res.clone.root);
    res.cloneRequests = rc != res.reanalyzed.requestCounts.end()
        ? static_cast<std::uint64_t>(std::llround(rc->second))
        : 0;
    res.fidelity = compareTopologies(res.model.topology,
                                     res.reanalyzed, opts.tolerance);
    return res;
}

} // namespace ditto::clone
