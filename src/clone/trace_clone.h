/**
 * @file
 * Trace-driven cloning: from a foreign Jaeger trace file to a
 * runnable Deployment, closing the paper's own loop (Sec. 4.2).
 *
 * The existing clone pipeline (core/ditto.h) consumes full
 * ServiceProfiles gathered by instrumenting a system we run
 * ourselves. This module is the inverse, trace-only pipeline for
 * systems we do NOT control: the sole input is a distributed-tracing
 * export. Stages:
 *
 *   1. ingest   -- tolerant Jaeger import (obs::importJaegerJson with
 *                  an ImportReport) + core::analyzeTopology.
 *   2. model    -- per-service endpoint statistics from the spans:
 *                  request counts, per-endpoint exclusive service
 *                  time (span duration minus child server spans,
 *                  fitted into a LatencyHistogram), per caller-
 *                  endpoint downstream call rates and byte averages,
 *                  async detection from overlapping child spans.
 *   3. synthesize -- ServiceSpecs whose handlers reproduce the
 *                  observed fan-out (integer part as unconditional
 *                  RPCs, fractional part as a probabilistic Choice),
 *                  byte sizes (rounded averages ride on RpcCallSpec
 *                  so re-analyzed edges match), and service time
 *                  (compute + quantile-weighted sleeps), plus a
 *                  LoadSpec matching the observed root endpoint mix.
 *   4. closure  -- run the clone, re-export its traces, re-analyze,
 *                  and diff against the ingested topology under
 *                  explicit FidelityTolerance bounds.
 *
 * Everything here is a pure function of (input bytes, options), so
 * closure runs fanned out over sim::RunExecutor stay byte-identical
 * at any --jobs (DESIGN.md §8).
 */

#ifndef DITTO_CLONE_TRACE_CLONE_H_
#define DITTO_CLONE_TRACE_CLONE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "app/program.h"
#include "core/topology_analyzer.h"
#include "obs/jaeger.h"
#include "sim/time.h"
#include "stats/histogram.h"
#include "workload/loadgen.h"

namespace ditto::clone {

/** One observed downstream call pattern of a caller endpoint. */
struct CallModel
{
    std::string callee;
    std::uint32_t calleeEndpoint = 0;
    /** Mean calls per request hitting the caller endpoint. */
    double callsPerRequest = 0;
    double avgRequestBytes = 0;   //!< 0 = unobserved (derived edge)
    double avgResponseBytes = 0;  //!< 0 = unobserved
};

/** Statistics of one service endpoint recovered from the trace. */
struct EndpointModel
{
    std::string name;        //!< operationName (or "ep<i>")
    double requests = 0;     //!< server spans observed
    /** Exclusive service time: duration minus child server spans. */
    stats::LatencyHistogram exclusiveNs;
    double meanExclusiveNs = 0;
    /** Mean bytes this endpoint returns to its callers. */
    double avgResponseBytes = 0;
    std::vector<CallModel> calls;  //!< sorted (callee, endpoint)
};

struct ServiceModel
{
    std::string name;
    bool async = false;  //!< children observed running concurrently
    double requests = 0;
    std::vector<EndpointModel> endpoints;  //!< index = endpoint id
};

/** Everything recovered from the ingested trace. */
struct TraceModel
{
    core::Topology topology;
    obs::ImportReport ingest;
    /** Dependency order (callees first), following topology. */
    std::vector<ServiceModel> services;
    std::string root;
    std::uint64_t traces = 0;
    std::uint64_t spans = 0;
    std::uint64_t edges = 0;

    const ServiceModel *find(const std::string &name) const;
};

struct IngestOptions
{
    obs::ImportOptions import;
};

/** Stages 1+2: parse, validate, and model a Jaeger document. */
TraceModel ingestTraceJson(const std::string &json,
                           const IngestOptions &opts = {});
TraceModel ingestTraceFile(const std::string &path,
                           const IngestOptions &opts = {});

struct SynthesisOptions
{
    unsigned workersPerService = 4;
    /** Instructions per synthesized handler compute block. */
    unsigned handlerInsts = 64;
    /** Cap on compute iterations modeling exclusive time. */
    std::uint64_t maxComputeIters = 64;
    /** Request bytes when the trace did not record them. */
    std::uint32_t defaultRequestBytes = 128;
    std::uint32_t defaultResponseBytes = 256;
    std::uint64_t seed = 0xc10e;
};

/** Stage 3 output: deployable specs plus a matching load mix. */
struct SynthesizedClone
{
    /** Dependency order (callees first); deploy in this order. */
    std::vector<app::ServiceSpec> specs;
    std::string root;
    workload::LoadSpec load;  //!< endpoint mix from the root model

    const app::ServiceSpec *find(const std::string &name) const;
};

SynthesizedClone synthesizeClone(const TraceModel &model,
                                 const SynthesisOptions &opts = {});

/** Acceptance bounds for the closure diff. */
struct FidelityTolerance
{
    /** Per-edge calls/request: |clone - orig| <= max(abs, rel*orig). */
    double rateAbs = 0.08;
    double rateRel = 0.10;
    /** Per-edge byte averages, same max(abs, rel*orig) rule. */
    double bytesAbs = 1.0;
    double bytesRel = 0.02;
};

struct FidelityReport
{
    bool isomorphic = false;  //!< nodes, edges, and root all match
    bool pass = false;        //!< isomorphic && all edges in bounds
    double maxRateErr = 0;        //!< worst |clone-orig| calls/request
    double maxRateErrPct = 0;     //!< worst relative rate error (%)
    double maxRequestBytesErrPct = 0;
    double maxResponseBytesErrPct = 0;
    /** Human-readable mismatches (empty when pass). */
    std::vector<std::string> diffs;
};

/**
 * Stage 4 diff: graph isomorphism is exact (same services, same
 * (caller, callee, endpoint) edge set, same root); per-edge call
 * rates and byte averages within tolerance. Edges whose original
 * byte stats were unobserved (derived edges, averages of 0) are
 * exempt from the byte comparison.
 */
FidelityReport compareTopologies(const core::Topology &original,
                                 const core::Topology &cloned,
                                 const FidelityTolerance &tol = {});

struct ClosureOptions
{
    IngestOptions ingest;
    SynthesisOptions synthesis;
    FidelityTolerance tolerance;
    double qps = 2000;
    unsigned connections = 8;
    unsigned machines = 2;
    sim::Time warmup = sim::milliseconds(50);
    sim::Time measure = sim::milliseconds(400);
    std::uint64_t seed = 1;
    /**
     * Drive the clone with the sessionized WorkloadEngine instead of
     * the plain LoadGen: the synthesized endpoint mix becomes the
     * engine's endpoint classes (same weights and request sizes) and
     * `qps` stays the offered *call* rate. Session root spans are
     * disabled in this mode so the re-analyzed topology still
     * contains exactly the cloned service graph.
     */
    bool sessionized = false;
};

/** Full ingest -> clone -> run -> re-export -> re-analyze result. */
struct ClosureResult
{
    TraceModel model;
    SynthesizedClone clone;
    core::Topology reanalyzed;
    FidelityReport fidelity;
    std::string cloneTraceJson;   //!< the clone run's Jaeger export
    std::uint64_t cloneRequests = 0;  //!< root server spans produced
    /** Measured-window latency at the root (LatencyHistogram::since). */
    std::uint64_t windowP50Ns = 0;
    std::uint64_t windowP99Ns = 0;

    /**
     * Deterministic multi-line text summary (model, per-edge errors,
     * verdict). Byte-identical across --jobs for identical inputs;
     * the determinism tests compare these strings directly.
     */
    std::string report() const;
};

/**
 * Run the whole pipeline on one Jaeger document. Pure function of
 * (json, opts): deterministic across processes and RunExecutor
 * worker counts. Throws on import errors (see obs::ImportOptions).
 */
ClosureResult runClosure(const std::string &json,
                         const ClosureOptions &opts = {});

} // namespace ditto::clone

#endif // DITTO_CLONE_TRACE_CLONE_H_
