/**
 * @file
 * Built-in foreign Jaeger trace fixture.
 *
 * A programmatically assembled document in the shape real Jaeger
 * UI/API exports take -- NOT produced by obs::exportJaegerJson, so it
 * exercises the tolerant import path end to end: no dittoMeta marker,
 * float microsecond timestamps, client spans interposed between
 * caller and callee server spans, http.*_content_length byte tags,
 * per-trace processID remapping, and occasional 128-bit trace ids.
 *
 * The encoded application is a small production-shaped graph:
 *
 *   gateway --> feed --> cache            two entry queries
 *      \          \----> storage          ("GET /home" 60%,
 *       \--> profile --> storage           "GET /user" 40%),
 *                                         diamond onto a shared
 *                                         storage backend
 *
 * Per-edge call rates (per caller request): gateway->feed 0.6,
 * gateway->profile 0.55, feed->cache 1.0, feed->storage 0.5,
 * profile->storage 1.0. feed issues its two downstream calls
 * concurrently (overlapping child spans -> async detection).
 */

#ifndef DITTO_CLONE_FOREIGN_FIXTURE_H_
#define DITTO_CLONE_FOREIGN_FIXTURE_H_

#include <string>

namespace ditto::clone {

/**
 * Render the fixture with `traces` traces (default 100; scaled
 * variants keep the documented rates whenever `traces` is a multiple
 * of 20). Deterministic: same argument, same bytes.
 */
std::string exampleForeignTraceJson(unsigned traces = 100);

} // namespace ditto::clone

#endif // DITTO_CLONE_FOREIGN_FIXTURE_H_
