#include "clone/foreign_fixture.h"

#include <cstdint>
#include <cstdio>

namespace ditto::clone {

namespace {

std::string
hexId(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
decimal(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

/**
 * One span in Jaeger UI export shape. `startFrac`/`dur` carry the
 * literal decimal text so the fixture exercises float-microsecond
 * parsing exactly as real exporters emit it. reqLen/respLen < 0
 * omits the tag.
 */
void
emitSpan(std::string &out, const std::string &tid, std::uint64_t sid,
         const char *op, std::uint64_t parent, std::uint64_t startUs,
         const char *startFrac, const char *dur, const char *pid,
         const char *kind, const char *peer, long reqLen, long respLen)
{
    out += "{\"traceID\":\"";
    out += tid;
    out += "\",\"spanID\":\"";
    out += hexId(sid);
    out += "\",\"operationName\":\"";
    out += op;
    out += "\",\"references\":[";
    if (parent != 0) {
        out += "{\"refType\":\"CHILD_OF\",\"traceID\":\"";
        out += tid;
        out += "\",\"spanID\":\"";
        out += hexId(parent);
        out += "\"}";
    }
    out += "],\"startTime\":";
    out += decimal(startUs);
    if (startFrac != nullptr)
        out += startFrac;
    out += ",\"duration\":";
    out += dur;
    out += ",\"tags\":[{\"key\":\"span.kind\",\"type\":\"string\","
           "\"value\":\"";
    out += kind;
    out += "\"}";
    if (peer != nullptr) {
        out += ",{\"key\":\"peer.service\",\"type\":\"string\","
               "\"value\":\"";
        out += peer;
        out += "\"}";
    }
    if (reqLen >= 0) {
        out += ",{\"key\":\"http.request_content_length\","
               "\"type\":\"int64\",\"value\":";
        out += decimal(static_cast<std::uint64_t>(reqLen));
        out += "}";
    }
    if (respLen >= 0) {
        out += ",{\"key\":\"http.response_content_length\","
               "\"type\":\"int64\",\"value\":";
        out += decimal(static_cast<std::uint64_t>(respLen));
        out += "}";
    }
    out += "],\"processID\":\"";
    out += pid;
    out += "\"}";
}

} // namespace

std::string
exampleForeignTraceJson(unsigned traces)
{
    if (traces == 0)
        traces = 1;
    std::string out = "{\"data\":[";
    unsigned home = 0;  // index among "GET /home" traces
    for (unsigned t = 0; t < traces; ++t) {
        // 60% "GET /home", 40% "GET /user", interleaved so every
        // prefix that is a multiple of 20 keeps the documented rates.
        const bool isHome = t % 5 < 3;
        const std::uint64_t low = 0x0abc000 + t;
        // Every 10th trace id is 128-bit; the importer keeps the low
        // 64 bits, which stay unique.
        std::string tid = t % 10 == 0
            ? "deadbeef00000001" + hexId(low)
            : hexId(low);
        const std::uint64_t b = (std::uint64_t{t} + 1) * 16;
        const std::uint64_t baseUs =
            1700000000000000ull + std::uint64_t{t} * 2000000ull;
        if (t != 0)
            out += ",";
        out += "{\"traceID\":\"" + tid + "\",\"spans\":[";
        if (isHome) {
            const bool callStorage = home % 2 == 0;   // rate 0.5
            const bool callProfile = home % 4 == 0;   // rate 0.25
            // Request bytes of gateway->feed cycle with a zero-sum
            // offset so the average stays exactly 256.
            static const long kReqOff[4] = {-16, -8, 8, 16};
            const long feedReq = 256 + kReqOff[home % 4];
            emitSpan(out, tid, b + 1, "GET /home", 0, baseUs, nullptr,
                     callProfile ? "2100.25" : "1800.25", "p1",
                     "server", nullptr, -1, -1);
            out += ",";
            emitSpan(out, tid, b + 2, "feed.FetchFeed", b + 1,
                     baseUs + 100, nullptr, "1100", "p1", "client",
                     "feed", feedReq, 2048);
            out += ",";
            emitSpan(out, tid, b + 3, "FetchFeed", b + 2, baseUs + 150,
                     nullptr, "1000.5", "p2", "server", nullptr, -1,
                     -1);
            out += ",";
            emitSpan(out, tid, b + 4, "cache.Get", b + 3, baseUs + 200,
                     nullptr, "200", "p2", "client", "cache", 64,
                     1024);
            out += ",";
            emitSpan(out, tid, b + 5, "Get", b + 4, baseUs + 220,
                     ".25", "120.75", "p3", "server", nullptr, -1, -1);
            if (callStorage) {
                // Overlaps the cache call: feed fans out
                // concurrently, which async detection must notice.
                // No peer.service tag on the client span, so callee
                // resolution must come from the child server span.
                out += ",";
                emitSpan(out, tid, b + 6, "storage.Read", b + 3,
                         baseUs + 250, nullptr, "400", "p2", "client",
                         nullptr, 96, 4096);
                out += ",";
                emitSpan(out, tid, b + 7, "Read", b + 6, baseUs + 280,
                         nullptr, "300.5", "p4", "server", nullptr,
                         -1, -1);
            }
            if (callProfile) {
                // Strictly after the feed subtree: the gateway itself
                // calls sequentially.
                out += ",";
                emitSpan(out, tid, b + 8, "profile.LoadProfile",
                         b + 1, baseUs + 1300, nullptr, "700", "p1",
                         "client", "profile", 160, 512);
                out += ",";
                emitSpan(out, tid, b + 9, "LoadProfile", b + 8,
                         baseUs + 1330, nullptr, "600.25", "p5",
                         "server", nullptr, -1, -1);
                out += ",";
                emitSpan(out, tid, b + 10, "storage.Read", b + 9,
                         baseUs + 1360, nullptr, "350", "p5",
                         "client", "storage", 96, 4096);
                out += ",";
                emitSpan(out, tid, b + 11, "Read", b + 10,
                         baseUs + 1380, nullptr, "300", "p4", "server",
                         nullptr, -1, -1);
            }
            out += "],\"processes\":{"
                   "\"p1\":{\"serviceName\":\"gateway\"},"
                   "\"p2\":{\"serviceName\":\"feed\"},"
                   "\"p3\":{\"serviceName\":\"cache\"}";
            if (callStorage)
                out += ",\"p4\":{\"serviceName\":\"storage\"}";
            if (callProfile)
                out += ",\"p5\":{\"serviceName\":\"profile\"}";
            out += "}}";
            ++home;
        } else {
            // "GET /user": different processID numbering from the
            // home traces, so per-trace pid remapping is exercised.
            emitSpan(out, tid, b + 1, "GET /user", 0, baseUs, nullptr,
                     "800.5", "p1", "server", nullptr, -1, -1);
            out += ",";
            emitSpan(out, tid, b + 2, "profile.LoadProfile", b + 1,
                     baseUs + 50, nullptr, "650", "p1", "client",
                     "profile", 160, 512);
            out += ",";
            emitSpan(out, tid, b + 3, "LoadProfile", b + 2,
                     baseUs + 80, nullptr, "600.25", "p2", "server",
                     nullptr, -1, -1);
            out += ",";
            emitSpan(out, tid, b + 4, "storage.Read", b + 3,
                     baseUs + 120, nullptr, "350", "p2", "client",
                     "storage", 96, 4096);
            out += ",";
            emitSpan(out, tid, b + 5, "Read", b + 4, baseUs + 140,
                     nullptr, "300", "p3", "server", nullptr, -1, -1);
            out += "],\"processes\":{"
                   "\"p1\":{\"serviceName\":\"gateway\"},"
                   "\"p2\":{\"serviceName\":\"profile\"},"
                   "\"p3\":{\"serviceName\":\"storage\"}}}";
        }
    }
    out += "]}";
    return out;
}

} // namespace ditto::clone
