#include "fault/fault_plan.h"

#include "sim/rng.h"

namespace ditto::fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LinkDrop: return "link_drop";
      case FaultKind::LinkLatency: return "link_latency";
      case FaultKind::Partition: return "partition";
      case FaultKind::MachineCrash: return "machine_crash";
      case FaultKind::ServiceCrash: return "service_crash";
      case FaultKind::DiskSlowdown: return "disk_slowdown";
      case FaultKind::RegionPartition: return "region_partition";
      case FaultKind::RegionOutage: return "region_outage";
      case FaultKind::WanDegrade: return "wan_degrade";
    }
    return "?";
}

FaultPlan &
FaultPlan::linkDrop(const std::string &a, const std::string &b,
                    sim::Time start, sim::Time duration,
                    double dropProb)
{
    FaultSpec spec;
    spec.kind = FaultKind::LinkDrop;
    spec.a = a;
    spec.b = b;
    spec.start = start;
    spec.duration = duration;
    spec.magnitude = dropProb;
    faults.push_back(std::move(spec));
    return *this;
}

FaultPlan &
FaultPlan::linkLatency(const std::string &a, const std::string &b,
                       sim::Time start, sim::Time duration,
                       sim::Time extra)
{
    FaultSpec spec;
    spec.kind = FaultKind::LinkLatency;
    spec.a = a;
    spec.b = b;
    spec.start = start;
    spec.duration = duration;
    spec.extraLatency = extra;
    faults.push_back(std::move(spec));
    return *this;
}

FaultPlan &
FaultPlan::partition(const std::string &a, const std::string &b,
                     sim::Time start, sim::Time duration)
{
    FaultSpec spec;
    spec.kind = FaultKind::Partition;
    spec.a = a;
    spec.b = b;
    spec.start = start;
    spec.duration = duration;
    faults.push_back(std::move(spec));
    return *this;
}

FaultPlan &
FaultPlan::machineCrash(const std::string &machine, sim::Time start,
                        sim::Time downFor)
{
    FaultSpec spec;
    spec.kind = FaultKind::MachineCrash;
    spec.a = machine;
    spec.start = start;
    spec.duration = downFor;
    faults.push_back(std::move(spec));
    return *this;
}

FaultPlan &
FaultPlan::serviceCrash(const std::string &service, sim::Time start,
                        sim::Time downFor)
{
    FaultSpec spec;
    spec.kind = FaultKind::ServiceCrash;
    spec.a = service;
    spec.start = start;
    spec.duration = downFor;
    faults.push_back(std::move(spec));
    return *this;
}

FaultPlan &
FaultPlan::diskSlowdown(const std::string &machine, sim::Time start,
                        sim::Time duration, double factor)
{
    FaultSpec spec;
    spec.kind = FaultKind::DiskSlowdown;
    spec.a = machine;
    spec.start = start;
    spec.duration = duration;
    spec.magnitude = factor;
    faults.push_back(std::move(spec));
    return *this;
}

FaultPlan &
FaultPlan::regionPartition(const std::string &a, const std::string &b,
                           sim::Time start, sim::Time duration)
{
    FaultSpec spec;
    spec.kind = FaultKind::RegionPartition;
    spec.a = a;
    spec.b = b;
    spec.start = start;
    spec.duration = duration;
    faults.push_back(std::move(spec));
    return *this;
}

FaultPlan &
FaultPlan::regionOutage(const std::string &region, sim::Time start,
                        sim::Time downFor)
{
    FaultSpec spec;
    spec.kind = FaultKind::RegionOutage;
    spec.a = region;
    spec.start = start;
    spec.duration = downFor;
    faults.push_back(std::move(spec));
    return *this;
}

FaultPlan &
FaultPlan::wanDegrade(const std::string &a, const std::string &b,
                      sim::Time start, sim::Time duration,
                      double dropProb, sim::Time extra)
{
    FaultSpec spec;
    spec.kind = FaultKind::WanDegrade;
    spec.a = a;
    spec.b = b;
    spec.start = start;
    spec.duration = duration;
    spec.magnitude = dropProb;
    spec.extraLatency = extra;
    faults.push_back(std::move(spec));
    return *this;
}

FaultPlan &
FaultPlan::randomServiceCrashes(const std::string &service,
                                sim::Time horizon,
                                sim::Time meanInterval,
                                sim::Time downFor, std::uint64_t seed)
{
    sim::Rng rng(seed ^ 0xc4a5full);
    sim::Time at = 0;
    while (true) {
        at += static_cast<sim::Time>(
            rng.exponential(static_cast<double>(meanInterval)));
        if (at >= horizon)
            break;
        serviceCrash(service, at, downFor);
        at += downFor;  // no overlapping crashes of the same service
    }
    return *this;
}

FaultPlan &
FaultPlan::randomLinkDropBursts(const std::string &a,
                                const std::string &b,
                                sim::Time horizon,
                                sim::Time meanInterval,
                                sim::Time burstLength, double dropProb,
                                std::uint64_t seed)
{
    sim::Rng rng(seed ^ 0xb0457ull);
    sim::Time at = 0;
    while (true) {
        at += static_cast<sim::Time>(
            rng.exponential(static_cast<double>(meanInterval)));
        if (at >= horizon)
            break;
        linkDrop(a, b, at, burstLength, dropProb);
        at += burstLength;
    }
    return *this;
}

} // namespace ditto::fault
