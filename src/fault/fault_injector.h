/**
 * @file
 * Deterministic fault injection.
 *
 * The FaultInjector turns a FaultPlan into scheduled events on a
 * deployment's EventQueue. Every start/end of a fault window is an
 * ordinary simulation event, so fault timing interleaves with the
 * workload deterministically: the same seed and plan always produce
 * the same execution (the determinism test in tests/test_fault.cc
 * asserts bit-identical results).
 *
 * Overlapping windows compose: drop probabilities combine as
 * independent losses (1 - prod(1 - p_i)), latency spikes add,
 * partitions and crashes nest by counting, and disk slowdowns
 * multiply. Ending one window therefore never cancels another.
 */

#ifndef DITTO_FAULT_FAULT_INJECTOR_H_
#define DITTO_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"
#include "sim/time.h"

namespace ditto::app {
class Deployment;
} // namespace ditto::app

namespace ditto::os {
class Machine;
} // namespace ditto::os

namespace ditto::fault {

/** Counters of what the injector actually did. */
struct InjectorStats
{
    std::uint64_t windowsStarted = 0;
    std::uint64_t windowsEnded = 0;
    std::uint64_t unresolvedTargets = 0;  //!< names not found; skipped

    /** Windows started but not yet ended. */
    std::uint64_t
    windowsActive() const
    {
        return windowsStarted - windowsEnded;
    }
};

class FaultInjector
{
  public:
    explicit FaultInjector(app::Deployment &deployment);

    /**
     * Schedule every window of `plan` onto the deployment's event
     * queue. May be called before or during the run; windows whose
     * start time is already in the past begin immediately. The
     * injector must outlive the run.
     */
    void install(const FaultPlan &plan);

    /** End every active window right now (e.g. between phases). */
    void clearAll();

    const InjectorStats &stats() const { return stats_; }

  private:
    using LinkKey = std::pair<const os::Machine *, const os::Machine *>;
    /** Unordered region-id pair (WAN-scoped fault windows). */
    using RegionKey = std::pair<std::uint32_t, std::uint32_t>;

    /** Active contributions on one link, recomposed on any change. */
    struct LinkState
    {
        std::vector<double> dropProbs;
        sim::Time extraLatency = 0;
        unsigned partitions = 0;

        bool
        idle() const
        {
            return dropProbs.empty() && extraLatency == 0 &&
                partitions == 0;
        }
    };

    app::Deployment &deployment_;
    InjectorStats stats_;
    std::map<LinkKey, LinkState> links_;
    std::map<RegionKey, LinkState> regionLinks_;
    std::map<os::Machine *, unsigned> machineCrashes_;
    std::map<std::string, unsigned> serviceCrashes_;
    std::map<os::Machine *, std::vector<double>> diskFactors_;

    void beginFault(const FaultSpec &spec);
    void endFault(const FaultSpec &spec);
    void applyLink(const LinkKey &key);
    void applyRegionLink(const RegionKey &key);
    void applyDisk(os::Machine *machine);
    LinkKey resolveLink(const FaultSpec &spec, bool &ok) const;
    /**
     * Region pairs a region-scoped link fault touches: {a, b}, or --
     * with b empty -- a paired with every other defined region.
     */
    std::vector<RegionKey> resolveRegionPairs(const FaultSpec &spec,
                                              bool &ok) const;
};

} // namespace ditto::fault

#endif // DITTO_FAULT_FAULT_INJECTOR_H_
