/**
 * @file
 * Declarative fault plans.
 *
 * A FaultPlan is a seed-reproducible description of *what goes wrong
 * when* in a deployment: link packet loss, latency spikes, network
 * partitions, machine and service crashes with timed restarts, and
 * disk slowdowns. Plans are pure data -- they name machines and
 * services by string and carry absolute start times -- so the same
 * plan can be installed on an original deployment and on its Ditto
 * clone, which is exactly how fidelity under faults is validated
 * (bench/bench_faults.cc).
 *
 * Probabilistic faults are supported by *expansion*: the random*()
 * builders sample concrete fault windows from a caller-seeded rng at
 * plan-construction time, so the resulting plan is again a fixed,
 * replayable schedule.
 */

#ifndef DITTO_FAULT_FAULT_PLAN_H_
#define DITTO_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ditto::fault {

/** What kind of fault one plan entry injects. */
enum class FaultKind : std::uint8_t
{
    LinkDrop,      //!< probabilistic packet loss on a machine link
    LinkLatency,   //!< latency spike added to a machine link
    Partition,     //!< hard two-way partition of a machine link
    MachineCrash,  //!< freeze a whole machine, warm-restart later
    ServiceCrash,  //!< crash one service instance, restart later
    DiskSlowdown,  //!< multiply a machine's disk service times
    // ---- region-scoped kinds (a/b name regions, not machines) ----
    RegionPartition, //!< two-way partition of a region pair; an empty
                     //!< b isolates region a from every other region
    RegionOutage,    //!< crash every machine of a region, restart later
    WanDegrade,      //!< drop prob + latency on a region pair's WAN
};

/** Human-readable fault kind name. */
const char *faultKindName(FaultKind kind);

/**
 * One fault window. `a`/`b` name machines for link faults (an empty
 * name stands for the external client side); `a` names the machine
 * for MachineCrash / DiskSlowdown and the service for ServiceCrash.
 * For the region-scoped kinds `a`/`b` name regions
 * (app::Deployment::defineRegion).
 */
struct FaultSpec
{
    FaultKind kind = FaultKind::LinkDrop;
    std::string a;
    std::string b;
    sim::Time start = 0;
    /** Window length; 0 means "until the end of the run". */
    sim::Time duration = 0;
    /** Drop probability (LinkDrop) or slowdown factor (DiskSlowdown). */
    double magnitude = 0;
    /** Added one-way latency (LinkLatency). */
    sim::Time extraLatency = 0;
};

/**
 * An ordered collection of fault windows plus fluent builders.
 * Windows may overlap arbitrarily; the injector composes them
 * (drop probabilities combine independently, latencies add,
 * partitions and crashes nest by counting).
 */
struct FaultPlan
{
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }

    FaultPlan &linkDrop(const std::string &a, const std::string &b,
                        sim::Time start, sim::Time duration,
                        double dropProb);
    FaultPlan &linkLatency(const std::string &a, const std::string &b,
                           sim::Time start, sim::Time duration,
                           sim::Time extra);
    FaultPlan &partition(const std::string &a, const std::string &b,
                         sim::Time start, sim::Time duration);
    FaultPlan &machineCrash(const std::string &machine,
                            sim::Time start, sim::Time downFor);
    FaultPlan &serviceCrash(const std::string &service,
                            sim::Time start, sim::Time downFor);
    FaultPlan &diskSlowdown(const std::string &machine,
                            sim::Time start, sim::Time duration,
                            double factor);

    /**
     * Hard two-way partition of the WAN between regions `a` and `b`;
     * an empty `b` isolates region `a` from every other region.
     */
    FaultPlan &regionPartition(const std::string &a,
                               const std::string &b, sim::Time start,
                               sim::Time duration);

    /** Crash every machine of `region`, warm-restart after downFor. */
    FaultPlan &regionOutage(const std::string &region, sim::Time start,
                            sim::Time downFor);

    /**
     * Degrade the WAN between regions `a` and `b`: per-message drop
     * probability plus added one-way latency (either may be 0).
     */
    FaultPlan &wanDegrade(const std::string &a, const std::string &b,
                          sim::Time start, sim::Time duration,
                          double dropProb, sim::Time extra);

    /**
     * Expand a Poisson process of service crashes over [0, horizon):
     * exponential inter-arrival times with mean `meanInterval`, each
     * crash lasting `downFor`. Sampling uses a private rng seeded
     * with `seed`, so the expansion is deterministic and independent
     * of every other rng in the simulation.
     */
    FaultPlan &randomServiceCrashes(const std::string &service,
                                    sim::Time horizon,
                                    sim::Time meanInterval,
                                    sim::Time downFor,
                                    std::uint64_t seed);

    /**
     * Expand a Poisson process of loss bursts on one link: windows of
     * `burstLength` with drop probability `dropProb`, exponential
     * inter-arrival with mean `meanInterval`. Deterministic in `seed`.
     */
    FaultPlan &randomLinkDropBursts(const std::string &a,
                                    const std::string &b,
                                    sim::Time horizon,
                                    sim::Time meanInterval,
                                    sim::Time burstLength,
                                    double dropProb,
                                    std::uint64_t seed);
};

} // namespace ditto::fault

#endif // DITTO_FAULT_FAULT_PLAN_H_
