#include "fault/fault_injector.h"

#include <algorithm>

#include "app/deployment.h"
#include "os/machine.h"
#include "os/network.h"

namespace ditto::fault {

FaultInjector::FaultInjector(app::Deployment &deployment)
    : deployment_(deployment)
{
}

void
FaultInjector::install(const FaultPlan &plan)
{
    sim::EventQueue &events = deployment_.events();
    const sim::Time now = events.now();
    for (const FaultSpec &spec : plan.faults) {
        const sim::Time start = std::max(spec.start, now);
        // Copy the spec into the events; the plan may not outlive us.
        events.scheduleAt(start,
                          [this, spec] { beginFault(spec); });
        if (spec.duration > 0) {
            events.scheduleAt(start + spec.duration,
                              [this, spec] { endFault(spec); });
        }
    }
}

void
FaultInjector::clearAll()
{
    for (const auto &entry : links_)
        deployment_.network().clearLinkFault(entry.first.first,
                                             entry.first.second);
    links_.clear();
    for (const auto &entry : regionLinks_)
        deployment_.network().clearRegionFault(entry.first.first,
                                               entry.first.second);
    regionLinks_.clear();
    for (auto &entry : machineCrashes_) {
        if (entry.second > 0)
            entry.first->setDown(false);
    }
    machineCrashes_.clear();
    for (auto &entry : serviceCrashes_) {
        if (app::ServiceInstance *svc = deployment_.find(entry.first))
            svc->setDown(false);
    }
    serviceCrashes_.clear();
    for (auto &entry : diskFactors_)
        entry.first->disk().setSlowdown(1.0);
    diskFactors_.clear();
}

FaultInjector::LinkKey
FaultInjector::resolveLink(const FaultSpec &spec, bool &ok) const
{
    ok = true;
    const os::Machine *a = nullptr;
    const os::Machine *b = nullptr;
    if (!spec.a.empty()) {
        a = deployment_.machine(spec.a);
        ok = ok && a != nullptr;
    }
    if (!spec.b.empty()) {
        b = deployment_.machine(spec.b);
        ok = ok && b != nullptr;
    }
    return {a, b};
}

void
FaultInjector::applyLink(const LinkKey &key)
{
    auto it = links_.find(key);
    if (it == links_.end() || it->second.idle()) {
        deployment_.network().clearLinkFault(key.first, key.second);
        if (it != links_.end())
            links_.erase(it);
        return;
    }
    const LinkState &state = it->second;
    os::LinkFault fault;
    double pass = 1.0;
    for (double p : state.dropProbs)
        pass *= 1.0 - p;
    fault.dropProb = 1.0 - pass;
    fault.extraLatency = state.extraLatency;
    fault.partitioned = state.partitions > 0;
    deployment_.network().setLinkFault(key.first, key.second, fault);
}

std::vector<FaultInjector::RegionKey>
FaultInjector::resolveRegionPairs(const FaultSpec &spec,
                                  bool &ok) const
{
    ok = false;
    std::vector<RegionKey> pairs;
    std::uint32_t a = 0;
    if (!deployment_.regionId(spec.a, a))
        return pairs;
    if (!spec.b.empty()) {
        std::uint32_t b = 0;
        if (!deployment_.regionId(spec.b, b) || a == b)
            return pairs;
        ok = true;
        pairs.push_back(a < b ? RegionKey{a, b} : RegionKey{b, a});
        return pairs;
    }
    // Isolation: region a against every other defined region. The
    // registry only grows, so begin and end expand identically.
    for (std::uint32_t b = 0;
         b < static_cast<std::uint32_t>(deployment_.regionCount());
         ++b) {
        if (b != a)
            pairs.push_back(a < b ? RegionKey{a, b}
                                  : RegionKey{b, a});
    }
    ok = !pairs.empty();
    return pairs;
}

void
FaultInjector::applyRegionLink(const RegionKey &key)
{
    auto it = regionLinks_.find(key);
    if (it == regionLinks_.end() || it->second.idle()) {
        deployment_.network().clearRegionFault(key.first, key.second);
        if (it != regionLinks_.end())
            regionLinks_.erase(it);
        return;
    }
    const LinkState &state = it->second;
    os::LinkFault fault;
    double pass = 1.0;
    for (double p : state.dropProbs)
        pass *= 1.0 - p;
    fault.dropProb = 1.0 - pass;
    fault.extraLatency = state.extraLatency;
    fault.partitioned = state.partitions > 0;
    deployment_.network().setRegionFault(key.first, key.second,
                                         fault);
}

void
FaultInjector::applyDisk(os::Machine *machine)
{
    auto it = diskFactors_.find(machine);
    double factor = 1.0;
    if (it != diskFactors_.end()) {
        for (double f : it->second)
            factor *= f;
        if (it->second.empty())
            diskFactors_.erase(it);
    }
    machine->disk().setSlowdown(factor);
}

void
FaultInjector::beginFault(const FaultSpec &spec)
{
    switch (spec.kind) {
      case FaultKind::LinkDrop:
      case FaultKind::LinkLatency:
      case FaultKind::Partition: {
        bool ok = false;
        const LinkKey key = resolveLink(spec, ok);
        if (!ok) {
            stats_.unresolvedTargets++;
            return;
        }
        LinkState &state = links_[key];
        if (spec.kind == FaultKind::LinkDrop)
            state.dropProbs.push_back(spec.magnitude);
        else if (spec.kind == FaultKind::LinkLatency)
            state.extraLatency += spec.extraLatency;
        else
            state.partitions++;
        applyLink(key);
        break;
      }
      case FaultKind::MachineCrash: {
        os::Machine *machine = deployment_.machine(spec.a);
        if (!machine) {
            stats_.unresolvedTargets++;
            return;
        }
        if (machineCrashes_[machine]++ == 0)
            machine->setDown(true);
        break;
      }
      case FaultKind::ServiceCrash: {
        app::ServiceInstance *svc = deployment_.find(spec.a);
        if (!svc) {
            stats_.unresolvedTargets++;
            return;
        }
        if (serviceCrashes_[spec.a]++ == 0)
            svc->setDown(true);
        break;
      }
      case FaultKind::DiskSlowdown: {
        os::Machine *machine = deployment_.machine(spec.a);
        if (!machine) {
            stats_.unresolvedTargets++;
            return;
        }
        diskFactors_[machine].push_back(
            std::max(1.0, spec.magnitude));
        applyDisk(machine);
        break;
      }
      case FaultKind::RegionPartition:
      case FaultKind::WanDegrade: {
        bool ok = false;
        const std::vector<RegionKey> pairs =
            resolveRegionPairs(spec, ok);
        if (!ok) {
            stats_.unresolvedTargets++;
            return;
        }
        for (const RegionKey &key : pairs) {
            LinkState &state = regionLinks_[key];
            if (spec.kind == FaultKind::RegionPartition) {
                state.partitions++;
            } else {
                if (spec.magnitude > 0)
                    state.dropProbs.push_back(spec.magnitude);
                state.extraLatency += spec.extraLatency;
            }
            applyRegionLink(key);
        }
        break;
      }
      case FaultKind::RegionOutage: {
        std::uint32_t region = 0;
        if (!deployment_.regionId(spec.a, region)) {
            stats_.unresolvedTargets++;
            return;
        }
        const std::vector<os::Machine *> machines =
            deployment_.machinesInRegion(region);
        if (machines.empty()) {
            stats_.unresolvedTargets++;
            return;
        }
        for (os::Machine *machine : machines) {
            if (machineCrashes_[machine]++ == 0)
                machine->setDown(true);
        }
        break;
      }
    }
    stats_.windowsStarted++;
}

void
FaultInjector::endFault(const FaultSpec &spec)
{
    switch (spec.kind) {
      case FaultKind::LinkDrop:
      case FaultKind::LinkLatency:
      case FaultKind::Partition: {
        bool ok = false;
        const LinkKey key = resolveLink(spec, ok);
        auto it = links_.find(key);
        if (!ok || it == links_.end())
            return;  // target vanished or cleared via clearAll()
        LinkState &state = it->second;
        if (spec.kind == FaultKind::LinkDrop) {
            auto pos = std::find(state.dropProbs.begin(),
                                 state.dropProbs.end(),
                                 spec.magnitude);
            if (pos != state.dropProbs.end())
                state.dropProbs.erase(pos);
        } else if (spec.kind == FaultKind::LinkLatency) {
            state.extraLatency =
                state.extraLatency > spec.extraLatency
                ? state.extraLatency - spec.extraLatency
                : 0;
        } else if (state.partitions > 0) {
            state.partitions--;
        }
        applyLink(key);
        break;
      }
      case FaultKind::MachineCrash: {
        os::Machine *machine = deployment_.machine(spec.a);
        if (!machine)
            return;
        auto it = machineCrashes_.find(machine);
        if (it == machineCrashes_.end() || it->second == 0)
            return;
        if (--it->second == 0)
            machine->setDown(false);
        break;
      }
      case FaultKind::ServiceCrash: {
        auto it = serviceCrashes_.find(spec.a);
        if (it == serviceCrashes_.end() || it->second == 0)
            return;
        if (--it->second == 0) {
            if (app::ServiceInstance *svc = deployment_.find(spec.a))
                svc->setDown(false);
        }
        break;
      }
      case FaultKind::DiskSlowdown: {
        os::Machine *machine = deployment_.machine(spec.a);
        if (!machine)
            return;
        auto it = diskFactors_.find(machine);
        if (it == diskFactors_.end())
            return;
        auto pos = std::find(it->second.begin(), it->second.end(),
                             std::max(1.0, spec.magnitude));
        if (pos != it->second.end())
            it->second.erase(pos);
        applyDisk(machine);
        break;
      }
      case FaultKind::RegionPartition:
      case FaultKind::WanDegrade: {
        bool ok = false;
        const std::vector<RegionKey> pairs =
            resolveRegionPairs(spec, ok);
        if (!ok)
            return;
        bool touched = false;
        for (const RegionKey &key : pairs) {
            auto it = regionLinks_.find(key);
            if (it == regionLinks_.end())
                continue;  // cleared via clearAll()
            touched = true;
            LinkState &state = it->second;
            if (spec.kind == FaultKind::RegionPartition) {
                if (state.partitions > 0)
                    state.partitions--;
            } else {
                if (spec.magnitude > 0) {
                    auto pos = std::find(state.dropProbs.begin(),
                                         state.dropProbs.end(),
                                         spec.magnitude);
                    if (pos != state.dropProbs.end())
                        state.dropProbs.erase(pos);
                }
                state.extraLatency =
                    state.extraLatency > spec.extraLatency
                    ? state.extraLatency - spec.extraLatency
                    : 0;
            }
            applyRegionLink(key);
        }
        if (!touched)
            return;
        break;
      }
      case FaultKind::RegionOutage: {
        std::uint32_t region = 0;
        if (!deployment_.regionId(spec.a, region))
            return;
        bool touched = false;
        for (os::Machine *machine :
             deployment_.machinesInRegion(region)) {
            auto it = machineCrashes_.find(machine);
            if (it == machineCrashes_.end() || it->second == 0)
                continue;
            touched = true;
            if (--it->second == 0)
                machine->setDown(false);
        }
        if (!touched)
            return;
        break;
      }
    }
    stats_.windowsEnded++;
}

} // namespace ditto::fault
