/**
 * @file
 * The four single-tier "original" applications: Memcached, NGINX,
 * MongoDB, Redis (Sec. 6.1.2 configurations).
 */

#include "apps/catalog.h"

#include "hw/block_builder.h"

namespace ditto::apps {

namespace {

using hw::BlockSpec;
using hw::MixWeights;
using hw::StreamKind;
using hw::StreamSpec;

/**
 * Handler work multiplier: scales loop iteration counts so service
 * times land in a realistic range (tens of microseconds) and the
 * Fig. 5 load levels actually approach saturation.
 */
constexpr std::uint64_t W = 28;

/** MongoDB stays disk-bound: its CPU path scales less. */
constexpr std::uint64_t WM = 7;

hw::CodeBlock
block(const std::string &label, unsigned insts, MixWeights mix,
      std::vector<StreamSpec> streams, double memFrac,
      double branchFrac, std::vector<hw::BranchDesc> branches,
      double depTight, std::uint64_t seed)
{
    BlockSpec spec;
    spec.label = label;
    spec.instCount = insts;
    spec.mix = mix;
    spec.streams = std::move(streams);
    spec.memFraction = memFrac;
    spec.branchFraction = branchFrac;
    spec.branchKinds = std::move(branches);
    spec.depTightness = depTight;
    spec.seed = seed;
    return hw::buildBlock(spec);
}

} // namespace

// ---------------------------------------------------------------------------
// Memcached: in-memory KVS. Four epoll workers share the hash table
// and the slab-allocated values; GETs stream a 4KB value back.
// ---------------------------------------------------------------------------

app::ServiceSpec
memcachedSpec()
{
    app::ServiceSpec spec;
    spec.name = "memcached";
    spec.serverModel = app::ServerModel::IoMultiplex;
    spec.clientModel = app::ClientModel::Sync;
    spec.threads.workers = 4;
    spec.locks = 1;  // LRU/slab maintenance lock

    // 10K items x (30B key + 4KB value) ~ 40MB of values plus the
    // bucket array and slab metadata.
    enum { kParse, kHash, kLookup, kValue, kStoreVal, kResp };
    spec.blocks.push_back(block(
        "memcached.parse", 260, MixWeights::parserCode(),
        {{8192, StreamKind::Sequential, false, 1.0}},
        0.22, 0.20, {{2, 3}, {3, 4}, {1, 2}}, 0.45, 11));
    spec.blocks.push_back(block(
        "memcached.hash", 110, MixWeights::hashCode(),
        {{2048, StreamKind::Sequential, false, 1.0}},
        0.18, 0.08, {{3, 4}}, 0.55, 12));
    spec.blocks.push_back(block(
        "memcached.lookup", 96, MixWeights::serverCode(),
        {{4u << 20, StreamKind::PointerChase, true, 0.7},
         {64u << 10, StreamKind::Random, true, 0.3}},
        0.30, 0.14, {{2, 3}, {4, 4}, {1, 2}}, 0.50, 13));
    spec.blocks.push_back(block(
        "memcached.value", 64, MixWeights::serverCode(),
        {{40u << 20, StreamKind::Random, true, 0.55},
         {16u << 10, StreamKind::Sequential, false, 0.45}},
        0.55, 0.05, {{2, 4}}, 0.30, 14));
    spec.blocks.push_back(block(
        "memcached.store_value", 72, MixWeights::serverCode(),
        {{40u << 20, StreamKind::Random, true, 0.6},
         {16u << 10, StreamKind::Sequential, false, 0.4}},
        0.60, 0.05, {{2, 4}}, 0.30, 15));
    spec.blocks.push_back(block(
        "memcached.respond", 180, MixWeights::serverCode(),
        {{8192, StreamKind::Sequential, false, 1.0}},
        0.25, 0.12, {{2, 3}, {3, 4}}, 0.40, 16));

    // GET: parse -> hash -> bucket walk -> value copy -> respond.
    app::EndpointSpec get;
    get.name = "get";
    get.responseBytesMin = 4096;
    get.responseBytesMax = 4160;
    get.handler.ops = {
        app::opCall("parse", {{app::opCompute(kParse, 2 * W, 3 * W)}}),
        app::opCall("hash", {{app::opCompute(kHash, 3 * W, 4 * W)}}),
        app::opCall("assoc_find",
                    {{app::opCompute(kLookup, 4 * W, 9 * W)}}),
        app::opCall("value_copy",
                    {{app::opCompute(kValue, 8 * W, 12 * W)}}),
        app::opCall("respond", {{app::opCompute(kResp, 2 * W, 3 * W)}}),
    };
    spec.endpoints.push_back(std::move(get));

    // SET: parse -> hash -> bucket walk -> LRU lock -> store.
    app::EndpointSpec set;
    set.name = "set";
    set.responseBytesMin = set.responseBytesMax = 48;
    set.handler.ops = {
        app::opCall("parse", {{app::opCompute(kParse, 2 * W, 3 * W)}}),
        app::opCall("hash", {{app::opCompute(kHash, 3 * W, 4 * W)}}),
        app::opCall("assoc_find",
                    {{app::opCompute(kLookup, 4 * W, 9 * W)}}),
        app::opLock(0),
        app::opCall("item_store",
                    {{app::opCompute(kStoreVal, 8 * W, 12 * W)}}),
        app::opUnlock(0),
        app::opCall("respond", {{app::opCompute(kResp, 1 * W, 2 * W)}}),
    };
    spec.endpoints.push_back(std::move(set));

    // LRU crawler: periodic background sweep over the value slabs.
    app::BackgroundSpec crawler;
    crawler.name = "lru_crawler";
    crawler.period = sim::milliseconds(50);
    crawler.body.ops = {app::opCompute(kValue, 24 * W, 32 * W)};
    spec.background.push_back(std::move(crawler));
    return spec;
}

AppLoad
memcachedLoad()
{
    AppLoad load;
    load.openLoop = true;  // mutated, open loop
    load.connections = 16;
    load.lowQps = 4000;
    load.mediumQps = 14000;
    load.highQps = 26000;
    load.endpoints = {
        {0, 0.9, 56, 72},        // GET: key-sized request
        {1, 0.1, 4128, 4224},    // SET: key+value
    };
    return load;
}

// ---------------------------------------------------------------------------
// NGINX: single-worker web server; branchy HTTP parsing over a large
// text footprint, static files served from the page cache.
// ---------------------------------------------------------------------------

app::ServiceSpec
nginxSpec()
{
    app::ServiceSpec spec;
    spec.name = "nginx";
    spec.serverModel = app::ServerModel::IoMultiplex;
    spec.threads.workers = 1;

    // Static content set, fully page-cache resident after warmup.
    spec.fileBytes = {96ull << 20};
    spec.filePrewarmFraction = 1.0;

    enum { kParse1, kParse2, kRoute, kHeaders, kCopy, kLog };
    spec.blocks.push_back(block(
        "nginx.parse_request", 1100, MixWeights::parserCode(),
        {{16u << 10, StreamKind::Sequential, false, 1.0}},
        0.24, 0.22, {{2, 2}, {3, 3}, {1, 2}}, 0.50, 21));
    spec.blocks.push_back(block(
        "nginx.parse_headers", 900, MixWeights::parserCode(),
        {{16u << 10, StreamKind::Sequential, false, 1.0}},
        0.22, 0.24, {{2, 2}, {3, 3}, {4, 4}}, 0.50, 22));
    spec.blocks.push_back(block(
        "nginx.route", 480, MixWeights::serverCode(),
        {{256u << 10, StreamKind::Random, false, 1.0}},
        0.28, 0.16, {{2, 3}, {4, 4}}, 0.45, 23));
    spec.blocks.push_back(block(
        "nginx.build_headers", 420, MixWeights::serverCode(),
        {{32u << 10, StreamKind::Sequential, false, 1.0}},
        0.30, 0.12, {{1, 2}}, 0.40, 24));
    spec.blocks.push_back(block(
        "nginx.body_copy", 48, MixWeights::serverCode(),
        {{1u << 20, StreamKind::Sequential, false, 1.0}},
        0.62, 0.04, {{2, 4}}, 0.25, 25));
    spec.blocks.push_back(block(
        "nginx.access_log", 220, MixWeights::serverCode(),
        {{8u << 10, StreamKind::Sequential, false, 1.0}},
        0.26, 0.10, {{2, 3}}, 0.40, 26));

    app::EndpointSpec get;
    get.name = "http_get";
    get.responseBytesMin = 1024;
    get.responseBytesMax = 16384;
    get.handler.ops = {
        app::opCall("http_parse",
                    {{app::opCompute(kParse1, 1 * W, 2 * W),
                      app::opCompute(kParse2, 1 * W, 2 * W)}}),
        app::opCall("route", {{app::opCompute(kRoute, 1 * W, 2 * W)}}),
        app::opCall("serve_static",
                    {{app::opFileRead(0, 1024, 16384),
                      app::opCompute(kCopy, 4 * W, 16 * W)}}),
        app::opCall("headers",
                    {{app::opCompute(kHeaders, 1 * W, 2 * W)}}),
        app::opCall("log", {{app::opCompute(kLog, W / 2, W)}}),
    };
    spec.endpoints.push_back(std::move(get));
    return spec;
}

AppLoad
nginxLoad()
{
    AppLoad load;
    load.openLoop = true;  // tcpkali, open loop
    load.connections = 12;
    load.lowQps = 1500;
    load.mediumQps = 6000;
    load.highQps = 12500;
    load.endpoints = {{0, 1.0, 180, 420}};  // HTTP GET requests
    return load;
}

// ---------------------------------------------------------------------------
// MongoDB: document store, thread per connection, 40GB dataset read
// uniformly (YCSB C) -- page-cache misses make it disk-bound.
// ---------------------------------------------------------------------------

app::ServiceSpec
mongodbSpec()
{
    app::ServiceSpec spec;
    spec.name = "mongodb";
    spec.serverModel = app::ServerModel::BlockingPerConn;
    spec.clientModel = app::ClientModel::Sync;
    spec.threads.threadPerConnection = true;
    spec.locks = 1;

    // 40GB collection + index files.
    spec.fileBytes = {40ull << 30};
    spec.filePrewarmFraction = 0.0;

    enum { kParse, kPlan, kIndex, kDecode, kSerialize };
    spec.blocks.push_back(block(
        "mongodb.parse_bson", 520, MixWeights::parserCode(),
        {{32u << 10, StreamKind::Sequential, false, 1.0}},
        0.26, 0.18, {{2, 3}, {3, 3}}, 0.50, 31));
    spec.blocks.push_back(block(
        "mongodb.query_plan", 700, MixWeights::serverCode(),
        {{512u << 10, StreamKind::Random, false, 1.0}},
        0.24, 0.16, {{3, 4}, {4, 4}}, 0.45, 32));
    spec.blocks.push_back(block(
        "mongodb.index_walk", 140, MixWeights::serverCode(),
        {{16u << 20, StreamKind::PointerChase, true, 0.8},
         {128u << 10, StreamKind::Random, true, 0.2}},
        0.34, 0.14, {{2, 3}, {4, 4}}, 0.55, 33));
    spec.blocks.push_back(block(
        "mongodb.doc_decode", 380, MixWeights::serverCode(),
        {{1u << 20, StreamKind::Sequential, false, 1.0}},
        0.38, 0.10, {{2, 3}}, 0.40, 34));
    spec.blocks.push_back(block(
        "mongodb.serialize", 460, MixWeights::serverCode(),
        {{256u << 10, StreamKind::Sequential, false, 1.0}},
        0.32, 0.12, {{1, 2}, {2, 3}}, 0.40, 35));

    app::EndpointSpec find;
    find.name = "find";
    find.responseBytesMin = 2048;
    find.responseBytesMax = 8192;
    find.handler.ops = {
        app::opCall("parse", {{app::opCompute(kParse, WM, 2 * WM)}}),
        app::opCall("plan", {{app::opCompute(kPlan, WM / 2, WM)}}),
        app::opCall("index",
                    {{app::opCompute(kIndex, 5 * WM, 9 * WM)}}),
        app::opCall("fetch_index", {{app::opFileRead(0, 4096, 8192)}}),
        app::opCall("fetch_doc",
                    {{app::opFileRead(0, 24576, 65536)}}),
        app::opCall("decode",
                    {{app::opCompute(kDecode, 2 * WM, 4 * WM)}}),
        app::opCall("reply",
                    {{app::opCompute(kSerialize, WM, 2 * WM)}}),
    };
    spec.endpoints.push_back(std::move(find));

    // Checkpointer flushing dirty pages periodically.
    app::BackgroundSpec checkpoint;
    checkpoint.name = "checkpointer";
    checkpoint.period = sim::milliseconds(200);
    checkpoint.body.ops = {
        app::opCompute(kDecode, 8 * WM, 16 * WM),
        app::opFileWrite(0, 16384, 65536),
    };
    spec.background.push_back(std::move(checkpoint));
    return spec;
}

AppLoad
mongodbLoad()
{
    AppLoad load;
    load.openLoop = false;  // YCSB, closed loop
    load.connections = 32;
    load.lowQps = 500;
    load.mediumQps = 1800;
    load.highQps = 3600;
    load.endpoints = {{0, 1.0, 220, 360}};  // uniform reads
    return load;
}

// ---------------------------------------------------------------------------
// Redis: single-threaded in-memory store, persistence disabled.
// ---------------------------------------------------------------------------

app::ServiceSpec
redisSpec()
{
    app::ServiceSpec spec;
    spec.name = "redis";
    spec.serverModel = app::ServerModel::IoMultiplex;
    spec.threads.workers = 1;  // famously single-threaded

    enum { kParse, kDict, kValue, kStoreVal, kResp };
    spec.blocks.push_back(block(
        "redis.parse_resp", 300, MixWeights::parserCode(),
        {{8u << 10, StreamKind::Sequential, false, 1.0}},
        0.24, 0.18, {{2, 2}, {3, 3}}, 0.50, 41));
    spec.blocks.push_back(block(
        "redis.dict_find", 120, MixWeights::hashCode(),
        {{8u << 20, StreamKind::PointerChase, false, 0.75},
         {128u << 10, StreamKind::Random, false, 0.25}},
        0.32, 0.12, {{2, 3}, {3, 4}}, 0.55, 42));
    spec.blocks.push_back(block(
        "redis.value_read", 72, MixWeights::serverCode(),
        {{12u << 20, StreamKind::Random, false, 0.6},
         {16u << 10, StreamKind::Sequential, false, 0.4}},
        0.52, 0.06, {{2, 4}}, 0.30, 43));
    spec.blocks.push_back(block(
        "redis.value_write", 84, MixWeights::serverCode(),
        {{12u << 20, StreamKind::Random, false, 0.65},
         {16u << 10, StreamKind::Sequential, false, 0.35}},
        0.56, 0.06, {{2, 4}}, 0.30, 44));
    spec.blocks.push_back(block(
        "redis.reply", 160, MixWeights::serverCode(),
        {{8u << 10, StreamKind::Sequential, false, 1.0}},
        0.26, 0.12, {{1, 2}}, 0.40, 45));

    app::EndpointSpec get;
    get.name = "get";
    get.responseBytesMin = 512;
    get.responseBytesMax = 1536;
    get.handler.ops = {
        app::opCall("parse", {{app::opCompute(kParse, W, 2 * W)}}),
        app::opCall("lookupKey", {{app::opCompute(kDict, 3 * W, 6 * W)}}),
        app::opCall("getValue", {{app::opCompute(kValue, 4 * W, 8 * W)}}),
        app::opCall("addReply", {{app::opCompute(kResp, W, 2 * W)}}),
    };
    spec.endpoints.push_back(std::move(get));

    app::EndpointSpec set;
    set.name = "set";
    set.responseBytesMin = set.responseBytesMax = 32;
    set.handler.ops = {
        app::opCall("parse", {{app::opCompute(kParse, W, 2 * W)}}),
        app::opCall("lookupKey", {{app::opCompute(kDict, 3 * W, 6 * W)}}),
        app::opCall("setValue",
                    {{app::opCompute(kStoreVal, 4 * W, 8 * W)}}),
        app::opCall("addReply", {{app::opCompute(kResp, W / 2, W)}}),
    };
    spec.endpoints.push_back(std::move(set));

    // Expiration cycle (activeExpireCycle-style timer task).
    app::BackgroundSpec expire;
    expire.name = "serverCron";
    expire.period = sim::milliseconds(100);
    expire.body.ops = {app::opCompute(kDict, 8 * W, 16 * W)};
    spec.background.push_back(std::move(expire));
    return spec;
}

AppLoad
redisLoad()
{
    AppLoad load;
    load.openLoop = false;  // YCSB, closed loop
    load.connections = 8;
    load.lowQps = 800;
    load.mediumQps = 2400;
    load.highQps = 4200;
    load.endpoints = {
        {0, 0.95, 48, 96},     // GET
        {1, 0.05, 560, 1600},  // SET
    };
    return load;
}

} // namespace ditto::apps
