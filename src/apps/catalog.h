/**
 * @file
 * The "original" applications of the evaluation (Sec. 6.1.2):
 * Memcached, NGINX, MongoDB, Redis, and the Social Network
 * microservice topology (with TextService and SocialGraphService as
 * the tiers reported in the figures).
 *
 * These are hand-authored models with rich internal structure --
 * instruction-level code blocks, realistic working sets, syscall and
 * RPC behaviour -- that Ditto profiles as opaque binaries. Nothing in
 * src/core may look at these specs; clones are built purely from
 * profiles.
 */

#ifndef DITTO_APPS_CATALOG_H_
#define DITTO_APPS_CATALOG_H_

#include <string>
#include <vector>

#include "app/deployment.h"
#include "app/program.h"
#include "workload/loadgen.h"

namespace ditto::apps {

/** Memcached 1.6.9-like KVS: 4 workers, 10K x 4KB items, epoll. */
app::ServiceSpec memcachedSpec();

/** NGINX 1.20-like web server: 1 worker, static content, epoll. */
app::ServiceSpec nginxSpec();

/** MongoDB 4.4-like document store: thread-per-conn, 40GB dataset. */
app::ServiceSpec mongodbSpec();

/** Redis 6.2-like single-threaded store, persistence disabled. */
app::ServiceSpec redisSpec();

/** Load definition bundled with each application. */
struct AppLoad
{
    bool openLoop = true;
    unsigned connections = 8;
    double lowQps = 0;
    double mediumQps = 0;
    double highQps = 0;
    std::vector<workload::EndpointLoad> endpoints;

    workload::LoadSpec
    at(double qps) const
    {
        workload::LoadSpec spec;
        spec.qps = qps;
        spec.connections = connections;
        spec.openLoop = openLoop;
        spec.endpoints = endpoints;
        return spec;
    }
};

/** Per-application load levels used in the Fig. 5 sweeps. */
AppLoad memcachedLoad();
AppLoad nginxLoad();
AppLoad mongodbLoad();
AppLoad redisLoad();
AppLoad socialNetworkLoad();

/**
 * Deploy the Social Network topology (DeathStarBench-style) onto a
 * machine (single-node) and return the frontend instance. Deploys
 * all tiers; call dep.wireAll() afterwards.
 */
app::ServiceInstance &deploySocialNetwork(app::Deployment &dep,
                                          os::Machine &machine);

/** Tier specs of the Social Network, in dependency order. */
std::vector<app::ServiceSpec> socialNetworkSpecs();

/** Name of the Social Network's entry tier. */
std::string socialNetworkFrontend();

} // namespace ditto::apps

#endif // DITTO_APPS_CATALOG_H_
