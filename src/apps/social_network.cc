/**
 * @file
 * Social Network microservice topology (DeathStarBench-style,
 * Sec. 6.1.2): an NGINX-like frontend fanning out to compose/read
 * paths across ~10 tiers, including the TextService and
 * SocialGraphService reported in Figs. 5, 7 and 8. The social graph
 * is sized after socfb-Reed98 (962 users, 18.8K follow edges).
 */

#include "apps/catalog.h"

#include "hw/block_builder.h"

namespace ditto::apps {

namespace {

using hw::MixWeights;
using hw::StreamKind;
using hw::StreamSpec;

/** Iteration multiplier (see single_tier.cc). */
constexpr std::uint64_t W = 100;

hw::CodeBlock
snBlock(const std::string &label, unsigned insts, MixWeights mix,
        std::vector<StreamSpec> streams, double memFrac,
        double branchFrac, std::vector<hw::BranchDesc> branches,
        std::uint64_t seed)
{
    hw::BlockSpec spec;
    spec.label = label;
    spec.instCount = insts;
    spec.mix = mix;
    spec.streams = std::move(streams);
    spec.memFraction = memFrac;
    spec.branchFraction = branchFrac;
    spec.branchKinds = std::move(branches);
    spec.depTightness = 0.45;
    spec.seed = seed;
    return hw::buildBlock(spec);
}

/** A small RPC-microservice shell: 2 epoll workers, sync client. */
app::ServiceSpec
tierShell(const std::string &name, unsigned workers = 2)
{
    app::ServiceSpec spec;
    spec.name = name;
    spec.serverModel = app::ServerModel::IoMultiplex;
    spec.clientModel = app::ClientModel::Sync;
    spec.threads.workers = workers;
    return spec;
}

} // namespace

std::vector<app::ServiceSpec>
socialNetworkSpecs()
{
    std::vector<app::ServiceSpec> tiers;

    // ---- leaf tiers ------------------------------------------------------

    // TextService: scans post text for mentions/urls (branchy parse).
    {
        app::ServiceSpec t = tierShell("sn.text");
        t.blocks.push_back(snBlock(
            "sn.text.scan", 900, MixWeights::parserCode(),
            {{24u << 10, StreamKind::Sequential, false, 1.0}},
            0.24, 0.22, {{1, 1}, {1, 2}, {2, 2}}, 101));
        t.blocks.push_back(snBlock(
            "sn.text.compose", 420, MixWeights::serverCode(),
            {{128u << 10, StreamKind::Random, false, 1.0}},
            0.30, 0.14, {{2, 3}}, 102));
        t.downstreams = {"sn.urlshorten", "sn.usermention"};
        app::EndpointSpec process;
        process.name = "process_text";
        process.responseBytesMin = 256;
        process.responseBytesMax = 1024;
        process.handler.ops = {
            app::opCall("scan", {{app::opCompute(0, 2 * W, 4 * W)}}),
            app::opRpcFanout({{0, 0, 160, 200}, {1, 0, 140, 220}}),
            app::opCall("compose", {{app::opCompute(1, 1 * W, 2 * W)}}),
        };
        t.endpoints.push_back(std::move(process));
        tiers.push_back(std::move(t));
    }

    // UrlShortenService.
    {
        app::ServiceSpec t = tierShell("sn.urlshorten");
        t.blocks.push_back(snBlock(
            "sn.urlshorten.shorten", 380, MixWeights::hashCode(),
            {{2u << 20, StreamKind::Random, true, 1.0}},
            0.28, 0.12, {{2, 3}}, 111));
        app::EndpointSpec ep;
        ep.name = "shorten";
        ep.responseBytesMin = ep.responseBytesMax = 96;
        ep.handler.ops = {
            app::opCall("shorten", {{app::opCompute(0, 1 * W, 3 * W)}}),
        };
        t.endpoints.push_back(std::move(ep));
        tiers.push_back(std::move(t));
    }

    // UserMentionService.
    {
        app::ServiceSpec t = tierShell("sn.usermention");
        t.blocks.push_back(snBlock(
            "sn.usermention.find", 340, MixWeights::serverCode(),
            {{4u << 20, StreamKind::Random, true, 1.0}},
            0.30, 0.14, {{2, 2}, {3, 3}}, 121));
        app::EndpointSpec ep;
        ep.name = "find_mentions";
        ep.responseBytesMin = ep.responseBytesMax = 128;
        ep.handler.ops = {
            app::opCall("find", {{app::opCompute(0, 1 * W, 3 * W)}}),
        };
        t.endpoints.push_back(std::move(ep));
        tiers.push_back(std::move(t));
    }

    // UserService: credentials / user id lookups.
    {
        app::ServiceSpec t = tierShell("sn.user");
        t.blocks.push_back(snBlock(
            "sn.user.lookup", 300, MixWeights::hashCode(),
            {{6u << 20, StreamKind::PointerChase, true, 0.7},
             {64u << 10, StreamKind::Random, true, 0.3}},
            0.30, 0.12, {{2, 3}}, 131));
        app::EndpointSpec ep;
        ep.name = "get_user";
        ep.responseBytesMin = ep.responseBytesMax = 160;
        ep.handler.ops = {
            app::opCall("lookup", {{app::opCompute(0, 2 * W, 4 * W)}}),
        };
        t.endpoints.push_back(std::move(ep));
        tiers.push_back(std::move(t));
    }

    // MediaService.
    {
        app::ServiceSpec t = tierShell("sn.media");
        t.blocks.push_back(snBlock(
            "sn.media.process", 520, MixWeights::numericCode(),
            {{8u << 20, StreamKind::Sequential, false, 1.0}},
            0.36, 0.08, {{2, 4}}, 141));
        app::EndpointSpec ep;
        ep.name = "get_media";
        ep.responseBytesMin = 256;
        ep.responseBytesMax = 2048;
        ep.handler.ops = {
            app::opCall("media", {{app::opCompute(0, 1 * W, 4 * W)}}),
        };
        t.endpoints.push_back(std::move(ep));
        tiers.push_back(std::move(t));
    }

    // SocialGraphService: follower/followee adjacency (Reed98-sized:
    // 962 users, 18.8K edges, plus a Redis-like cache in front).
    {
        app::ServiceSpec t = tierShell("sn.socialgraph");
        t.locks = 1;
        t.blocks.push_back(snBlock(
            "sn.socialgraph.adj_walk", 220, MixWeights::serverCode(),
            {{1u << 20, StreamKind::PointerChase, true, 0.65},
             {512u << 10, StreamKind::Sequential, true, 0.35}},
            0.34, 0.14, {{1, 2}, {3, 3}}, 151));
        t.blocks.push_back(snBlock(
            "sn.socialgraph.cache", 180, MixWeights::hashCode(),
            {{8u << 20, StreamKind::Random, true, 1.0}},
            0.32, 0.10, {{2, 3}}, 152));
        app::EndpointSpec followers;
        followers.name = "get_followers";
        followers.responseBytesMin = 128;
        followers.responseBytesMax = 2048;  // follower lists vary
        followers.handler.ops = {
            app::opCall("cache_get", {{app::opCompute(1, 1 * W, 2 * W)}}),
            app::opCall("adjacency", {{app::opCompute(0, 2 * W, 8 * W)}}),
        };
        t.endpoints.push_back(std::move(followers));
        tiers.push_back(std::move(t));
    }

    // PostStorageService: MongoDB-backed post store with cache.
    {
        app::ServiceSpec t = tierShell("sn.poststorage");
        t.fileBytes = {8ull << 30};
        t.filePrewarmFraction = 0.02;
        t.blocks.push_back(snBlock(
            "sn.poststorage.cache", 240, MixWeights::hashCode(),
            {{24u << 20, StreamKind::Random, true, 1.0}},
            0.36, 0.10, {{2, 3}}, 161));
        t.blocks.push_back(snBlock(
            "sn.poststorage.codec", 420, MixWeights::serverCode(),
            {{512u << 10, StreamKind::Sequential, false, 1.0}},
            0.30, 0.12, {{2, 3}}, 162));
        app::EndpointSpec read;
        read.name = "read_posts";
        read.responseBytesMin = 1024;
        read.responseBytesMax = 6144;
        read.handler.ops = {
            app::opCall("cache_get", {{app::opCompute(0, 2 * W, 4 * W)}}),
            // ~8% of post reads miss the cache and hit storage.
            app::opChoice({0.92, 0.08},
                          {{}, {{app::opFileRead(0, 4096, 16384)}}}),
            app::opCall("decode", {{app::opCompute(1, 1 * W, 3 * W)}}),
        };
        t.endpoints.push_back(std::move(read));
        app::EndpointSpec store;
        store.name = "store_post";
        store.responseBytesMin = store.responseBytesMax = 64;
        store.handler.ops = {
            app::opCall("encode", {{app::opCompute(1, 1 * W, 3 * W)}}),
            app::opCall("cache_put", {{app::opCompute(0, 2 * W, 3 * W)}}),
            app::opChoice({0.7, 0.3},
                          {{}, {{app::opFileWrite(0, 2048, 8192)}}}),
        };
        t.endpoints.push_back(std::move(store));
        tiers.push_back(std::move(t));
    }

    // UserTimelineService.
    {
        app::ServiceSpec t = tierShell("sn.usertimeline");
        t.downstreams = {"sn.poststorage"};
        t.blocks.push_back(snBlock(
            "sn.usertimeline.index", 280, MixWeights::serverCode(),
            {{12u << 20, StreamKind::Random, true, 1.0}},
            0.32, 0.12, {{2, 3}}, 171));
        app::EndpointSpec read;
        read.name = "read_timeline";
        read.responseBytesMin = 1024;
        read.responseBytesMax = 8192;
        read.handler.ops = {
            app::opCall("index_get", {{app::opCompute(0, 2 * W, 4 * W)}}),
            app::opRpc(0, 0, 256, 4096),  // read_posts
        };
        t.endpoints.push_back(std::move(read));
        app::EndpointSpec write;
        write.name = "write_timeline";
        write.responseBytesMin = write.responseBytesMax = 48;
        write.handler.ops = {
            app::opCall("index_put", {{app::opCompute(0, 2 * W, 4 * W)}}),
        };
        t.endpoints.push_back(std::move(write));
        tiers.push_back(std::move(t));
    }

    // HomeTimelineService: fans out to the social graph on writes.
    {
        app::ServiceSpec t = tierShell("sn.hometimeline");
        t.downstreams = {"sn.poststorage", "sn.socialgraph"};
        t.blocks.push_back(snBlock(
            "sn.hometimeline.cache", 300, MixWeights::hashCode(),
            {{16u << 20, StreamKind::Random, true, 1.0}},
            0.34, 0.10, {{2, 3}}, 181));
        app::EndpointSpec read;
        read.name = "read_home";
        read.responseBytesMin = 1024;
        read.responseBytesMax = 8192;
        read.handler.ops = {
            app::opCall("cache_get", {{app::opCompute(0, 2 * W, 5 * W)}}),
            app::opRpc(0, 0, 256, 4096),  // read_posts
        };
        t.endpoints.push_back(std::move(read));
        app::EndpointSpec write;
        write.name = "write_home";
        write.responseBytesMin = write.responseBytesMax = 48;
        write.handler.ops = {
            app::opRpc(1, 0, 128, 1024),  // get_followers
            app::opCall("fanout_insert", {{app::opCompute(0, 4 * W, 10 * W)}}),
        };
        t.endpoints.push_back(std::move(write));
        tiers.push_back(std::move(t));
    }

    // ComposePostService: orchestrates the write path (async fanout).
    {
        app::ServiceSpec t = tierShell("sn.compose");
        t.clientModel = app::ClientModel::Async;
        t.downstreams = {"sn.text", "sn.user", "sn.media",
                         "sn.poststorage", "sn.usertimeline",
                         "sn.hometimeline"};
        t.blocks.push_back(snBlock(
            "sn.compose.assemble", 460, MixWeights::serverCode(),
            {{256u << 10, StreamKind::Sequential, false, 1.0}},
            0.28, 0.14, {{1, 2}, {2, 3}}, 191));
        app::EndpointSpec compose;
        compose.name = "compose_post";
        compose.responseBytesMin = compose.responseBytesMax = 128;
        compose.handler.ops = {
            // Parallel gather of the post's components.
            app::opRpcFanout({{0, 0, 512, 640},    // text
                              {1, 0, 96, 160},     // user
                              {2, 0, 128, 1024}}), // media
            app::opCall("assemble", {{app::opCompute(0, 1 * W, 3 * W)}}),
            // Then persist and fan out to timelines.
            app::opRpcFanout({{3, 1, 2048, 64},    // store_post
                              {4, 1, 256, 48},     // write user tl
                              {5, 1, 256, 48}}),   // write home tl
        };
        t.endpoints.push_back(std::move(compose));
        tiers.push_back(std::move(t));
    }

    // Frontend (NGINX + php-fpm-ish shim).
    {
        app::ServiceSpec t = tierShell("sn.frontend", 2);
        t.downstreams = {"sn.compose", "sn.hometimeline",
                         "sn.usertimeline"};
        t.blocks.push_back(snBlock(
            "sn.frontend.http", 800, MixWeights::parserCode(),
            {{24u << 10, StreamKind::Sequential, false, 1.0}},
            0.24, 0.20, {{1, 1}, {2, 2}}, 201));
        t.blocks.push_back(snBlock(
            "sn.frontend.render", 380, MixWeights::serverCode(),
            {{128u << 10, StreamKind::Sequential, false, 1.0}},
            0.30, 0.12, {{2, 3}}, 202));

        app::EndpointSpec compose;
        compose.name = "wrk2-api/post/compose";
        compose.responseBytesMin = compose.responseBytesMax = 256;
        compose.handler.ops = {
            app::opCall("http", {{app::opCompute(0, 1 * W, 2 * W)}}),
            app::opRpc(0, 0, 1024, 128),
            app::opCall("render", {{app::opCompute(1, 1 * W, 1 * W)}}),
        };
        t.endpoints.push_back(std::move(compose));

        app::EndpointSpec readHome;
        readHome.name = "wrk2-api/home-timeline/read";
        readHome.responseBytesMin = 2048;
        readHome.responseBytesMax = 10240;
        readHome.handler.ops = {
            app::opCall("http", {{app::opCompute(0, 1 * W, 2 * W)}}),
            app::opRpc(1, 0, 256, 4096),
            app::opCall("render", {{app::opCompute(1, 1 * W, 2 * W)}}),
        };
        t.endpoints.push_back(std::move(readHome));

        app::EndpointSpec readUser;
        readUser.name = "wrk2-api/user-timeline/read";
        readUser.responseBytesMin = 2048;
        readUser.responseBytesMax = 10240;
        readUser.handler.ops = {
            app::opCall("http", {{app::opCompute(0, 1 * W, 2 * W)}}),
            app::opRpc(2, 0, 256, 4096),
            app::opCall("render", {{app::opCompute(1, 1 * W, 2 * W)}}),
        };
        t.endpoints.push_back(std::move(readUser));
        tiers.push_back(std::move(t));
    }

    return tiers;
}

std::string
socialNetworkFrontend()
{
    return "sn.frontend";
}

app::ServiceInstance &
deploySocialNetwork(app::Deployment &dep, os::Machine &machine)
{
    app::ServiceInstance *frontend = nullptr;
    for (const app::ServiceSpec &tier : socialNetworkSpecs()) {
        app::ServiceInstance &svc = dep.deploy(tier, machine);
        if (tier.name == socialNetworkFrontend())
            frontend = &svc;
    }
    return *frontend;
}

AppLoad
socialNetworkLoad()
{
    AppLoad load;
    load.openLoop = true;  // modified wrk2, open loop
    load.connections = 16;
    load.lowQps = 300;
    load.mediumQps = 1000;
    load.highQps = 2000;
    load.endpoints = {
        {1, 0.60, 160, 320},   // read home timeline
        {2, 0.30, 160, 320},   // read user timeline
        {0, 0.10, 640, 1280},  // compose post
    };
    return load;
}

} // namespace ditto::apps
