#include "core/topology_analyzer.h"

#include <algorithm>
#include <set>

namespace ditto::core {

std::vector<profile::EdgeProfile>
Topology::outEdges(const std::string &service) const
{
    std::vector<profile::EdgeProfile> out;
    for (const auto &e : edges) {
        if (e.caller == service)
            out.push_back(e);
    }
    return out;
}

bool
Topology::contains(const std::string &service) const
{
    return std::find(services.begin(), services.end(), service) !=
        services.end();
}

Topology
analyzeTopology(const trace::Tracer &tracer)
{
    Topology topo;

    // Server spans per service.
    for (const trace::Span &span : tracer.spans())
        topo.requestCounts[span.service] += 1;

    // Aggregate client edges: (caller, callee, endpoint) -> stats.
    struct Agg
    {
        double count = 0;
        double reqBytes = 0;
        double respBytes = 0;
    };
    std::map<std::tuple<std::string, std::string, std::uint32_t>, Agg>
        aggs;
    for (const trace::RpcEdge &edge : tracer.edges()) {
        Agg &a = aggs[{edge.caller, edge.callee, edge.endpoint}];
        a.count += 1;
        a.reqBytes += edge.requestBytes;
        a.respBytes += edge.responseBytes;
    }

    std::set<std::string> callees;
    for (const auto &[key, agg] : aggs) {
        const auto &[caller, callee, endpoint] = key;
        profile::EdgeProfile e;
        e.caller = caller;
        e.callee = callee;
        e.endpoint = endpoint;
        const double callerRequests =
            std::max(1.0, topo.requestCounts[caller]);
        e.callsPerCallerRequest = agg.count / callerRequests;
        e.avgRequestBytes = agg.reqBytes / agg.count;
        e.avgResponseBytes = agg.respBytes / agg.count;
        topo.edges.push_back(e);
        callees.insert(callee);
        if (topo.requestCounts.find(caller) == topo.requestCounts.end())
            topo.requestCounts[caller] = 0;
    }

    // Root: a service with spans but never a callee. Topological
    // order: repeatedly emit services all of whose callees are done.
    std::set<std::string> all;
    for (const auto &[name, count] : topo.requestCounts) {
        (void)count;
        all.insert(name);
    }
    for (const std::string &name : all) {
        if (callees.find(name) == callees.end())
            topo.root = name;
    }

    std::set<std::string> emitted;
    while (emitted.size() < all.size()) {
        bool progress = false;
        for (const std::string &name : all) {
            if (emitted.count(name))
                continue;
            bool ready = true;
            for (const auto &e : topo.edges) {
                if (e.caller == name && !emitted.count(e.callee) &&
                    e.callee != name) {
                    ready = false;
                    break;
                }
            }
            if (ready) {
                topo.services.push_back(name);
                emitted.insert(name);
                progress = true;
            }
        }
        if (!progress) {
            // Cycle (shouldn't happen for a DAG): emit the rest.
            for (const std::string &name : all) {
                if (!emitted.count(name)) {
                    topo.services.push_back(name);
                    emitted.insert(name);
                }
            }
        }
    }
    return topo;
}

} // namespace ditto::core
