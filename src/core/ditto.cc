#include "core/ditto.h"

#include "profile/perf_report.h"

namespace ditto::core {

workload::LoadSpec
cloneLoadSpec(const workload::LoadSpec &original)
{
    workload::LoadSpec spec = original;
    for (auto &ep : spec.endpoints)
        ep.endpoint = 0;  // clones expose a single endpoint
    return spec;
}

namespace {

/** Deploy a candidate clone in a sandbox and measure its counters. */
profile::PerfReport
runCandidate(const app::ServiceSpec &spec,
             const workload::LoadSpec &loadSpec,
             const hw::PlatformSpec &platform, sim::Time warmup,
             sim::Time window, std::uint64_t seed)
{
    app::Deployment sandbox(seed);
    os::Machine &machine = sandbox.addMachine("tune", platform);
    app::ServiceInstance &svc = sandbox.deploy(spec, machine);
    sandbox.wireAll();
    workload::LoadGen gen(sandbox, svc, loadSpec, seed ^ 0x7e57);
    gen.start();
    sandbox.runFor(warmup);
    sandbox.beginMeasureAll();
    gen.beginMeasure();
    sandbox.runFor(window);
    profile::PerfReport report = profile::snapshotService(svc);
    profile::overrideLatency(report, gen.latency());
    return report;
}

} // namespace

CloneResult
cloneService(app::Deployment &dep, app::ServiceInstance &svc,
             const workload::LoadSpec &loadSpec,
             const hw::PlatformSpec &platform, const CloneOptions &opts)
{
    CloneResult result;

    // 1. Profile the running original.
    result.profile = profile::profileService(dep, svc, opts.profiling);

    // 2. Infer the skeleton from the probe observations.
    result.skeleton = analyzeSkeleton(
        result.profile.threads, opts.profiling.window,
        loadSpec.connections, result.profile.asyncEvidence);

    // 3. Generate, optionally fine-tuning against the reference
    //    counters on a sandbox deployment.
    const std::map<std::string, std::string> nameMap = {
        {result.profile.serviceName,
         result.profile.serviceName + opts.cloneSuffix}};
    const std::vector<profile::EdgeProfile> noEdges;

    result.config = opts.gen;
    if (opts.fineTune) {
        const workload::LoadSpec tuneLoad = cloneLoadSpec(loadSpec);
        CloneRunner runner = [&](const GenerationConfig &cfg) {
            const app::ServiceSpec candidate = generateClone(
                result.profile, result.skeleton, noEdges, nameMap,
                cfg);
            return runCandidate(candidate, tuneLoad, platform,
                                opts.tuneWarmup, opts.tuneWindow,
                                dep.seed() ^ 0x745e5eedull);
        };
        TuneOptions tuneOpts;
        tuneOpts.maxIterations = opts.maxTuneIterations;
        tuneOpts.tolerance = opts.tuneTolerance;
        tuneOpts.executor = opts.executor;
        result.tuning = fineTune(result.profile.reference, opts.gen,
                                 runner, tuneOpts);
        result.config = result.tuning.config;
    }

    result.spec = generateClone(result.profile, result.skeleton,
                                noEdges, nameMap, result.config);
    return result;
}

TopologyCloneResult
cloneTopology(app::Deployment &dep,
              const std::vector<std::string> &tiers,
              unsigned rootConnections, const CloneOptions &opts)
{
    TopologyCloneResult result;

    // 1. Recover the DAG from the traces collected so far plus the
    //    profiling windows below.
    // 2. Profile each tier in turn while the whole topology runs.
    std::map<std::string, std::string> nameMap;
    for (const std::string &tier : tiers)
        nameMap[tier] = tier + opts.cloneSuffix;

    for (const std::string &tier : tiers) {
        app::ServiceInstance *svc = dep.find(tier);
        if (!svc)
            continue;
        CloneResult clone;
        clone.profile =
            profile::profileService(dep, *svc, opts.profiling);
        clone.skeleton = analyzeSkeleton(
            clone.profile.threads, opts.profiling.window,
            rootConnections, clone.profile.asyncEvidence);
        clone.config = opts.gen;

        if (opts.fineTune) {
            // Tune each tier in a sandbox against its in-situ
            // reference counters, driven at the rate and request
            // sizes it actually observed. The candidate omits
            // downstream RPCs (they don't exist in the sandbox);
            // the CPU counters the tuner matches are unaffected.
            workload::LoadSpec tierLoad;
            tierLoad.qps = clone.profile.requestsObserved /
                sim::toSeconds(opts.profiling.window);
            tierLoad.connections = std::min(16u, rootConnections);
            tierLoad.openLoop = true;
            const auto req = static_cast<std::uint32_t>(
                std::max(32.0, clone.profile.avgRequestBytes));
            tierLoad.endpoints = {{0, 1.0, req, req}};

            const std::map<std::string, std::string> tierMap = {
                {tier, tier + opts.cloneSuffix}};
            CloneRunner runner =
                [&](const GenerationConfig &cfg) {
                    const app::ServiceSpec candidate = generateClone(
                        clone.profile, clone.skeleton, {}, tierMap,
                        cfg);
                    return runCandidate(candidate, tierLoad,
                                        svc->machine().spec(),
                                        opts.tuneWarmup,
                                        opts.tuneWindow,
                                        dep.seed() ^ 0x7e57e4);
                };
            TuneOptions tuneOpts;
            tuneOpts.maxIterations = opts.maxTuneIterations;
            tuneOpts.tolerance = opts.tuneTolerance;
            tuneOpts.executor = opts.executor;
            clone.tuning = fineTune(clone.profile.reference, opts.gen,
                                    runner, tuneOpts);
            clone.config = clone.tuning.config;
        }
        result.perService.emplace(tier, std::move(clone));
    }

    result.topology = analyzeTopology(dep.tracer());

    // 3. Generate clones in dependency order so downstream clones
    //    exist before their callers are deployed.
    for (const std::string &tier : result.topology.services) {
        auto it = result.perService.find(tier);
        if (it == result.perService.end())
            continue;
        CloneResult &clone = it->second;
        clone.spec = generateClone(
            clone.profile, clone.skeleton,
            result.topology.outEdges(tier), nameMap, clone.config);
        result.specs.push_back(clone.spec);
    }
    // Tiers never seen in traces (no spans) still need clones if
    // requested; generate them without RPC edges.
    for (const std::string &tier : tiers) {
        auto it = result.perService.find(tier);
        if (it == result.perService.end())
            continue;
        if (!result.topology.contains(tier)) {
            CloneResult &clone = it->second;
            clone.spec = generateClone(clone.profile, clone.skeleton,
                                       {}, nameMap, clone.config);
            result.specs.push_back(clone.spec);
        }
    }

    if (!result.topology.root.empty())
        result.rootClone = nameMap[result.topology.root];
    return result;
}

} // namespace ditto::core
