/**
 * @file
 * Fine tuning (Sec. 4.5): feedback-driven calibration of the
 * generator knobs against the original's performance counters.
 *
 * Knobs are tuned in near-orthogonal groups, mirroring the paper's
 * observation that knob/metric relationships are mostly linear:
 *   - instScale        <- instructions per request
 *   - imemTailScale +
 *     branchExpShift   <- L1i miss rate + branch misprediction (the
 *                         paper notes these must be tuned jointly)
 *   - dmemTailScale    <- L1d/L2/LLC miss rates
 *   - chaseScale       <- residual IPC error (MLP)
 */

#ifndef DITTO_CORE_FINE_TUNER_H_
#define DITTO_CORE_FINE_TUNER_H_

#include <functional>
#include <vector>

#include "core/body_generator.h"
#include "profile/perf_report.h"
#include "profile/profile_data.h"

namespace ditto::core {

/** One tuning iteration's observed errors. */
struct TuneStep
{
    profile::PerfReport report;
    double ipcError = 0;
    double instError = 0;
    double maxError = 0;
};

struct TuneResult
{
    GenerationConfig config;
    unsigned iterations = 0;
    double finalIpcError = 0;
    std::vector<TuneStep> trace;
    bool converged = false;
};

/** Runs a candidate clone config and reports its counters. */
using CloneRunner =
    std::function<profile::PerfReport(const GenerationConfig &)>;

/**
 * Iterate generator configs until the clone's counters match the
 * profiled reference within `tolerance`, or `maxIterations` passes.
 */
TuneResult fineTune(const profile::ReferenceCounters &target,
                    const GenerationConfig &initial,
                    const CloneRunner &run,
                    unsigned maxIterations = 10,
                    double tolerance = 0.05);

} // namespace ditto::core

#endif // DITTO_CORE_FINE_TUNER_H_
