/**
 * @file
 * Fine tuning (Sec. 4.5): feedback-driven calibration of the
 * generator knobs against the original's performance counters.
 *
 * Knobs are tuned in near-orthogonal groups, mirroring the paper's
 * observation that knob/metric relationships are mostly linear:
 *   - instScale        <- instructions per request
 *   - imemTailScale +
 *     branchExpShift   <- L1i miss rate + branch misprediction (the
 *                         paper notes these must be tuned jointly)
 *   - dmemTailScale    <- L1d/L2/LLC miss rates
 *   - chaseScale       <- residual IPC error (MLP)
 *
 * With a RunExecutor attached, each iteration proposes a *fixed* set
 * of candidate step sizes for the grouped-knob update (damped /
 * nominal / aggressive), evaluates them concurrently, and picks the
 * winner deterministically (lowest max error; ties break toward the
 * nominal step). The candidate set never depends on the worker
 * count, so tuning with 8 jobs is bit-identical to 1 job.
 */

#ifndef DITTO_CORE_FINE_TUNER_H_
#define DITTO_CORE_FINE_TUNER_H_

#include <functional>
#include <vector>

#include "core/body_generator.h"
#include "profile/perf_report.h"
#include "profile/profile_data.h"
#include "sim/run_executor.h"

namespace ditto::core {

/** One tuning iteration's observed errors (the winning candidate). */
struct TuneStep
{
    profile::PerfReport report;
    double ipcError = 0;
    double instError = 0;
    double maxError = 0;
};

struct TuneResult
{
    GenerationConfig config;
    unsigned iterations = 0;
    double finalIpcError = 0;
    std::vector<TuneStep> trace;
    bool converged = false;
};

/** Runs a candidate clone config and reports its counters. */
using CloneRunner =
    std::function<profile::PerfReport(const GenerationConfig &)>;

/** Knobs of the tuning loop itself. */
struct TuneOptions
{
    unsigned maxIterations = 10;
    double tolerance = 0.05;
    /**
     * When set, each iteration evaluates `fanout` candidate step
     * sizes concurrently on the executor (the CloneRunner must be
     * safe to invoke from several threads; runners that deploy
     * candidates in fresh sandbox deployments are). When null, the
     * classic one-candidate-per-iteration loop runs inline.
     */
    sim::RunExecutor *executor = nullptr;
    /** Candidate step sizes per iteration (clamped to [1, 3]). */
    unsigned fanout = 3;
};

/**
 * Iterate generator configs until the clone's counters match the
 * profiled reference within tolerance, or maxIterations passes.
 * `iterations` counts loop iterations, not runner invocations.
 */
TuneResult fineTune(const profile::ReferenceCounters &target,
                    const GenerationConfig &initial,
                    const CloneRunner &run, const TuneOptions &opts);

/** Convenience overload for the serial single-candidate loop. */
TuneResult fineTune(const profile::ReferenceCounters &target,
                    const GenerationConfig &initial,
                    const CloneRunner &run,
                    unsigned maxIterations = 10,
                    double tolerance = 0.05);

} // namespace ditto::core

#endif // DITTO_CORE_FINE_TUNER_H_
