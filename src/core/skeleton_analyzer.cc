#include "core/skeleton_analyzer.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "app/service.h"

namespace ditto::core {

// ---------------------------------------------------------------------------
// CallTree
// ---------------------------------------------------------------------------

int
CallTree::findOrAdd(int parent, const std::string &label)
{
    for (int child : nodes_[parent].children) {
        if (nodes_[child].label == label)
            return child;
    }
    nodes_.push_back(Node{label, {}});
    const int id = static_cast<int>(nodes_.size() - 1);
    nodes_[parent].children.push_back(id);
    return id;
}

CallTree
CallTree::fromPaths(const std::vector<std::string> &paths)
{
    CallTree tree;
    tree.nodes_.push_back(Node{"<root>", {}});
    for (const std::string &path : paths) {
        int cur = 0;
        std::size_t pos = 0;
        while (pos < path.size()) {
            if (path[pos] == '/') {
                ++pos;
                continue;
            }
            const std::size_t end = path.find('/', pos);
            const std::string label = path.substr(
                pos, end == std::string::npos ? std::string::npos
                                              : end - pos);
            cur = tree.findOrAdd(cur, label);
            if (end == std::string::npos)
                break;
            pos = end;
        }
    }
    return tree;
}

// ---------------------------------------------------------------------------
// Zhang-Shasha tree edit distance
// ---------------------------------------------------------------------------

namespace {

/** Postorder-indexed representation used by the DP. */
struct ZsTree
{
    std::vector<std::string> labels;  //!< by postorder index
    std::vector<int> lml;             //!< leftmost-leaf per node
    std::vector<int> keyroots;
};

/** Build the ZS arrays (postorder labels, leftmost leaves, keyroots). */
ZsTree
buildZs(const CallTree &tree)
{
    ZsTree zs;
    if (tree.size() == 0)
        return zs;

    // Iterative two-pass: first compute postorder indices.
    std::vector<int> postIdx(tree.size(), -1);
    {
        // Emit postorder.
        std::vector<std::pair<int, std::size_t>> stack;
        stack.push_back({tree.root(), 0});
        while (!stack.empty()) {
            auto &[node, childPos] = stack.back();
            const auto &n =
                tree.nodes()[static_cast<std::size_t>(node)];
            if (childPos < n.children.size()) {
                const int child = n.children[childPos];
                ++childPos;
                stack.push_back({child, 0});
            } else {
                postIdx[static_cast<std::size_t>(node)] =
                    static_cast<int>(zs.labels.size());
                zs.labels.push_back(n.label);
                stack.pop_back();
            }
        }
    }

    // Leftmost leaf per node (in postorder indices): lml(node) =
    // lml(first child), or postIdx(node) for leaves.
    zs.lml.assign(zs.labels.size(), 0);
    {
        std::vector<int> lmlByNode(tree.size(), -1);
        struct Frame
        {
            int node;
            std::size_t childPos;
        };
        std::vector<Frame> frames;
        frames.push_back({tree.root(), 0});
        while (!frames.empty()) {
            Frame &f = frames.back();
            const auto &n =
                tree.nodes()[static_cast<std::size_t>(f.node)];
            if (f.childPos < n.children.size()) {
                // Advance before push_back: growth reallocates the
                // frame vector and would leave `f` dangling.
                const int child = n.children[f.childPos];
                ++f.childPos;
                frames.push_back({child, 0});
            } else {
                int lml;
                if (n.children.empty()) {
                    lml = postIdx[static_cast<std::size_t>(f.node)];
                } else {
                    lml = lmlByNode[static_cast<std::size_t>(
                        n.children.front())];
                }
                lmlByNode[static_cast<std::size_t>(f.node)] = lml;
                zs.lml[static_cast<std::size_t>(
                    postIdx[static_cast<std::size_t>(f.node)])] = lml;
                frames.pop_back();
            }
        }
    }

    // Keyroots: nodes with distinct lml values, keeping the highest
    // postorder index per lml.
    std::map<int, int> highestByLml;
    for (std::size_t i = 0; i < zs.lml.size(); ++i)
        highestByLml[zs.lml[i]] = static_cast<int>(i);
    for (const auto &[lml, idx] : highestByLml) {
        (void)lml;
        zs.keyroots.push_back(idx);
    }
    std::sort(zs.keyroots.begin(), zs.keyroots.end());
    return zs;
}

} // namespace

double
treeEditDistance(const CallTree &a, const CallTree &b)
{
    const ZsTree t1 = buildZs(a);
    const ZsTree t2 = buildZs(b);
    const auto n = static_cast<int>(t1.labels.size());
    const auto m = static_cast<int>(t2.labels.size());
    if (n == 0 || m == 0)
        return static_cast<double>(n + m);

    std::vector<std::vector<double>> treedist(
        static_cast<std::size_t>(n),
        std::vector<double>(static_cast<std::size_t>(m), 0));
    std::vector<std::vector<double>> fd(
        static_cast<std::size_t>(n + 1),
        std::vector<double>(static_cast<std::size_t>(m + 1), 0));

    auto cost_rename = [&](int i, int j) {
        return t1.labels[static_cast<std::size_t>(i)] ==
            t2.labels[static_cast<std::size_t>(j)] ? 0.0 : 1.0;
    };

    for (int kr1 : t1.keyroots) {
        for (int kr2 : t2.keyroots) {
            const int l1 = t1.lml[static_cast<std::size_t>(kr1)];
            const int l2 = t2.lml[static_cast<std::size_t>(kr2)];
            const int rows = kr1 - l1 + 2;
            const int cols = kr2 - l2 + 2;
            fd[0][0] = 0;
            for (int i = 1; i < rows; ++i)
                fd[static_cast<std::size_t>(i)][0] =
                    fd[static_cast<std::size_t>(i - 1)][0] + 1;
            for (int j = 1; j < cols; ++j)
                fd[0][static_cast<std::size_t>(j)] =
                    fd[0][static_cast<std::size_t>(j - 1)] + 1;
            for (int i = 1; i < rows; ++i) {
                for (int j = 1; j < cols; ++j) {
                    const int di = l1 + i - 1;
                    const int dj = l2 + j - 1;
                    const auto ii = static_cast<std::size_t>(i);
                    const auto jj = static_cast<std::size_t>(j);
                    if (t1.lml[static_cast<std::size_t>(di)] == l1 &&
                        t2.lml[static_cast<std::size_t>(dj)] == l2) {
                        fd[ii][jj] = std::min(
                            {fd[ii - 1][jj] + 1, fd[ii][jj - 1] + 1,
                             fd[ii - 1][jj - 1] +
                                 cost_rename(di, dj)});
                        treedist[static_cast<std::size_t>(di)]
                                [static_cast<std::size_t>(dj)] =
                            fd[ii][jj];
                    } else {
                        const int pi =
                            t1.lml[static_cast<std::size_t>(di)] - l1;
                        const int pj =
                            t2.lml[static_cast<std::size_t>(dj)] - l2;
                        fd[ii][jj] = std::min(
                            {fd[ii - 1][jj] + 1, fd[ii][jj - 1] + 1,
                             fd[static_cast<std::size_t>(pi)]
                               [static_cast<std::size_t>(pj)] +
                                 treedist[static_cast<std::size_t>(di)]
                                         [static_cast<std::size_t>(
                                             dj)]});
                    }
                }
            }
        }
    }
    return treedist[static_cast<std::size_t>(n - 1)]
                   [static_cast<std::size_t>(m - 1)];
}

// ---------------------------------------------------------------------------
// Agglomerative clustering
// ---------------------------------------------------------------------------

std::vector<int>
agglomerativeCluster(const std::vector<std::vector<double>> &distance,
                     double threshold)
{
    const std::size_t n = distance.size();
    std::vector<int> cluster(n);
    for (std::size_t i = 0; i < n; ++i)
        cluster[i] = static_cast<int>(i);

    auto avg_linkage = [&](int a, int b) {
        double sum = 0;
        int count = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (cluster[i] != a)
                continue;
            for (std::size_t j = 0; j < n; ++j) {
                if (cluster[j] != b)
                    continue;
                sum += distance[i][j];
                ++count;
            }
        }
        return count ? sum / count : 1e9;
    };

    while (true) {
        // Find the closest pair of live clusters.
        double best = threshold;
        int bestA = -1;
        int bestB = -1;
        std::vector<int> live;
        for (std::size_t i = 0; i < n; ++i) {
            if (std::find(live.begin(), live.end(), cluster[i]) ==
                live.end()) {
                live.push_back(cluster[i]);
            }
        }
        for (std::size_t a = 0; a < live.size(); ++a) {
            for (std::size_t b = a + 1; b < live.size(); ++b) {
                const double d = avg_linkage(live[a], live[b]);
                if (d <= best) {
                    best = d;
                    bestA = live[a];
                    bestB = live[b];
                }
            }
        }
        if (bestA < 0)
            break;
        for (std::size_t i = 0; i < n; ++i) {
            if (cluster[i] == bestB)
                cluster[i] = bestA;
        }
    }

    // Renumber densely.
    std::map<int, int> renumber;
    for (std::size_t i = 0; i < n; ++i) {
        if (renumber.find(cluster[i]) == renumber.end()) {
            const int next = static_cast<int>(renumber.size());
            renumber[cluster[i]] = next;
        }
        cluster[i] = renumber[cluster[i]];
    }
    return cluster;
}

// ---------------------------------------------------------------------------
// Skeleton inference
// ---------------------------------------------------------------------------

SkeletonInference
analyzeSkeleton(const std::vector<profile::ThreadObservation> &threads,
                sim::Time window, unsigned connections,
                double asyncEvidence)
{
    using app::SysKind;
    SkeletonInference inf;
    inf.clientModel = asyncEvidence > 0.25 ? app::ClientModel::Async
                                           : app::ClientModel::Sync;
    if (threads.empty())
        return inf;

    const std::size_t n = threads.size();

    // Pairwise distances: tree-edit (normalized) + syscall cosine.
    std::vector<CallTree> trees;
    trees.reserve(n);
    for (const auto &t : threads)
        trees.push_back(CallTree::fromPaths(t.callPaths));

    auto syscall_vec = [&](const profile::ThreadObservation &t) {
        std::vector<double> v(16, 0.0);
        for (const auto &[k, c] : t.syscallCounts) {
            if (k >= 0 && k < 16)
                v[static_cast<std::size_t>(k)] =
                    static_cast<double>(c);
        }
        double norm = 0;
        for (double x : v)
            norm += x * x;
        norm = std::sqrt(norm);
        if (norm > 0) {
            for (double &x : v)
                x /= norm;
        }
        return v;
    };

    std::vector<std::vector<double>> dist(
        n, std::vector<double>(n, 0.0));
    std::vector<std::vector<double>> sysvecs;
    sysvecs.reserve(n);
    for (const auto &t : threads)
        sysvecs.push_back(syscall_vec(t));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double ted = treeEditDistance(trees[i], trees[j]);
            const double maxSize = static_cast<double>(
                std::max(trees[i].size(), trees[j].size()));
            const double tedNorm =
                maxSize > 0 ? ted / maxSize : 0.0;
            double dot = 0;
            for (std::size_t k = 0; k < sysvecs[i].size(); ++k)
                dot += sysvecs[i][k] * sysvecs[j][k];
            const double cosDist = 1.0 - dot;
            dist[i][j] = dist[j][i] = 0.5 * tedNorm + 0.5 * cosDist;
        }
    }

    inf.clusterOf = agglomerativeCluster(dist, 0.30);
    int maxCluster = 0;
    for (int c : inf.clusterOf)
        maxCluster = std::max(maxCluster, c);
    inf.clusterCount = static_cast<unsigned>(maxCluster + 1);

    // Classify clusters.
    auto count_of = [](const profile::ThreadObservation &t,
                       SysKind kind) -> std::uint64_t {
        const auto it =
            t.syscallCounts.find(static_cast<int>(kind));
        return it != t.syscallCounts.end() ? it->second : 0;
    };
    auto empty_of = [](const profile::ThreadObservation &t,
                       SysKind kind) -> std::uint64_t {
        const auto it =
            t.emptySyscallCounts.find(static_cast<int>(kind));
        return it != t.emptySyscallCounts.end() ? it->second : 0;
    };

    unsigned workerThreads = 0;
    double totalEpoll = 0;
    double totalReads = 0;
    double totalEmptyReads = 0;

    std::map<int, std::vector<std::size_t>> members;
    for (std::size_t i = 0; i < n; ++i)
        members[inf.clusterOf[i]].push_back(i);

    for (const auto &[cid, idxs] : members) {
        (void)cid;
        double sleeps = 0;
        double reads = 0;
        double epolls = 0;
        double pwrites = 0;
        double emptyReads = 0;
        for (std::size_t i : idxs) {
            const auto &t = threads[i];
            sleeps += static_cast<double>(
                count_of(t, SysKind::Nanosleep));
            reads += static_cast<double>(
                count_of(t, SysKind::SocketRead));
            epolls += static_cast<double>(
                count_of(t, SysKind::EpollWait));
            pwrites += static_cast<double>(
                count_of(t, SysKind::Pwrite));
            emptyReads += static_cast<double>(
                empty_of(t, SysKind::SocketRead));
        }
        const bool background =
            sleeps > 0 && reads == 0 && epolls == 0;
        if (background) {
            BackgroundInference bg;
            bg.count = static_cast<unsigned>(idxs.size());
            const double sleepsPerThread =
                sleeps / static_cast<double>(idxs.size());
            bg.period = sleepsPerThread > 0
                ? static_cast<sim::Time>(
                      static_cast<double>(window) / sleepsPerThread)
                : sim::milliseconds(100);
            bg.pwritesPerPeriod =
                sleeps > 0 ? pwrites / sleeps : 0;
            inf.background.push_back(bg);
        } else {
            workerThreads += static_cast<unsigned>(idxs.size());
            totalEpoll += epolls;
            totalReads += reads;
            totalEmptyReads += emptyReads;
        }
    }

    if (totalEpoll > 0) {
        inf.serverModel = app::ServerModel::IoMultiplex;
    } else if (totalReads > 0 &&
               totalEmptyReads >
                   2.0 * (totalReads - totalEmptyReads)) {
        inf.serverModel = app::ServerModel::NonBlocking;
    } else {
        inf.serverModel = app::ServerModel::BlockingPerConn;
    }

    inf.workers = std::max(1u, workerThreads);
    inf.threadPerConnection =
        inf.serverModel == app::ServerModel::BlockingPerConn &&
        connections > 0 &&
        workerThreads + 1 >= connections;
    return inf;
}

} // namespace ditto::core
