/**
 * @file
 * Instruction-mix clustering (Sec. 4.4.2).
 *
 * Iforms are clustered hierarchically by functionality, operand kind,
 * and hardware resource requirements (uops, latency, execution
 * ports), so each cluster groups instructions with similar cost.
 * Generation samples a cluster from the profiled mix distribution and
 * emits the cluster's medoid -- preserving resource usage without
 * copying the original's exact opcodes (the obfuscation property).
 *
 * Clusters never mix loads, stores, branches, LOCK or REP forms with
 * plain ALU forms, since those structural roles must be preserved.
 */

#ifndef DITTO_CORE_INST_CLUSTERER_H_
#define DITTO_CORE_INST_CLUSTERER_H_

#include <vector>

#include "hw/isa.h"
#include "sim/distributions.h"
#include "sim/rng.h"

namespace ditto::core {

/** Structural role that clustering must not blur. */
enum class InstRole : std::uint8_t
{
    Alu,     //!< plain register compute
    Load,
    Store,
    Branch,
    Atomic,  //!< LOCK-prefixed
    RepString,
};

/** Role of an opcode. */
InstRole instRoleOf(hw::Opcode op);

/** One cluster of similar iforms. */
struct InstCluster
{
    InstRole role;
    std::vector<hw::Opcode> members;
    hw::Opcode medoid = 0;
    double weight = 0;  //!< profiled dynamic share
};

/**
 * Cluster the ISA's iforms, weighting by a profiled dynamic count
 * vector (indexed by opcode). Clusters with zero weight are kept so
 * the structure is profile-independent; sampling ignores them.
 */
class InstClusterer
{
  public:
    /**
     * @param counts   dynamic iform counts (profile)
     * @param threshold merge threshold on the feature distance
     */
    explicit InstClusterer(const std::vector<double> &counts,
                           double threshold = 0.45);

    const std::vector<InstCluster> &clusters() const
    {
        return clusters_;
    }

    /** Sample a representative opcode for a role. */
    hw::Opcode sample(InstRole role, sim::Rng &rng) const;

    /** Total profiled weight of a role. */
    double roleWeight(InstRole role) const;

    /** Number of clusters with the given role. */
    std::size_t clusterCount(InstRole role) const;

  private:
    std::vector<InstCluster> clusters_;
    // Per-role sampling distributions over cluster indices.
    std::vector<sim::EmpiricalDist> byRole_;

    static double featureDistance(const hw::InstInfo &a,
                                  const hw::InstInfo &b);
};

} // namespace ditto::core

#endif // DITTO_CORE_INST_CLUSTERER_H_
