/**
 * @file
 * Serialization of clone specs.
 *
 * The whole point of Ditto is that a synthetic clone can be *shared*
 * -- with hardware vendors, cloud providers, researchers -- without
 * revealing the original. This module writes a ServiceSpec (or a
 * whole cloned topology) to a self-describing text format and reads
 * it back, so clones survive as artifacts independent of the process
 * that generated them.
 *
 * The format is a line-oriented s-expression-free key/value syntax:
 *
 *   service "memcached_clone" {
 *     server_model iomultiplex
 *     workers 4
 *     block "memcached_clone.blk0" {
 *       stream ws=4096 kind=seq shared=0 pool=1
 *       inst op=ADD_GPR64_GPR64 dst=1 src0=2
 *       ...
 *     }
 *     endpoint "cloned" resp=819..1228 {
 *       compute block=0 iters=12..20
 *       ...
 *     }
 *   }
 *
 * Round-tripping is exact (tests assert spec equality), and the
 * format contains nothing but the synthetic artifacts -- no profile
 * data, no original code.
 */

#ifndef DITTO_CORE_SPEC_IO_H_
#define DITTO_CORE_SPEC_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "app/program.h"

namespace ditto::core {

/** Write one service spec. */
void writeSpec(std::ostream &os, const app::ServiceSpec &spec);

/** Write a whole topology (specs in deployment order). */
void writeTopology(std::ostream &os,
                   const std::vector<app::ServiceSpec> &specs);

/** Serialize to a string. */
std::string specToString(const app::ServiceSpec &spec);

/**
 * Parse one or more service specs.
 * @throws std::runtime_error on malformed input.
 */
std::vector<app::ServiceSpec> readSpecs(std::istream &is);

/** Parse from a string. */
std::vector<app::ServiceSpec> specsFromString(const std::string &text);

/** Save a topology to a file. @retval false on I/O failure. */
bool saveTopology(const std::string &path,
                  const std::vector<app::ServiceSpec> &specs);

/** Load a topology from a file. @throws on parse errors. */
std::vector<app::ServiceSpec> loadTopology(const std::string &path);

} // namespace ditto::core

#endif // DITTO_CORE_SPEC_IO_H_
