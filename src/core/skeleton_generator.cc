#include "core/skeleton_generator.h"

#include <algorithm>
#include <cmath>

namespace ditto::core {

namespace {

std::string
cloneNameOf(const std::map<std::string, std::string> &nameMap,
            const std::string &original)
{
    const auto it = nameMap.find(original);
    return it != nameMap.end() ? it->second : original + "_clone";
}

} // namespace

app::ServiceSpec
generateClone(const profile::ServiceProfile &prof,
              const SkeletonInference &skeleton,
              const std::vector<profile::EdgeProfile> &outEdges,
              const std::map<std::string, std::string> &nameMap,
              const GenerationConfig &cfg)
{
    app::ServiceSpec spec;
    spec.name = cloneNameOf(nameMap, prof.serviceName);

    // ---- skeleton -------------------------------------------------------
    spec.serverModel = skeleton.serverModel;
    spec.clientModel = skeleton.clientModel;
    spec.threads.threadPerConnection = skeleton.threadPerConnection;
    spec.threads.workers =
        skeleton.threadPerConnection ? 0 : skeleton.workers;

    // ---- body -------------------------------------------------------------
    GeneratedBody body = generateBody(prof, cfg, spec.name);
    spec.blocks = std::move(body.blocks);
    if (body.usesLock)
        spec.locks = 1;
    if (body.fileBytes > 0) {
        spec.fileBytes = {body.fileBytes};
        spec.filePrewarmFraction = body.filePrewarmFraction;
    }

    app::EndpointSpec endpoint;
    endpoint.name = "cloned";
    endpoint.handler = std::move(body.handler);

    // Response sizes from observed per-request bytes.
    const double resp = std::max(16.0, prof.avgResponseBytes);
    endpoint.responseBytesMin =
        static_cast<std::uint32_t>(std::max(16.0, resp * 0.8));
    endpoint.responseBytesMax =
        static_cast<std::uint32_t>(std::max(17.0, resp * 1.2));

    // ---- downstream RPCs from the topology -----------------------------
    if (!outEdges.empty()) {
        // Whole calls become one fanout (async clients issue them in
        // parallel); fractional residues become Choice-wrapped calls.
        std::vector<app::RpcCallSpec> wholeCalls;
        std::vector<std::pair<double, app::RpcCallSpec>> fracCalls;
        for (const auto &edge : outEdges) {
            const std::string callee = cloneNameOf(nameMap, edge.callee);
            auto target = static_cast<std::uint32_t>(
                std::find(spec.downstreams.begin(),
                          spec.downstreams.end(), callee) -
                spec.downstreams.begin());
            if (target == spec.downstreams.size())
                spec.downstreams.push_back(callee);

            app::RpcCallSpec call;
            call.target = target;
            call.endpoint = 0;  // clones expose a single endpoint
            call.requestBytes = static_cast<std::uint32_t>(
                std::max(16.0, edge.avgRequestBytes));
            call.responseBytes = static_cast<std::uint32_t>(
                std::max(16.0, edge.avgResponseBytes));

            double calls = edge.callsPerCallerRequest;
            while (calls >= 1.0) {
                wholeCalls.push_back(call);
                calls -= 1.0;
            }
            if (calls > 0.02)
                fracCalls.push_back({calls, call});
        }

        // Insert the RPC ops after roughly 60% of the handler's
        // compute (mid-request fanout, like the originals).
        std::vector<app::Op> rpcOps;
        if (!wholeCalls.empty()) {
            if (spec.clientModel == app::ClientModel::Async) {
                rpcOps.push_back(app::opRpcFanout(wholeCalls));
            } else {
                for (const auto &call : wholeCalls)
                    rpcOps.push_back(app::opRpcFanout({call}));
            }
        }
        for (const auto &[p, call] : fracCalls) {
            rpcOps.push_back(app::opChoice(
                {p, 1.0 - p}, {{{app::opRpcFanout({call})}}, {}}));
        }
        const auto insertAt = static_cast<std::ptrdiff_t>(
            endpoint.handler.ops.size() * 3 / 5);
        endpoint.handler.ops.insert(
            endpoint.handler.ops.begin() + insertAt,
            rpcOps.begin(), rpcOps.end());
    }

    spec.endpoints.push_back(std::move(endpoint));

    // ---- background threads -----------------------------------------------
    for (std::size_t i = 0; i < skeleton.background.size(); ++i) {
        const BackgroundInference &bg = skeleton.background[i];
        for (unsigned k = 0; k < bg.count; ++k) {
            app::BackgroundSpec bgSpec;
            bgSpec.name = "bg" + std::to_string(i) + "_" +
                std::to_string(k);
            bgSpec.period =
                bg.period > 0 ? bg.period : sim::milliseconds(100);
            bgSpec.body = body.background;
            // Give the background thread a slice of compute so its
            // cache footprint resembles the original's housekeeping.
            if (!spec.blocks.empty()) {
                bgSpec.body.ops.push_back(app::opCompute(
                    static_cast<std::uint32_t>(spec.blocks.size() - 1),
                    1, 2));
            }
            spec.background.push_back(std::move(bgSpec));
        }
    }

    return spec;
}

} // namespace ditto::core
