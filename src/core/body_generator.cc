#include "core/body_generator.h"

#include <algorithm>
#include <cmath>

#include "app/service.h"
#include "core/inst_clusterer.h"
#include "sim/distributions.h"
#include "sim/rng.h"

namespace ditto::core {

namespace {

using profile::kWsSizes;

/** Largest single generated block (128KB of text). */
constexpr std::uint64_t kMaxBlockInsts = 32768;

/** Index of the 32KB working set (64 << 9). */
constexpr std::size_t kTailIndex = 9;

/** Registers reserved for loop counters / base addresses. */
constexpr std::uint8_t kUsableGprs = 10;

/** One planned synthetic block. */
struct BlockPlan
{
    std::uint64_t insts = 0;        //!< static instructions
    double itersPerRequest = 0;     //!< dynamic executions / insts
    std::vector<std::pair<std::size_t, std::uint64_t>> streamSlots;
    //!< (ws size index, memory slots per iteration)
    std::uint64_t memSlotsPerIter = 0;
};

/** Sample a branch-descriptor bin from the profiled distribution. */
hw::BranchDesc
sampleBranch(const profile::BranchProfile &branch, sim::Rng &rng,
             int expShift, bool useProfile)
{
    if (!useProfile) {
        // Stage-D worst case: 50% taken, always transitioning.
        return hw::BranchDesc{1, 1};
    }
    // Flatten the (M, N) bin matrix into an empirical distribution.
    double total = 0;
    for (unsigned m = 1; m <= profile::kBranchExpMax; ++m) {
        for (unsigned n = 1; n <= profile::kBranchExpMax; ++n)
            total += branch.bins[m][n];
    }
    if (total <= 0)
        return hw::BranchDesc{2, 3};
    double roll = rng.uniform() * total;
    for (unsigned m = 1; m <= profile::kBranchExpMax; ++m) {
        for (unsigned n = 1; n <= profile::kBranchExpMax; ++n) {
            roll -= branch.bins[m][n];
            if (roll <= 0) {
                const auto shift = [&](unsigned e) {
                    const int shifted = static_cast<int>(e) + expShift;
                    return static_cast<std::uint8_t>(std::clamp(
                        shifted, 1, 10));
                };
                return hw::BranchDesc{shift(m), shift(n)};
            }
        }
    }
    return hw::BranchDesc{2, 3};
}

/** Tracks recent register writes/reads for distance-based choice. */
class RegAllocator
{
  public:
    explicit RegAllocator(const profile::DepProfile &dep, bool enabled)
        : dep_(dep), enabled_(enabled)
    {
        lastWrite_.assign(hw::kNumRegs, -1);
        lastRead_.assign(hw::kNumRegs, -1);
    }

    /** Choose a source register targeting a sampled RAW distance. */
    std::uint8_t
    pickSrc(bool xmm, std::int64_t instIdx, sim::Rng &rng)
    {
        if (!enabled_) {
            // Strongest dependencies: single serial chain.
            return xmm ? hw::kXmmBase : 1;
        }
        const std::int64_t want =
            instIdx - sampleDistance(dep_.raw, rng);
        return closestWritten(xmm, want);
    }

    /** Choose a destination targeting sampled WAR/WAW distances. */
    std::uint8_t
    pickDst(bool xmm, std::int64_t instIdx, sim::Rng &rng)
    {
        std::uint8_t reg;
        if (!enabled_) {
            reg = xmm ? hw::kXmmBase : 1;
        } else {
            const std::int64_t wantWaw =
                instIdx - sampleDistance(dep_.waw, rng);
            reg = closestWritten(xmm, wantWaw);
        }
        return reg;
    }

    void
    noteInst(const hw::Inst &inst, std::int64_t instIdx)
    {
        if (inst.src0 != hw::kNoReg)
            lastRead_[inst.src0] = instIdx;
        if (inst.src1 != hw::kNoReg)
            lastRead_[inst.src1] = instIdx;
        if (inst.dst != hw::kNoReg)
            lastWrite_[inst.dst] = instIdx;
    }

  private:
    const profile::DepProfile &dep_;
    bool enabled_;
    std::vector<std::int64_t> lastWrite_;
    std::vector<std::int64_t> lastRead_;

    static std::int64_t
    sampleDistance(const std::array<double, profile::kDepBins> &hist,
                   sim::Rng &rng)
    {
        double total = 0;
        for (double w : hist)
            total += w;
        if (total <= 0)
            return 4;
        double roll = rng.uniform() * total;
        for (std::size_t bin = 0; bin < hist.size(); ++bin) {
            roll -= hist[bin];
            if (roll <= 0)
                return std::int64_t{1} << bin;
        }
        return 1 << (profile::kDepBins - 1);
    }

    std::uint8_t
    closestWritten(bool xmm, std::int64_t wantIdx)
    {
        const std::uint8_t lo = xmm ? hw::kXmmBase : 0;
        const std::uint8_t hi =
            xmm ? hw::kXmmBase + hw::kNumXmms : kUsableGprs;
        std::uint8_t best = lo;
        std::int64_t bestErr = std::numeric_limits<std::int64_t>::max();
        for (std::uint8_t r = lo; r < hi; ++r) {
            const std::int64_t err =
                std::abs(lastWrite_[r] - wantIdx);
            if (err < bestErr) {
                bestErr = err;
                best = r;
            }
        }
        return best;
    }
};

} // namespace

GenerationConfig
GenerationConfig::stage(char stage)
{
    GenerationConfig cfg;
    cfg.syscalls = stage >= 'B';
    cfg.instCount = stage >= 'C';
    cfg.instMix = stage >= 'D';
    cfg.branchBehavior = stage >= 'E';
    cfg.instMem = stage >= 'F';
    cfg.dataMem = stage >= 'G';
    cfg.dataDeps = stage >= 'H';
    return cfg;
}

GeneratedBody
generateBody(const profile::ServiceProfile &prof,
             const GenerationConfig &cfg,
             const std::string &labelPrefix)
{
    GeneratedBody body;
    sim::Rng rng(cfg.seed ^ 0x9e3779b97f4a7c15ull);
    const hw::Isa &isa = hw::Isa::instance();
    const double requests = std::max(1.0, prof.requestsObserved);

    // ---- total instruction budget per request --------------------------
    const double totalInsts = cfg.instCount
        ? prof.mix.instsPerRequest * cfg.instScale
        : 0.0;

    // ---- instruction working-set plan (Eq. 2) ---------------------------
    std::array<double, kWsSizes> execBySize{};
    if (totalInsts > 0) {
        if (cfg.instMem) {
            execBySize = prof.imem.executionsBySize();
            double sum = 0;
            for (std::size_t j = 0; j < kWsSizes; ++j) {
                execBySize[j] /= requests;
                if (j >= kTailIndex)
                    execBySize[j] *= cfg.imemTailScale;
                sum += execBySize[j];
            }
            if (sum > 0) {
                for (double &e : execBySize)
                    e *= totalInsts / sum;
            } else {
                execBySize[4] = totalInsts;  // 1KB fallback
            }
        } else {
            // Stages C-E: a single small instruction footprint.
            execBySize[2] = totalInsts;  // 256B
        }
    }

    // ---- data working-set plan (Eq. 1) -----------------------------------
    double memFraction = 0.0;
    std::array<double, kWsSizes> accBySize{};
    if (cfg.instMix && totalInsts > 0) {
        memFraction =
            std::clamp(prof.dmem.accessesPerInst, 0.0, 0.75);
        if (cfg.dataMem) {
            accBySize = prof.dmem.accessesBySize();
            double sum = 0;
            for (std::size_t i = 0; i < kWsSizes; ++i) {
                accBySize[i] /= requests;
                if (i >= kTailIndex)
                    accBySize[i] *= cfg.dmemTailScale;
                sum += accBySize[i];
            }
            const double totalMemOps = memFraction * totalInsts;
            if (sum > 0) {
                for (double &a : accBySize)
                    a *= totalMemOps / sum;
            } else {
                accBySize[0] = totalMemOps;
            }
        } else {
            // Stage D: every access in the smallest working set.
            accBySize[0] = memFraction * totalInsts;
        }
    }

    // ---- plan blocks -------------------------------------------------------
    std::vector<BlockPlan> plans;
    for (std::size_t j = 0; j < kWsSizes; ++j) {
        if (execBySize[j] < 1.0)
            continue;
        const std::uint64_t footprintInsts = 16ull << j;  // Fj / 4B
        const std::uint64_t pieces = std::max<std::uint64_t>(
            1, footprintInsts / kMaxBlockInsts);
        const std::uint64_t instsPerPiece =
            std::min(footprintInsts, kMaxBlockInsts);
        for (std::uint64_t piece = 0; piece < pieces; ++piece) {
            BlockPlan plan;
            plan.insts = instsPerPiece;
            plan.itersPerRequest = execBySize[j] /
                static_cast<double>(footprintInsts);
            plan.memSlotsPerIter = static_cast<std::uint64_t>(
                std::llround(static_cast<double>(plan.insts) *
                             memFraction));
            plans.push_back(plan);
        }
    }

    // Assign data streams to blocks' memory slots, biggest working
    // sets first, matching each A_d(2^i) access budget.
    {
        std::vector<std::uint64_t> freeSlots(plans.size());
        for (std::size_t b = 0; b < plans.size(); ++b)
            freeSlots[b] = plans[b].memSlotsPerIter;
        for (std::size_t i = kWsSizes; i-- > 0;) {
            double remaining = accBySize[i];
            if (remaining < 0.5)
                continue;
            for (std::size_t b = 0; b < plans.size() && remaining > 0.5;
                 ++b) {
                if (freeSlots[b] == 0 ||
                    plans[b].itersPerRequest <= 0)
                    continue;
                const double perSlot = std::max(
                    plans[b].itersPerRequest, 1e-9);
                auto slots = static_cast<std::uint64_t>(
                    std::ceil(remaining / perSlot));
                slots = std::min(slots, freeSlots[b]);
                if (slots == 0)
                    continue;
                plans[b].streamSlots.push_back({i, slots});
                freeSlots[b] -= slots;
                remaining -= static_cast<double>(slots) * perSlot;
            }
        }
        // Any slots left over fall back to the smallest working set.
        for (std::size_t b = 0; b < plans.size(); ++b) {
            if (freeSlots[b] > 0)
                plans[b].streamSlots.push_back({0, freeSlots[b]});
        }
    }

    // ---- plan pointer-chase placement --------------------------------
    // Serialized (chased) misses come from walking *large* linked
    // structures: assign the chase budget to the biggest working
    // sets first, so the chaseFraction of miss latency actually
    // serializes like the original's.
    const double plannedChaseFraction = cfg.dataDeps
        ? std::clamp(prof.dep.chaseFraction * cfg.chaseScale, 0.0,
                     0.95)
        : 0.0;
    std::vector<std::vector<bool>> chaseMark(plans.size());
    {
        struct ChaseRef
        {
            std::size_t block;
            std::size_t entry;
            std::uint64_t wsBytes;
            double accesses;
        };
        std::vector<ChaseRef> refs;
        double totalAccesses = 0;
        for (std::size_t b = 0; b < plans.size(); ++b) {
            chaseMark[b].assign(plans[b].streamSlots.size(), false);
            for (std::size_t k = 0; k < plans[b].streamSlots.size();
                 ++k) {
                const auto &[sizeIdx, slots] = plans[b].streamSlots[k];
                const double accesses = static_cast<double>(slots) *
                    plans[b].itersPerRequest;
                refs.push_back({b, k, profile::wsBytes(sizeIdx),
                                accesses});
                totalAccesses += accesses;
            }
        }
        std::sort(refs.begin(), refs.end(),
                  [](const ChaseRef &a, const ChaseRef &b) {
                      if (a.wsBytes != b.wsBytes)
                          return a.wsBytes > b.wsBytes;
                      return a.accesses > b.accesses;
                  });
        double budget = plannedChaseFraction * totalAccesses;
        for (const ChaseRef &ref : refs) {
            if (budget <= 0)
                break;
            if (budget >= ref.accesses * 0.95) {
                chaseMark[ref.block][ref.entry] = true;
                budget -= ref.accesses;
                continue;
            }
            // Partially covered group: split its slots so the chase
            // knob stays continuous (whole-group flips make the
            // fine-tuner oscillate).
            const double fraction = budget / ref.accesses;
            auto &entry = plans[ref.block].streamSlots[ref.entry];
            const auto chasedSlots = static_cast<std::uint64_t>(
                std::llround(fraction *
                             static_cast<double>(entry.second)));
            if (chasedSlots >= 1) {
                entry.second -= chasedSlots;
                plans[ref.block].streamSlots.push_back(
                    {entry.first, chasedSlots});
                chaseMark[ref.block].push_back(true);
            }
            budget = 0;
        }
    }

    // ---- synthesize instruction sequences --------------------------------
    InstClusterer clusterer(prof.mix.counts);
    const double branchFraction =
        cfg.instMix ? prof.branch.branchFraction : 0.0;
    const double storeFraction =
        prof.dmem.storeFraction > 0 ? prof.dmem.storeFraction : 0.3;

    for (std::size_t b = 0; b < plans.size(); ++b) {
        const BlockPlan &plan = plans[b];
        hw::CodeBlock block;
        block.label =
            labelPrefix + ".blk" + std::to_string(b);

        // Streams: one per (size, kind) slot group.
        // kind split: chase / sequential(regular) / random.
        struct StreamRef
        {
            std::uint16_t streamIdx;
            std::uint64_t slots;
        };
        std::vector<StreamRef> streamRefs;
        for (std::size_t entry = 0; entry < plan.streamSlots.size();
             ++entry) {
            const auto &[sizeIdx, slots] = plan.streamSlots[entry];
            const std::uint64_t wsBytes = profile::wsBytes(sizeIdx);
            hw::MemStreamDesc desc;
            desc.wsBytes = wsBytes;
            // One pooled allocation per (size, sharing): the paper's
            // single synthetic array -- blocks share working sets
            // instead of inflating the union footprint.
            desc.poolKey = 1;
            if (chaseMark[b][entry]) {
                desc.kind = hw::StreamKind::PointerChase;
            } else if (rng.bernoulli(
                           prof.dmem.regularFractionOf(sizeIdx))) {
                desc.kind = hw::StreamKind::Sequential;
            } else {
                desc.kind = hw::StreamKind::Random;
            }
            // The H_d curve was measured across all threads, so big
            // working sets must be a single shared allocation (the
            // paper's generated code uses one array); per-thread
            // copies of them would inflate the global footprint.
            // Small streams split private/shared per the profiled
            // access ratio, which drives coherence misses.
            desc.shared = cfg.dataMem &&
                (wsBytes >= (1u << 20) ||
                 rng.bernoulli(prof.dmem.sharedFraction));
            const auto idx =
                static_cast<std::uint16_t>(block.streams.size());
            block.streams.push_back(desc);
            streamRefs.push_back({idx, slots});
        }

        // Memory-op schedule: spread slots across the block.
        std::vector<std::uint16_t> memSchedule;
        for (const StreamRef &ref : streamRefs) {
            for (std::uint64_t s = 0; s < ref.slots; ++s)
                memSchedule.push_back(ref.streamIdx);
        }
        // Shuffle deterministically so sizes interleave.
        for (std::size_t s = memSchedule.size(); s > 1; --s) {
            const std::size_t k = rng.uniformInt(s);
            std::swap(memSchedule[s - 1], memSchedule[k]);
        }

        const std::uint64_t n = plan.insts;
        const std::uint64_t memEvery = memSchedule.empty()
            ? 0
            : std::max<std::uint64_t>(1, n / memSchedule.size());
        std::size_t memCursor = 0;
        // Branch slots only compete for non-memory positions, so
        // compensate the per-slot probability to hit the profiled
        // overall branch fraction.
        const double memShare = memSchedule.empty()
            ? 0.0
            : std::min(0.9, static_cast<double>(memSchedule.size()) /
                           static_cast<double>(n));
        const double branchProb =
            std::min(0.9, branchFraction / (1.0 - memShare));

        RegAllocator regs(prof.dep, cfg.dataDeps);
        for (std::uint64_t idx = 0; idx < n; ++idx) {
            hw::Inst inst;
            const auto signedIdx = static_cast<std::int64_t>(idx);
            const bool memSlot = memEvery > 0 &&
                idx % memEvery == memEvery - 1 &&
                memCursor < memSchedule.size();

            if (memSlot) {
                const bool store = rng.bernoulli(storeFraction);
                inst.opcode = cfg.instMix
                    ? clusterer.sample(store ? InstRole::Store
                                             : InstRole::Load, rng)
                    : isa.opcode(store ? "MOV_MEM64_GPR64"
                                       : "MOV_GPR64_MEM64");
                inst.memStream = memSchedule[memCursor++];
                if (store) {
                    inst.src0 = regs.pickSrc(false, signedIdx, rng);
                } else {
                    inst.src0 = regs.pickSrc(false, signedIdx, rng);
                    inst.dst = regs.pickDst(false, signedIdx, rng);
                }
                const hw::InstInfo &info = isa.info(inst.opcode);
                if (info.repPerElem) {
                    inst.repBytes = static_cast<std::uint32_t>(
                        std::max(16.0, prof.mix.avgRepBytes));
                }
            } else if (branchFraction > 0 &&
                       rng.bernoulli(branchProb)) {
                inst.opcode = rng.bernoulli(0.5)
                    ? isa.opcode("JZ_RELBR")
                    : isa.opcode("JNZ_RELBR");
                inst.branch = static_cast<std::uint16_t>(
                    block.branches.size());
                block.branches.push_back(sampleBranch(
                    prof.branch, rng, cfg.branchExpShift,
                    cfg.branchBehavior));
                inst.src0 = regs.pickSrc(false, signedIdx, rng);
            } else if (cfg.instMix) {
                inst.opcode = clusterer.sample(InstRole::Alu, rng);
                const hw::InstInfo &info = isa.info(inst.opcode);
                const bool xmm =
                    info.operands == hw::OperandKind::Xmm;
                inst.src0 = regs.pickSrc(xmm, signedIdx, rng);
                if (rng.bernoulli(0.5))
                    inst.src1 = regs.pickSrc(xmm, signedIdx, rng);
                inst.dst = regs.pickDst(xmm, signedIdx, rng);
            } else {
                // Stage C: homogeneous serial add chain.
                inst.opcode = isa.opcode("ADD_GPR64_GPR64");
                inst.dst = 1;
                inst.src0 = 1;
            }
            regs.noteInst(inst, signedIdx);
            block.insts.push_back(inst);
        }

        const auto blockId =
            static_cast<std::uint32_t>(body.blocks.size());
        body.blocks.push_back(std::move(block));

        // Emit the compute op for this block.
        const double iters = plan.itersPerRequest;
        app::Op op;
        if (iters >= 1.0) {
            const auto lo = static_cast<std::uint64_t>(
                std::max(1.0, std::floor(iters * 0.75)));
            const auto hi = static_cast<std::uint64_t>(
                std::max<double>(static_cast<double>(lo),
                                 std::ceil(iters * 1.25)));
            op = app::opCompute(blockId, lo, hi);
            body.handler.ops.push_back(app::opCall(
                "blk" + std::to_string(b), {{op}}));
        } else if (iters > 1e-6) {
            // Fractional execution: run once with probability iters.
            op = app::opCompute(blockId, 1, 1);
            body.handler.ops.push_back(app::opChoice(
                {iters, 1.0 - iters},
                {{{app::opCall("blk" + std::to_string(b), {{op}})}},
                 {}}));
        }
    }

    // ---- syscalls (Sec. 4.4.1) -------------------------------------------
    if (cfg.syscalls) {
        const auto &kinds = prof.syscalls.perKind;
        auto stat_of = [&](app::SysKind k) -> const profile::SyscallStat * {
            const auto it = kinds.find(static_cast<int>(k));
            return it != kinds.end() ? &it->second : nullptr;
        };

        body.fileBytes = prof.syscalls.fileSpanBytes;
        if (const auto *pread = stat_of(app::SysKind::Pread);
            pread && pread->countPerRequest > 0.01 &&
            body.fileBytes > 0) {
            // Page-cache residency: if the original's reads rarely
            // reached the disk (iostat-visible), the clone's file must
            // be cache-resident too; if every read missed, it must be
            // cold. Infer the prewarm fraction from the ratio of
            // physical to logical read bytes.
            const double logicalBytes =
                pread->countPerRequest * pread->avgBytes;
            const double missRatio = logicalBytes > 0
                ? std::clamp(prof.syscalls.diskReadBytesPerRequest /
                                 logicalBytes,
                             0.0, 1.0)
                : 1.0;
            body.filePrewarmFraction = 1.0 - missRatio;
            const auto lo = static_cast<std::uint64_t>(
                std::max(512.0, pread->avgBytes * 0.5));
            const auto hi = static_cast<std::uint64_t>(
                std::max(static_cast<double>(lo) + 1,
                         pread->avgBytes * 1.5));
            const double perReq = pread->countPerRequest;
            const auto whole = static_cast<unsigned>(perReq);
            const double frac = perReq - whole;
            std::vector<app::Op> readOps;
            for (unsigned k = 0; k < whole; ++k)
                readOps.push_back(app::opFileRead(0, lo, hi));
            if (frac > 0.01) {
                readOps.push_back(app::opChoice(
                    {frac, 1.0 - frac},
                    {{{app::opFileRead(0, lo, hi)}}, {}}));
            }
            // Interleave the file reads among the compute ops.
            std::vector<app::Op> merged;
            const std::size_t computeOps = body.handler.ops.size();
            std::size_t nextRead = 0;
            for (std::size_t i = 0; i < computeOps; ++i) {
                merged.push_back(body.handler.ops[i]);
                const std::size_t due =
                    (i + 1) * readOps.size() / (computeOps + 1);
                while (nextRead < due)
                    merged.push_back(readOps[nextRead++]);
            }
            while (nextRead < readOps.size())
                merged.push_back(readOps[nextRead++]);
            body.handler.ops = std::move(merged);
        }

        // Futex-visible locking. Observed futex waits measure
        // *contention*, which is rare even in lock-heavy services
        // (fast paths stay in user space); guarding every request
        // with a long critical section would serialize the clone.
        // Instead, a fraction of requests take the lock around a
        // short critical section, scaled so the clone's futex rate
        // lands near the original's under similar load.
        const auto *fwait = stat_of(app::SysKind::FutexWait);
        const auto *fwake = stat_of(app::SysKind::FutexWake);
        const double futexPerReq =
            (fwait ? fwait->countPerRequest : 0) +
            (fwake ? fwake->countPerRequest : 0);
        if (futexPerReq > 0.001 && !body.handler.ops.empty()) {
            body.usesLock = true;
            const double lockProb =
                std::clamp(futexPerReq * 4.0, 0.02, 1.0);
            app::Program critical;
            critical.ops.push_back(app::opLock(0));
            // Short hold: one iteration of the first (smallest)
            // generated block, if any.
            if (!body.blocks.empty())
                critical.ops.push_back(app::opCompute(0, 1, 1));
            critical.ops.push_back(app::opUnlock(0));
            const std::size_t mid = body.handler.ops.size() / 2;
            body.handler.ops.insert(
                body.handler.ops.begin() +
                    static_cast<std::ptrdiff_t>(mid),
                app::opChoice({lockProb, 1.0 - lockProb},
                              {critical, {}}));
        }

        // Background flush work (pwrite outside the request path).
        if (const auto *pwrite = stat_of(app::SysKind::Pwrite);
            pwrite && pwrite->countPerRequest > 0.001 &&
            body.fileBytes > 0) {
            const auto lo = static_cast<std::uint64_t>(
                std::max(512.0, pwrite->avgBytes * 0.5));
            const auto hi = static_cast<std::uint64_t>(
                std::max(static_cast<double>(lo) + 1,
                         pwrite->avgBytes * 1.5));
            body.background.ops.push_back(
                app::opFileWrite(0, lo, hi));
        }
    }

    return body;
}

} // namespace ditto::core
