/**
 * @file
 * Application-body generator (Sec. 4.4): synthesizes code blocks and
 * handler ops purely from a ServiceProfile.
 *
 * Stage toggles mirror the accuracy-decomposition study (Fig. 9):
 *   A skeleton only          -> all toggles off
 *   B + syscalls             -> syscalls
 *   C + instruction count    -> instCount (homogeneous add chain)
 *   D + instruction mix      -> instMix (clustered iform sampling;
 *                               worst-case branches, tightest deps,
 *                               smallest working sets)
 *   E + branch behaviour     -> branchBehavior (profiled M/N bins)
 *   F + instruction memory   -> instMem (blocks sized per Eq. 2)
 *   G + data memory          -> dataMem (streams sized per Eq. 1,
 *                               shared/private + regular/irregular)
 *   H + data dependencies    -> dataDeps (register assignment from
 *                               RAW/WAR/WAW bins; pointer chasing per
 *                               the measured MLP)
 *   I fine tuning            -> the scale knobs, driven by FineTuner
 */

#ifndef DITTO_CORE_BODY_GENERATOR_H_
#define DITTO_CORE_BODY_GENERATOR_H_

#include <string>
#include <vector>

#include "app/program.h"
#include "hw/code.h"
#include "profile/profile_data.h"

namespace ditto::core {

/** Generator stage toggles + fine-tuning knobs. */
struct GenerationConfig
{
    bool syscalls = true;
    bool instCount = true;
    bool instMix = true;
    bool branchBehavior = true;
    bool instMem = true;
    bool dataMem = true;
    bool dataDeps = true;

    // Fine-tuning knobs (Sec. 4.5). Grouped: instScale alone;
    // imemTailScale with branchExpShift (both steer the frontend);
    // dmemTailScale for the data hierarchy; chaseScale for MLP.
    double instScale = 1.0;
    double imemTailScale = 1.0;
    double dmemTailScale = 1.0;
    double chaseScale = 1.0;
    int branchExpShift = 0;

    std::uint64_t seed = 0xd1770;

    /** Stage presets A..H for the Fig. 9 decomposition. */
    static GenerationConfig stage(char stage);
};

/** Output of body generation. */
struct GeneratedBody
{
    std::vector<hw::CodeBlock> blocks;
    /** Handler ops (compute + file I/O + locks), skeleton-free. */
    app::Program handler;
    /** Background body (periodic flush work), if any was profiled. */
    app::Program background;
    /** Whether the profile showed futex activity (locks needed). */
    bool usesLock = false;
    /** File size to create (0 = no file ops). */
    std::uint64_t fileBytes = 0;
    /** Page-cache prewarm fraction inferred from disk counters. */
    double filePrewarmFraction = 0;
};

/**
 * Generate the synthetic application body from a profile.
 *
 * @param labelPrefix prefix for generated block labels (the clone's
 *        service name, so profilers can attribute them)
 */
GeneratedBody generateBody(const profile::ServiceProfile &prof,
                           const GenerationConfig &cfg,
                           const std::string &labelPrefix);

} // namespace ditto::core

#endif // DITTO_CORE_BODY_GENERATOR_H_
