/**
 * @file
 * Application skeleton analyzer (Sec. 4.3).
 *
 * Clusters threads by behaviour and infers the network and thread
 * models:
 *  - per-thread call graphs are compared with Zhang-Shasha tree edit
 *    distance and clustered agglomeratively (the cluster count is
 *    unknown in advance, so a distance threshold cuts the dendrogram);
 *  - thread clusters are classified (request workers, per-connection
 *    handlers, timer-driven background threads) from their syscall
 *    signatures and spawn behaviour;
 *  - the server network model (blocking / non-blocking / I/O
 *    multiplexing) falls out of the epoll / failed-read signature,
 *    and the client model (sync / async) from RPC issue overlap.
 */

#ifndef DITTO_CORE_SKELETON_ANALYZER_H_
#define DITTO_CORE_SKELETON_ANALYZER_H_

#include <string>
#include <vector>

#include "app/program.h"
#include "profile/profile_data.h"
#include "sim/time.h"

namespace ditto::core {

/** A rooted, labeled call tree built from observed call paths. */
class CallTree
{
  public:
    /** Build from "/a/b" style paths. */
    static CallTree fromPaths(const std::vector<std::string> &paths);

    struct Node
    {
        std::string label;
        std::vector<int> children;
    };

    const std::vector<Node> &nodes() const { return nodes_; }
    int root() const { return nodes_.empty() ? -1 : 0; }
    std::size_t size() const { return nodes_.size(); }

  private:
    std::vector<Node> nodes_;

    int findOrAdd(int parent, const std::string &label);
};

/**
 * Zhang-Shasha ordered tree edit distance (unit costs). Used as the
 * thread-similarity metric, per the paper's reference [30].
 */
double treeEditDistance(const CallTree &a, const CallTree &b);

/**
 * Average-linkage agglomerative clustering over a symmetric distance
 * matrix; merging stops when the closest pair exceeds `threshold`.
 * @return cluster id per element.
 */
std::vector<int> agglomerativeCluster(
    const std::vector<std::vector<double>> &distance, double threshold);

/** One inferred background-thread group. */
struct BackgroundInference
{
    unsigned count = 0;
    sim::Time period = 0;
    double pwritesPerPeriod = 0;
    double computeShare = 0.02;  //!< share of service compute
};

/** The inferred skeleton. */
struct SkeletonInference
{
    app::ServerModel serverModel = app::ServerModel::IoMultiplex;
    app::ClientModel clientModel = app::ClientModel::Sync;
    unsigned workers = 1;
    bool threadPerConnection = false;
    std::vector<BackgroundInference> background;
    unsigned clusterCount = 0;
    std::vector<int> clusterOf;  //!< per observation
};

/**
 * Infer the skeleton from per-thread observations.
 *
 * @param threads observations from the SystemTap-equivalent probe
 * @param window  observation window length (for period estimation)
 * @param connections number of client connections during profiling
 *        (known workload input, used to spot thread-per-connection)
 * @param asyncEvidence fraction of RPCs issued while previous ones
 *        were outstanding
 */
SkeletonInference analyzeSkeleton(
    const std::vector<profile::ThreadObservation> &threads,
    sim::Time window, unsigned connections, double asyncEvidence);

} // namespace ditto::core

#endif // DITTO_CORE_SKELETON_ANALYZER_H_
