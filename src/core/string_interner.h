/**
 * @file
 * String interning: dense uint32 ids for hot-path name lookups.
 *
 * StringInterner maps each distinct name to a dense id (0, 1, 2, ...)
 * via an open-addressing FNV-1a hash table, keeping the strings
 * themselves in one vector for the configuration and reporting edges.
 * Dispatch-path consumers key flat vectors by the id instead of
 * probing a std::map<std::string, ...> with per-node string compares.
 *
 * Interned strings are never removed; ids stay valid for the
 * interner's lifetime.
 */

#ifndef DITTO_CORE_STRING_INTERNER_H_
#define DITTO_CORE_STRING_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ditto::core {

class StringInterner
{
  public:
    /** Returned by lookup() for names never interned. */
    static constexpr std::uint32_t kInvalidId = 0xffffffffu;

    /** Id of `name`, interning it first if new. */
    std::uint32_t
    intern(std::string_view name)
    {
        if (names_.size() + 1 > (table_.size() * 7) / 10)
            grow();
        std::size_t slot = probe(name);
        if (table_[slot] == kInvalidId) {
            table_[slot] =
                static_cast<std::uint32_t>(names_.size());
            names_.emplace_back(name);
        }
        return table_[slot];
    }

    /** Id of `name`, or kInvalidId when it was never interned. */
    std::uint32_t
    lookup(std::string_view name) const
    {
        if (table_.empty())
            return kInvalidId;
        return table_[probe(name)];
    }

    /** The string behind an id returned by intern()/lookup(). */
    const std::string &name(std::uint32_t id) const
    {
        return names_[id];
    }

    /** Number of distinct interned strings (== smallest free id). */
    std::size_t size() const { return names_.size(); }

  private:
    static std::uint64_t
    fnv1a(std::string_view s)
    {
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ull;
        }
        return h;
    }

    /** Slot holding `name`'s id, or the empty slot it would go in. */
    std::size_t
    probe(std::string_view name) const
    {
        const std::size_t mask = table_.size() - 1;
        std::size_t slot = fnv1a(name) & mask;
        while (table_[slot] != kInvalidId &&
               names_[table_[slot]] != name) {
            slot = (slot + 1) & mask;
        }
        return slot;
    }

    void
    grow()
    {
        const std::size_t capacity =
            table_.empty() ? 64 : table_.size() * 2;
        table_.assign(capacity, kInvalidId);
        for (std::size_t id = 0; id < names_.size(); ++id)
            table_[probe(names_[id])] =
                static_cast<std::uint32_t>(id);
    }

    std::vector<std::string> names_;
    /** Open-addressing table of ids; power-of-two capacity. */
    std::vector<std::uint32_t> table_;
};

} // namespace ditto::core

#endif // DITTO_CORE_STRING_INTERNER_H_
