#include "core/inst_clusterer.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ditto::core {

InstRole
instRoleOf(hw::Opcode op)
{
    const hw::InstInfo &info = hw::Isa::instance().info(op);
    if (info.cls == hw::InstClass::Lock)
        return InstRole::Atomic;
    if (info.cls == hw::InstClass::RepString)
        return InstRole::RepString;
    if (info.isBranch)
        return InstRole::Branch;
    if (info.isStore)
        return InstRole::Store;
    if (info.isLoad)
        return InstRole::Load;
    return InstRole::Alu;
}

double
InstClusterer::featureDistance(const hw::InstInfo &a,
                               const hw::InstInfo &b)
{
    double d = 0;
    // Functionality.
    if (a.cls != b.cls)
        d += 0.5;
    // Operand kind (GPR / x87 / XMM / memory).
    if (a.operands != b.operands)
        d += 0.4;
    // uop count and latency, log-scaled.
    d += 0.3 * std::abs(std::log2(1.0 + a.uops) -
                        std::log2(1.0 + b.uops));
    d += 0.25 * std::abs(std::log2(1.0 + a.latency) -
                         std::log2(1.0 + b.latency));
    // Port-set similarity (Jaccard distance on the port mask).
    const unsigned inter = static_cast<unsigned>(
        std::popcount(static_cast<unsigned>(a.ports & b.ports)));
    const unsigned uni = static_cast<unsigned>(
        std::popcount(static_cast<unsigned>(a.ports | b.ports)));
    if (uni > 0)
        d += 0.5 * (1.0 - static_cast<double>(inter) /
                        static_cast<double>(uni));
    return d;
}

InstClusterer::InstClusterer(const std::vector<double> &counts,
                             double threshold)
{
    const hw::Isa &isa = hw::Isa::instance();

    // Group opcodes by role, then cluster within each role
    // agglomeratively (single pass, average linkage approximated by
    // centroid-free greedy merging -- the ISA is small).
    for (int roleIdx = 0; roleIdx < 6; ++roleIdx) {
        const auto role = static_cast<InstRole>(roleIdx);
        std::vector<hw::Opcode> pool;
        for (hw::Opcode op = 0; op < isa.size(); ++op) {
            if (instRoleOf(op) == role)
                pool.push_back(op);
        }
        // Start with singletons; merge closest pairs under threshold.
        std::vector<std::vector<hw::Opcode>> groups;
        for (hw::Opcode op : pool)
            groups.push_back({op});

        auto group_dist = [&](const std::vector<hw::Opcode> &ga,
                              const std::vector<hw::Opcode> &gb) {
            double sum = 0;
            for (hw::Opcode a : ga) {
                for (hw::Opcode b : gb)
                    sum += featureDistance(isa.info(a), isa.info(b));
            }
            return sum / static_cast<double>(ga.size() * gb.size());
        };

        bool merged = true;
        while (merged) {
            merged = false;
            double best = threshold;
            std::size_t bi = 0;
            std::size_t bj = 0;
            for (std::size_t i = 0; i < groups.size(); ++i) {
                for (std::size_t j = i + 1; j < groups.size(); ++j) {
                    const double d = group_dist(groups[i], groups[j]);
                    if (d <= best) {
                        best = d;
                        bi = i;
                        bj = j;
                        merged = true;
                    }
                }
            }
            if (merged) {
                groups[bi].insert(groups[bi].end(),
                                  groups[bj].begin(),
                                  groups[bj].end());
                groups.erase(groups.begin() +
                             static_cast<std::ptrdiff_t>(bj));
            }
        }

        for (auto &group : groups) {
            InstCluster cluster;
            cluster.role = role;
            cluster.members = group;
            // Medoid: member minimizing summed distance to others.
            double bestSum = 1e18;
            for (hw::Opcode cand : group) {
                double sum = 0;
                for (hw::Opcode other : group) {
                    sum += featureDistance(isa.info(cand),
                                           isa.info(other));
                }
                if (sum < bestSum) {
                    bestSum = sum;
                    cluster.medoid = cand;
                }
            }
            for (hw::Opcode op : group) {
                if (op < counts.size())
                    cluster.weight += counts[op];
            }
            clusters_.push_back(std::move(cluster));
        }
    }

    byRole_.resize(6);
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
        const auto roleIdx =
            static_cast<std::size_t>(clusters_[c].role);
        if (clusters_[c].weight > 0) {
            byRole_[roleIdx].add(static_cast<std::int64_t>(c),
                                 clusters_[c].weight);
        }
    }
}

hw::Opcode
InstClusterer::sample(InstRole role, sim::Rng &rng) const
{
    const auto roleIdx = static_cast<std::size_t>(role);
    if (!byRole_[roleIdx].empty()) {
        const auto c = static_cast<std::size_t>(
            byRole_[roleIdx].sample(rng));
        return clusters_[c].medoid;
    }
    // No profiled weight for this role: fall back to a canonical
    // opcode so generation never fails.
    const hw::Isa &isa = hw::Isa::instance();
    switch (role) {
      case InstRole::Load: return isa.opcode("MOV_GPR64_MEM64");
      case InstRole::Store: return isa.opcode("MOV_MEM64_GPR64");
      case InstRole::Branch: return isa.opcode("JNZ_RELBR");
      case InstRole::Atomic: return isa.opcode("LOCK_ADD_MEM64_GPR64");
      case InstRole::RepString: return isa.opcode("REP_MOVSB");
      case InstRole::Alu:
      default: return isa.opcode("ADD_GPR64_GPR64");
    }
}

double
InstClusterer::roleWeight(InstRole role) const
{
    double sum = 0;
    for (const InstCluster &c : clusters_) {
        if (c.role == role)
            sum += c.weight;
    }
    return sum;
}

std::size_t
InstClusterer::clusterCount(InstRole role) const
{
    std::size_t count = 0;
    for (const InstCluster &c : clusters_) {
        if (c.role == role)
            ++count;
    }
    return count;
}

} // namespace ditto::core
