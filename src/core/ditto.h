/**
 * @file
 * Ditto facade: end-to-end cloning workflows.
 *
 * cloneService: profile a running single-tier service and emit a
 * deployable synthetic ServiceSpec (optionally fine-tuned on a
 * sandbox deployment of the profiling platform).
 *
 * cloneTopology: profile every tier of a running microservice
 * deployment, recover the RPC DAG from traces, and emit one clone
 * spec per tier with rewired downstream references -- the full
 * Sec. 4 pipeline.
 */

#ifndef DITTO_CORE_DITTO_H_
#define DITTO_CORE_DITTO_H_

#include <map>
#include <string>
#include <vector>

#include "app/deployment.h"
#include "core/body_generator.h"
#include "core/fine_tuner.h"
#include "core/skeleton_analyzer.h"
#include "core/skeleton_generator.h"
#include "core/topology_analyzer.h"
#include "profile/session.h"
#include "workload/loadgen.h"

namespace ditto::core {

/** Options for the cloning workflows. */
struct CloneOptions
{
    profile::ProfileOptions profiling;
    GenerationConfig gen;
    bool fineTune = true;
    unsigned maxTuneIterations = 10;
    double tuneTolerance = 0.05;
    std::string cloneSuffix = "_clone";
    /** Warm/measure windows for fine-tuning sandbox runs. */
    sim::Time tuneWarmup = sim::milliseconds(150);
    sim::Time tuneWindow = sim::milliseconds(250);
    /**
     * Optional executor for concurrent fine-tune candidate
     * evaluation (see TuneOptions::executor). Results are identical
     * at any worker count; only wall-clock time changes.
     */
    sim::RunExecutor *executor = nullptr;
};

/** Everything produced while cloning one service. */
struct CloneResult
{
    app::ServiceSpec spec;
    profile::ServiceProfile profile;
    SkeletonInference skeleton;
    GenerationConfig config;
    TuneResult tuning;
};

/**
 * Map a load spec onto a clone: same traffic process and request
 * sizes, but all endpoints collapse to the clone's single endpoint.
 */
workload::LoadSpec cloneLoadSpec(const workload::LoadSpec &original);

/**
 * Profile `svc` (already under load inside `dep`) and generate its
 * clone. Fine tuning deploys candidate clones in fresh sandbox
 * deployments on `platform` driven by `loadSpec`.
 */
CloneResult cloneService(app::Deployment &dep,
                         app::ServiceInstance &svc,
                         const workload::LoadSpec &loadSpec,
                         const hw::PlatformSpec &platform,
                         const CloneOptions &opts = {});

/** Result of cloning a whole topology. */
struct TopologyCloneResult
{
    /** Clone specs in dependency order (deploy in this order). */
    std::vector<app::ServiceSpec> specs;
    Topology topology;
    std::map<std::string, CloneResult> perService;
    /** Clone name of the entry tier. */
    std::string rootClone;
};

/**
 * Clone every tier of a running multi-tier deployment. The topology
 * is recovered from the deployment's tracer; tiers are profiled one
 * at a time under the existing load.
 */
TopologyCloneResult cloneTopology(app::Deployment &dep,
                                  const std::vector<std::string> &tiers,
                                  unsigned rootConnections,
                                  const CloneOptions &opts = {});

} // namespace ditto::core

#endif // DITTO_CORE_DITTO_H_
