/**
 * @file
 * Slab allocator for hot-path per-event objects.
 *
 * SlabArena<T> hands out T objects from chunked slabs with an
 * intrusive free list: create()/destroy() are O(1), recycle memory
 * without touching the system allocator after warm-up, and never move
 * live objects (pointers stay stable for the object's lifetime).
 *
 * Intended for the simulator's per-RPC churn -- in-flight network
 * messages, per-attempt retry/hedge state -- where the same small
 * object shape is allocated and freed millions of times per run.
 * The arena is single-threaded by design: each simulated universe
 * owns its own arenas, matching the run-level parallelism model
 * (DESIGN.md §8), so no locks appear on the hot path.
 *
 * Destroying the arena destroys any still-live objects (e.g. messages
 * still in flight when a simulation ends), so tear-down is leak-free
 * without extra bookkeeping at the call sites.
 */

#ifndef DITTO_CORE_SLAB_ARENA_H_
#define DITTO_CORE_SLAB_ARENA_H_

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace ditto::core {

template <typename T>
class SlabArena
{
  public:
    explicit SlabArena(std::size_t chunkCapacity = 256)
        : chunkCapacity_(chunkCapacity ? chunkCapacity : 1)
    {
    }

    ~SlabArena() { clear(); }

    SlabArena(const SlabArena &) = delete;
    SlabArena &operator=(const SlabArena &) = delete;

    /** Construct a T in a recycled (or fresh) slab node. */
    template <typename... Args>
    T *
    create(Args &&...args)
    {
        Node *node = freeList_;
        if (node)
            freeList_ = node->nextFree;
        else
            node = allocateNode();
        T *obj = new (node->storage) T(std::forward<Args>(args)...);
        node->live = true;
        ++liveCount_;
        return obj;
    }

    /** Destroy an object previously returned by create(). */
    void
    destroy(T *obj)
    {
        obj->~T();
        Node *node = nodeOf(obj);
        node->live = false;
        node->nextFree = freeList_;
        freeList_ = node;
        --liveCount_;
    }

    /** Destroy all live objects and release every chunk. */
    void
    clear()
    {
        for (std::size_t c = 0; c < chunks_.size(); ++c) {
            const std::size_t used = c + 1 == chunks_.size()
                ? bumpIndex_
                : chunkCapacity_;
            for (std::size_t i = 0; i < used; ++i) {
                Node &node = chunks_[c][i];
                if (node.live) {
                    std::launder(
                        reinterpret_cast<T *>(node.storage))->~T();
                    node.live = false;
                }
            }
        }
        chunks_.clear();
        freeList_ = nullptr;
        bumpIndex_ = 0;
        liveCount_ = 0;
    }

    /** Objects currently alive (created and not destroyed). */
    std::size_t liveCount() const { return liveCount_; }

    /** Total slab capacity currently reserved. */
    std::size_t
    capacity() const
    {
        return chunks_.size() * chunkCapacity_;
    }

  private:
    struct Node
    {
        union
        {
            alignas(T) unsigned char storage[sizeof(T)];
            Node *nextFree;
        };
        bool live = false;
    };

    static Node *
    nodeOf(T *obj)
    {
        // storage is the first member of the (standard-layout) node,
        // so the object pointer and the node pointer coincide.
        static_assert(offsetof(Node, storage) == 0);
        return std::launder(reinterpret_cast<Node *>(
            reinterpret_cast<unsigned char *>(obj)));
    }

    Node *
    allocateNode()
    {
        if (chunks_.empty() || bumpIndex_ == chunkCapacity_) {
            chunks_.push_back(
                std::make_unique<Node[]>(chunkCapacity_));
            bumpIndex_ = 0;
        }
        return &chunks_.back()[bumpIndex_++];
    }

    std::size_t chunkCapacity_;
    std::vector<std::unique_ptr<Node[]>> chunks_;
    Node *freeList_ = nullptr;
    std::size_t bumpIndex_ = 0;
    std::size_t liveCount_ = 0;
};

} // namespace ditto::core

#endif // DITTO_CORE_SLAB_ARENA_H_
