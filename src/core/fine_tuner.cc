#include "core/fine_tuner.h"

#include <algorithm>
#include <cmath>

namespace ditto::core {

namespace {

/** Multiplicative update toward target/actual, damped and clamped. */
double
nudge(double knob, double target, double actual, double power,
      double lo, double hi)
{
    if (actual <= 1e-12 || target <= 1e-12)
        return knob;
    const double ratio = std::pow(target / actual, power);
    return std::clamp(knob * std::clamp(ratio, 0.5, 2.0), lo, hi);
}

/** Chase-scale multiplier for a given step gain (exact at gain 1). */
double
chaseFactor(double base, double gain)
{
    return gain == 1.0 ? base : std::pow(base, gain);
}

/**
 * One grouped-knob update derived from the report of the current
 * config. `gain` scales the step size; gain 1.0 reproduces the
 * classic update exactly.
 */
GenerationConfig
nudged(const GenerationConfig &current,
       const profile::ReferenceCounters &target,
       const profile::PerfReport &report, double tolerance,
       double gain)
{
    GenerationConfig cfg = current;

    const double ipcError =
        profile::relativeError(report.ipc, target.ipc);
    const double instError = profile::relativeError(
        report.instructionsPerRequest, target.instructionsPerRequest);
    const double l1iErr = profile::relativeError(report.l1iMissRate,
                                                 target.l1iMissRate);
    const double l1dErr = profile::relativeError(report.l1dMissRate,
                                                 target.l1dMissRate);
    const double brErr = profile::relativeError(
        report.branchMispredictRate, target.branchMispredictRate);

    // Group 1: instruction volume.
    cfg.instScale = nudge(cfg.instScale,
                          target.instructionsPerRequest,
                          report.instructionsPerRequest, 1.0 * gain,
                          0.25, 4.0);

    // Group 2: frontend (i-footprint tail + branch bias, tuned
    // jointly -- both feed branch aliasing and L1i pressure).
    if (l1iErr > tolerance) {
        cfg.imemTailScale = nudge(cfg.imemTailScale,
                                  target.l1iMissRate,
                                  report.l1iMissRate, 0.7 * gain,
                                  0.1, 8.0);
    }
    if (brErr > 2 * tolerance) {
        if (report.branchMispredictRate <
            target.branchMispredictRate) {
            cfg.branchExpShift = std::max(cfg.branchExpShift - 1, -4);
        } else {
            cfg.branchExpShift = std::min(cfg.branchExpShift + 1, 4);
        }
    }

    // Group 3: data hierarchy tail.
    if (l1dErr > tolerance) {
        cfg.dmemTailScale = nudge(cfg.dmemTailScale,
                                  target.l1dMissRate,
                                  report.l1dMissRate, 0.7 * gain,
                                  0.1, 8.0);
    } else {
        // L1d is fine: steer the outer levels with a gentler hand.
        const double l2Err = profile::relativeError(
            report.l2MissRate, target.l2MissRate);
        if (l2Err > 2 * tolerance) {
            cfg.dmemTailScale = nudge(cfg.dmemTailScale,
                                      target.l2MissRate,
                                      report.l2MissRate, 0.3 * gain,
                                      0.1, 8.0);
        }
    }

    // Group 4: MLP, as the residual IPC correction once the
    // instruction volume is right. Serialization is the strongest
    // remaining lever on backend stalls.
    if (instError < 2 * tolerance && ipcError > tolerance) {
        if (report.ipc > target.ipc) {
            cfg.chaseScale = std::clamp(
                cfg.chaseScale * chaseFactor(1.5, gain), 0.05, 10.0);
        } else {
            cfg.chaseScale = std::clamp(
                cfg.chaseScale * chaseFactor(0.65, gain), 0.05, 10.0);
        }
    }
    return cfg;
}

TuneStep
makeStep(const profile::PerfReport &report,
         const profile::ReferenceCounters &target)
{
    TuneStep step;
    step.report = report;
    step.ipcError = profile::relativeError(report.ipc, target.ipc);
    step.instError = profile::relativeError(
        report.instructionsPerRequest, target.instructionsPerRequest);
    step.maxError = std::max({step.ipcError, step.instError});
    return step;
}

/**
 * Candidate step gains. The nominal step comes first so a tie on
 * score resolves to the classic trajectory.
 */
constexpr double kGains[] = {1.0, 0.5, 1.6};

} // namespace

TuneResult
fineTune(const profile::ReferenceCounters &target,
         const GenerationConfig &initial, const CloneRunner &run,
         const TuneOptions &opts)
{
    TuneResult result;
    result.config = initial;

    const unsigned fanout = opts.executor
        ? std::clamp(opts.fanout, 1u, 3u)
        : 1u;

    GenerationConfig current = initial;
    profile::PerfReport lastReport;

    for (unsigned iter = 0; iter < opts.maxIterations; ++iter) {
        // Candidate configs: the initial config on the first
        // iteration, grouped-knob updates of the incumbent after.
        // The set is a pure function of the incumbent's report --
        // never of the worker count -- so results are identical at
        // any parallelism.
        std::vector<GenerationConfig> candidates;
        if (iter == 0) {
            candidates.push_back(current);
        } else {
            for (unsigned c = 0; c < fanout; ++c)
                candidates.push_back(nudged(current, target,
                                            lastReport,
                                            opts.tolerance,
                                            kGains[c]));
        }

        std::vector<profile::PerfReport> reports;
        if (opts.executor && candidates.size() > 1) {
            std::vector<std::function<profile::PerfReport()>> tasks;
            tasks.reserve(candidates.size());
            for (const GenerationConfig &cfg : candidates)
                tasks.push_back([&run, &cfg] { return run(cfg); });
            reports = opts.executor->runOrdered<profile::PerfReport>(
                std::move(tasks));
        } else {
            for (const GenerationConfig &cfg : candidates)
                reports.push_back(run(cfg));
        }

        // Deterministic pick: lowest max error, ties to the lowest
        // index (the nominal step).
        std::size_t best = 0;
        double bestScore = makeStep(reports[0], target).maxError;
        for (std::size_t c = 1; c < reports.size(); ++c) {
            const double score = makeStep(reports[c], target).maxError;
            if (score < bestScore) {
                bestScore = score;
                best = c;
            }
        }

        current = candidates[best];
        lastReport = reports[best];
        ++result.iterations;

        const TuneStep step = makeStep(lastReport, target);
        const double brErr = profile::relativeError(
            lastReport.branchMispredictRate,
            target.branchMispredictRate);
        result.trace.push_back(step);
        result.finalIpcError = step.ipcError;
        result.config = current;

        if (step.ipcError < opts.tolerance &&
            step.instError < opts.tolerance &&
            brErr < 4 * opts.tolerance) {
            result.converged = true;
            break;
        }
    }
    return result;
}

TuneResult
fineTune(const profile::ReferenceCounters &target,
         const GenerationConfig &initial, const CloneRunner &run,
         unsigned maxIterations, double tolerance)
{
    TuneOptions opts;
    opts.maxIterations = maxIterations;
    opts.tolerance = tolerance;
    return fineTune(target, initial, run, opts);
}

} // namespace ditto::core
