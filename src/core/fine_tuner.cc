#include "core/fine_tuner.h"

#include <algorithm>
#include <cmath>

namespace ditto::core {

namespace {

/** Multiplicative update toward target/actual, damped and clamped. */
double
nudge(double knob, double target, double actual, double power,
      double lo, double hi)
{
    if (actual <= 1e-12 || target <= 1e-12)
        return knob;
    const double ratio = std::pow(target / actual, power);
    return std::clamp(knob * std::clamp(ratio, 0.5, 2.0), lo, hi);
}

} // namespace

TuneResult
fineTune(const profile::ReferenceCounters &target,
         const GenerationConfig &initial, const CloneRunner &run,
         unsigned maxIterations, double tolerance)
{
    TuneResult result;
    result.config = initial;

    for (unsigned iter = 0; iter < maxIterations; ++iter) {
        const profile::PerfReport report = run(result.config);
        ++result.iterations;

        TuneStep step;
        step.report = report;
        step.ipcError = profile::relativeError(report.ipc, target.ipc);
        step.instError = profile::relativeError(
            report.instructionsPerRequest,
            target.instructionsPerRequest);
        const double l1iErr = profile::relativeError(
            report.l1iMissRate, target.l1iMissRate);
        const double l1dErr = profile::relativeError(
            report.l1dMissRate, target.l1dMissRate);
        const double brErr = profile::relativeError(
            report.branchMispredictRate, target.branchMispredictRate);
        step.maxError = std::max({step.ipcError, step.instError});
        result.trace.push_back(step);
        result.finalIpcError = step.ipcError;

        if (step.ipcError < tolerance && step.instError < tolerance &&
            brErr < 4 * tolerance) {
            result.converged = true;
            break;
        }

        GenerationConfig &cfg = result.config;

        // Group 1: instruction volume.
        cfg.instScale = nudge(cfg.instScale,
                              target.instructionsPerRequest,
                              report.instructionsPerRequest, 1.0,
                              0.25, 4.0);

        // Group 2: frontend (i-footprint tail + branch bias, tuned
        // jointly -- both feed branch aliasing and L1i pressure).
        if (l1iErr > tolerance) {
            cfg.imemTailScale = nudge(cfg.imemTailScale,
                                      target.l1iMissRate,
                                      report.l1iMissRate, 0.7,
                                      0.1, 8.0);
        }
        if (brErr > 2 * tolerance) {
            if (report.branchMispredictRate <
                target.branchMispredictRate) {
                cfg.branchExpShift = std::max(cfg.branchExpShift - 1,
                                              -4);
            } else {
                cfg.branchExpShift = std::min(cfg.branchExpShift + 1,
                                              4);
            }
        }

        // Group 3: data hierarchy tail.
        if (l1dErr > tolerance) {
            cfg.dmemTailScale = nudge(cfg.dmemTailScale,
                                      target.l1dMissRate,
                                      report.l1dMissRate, 0.7,
                                      0.1, 8.0);
        } else {
            // L1d is fine: steer the outer levels with a gentler hand.
            const double l2Err = profile::relativeError(
                report.l2MissRate, target.l2MissRate);
            if (l2Err > 2 * tolerance) {
                cfg.dmemTailScale = nudge(cfg.dmemTailScale,
                                          target.l2MissRate,
                                          report.l2MissRate, 0.3,
                                          0.1, 8.0);
            }
        }

        // Group 4: MLP, as the residual IPC correction once the
        // instruction volume is right. Serialization is the strongest
        // remaining lever on backend stalls.
        if (step.instError < 2 * tolerance &&
            step.ipcError > tolerance) {
            if (report.ipc > target.ipc) {
                cfg.chaseScale =
                    std::clamp(cfg.chaseScale * 1.5, 0.05, 10.0);
            } else {
                cfg.chaseScale =
                    std::clamp(cfg.chaseScale * 0.65, 0.05, 10.0);
            }
        }
    }
    return result;
}

} // namespace ditto::core
