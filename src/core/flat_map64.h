/**
 * @file
 * Open-addressed u64 -> u64 hash map for per-access hot paths.
 *
 * The coherence sharers directory is consulted on every shared-memory
 * access (tens of millions of times per simulated second), and
 * std::unordered_map's node allocation + bucket chasing made it the
 * single hottest function of the figure benches. This table is the
 * flat alternative: power-of-two capacity, linear probing, keys and
 * values in separate contiguous arrays, no erase (directories only
 * grow), Fibonacci hashing to spread clustered line addresses.
 */

#ifndef DITTO_CORE_FLAT_MAP64_H_
#define DITTO_CORE_FLAT_MAP64_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ditto::core {

/**
 * Minimal flat hash map: u64 keys to u64 values, insert-or-find only.
 *
 * The key ~0ull is reserved as the empty marker (line addresses are
 * byte addresses divided by 64, so they can never reach 2^64-1).
 */
class FlatMap64
{
  public:
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

    FlatMap64() { rehash(kInitialCapacity); }

    /**
     * Insert-or-find: reference to the value for `key`, default 0 on
     * first touch. Invalidated by the next ref() (growth may move it).
     */
    std::uint64_t &
    ref(std::uint64_t key)
    {
        if ((size_ + 1) * 10 >= capacity() * 7)
            rehash(capacity() * 2);
        std::size_t idx = probe(key);
        if (keys_[idx] == kEmptyKey) {
            keys_[idx] = key;
            vals_[idx] = 0;
            ++size_;
        }
        return vals_[idx];
    }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return keys_.size(); }

    void
    clear()
    {
        keys_.assign(keys_.size(), kEmptyKey);
        vals_.assign(vals_.size(), 0);
        size_ = 0;
    }

  private:
    static constexpr std::size_t kInitialCapacity = 1024;

    std::size_t
    probe(std::uint64_t key) const
    {
        // Fibonacci hashing: line addresses arrive in arithmetic
        // progressions, which would chain badly under masking alone.
        std::size_t idx = static_cast<std::size_t>(
                              (key * 0x9e3779b97f4a7c15ull) >> 32) &
            (keys_.size() - 1);
        while (keys_[idx] != kEmptyKey && keys_[idx] != key)
            idx = (idx + 1) & (keys_.size() - 1);
        return idx;
    }

    void
    rehash(std::size_t newCapacity)
    {
        std::vector<std::uint64_t> oldKeys = std::move(keys_);
        std::vector<std::uint64_t> oldVals = std::move(vals_);
        keys_.assign(newCapacity, kEmptyKey);
        vals_.assign(newCapacity, 0);
        for (std::size_t i = 0; i < oldKeys.size(); ++i) {
            if (oldKeys[i] == kEmptyKey)
                continue;
            const std::size_t idx = probe(oldKeys[i]);
            keys_[idx] = oldKeys[i];
            vals_[idx] = oldVals[i];
        }
    }

    std::vector<std::uint64_t> keys_;
    std::vector<std::uint64_t> vals_;
    std::size_t size_ = 0;
};

} // namespace ditto::core

#endif // DITTO_CORE_FLAT_MAP64_H_
