#include "core/spec_io.h"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "hw/isa.h"

namespace ditto::core {

namespace {

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

const char *
serverModelName(app::ServerModel m)
{
    switch (m) {
      case app::ServerModel::IoMultiplex: return "iomultiplex";
      case app::ServerModel::BlockingPerConn: return "blocking";
      case app::ServerModel::NonBlocking: return "nonblocking";
    }
    return "iomultiplex";
}

const char *
streamKindName(hw::StreamKind k)
{
    switch (k) {
      case hw::StreamKind::Sequential: return "seq";
      case hw::StreamKind::Strided: return "strided";
      case hw::StreamKind::PointerChase: return "chase";
      case hw::StreamKind::Random: return "random";
    }
    return "seq";
}

void
writeProgram(std::ostream &os, const app::Program &prog, int depth);

void
writeOp(std::ostream &os, const app::Op &op, int depth)
{
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    switch (op.kind) {
      case app::OpKind::Compute:
        os << pad << "compute block=" << op.block << " iters="
           << op.itersMin << ".." << op.itersMax << "\n";
        break;
      case app::OpKind::FileRead:
        os << pad << "file_read file=" << op.fileRef << " bytes="
           << op.bytesMin << ".." << op.bytesMax << "\n";
        break;
      case app::OpKind::FileWrite:
        os << pad << "file_write file=" << op.fileRef << " bytes="
           << op.bytesMin << ".." << op.bytesMax << "\n";
        break;
      case app::OpKind::Rpc:
        os << pad << "rpc";
        for (const auto &call : op.rpcs) {
            os << " call=" << call.target << ":" << call.endpoint
               << ":" << call.requestBytes << ":"
               << call.responseBytes;
            // Trailing marker only when set: specs without brownout
            // edges round-trip byte-identically to the old format.
            if (call.optional)
                os << ":opt";
        }
        os << "\n";
        break;
      case app::OpKind::Lock:
        os << pad << "lock ref=" << op.lockRef << "\n";
        break;
      case app::OpKind::Unlock:
        os << pad << "unlock ref=" << op.lockRef << "\n";
        break;
      case app::OpKind::Sleep:
        os << pad << "sleep ns=" << op.duration << "\n";
        break;
      case app::OpKind::Choice: {
        os << pad << "choice probs=";
        for (std::size_t i = 0; i < op.probs.size(); ++i)
            os << (i ? "," : "") << op.probs[i];
        os << " {\n";
        for (const auto &arm : op.subs) {
            os << pad << "  arm {\n";
            writeProgram(os, arm, depth + 2);
            os << pad << "  }\n";
        }
        os << pad << "}\n";
        break;
      }
      case app::OpKind::Call:
        os << pad << "call label=\"" << op.label << "\" {\n";
        writeProgram(os, op.subs[0], depth + 1);
        os << pad << "}\n";
        break;
    }
}

void
writeProgram(std::ostream &os, const app::Program &prog, int depth)
{
    for (const app::Op &op : prog.ops)
        writeOp(os, op, depth);
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/** Minimal tokenizer over the line-oriented format. */
class Parser
{
  public:
    explicit Parser(std::istream &is) : is_(is) {}

    /** Next non-empty, non-comment line; false at EOF. */
    bool
    nextLine(std::string &line)
    {
        while (std::getline(is_, line)) {
            ++lineNo_;
            const auto start = line.find_first_not_of(" \t");
            if (start == std::string::npos)
                continue;
            line = line.substr(start);
            if (line[0] == '#')
                continue;
            return true;
        }
        return false;
    }

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("spec parse error (line " +
                                 std::to_string(lineNo_) +
                                 "): " + what);
    }

    int lineNo() const { return lineNo_; }

  private:
    std::istream &is_;
    int lineNo_ = 0;
};

/** Split "key=value" attributes of a directive line. */
std::map<std::string, std::string>
attrsOf(const std::string &line)
{
    std::map<std::string, std::string> attrs;
    std::istringstream ss(line);
    std::string token;
    ss >> token;  // directive name
    while (ss >> token) {
        const auto eq = token.find('=');
        if (eq == std::string::npos)
            continue;
        attrs[token.substr(0, eq)] = token.substr(eq + 1);
    }
    return attrs;
}

std::string
quotedName(Parser &p, const std::string &line)
{
    const auto open = line.find('"');
    const auto close = line.find('"', open + 1);
    if (open == std::string::npos || close == std::string::npos)
        p.fail("expected quoted name in: " + line);
    return line.substr(open + 1, close - open - 1);
}

std::uint64_t
u64Attr(Parser &p, const std::map<std::string, std::string> &attrs,
        const std::string &key)
{
    const auto it = attrs.find(key);
    if (it == attrs.end())
        p.fail("missing attribute " + key);
    return std::stoull(it->second);
}

std::pair<std::uint64_t, std::uint64_t>
rangeAttr(Parser &p, const std::map<std::string, std::string> &attrs,
          const std::string &key)
{
    const auto it = attrs.find(key);
    if (it == attrs.end())
        p.fail("missing range attribute " + key);
    const auto dots = it->second.find("..");
    if (dots == std::string::npos)
        p.fail("malformed range " + it->second);
    return {std::stoull(it->second.substr(0, dots)),
            std::stoull(it->second.substr(dots + 2))};
}

hw::StreamKind
streamKindOf(Parser &p, const std::string &name)
{
    if (name == "seq")
        return hw::StreamKind::Sequential;
    if (name == "strided")
        return hw::StreamKind::Strided;
    if (name == "chase")
        return hw::StreamKind::PointerChase;
    if (name == "random")
        return hw::StreamKind::Random;
    p.fail("unknown stream kind " + name);
}

app::Program parseProgram(Parser &p);

/** Parse one op line (or nested structure); false on '}'. */
bool
parseOpInto(Parser &p, app::Program &prog, const std::string &line)
{
    if (line == "}")
        return false;
    std::istringstream ss(line);
    std::string directive;
    ss >> directive;
    const auto attrs = attrsOf(line);

    if (directive == "compute") {
        const auto [lo, hi] = rangeAttr(p, attrs, "iters");
        prog.ops.push_back(app::opCompute(
            static_cast<std::uint32_t>(u64Attr(p, attrs, "block")),
            lo, hi));
    } else if (directive == "file_read" ||
               directive == "file_write") {
        const auto [lo, hi] = rangeAttr(p, attrs, "bytes");
        const auto file = static_cast<std::uint32_t>(
            u64Attr(p, attrs, "file"));
        prog.ops.push_back(directive == "file_read"
                               ? app::opFileRead(file, lo, hi)
                               : app::opFileWrite(file, lo, hi));
    } else if (directive == "rpc") {
        std::vector<app::RpcCallSpec> calls;
        std::string token;
        std::istringstream rescan(line);
        rescan >> token;
        while (rescan >> token) {
            if (token.rfind("call=", 0) != 0)
                continue;
            app::RpcCallSpec call;
            if (std::sscanf(token.c_str() + 5, "%u:%u:%u:%u",
                            &call.target, &call.endpoint,
                            &call.requestBytes,
                            &call.responseBytes) != 4) {
                p.fail("malformed rpc call " + token);
            }
            if (token.size() >= 4 &&
                token.compare(token.size() - 4, 4, ":opt") == 0)
                call.optional = true;
            calls.push_back(call);
        }
        prog.ops.push_back(app::opRpcFanout(std::move(calls)));
    } else if (directive == "lock") {
        prog.ops.push_back(app::opLock(static_cast<std::uint32_t>(
            u64Attr(p, attrs, "ref"))));
    } else if (directive == "unlock") {
        prog.ops.push_back(app::opUnlock(static_cast<std::uint32_t>(
            u64Attr(p, attrs, "ref"))));
    } else if (directive == "sleep") {
        prog.ops.push_back(app::opSleep(u64Attr(p, attrs, "ns")));
    } else if (directive == "choice") {
        std::vector<double> probs;
        const auto it = attrs.find("probs");
        if (it == attrs.end())
            p.fail("choice without probs");
        std::istringstream ps(it->second);
        std::string piece;
        while (std::getline(ps, piece, ','))
            probs.push_back(std::stod(piece));
        std::vector<app::Program> arms;
        std::string sub;
        while (p.nextLine(sub)) {
            if (sub == "}")
                break;
            if (sub.rfind("arm", 0) == 0) {
                arms.push_back(parseProgram(p));
            } else {
                p.fail("expected arm/} in choice, got " + sub);
            }
        }
        prog.ops.push_back(
            app::opChoice(std::move(probs), std::move(arms)));
    } else if (directive == "call") {
        const std::string label = quotedName(p, line);
        prog.ops.push_back(app::opCall(label, parseProgram(p)));
    } else {
        p.fail("unknown op directive " + directive);
    }
    return true;
}

/** Parse ops until the closing '}'. */
app::Program
parseProgram(Parser &p)
{
    app::Program prog;
    std::string line;
    while (p.nextLine(line)) {
        if (!parseOpInto(p, prog, line))
            return prog;
    }
    p.fail("unexpected EOF in program body");
}

hw::CodeBlock
parseBlock(Parser &p, const std::string &header)
{
    hw::CodeBlock block;
    block.label = quotedName(p, header);
    const hw::Isa &isa = hw::Isa::instance();
    std::string line;
    while (p.nextLine(line)) {
        if (line == "}")
            return block;
        const auto attrs = attrsOf(line);
        if (line.rfind("stream", 0) == 0) {
            hw::MemStreamDesc desc;
            desc.wsBytes = u64Attr(p, attrs, "ws");
            desc.kind = streamKindOf(p, attrs.at("kind"));
            desc.shared = u64Attr(p, attrs, "shared") != 0;
            desc.poolKey = static_cast<std::uint32_t>(
                u64Attr(p, attrs, "pool"));
            block.streams.push_back(desc);
        } else if (line.rfind("branch", 0) == 0) {
            block.branches.push_back(hw::BranchDesc{
                static_cast<std::uint8_t>(u64Attr(p, attrs, "m")),
                static_cast<std::uint8_t>(u64Attr(p, attrs, "n"))});
        } else if (line.rfind("inst", 0) == 0) {
            hw::Inst inst;
            if (!isa.tryOpcode(attrs.at("op"), inst.opcode))
                p.fail("unknown iform " + attrs.at("op"));
            auto reg = [&](const char *key) -> std::uint8_t {
                const auto it = attrs.find(key);
                return it == attrs.end()
                    ? hw::kNoReg
                    : static_cast<std::uint8_t>(
                          std::stoul(it->second));
            };
            inst.dst = reg("dst");
            inst.src0 = reg("src0");
            inst.src1 = reg("src1");
            if (attrs.count("mem")) {
                inst.memStream = static_cast<std::uint16_t>(
                    u64Attr(p, attrs, "mem"));
            }
            if (attrs.count("br")) {
                inst.branch = static_cast<std::uint16_t>(
                    u64Attr(p, attrs, "br"));
            }
            if (attrs.count("rep")) {
                inst.repBytes = static_cast<std::uint32_t>(
                    u64Attr(p, attrs, "rep"));
            }
            block.insts.push_back(inst);
        } else {
            p.fail("unknown block directive: " + line);
        }
    }
    p.fail("unexpected EOF in block");
}

app::ServiceSpec
parseService(Parser &p, const std::string &header)
{
    app::ServiceSpec spec;
    spec.name = quotedName(p, header);
    std::string line;
    while (p.nextLine(line)) {
        if (line == "}")
            return spec;
        std::istringstream ss(line);
        std::string directive;
        ss >> directive;
        const auto attrs = attrsOf(line);

        if (directive == "server_model") {
            std::string value;
            ss >> value;
            if (value == "iomultiplex")
                spec.serverModel = app::ServerModel::IoMultiplex;
            else if (value == "blocking")
                spec.serverModel = app::ServerModel::BlockingPerConn;
            else if (value == "nonblocking")
                spec.serverModel = app::ServerModel::NonBlocking;
            else
                p.fail("unknown server model " + value);
        } else if (directive == "client_model") {
            std::string value;
            ss >> value;
            spec.clientModel = value == "async"
                ? app::ClientModel::Async : app::ClientModel::Sync;
        } else if (directive == "workers") {
            unsigned w = 0;
            ss >> w;
            spec.threads.workers = w;
        } else if (directive == "thread_per_connection") {
            int v = 0;
            ss >> v;
            spec.threads.threadPerConnection = v != 0;
        } else if (directive == "locks") {
            ss >> spec.locks;
        } else if (directive == "file") {
            spec.fileBytes.push_back(u64Attr(p, attrs, "bytes"));
            if (attrs.count("prewarm")) {
                spec.filePrewarmFraction =
                    std::stod(attrs.at("prewarm"));
            }
        } else if (directive == "downstream") {
            spec.downstreams.push_back(quotedName(p, line));
        } else if (directive == "block") {
            spec.blocks.push_back(parseBlock(p, line));
        } else if (directive == "endpoint") {
            app::EndpointSpec ep;
            ep.name = quotedName(p, line);
            const auto [lo, hi] = rangeAttr(p, attrs, "resp");
            ep.responseBytesMin = static_cast<std::uint32_t>(lo);
            ep.responseBytesMax = static_cast<std::uint32_t>(hi);
            ep.handler = parseProgram(p);
            spec.endpoints.push_back(std::move(ep));
        } else if (directive == "background") {
            app::BackgroundSpec bg;
            bg.name = quotedName(p, line);
            bg.period = u64Attr(p, attrs, "period_ns");
            bg.body = parseProgram(p);
            spec.background.push_back(std::move(bg));
        } else {
            p.fail("unknown service directive " + directive);
        }
    }
    p.fail("unexpected EOF in service");
}

} // namespace

void
writeSpec(std::ostream &os, const app::ServiceSpec &spec)
{
    const hw::Isa &isa = hw::Isa::instance();
    os << "service \"" << spec.name << "\" {\n";
    os << "  server_model " << serverModelName(spec.serverModel)
       << "\n";
    os << "  client_model "
       << (spec.clientModel == app::ClientModel::Async ? "async"
                                                       : "sync")
       << "\n";
    os << "  workers " << spec.threads.workers << "\n";
    os << "  thread_per_connection "
       << (spec.threads.threadPerConnection ? 1 : 0) << "\n";
    if (spec.locks)
        os << "  locks " << spec.locks << "\n";
    for (std::uint64_t bytes : spec.fileBytes) {
        os << "  file bytes=" << bytes
           << " prewarm=" << spec.filePrewarmFraction << "\n";
    }
    for (const std::string &down : spec.downstreams)
        os << "  downstream \"" << down << "\"\n";

    for (const hw::CodeBlock &block : spec.blocks) {
        os << "  block \"" << block.label << "\" {\n";
        for (const auto &s : block.streams) {
            os << "    stream ws=" << s.wsBytes << " kind="
               << streamKindName(s.kind) << " shared="
               << (s.shared ? 1 : 0) << " pool=" << s.poolKey << "\n";
        }
        for (const auto &b : block.branches) {
            os << "    branch m=" << static_cast<int>(b.takenExp)
               << " n=" << static_cast<int>(b.transExp) << "\n";
        }
        for (const auto &inst : block.insts) {
            os << "    inst op=" << isa.info(inst.opcode).iform;
            if (inst.dst != hw::kNoReg)
                os << " dst=" << static_cast<int>(inst.dst);
            if (inst.src0 != hw::kNoReg)
                os << " src0=" << static_cast<int>(inst.src0);
            if (inst.src1 != hw::kNoReg)
                os << " src1=" << static_cast<int>(inst.src1);
            if (inst.memStream != hw::kNoStream)
                os << " mem=" << inst.memStream;
            if (inst.branch != hw::kNoBranch)
                os << " br=" << inst.branch;
            if (inst.repBytes)
                os << " rep=" << inst.repBytes;
            os << "\n";
        }
        os << "  }\n";
    }

    for (const app::EndpointSpec &ep : spec.endpoints) {
        os << "  endpoint \"" << ep.name << "\" resp="
           << ep.responseBytesMin << ".." << ep.responseBytesMax
           << " {\n";
        writeProgram(os, ep.handler, 2);
        os << "  }\n";
    }
    for (const app::BackgroundSpec &bg : spec.background) {
        os << "  background \"" << bg.name << "\" period_ns="
           << bg.period << " {\n";
        writeProgram(os, bg.body, 2);
        os << "  }\n";
    }
    os << "}\n";
}

void
writeTopology(std::ostream &os,
              const std::vector<app::ServiceSpec> &specs)
{
    os << "# ditto clone topology: " << specs.size()
       << " service(s)\n";
    for (const auto &spec : specs)
        writeSpec(os, spec);
}

std::string
specToString(const app::ServiceSpec &spec)
{
    std::ostringstream os;
    writeSpec(os, spec);
    return os.str();
}

std::vector<app::ServiceSpec>
readSpecs(std::istream &is)
{
    Parser p(is);
    std::vector<app::ServiceSpec> specs;
    std::string line;
    while (p.nextLine(line)) {
        if (line.rfind("service", 0) == 0)
            specs.push_back(parseService(p, line));
        else
            p.fail("expected 'service', got: " + line);
    }
    return specs;
}

std::vector<app::ServiceSpec>
specsFromString(const std::string &text)
{
    std::istringstream is(text);
    return readSpecs(is);
}

bool
saveTopology(const std::string &path,
             const std::vector<app::ServiceSpec> &specs)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeTopology(os, specs);
    return static_cast<bool>(os);
}

std::vector<app::ServiceSpec>
loadTopology(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    return readSpecs(is);
}

} // namespace ditto::core
