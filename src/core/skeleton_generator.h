/**
 * @file
 * Skeleton generator: assembles a complete, deployable clone
 * ServiceSpec from the inferred skeleton, the generated body, and
 * the topology's RPC edges (Secs. 4.2-4.3).
 */

#ifndef DITTO_CORE_SKELETON_GENERATOR_H_
#define DITTO_CORE_SKELETON_GENERATOR_H_

#include <map>
#include <string>

#include "app/program.h"
#include "core/body_generator.h"
#include "core/skeleton_analyzer.h"
#include "core/topology_analyzer.h"
#include "profile/profile_data.h"

namespace ditto::core {

/**
 * Build the clone's ServiceSpec.
 *
 * @param prof      the service's profile
 * @param skeleton  inferred network/thread models
 * @param outEdges  topology edges where this service is the caller
 * @param nameMap   original service name -> clone name (downstream
 *                  references must point at the cloned tiers)
 * @param cfg       generation config (stage toggles + knobs)
 */
app::ServiceSpec generateClone(
    const profile::ServiceProfile &prof,
    const SkeletonInference &skeleton,
    const std::vector<profile::EdgeProfile> &outEdges,
    const std::map<std::string, std::string> &nameMap,
    const GenerationConfig &cfg);

} // namespace ditto::core

#endif // DITTO_CORE_SKELETON_GENERATOR_H_
