/**
 * @file
 * Microservice topology analyzer (Sec. 4.2).
 *
 * Consumes collected distributed traces (server spans + client RPC
 * edges) and recovers the dependency DAG with per-edge statistics:
 * calls per caller-request, request/response sizes. The skeleton
 * generator turns this into the clone's RPC interfaces.
 */

#ifndef DITTO_CORE_TOPOLOGY_ANALYZER_H_
#define DITTO_CORE_TOPOLOGY_ANALYZER_H_

#include <map>
#include <string>
#include <vector>

#include "profile/profile_data.h"
#include "trace/tracer.h"

namespace ditto::core {

/** Recovered service dependency graph. */
struct Topology
{
    /** All services, topologically ordered (callees first). */
    std::vector<std::string> services;
    std::vector<profile::EdgeProfile> edges;
    /** Server spans observed per service. */
    std::map<std::string, double> requestCounts;
    /** Entry service (receives external requests, no caller). */
    std::string root;

    /** Edges where `service` is the caller. */
    std::vector<profile::EdgeProfile>
    outEdges(const std::string &service) const;

    /** True when the DAG contains the service. */
    bool contains(const std::string &service) const;
};

/** Build the topology from a trace collection. */
Topology analyzeTopology(const trace::Tracer &tracer);

} // namespace ditto::core

#endif // DITTO_CORE_TOPOLOGY_ANALYZER_H_
