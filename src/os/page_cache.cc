#include "os/page_cache.h"

namespace ditto::os {

std::uint32_t
Vfs::create(const std::string &name, std::uint64_t bytes)
{
    File f;
    f.id = static_cast<std::uint32_t>(files_.size());
    f.name = name;
    f.bytes = bytes;
    files_.push_back(f);
    return f.id;
}

PageCache::PageCache(std::uint64_t capacityBytes)
    : capacityPages_(capacityBytes / kPageBytes)
{
    if (capacityPages_ == 0)
        capacityPages_ = 1;
}

std::uint64_t
PageCache::access(std::uint32_t fileId, std::uint64_t offset,
                  std::uint64_t bytes)
{
    if (bytes == 0)
        return 0;
    const std::uint64_t first = offset / kPageBytes;
    const std::uint64_t last = (offset + bytes - 1) / kPageBytes;
    std::uint64_t missing = 0;
    for (std::uint64_t page = first; page <= last; ++page) {
        ++lookups_;
        const Key key = (static_cast<Key>(fileId) << 40) | page;
        auto it = map_.find(key);
        if (it != map_.end()) {
            touch(key);
        } else {
            ++misses_;
            ++missing;
            insert(key);
        }
    }
    return missing;
}

void
PageCache::touch(Key key)
{
    auto it = map_.find(key);
    lru_.splice(lru_.begin(), lru_, it->second);
}

void
PageCache::insert(Key key)
{
    if (map_.size() >= capacityPages_) {
        const Key victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);
    }
    lru_.push_front(key);
    map_[key] = lru_.begin();
}

double
PageCache::hitRate() const
{
    return lookups_ ? 1.0 - static_cast<double>(misses_) /
        static_cast<double>(lookups_) : 0.0;
}

void
PageCache::resetStats()
{
    lookups_ = 0;
    misses_ = 0;
}

} // namespace ditto::os
