/**
 * @file
 * Schedulable threads for the kernel model.
 *
 * A Thread is an abstract execution entity: the scheduler grants it a
 * core, calls step(), and the thread synchronously simulates work on
 * the machine model (compute blocks, syscalls) until it blocks,
 * exhausts its timeslice, or exits. The application layer implements
 * step() with an op-program interpreter.
 */

#ifndef DITTO_OS_THREAD_H_
#define DITTO_OS_THREAD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "hw/cpu_core.h"
#include "sim/time.h"

namespace ditto::os {

class Kernel;
class Machine;

/** Why a thread stopped running in this slice. */
enum class StopReason : std::uint8_t
{
    Yield,  //!< timeslice exhausted or voluntary yield; still runnable
    Block,  //!< waiting on an event; a waker will make it runnable
    Exit,   //!< terminated
};

/** Everything a thread needs while it holds a core. */
struct StepCtx
{
    hw::CpuCore &core;
    Kernel &kernel;
    Machine &machine;
    /** Timeslice budget in cycles. */
    double cycleBudget;
    /** Cycles consumed so far this slice (updated by the thread). */
    double cyclesUsed = 0;

    bool overBudget() const { return cyclesUsed >= cycleBudget; }
};

/** Outcome of one scheduling slice. */
struct StepResult
{
    StopReason reason = StopReason::Yield;
};

/**
 * Base class of all schedulable entities.
 *
 * Lifecycle: Created -> Ready -> Running -> {Ready, Blocked} ... ->
 * Zombie. Transitions are owned by the Scheduler; wakers only call
 * Scheduler::wake().
 */
class Thread
{
  public:
    enum class State : std::uint8_t
    {
        Created,
        Ready,
        Running,
        Blocked,
        Zombie,
    };

    Thread(std::string name, unsigned threadSlot, std::uint64_t seed)
        : name_(std::move(name)), execCtx_(threadSlot, seed)
    {
    }

    virtual ~Thread() = default;

    Thread(const Thread &) = delete;
    Thread &operator=(const Thread &) = delete;

    /**
     * Run on `ctx.core` until block/yield/exit. Implementations must
     * charge all consumed cycles into ctx.cyclesUsed.
     */
    virtual StepResult step(StepCtx &ctx) = 0;

    const std::string &name() const { return name_; }

    State state() const { return state_; }
    void setState(State s) { state_ = s; }

    /** Pinned core id, or -1 for any core. */
    int affinity() const { return affinity_; }
    void setAffinity(int core) { affinity_ = core; }

    bool wakePending() const { return wakePending_; }
    void setWakePending(bool p) { wakePending_ = p; }

    hw::ExecContext &execContext() { return execCtx_; }

    /** Stats sink this thread's work is attributed to (may be null). */
    hw::ExecStats *statsSink() const { return statsSink_; }
    void setStatsSink(hw::ExecStats *sink) { statsSink_ = sink; }

    /** Core the thread last ran on (affinity hint), or -1. */
    int lastCore() const { return lastCore_; }
    void setLastCore(int core) { lastCore_ = core; }

    std::uint64_t voluntarySwitches = 0;
    std::uint64_t involuntarySwitches = 0;

  private:
    std::string name_;
    State state_ = State::Created;
    int affinity_ = -1;
    int lastCore_ = -1;
    bool wakePending_ = false;
    hw::ExecContext execCtx_;
    hw::ExecStats *statsSink_ = nullptr;
};

} // namespace ditto::os

#endif // DITTO_OS_THREAD_H_
