/**
 * @file
 * Syscall layer: the kernel-side semantics and CPU costs of the
 * system calls the applications use.
 *
 * Every syscall (a) runs its kernel code path on the calling thread's
 * core -- charging real simulated instructions, i-cache pressure, and
 * cycles into the thread's stats sink -- and (b) performs the
 * semantic action (dequeue a message, look up the page cache, submit
 * a disk I/O, park the thread on a wait queue).
 *
 * Blocking syscalls use a two-phase protocol: the issue phase either
 * completes (Ok) or registers the thread as a waiter and returns
 * WouldBlock; after being woken the caller re-issues or runs the
 * completion phase. The op interpreter in src/app drives this.
 */

#ifndef DITTO_OS_KERNEL_H_
#define DITTO_OS_KERNEL_H_

#include <cstdint>
#include <vector>

#include "os/kernel_code.h"
#include "os/socket.h"
#include "os/thread.h"
#include "sim/time.h"

namespace ditto::os {

class Machine;
class Network;

/** Result of a potentially blocking syscall's issue phase. */
enum class SysResult : std::uint8_t
{
    Ok,
    WouldBlock,
};

/** Per-syscall invocation counters, kept per machine. */
struct SyscallCounts
{
    std::uint64_t read = 0;
    std::uint64_t write = 0;
    std::uint64_t epollWait = 0;
    std::uint64_t pread = 0;
    std::uint64_t pwrite = 0;
    std::uint64_t futex = 0;
    std::uint64_t nanosleep = 0;
    std::uint64_t clone = 0;
};

class Kernel
{
  public:
    explicit Kernel(Machine &machine);

    /** Attach the network used for socket sends. */
    void setNetwork(Network *net) { network_ = net; }
    Network *network() const { return network_; }

    // ---- cost primitives ------------------------------------------------

    /** Run a kernel code path on the current core. */
    void runPath(StepCtx &ctx, Thread &t, KernelPath path,
                 std::uint64_t iterations = 1);

    /** Charge a copy_to/from_user of `bytes`. */
    void chargeCopy(StepCtx &ctx, Thread &t, std::uint64_t bytes);

    // ---- sockets ---------------------------------------------------------

    /**
     * read()/recv() on a socket. On Ok, `out` holds the message and
     * rx-path + copy costs are charged. On WouldBlock the thread is
     * registered as a waiter (entry cost only).
     */
    SysResult sysSocketRead(StepCtx &ctx, Thread &t, Socket &sock,
                            Message &out);

    /** Non-blocking variant: never registers a waiter. */
    SysResult sysSocketTryRead(StepCtx &ctx, Thread &t, Socket &sock,
                               Message &out);

    /** write()/send(): tx path + copy + NIC/wire delivery. */
    void sysSocketWrite(StepCtx &ctx, Thread &t, Socket &sock,
                        Message msg);

    /**
     * epoll_wait(). On Ok, `ready` holds readable sockets; on
     * WouldBlock the thread waits on the epoll instance.
     */
    SysResult sysEpollWait(StepCtx &ctx, Thread &t, Epoll &ep,
                           std::vector<Socket *> &ready);

    // ---- file I/O ----------------------------------------------------------

    /**
     * pread(). Page-cache hits complete inline (Ok). On a miss the
     * disk I/O is submitted with a wake-on-complete and WouldBlock is
     * returned; after waking, call sysPreadFinish().
     */
    SysResult sysPread(StepCtx &ctx, Thread &t, std::uint32_t fileId,
                       std::uint64_t offset, std::uint64_t bytes,
                       std::uint64_t &diskBytesOut);

    /** Completion phase of a blocked pread: the user copy. */
    void sysPreadFinish(StepCtx &ctx, Thread &t, std::uint64_t bytes);

    /** pwrite(): page-cache write-back, usually asynchronous. */
    void sysPwrite(StepCtx &ctx, Thread &t, std::uint32_t fileId,
                   std::uint64_t offset, std::uint64_t bytes);

    // ---- synchronization ---------------------------------------------------

    /** futex wait: always blocks (caller checks the predicate). */
    SysResult sysFutexWait(StepCtx &ctx, Thread &t, WaitQueue &q);

    /** futex wake. */
    void sysFutexWake(StepCtx &ctx, Thread &t, WaitQueue &q,
                      unsigned n = 1);

    /** nanosleep: parks the thread; a timer wakes it. */
    SysResult sysNanosleep(StepCtx &ctx, Thread &t, sim::Time duration);

    /** Charge the cost of clone() (thread creation). */
    void sysClone(StepCtx &ctx, Thread &t);

    const SyscallCounts &counts() const { return counts_; }
    void resetCounts() { counts_ = SyscallCounts{}; }

    /**
     * Simulated time already consumed in the current slice -- used to
     * time-shift asynchronous effects (sends, disk submits, timers)
     * so they occur when the syscall logically executes.
     */
    sim::Time sliceOffset(const StepCtx &ctx) const;

  private:
    Machine &machine_;
    Network *network_ = nullptr;
    SyscallCounts counts_;
};

} // namespace ditto::os

#endif // DITTO_OS_KERNEL_H_
