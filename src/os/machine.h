/**
 * @file
 * One server node: cores + caches, scheduler, kernel, devices.
 *
 * Machine aggregates the hardware model (logical cores in SMT pairs
 * sharing cache hierarchies, a shared LLC, write-invalidate
 * coherence) with the OS model (scheduler, kernel, page cache, disk)
 * and the NIC state used by os::Network.
 */

#ifndef DITTO_OS_MACHINE_H_
#define DITTO_OS_MACHINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/flat_map64.h"
#include "hw/cache.h"
#include "hw/cpu_core.h"
#include "hw/platform.h"
#include "os/disk.h"
#include "os/kernel_code.h"
#include "os/page_cache.h"
#include "os/scheduler.h"
#include "os/socket.h"
#include "sim/event_queue.h"

namespace ditto::os {

class Kernel;

/** Per-machine NIC accounting. */
struct NicState
{
    double bytesPerNs = 1.25;        //!< 10 Gbps default
    sim::Time txNextFree = 0;
    std::uint64_t txBytes = 0;
    std::uint64_t rxBytes = 0;
    /** External bandwidth consumed by stressors (iperf3-style). */
    double hogBytesPerNs = 0;

    double
    effectiveBytesPerNs() const
    {
        const double eff = bytesPerNs - hogBytesPerNs;
        return eff > bytesPerNs * 0.05 ? eff : bytesPerNs * 0.05;
    }
};

class Machine : public hw::CoherenceDomain
{
  public:
    Machine(std::string name, const hw::PlatformSpec &spec,
            sim::EventQueue &events, std::uint64_t seed = 7);
    ~Machine() override;

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const std::string &name() const { return name_; }
    const hw::PlatformSpec &spec() const { return spec_; }
    sim::EventQueue &events() { return events_; }

    Scheduler &scheduler() { return *scheduler_; }
    Kernel &kernel() { return *kernel_; }
    Disk &disk() { return *disk_; }
    PageCache &pageCache() { return *pageCache_; }
    Vfs &vfs() { return vfs_; }
    const KernelCode &kernelCode() const { return *kernelCode_; }
    NicState &nic() { return nic_; }
    hw::Cache &llc() { return *llc_; }

    unsigned coreCount() const
    {
        return static_cast<unsigned>(cores_.size());
    }
    hw::CpuCore &core(unsigned i) { return *cores_[i]; }

    /** Logical cores per SMT pair (2 when SMT is on, else 1). */
    unsigned smtWays() const { return smtWays_; }

    /**
     * Region (datacenter / cloud region) this machine lives in.
     * Region 0 is the implicit default; deployments that never define
     * regions leave every machine there and the WAN model stays
     * entirely out of the send path (DESIGN.md §8).
     */
    std::uint32_t regionId() const { return regionId_; }
    void setRegion(std::uint32_t regionId) { regionId_ = regionId; }

    /**
     * Crash / restart hook (fault injection). A down machine stops
     * scheduling threads and the network drops traffic addressed to
     * it; restart resumes scheduling with warm state (services do not
     * re-initialize -- a fast warm restart).
     */
    void setDown(bool down);
    bool down() const { return down_; }

    /** Write-invalidate coherence fan-out (directory-filtered). */
    void sharedWrite(unsigned coreId, std::uint64_t addr) override;

    /** Track readers of shared lines in the directory. */
    void sharedRead(unsigned coreId, std::uint64_t addr) override;

    /** Convert cycles to simulated nanoseconds at this node's clock. */
    sim::Time
    cyclesToTime(double cycles) const
    {
        const double ns = spec_.cyclesToNs(cycles);
        return ns <= 0 ? 0 : static_cast<sim::Time>(ns + 0.5);
    }

    double
    timeslicCycles() const
    {
        return 1.0e6 * spec_.baseFrequencyGhz;  // 1ms worth of cycles
    }

    // ---- socket / epoll / wait-queue factories ----------------------
    Socket *createSocket();
    Epoll *createEpoll();
    WaitQueue *createWaitQueue();

    /**
     * Allocate a text/data address region for a service image.
     * Regions are large and disjoint so services never alias.
     */
    struct AddressRegion
    {
        std::uint64_t textBase;
        std::uint64_t dataBase;
    };
    AddressRegion allocRegion();

  private:
    std::string name_;
    hw::PlatformSpec spec_;
    sim::EventQueue &events_;
    unsigned smtWays_;

    std::unique_ptr<hw::Cache> llc_;
    std::vector<std::unique_ptr<hw::CacheHierarchy>> hierarchies_;
    std::vector<std::unique_ptr<hw::CpuCore>> cores_;

    std::unique_ptr<KernelCode> kernelCode_;
    std::unique_ptr<Scheduler> scheduler_;
    std::unique_ptr<Kernel> kernel_;
    std::unique_ptr<Disk> disk_;
    std::unique_ptr<PageCache> pageCache_;
    Vfs vfs_;
    NicState nic_;

    std::vector<std::unique_ptr<Socket>> sockets_;
    std::vector<std::unique_ptr<Epoll>> epolls_;
    std::vector<std::unique_ptr<WaitQueue>> waitQueues_;

    std::uint64_t nextSocketId_ = 1;
    std::uint64_t nextRegion_ = 0;
    std::uint32_t regionId_ = 0;
    bool down_ = false;

    /**
     * Sharers directory: line address -> hierarchy bitmask. Consulted
     * on every shared access, so it is a flat open-addressed table
     * (core::FlatMap64) rather than std::unordered_map -- the node
     * map was the hottest single function of the figure benches.
     */
    core::FlatMap64 sharers_;
};

} // namespace ditto::os

#endif // DITTO_OS_MACHINE_H_
