#include "os/socket.h"

#include <algorithm>

#include "os/thread.h"

namespace ditto::os {

void
Socket::push(Message msg)
{
    rxBytes += msg.bytes;
    if (msg.kind == MsgKind::Cancel) {
        // Cancels are control-plane: handled out of band, never
        // queued, and dropped when no handler is installed.
        if (onCancel)
            onCancel(msg);
        return;
    }
    if (onDeliver) {
        // Client pseudo-socket: consume immediately, no queueing.
        onDeliver(msg);
        return;
    }
    rx_.push_back(std::move(msg));
    // Wake one blocked reader, if any; otherwise notify epoll.
    if (!waiters_.empty()) {
        Thread *t = waiters_.front();
        waiters_.erase(waiters_.begin());
        if (wakeFn)
            wakeFn(t);
    } else if (epoll_) {
        epoll_->notifyReadable(this);
    }
}

Message
Socket::pop()
{
    Message msg = std::move(rx_.front());
    rx_.pop_front();
    return msg;
}

bool
Socket::removeQueued(std::uint64_t tag, Message &out)
{
    for (auto it = rx_.begin(); it != rx_.end(); ++it) {
        if (it->kind == MsgKind::Request && it->tag == tag) {
            out = std::move(*it);
            rx_.erase(it);
            return true;
        }
    }
    return false;
}

void
Socket::addWaiter(Thread *t)
{
    if (std::find(waiters_.begin(), waiters_.end(), t) == waiters_.end())
        waiters_.push_back(t);
}

void
Socket::removeWaiter(Thread *t)
{
    waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), t),
                   waiters_.end());
}

void
Epoll::watch(Socket *s)
{
    if (std::find(watched_.begin(), watched_.end(), s) == watched_.end()) {
        watched_.push_back(s);
        s->setEpoll(this);
    }
}

void
Epoll::unwatch(Socket *s)
{
    watched_.erase(std::remove(watched_.begin(), watched_.end(), s),
                   watched_.end());
    s->setEpoll(nullptr);
}

void
Epoll::notifyReadable(Socket *)
{
    if (!waiters_.empty()) {
        Thread *t = waiters_.front();
        waiters_.erase(waiters_.begin());
        if (wakeFn)
            wakeFn(t);
    }
}

std::vector<Socket *>
Epoll::readySockets() const
{
    std::vector<Socket *> ready;
    for (Socket *s : watched_) {
        if (s->readable())
            ready.push_back(s);
    }
    return ready;
}

bool
Epoll::anyReady() const
{
    return std::any_of(watched_.begin(), watched_.end(),
                       [](const Socket *s) { return s->readable(); });
}

void
Epoll::addWaiter(Thread *t)
{
    if (std::find(waiters_.begin(), waiters_.end(), t) == waiters_.end())
        waiters_.push_back(t);
}

void
Epoll::removeWaiter(Thread *t)
{
    waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), t),
                   waiters_.end());
}

void
WaitQueue::addWaiter(Thread *t)
{
    if (std::find(waiters_.begin(), waiters_.end(), t) == waiters_.end())
        waiters_.push_back(t);
}

void
WaitQueue::removeWaiter(Thread *t)
{
    waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), t),
                   waiters_.end());
}

unsigned
WaitQueue::wake(unsigned n)
{
    unsigned woken = 0;
    while (woken < n && !waiters_.empty()) {
        Thread *t = waiters_.front();
        waiters_.erase(waiters_.begin());
        if (wakeFn)
            wakeFn(t);
        ++woken;
    }
    return woken;
}

} // namespace ditto::os
