/**
 * @file
 * Message transport between sockets.
 *
 * Delivery latency = sender NIC serialization (bandwidth-shared with
 * any configured stressor) + wire latency. Same-machine traffic takes
 * the loopback path (no NIC, small latency). Kernel CPU costs of the
 * tx/rx paths are charged separately by the Kernel's socket syscalls.
 *
 * Fault hooks: per-link (machine-pair) packet drop probability, added
 * latency, and partitioning, installed by fault::FaultInjector. With
 * no faults installed the send path is byte-identical to the fault
 * free build (no rng draws, no map lookups). Every message is
 * accounted exactly once: messagesSent() == messagesDelivered() +
 * messagesDropped() + messagesInFlight() at all times.
 */

#ifndef DITTO_OS_NETWORK_H_
#define DITTO_OS_NETWORK_H_

#include <cstdint>
#include <map>
#include <utility>

#include "os/socket.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace ditto::os {

class Machine;

/**
 * Active fault state of one machine pair (or of the pseudo-link
 * between a null external client and a machine).
 */
struct LinkFault
{
    /** Probability each message on the link is dropped. */
    double dropProb = 0;
    /** Extra one-way latency (spike) added to each message. */
    sim::Time extraLatency = 0;
    /** Hard partition: nothing is delivered across the link. */
    bool partitioned = false;

    bool
    any() const
    {
        return dropProb > 0 || extraLatency > 0 || partitioned;
    }
};

class Network
{
  public:
    explicit Network(sim::EventQueue &events,
                     sim::Time wireLatency = sim::microseconds(25),
                     sim::Time loopbackLatency = sim::microseconds(5));

    /** Make two sockets peers of each other. */
    static void connect(Socket &a, Socket &b);

    /**
     * Send `msg` from `from` to its peer; `extraDelay` shifts the
     * departure to when the sending syscall logically executes.
     */
    void send(Socket &from, Message msg, sim::Time extraDelay = 0);

    sim::Time wireLatency() const { return wireLatency_; }
    sim::Time loopbackLatency() const { return loopbackLatency_; }

    std::uint64_t messagesSent() const { return sent_; }
    std::uint64_t messagesDelivered() const { return delivered_; }
    std::uint64_t messagesDropped() const { return dropped_; }

    /** Messages sent but neither delivered nor dropped yet. */
    std::uint64_t
    messagesInFlight() const
    {
        return sent_ - delivered_ - dropped_;
    }

    /** Payload bytes, with the same exact accounting as messages. */
    std::uint64_t bytesSent() const { return bytesSent_; }
    std::uint64_t bytesDelivered() const { return bytesDelivered_; }
    std::uint64_t bytesDropped() const { return bytesDropped_; }

    std::uint64_t
    bytesInFlight() const
    {
        return bytesSent_ - bytesDelivered_ - bytesDropped_;
    }

    // ---- fault hooks (installed by fault::FaultInjector) ------------

    /**
     * Install the fault state of the (unordered) link between two
     * machines; nullptr stands for external (unmodeled) clients.
     * Loopback traffic is never affected by link faults.
     */
    void setLinkFault(const Machine *a, const Machine *b,
                      const LinkFault &fault);

    /** Remove the fault state of one link. */
    void clearLinkFault(const Machine *a, const Machine *b);

    /** Remove every installed link fault. */
    void clearLinkFaults();

    /** Current fault state of a link (default-constructed if none). */
    LinkFault linkFault(const Machine *a, const Machine *b) const;

    /** Reseed the rng used for probabilistic drops. */
    void seedFaultRng(std::uint64_t seed);

  private:
    using LinkKey = std::pair<const Machine *, const Machine *>;

    sim::EventQueue &events_;
    sim::Time wireLatency_;
    sim::Time loopbackLatency_;
    std::uint64_t sent_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t bytesSent_ = 0;
    std::uint64_t bytesDelivered_ = 0;
    std::uint64_t bytesDropped_ = 0;
    std::map<LinkKey, LinkFault> faults_;
    sim::Rng faultRng_{0xfa117ull};

    static LinkKey linkKey(const Machine *a, const Machine *b);
};

} // namespace ditto::os

#endif // DITTO_OS_NETWORK_H_
