/**
 * @file
 * Message transport between sockets.
 *
 * Delivery latency = sender NIC serialization (bandwidth-shared with
 * any configured stressor) + wire latency. Same-machine traffic takes
 * the loopback path (no NIC, small latency). Kernel CPU costs of the
 * tx/rx paths are charged separately by the Kernel's socket syscalls.
 *
 * Fault hooks: per-link (machine-pair) packet drop probability, added
 * latency, and partitioning, installed by fault::FaultInjector. With
 * no faults installed the send path is byte-identical to the fault
 * free build (no rng draws, no map lookups). Every message is
 * accounted exactly once: messagesSent() == messagesDelivered() +
 * messagesDropped() + messagesInFlight() at all times.
 *
 * WAN model: machines carry a region id (os::Machine::regionId());
 * traffic between machines in *different* regions crosses a directed
 * WAN link (setWanLink) with its own one-way latency (asymmetric:
 * each direction is a separate link), bandwidth cap, and seeded
 * correlated loss bursts. Each installed link keeps the same exact
 * message/byte ledger as the global counters. Region-scoped faults
 * (setRegionFault) compose with machine-pair faults. Unconfigured
 * runs never enter the WAN path: every machine sits in region 0, so
 * the cross-region test is a single integer compare.
 */

#ifndef DITTO_OS_NETWORK_H_
#define DITTO_OS_NETWORK_H_

#include <cstdint>
#include <map>
#include <utility>

#include "core/slab_arena.h"
#include "os/socket.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace ditto::os {

class Machine;

/**
 * Active fault state of one machine pair (or of the pseudo-link
 * between a null external client and a machine).
 */
struct LinkFault
{
    /** Probability each message on the link is dropped. */
    double dropProb = 0;
    /** Extra one-way latency (spike) added to each message. */
    sim::Time extraLatency = 0;
    /** Hard partition: nothing is delivered across the link. */
    bool partitioned = false;

    bool
    any() const
    {
        return dropProb > 0 || extraLatency > 0 || partitioned;
    }
};

/**
 * Static shape of one *directed* WAN link between two regions.
 * Asymmetric routes are modeled by installing different specs for the
 * two directions.
 */
struct WanLinkSpec
{
    /** One-way propagation latency; replaces the LAN wire latency. */
    sim::Time latency = 0;
    /** Bandwidth cap shared by all traffic on the link; 0 = uncapped. */
    double bytesPerNs = 0;
    /**
     * Correlated loss bursts (Gilbert-style good/bad periods): bursts
     * of `burstLength` recur with exponential gaps of mean
     * `burstMeanInterval`; during a burst each message is dropped
     * with `burstDropProb`. 0 interval or length disables bursts.
     */
    sim::Time burstMeanInterval = 0;
    sim::Time burstLength = 0;
    double burstDropProb = 0;
    /** Seed of the link's private burst-schedule rng. */
    std::uint64_t burstSeed = 0x77a9ull;
};

/** Exact per-directed-WAN-link ledger (mirrors the global one). */
struct WanLinkStats
{
    std::uint64_t msgsSent = 0;
    std::uint64_t msgsDelivered = 0;
    std::uint64_t msgsDropped = 0;
    std::uint64_t bytesSent = 0;
    std::uint64_t bytesDelivered = 0;
    std::uint64_t bytesDropped = 0;

    std::uint64_t
    msgsInFlight() const
    {
        return msgsSent - msgsDelivered - msgsDropped;
    }

    std::uint64_t
    bytesInFlight() const
    {
        return bytesSent - bytesDelivered - bytesDropped;
    }
};

class Network
{
  public:
    /** Directed (fromRegion, toRegion) pair identifying a WAN link. */
    using RegionKey = std::pair<std::uint32_t, std::uint32_t>;

    /** Installed spec + live state of one directed WAN link. */
    struct WanLinkState
    {
        WanLinkSpec spec;
        WanLinkStats stats;
        sim::Time txNextFree = 0;   //!< bandwidth-cap serialization
        sim::Time burstStart = 0;   //!< current/next burst window start
        sim::Rng rng{0x77a9ull};    //!< burst schedule + burst drops
    };

    explicit Network(sim::EventQueue &events,
                     sim::Time wireLatency = sim::microseconds(25),
                     sim::Time loopbackLatency = sim::microseconds(5));

    /** Make two sockets peers of each other. */
    static void connect(Socket &a, Socket &b);

    /**
     * Send `msg` from `from` to its peer; `extraDelay` shifts the
     * departure to when the sending syscall logically executes.
     */
    void send(Socket &from, Message msg, sim::Time extraDelay = 0);

    sim::Time wireLatency() const { return wireLatency_; }
    sim::Time loopbackLatency() const { return loopbackLatency_; }

    std::uint64_t messagesSent() const { return sent_; }
    std::uint64_t messagesDelivered() const { return delivered_; }
    std::uint64_t messagesDropped() const { return dropped_; }

    /** Messages sent but neither delivered nor dropped yet. */
    std::uint64_t
    messagesInFlight() const
    {
        return sent_ - delivered_ - dropped_;
    }

    /** Payload bytes, with the same exact accounting as messages. */
    std::uint64_t bytesSent() const { return bytesSent_; }
    std::uint64_t bytesDelivered() const { return bytesDelivered_; }
    std::uint64_t bytesDropped() const { return bytesDropped_; }

    std::uint64_t
    bytesInFlight() const
    {
        return bytesSent_ - bytesDelivered_ - bytesDropped_;
    }

    // ---- fault hooks (installed by fault::FaultInjector) ------------

    /**
     * Install the fault state of the (unordered) link between two
     * machines; nullptr stands for external (unmodeled) clients.
     * Loopback traffic is never affected by link faults.
     */
    void setLinkFault(const Machine *a, const Machine *b,
                      const LinkFault &fault);

    /** Remove the fault state of one link. */
    void clearLinkFault(const Machine *a, const Machine *b);

    /** Remove every installed link fault. */
    void clearLinkFaults();

    /** Current fault state of a link (default-constructed if none). */
    LinkFault linkFault(const Machine *a, const Machine *b) const;

    /** Reseed the rng used for probabilistic drops. */
    void seedFaultRng(std::uint64_t seed);

    // ---- WAN links and region-scoped faults -------------------------

    /**
     * Install (or replace) the directed WAN link fromRegion ->
     * toRegion. Cross-region messages on an installed link use its
     * latency instead of the LAN wire latency and are accounted in
     * the link's private ledger.
     */
    void setWanLink(std::uint32_t fromRegion, std::uint32_t toRegion,
                    const WanLinkSpec &spec);

    /** Installed links, keyed by directed region pair. */
    const std::map<RegionKey, WanLinkState> &
    wanLinks() const
    {
        return wanLinks_;
    }

    /** Ledger of one directed link; nullptr if not installed. */
    const WanLinkStats *wanLinkStats(std::uint32_t fromRegion,
                                     std::uint32_t toRegion) const;

    /**
     * Install the fault state of the (unordered) region pair; applies
     * to every cross-region message between the two regions and
     * composes with machine-pair faults. Installed by
     * fault::FaultInjector for RegionPartition / WanDegrade windows.
     */
    void setRegionFault(std::uint32_t a, std::uint32_t b,
                        const LinkFault &fault);

    /** Remove the fault state of one region pair. */
    void clearRegionFault(std::uint32_t a, std::uint32_t b);

    /** Remove every installed region fault. */
    void clearRegionFaults();

    /** Current fault state of a region pair (default if none). */
    LinkFault regionFault(std::uint32_t a, std::uint32_t b) const;

    /** Whether the two regions are currently hard-partitioned. */
    bool
    regionPartitioned(std::uint32_t a, std::uint32_t b) const
    {
        return !regionFaults_.empty() && regionFault(a, b).partitioned;
    }

  private:
    using LinkKey = std::pair<const Machine *, const Machine *>;

    /**
     * One message between send() and delivery. Slab-allocated so the
     * per-message cost is a pooled node instead of a shared_ptr
     * control block plus a heap-spilled callback capture; the delivery
     * event captures only {this, flight} and stays inline in the
     * event queue's callback slot.
     */
    struct InFlight
    {
        Message msg;
        Socket *to;
        const Machine *fromMachine;
        WanLinkState *wanLink;
        std::uint32_t fromRegion;
        std::uint32_t toRegion;
        bool loopback;
        bool wan;
    };

    /** Deliver (or drop) a message and retire its slab node. */
    void deliver(InFlight *flight);

    sim::EventQueue &events_;
    sim::Time wireLatency_;
    sim::Time loopbackLatency_;
    std::uint64_t sent_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t bytesSent_ = 0;
    std::uint64_t bytesDelivered_ = 0;
    std::uint64_t bytesDropped_ = 0;
    std::map<LinkKey, LinkFault> faults_;
    std::map<RegionKey, WanLinkState> wanLinks_;
    std::map<RegionKey, LinkFault> regionFaults_;
    sim::Rng faultRng_{0xfa117ull};
    core::SlabArena<InFlight> inFlight_;

    static LinkKey linkKey(const Machine *a, const Machine *b);
    static RegionKey regionKey(std::uint32_t a, std::uint32_t b);
};

} // namespace ditto::os

#endif // DITTO_OS_NETWORK_H_
