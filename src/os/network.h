/**
 * @file
 * Message transport between sockets.
 *
 * Delivery latency = sender NIC serialization (bandwidth-shared with
 * any configured stressor) + wire latency. Same-machine traffic takes
 * the loopback path (no NIC, small latency). Kernel CPU costs of the
 * tx/rx paths are charged separately by the Kernel's socket syscalls.
 */

#ifndef DITTO_OS_NETWORK_H_
#define DITTO_OS_NETWORK_H_

#include <cstdint>

#include "os/socket.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace ditto::os {

class Machine;

class Network
{
  public:
    explicit Network(sim::EventQueue &events,
                     sim::Time wireLatency = sim::microseconds(25),
                     sim::Time loopbackLatency = sim::microseconds(5));

    /** Make two sockets peers of each other. */
    static void connect(Socket &a, Socket &b);

    /**
     * Send `msg` from `from` to its peer; `extraDelay` shifts the
     * departure to when the sending syscall logically executes.
     */
    void send(Socket &from, Message msg, sim::Time extraDelay = 0);

    sim::Time wireLatency() const { return wireLatency_; }
    sim::Time loopbackLatency() const { return loopbackLatency_; }

    std::uint64_t messagesDelivered() const { return delivered_; }

  private:
    sim::EventQueue &events_;
    sim::Time wireLatency_;
    sim::Time loopbackLatency_;
    std::uint64_t delivered_ = 0;
};

} // namespace ditto::os

#endif // DITTO_OS_NETWORK_H_
