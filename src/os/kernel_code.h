/**
 * @file
 * Kernel text: procedurally authored code blocks for each syscall
 * path.
 *
 * Cloud services spend a large fraction of their cycles in the
 * kernel (Sec. 3.3.2), and kernel code is big and branchy -- a major
 * source of i-cache pressure and frontend stalls. Each syscall path
 * gets its own multi-KB block so user/kernel transitions thrash L1i
 * for real in the machine model.
 */

#ifndef DITTO_OS_KERNEL_CODE_H_
#define DITTO_OS_KERNEL_CODE_H_

#include <cstdint>
#include <memory>

#include "hw/code.h"

namespace ditto::os {

/** Identifies a kernel code path. */
enum class KernelPath : std::uint8_t
{
    SyscallEntry,   //!< entry/exit trampoline + dispatch
    TcpRx,          //!< softirq + tcp receive path
    TcpTx,          //!< tcp transmit path
    EpollWait,      //!< epoll_wait bookkeeping
    EpollWake,      //!< wait-queue wakeup path
    VfsRead,        //!< read()/pread() path
    VfsWrite,       //!< write path
    PageCacheLookup,//!< radix-tree page lookup
    BlockIo,        //!< block layer submit/complete
    SchedSwitch,    //!< context switch
    Futex,          //!< futex wait/wake
    Clone,          //!< thread creation
    CopyChunk,      //!< copy_to/from_user inner loop (per 256B)
    Count,
};

/**
 * The linked kernel image for one machine plus block ids per path.
 */
class KernelCode
{
  public:
    /** Build and link the kernel image (deterministic given seed). */
    explicit KernelCode(std::uint64_t seed = 0xbadc0de);

    const hw::CodeImage &image() const { return *image_; }

    /** Block id of a path. */
    std::uint32_t blockOf(KernelPath path) const
    {
        return blockIds_[static_cast<std::size_t>(path)];
    }

  private:
    std::unique_ptr<hw::CodeImage> image_;
    std::uint32_t blockIds_[static_cast<std::size_t>(KernelPath::Count)];
};

} // namespace ditto::os

#endif // DITTO_OS_KERNEL_CODE_H_
