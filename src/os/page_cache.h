/**
 * @file
 * Files and the page cache.
 *
 * The VFS layer is a registry of files (id -> size); the page cache
 * is an LRU map of 4KB pages. pread() consults it per page; misses
 * become disk reads. This is what lets a database configured with a
 * dataset larger than RAM become disk-bound (MongoDB in the paper:
 * 40GB dataset, uniform reads), while small hot files are served from
 * memory.
 */

#ifndef DITTO_OS_PAGE_CACHE_H_
#define DITTO_OS_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

namespace ditto::os {

/** Page size of the cache. */
inline constexpr std::uint64_t kPageBytes = 4096;

/** A registered file. */
struct File
{
    std::uint32_t id = 0;
    std::string name;
    std::uint64_t bytes = 0;
};

/** File registry for one machine. */
class Vfs
{
  public:
    /** Create a file; returns its id. */
    std::uint32_t create(const std::string &name, std::uint64_t bytes);

    const File &file(std::uint32_t id) const { return files_[id]; }
    std::size_t fileCount() const { return files_.size(); }

  private:
    std::vector<File> files_;
};

/**
 * LRU page cache with a fixed page budget.
 */
class PageCache
{
  public:
    explicit PageCache(std::uint64_t capacityBytes);

    /**
     * Look up pages [offset, offset+bytes) of a file.
     * @return number of missing pages (to be read from disk).
     * Present pages are touched (LRU); missing pages are inserted
     * (assumed subsequently filled by the disk read).
     */
    std::uint64_t access(std::uint32_t fileId, std::uint64_t offset,
                         std::uint64_t bytes);

    /** Fraction of page lookups that hit, since last reset. */
    double hitRate() const;

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t residentPages() const { return map_.size(); }
    std::uint64_t capacityPages() const { return capacityPages_; }

    void resetStats();

  private:
    using Key = std::uint64_t;  // fileId << 40 | pageIndex

    std::uint64_t capacityPages_;
    std::list<Key> lru_;
    std::unordered_map<Key, std::list<Key>::iterator> map_;
    std::uint64_t lookups_ = 0;
    std::uint64_t misses_ = 0;

    void touch(Key key);
    void insert(Key key);
};

} // namespace ditto::os

#endif // DITTO_OS_PAGE_CACHE_H_
