/**
 * @file
 * Sockets, messages, and epoll for the network-stack model.
 *
 * A Socket is one endpoint of a connection: it owns a receive queue
 * of Messages and a waiter list. Delivery (wire + NIC serialization)
 * is handled by os::Network; kernel CPU costs of rx/tx paths are
 * charged by the Kernel's syscall implementations.
 */

#ifndef DITTO_OS_SOCKET_H_
#define DITTO_OS_SOCKET_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.h"

namespace ditto::os {

class Thread;
class Epoll;

/** Message kinds flowing between services. */
enum class MsgKind : std::uint8_t
{
    Request,
    Response,
    Connect,
    Cancel, //!< best-effort "stop working on tag" chase message
};

/** Wire size of a cancellation chase message. */
inline constexpr std::uint32_t kCancelMsgBytes = 32;

/** Application-level status carried by a response. */
enum class MsgStatus : std::uint8_t
{
    Ok,     //!< handled normally
    Error,  //!< handled degraded (a downstream call failed)
    Shed,   //!< rejected fast by load shedding
};

/**
 * One application-level message (a framed request or response).
 * Framing is abstracted: one read() consumes one message.
 */
struct Message
{
    MsgKind kind = MsgKind::Request;
    MsgStatus status = MsgStatus::Ok;
    std::uint32_t bytes = 0;
    std::uint32_t endpoint = 0;   //!< target endpoint (request type)
    std::uint64_t tag = 0;        //!< request id for response matching
    std::uint64_t traceId = 0;
    std::uint64_t parentSpan = 0;
    sim::Time sendTime = 0;
    /**
     * Absolute deadline propagated with a request; 0 when the caller
     * attached none. Only honored by services whose ResilienceSpec
     * opts into deadline propagation.
     */
    sim::Time deadline = 0;
    /**
     * Request priority stamped by the client's endpoint class and
     * propagated downstream like the deadline; 0 (the default and
     * lowest) sheds first under graduated priority admission. Only
     * honored by services whose OverloadSpec sets priorityLevels > 1.
     */
    std::uint8_t priority = 0;
    /** Client-side completion hook (used by load generators). */
    std::function<void(const Message &)> onResponse;
};

/**
 * One endpoint of a (TCP-like) connection.
 *
 * The peer pointer allows in-process reply routing; cross-machine
 * delivery latency is applied by Network before push() is called.
 */
class Socket
{
  public:
    explicit Socket(std::uint64_t id) : id_(id) {}

    std::uint64_t id() const { return id_; }

    /** Peer endpoint (may be a client-side pseudo socket). */
    Socket *peer = nullptr;

    /** Machine that hosts this endpoint; null for external clients. */
    class Machine *machine = nullptr;

    /** Deliver a message into the receive queue and notify. */
    void push(Message msg);

    bool readable() const { return !rx_.empty(); }
    std::size_t queueDepth() const { return rx_.size(); }

    /** Pop the next message; requires readable(). */
    Message pop();

    /**
     * Remove a queued request with the given tag (cooperative
     * cancellation before the request was dequeued). @retval true a
     * matching request was found, removed, and moved into `out`.
     */
    bool removeQueued(std::uint64_t tag, Message &out);

    /** Register a thread blocked in read()/recv() on this socket. */
    void addWaiter(Thread *t);
    void removeWaiter(Thread *t);

    /** Attach to an epoll instance (I/O multiplexing model). */
    void setEpoll(Epoll *ep) { epoll_ = ep; }
    Epoll *epoll() const { return epoll_; }

    /** External delivery hook for client pseudo-sockets. */
    std::function<void(const Message &)> onDeliver;

    /**
     * Cancellation hook installed by the owning service. A delivered
     * MsgKind::Cancel never enters the receive queue: it invokes this
     * hook (when set) and is otherwise dropped.
     */
    std::function<void(const Message &)> onCancel;

    /**
     * Delivery gate installed by the owning service: when set and
     * returning false (service crashed), the network drops inbound
     * messages instead of queueing them.
     */
    std::function<bool()> inboundGate;

    /** Wake callback installed by the hosting machine's scheduler. */
    std::function<void(Thread *)> wakeFn;

    std::uint64_t rxBytes = 0;
    std::uint64_t txBytes = 0;

  private:
    std::uint64_t id_;
    std::deque<Message> rx_;
    std::vector<Thread *> waiters_;
    Epoll *epoll_ = nullptr;
};

/**
 * I/O multiplexing: a set of watched sockets plus threads blocked in
 * epoll_wait. A socket becoming readable marks it ready and wakes one
 * waiting thread (EPOLLEXCLUSIVE-style, avoiding thundering herds).
 */
class Epoll
{
  public:
    explicit Epoll(std::uint64_t id) : id_(id) {}

    std::uint64_t id() const { return id_; }

    void watch(Socket *s);
    void unwatch(Socket *s);

    /** Called by a socket when it becomes readable. */
    void notifyReadable(Socket *s);

    /** Sockets with pending data right now. */
    std::vector<Socket *> readySockets() const;

    bool anyReady() const;

    void addWaiter(Thread *t);
    void removeWaiter(Thread *t);

    /** Wake callback installed by the hosting machine's scheduler. */
    std::function<void(Thread *)> wakeFn;

  private:
    std::uint64_t id_;
    std::vector<Socket *> watched_;
    std::vector<Thread *> waiters_;
};

/**
 * Futex-like wait queue for locks, condition variables, and
 * thread-pool task handoff (the paper's user-space trigger points).
 */
class WaitQueue
{
  public:
    void addWaiter(Thread *t);
    void removeWaiter(Thread *t);

    /** Wake up to n waiters; @return number woken. */
    unsigned wake(unsigned n = 1);

    bool hasWaiters() const { return !waiters_.empty(); }

    std::function<void(Thread *)> wakeFn;

  private:
    std::vector<Thread *> waiters_;
};

} // namespace ditto::os

#endif // DITTO_OS_SOCKET_H_
