#include "os/network.h"

#include <memory>

#include "os/machine.h"

namespace ditto::os {

Network::Network(sim::EventQueue &events, sim::Time wireLatency,
                 sim::Time loopbackLatency)
    : events_(events), wireLatency_(wireLatency),
      loopbackLatency_(loopbackLatency)
{
}

void
Network::connect(Socket &a, Socket &b)
{
    a.peer = &b;
    b.peer = &a;
}

Network::LinkKey
Network::linkKey(const Machine *a, const Machine *b)
{
    return a < b ? LinkKey{a, b} : LinkKey{b, a};
}

void
Network::setLinkFault(const Machine *a, const Machine *b,
                      const LinkFault &fault)
{
    if (fault.any())
        faults_[linkKey(a, b)] = fault;
    else
        faults_.erase(linkKey(a, b));
}

void
Network::clearLinkFault(const Machine *a, const Machine *b)
{
    faults_.erase(linkKey(a, b));
}

void
Network::clearLinkFaults()
{
    faults_.clear();
}

LinkFault
Network::linkFault(const Machine *a, const Machine *b) const
{
    const auto it = faults_.find(linkKey(a, b));
    return it != faults_.end() ? it->second : LinkFault{};
}

void
Network::seedFaultRng(std::uint64_t seed)
{
    faultRng_ = sim::Rng(seed);
}

void
Network::send(Socket &from, Message msg, sim::Time extraDelay)
{
    Socket *to = from.peer;
    if (!to)
        return;
    ++sent_;
    bytesSent_ += msg.bytes;

    sim::Time delay = extraDelay;
    const bool loopback = from.machine && to->machine &&
        from.machine == to->machine;

    if (loopback) {
        delay += loopbackLatency_;
    } else {
        LinkFault fault;
        if (!faults_.empty())
            fault = linkFault(from.machine, to->machine);
        // Sender-side NIC serialization (if the sender is a modeled
        // machine; external clients have infinite-capacity uplinks).
        if (from.machine) {
            NicState &nic = from.machine->nic();
            nic.txBytes += msg.bytes;
            const double serNs = static_cast<double>(msg.bytes) /
                nic.effectiveBytesPerNs();
            const sim::Time depart = events_.now() + delay;
            nic.txNextFree =
                std::max(nic.txNextFree, depart) +
                static_cast<sim::Time>(serNs + 0.5);
            delay = nic.txNextFree - events_.now();
        }
        // Probabilistic loss: the message left the sender's NIC but
        // dies on the wire, so no receiver-side cost is charged.
        if (fault.dropProb > 0 &&
            faultRng_.bernoulli(fault.dropProb)) {
            ++dropped_;
            bytesDropped_ += msg.bytes;
            return;
        }
        // Receiver-side NIC accounting + possible rx contention.
        if (to->machine) {
            NicState &nic = to->machine->nic();
            nic.rxBytes += msg.bytes;
            const double serNs = static_cast<double>(msg.bytes) /
                nic.effectiveBytesPerNs();
            delay += static_cast<sim::Time>(serNs + 0.5);
        }
        delay += wireLatency_ + fault.extraLatency;
    }

    const Machine *fromMachine = from.machine;
    auto payload = std::make_shared<Message>(std::move(msg));
    events_.scheduleAfter(
        delay, [this, to, payload, fromMachine, loopback] {
            // Partition, crashed machine, or crashed service: the
            // message is lost at delivery time (covers messages that
            // were already in flight when the fault started).
            if (!loopback && !faults_.empty() &&
                linkFault(fromMachine, to->machine).partitioned) {
                ++dropped_;
                bytesDropped_ += payload->bytes;
                return;
            }
            if ((to->machine && to->machine->down()) ||
                (to->inboundGate && !to->inboundGate())) {
                ++dropped_;
                bytesDropped_ += payload->bytes;
                return;
            }
            ++delivered_;
            bytesDelivered_ += payload->bytes;
            to->push(std::move(*payload));
        });
}

} // namespace ditto::os
