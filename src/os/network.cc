#include "os/network.h"

#include <memory>

#include "os/machine.h"

namespace ditto::os {

Network::Network(sim::EventQueue &events, sim::Time wireLatency,
                 sim::Time loopbackLatency)
    : events_(events), wireLatency_(wireLatency),
      loopbackLatency_(loopbackLatency)
{
}

void
Network::connect(Socket &a, Socket &b)
{
    a.peer = &b;
    b.peer = &a;
}

Network::LinkKey
Network::linkKey(const Machine *a, const Machine *b)
{
    return a < b ? LinkKey{a, b} : LinkKey{b, a};
}

void
Network::setLinkFault(const Machine *a, const Machine *b,
                      const LinkFault &fault)
{
    if (fault.any())
        faults_[linkKey(a, b)] = fault;
    else
        faults_.erase(linkKey(a, b));
}

void
Network::clearLinkFault(const Machine *a, const Machine *b)
{
    faults_.erase(linkKey(a, b));
}

void
Network::clearLinkFaults()
{
    faults_.clear();
}

LinkFault
Network::linkFault(const Machine *a, const Machine *b) const
{
    const auto it = faults_.find(linkKey(a, b));
    return it != faults_.end() ? it->second : LinkFault{};
}

void
Network::seedFaultRng(std::uint64_t seed)
{
    faultRng_ = sim::Rng(seed);
}

Network::RegionKey
Network::regionKey(std::uint32_t a, std::uint32_t b)
{
    return a < b ? RegionKey{a, b} : RegionKey{b, a};
}

void
Network::setWanLink(std::uint32_t fromRegion, std::uint32_t toRegion,
                    const WanLinkSpec &spec)
{
    WanLinkState &st = wanLinks_[RegionKey{fromRegion, toRegion}];
    st.spec = spec;
    st.rng = sim::Rng(spec.burstSeed);
    st.burstStart = 0;
    if (spec.burstMeanInterval > 0 && spec.burstLength > 0)
        st.burstStart = static_cast<sim::Time>(
            st.rng.exponential(
                static_cast<double>(spec.burstMeanInterval)));
}

const WanLinkStats *
Network::wanLinkStats(std::uint32_t fromRegion,
                      std::uint32_t toRegion) const
{
    const auto it = wanLinks_.find(RegionKey{fromRegion, toRegion});
    return it != wanLinks_.end() ? &it->second.stats : nullptr;
}

void
Network::setRegionFault(std::uint32_t a, std::uint32_t b,
                        const LinkFault &fault)
{
    if (fault.any())
        regionFaults_[regionKey(a, b)] = fault;
    else
        regionFaults_.erase(regionKey(a, b));
}

void
Network::clearRegionFault(std::uint32_t a, std::uint32_t b)
{
    regionFaults_.erase(regionKey(a, b));
}

void
Network::clearRegionFaults()
{
    regionFaults_.clear();
}

LinkFault
Network::regionFault(std::uint32_t a, std::uint32_t b) const
{
    const auto it = regionFaults_.find(regionKey(a, b));
    return it != regionFaults_.end() ? it->second : LinkFault{};
}

void
Network::send(Socket &from, Message msg, sim::Time extraDelay)
{
    Socket *to = from.peer;
    if (!to)
        return;
    ++sent_;
    bytesSent_ += msg.bytes;

    sim::Time delay = extraDelay;
    const bool loopback = from.machine && to->machine &&
        from.machine == to->machine;
    // Cross-region traffic takes the WAN path. Unconfigured runs keep
    // every machine in region 0, so this stays false and the send
    // path is byte-identical to the region-free build.
    const bool wan = from.machine && to->machine &&
        from.machine->regionId() != to->machine->regionId();
    std::uint32_t fromRegion = 0;
    std::uint32_t toRegion = 0;
    WanLinkState *wanLink = nullptr;

    if (loopback) {
        delay += loopbackLatency_;
    } else {
        LinkFault fault;
        if (!faults_.empty())
            fault = linkFault(from.machine, to->machine);
        if (wan) {
            fromRegion = from.machine->regionId();
            toRegion = to->machine->regionId();
            if (!wanLinks_.empty()) {
                const auto it =
                    wanLinks_.find(RegionKey{fromRegion, toRegion});
                if (it != wanLinks_.end()) {
                    wanLink = &it->second;
                    ++wanLink->stats.msgsSent;
                    wanLink->stats.bytesSent += msg.bytes;
                }
            }
            // Region-scoped fault windows compose with machine-pair
            // faults: drop probs combine, latencies add.
            if (!regionFaults_.empty()) {
                const LinkFault rf =
                    regionFault(fromRegion, toRegion);
                fault.dropProb = 1.0 -
                    (1.0 - fault.dropProb) * (1.0 - rf.dropProb);
                fault.extraLatency += rf.extraLatency;
            }
        }
        // Sender-side NIC serialization (if the sender is a modeled
        // machine; external clients have infinite-capacity uplinks).
        if (from.machine) {
            NicState &nic = from.machine->nic();
            nic.txBytes += msg.bytes;
            const double serNs = static_cast<double>(msg.bytes) /
                nic.effectiveBytesPerNs();
            const sim::Time depart = events_.now() + delay;
            nic.txNextFree =
                std::max(nic.txNextFree, depart) +
                static_cast<sim::Time>(serNs + 0.5);
            delay = nic.txNextFree - events_.now();
        }
        // WAN link: bandwidth-cap serialization, then correlated loss
        // bursts (the link's private schedule advances lazily to the
        // current send time from its own seeded rng).
        if (wanLink) {
            const WanLinkSpec &spec = wanLink->spec;
            if (spec.bytesPerNs > 0) {
                const double serNs =
                    static_cast<double>(msg.bytes) / spec.bytesPerNs;
                const sim::Time depart = events_.now() + delay;
                wanLink->txNextFree =
                    std::max(wanLink->txNextFree, depart) +
                    static_cast<sim::Time>(serNs + 0.5);
                delay = wanLink->txNextFree - events_.now();
            }
            if (spec.burstMeanInterval > 0 && spec.burstLength > 0) {
                const sim::Time now = events_.now();
                while (now >= wanLink->burstStart + spec.burstLength)
                    wanLink->burstStart += spec.burstLength +
                        static_cast<sim::Time>(
                            wanLink->rng.exponential(static_cast<
                                double>(spec.burstMeanInterval)));
                if (now >= wanLink->burstStart &&
                    spec.burstDropProb > 0 &&
                    wanLink->rng.bernoulli(spec.burstDropProb)) {
                    ++dropped_;
                    bytesDropped_ += msg.bytes;
                    ++wanLink->stats.msgsDropped;
                    wanLink->stats.bytesDropped += msg.bytes;
                    return;
                }
            }
        }
        // Probabilistic loss: the message left the sender's NIC but
        // dies on the wire, so no receiver-side cost is charged.
        if (fault.dropProb > 0 &&
            faultRng_.bernoulli(fault.dropProb)) {
            ++dropped_;
            bytesDropped_ += msg.bytes;
            if (wanLink) {
                ++wanLink->stats.msgsDropped;
                wanLink->stats.bytesDropped += msg.bytes;
            }
            return;
        }
        // Receiver-side NIC accounting + possible rx contention.
        if (to->machine) {
            NicState &nic = to->machine->nic();
            nic.rxBytes += msg.bytes;
            const double serNs = static_cast<double>(msg.bytes) /
                nic.effectiveBytesPerNs();
            delay += static_cast<sim::Time>(serNs + 0.5);
        }
        // Installed WAN links carry their own propagation latency in
        // place of the LAN wire latency.
        if (wanLink && wanLink->spec.latency > 0)
            delay += wanLink->spec.latency + fault.extraLatency;
        else
            delay += wireLatency_ + fault.extraLatency;
    }

    InFlight *flight = inFlight_.create(
        InFlight{std::move(msg), to, from.machine, wanLink, fromRegion,
                 toRegion, loopback, wan});
    events_.scheduleAfter(delay,
                          [this, flight] { deliver(flight); });
}

void
Network::deliver(InFlight *flight)
{
    Socket *to = flight->to;
    const std::uint32_t bytes = flight->msg.bytes;
    // Partition, crashed machine, or crashed service: the message is
    // lost at delivery time (covers messages that were already in
    // flight when the fault started).
    const bool partitioned =
        (!flight->loopback && !faults_.empty() &&
         linkFault(flight->fromMachine, to->machine).partitioned) ||
        (flight->wan &&
         regionPartitioned(flight->fromRegion, flight->toRegion));
    if (partitioned || (to->machine && to->machine->down()) ||
        (to->inboundGate && !to->inboundGate())) {
        ++dropped_;
        bytesDropped_ += bytes;
        if (flight->wanLink) {
            ++flight->wanLink->stats.msgsDropped;
            flight->wanLink->stats.bytesDropped += bytes;
        }
        inFlight_.destroy(flight);
        return;
    }
    ++delivered_;
    bytesDelivered_ += bytes;
    if (flight->wanLink) {
        ++flight->wanLink->stats.msgsDelivered;
        flight->wanLink->stats.bytesDelivered += bytes;
    }
    // push() may re-enter send() on the same queue (loopback replies),
    // which can recycle this node -- so retire it after moving the
    // message out but before handing control to the receiver.
    Message delivered = std::move(flight->msg);
    inFlight_.destroy(flight);
    to->push(std::move(delivered));
}

} // namespace ditto::os
