#include "os/network.h"

#include <memory>

#include "os/machine.h"

namespace ditto::os {

Network::Network(sim::EventQueue &events, sim::Time wireLatency,
                 sim::Time loopbackLatency)
    : events_(events), wireLatency_(wireLatency),
      loopbackLatency_(loopbackLatency)
{
}

void
Network::connect(Socket &a, Socket &b)
{
    a.peer = &b;
    b.peer = &a;
}

void
Network::send(Socket &from, Message msg, sim::Time extraDelay)
{
    Socket *to = from.peer;
    if (!to)
        return;

    sim::Time delay = extraDelay;
    const bool loopback = from.machine && to->machine &&
        from.machine == to->machine;

    if (loopback) {
        delay += loopbackLatency_;
    } else {
        // Sender-side NIC serialization (if the sender is a modeled
        // machine; external clients have infinite-capacity uplinks).
        if (from.machine) {
            NicState &nic = from.machine->nic();
            nic.txBytes += msg.bytes;
            const double serNs = static_cast<double>(msg.bytes) /
                nic.effectiveBytesPerNs();
            const sim::Time depart = events_.now() + delay;
            nic.txNextFree =
                std::max(nic.txNextFree, depart) +
                static_cast<sim::Time>(serNs + 0.5);
            delay = nic.txNextFree - events_.now();
        }
        // Receiver-side NIC accounting + possible rx contention.
        if (to->machine) {
            NicState &nic = to->machine->nic();
            nic.rxBytes += msg.bytes;
            const double serNs = static_cast<double>(msg.bytes) /
                nic.effectiveBytesPerNs();
            delay += static_cast<sim::Time>(serNs + 0.5);
        }
        delay += wireLatency_;
    }

    auto payload = std::make_shared<Message>(std::move(msg));
    events_.scheduleAfter(delay, [this, to, payload] {
        ++delivered_;
        to->push(std::move(*payload));
    });
}

} // namespace ditto::os
