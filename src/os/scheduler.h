/**
 * @file
 * Per-machine thread scheduler.
 *
 * A simple multi-core run-queue scheduler: threads become Ready via
 * wake(), idle cores pull from a FIFO ready queue (respecting core
 * affinity), and each slice runs until the thread blocks, yields, or
 * exhausts its timeslice. Context switches charge the kernel's
 * sched-switch path and pollute the incoming core's private caches.
 *
 * SMT: logical cores come in sibling pairs sharing one cache
 * hierarchy; when both siblings are busy the scheduler applies a
 * pipeline contention factor to both (issue bandwidth is shared).
 */

#ifndef DITTO_OS_SCHEDULER_H_
#define DITTO_OS_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "os/thread.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace ditto::os {

class Machine;

/** Scheduler statistics. */
struct SchedStats
{
    std::uint64_t contextSwitches = 0;
    std::uint64_t slices = 0;
    std::uint64_t wakeups = 0;
};

class Scheduler
{
  public:
    Scheduler(Machine &machine, sim::EventQueue &events);

    /** Register and immediately wake a thread; takes ownership. */
    Thread *add(std::unique_ptr<Thread> thread);

    /** Make a blocked (or about-to-block) thread runnable. */
    void wake(Thread *t);

    /** Timeslice length. */
    void setTimeslice(sim::Time slice) { timeslice_ = slice; }

    /**
     * Freeze/unfreeze dispatching (machine crash model). Running
     * slices finish and their threads queue up as Ready; nothing new
     * is dispatched until unfrozen.
     */
    void setFrozen(bool frozen);
    bool frozen() const { return frozen_; }

    const SchedStats &stats() const { return stats_; }

    /** Number of threads not yet terminated. */
    std::size_t liveThreads() const;

    /** Fraction of logical cores currently busy. */
    double utilization() const;

    /** Cycle contention multiplier when SMT siblings co-run. */
    static constexpr double kSmtContention = 1.45;

  private:
    struct CoreSlot
    {
        Thread *current = nullptr;
        Thread *lastThread = nullptr;
        bool busy = false;
        sim::Time lastRelease = 0;
    };

    Machine &machine_;
    sim::EventQueue &events_;
    std::vector<std::unique_ptr<Thread>> threads_;
    std::deque<Thread *> ready_;
    std::vector<CoreSlot> slots_;
    sim::Time timeslice_ = sim::milliseconds(1);
    SchedStats stats_;
    std::uint64_t switchSalt_ = 0;
    bool dispatchScheduled_ = false;
    bool frozen_ = false;

    void dispatch();
    void runOn(unsigned coreIdx, Thread *t);
    void onSliceDone(unsigned coreIdx, Thread *t, StepResult result);
    void updateSmtContention(unsigned coreIdx);
    int siblingOf(unsigned coreIdx) const;
};

} // namespace ditto::os

#endif // DITTO_OS_SCHEDULER_H_
