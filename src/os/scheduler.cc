#include "os/scheduler.h"

#include <algorithm>
#include <cassert>

#include "os/kernel.h"
#include "os/kernel_code.h"
#include "os/machine.h"

namespace ditto::os {

Scheduler::Scheduler(Machine &machine, sim::EventQueue &events)
    : machine_(machine), events_(events)
{
}

Thread *
Scheduler::add(std::unique_ptr<Thread> thread)
{
    if (slots_.empty())
        slots_.resize(machine_.coreCount());
    Thread *t = thread.get();
    threads_.push_back(std::move(thread));
    t->setState(Thread::State::Blocked);
    wake(t);
    return t;
}

void
Scheduler::wake(Thread *t)
{
    ++stats_.wakeups;
    switch (t->state()) {
      case Thread::State::Running:
        // Woken while (conceptually) deciding to block mid-slice:
        // resolve at slice end.
        t->setWakePending(true);
        return;
      case Thread::State::Ready:
        return;  // already queued
      case Thread::State::Zombie:
        return;
      case Thread::State::Created:
      case Thread::State::Blocked:
        t->setState(Thread::State::Ready);
        ready_.push_back(t);
        break;
    }
    if (!dispatchScheduled_) {
        // Defer to an event so wakers finish their own bookkeeping
        // first and batched wakeups dispatch once.
        dispatchScheduled_ = true;
        events_.scheduleAfter(0, [this] {
            dispatchScheduled_ = false;
            dispatch();
        });
    }
}

std::size_t
Scheduler::liveThreads() const
{
    return static_cast<std::size_t>(std::count_if(
        threads_.begin(), threads_.end(), [](const auto &t) {
            return t->state() != Thread::State::Zombie;
        }));
}

double
Scheduler::utilization() const
{
    if (slots_.empty())
        return 0.0;
    const auto busy = std::count_if(
        slots_.begin(), slots_.end(),
        [](const CoreSlot &s) { return s.busy; });
    return static_cast<double>(busy) /
        static_cast<double>(slots_.size());
}

int
Scheduler::siblingOf(unsigned coreIdx) const
{
    if (machine_.smtWays() < 2)
        return -1;
    const unsigned sibling = coreIdx ^ 1u;
    return sibling < slots_.size() ? static_cast<int>(sibling) : -1;
}

void
Scheduler::updateSmtContention(unsigned coreIdx)
{
    if (machine_.smtWays() < 2)
        return;
    const unsigned base = coreIdx & ~1u;
    if (base + 1 >= slots_.size())
        return;
    const bool both = slots_[base].busy && slots_[base + 1].busy;
    const double factor = both ? kSmtContention : 1.0;
    machine_.core(base).setContentionFactor(factor);
    machine_.core(base + 1).setContentionFactor(factor);
}

void
Scheduler::setFrozen(bool frozen)
{
    if (frozen_ == frozen)
        return;
    frozen_ = frozen;
    if (!frozen_ && !ready_.empty())
        dispatch();
}

void
Scheduler::dispatch()
{
    if (frozen_)
        return;
    if (slots_.empty())
        slots_.resize(machine_.coreCount());

    // For each ready thread (FIFO), pick a core: pinned threads get
    // their core or wait; unpinned threads prefer their previous core
    // (cache affinity), then an idle primary SMT slot, then any idle
    // slot.
    bool progress = true;
    while (progress && !ready_.empty()) {
        progress = false;
        for (auto it = ready_.begin(); it != ready_.end(); ++it) {
            Thread *t = *it;
            int target = -1;
            if (t->affinity() >= 0) {
                const auto c = static_cast<unsigned>(t->affinity());
                if (c < slots_.size() && !slots_[c].busy)
                    target = t->affinity();
            } else {
                const int last = t->lastCore();
                if (last >= 0 &&
                    static_cast<unsigned>(last) < slots_.size() &&
                    !slots_[static_cast<unsigned>(last)].busy) {
                    target = last;
                } else {
                    const unsigned step =
                        machine_.smtWays() < 2 ? 1 : 2;
                    for (unsigned c = 0; c < slots_.size();
                         c += step) {
                        if (!slots_[c].busy) {
                            target = static_cast<int>(c);
                            break;
                        }
                    }
                    if (target < 0) {
                        for (unsigned c = 0; c < slots_.size(); ++c) {
                            if (!slots_[c].busy) {
                                target = static_cast<int>(c);
                                break;
                            }
                        }
                    }
                }
            }
            if (target >= 0) {
                ready_.erase(it);
                runOn(static_cast<unsigned>(target), t);
                progress = true;
                break;
            }
        }
    }
}

void
Scheduler::runOn(unsigned coreIdx, Thread *t)
{
    CoreSlot &slot = slots_[coreIdx];
    assert(!slot.busy);
    slot.busy = true;
    slot.current = t;
    t->setState(Thread::State::Running);
    t->setLastCore(static_cast<int>(coreIdx));
    updateSmtContention(coreIdx);

    hw::CpuCore &core = machine_.core(coreIdx);
    StepCtx ctx{core, machine_.kernel(), machine_,
                machine_.timeslicCycles(), 0};

    // Context switch: kernel sched path + private cache pollution.
    if (slot.lastThread != t) {
        ++stats_.contextSwitches;
        core.contextSwitch(++switchSalt_);
        machine_.kernel().runPath(ctx, *t, KernelPath::SchedSwitch);
    } else if (events_.now() - slot.lastRelease >
               sim::microseconds(200)) {
        // The core sat idle: timer ticks, softirqs and other OS noise
        // erode the warm private-cache state. This is what makes
        // services *less* efficient per request at low load.
        core.caches().pollute(0.15, ++switchSalt_);
    }
    slot.lastThread = t;

    ++stats_.slices;
    const StepResult result = t->step(ctx);

    // Threads must consume time: a spinning thread that repeatedly
    // yields for free would live-lock the event loop.
    const double cycles = std::max(ctx.cyclesUsed, 100.0);
    const sim::Time consumed = machine_.cyclesToTime(cycles);

    events_.scheduleAfter(consumed, [this, coreIdx, t, result] {
        onSliceDone(coreIdx, t, result);
    });
}

void
Scheduler::onSliceDone(unsigned coreIdx, Thread *t, StepResult result)
{
    CoreSlot &slot = slots_[coreIdx];
    slot.busy = false;
    slot.current = nullptr;
    slot.lastRelease = events_.now();
    updateSmtContention(coreIdx);

    switch (result.reason) {
      case StopReason::Exit:
        t->setState(Thread::State::Zombie);
        break;
      case StopReason::Yield:
        ++t->involuntarySwitches;
        t->setState(Thread::State::Ready);
        ready_.push_back(t);
        break;
      case StopReason::Block:
        ++t->voluntarySwitches;
        if (t->wakePending()) {
            // The wake raced with the slice: runnable again.
            t->setWakePending(false);
            t->setState(Thread::State::Ready);
            ready_.push_back(t);
        } else {
            t->setState(Thread::State::Blocked);
        }
        break;
    }
    dispatch();
}

} // namespace ditto::os
