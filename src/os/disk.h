/**
 * @file
 * Storage device model with queueing.
 *
 * SSDs serve multiple requests concurrently with low latency; HDDs
 * serialize with a multi-millisecond seek. Queueing delays under load
 * are what make MongoDB disk-bound in Fig. 5, so the device keeps a
 * FIFO of outstanding requests served by `channels` parallel servers.
 */

#ifndef DITTO_OS_DISK_H_
#define DITTO_OS_DISK_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "hw/platform.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace ditto::os {

/** Performance envelope of a storage device. */
struct DiskProfile
{
    sim::Time randomAccess;       //!< per-request access latency
    double bandwidthBytesPerNs;   //!< transfer rate
    unsigned channels;            //!< concurrent in-flight requests
    double latencyJitter;         //!< lognormal sigma on access time

    static DiskProfile forKind(hw::DiskKind kind);
};

/** One storage device attached to a machine. */
class Disk
{
  public:
    Disk(sim::EventQueue &events, hw::DiskKind kind,
         std::uint64_t seed = 42);

    /**
     * Submit an I/O; `done` fires when it completes (after queueing +
     * access + transfer).
     */
    void submit(std::uint64_t bytes, bool isWrite,
                std::function<void()> done);

    std::uint64_t readBytes() const { return readBytes_; }
    std::uint64_t writeBytes() const { return writeBytes_; }
    std::uint64_t requests() const { return requests_; }
    std::size_t queueDepth() const { return queue_.size(); }

    hw::DiskKind kind() const { return kind_; }

    /**
     * Fault hook: multiply the service time of newly submitted
     * requests (degrading device, firmware stall). 1.0 = healthy.
     */
    void setSlowdown(double factor)
    {
        slowdown_ = factor >= 1.0 ? factor : 1.0;
    }
    double slowdown() const { return slowdown_; }

    void resetStats();

  private:
    struct Pending
    {
        sim::Time serviceTime;
        std::function<void()> done;
    };

    sim::EventQueue &events_;
    hw::DiskKind kind_;
    DiskProfile profile_;
    sim::Rng rng_;
    std::deque<Pending> queue_;
    unsigned inFlight_ = 0;
    double slowdown_ = 1.0;
    std::uint64_t readBytes_ = 0;
    std::uint64_t writeBytes_ = 0;
    std::uint64_t requests_ = 0;

    void pump();
};

} // namespace ditto::os

#endif // DITTO_OS_DISK_H_
