#include "os/kernel_code.h"

#include "hw/block_builder.h"

namespace ditto::os {

namespace {

/** Kernel virtual addresses live far away from user text/data. */
constexpr std::uint64_t kKernelTextBase = 0x7f00'0000'0000ull;
constexpr std::uint64_t kKernelDataBase = 0x7f80'0000'0000ull;

/** Private-copy slots for per-thread kernel stacks/data. */
constexpr unsigned kKernelThreadSlots = 64;

hw::BlockSpec
kernelSpec(const char *label, unsigned insts, std::uint64_t sharedWs,
           std::uint64_t privateWs, std::uint64_t seed)
{
    hw::BlockSpec spec;
    spec.label = label;
    spec.instCount = insts;
    spec.mix = hw::MixWeights::serverCode();
    // Kernel code is branch-dense; most branches are biased (error
    // paths, config checks) with a tail of hard data-dependent ones.
    spec.branchFraction = 0.16;
    spec.branchKinds = {{3, 4}, {4, 5}, {2, 4}, {5, 6}, {1, 2}};
    spec.memFraction = 0.30;
    spec.storeFraction = 0.33;
    spec.depTightness = 0.40;
    spec.seed = seed;
    // Shared kernel structures (socket tables, runqueues) plus
    // per-thread state (kernel stack, task struct).
    spec.streams = {
        {sharedWs, hw::StreamKind::Random, true, 0.45},
        {privateWs, hw::StreamKind::Sequential, false, 0.55},
    };
    return spec;
}

} // namespace

KernelCode::KernelCode(std::uint64_t seed)
{
    image_ = std::make_unique<hw::CodeImage>(
        kKernelTextBase, kKernelDataBase, kKernelThreadSlots);

    struct PathSpec
    {
        KernelPath path;
        const char *label;
        unsigned insts;
        std::uint64_t sharedWs;
        std::uint64_t privateWs;
    };

    // Footprints chosen so one request's kernel work touches tens of
    // KB of text -- the frontend pressure the paper attributes to
    // user/kernel mode switching.
    const PathSpec paths[] = {
        {KernelPath::SyscallEntry, "k.sys_entry", 500, 1 << 12, 1 << 10},
        {KernelPath::TcpRx, "k.tcp_rx", 4200, 1 << 16, 1 << 12},
        {KernelPath::TcpTx, "k.tcp_tx", 3400, 1 << 16, 1 << 12},
        {KernelPath::EpollWait, "k.epoll_wait", 1300, 1 << 13, 1 << 10},
        {KernelPath::EpollWake, "k.epoll_wake", 800, 1 << 13, 1 << 9},
        {KernelPath::VfsRead, "k.vfs_read", 2600, 1 << 14, 1 << 11},
        {KernelPath::VfsWrite, "k.vfs_write", 2700, 1 << 14, 1 << 11},
        {KernelPath::PageCacheLookup, "k.pagecache", 950, 1 << 15, 1 << 9},
        {KernelPath::BlockIo, "k.block_io", 2100, 1 << 14, 1 << 10},
        {KernelPath::SchedSwitch, "k.sched", 1600, 1 << 13, 1 << 10},
        {KernelPath::Futex, "k.futex", 720, 1 << 12, 1 << 8},
        {KernelPath::Clone, "k.clone", 6300, 1 << 14, 1 << 12},
        {KernelPath::CopyChunk, "k.copy", 24, 1 << 10, 1 << 16},
    };

    std::uint64_t salt = seed;
    for (const PathSpec &p : paths) {
        hw::BlockSpec spec = kernelSpec(p.label, p.insts, p.sharedWs,
                                        p.privateWs, salt++);
        if (p.path == KernelPath::CopyChunk) {
            // The copy loop is load/store dominated, low-branch,
            // streaming over the user buffer.
            spec.memFraction = 0.70;
            spec.storeFraction = 0.5;
            spec.branchFraction = 0.05;
            spec.streams = {
                {1 << 16, hw::StreamKind::Sequential, false, 1.0},
            };
        }
        blockIds_[static_cast<std::size_t>(p.path)] =
            image_->addBlock(hw::buildBlock(spec));
    }
}

} // namespace ditto::os
